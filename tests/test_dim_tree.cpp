// Tests for partial contractions and the dimension-tree multi-mode MTTKRP:
// correctness against per-mode MTTKRP, exact multiply accounting, and the
// computation-reuse factor the Section VII extension promises.
#include <gtest/gtest.h>

#include "src/mttkrp/dim_tree.hpp"
#include "src/mttkrp/mttkrp.hpp"
#include "src/support/rng.hpp"

namespace mtk {
namespace {

struct Problem {
  DenseTensor x;
  std::vector<Matrix> factors;
};

Problem make_problem(const shape_t& dims, index_t rank, std::uint64_t seed) {
  Rng rng(seed);
  Problem p;
  p.x = DenseTensor::random_normal(dims, rng);
  for (index_t d : dims) {
    p.factors.push_back(Matrix::random_normal(d, rank, rng));
  }
  return p;
}

TEST(Partial, ContractTensorToSingleModeIsMttkrp) {
  const Problem p = make_problem({4, 5, 6}, 3, 7001);
  for (int mode = 0; mode < 3; ++mode) {
    const Partial leaf = contract_tensor(p.x, p.factors, {mode}, 3);
    const Matrix expected = mttkrp_reference(p.x, p.factors, mode);
    EXPECT_LT(max_abs_diff(partial_to_mttkrp(leaf), expected), 1e-10)
        << "mode " << mode;
  }
}

TEST(Partial, ContractTensorKeepingAllModesReplicatesX) {
  const Problem p = make_problem({3, 4}, 2, 7003);
  const Partial full = contract_tensor(p.x, p.factors, {0, 1}, 2);
  ASSERT_EQ(full.row_count(), p.x.size());
  for (index_t j = 0; j < p.x.size(); ++j) {
    EXPECT_DOUBLE_EQ(full.values(j, 0), p.x[j]);
    EXPECT_DOUBLE_EQ(full.values(j, 1), p.x[j]);
  }
}

TEST(Partial, TwoStageContractionMatchesDirect) {
  // Contract {0,1,2,3} -> {0,1} -> {0} must equal contracting straight to
  // {0} (associativity of the rank-matched contractions).
  const Problem p = make_problem({3, 4, 2, 5}, 3, 7005);
  const Partial two = contract_tensor(p.x, p.factors, {0, 1}, 3);
  const Partial staged = contract_partial(two, p.factors, {0});
  const Partial direct = contract_tensor(p.x, p.factors, {0}, 3);
  EXPECT_LT(max_abs_diff(staged.values, direct.values), 1e-10);
}

TEST(Partial, KeepsNonContiguousModeSubsets) {
  const Problem p = make_problem({3, 4, 5}, 2, 7007);
  const Partial skip = contract_tensor(p.x, p.factors, {0, 2}, 2);
  ASSERT_EQ(skip.dims, (shape_t{3, 5}));
  // Spot-check one entry against the definition.
  // P(j, r) with j = i0 + 3*i2 = sum_{i1} X(i0,i1,i2) A^(1)(i1,r).
  double expect = 0.0;
  for (index_t i1 = 0; i1 < 4; ++i1) {
    expect += p.x.at({1, i1, 2}) * p.factors[1](i1, 0);
  }
  EXPECT_NEAR(skip.values(1 + 3 * 2, 0), expect, 1e-12);
}

TEST(Partial, Validation) {
  const Problem p = make_problem({3, 4}, 2, 7009);
  EXPECT_THROW(contract_tensor(p.x, p.factors, {}, 2),
               std::invalid_argument);
  EXPECT_THROW(contract_tensor(p.x, p.factors, {1, 0}, 2),
               std::invalid_argument);
  EXPECT_THROW(contract_tensor(p.x, p.factors, {0, 2}, 2),
               std::invalid_argument);
  const Partial full = contract_tensor(p.x, p.factors, {0, 1}, 2);
  EXPECT_THROW(contract_partial(full, p.factors, {0, 1}),
               std::invalid_argument);  // nothing to contract
  EXPECT_THROW(partial_to_mttkrp(full), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Dimension tree.

class DimTreeOrders : public ::testing::TestWithParam<shape_t> {};

TEST_P(DimTreeOrders, MatchesPerModeMttkrp) {
  const shape_t dims = GetParam();
  const Problem p = make_problem(dims, 3, 7011);
  const AllModesResult tree = mttkrp_all_modes_tree(p.x, p.factors);
  ASSERT_EQ(tree.outputs.size(), dims.size());
  for (int mode = 0; mode < static_cast<int>(dims.size()); ++mode) {
    const Matrix expected = mttkrp_reference(p.x, p.factors, mode);
    EXPECT_LT(max_abs_diff(tree.outputs[static_cast<std::size_t>(mode)],
                           expected),
              1e-9)
        << "mode " << mode;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, DimTreeOrders,
                         ::testing::Values(shape_t{5, 7}, shape_t{4, 5, 6},
                                           shape_t{3, 4, 2, 5},
                                           shape_t{2, 3, 2, 3, 2},
                                           shape_t{2, 2, 2, 2, 2, 2},
                                           shape_t{1, 6, 1}));

TEST(DimTree, MultiplyCountMatchesModel) {
  for (const shape_t& dims :
       {shape_t{4, 5, 6}, shape_t{3, 4, 2, 5}, shape_t{2, 3, 2, 3, 2}}) {
    const Problem p = make_problem(dims, 4, 7013);
    const AllModesResult tree = mttkrp_all_modes_tree(p.x, p.factors);
    EXPECT_EQ(tree.multiplies, dim_tree_multiply_count(dims, 4));
  }
}

TEST(DimTree, SavesWorkOverSeparateMttkrps) {
  // For order N >= 3 the tree must perform strictly fewer multiplies than
  // N independent MTTKRPs; the gap widens with N.
  const Problem p3 = make_problem({8, 8, 8}, 4, 7017);
  const AllModesResult tree3 = mttkrp_all_modes_tree(p3.x, p3.factors);
  const AllModesResult sep3 = mttkrp_all_modes_separate(p3.x, p3.factors);
  EXPECT_LT(tree3.multiplies, sep3.multiplies);

  const Problem p5 = make_problem({4, 4, 4, 4, 4}, 3, 7019);
  const AllModesResult tree5 = mttkrp_all_modes_tree(p5.x, p5.factors);
  const AllModesResult sep5 = mttkrp_all_modes_separate(p5.x, p5.factors);
  const double ratio3 = static_cast<double>(sep3.multiplies) /
                        static_cast<double>(tree3.multiplies);
  const double ratio5 = static_cast<double>(sep5.multiplies) /
                        static_cast<double>(tree5.multiplies);
  EXPECT_GT(ratio3, 1.5);
  EXPECT_GT(ratio5, ratio3);
}

TEST(DimTree, SeparateBaselineMatchesTreeOutputs) {
  const Problem p = make_problem({5, 6, 7}, 3, 7023);
  const AllModesResult tree = mttkrp_all_modes_tree(p.x, p.factors);
  const AllModesResult sep = mttkrp_all_modes_separate(p.x, p.factors);
  for (std::size_t mode = 0; mode < 3; ++mode) {
    EXPECT_LT(max_abs_diff(tree.outputs[mode], sep.outputs[mode]), 1e-9);
  }
}

TEST(DimTree, Validation) {
  const Problem p = make_problem({4, 5, 6}, 3, 7027);
  std::vector<Matrix> bad = p.factors;
  bad[1] = Matrix(5, 2);  // rank mismatch
  EXPECT_THROW(mttkrp_all_modes_tree(p.x, bad), std::invalid_argument);
  bad = p.factors;
  bad.pop_back();
  EXPECT_THROW(mttkrp_all_modes_tree(p.x, bad), std::invalid_argument);
}

}  // namespace
}  // namespace mtk
