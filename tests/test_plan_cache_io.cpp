// On-disk PlanCache persistence: round-trips must be exact (a reloaded
// cache serves hash-verified hits without re-planning), and every damage
// mode — wrong version, truncation, corrupt fields — must degrade to a
// cold cache, never a wrong plan.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/planner/plan_cache.hpp"
#include "src/support/rng.hpp"

namespace mtk {
namespace {

// Unique-ish scratch path per test; removed on destruction.
class ScratchFile {
 public:
  explicit ScratchFile(const char* name)
      : path_(std::string(::testing::TempDir()) + name) {
    std::remove(path_.c_str());
  }
  ~ScratchFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void spit(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  out << content;
}

class PlanCacheIo : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(97);
    coo_ = SparseTensor::random_sparse({20, 16, 12}, 0.05, rng);
    opts_.procs = 8;
    opts_.latency_word_ratio = 2.0;
  }

  // A cache warmed with two distinct problems.
  void warm(PlanCache& cache) {
    cache.get_or_plan(StoredTensor::coo_view(coo_), 4, opts_);
    cache.get_or_plan(StoredTensor::coo_view(coo_), 5, opts_);
  }

  SparseTensor coo_;
  PlannerOptions opts_;
};

TEST_F(PlanCacheIo, RoundTripServesHitsWithIdenticalReports) {
  ScratchFile file("plan_cache_roundtrip.txt");
  PlanCache cache;
  warm(cache);
  const auto original =
      cache.get_or_plan(StoredTensor::coo_view(coo_), 4, opts_);
  ASSERT_TRUE(cache.save(file.path()));

  PlanCache reloaded;
  ASSERT_TRUE(reloaded.load(file.path()));
  EXPECT_EQ(reloaded.size(), cache.size());

  // The reloaded entry must hit (no re-planning) and reproduce the report
  // field-for-field, including the per-phase collective schedule and the
  // hex-float-serialized scores.
  const auto restored =
      reloaded.get_or_plan(StoredTensor::coo_view(coo_), 4, opts_);
  EXPECT_EQ(reloaded.hits(), 1u);
  EXPECT_EQ(reloaded.misses(), 0u);
  ASSERT_EQ(restored->ranked.size(), original->ranked.size());
  for (std::size_t i = 0; i < original->ranked.size(); ++i) {
    const ExecutionPlan& a = original->ranked[i];
    const ExecutionPlan& b = restored->ranked[i];
    EXPECT_EQ(a.algo, b.algo);
    EXPECT_EQ(a.backend, b.backend);
    EXPECT_EQ(a.grid, b.grid);
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.kernel_variant, b.kernel_variant);
    EXPECT_TRUE(a.collectives == b.collectives);
    EXPECT_EQ(a.comm.words, b.comm.words);
    EXPECT_EQ(a.comm.messages, b.comm.messages);
    EXPECT_EQ(a.comm.exact, b.comm.exact);
    EXPECT_EQ(a.score, b.score);
    EXPECT_EQ(a.optimality_ratio, b.optimality_ratio);
    EXPECT_EQ(a.nnz_stats.per_block, b.nnz_stats.per_block);
  }

  // Different options -> different key -> a miss, not a stale hit.
  PlannerOptions other = opts_;
  other.latency_word_ratio = 3.0;
  reloaded.get_or_plan(StoredTensor::coo_view(coo_), 4, other);
  EXPECT_EQ(reloaded.misses(), 1u);
}

TEST_F(PlanCacheIo, CalibrationTravelsWithTheFile) {
  ScratchFile file("plan_cache_cal.txt");
  PlanCache cache;
  warm(cache);
  Calibration cal;
  cal.alpha_seconds = 1.25e-6;
  cal.beta_seconds_per_word = 3.5e-10;
  cal.dense_seconds_per_flop = 1.0e-10;
  cal.coo_seconds_per_flop = 1.5e-10;
  cal.csf_seconds_per_flop = 0.75e-10;
  cal.coo_privatized_seconds_per_flop = 1.6e-10;
  cal.coo_tiled_seconds_per_flop = 0.8e-10;
  cal.csf_privatized_seconds_per_flop = 1.1e-10;
  cal.csf_tiled_seconds_per_flop = 0.5e-10;
  cal.measured = true;
  ASSERT_TRUE(cache.save(file.path(), &cal));

  PlanCache reloaded;
  Calibration restored;
  ASSERT_TRUE(reloaded.load(file.path(), &restored));
  EXPECT_TRUE(restored == cal);  // bit-exact via hex floats
}

TEST_F(PlanCacheIo, MissingFileIsColdCache) {
  PlanCache cache;
  EXPECT_FALSE(cache.load(std::string(::testing::TempDir()) +
                          "no_such_plan_cache.txt"));
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(PlanCacheIo, VersionMismatchDegradesToCold) {
  ScratchFile file("plan_cache_version.txt");
  PlanCache cache;
  warm(cache);
  ASSERT_TRUE(cache.save(file.path()));

  std::string content = slurp(file.path());
  const std::string header =
      "mtkplancache " + std::to_string(PlanCache::kFileVersion);
  ASSERT_EQ(content.compare(0, header.size(), header), 0);
  content.replace(0, header.size(), "mtkplancache 999");
  spit(file.path(), content);

  PlanCache reloaded;
  warm(reloaded);  // pre-populate: load must clear even on failure
  EXPECT_FALSE(reloaded.load(file.path()));
  EXPECT_EQ(reloaded.size(), 0u);
  // A cold cache still *works* — the next lookup just re-plans.
  reloaded.get_or_plan(StoredTensor::coo_view(coo_), 4, opts_);
  EXPECT_EQ(reloaded.misses(), 1u);
}

TEST_F(PlanCacheIo, TruncationDegradesToCold) {
  ScratchFile file("plan_cache_trunc.txt");
  PlanCache cache;
  warm(cache);
  ASSERT_TRUE(cache.save(file.path()));
  const std::string content = slurp(file.path());

  // Chop at several depths: mid-header, mid-entry, and just before the
  // final end marker. Every truncation must come back cold.
  for (const std::size_t keep :
       {std::size_t{5}, content.size() / 3, content.size() - 5}) {
    spit(file.path(), content.substr(0, keep));
    PlanCache reloaded;
    EXPECT_FALSE(reloaded.load(file.path())) << "kept " << keep << " bytes";
    EXPECT_EQ(reloaded.size(), 0u) << "kept " << keep << " bytes";
  }
}

TEST_F(PlanCacheIo, CorruptFieldsDegradeToCold) {
  ScratchFile file("plan_cache_corrupt.txt");
  PlanCache cache;
  warm(cache);
  ASSERT_TRUE(cache.save(file.path()));
  const std::string content = slurp(file.path());

  // A non-numeric token inside a plan line.
  {
    std::string damaged = content;
    const std::size_t pos = damaged.find("plan ");
    ASSERT_NE(pos, std::string::npos);
    damaged.replace(pos, 5, "plan garbage-token ");
    spit(file.path(), damaged);
    PlanCache reloaded;
    EXPECT_FALSE(reloaded.load(file.path()));
    EXPECT_EQ(reloaded.size(), 0u);
  }
  // An out-of-range enum value in a key line.
  {
    std::string damaged = content;
    const std::size_t pos = damaged.find("\nkey ");
    ASSERT_NE(pos, std::string::npos);
    damaged.replace(pos, 5, "\nkey 7777 ");
    spit(file.path(), damaged);
    PlanCache reloaded;
    EXPECT_FALSE(reloaded.load(file.path()));
    EXPECT_EQ(reloaded.size(), 0u);
  }
  // An unknown record tag.
  {
    std::string damaged = content;
    const std::size_t pos = damaged.find("entry ");
    ASSERT_NE(pos, std::string::npos);
    damaged.replace(pos, 6, "moose ");
    spit(file.path(), damaged);
    PlanCache reloaded;
    EXPECT_FALSE(reloaded.load(file.path()));
    EXPECT_EQ(reloaded.size(), 0u);
  }
  // A *syntactically valid* payload mutation — a flipped digit inside a
  // plan line that still parses — must be caught by the entry checksum:
  // the contract is "corruption can cost re-planning, never a wrong plan".
  {
    std::string damaged = content;
    const std::size_t plan_pos = damaged.find("\nplan ");
    ASSERT_NE(plan_pos, std::string::npos);
    const std::size_t line_end = damaged.find('\n', plan_pos + 1);
    bool flipped = false;
    for (std::size_t i = plan_pos; i < line_end && !flipped; ++i) {
      if (damaged[i] >= '0' && damaged[i] <= '8') {
        damaged[i] = static_cast<char>(damaged[i] + 1);
        flipped = true;
      }
    }
    ASSERT_TRUE(flipped);
    spit(file.path(), damaged);
    PlanCache reloaded;
    EXPECT_FALSE(reloaded.load(file.path()));
    EXPECT_EQ(reloaded.size(), 0u);
  }
}

}  // namespace
}  // namespace mtk
