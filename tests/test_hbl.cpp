// Tests for the HBL machinery of Section IV-A: the Lemma 4.2 LP (closed
// form vs simplex), the Lemma 4.3/4.4 optimization identities (closed form
// vs numeric search), and property tests of the Lemma 4.1 inequality on
// random iteration-space subsets — including the paper's Figure 1 example.
#include <gtest/gtest.h>

#include <cmath>

#include "src/bounds/hbl.hpp"
#include "src/support/rng.hpp"

namespace mtk {
namespace {

TEST(MttkrpProjections, StructureMatchesPaper) {
  const auto projections = mttkrp_projections(3);
  ASSERT_EQ(projections.size(), 4u);  // N factor matrices + tensor
  EXPECT_EQ(projections[0], (Projection{0, 3}));  // A^(1) reads (i_1, r)
  EXPECT_EQ(projections[1], (Projection{1, 3}));
  EXPECT_EQ(projections[2], (Projection{2, 3}));
  EXPECT_EQ(projections[3], (Projection{0, 1, 2}));  // tensor reads all i_k
}

TEST(DeltaMatrix, MatchesLemma42Structure) {
  // Delta = [[I_N, 1], [1', 0]].
  const auto projections = mttkrp_projections(4);
  const auto delta = delta_matrix(projections, 5);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(delta[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                       i == j ? 1.0 : 0.0);
    }
    EXPECT_DOUBLE_EQ(delta[static_cast<std::size_t>(i)][4], 1.0);
  }
  for (int j = 0; j < 4; ++j) {
    EXPECT_DOUBLE_EQ(delta[4][static_cast<std::size_t>(j)], 1.0);
  }
  EXPECT_DOUBLE_EQ(delta[4][4], 0.0);
}

TEST(Lemma42, LpMatchesClosedFormForAllOrders) {
  // The LP optimum must be 2 - 1/N with s* = (1/N, ..., 1/N, 1 - 1/N).
  for (int n = 2; n <= 10; ++n) {
    const auto projections = mttkrp_projections(n);
    const auto s_lp = hbl_exponents_lp(projections, n + 1);
    const auto s_closed = mttkrp_optimal_exponents(n);
    ASSERT_EQ(s_lp.size(), s_closed.size());
    double sum_lp = 0.0, sum_closed = 0.0;
    for (std::size_t j = 0; j < s_lp.size(); ++j) {
      sum_lp += s_lp[j];
      sum_closed += s_closed[j];
    }
    // The optimal *objective* is unique even if the vertex is not; Lemma 4.2
    // proves the value 2 - 1/N via duality.
    EXPECT_NEAR(sum_lp, 2.0 - 1.0 / n, 1e-9) << "N=" << n;
    EXPECT_NEAR(sum_closed, 2.0 - 1.0 / n, 1e-12) << "N=" << n;
    // The closed form must be feasible for the constraints.
    const auto delta = delta_matrix(projections, n + 1);
    for (int i = 0; i < n + 1; ++i) {
      double row = 0.0;
      for (std::size_t j = 0; j < s_closed.size(); ++j) {
        row += delta[static_cast<std::size_t>(i)][j] * s_closed[j];
      }
      EXPECT_GE(row, 1.0 - 1e-12) << "N=" << n << " row " << i;
    }
  }
}

TEST(Lemma43, ClosedFormBeatsRandomFeasiblePoints) {
  // max prod x^s s.t. sum x <= c. Any feasible point must not exceed the
  // closed-form optimum; points near the analytic maximizer must approach it.
  Rng rng(307);
  const std::vector<double> s{1.0 / 3, 1.0 / 3, 1.0 / 3, 2.0 / 3};
  const double c = 30.0;
  const double best = max_product_given_sum(s, c);
  double sum_s = 0.0;
  for (double v : s) sum_s += v;
  for (int trial = 0; trial < 2000; ++trial) {
    // Random nonnegative point on the simplex sum = c.
    std::vector<double> x(s.size());
    double total = 0.0;
    for (double& v : x) {
      v = rng.uniform(0.01, 1.0);
      total += v;
    }
    double prod = 1.0;
    for (std::size_t j = 0; j < x.size(); ++j) {
      x[j] *= c / total;
      prod *= std::pow(x[j], s[j]);
    }
    EXPECT_LE(prod, best * (1.0 + 1e-9));
  }
  // The analytic maximizer x_j = c s_j / sum(s) attains the bound.
  double prod_star = 1.0;
  for (double sj : s) prod_star *= std::pow(c * sj / sum_s, sj);
  EXPECT_NEAR(prod_star, best, best * 1e-12);
}

TEST(Lemma44, ClosedFormBeatsRandomFeasiblePoints) {
  // min sum x s.t. prod x^s >= c.
  Rng rng(311);
  const std::vector<double> s{0.5, 0.5, 0.25};
  const double c = 12.0;
  const double best = min_sum_given_product(s, c);
  double sum_s = 0.0, log_prod_ss = 0.0;
  for (double v : s) {
    sum_s += v;
    log_prod_ss += v * std::log(v);
  }
  for (int trial = 0; trial < 2000; ++trial) {
    // Random point scaled to lie exactly on the constraint surface.
    std::vector<double> x(s.size());
    for (double& v : x) v = rng.uniform(0.05, 5.0);
    double log_prod = 0.0;
    for (std::size_t j = 0; j < x.size(); ++j) {
      log_prod += s[j] * std::log(x[j]);
    }
    const double scale = std::exp((std::log(c) - log_prod) / sum_s);
    double sum = 0.0;
    for (double v : x) sum += v * scale;
    EXPECT_GE(sum, best * (1.0 - 1e-9));
  }
  // The analytic minimizer x_j = s_j (c / prod s^s)^(1/sum s).
  const double base = std::exp((std::log(c) - log_prod_ss) / sum_s);
  double sum_star = 0.0;
  for (double sj : s) sum_star += sj * base;
  EXPECT_NEAR(sum_star, best, best * 1e-12);
}

TEST(Lemma41, Figure1Example) {
  // The six coordinates of Figure 1 (converted to zero-based indexing):
  // a (5,1,1,1), b (3,3,15,1), c (7,10,2,2), d (4,14,11,3), e (11,2,2,4),
  // f (14,14,14,4); one-based in the paper.
  std::set<multi_index_t> f;
  f.insert({4, 0, 0, 0});
  f.insert({2, 2, 14, 0});
  f.insert({6, 9, 1, 1});
  f.insert({3, 13, 10, 2});
  f.insert({10, 1, 1, 3});
  f.insert({13, 13, 13, 3});

  const auto projections = mttkrp_projections(3);
  // Figure 1b: each factor-matrix projection has 6 distinct coordinates,
  // and the tensor projection also has 6 (all products distinct).
  for (const auto& proj : projections) {
    EXPECT_EQ(project(f, proj).size(), 6u);
  }
  EXPECT_TRUE(
      verify_hbl_inequality(f, projections, mttkrp_optimal_exponents(3)));
  // Bound value: 6^(1/3) * 6^(1/3) * 6^(1/3) * 6^(2/3) = 6^(5/3) ≈ 19.8.
  const double bound = hbl_product_bound({6, 6, 6, 6},
                                         mttkrp_optimal_exponents(3));
  EXPECT_NEAR(bound, std::pow(6.0, 5.0 / 3.0), 1e-9);
}

TEST(Lemma41, HoldsOnRandomSubsets) {
  // Property test: the HBL inequality must hold for every subset of the
  // iteration space and every order.
  Rng rng(313);
  for (int n = 2; n <= 4; ++n) {
    const auto projections = mttkrp_projections(n);
    const auto s = mttkrp_optimal_exponents(n);
    for (int trial = 0; trial < 50; ++trial) {
      std::set<multi_index_t> f;
      const int points = static_cast<int>(rng.uniform_int(1, 60));
      for (int q = 0; q < points; ++q) {
        multi_index_t pt(static_cast<std::size_t>(n) + 1);
        for (int d = 0; d <= n; ++d) {
          pt[static_cast<std::size_t>(d)] = rng.uniform_int(0, 5);
        }
        f.insert(pt);
      }
      EXPECT_TRUE(verify_hbl_inequality(f, projections, s))
          << "N=" << n << " trial " << trial << " |F|=" << f.size();
    }
  }
}

TEST(Lemma41, TightForRectangularBlocks) {
  // For a full b x b x ... x b x R block the inequality is met with
  // near-equality when R = b^... — specifically |F| = b^N R and the bound is
  // (bR)^(N * 1/N) ... : with s*, bound = prod (b R)^{1/N} * (b^N)^{1-1/N}
  // = b R^{1/N} * b^{N-1} R^{...}. Verify the exact algebra numerically.
  const int n = 3;
  const index_t b = 3, r = 4;
  std::set<multi_index_t> f;
  for (index_t i = 0; i < b; ++i) {
    for (index_t j = 0; j < b; ++j) {
      for (index_t k = 0; k < b; ++k) {
        for (index_t rr = 0; rr < r; ++rr) {
          f.insert({i, j, k, rr});
        }
      }
    }
  }
  const auto projections = mttkrp_projections(n);
  const auto s = mttkrp_optimal_exponents(n);
  EXPECT_TRUE(verify_hbl_inequality(f, projections, s));
  // |F| = b^3 R; bound = (bR)^(3/N=1) * (b^3)^(2/3) = b R * b^2 = b^3 R ...
  const double bound =
      hbl_product_bound({b * r, b * r, b * r, b * b * b}, s);
  EXPECT_NEAR(bound, static_cast<double>(b * b * b) * std::pow(r, 1.0), 1e-9);
  EXPECT_NEAR(static_cast<double>(f.size()), bound, 1e-9);
}

TEST(HblProductBound, ZeroExponentIgnoresEmptyProjection) {
  EXPECT_DOUBLE_EQ(hbl_product_bound({5, 7}, {1.0, 0.0}), 5.0);
  EXPECT_THROW(hbl_product_bound({5}, {1.0, 0.5}), std::invalid_argument);
  EXPECT_THROW(hbl_product_bound({0}, {0.5}), std::invalid_argument);
}

TEST(Project, ExtractsCoordinates) {
  std::set<multi_index_t> f;
  f.insert({1, 2, 3});
  f.insert({1, 5, 3});
  f.insert({2, 2, 3});
  const auto image = project(f, {0, 2});
  EXPECT_EQ(image.size(), 2u);  // (1,3) and (2,3)
  EXPECT_TRUE(image.count({1, 3}));
  EXPECT_TRUE(image.count({2, 3}));
}

}  // namespace
}  // namespace mtk
