// Agreement battery for the sparse-aware parallel MTTKRP: randomized sweeps
// asserting that dense, COO, and CSF runs of Algorithms 3 and 4 (and the
// all-modes variant) produce the same results — and, under the kBlock
// partition scheme, *identical* simulated communication, since Algorithm 3
// never communicates the tensor and the factor/output collectives are
// storage-independent. Also covers the medium-grained scheme, the recursive
// collectives, the P0 = 1 degeneracy, and ranks that own no nonzeros.
#include <gtest/gtest.h>

#include <tuple>

#include "src/mttkrp/dispatch.hpp"
#include "src/parsim/par_common.hpp"
#include "src/parsim/par_multi_mttkrp.hpp"
#include "src/parsim/par_mttkrp.hpp"
#include "src/support/rng.hpp"
#include "src/tensor/csf.hpp"

namespace mtk {
namespace {

struct SparseProblem {
  SparseTensor coo;
  CsfTensor csf;
  DenseTensor dense;
  std::vector<Matrix> factors;
};

SparseProblem make_problem(const shape_t& dims, index_t rank, double density,
                           std::uint64_t seed) {
  Rng rng(seed);
  SparseProblem p;
  p.coo = SparseTensor::random_sparse(dims, density, rng);
  p.csf = CsfTensor::from_coo(p.coo);
  p.dense = p.coo.to_dense();
  for (index_t d : dims) {
    p.factors.push_back(Matrix::random_normal(d, rank, rng));
  }
  return p;
}

// Per-rank exact communication equality between two machines.
void expect_same_traffic(const Machine& a, const Machine& b) {
  ASSERT_EQ(a.num_ranks(), b.num_ranks());
  for (int r = 0; r < a.num_ranks(); ++r) {
    EXPECT_EQ(a.stats(r).words_sent, b.stats(r).words_sent) << "rank " << r;
    EXPECT_EQ(a.stats(r).words_received, b.stats(r).words_received)
        << "rank " << r;
  }
}

// ---------------------------------------------------------------------------
// Algorithm 3: dense vs COO vs CSF, results and exact traffic.

using AgreeParam = std::tuple<shape_t, index_t, int, std::vector<int>,
                              std::uint64_t>;

class StationaryAgreement : public ::testing::TestWithParam<AgreeParam> {};

TEST_P(StationaryAgreement, BackendsAgreeBitTolerantlyWithIdenticalTraffic) {
  const auto& [dims, rank, mode, grid, seed] = GetParam();
  const SparseProblem p = make_problem(dims, rank, 0.25, seed);
  const Matrix expected = mttkrp_coo(p.coo, p.factors, mode);

  Machine m_dense(grid_size(grid));
  Machine m_coo(grid_size(grid));
  Machine m_csf(grid_size(grid));
  const ParMttkrpResult r_dense =
      par_mttkrp_stationary(m_dense, p.dense, p.factors, mode, grid);
  const ParMttkrpResult r_coo = par_mttkrp_stationary(
      m_coo, StoredTensor::coo_view(p.coo), p.factors, mode, grid);
  const ParMttkrpResult r_csf = par_mttkrp_stationary(
      m_csf, StoredTensor::csf_view(p.csf), p.factors, mode, grid);

  // All three agree with the sequential reference and with each other.
  EXPECT_LT(max_abs_diff(r_dense.b, expected), 1e-9);
  EXPECT_LT(max_abs_diff(r_coo.b, expected), 1e-9);
  EXPECT_LT(max_abs_diff(r_csf.b, expected), 1e-9);
  EXPECT_LT(max_abs_diff(r_coo.b, r_dense.b), 1e-9);
  EXPECT_LT(max_abs_diff(r_csf.b, r_dense.b), 1e-9);

  // The tensor is stationary: under the block scheme, communication is
  // exactly the dense factor/output traffic, word for word and per rank.
  EXPECT_EQ(r_coo.max_words_moved, r_dense.max_words_moved);
  EXPECT_EQ(r_csf.max_words_moved, r_dense.max_words_moved);
  EXPECT_EQ(r_coo.total_words_sent, r_dense.total_words_sent);
  EXPECT_EQ(r_csf.total_words_sent, r_dense.total_words_sent);
  expect_same_traffic(m_coo, m_dense);
  expect_same_traffic(m_csf, m_dense);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, StationaryAgreement,
    ::testing::Values(
        AgreeParam{{8, 8, 8}, 4, 0, {2, 2, 2}, 101},
        AgreeParam{{8, 8, 8}, 4, 1, {2, 2, 2}, 102},
        AgreeParam{{8, 8, 8}, 4, 2, {4, 2, 1}, 103},
        AgreeParam{{8, 8, 8}, 4, 0, {1, 1, 8}, 104},   // 1D over mode 2
        AgreeParam{{7, 5, 9}, 3, 1, {2, 2, 3}, 105},   // non-divisible
        AgreeParam{{7, 5, 9}, 3, 2, {3, 1, 2}, 106},
        AgreeParam{{6, 6}, 2, 0, {3, 2}, 107},         // order 2
        AgreeParam{{4, 4, 4, 4}, 3, 2, {2, 1, 2, 2}, 108},  // order 4
        AgreeParam{{8, 8, 8}, 4, 1, {1, 1, 1}, 109}));  // single process

// Randomized sweep across seeds: same battery, three grid shapes per seed.
TEST(StationaryAgreementSweep, RandomizedSeedsAcrossGridShapes) {
  const shape_t dims{9, 6, 8};
  const std::vector<std::vector<int>> grids{{2, 2, 2}, {3, 1, 2}, {1, 3, 2}};
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const SparseProblem p = make_problem(dims, 3, 0.3, 7000 + seed);
    for (int mode = 0; mode < 3; ++mode) {
      const Matrix expected = mttkrp_coo(p.coo, p.factors, mode);
      for (const std::vector<int>& grid : grids) {
        Machine m_dense(grid_size(grid));
        Machine m_coo(grid_size(grid));
        const ParMttkrpResult r_dense =
            par_mttkrp_stationary(m_dense, p.dense, p.factors, mode, grid);
        const ParMttkrpResult r_coo = par_mttkrp_stationary(
            m_coo, StoredTensor::coo_view(p.coo), p.factors, mode, grid);
        EXPECT_LT(max_abs_diff(r_coo.b, expected), 1e-9)
            << "seed " << seed << " mode " << mode;
        EXPECT_EQ(r_coo.max_words_moved, r_dense.max_words_moved)
            << "seed " << seed << " mode " << mode;
        expect_same_traffic(m_coo, m_dense);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Precomputed plan: the repeated-MTTKRP path par_cp_als uses.

TEST(StationaryPlan, PlannedRunsMatchAdHocRunsWordForWord) {
  const SparseProblem p = make_problem({8, 6, 10}, 4, 0.2, 151);
  const std::vector<int> grid{2, 2, 2};
  for (const StoredTensor& x :
       {StoredTensor::coo_view(p.coo), StoredTensor::csf_view(p.csf)}) {
    const StationarySparsePlan plan = plan_stationary_sparse(x, grid);
    for (int mode = 0; mode < 3; ++mode) {
      Machine m_plan(8);
      Machine m_adhoc(8);
      const ParMttkrpResult planned = par_mttkrp_stationary(
          m_plan, x, p.factors, mode, grid, plan);
      const ParMttkrpResult adhoc =
          par_mttkrp_stationary(m_adhoc, x, p.factors, mode, grid);
      EXPECT_LT(max_abs_diff(planned.b, adhoc.b), 1e-12) << "mode " << mode;
      expect_same_traffic(m_plan, m_adhoc);
    }
  }
}

TEST(StationaryPlan, RejectsMismatchedGridAndDenseStorage) {
  const SparseProblem p = make_problem({8, 8, 8}, 4, 0.2, 153);
  const StoredTensor x = StoredTensor::coo_view(p.coo);
  const StationarySparsePlan plan = plan_stationary_sparse(x, {2, 2, 2});
  Machine machine(8);
  // Plan built for a different grid shape.
  EXPECT_THROW(
      par_mttkrp_stationary(machine, x, p.factors, 0, {4, 2, 1}, plan),
      std::invalid_argument);
  // Plans are sparse-only.
  EXPECT_THROW(plan_stationary_sparse(StoredTensor::dense_view(p.dense),
                                      {2, 2, 2}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Storage conversion helper used by the CLI backend flag.

TEST(StoredTensorToCoo, RoundTripsEveryFormat) {
  const SparseProblem p = make_problem({6, 5, 4}, 2, 0.3, 157);
  const SparseTensor from_coo = to_coo(StoredTensor::coo_view(p.coo));
  const SparseTensor from_csf = to_coo(StoredTensor::csf_view(p.csf));
  const SparseTensor from_dense = to_coo(StoredTensor::dense_view(p.dense));
  ASSERT_EQ(from_coo.nnz(), p.coo.nnz());
  ASSERT_EQ(from_csf.nnz(), p.coo.nnz());
  ASSERT_EQ(from_dense.nnz(), p.coo.nnz());
  for (index_t q = 0; q < p.coo.nnz(); ++q) {
    for (int k = 0; k < 3; ++k) {
      ASSERT_EQ(from_csf.index(k, q), p.coo.index(k, q));
      ASSERT_EQ(from_dense.index(k, q), p.coo.index(k, q));
    }
    ASSERT_DOUBLE_EQ(from_csf.value(q), p.coo.value(q));
    ASSERT_DOUBLE_EQ(from_dense.value(q), p.coo.value(q));
  }
}

// ---------------------------------------------------------------------------
// Medium-grained partition: same results, nonzero-balanced layout.

TEST(StationaryMediumGrained, AgreesWithReferenceAcrossGrids) {
  const SparseProblem p = make_problem({12, 9, 10}, 4, 0.15, 211);
  for (const std::vector<int>& grid :
       {std::vector<int>{2, 2, 2}, std::vector<int>{4, 1, 2},
        std::vector<int>{3, 3, 1}}) {
    for (int mode = 0; mode < 3; ++mode) {
      const Matrix expected = mttkrp_coo(p.coo, p.factors, mode);
      const ParMttkrpResult r = par_mttkrp_stationary(
          StoredTensor::coo_view(p.coo), p.factors, mode, grid,
          SparsePartitionScheme::kMediumGrained);
      EXPECT_LT(max_abs_diff(r.b, expected), 1e-9) << "mode " << mode;
    }
  }
}

// ---------------------------------------------------------------------------
// Recursive collectives: identical words, same results.

TEST(StationarySparseCollectives, RecursiveMatchesBucketWordForWord) {
  const SparseProblem p = make_problem({8, 8, 8}, 4, 0.25, 307);
  const std::vector<int> grid{2, 2, 2};
  Machine m_bucket(8);
  Machine m_recursive(8);
  const ParMttkrpResult r_bucket = par_mttkrp_stationary(
      m_bucket, StoredTensor::coo_view(p.coo), p.factors, 1, grid,
      CollectiveKind::kBucket);
  const ParMttkrpResult r_recursive = par_mttkrp_stationary(
      m_recursive, StoredTensor::coo_view(p.coo), p.factors, 1, grid,
      CollectiveKind::kRecursive);
  EXPECT_LT(max_abs_diff(r_bucket.b, r_recursive.b), 1e-12);
  expect_same_traffic(m_bucket, m_recursive);
}

// ---------------------------------------------------------------------------
// Algorithm 4 (general grid) over sparse storage.

class GeneralSparseSweep : public ::testing::TestWithParam<AgreeParam> {};

TEST_P(GeneralSparseSweep, MatchesSequentialReferenceOnBothSparseBackends) {
  const auto& [dims, rank, mode, grid, seed] = GetParam();
  const SparseProblem p = make_problem(dims, rank, 0.25, seed);
  const Matrix expected = mttkrp_coo(p.coo, p.factors, mode);
  const ParMttkrpResult r_coo = par_mttkrp_general(
      StoredTensor::coo_view(p.coo), p.factors, mode, grid);
  const ParMttkrpResult r_csf = par_mttkrp_general(
      StoredTensor::csf_view(p.csf), p.factors, mode, grid);
  const ParMttkrpResult r_dense =
      par_mttkrp_general(p.dense, p.factors, mode, grid);
  EXPECT_LT(max_abs_diff(r_coo.b, expected), 1e-9);
  EXPECT_LT(max_abs_diff(r_csf.b, expected), 1e-9);
  EXPECT_LT(max_abs_diff(r_dense.b, expected), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, GeneralSparseSweep,
    ::testing::Values(
        AgreeParam{{8, 8, 8}, 4, 0, {2, 2, 2, 1}, 401},  // P0=2, X gathered
        AgreeParam{{8, 8, 8}, 4, 1, {4, 2, 1, 1}, 402},
        AgreeParam{{8, 8, 8}, 8, 0, {8, 1, 1, 1}, 403},  // pure rank split
        AgreeParam{{7, 5, 9}, 4, 1, {2, 2, 1, 3}, 404},  // non-divisible
        AgreeParam{{6, 6}, 4, 0, {2, 3, 1}, 405},        // order 2
        AgreeParam{{8, 8, 8}, 4, 2, {1, 2, 2, 2}, 406}));  // P0=1 degeneracy

TEST(GeneralSparse, P0EqualOneMatchesStationaryCountsExactly) {
  // With P0 = 1 the fiber groups are singletons, the subtensor All-Gather
  // moves nothing, and Algorithm 4 degenerates to Algorithm 3 — for sparse
  // storage too, down to the exact word counts.
  const SparseProblem p = make_problem({8, 8, 8}, 4, 0.25, 501);
  const std::vector<int> stat_grid{2, 2, 2};
  const std::vector<int> gen_grid{1, 2, 2, 2};
  for (int mode = 0; mode < 3; ++mode) {
    const ParMttkrpResult stat = par_mttkrp_stationary(
        StoredTensor::coo_view(p.coo), p.factors, mode, stat_grid);
    const ParMttkrpResult gen = par_mttkrp_general(
        StoredTensor::coo_view(p.coo), p.factors, mode, gen_grid);
    EXPECT_LT(max_abs_diff(stat.b, gen.b), 1e-10) << "mode " << mode;
    EXPECT_EQ(stat.max_words_moved, gen.max_words_moved) << "mode " << mode;
    EXPECT_EQ(stat.total_words_sent, gen.total_words_sent) << "mode " << mode;
  }
}

TEST(GeneralSparse, SubtensorGatherChargesTuplesNotDenseBlocks) {
  // With P0 > 1 the sparse X All-Gather ships N+1 words per nonzero; for a
  // sparse enough tensor this is (strictly) cheaper than the dense block
  // gather of the same algorithm.
  const SparseProblem p = make_problem({12, 12, 12}, 4, 0.05, 503);
  const std::vector<int> grid{2, 2, 2, 1};
  const ParMttkrpResult r_sparse = par_mttkrp_general(
      StoredTensor::coo_view(p.coo), p.factors, 0, grid);
  const ParMttkrpResult r_dense =
      par_mttkrp_general(p.dense, p.factors, 0, grid);
  EXPECT_LT(max_abs_diff(r_sparse.b, r_dense.b), 1e-9);
  EXPECT_LT(r_sparse.max_words_moved, r_dense.max_words_moved);
}

// ---------------------------------------------------------------------------
// All-modes (multi-MTTKRP) over sparse storage.

TEST(AllModesSparse, AgreesWithSingleModeRunsAndDenseTraffic) {
  const SparseProblem p = make_problem({8, 6, 10}, 4, 0.2, 601);
  const std::vector<int> grid{2, 2, 2};
  Machine m_dense(8);
  Machine m_coo(8);
  Machine m_csf(8);
  const ParAllModesResult r_dense =
      par_mttkrp_all_modes(m_dense, p.dense, p.factors, grid);
  const ParAllModesResult r_coo = par_mttkrp_all_modes(
      m_coo, StoredTensor::coo_view(p.coo), p.factors, grid);
  const ParAllModesResult r_csf = par_mttkrp_all_modes(
      m_csf, StoredTensor::csf_view(p.csf), p.factors, grid);
  ASSERT_EQ(r_coo.outputs.size(), 3u);
  ASSERT_EQ(r_csf.outputs.size(), 3u);
  for (int mode = 0; mode < 3; ++mode) {
    const Matrix expected = mttkrp_coo(p.coo, p.factors, mode);
    EXPECT_LT(max_abs_diff(r_coo.outputs[static_cast<std::size_t>(mode)],
                           expected),
              1e-9)
        << "mode " << mode;
    EXPECT_LT(max_abs_diff(r_csf.outputs[static_cast<std::size_t>(mode)],
                           expected),
              1e-9)
        << "mode " << mode;
  }
  EXPECT_EQ(r_coo.max_words_moved, r_dense.max_words_moved);
  EXPECT_EQ(r_csf.max_words_moved, r_dense.max_words_moved);
  expect_same_traffic(m_coo, m_dense);
  expect_same_traffic(m_csf, m_dense);
}

TEST(AllModesSparse, SharedGathersBeatPerModeRuns) {
  // The point of the all-modes variant: one gather per factor instead of
  // N-1 per mode. Holds for sparse storage exactly as for dense.
  const SparseProblem p = make_problem({8, 8, 8}, 4, 0.2, 603);
  const std::vector<int> grid{2, 2, 2};
  const ParAllModesResult shared = par_mttkrp_all_modes(
      StoredTensor::coo_view(p.coo), p.factors, grid);
  Machine separate(8);
  for (int mode = 0; mode < 3; ++mode) {
    par_mttkrp_stationary(separate, StoredTensor::coo_view(p.coo), p.factors,
                          mode, grid);
  }
  EXPECT_LT(shared.max_words_moved, separate.max_words_moved());
}

// ---------------------------------------------------------------------------
// Edge cases.

TEST(StationarySparseEdge, RanksWithoutNonzerosContributeZeros) {
  // All nonzeros in one octant: most ranks own nothing, and the result must
  // still match the reference (their zero contributions are reduced away).
  SparseTensor x({8, 8, 8});
  Rng rng(701);
  for (int q = 0; q < 40; ++q) {
    x.push_back({rng.uniform_int(0, 3), rng.uniform_int(0, 3),
                 rng.uniform_int(0, 3)},
                rng.normal());
  }
  x.sort_and_dedup();
  std::vector<Matrix> factors;
  for (int k = 0; k < 3; ++k) {
    factors.push_back(Matrix::random_normal(8, 4, rng));
  }
  for (int mode = 0; mode < 3; ++mode) {
    const Matrix expected = mttkrp_coo(x, factors, mode);
    const ParMttkrpResult r = par_mttkrp_stationary(
        StoredTensor::coo_view(x), factors, mode, {2, 2, 2});
    EXPECT_LT(max_abs_diff(r.b, expected), 1e-9) << "mode " << mode;
  }
}

TEST(StationarySparseValidation, RejectsBadGrids) {
  const SparseProblem p = make_problem({4, 4, 4}, 2, 0.3, 703);
  Machine machine(8);
  const StoredTensor x = StoredTensor::coo_view(p.coo);
  // Wrong dimensionality.
  EXPECT_THROW(par_mttkrp_stationary(machine, x, p.factors, 0, {2, 4}),
               std::invalid_argument);
  // Product mismatch with machine size.
  EXPECT_THROW(par_mttkrp_stationary(machine, x, p.factors, 0, {2, 2, 1}),
               std::invalid_argument);
  // Grid extent exceeding a tensor dimension.
  EXPECT_THROW(par_mttkrp_stationary(machine, x, p.factors, 0, {8, 1, 1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mtk
