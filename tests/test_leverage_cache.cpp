// KrpLeverageCache: the memoized per-mode leverage CDFs behind sampled
// CP-ALS. The cache must (a) reproduce the exact draw stream of the plain
// sample_krp_leverage entry point, (b) rebuild a mode's CDF only when that
// mode was invalidated, and (c) cut the rebuild count of a sampled CP-ALS
// run below the uncached draws x (n-1) baseline.
#include <gtest/gtest.h>

#include "src/cp/cp_als.hpp"
#include "src/sketch/krp_sample.hpp"
#include "src/support/rng.hpp"
#include "src/tensor/csf.hpp"

namespace mtk {
namespace {

struct LevProblem {
  std::vector<Matrix> factors;
  std::vector<Matrix> grams;
};

LevProblem make_setup(const shape_t& dims, index_t rank, std::uint64_t seed) {
  Rng rng(seed);
  LevProblem s;
  for (index_t d : dims) {
    s.factors.push_back(Matrix::random_normal(d, rank, rng));
  }
  for (const Matrix& a : s.factors) s.grams.push_back(gram(a));
  return s;
}

void expect_same_sample(const KrpSample& a, const KrpSample& b) {
  EXPECT_EQ(a.skip_mode, b.skip_mode);
  EXPECT_EQ(a.dims, b.dims);
  EXPECT_EQ(a.indices, b.indices);
  EXPECT_EQ(a.weights, b.weights);  // exact: same CDF, same Rng stream
}

TEST(KrpLeverageCache, ReproducesThePlainDrawStream) {
  const LevProblem s = make_setup({12, 9, 15, 7}, 3, 88);
  KrpLeverageCache cache(4);
  for (int skip = 0; skip < 4; ++skip) {
    Rng plain_rng(derive_seed(5, static_cast<std::uint64_t>(skip)));
    Rng cached_rng(derive_seed(5, static_cast<std::uint64_t>(skip)));
    const KrpSample want =
        sample_krp_leverage(s.factors, s.grams, skip, 32, plain_rng);
    const KrpSample got = cache.sample(s.factors, s.grams, skip, 32,
                                       cached_rng);
    expect_same_sample(want, got);
  }
}

TEST(KrpLeverageCache, RebuildsOnlyInvalidatedModes) {
  const int n = 4;
  const LevProblem s = make_setup({10, 10, 10, 10}, 3, 13);
  KrpLeverageCache cache(n);

  // A full skip-mode sweep with unchanged factors builds each CDF once:
  // n rebuilds, versus the plain entry point's n * (n - 1).
  Rng rng(21);
  for (int skip = 0; skip < n; ++skip) {
    cache.sample(s.factors, s.grams, skip, 16, rng);
  }
  EXPECT_EQ(n, cache.rebuilds());

  // No invalidation, another sweep: fully cached.
  for (int skip = 0; skip < n; ++skip) {
    cache.sample(s.factors, s.grams, skip, 16, rng);
  }
  EXPECT_EQ(n, cache.rebuilds());

  // Invalidate one mode: exactly one rebuild on its next use.
  cache.invalidate(2);
  cache.sample(s.factors, s.grams, 0, 16, rng);  // uses mode 2 -> rebuild
  EXPECT_EQ(n + 1, cache.rebuilds());
  cache.sample(s.factors, s.grams, 2, 16, rng);  // skips mode 2 -> cached
  EXPECT_EQ(n + 1, cache.rebuilds());
}

TEST(KrpLeverageCache, StaleCdfIsActuallyRefreshedAfterInvalidate) {
  LevProblem s = make_setup({64, 8, 8}, 2, 3);
  KrpLeverageCache cache(3);
  Rng warm(1);
  cache.sample(s.factors, s.grams, 1, 8, warm);  // builds modes 0 and 2

  // Concentrate all of mode 0's leverage mass on row 5, refresh its Gram,
  // and invalidate: every subsequent draw of mode 0 must land on row 5.
  for (index_t i = 0; i < s.factors[0].rows(); ++i) {
    for (index_t r = 0; r < s.factors[0].cols(); ++r) {
      s.factors[0](i, r) = (i == 5) ? 1.0 : 0.0;
    }
  }
  s.grams[0] = gram(s.factors[0]);
  cache.invalidate(0);

  Rng rng(2);
  const KrpSample sample = cache.sample(s.factors, s.grams, 1, 64, rng);
  for (index_t idx : sample.indices[0]) {
    ASSERT_EQ(5, idx);
  }
}

TEST(KrpLeverageCache, SampledCpAlsAmortizesAndStaysDeterministic) {
  Rng rng(404);
  const SparseTensor coo =
      SparseTensor::random_sparse({14, 12, 10, 8}, 0.2, rng);

  CpAlsOptions opts;
  opts.rank = 3;
  opts.max_iterations = 4;
  opts.tolerance = 0.0;  // run all sweeps
  opts.sketch.sample_count = 24;
  opts.sketch.refresh_every = 1;

  const CpAlsResult a = cp_als(coo, opts);
  const CpAlsResult b = cp_als(coo, opts);

  // Deterministic across runs (cache state is per-run).
  ASSERT_EQ(a.iterations, b.iterations);
  for (std::size_t k = 0; k < a.model.factors.size(); ++k) {
    EXPECT_EQ(0.0, max_abs_diff(a.model.factors[k], b.model.factors[k]));
  }

  // Amortized: 4 sweeps x 4 skip-modes over order 4 would cost
  // 4 x 4 x 3 = 48 CDF builds uncached; the cache rebuilds a factor's CDF
  // at most twice per sweep (first use, then once more after its update).
  EXPECT_GT(a.leverage_rebuilds, 0);
  EXPECT_LT(a.leverage_rebuilds,
            static_cast<index_t>(opts.max_iterations) * 4 * 3);

  // Exact (unsampled) runs never touch the cache.
  CpAlsOptions exact = opts;
  exact.sketch = SketchOptions{};
  EXPECT_EQ(0, cp_als(coo, exact).leverage_rebuilds);
}

}  // namespace
}  // namespace mtk
