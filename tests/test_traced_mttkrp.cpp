// Tests tying the traced algorithms to the bounds of Section IV: measured
// traffic must lie between the lower bounds (Theorem 4.1 / Fact 4.1) and the
// upper bounds (Eq. (21) for Algorithm 2), and must respond to M and b the
// way the theory predicts.
#include <gtest/gtest.h>

#include "src/bounds/sequential_bounds.hpp"
#include "src/memsim/traced_mttkrp.hpp"
#include "src/mttkrp/mttkrp.hpp"

namespace mtk {
namespace {

TraceProblem make_problem(shape_t dims, index_t rank, int mode) {
  TraceProblem p;
  p.dims = std::move(dims);
  p.rank = rank;
  p.mode = mode;
  return p;
}

index_t total_data_words(const TraceProblem& p) {
  index_t words = p.tensor_size();
  for (int k = 0; k < p.order(); ++k) {
    if (k == p.mode) continue;
    words += p.dims[static_cast<std::size_t>(k)] * p.rank;
  }
  words += p.dims[static_cast<std::size_t>(p.mode)] * p.rank;  // output B
  return words;
}

TEST(TraceLayout, ArraysAreDisjoint) {
  const TraceProblem p = make_problem({4, 5, 6}, 3, 1);
  const TraceLayout layout = TraceLayout::make(p);
  EXPECT_EQ(layout.x_base, 0);
  EXPECT_EQ(layout.factor_base[0], 120);
  EXPECT_EQ(layout.factor_base[1], 120 + 12);
  EXPECT_EQ(layout.factor_base[2], 120 + 12 + 15);
  EXPECT_EQ(layout.b_base, 120 + 12 + 15 + 18);
  EXPECT_EQ(layout.scratch_base, layout.b_base + 15);
}

TEST(TraceUnblocked, TouchesExactlyTheProblemData) {
  const TraceProblem p = make_problem({3, 4, 5}, 2, 0);
  DistinctSink distinct;
  trace_unblocked(p, distinct);
  EXPECT_EQ(distinct.distinct(), total_data_words(p));
}

TEST(TraceUnblocked, InfiniteMemoryGivesCompulsoryTraffic) {
  // With M >= all data, traffic = one load per input word read + one store
  // per output word (B loads hit after first touch... B is read before
  // first write, so each B word costs one load and one final store).
  const TraceProblem p = make_problem({3, 4, 5}, 2, 1);
  const index_t huge = 1 << 20;
  const MemoryStats stats = measure_traffic(
      huge, ReplacementPolicy::kLru,
      [&](AccessSink& sink) { trace_unblocked(p, sink); });
  const index_t b_words = p.dims[1] * p.rank;
  EXPECT_EQ(stats.loads, total_data_words(p));
  EXPECT_EQ(stats.stores, b_words);
}

TEST(TraceUnblocked, SmallMemoryCostsNearIRNPlusOne) {
  // Algorithm 1's worst case is ~I + IR(N+1) when nothing is reused
  // across iterations (Section V-A). With tiny M and mode such that B rows
  // are revisited (mode 0 revisits every row each i_2 step... choose mode 0
  // and dims so reuse distance exceeds capacity).
  const TraceProblem p = make_problem({8, 8, 8}, 4, 0);
  const MemoryStats stats = measure_traffic(
      8, ReplacementPolicy::kLru,
      [&](AccessSink& sink) { trace_unblocked(p, sink); });
  SeqProblem sp;
  sp.dims = p.dims;
  sp.rank = p.rank;
  sp.fast_memory = 8;
  EXPECT_LE(static_cast<double>(stats.traffic()),
            seq_upper_bound_unblocked(sp) * 2.0);
  // It must be *large*: at least I*R (every multiply re-fetches something).
  EXPECT_GE(stats.traffic(), p.tensor_size() * p.rank);
}

TEST(TraceBlocked, TrafficWithinPaperUpperBound) {
  // Eq. (21): W <= I + (N+1) * prod(ceil(I_k/b)) * b * R, for any b
  // satisfying Eq. (11). The simulator (which also counts B re-stores at
  // block handoff) must stay within a whisker of it.
  const shape_t dims{12, 12, 12};
  const index_t rank = 4;
  for (int mode = 0; mode < 3; ++mode) {
    const TraceProblem p = make_problem(dims, rank, mode);
    const index_t m = 300;  // b = max with b^3 + 3b <= 300 -> b = 6
    const index_t b = max_block_size(3, m);
    ASSERT_EQ(b, 6);
    const MemoryStats stats = measure_traffic(
        m, ReplacementPolicy::kLru,
        [&](AccessSink& sink) { trace_blocked(p, b, sink); });
    SeqProblem sp;
    sp.dims = dims;
    sp.rank = rank;
    sp.fast_memory = m;
    EXPECT_LE(static_cast<double>(stats.traffic()),
              seq_upper_bound_blocked(sp, b) * 1.05)
        << "mode " << mode;
  }
}

TEST(TraceBlocked, TrafficAboveLowerBounds) {
  const TraceProblem p = make_problem({12, 12, 12}, 4, 1);
  const index_t m = 300;
  const index_t b = max_block_size(3, m);
  const MemoryStats stats = measure_traffic(
      m, ReplacementPolicy::kLru,
      [&](AccessSink& sink) { trace_blocked(p, b, sink); });
  SeqProblem sp;
  sp.dims = p.dims;
  sp.rank = p.rank;
  sp.fast_memory = m;
  EXPECT_GE(static_cast<double>(stats.traffic()), seq_lower_bound(sp));
}

TEST(TraceBlocked, OptimalReplacementAlsoRespectsLowerBound) {
  // The lower bound holds for *any* schedule, so Belady-OPT traffic must
  // also exceed it.
  const TraceProblem p = make_problem({10, 10, 10}, 3, 0);
  const index_t m = 200;
  const index_t b = max_block_size(3, m);
  RecordingSink rec;
  trace_blocked(p, b, rec);
  const MemoryStats opt = simulate_optimal(m, rec.trace());
  SeqProblem sp;
  sp.dims = p.dims;
  sp.rank = p.rank;
  sp.fast_memory = m;
  EXPECT_GE(static_cast<double>(opt.traffic()), seq_lower_bound(sp));
  // And OPT can only improve on LRU.
  const MemoryStats lru = measure_traffic(
      m, ReplacementPolicy::kLru,
      [&](AccessSink& sink) { trace_blocked(p, b, sink); });
  EXPECT_LE(opt.traffic(), lru.traffic());
}

TEST(TraceBlocked, LargerMemoryNeverHurts) {
  const TraceProblem p = make_problem({16, 16, 16}, 4, 2);
  index_t previous = std::numeric_limits<index_t>::max();
  for (index_t m : {40, 150, 600, 2500, 10000}) {
    const index_t b = max_block_size(3, m);
    const MemoryStats stats = measure_traffic(
        m, ReplacementPolicy::kLru,
        [&](AccessSink& sink) { trace_blocked(p, b, sink); });
    EXPECT_LE(stats.traffic(), previous) << "M = " << m;
    previous = stats.traffic();
  }
}

TEST(TraceBlocked, BeatsUnblockedWhenMemoryIsScarce) {
  // The headline sequential claim: blocking reduces traffic by roughly
  // b^(N-1) on the factor-matrix terms. The memory must be small relative
  // to the factor data (N R I_k words) or Algorithm 1 simply caches
  // everything.
  const TraceProblem p = make_problem({32, 32, 32}, 16, 1);
  const index_t m = 150;  // b = 5; factor data = 3*16*32 = 1536 words >> M
  const index_t b = max_block_size(3, m);
  ASSERT_EQ(b, 5);
  const MemoryStats blocked = measure_traffic(
      m, ReplacementPolicy::kLru,
      [&](AccessSink& sink) { trace_blocked(p, b, sink); });
  const MemoryStats unblocked = measure_traffic(
      m, ReplacementPolicy::kLru,
      [&](AccessSink& sink) { trace_unblocked(p, sink); });
  EXPECT_LT(blocked.traffic() * 2, unblocked.traffic());
}

TEST(TraceMatmul, TouchesScratchAndRespectsTrivialFloor) {
  const TraceProblem p = make_problem({8, 8, 8}, 4, 0);
  const index_t m = 256;
  const MemoryStats stats = measure_traffic(
      m, ReplacementPolicy::kLru,
      [&](AccessSink& sink) { trace_matmul(p, m, sink); });
  // Must at least read X, write X_(n), form the KRP, and write B once.
  EXPECT_GE(stats.traffic(),
            2 * p.tensor_size() + p.tensor_size() / p.dims[0] * p.rank);
}

TEST(TraceMatmul, BlockedAlgorithmBeatsMatmulWhenFactorsDominate) {
  // Section VI-A: when NR = Omega(M^(1-1/N)) the tensor-aware algorithm
  // moves asymptotically fewer words. Pick a configuration in that regime.
  const TraceProblem p = make_problem({12, 12, 12}, 16, 0);
  const index_t m = 300;  // b = 6; M^(2/3) ~ 45 << NR = 48
  const index_t b = max_block_size(3, m);
  const MemoryStats blocked = measure_traffic(
      m, ReplacementPolicy::kLru,
      [&](AccessSink& sink) { trace_blocked(p, b, sink); });
  const MemoryStats matmul = measure_traffic(
      m, ReplacementPolicy::kLru,
      [&](AccessSink& sink) { trace_matmul(p, m, sink); });
  EXPECT_LT(blocked.traffic(), matmul.traffic());
}

TEST(TraceValidation, RejectsBadArguments) {
  DistinctSink sink;
  EXPECT_THROW(trace_unblocked(make_problem({4}, 2, 0), sink),
               std::invalid_argument);
  EXPECT_THROW(trace_unblocked(make_problem({4, 4}, 0, 0), sink),
               std::invalid_argument);
  EXPECT_THROW(trace_unblocked(make_problem({4, 4}, 2, 2), sink),
               std::invalid_argument);
  EXPECT_THROW(trace_blocked(make_problem({4, 4}, 2, 0), 0, sink),
               std::invalid_argument);
}

}  // namespace
}  // namespace mtk
