// Fault-injection battery: the robustness contract across the transport
// and serving stacks. Injected message drops / delays / corruption / rank
// stalls against both transports and both collective kinds must either
// leave results bit-identical to a fault-free run or surface a typed
// TransportError within the collective deadline (never a hang, never
// silent corruption). Serve-side: transient failures succeed within the
// retry budget, deadlines answer typed errors, registry eviction under
// memory pressure keeps in-flight version snapshots valid, hostile JSON
// (deep nesting, oversized lines) answers typed errors instead of killing
// the loop, and the plan-cache file survives torn writes as a cold cache.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/parsim/par_mttkrp.hpp"
#include "src/parsim/transport/fault.hpp"
#include "src/parsim/transport/thread_transport.hpp"
#include "src/parsim/transport/transport.hpp"
#include "src/planner/plan_cache.hpp"
#include "src/serve/server.hpp"
#include "src/serve/tensor_registry.hpp"
#include "src/support/json.hpp"
#include "src/support/rng.hpp"
#include "src/tensor/matrix.hpp"
#include "src/tensor/sparse_tensor.hpp"

namespace mtk {
namespace {

std::int64_t counter_value(const char* name) {
  return MetricsRegistry::global().counter(name).value();
}

std::unique_ptr<Transport> make_inner(bool threads, int ranks) {
  if (threads) return std::make_unique<ThreadTransport>(ranks);
  return std::make_unique<SimTransport>(ranks);
}

struct FaultProblem {
  SparseTensor coo;
  std::vector<Matrix> factors;
};

FaultProblem make_problem() {
  Rng rng(7);
  FaultProblem p;
  p.coo = SparseTensor::random_sparse({10, 8, 6}, 0.2, rng);
  for (index_t d : p.coo.dims()) {
    p.factors.push_back(Matrix::random_normal(d, 4, rng));
  }
  return p;
}

Matrix golden_result(const FaultProblem& p, int mode) {
  SimTransport sim(4);
  return par_mttkrp_stationary(sim, StoredTensor::coo_view(p.coo), p.factors,
                               mode, {2, 2, 1})
      .b;
}

void expect_bits_equal(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      ASSERT_EQ(a.row(i)[j], b.row(i)[j]) << "(" << i << "," << j << ")";
    }
  }
}

// ---------------------------------------------------------------------------
// Schedule script parsing.

TEST(FaultSchedule, ParsesEveryClauseWithCommentsAndCommas) {
  const FaultSchedule s = FaultSchedule::parse(
      "seed=9, delay=0.25:150  drop=0.125 # trailing comment\n"
      "corrupt=0.0625 stall=2@3:500 fail=0.5");
  EXPECT_EQ(s.seed, 9u);
  EXPECT_DOUBLE_EQ(s.delay_prob, 0.25);
  EXPECT_DOUBLE_EQ(s.delay_us, 150.0);
  EXPECT_DOUBLE_EQ(s.drop_prob, 0.125);
  EXPECT_DOUBLE_EQ(s.corrupt_prob, 0.0625);
  EXPECT_EQ(s.stall_rank, 2);
  EXPECT_EQ(s.stall_every, 3u);
  EXPECT_DOUBLE_EQ(s.stall_us, 500.0);
  EXPECT_DOUBLE_EQ(s.fail_prob, 0.5);
  EXPECT_TRUE(s.message_faults());
  // describe() round-trips through parse().
  const FaultSchedule r = FaultSchedule::parse(s.describe());
  EXPECT_EQ(r.seed, s.seed);
  EXPECT_DOUBLE_EQ(r.drop_prob, s.drop_prob);
  EXPECT_EQ(r.stall_rank, s.stall_rank);
}

TEST(FaultSchedule, RejectsMalformedClauses) {
  EXPECT_THROW(FaultSchedule::parse("delay=oops"), std::exception);
  EXPECT_THROW(FaultSchedule::parse("unknown=1"), std::exception);
  EXPECT_THROW(FaultSchedule::parse("drop=1.5"), std::exception);
  EXPECT_THROW(FaultSchedule::parse("stall=1@2"), std::exception);
}

TEST(FaultSchedule, AtFileArgLoadsScriptFromDisk) {
  const std::string path = "fault_schedule_arg.txt";
  {
    std::ofstream out(path);
    out << "# chaos\nseed=11 drop=0.5\n";
  }
  const FaultSchedule s = parse_fault_schedule_arg("@" + path);
  EXPECT_EQ(s.seed, 11u);
  EXPECT_DOUBLE_EQ(s.drop_prob, 0.5);
  std::remove(path.c_str());
}

TEST(FaultInjector, DecisionsAreDeterministicAndTransientFaultsClear) {
  FaultSchedule s = FaultSchedule::parse("seed=5 delay=0.3:100 drop=0.2 "
                                         "corrupt=0.2 fail=0.9");
  const FaultInjector a(s), b(s);
  int faults = 0;
  for (std::uint64_t seq = 0; seq < 64; ++seq) {
    const auto fa = a.on_message(0, 1, seq);
    const auto fb = b.on_message(0, 1, seq);
    EXPECT_EQ(fa.drop, fb.drop);
    EXPECT_EQ(fa.corrupt, fb.corrupt);
    EXPECT_EQ(fa.delay_us, fb.delay_us);
    if (fa.drop || fa.corrupt || fa.delay_us > 0) ++faults;
    // drop / corrupt / delay are mutually exclusive per message.
    EXPECT_LE((fa.drop ? 1 : 0) + (fa.corrupt ? 1 : 0) +
                  (fa.delay_us > 0 ? 1 : 0),
              1);
  }
  EXPECT_GT(faults, 0);
  // A transient attempt failure always clears by the second retry.
  for (std::uint64_t id = 0; id < 32; ++id) {
    EXPECT_FALSE(a.on_attempt(id, 2).fail) << "request " << id;
    EXPECT_FALSE(a.on_attempt(id, 3).fail) << "request " << id;
    EXPECT_EQ(a.on_attempt(id, 0).fail, b.on_attempt(id, 0).fail);
  }
}

// ---------------------------------------------------------------------------
// Transport-level faults, both backends x both collective kinds.

TEST(FaultTransport, DropSurfacesTypedTimeoutWithinDeadline) {
  const FaultProblem p = make_problem();
  for (bool threads : {false, true}) {
    for (CollectiveKind kind :
         {CollectiveKind::kBucket, CollectiveKind::kRecursive}) {
      auto injector = std::make_shared<const FaultInjector>(
          FaultSchedule::parse("seed=1 drop=1"));
      FaultInjectingTransport t(make_inner(threads, 4), injector);
      t.set_deadline(0.2);
      const std::int64_t timeouts0 = counter_value("mtk.transport.timeouts");
      try {
        par_mttkrp_stationary(t, StoredTensor::coo_view(p.coo), p.factors, 0,
                              {2, 2, 1}, kind);
        FAIL() << "drop=1 should not complete (threads=" << threads << ")";
      } catch (const TransportError& e) {
        // Every message dropped: the receiver's blocked wait must convert
        // into a typed timeout (threads) / the modeled drop must burn the
        // deadline budget (sim). Aborted is acceptable for ranks woken by
        // the first timeout.
        EXPECT_TRUE(e.fault_kind() == TransportErrorKind::kTimeout ||
                    e.fault_kind() == TransportErrorKind::kAborted)
            << to_string(e.fault_kind());
      }
      if (threads) {
        EXPECT_GT(counter_value("mtk.transport.timeouts"), timeouts0);
      }
      EXPECT_GT(counter_value("mtk.fault.drops"), 0);
    }
  }
}

TEST(FaultTransport, CorruptionIsDetectedNeverSilent) {
  const FaultProblem p = make_problem();
  for (bool threads : {false, true}) {
    for (CollectiveKind kind :
         {CollectiveKind::kBucket, CollectiveKind::kRecursive}) {
      auto injector = std::make_shared<const FaultInjector>(
          FaultSchedule::parse("seed=2 corrupt=1"));
      FaultInjectingTransport t(make_inner(threads, 4), injector);
      t.set_deadline(5.0);
      EXPECT_THROW(par_mttkrp_stationary(t, StoredTensor::coo_view(p.coo),
                                         p.factors, 0, {2, 2, 1}, kind),
                   TransportError);
      EXPECT_GT(counter_value("mtk.fault.corruptions"), 0);
    }
  }
}

TEST(FaultTransport, DelaysAndStallsPreserveBitExactness) {
  const FaultProblem p = make_problem();
  for (int mode = 0; mode < 2; ++mode) {
    const Matrix want = golden_result(p, mode);
    for (bool threads : {false, true}) {
      for (CollectiveKind kind :
           {CollectiveKind::kBucket, CollectiveKind::kRecursive}) {
        const std::int64_t delays0 = counter_value("mtk.fault.delays");
        const std::int64_t stalls0 = counter_value("mtk.fault.stalls");
        auto injector = std::make_shared<const FaultInjector>(
            FaultSchedule::parse("seed=3 delay=0.6:200 stall=1@1:300"));
        FaultInjectingTransport t(make_inner(threads, 4), injector);
        t.set_deadline(10.0);
        ParMttkrpResult r = par_mttkrp_stationary(
            t, StoredTensor::coo_view(p.coo), p.factors, mode, {2, 2, 1},
            kind);
        expect_bits_equal(want, r.b);
        EXPECT_GT(counter_value("mtk.fault.delays"), delays0);
        EXPECT_GT(counter_value("mtk.fault.stalls"), stalls0);
      }
    }
  }
}

TEST(FaultTransport, DeadlineAloneDoesNotPerturbCleanRuns) {
  const FaultProblem p = make_problem();
  const Matrix want = golden_result(p, 0);
  ThreadTransport t(4);
  t.set_deadline(30.0);
  ParMttkrpResult r = par_mttkrp_stationary(t, StoredTensor::coo_view(p.coo),
                                            p.factors, 0, {2, 2, 1});
  expect_bits_equal(want, r.b);
}

// ---------------------------------------------------------------------------
// Serve-side robustness.

SparseTensor serve_tensor(std::uint64_t seed) {
  Rng rng(seed);
  return SparseTensor::random_sparse({12, 10, 8}, 0.1, rng);
}

TEST(FaultServe, TransientFailureSucceedsWithinRetryBudget) {
  ServeOptions opts;
  opts.workers = 1;
  opts.chaos = std::make_shared<const FaultInjector>(
      FaultSchedule::parse("seed=4 fail=1"));  // fails attempts 0 and 1
  opts.max_retries = 2;
  opts.retry_backoff_ms = 0.1;
  MttkrpServer server(opts);
  server.registry().load("t", serve_tensor(1), StorageFormat::kCsf);

  const std::int64_t retries0 = counter_value("mtk.serve.retries");
  const JsonValue v = JsonValue::parse(server.handle(
      "{\"id\":1,\"op\":\"mttkrp\",\"tensor\":\"t\",\"rank\":4,\"mode\":0,"
      "\"seed\":3}"));
  ASSERT_TRUE(v.at("ok").as_bool()) << v.at("error").as_string();
  EXPECT_EQ(v.at("retries").as_integer(), 2);
  EXPECT_GE(counter_value("mtk.serve.retries") - retries0, 2);

  // The answer is bit-identical to a fault-free server's.
  ServeOptions clean;
  clean.workers = 1;
  MttkrpServer golden(clean);
  golden.registry().load("t", serve_tensor(1), StorageFormat::kCsf);
  const JsonValue g = JsonValue::parse(golden.handle(
      "{\"id\":1,\"op\":\"mttkrp\",\"tensor\":\"t\",\"rank\":4,\"mode\":0,"
      "\"seed\":3}"));
  EXPECT_EQ(v.at("norm").as_number(), g.at("norm").as_number());
}

TEST(FaultServe, ExhaustedRetriesAnswerTheTypedFaultKind) {
  ServeOptions opts;
  opts.workers = 1;
  opts.chaos = std::make_shared<const FaultInjector>(
      FaultSchedule::parse("seed=4 fail=1"));
  opts.max_retries = 0;  // the first injected failure is final
  MttkrpServer server(opts);
  server.registry().load("t", serve_tensor(1), StorageFormat::kCsf);
  const JsonValue v = JsonValue::parse(server.handle(
      "{\"id\":7,\"op\":\"mttkrp\",\"tensor\":\"t\",\"rank\":4,\"mode\":0}"));
  EXPECT_FALSE(v.at("ok").as_bool());
  const std::string kind = v.at("kind").as_string();
  EXPECT_TRUE(kind == "timeout" || kind == "corruption") << kind;
}

TEST(FaultServe, DeadlineAnswersTypedErrorInsteadOfRetrying) {
  ServeOptions opts;
  opts.workers = 1;
  opts.chaos = std::make_shared<const FaultInjector>(
      FaultSchedule::parse("seed=4 fail=1"));
  opts.max_retries = 5;
  opts.retry_backoff_ms = 10.0;  // min backoff 5ms always outlives 5ms
  opts.default_deadline_ms = 5.0;
  MttkrpServer server(opts);
  server.registry().load("t", serve_tensor(1), StorageFormat::kCsf);
  const std::int64_t deadlines0 =
      counter_value("mtk.serve.deadline_exceeded");
  const JsonValue v = JsonValue::parse(server.handle(
      "{\"id\":2,\"op\":\"mttkrp\",\"tensor\":\"t\",\"rank\":4,\"mode\":0}"));
  EXPECT_FALSE(v.at("ok").as_bool());
  EXPECT_EQ(v.at("kind").as_string(), "deadline_exceeded");
  EXPECT_GT(counter_value("mtk.serve.deadline_exceeded"), deadlines0);

  // A per-request deadline_ms overrides the server default.
  const JsonValue w = JsonValue::parse(server.handle(
      "{\"id\":3,\"op\":\"mttkrp\",\"tensor\":\"t\",\"rank\":4,\"mode\":0,"
      "\"deadline_ms\":60000}"));
  EXPECT_TRUE(w.at("ok").as_bool());  // retries converge under 60s
}

TEST(FaultServe, ShedDegradesOverBudgetExactRequestsToSampled) {
  ServeOptions opts;
  opts.workers = 1;
  opts.admit_max_cost = 1e-12;
  opts.shed_epsilon = 0.25;
  MttkrpServer server(opts);
  server.registry().load("t", serve_tensor(1), StorageFormat::kCsf);
  const JsonValue v = JsonValue::parse(server.handle(
      "{\"id\":1,\"op\":\"mttkrp\",\"tensor\":\"t\",\"rank\":4,\"mode\":0,"
      "\"seed\":9}"));
  ASSERT_TRUE(v.at("ok").as_bool()) << v.at("error").as_string();
  EXPECT_EQ(v.at("path").as_string(), "sampled");
  EXPECT_TRUE(v.at("degraded").as_bool());
  EXPECT_DOUBLE_EQ(v.at("shed_epsilon").as_number(), 0.25);
}

TEST(FaultRegistry, EvictionUnderPressureKeepsInFlightReadersValid) {
  TensorRegistry registry(0.25);
  auto va = registry.load("a", serve_tensor(2), StorageFormat::kCsf);
  ASSERT_NE(va, nullptr);
  const std::int64_t evictions0 = counter_value("mtk.serve.evictions");

  // Budget fits one tensor: loading "b" evicts the colder "a", but the
  // held snapshot keeps serving.
  registry.set_max_resident_bytes(va->resident_bytes() +
                                  va->resident_bytes() / 2);
  registry.load("b", serve_tensor(3), StorageFormat::kCsf);
  EXPECT_EQ(registry.get("a"), nullptr);
  EXPECT_NE(registry.get("b"), nullptr);
  EXPECT_GT(counter_value("mtk.serve.evictions"), evictions0);
  EXPECT_LE(registry.resident_bytes(), registry.max_resident_bytes());

  // The in-flight snapshot still computes, bit-identical to a fresh run on
  // the same data.
  std::vector<Matrix> factors;
  {
    Rng rng(99);
    for (index_t d : va->handle.dims()) {
      factors.push_back(Matrix::random_normal(d, 4, rng));
    }
  }
  Matrix from_snapshot = mttkrp(va->handle, factors, 0, MttkrpOptions{});
  SparseTensor same = serve_tensor(2);
  same.sort_and_dedup();
  Matrix fresh =
      mttkrp(StoredTensor::coo_view(same), factors, 0, MttkrpOptions{});
  expect_bits_equal(fresh, from_snapshot);

  // An entry larger than the whole budget stays resident: the budget
  // bounds the cold tail, it never starves the only tensor.
  registry.set_max_resident_bytes(16);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_NE(registry.get("b"), nullptr);
}

// ---------------------------------------------------------------------------
// Hostile input: JSON nesting, oversized request lines.

TEST(FaultJson, DeepNestingFailsWithParseErrorNotStackOverflow) {
  std::string deep;
  for (int i = 0; i < 4096; ++i) deep += '[';
  EXPECT_THROW(JsonValue::parse(deep), std::exception);
  std::string deep_obj = "{\"id\":1,\"x\":";
  for (int i = 0; i < 4096; ++i) deep_obj += "[";
  EXPECT_THROW(JsonValue::parse(deep_obj), std::exception);
  // 64 levels still parse fine.
  std::string ok_doc(64, '[');
  ok_doc += std::string(64, ']');
  EXPECT_NO_THROW(JsonValue::parse(ok_doc));
}

TEST(FaultServe, OversizedRequestLineAnswersTypedErrorAndLoopContinues) {
  ServeOptions opts;
  opts.workers = 1;
  opts.max_line_bytes = 256;
  MttkrpServer server(opts);
  server.registry().load("t", serve_tensor(1), StorageFormat::kCsf);

  std::FILE* in = std::tmpfile();
  ASSERT_NE(in, nullptr);
  std::string oversized = "{\"id\":1,\"op\":\"stats\",\"pad\":\"";
  oversized += std::string(512, 'x');
  oversized += "\"}\n";
  std::fputs(oversized.c_str(), in);
  std::fputs("{\"id\":2,\"op\":\"stats\"}\n", in);
  std::fputs("{\"id\":3,\"op\":\"shutdown\"}\n", in);
  std::rewind(in);

  std::FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(server.run(in, out), 0);
  std::rewind(out);
  std::vector<JsonValue> responses;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), out) != nullptr) {
    responses.push_back(JsonValue::parse(buf));
  }
  std::fclose(in);
  std::fclose(out);

  ASSERT_EQ(responses.size(), 3u);
  EXPECT_FALSE(responses[0].at("ok").as_bool());
  EXPECT_EQ(responses[0].at("kind").as_string(), "bad_request");
  // The loop survived: the following stats and shutdown still answered.
  EXPECT_TRUE(responses[1].at("ok").as_bool());
  EXPECT_TRUE(responses[2].at("ok").as_bool());
}

// ---------------------------------------------------------------------------
// Plan-cache persistence: atomic save, whole-file checksum.

TEST(FaultPlanCache, TornWriteLoadsColdAndIntactFileRoundTrips) {
  PlanCache cache;
  Rng rng(5);
  SparseTensor coo = SparseTensor::random_sparse({12, 10, 8}, 0.2, rng);
  PlannerOptions popts;
  popts.procs = 4;
  auto report = cache.get_or_plan(StoredTensor::coo_view(coo), 4, popts);
  ASSERT_NE(report, nullptr);

  Calibration cal;
  cal.measured = true;
  cal.alpha_seconds = 1.25e-6;
  const std::string path = "fault_plan_cache.txt";
  ASSERT_TRUE(cache.save(path, &cal));

  // No temp file left behind, and the intact file round-trips including
  // the calibration.
  {
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());
  }
  PlanCache loaded;
  Calibration got;
  EXPECT_TRUE(loaded.load(path, &got));
  EXPECT_EQ(loaded.size(), cache.size());
  EXPECT_TRUE(got.measured);
  EXPECT_DOUBLE_EQ(got.alpha_seconds, 1.25e-6);

  // Torn write: any truncation loads as a cold cache.
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    text.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out.write(text.data(), static_cast<std::streamsize>(text.size() / 2));
  }
  PlanCache torn;
  EXPECT_FALSE(torn.load(path));
  EXPECT_EQ(torn.size(), 0u);

  // Calibration-line tampering is caught by the whole-file checksum (the
  // per-entry sums cannot see it).
  std::string tampered = text;
  const std::size_t cal_pos = tampered.find("calibration");
  ASSERT_NE(cal_pos, std::string::npos);
  tampered[cal_pos + std::string("calibration ").size()] ^= 1;
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out.write(tampered.data(),
              static_cast<std::streamsize>(tampered.size()));
  }
  PlanCache bad;
  EXPECT_FALSE(bad.load(path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mtk
