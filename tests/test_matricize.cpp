// Tests for mode-n matricization: Kolda-Bader convention, fold/unfold
// round trips, and the coordinate maps used by the traced algorithms.
#include <gtest/gtest.h>

#include "src/support/rng.hpp"
#include "src/tensor/matricize.hpp"

namespace mtk {
namespace {

TEST(Matricize, KnownThreeWayExample) {
  // X(i,j,k) = 100*i + 10*j + k over a 2x2x2 tensor.
  DenseTensor x({2, 2, 2});
  x.fill_from([](const multi_index_t& i) {
    return static_cast<double>(100 * i[0] + 10 * i[1] + i[2]);
  });
  // Mode-0 unfolding: rows = i, columns linearize (j, k) with j fastest.
  const Matrix x0 = matricize(x, 0);
  ASSERT_EQ(x0.rows(), 2);
  ASSERT_EQ(x0.cols(), 4);
  EXPECT_DOUBLE_EQ(x0(0, 0), 0.0);    // (0,0,0)
  EXPECT_DOUBLE_EQ(x0(1, 0), 100.0);  // (1,0,0)
  EXPECT_DOUBLE_EQ(x0(0, 1), 10.0);   // (0,1,0): j fastest
  EXPECT_DOUBLE_EQ(x0(0, 2), 1.0);    // (0,0,1)
  EXPECT_DOUBLE_EQ(x0(1, 3), 111.0);  // (1,1,1)

  // Mode-1 unfolding: columns linearize (i, k) with i fastest.
  const Matrix x1 = matricize(x, 1);
  EXPECT_DOUBLE_EQ(x1(1, 0), 10.0);   // (0,1,0)
  EXPECT_DOUBLE_EQ(x1(0, 1), 100.0);  // (1,0,0)
  EXPECT_DOUBLE_EQ(x1(1, 3), 111.0);  // (1,1,1)

  // Mode-2 unfolding: columns linearize (i, j) with i fastest.
  const Matrix x2 = matricize(x, 2);
  EXPECT_DOUBLE_EQ(x2(1, 0), 1.0);    // (0,0,1)
  EXPECT_DOUBLE_EQ(x2(0, 3), 110.0);  // (1,1,0)
}

TEST(Matricize, ModeZeroIsReshape) {
  // With column-major storage, the mode-0 unfolding column index equals the
  // linear index divided by I_0.
  Rng rng(47);
  const DenseTensor x = DenseTensor::random_normal({3, 4, 5}, rng);
  const Matrix x0 = matricize(x, 0);
  for (index_t lin = 0; lin < x.size(); ++lin) {
    EXPECT_DOUBLE_EQ(x0(lin % 3, lin / 3), x[lin]);
  }
}

TEST(Matricize, FoldInvertsMatricize) {
  Rng rng(53);
  const shape_t dims{3, 4, 2, 5};
  const DenseTensor x = DenseTensor::random_normal(dims, rng);
  for (int mode = 0; mode < 4; ++mode) {
    const Matrix m = matricize(x, mode);
    const DenseTensor back = fold(m, dims, mode);
    EXPECT_DOUBLE_EQ(x.max_abs_diff(back), 0.0) << "mode " << mode;
  }
}

TEST(Matricize, CoordMapsRoundTrip) {
  const shape_t dims{3, 4, 5};
  for (int mode = 0; mode < 3; ++mode) {
    for (Odometer od(dims); od.valid(); od.next()) {
      const UnfoldingCoord rc = unfolding_coord(od.index(), dims, mode);
      EXPECT_EQ(unfolding_inverse(rc.row, rc.col, dims, mode), od.index());
    }
  }
}

TEST(Matricize, TwoWayTensorUnfoldings) {
  // For an order-2 tensor (a matrix), mode-0 unfolding is the matrix itself
  // and mode-1 is its transpose.
  DenseTensor x({2, 3});
  x.fill_from([](const multi_index_t& i) {
    return static_cast<double>(10 * i[0] + i[1]);
  });
  const Matrix x0 = matricize(x, 0);
  EXPECT_DOUBLE_EQ(x0(1, 2), 12.0);
  const Matrix x1 = matricize(x, 1);
  EXPECT_DOUBLE_EQ(x1(2, 1), 12.0);
}

TEST(Matricize, InvalidArgumentsThrow) {
  DenseTensor x({2, 2}, 0.0);
  EXPECT_THROW(matricize(x, 2), std::invalid_argument);
  EXPECT_THROW(matricize(x, -1), std::invalid_argument);
  EXPECT_THROW(fold(Matrix(3, 2), {2, 2}, 0), std::invalid_argument);
  EXPECT_THROW(unfolding_coord({0, 0, 0}, {2, 2}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace mtk
