// Tests for the Khatri-Rao product and its consistency with the
// matricization convention (X_(n) * KRP == MTTKRP).
#include <gtest/gtest.h>

#include "src/support/rng.hpp"
#include "src/tensor/khatri_rao.hpp"
#include "src/tensor/matricize.hpp"

namespace mtk {
namespace {

TEST(KhatriRao, TwoMatrixKnownValues) {
  Matrix a(2, 2), b(3, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 3; a(1, 1) = 4;
  b(0, 0) = 5; b(0, 1) = 6;
  b(1, 0) = 7; b(1, 1) = 8;
  b(2, 0) = 9; b(2, 1) = 10;
  const Matrix k = khatri_rao({a, b});
  ASSERT_EQ(k.rows(), 6);
  ASSERT_EQ(k.cols(), 2);
  // Row j corresponds to (i_a, i_b) with i_a fastest: j = i_a + 2*i_b.
  EXPECT_DOUBLE_EQ(k(0, 0), 1 * 5);   // (0,0)
  EXPECT_DOUBLE_EQ(k(1, 0), 3 * 5);   // (1,0)
  EXPECT_DOUBLE_EQ(k(2, 0), 1 * 7);   // (0,1)
  EXPECT_DOUBLE_EQ(k(5, 1), 4 * 10);  // (1,2)
}

TEST(KhatriRao, SingleMatrixIsIdentityOperation) {
  Rng rng(59);
  const Matrix a = Matrix::random_normal(4, 3, rng);
  const Matrix k = khatri_rao({a});
  EXPECT_LT(max_abs_diff(a, k), 1e-15);
}

TEST(KhatriRao, DefinitionOnThreeMatrices) {
  Rng rng(61);
  const Matrix a = Matrix::random_normal(2, 3, rng);
  const Matrix b = Matrix::random_normal(3, 3, rng);
  const Matrix c = Matrix::random_normal(4, 3, rng);
  const Matrix k = khatri_rao({a, b, c});
  ASSERT_EQ(k.rows(), 24);
  const shape_t row_dims{2, 3, 4};
  for (Odometer od(row_dims); od.valid(); od.next()) {
    const index_t j = linearize(od.index(), row_dims);
    for (index_t r = 0; r < 3; ++r) {
      const double expect = a(od.index()[0], r) * b(od.index()[1], r) *
                            c(od.index()[2], r);
      EXPECT_NEAR(k(j, r), expect, 1e-14);
    }
  }
}

TEST(KhatriRao, RankMismatchThrows) {
  EXPECT_THROW(khatri_rao({Matrix(2, 2), Matrix(3, 3)}),
               std::invalid_argument);
  EXPECT_THROW(khatri_rao(std::vector<Matrix>{}), std::invalid_argument);
}

TEST(KhatriRaoSkip, DropsTheRequestedMode) {
  Rng rng(67);
  std::vector<Matrix> factors;
  factors.push_back(Matrix::random_normal(2, 2, rng));
  factors.push_back(Matrix::random_normal(3, 2, rng));
  factors.push_back(Matrix::random_normal(4, 2, rng));
  const Matrix k1 = khatri_rao_skip(factors, 1);
  EXPECT_EQ(k1.rows(), 8);  // 2 * 4
  const Matrix direct = khatri_rao({factors[0], factors[2]});
  EXPECT_LT(max_abs_diff(k1, direct), 1e-15);
  EXPECT_THROW(khatri_rao_skip(factors, 3), std::invalid_argument);
}

TEST(KhatriRao, ConsistentWithMatricization) {
  // The load-bearing convention test: X_(n) * KRP must equal the MTTKRP of
  // Definition 2.1, computed here from scratch.
  Rng rng(71);
  const shape_t dims{3, 2, 4};
  const index_t rank = 2;
  const DenseTensor x = DenseTensor::random_normal(dims, rng);
  std::vector<Matrix> factors;
  for (index_t d : dims) {
    factors.push_back(Matrix::random_normal(d, rank, rng));
  }
  for (int mode = 0; mode < 3; ++mode) {
    const Matrix xn = matricize(x, mode);
    const Matrix krp = khatri_rao_skip(factors, mode);
    Matrix via_matmul(xn.rows(), rank);
    gemm(xn, krp, via_matmul);

    Matrix direct(dims[static_cast<std::size_t>(mode)], rank, 0.0);
    for (Odometer od(dims); od.valid(); od.next()) {
      const multi_index_t& idx = od.index();
      for (index_t r = 0; r < rank; ++r) {
        double prod = x.at(idx);
        for (int k = 0; k < 3; ++k) {
          if (k == mode) continue;
          prod *= factors[static_cast<std::size_t>(k)](idx[static_cast<std::size_t>(k)], r);
        }
        direct(idx[static_cast<std::size_t>(mode)], r) += prod;
      }
    }
    EXPECT_LT(max_abs_diff(via_matmul, direct), 1e-10) << "mode " << mode;
  }
}

}  // namespace
}  // namespace mtk
