// Machine calibration: the probes must produce finite, positive machine
// parameters; the derived α/β and γ/β ratios must be consistent; and the
// text serialization must round-trip bit-exactly (the plan-cache key
// comparison depends on that).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "src/planner/calibrate.hpp"

namespace mtk {
namespace {

TEST(Calibrate, UnmeasuredCalibrationKeepsBandwidthOnlyObjective) {
  const Calibration cal;
  EXPECT_FALSE(cal.measured);
  EXPECT_DOUBLE_EQ(cal.latency_word_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(cal.flop_word_ratio(StorageFormat::kDense), 0.0);
  EXPECT_DOUBLE_EQ(cal.flop_word_ratio(StorageFormat::kCoo), 0.0);
  EXPECT_DOUBLE_EQ(cal.flop_word_ratio(StorageFormat::kCsf), 0.0);
}

TEST(Calibrate, ProbesProducePositiveFiniteParameters) {
  CalibrateOptions opts;
  // Small probes: this must stay fast under sanitizers in CI.
  opts.probe_words = index_t{1} << 16;
  opts.small_copies = 512;
  opts.kernel_dim = 16;
  opts.kernel_rank = 4;
  opts.repetitions = 2;
  const Calibration cal = calibrate_machine(opts);
  EXPECT_TRUE(cal.measured);
  for (const double v :
       {cal.alpha_seconds, cal.beta_seconds_per_word,
        cal.dense_seconds_per_flop, cal.coo_seconds_per_flop,
        cal.csf_seconds_per_flop, cal.coo_privatized_seconds_per_flop,
        cal.coo_tiled_seconds_per_flop, cal.csf_privatized_seconds_per_flop,
        cal.csf_tiled_seconds_per_flop}) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GT(v, 0.0);
  }
  // The measured variant rates must resolve to a definite tiled-or-
  // privatized recommendation for both sparse backends.
  for (const StorageFormat f : {StorageFormat::kCoo, StorageFormat::kCsf}) {
    const SparseKernelVariant v = cal.preferred_variant(f);
    EXPECT_TRUE(v == SparseKernelVariant::kTiled ||
                v == SparseKernelVariant::kPrivatized);
  }
  EXPECT_EQ(cal.preferred_variant(StorageFormat::kDense),
            SparseKernelVariant::kAuto);
  EXPECT_TRUE(std::isfinite(cal.latency_word_ratio()));
  EXPECT_GT(cal.latency_word_ratio(), 0.0);
  for (const StorageFormat f :
       {StorageFormat::kDense, StorageFormat::kCoo, StorageFormat::kCsf}) {
    EXPECT_GT(cal.flop_word_ratio(f), 0.0);
    EXPECT_DOUBLE_EQ(cal.flop_word_ratio(f),
                     cal.seconds_per_flop(f) / cal.beta_seconds_per_word);
  }
}

TEST(Calibrate, SerializationRoundTripsBitExactly) {
  Calibration cal;
  cal.alpha_seconds = 1.0 / 3.0 * 1e-6;  // not representable in decimal
  cal.beta_seconds_per_word = 7.0 / 11.0 * 1e-9;
  cal.dense_seconds_per_flop = 1.0e-10;
  cal.coo_seconds_per_flop = 1.3e-10;
  cal.csf_seconds_per_flop = 0.9e-10;
  cal.coo_privatized_seconds_per_flop = 1.0 / 7.0 * 1e-9;
  cal.coo_tiled_seconds_per_flop = 1.0 / 13.0 * 1e-9;
  cal.csf_privatized_seconds_per_flop = 1.0 / 17.0 * 1e-9;
  cal.csf_tiled_seconds_per_flop = 1.0 / 19.0 * 1e-9;
  cal.measured = true;

  std::ostringstream out;
  write_calibration(out, cal);
  const std::string line = out.str();
  ASSERT_EQ(line.compare(0, 12, "calibration "), 0);

  Calibration parsed;
  ASSERT_TRUE(parse_calibration(line.substr(12), parsed));
  EXPECT_TRUE(parsed == cal);
}

TEST(Calibrate, MalformedPayloadsRejectedWithoutSideEffects) {
  Calibration cal;
  cal.alpha_seconds = 42.0;
  for (const char* payload :
       {"", "1",
        // Too few fields (the seed's 5-double layout must now be rejected).
        "1 0x1p-3 0x1p-3 0x1p-3 0x1p-3 0x1p-3",
        "2 1 1 1 1 1 1 1 1 1",
        "1 0x1p-3 junk 0x1p-3 0x1p-3 0x1p-3 0x1p-3 0x1p-3 0x1p-3 0x1p-3",
        "yes 0x1p-3 0x1p-3 0x1p-3 0x1p-3 0x1p-3 0x1p-3 0x1p-3 0x1p-3 "
        "0x1p-3"}) {
    EXPECT_FALSE(parse_calibration(payload, cal)) << payload;
    EXPECT_DOUBLE_EQ(cal.alpha_seconds, 42.0) << payload;
  }
}

}  // namespace
}  // namespace mtk
