// Tests for sequential and parallel CP-ALS: exact recovery of synthetic
// low-rank tensors, fit monotonicity, backend equivalence, and the parallel
// driver's agreement with the sequential one.
#include <gtest/gtest.h>

#include <cmath>

#include "src/cp/cp_als.hpp"
#include "src/cp/par_cp_als.hpp"
#include "src/support/rng.hpp"

namespace mtk {
namespace {

DenseTensor synthetic_low_rank(const shape_t& dims, index_t rank,
                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Matrix> factors;
  for (index_t d : dims) {
    factors.push_back(Matrix::random_uniform(d, rank, rng, 0.1, 1.0));
  }
  std::vector<double> lambda(static_cast<std::size_t>(rank), 1.0);
  return DenseTensor::from_cp(factors, lambda);
}

TEST(CpAls, RecoversExactLowRankTensor) {
  const DenseTensor x = synthetic_low_rank({8, 9, 10}, 3, 5001);
  CpAlsOptions opts;
  opts.rank = 3;
  opts.max_iterations = 200;
  opts.tolerance = 1e-12;
  const CpAlsResult result = cp_als(x, opts);
  EXPECT_GT(result.final_fit, 0.999);
  // Reconstruction error must match the fit.
  const DenseTensor approx = result.model.reconstruct();
  EXPECT_LT(x.max_abs_diff(approx), 0.05 * x.frobenius_norm());
}

TEST(CpAls, FitIsMonotoneNonDecreasing) {
  // ALS is a block-coordinate descent on the residual, so the fit cannot
  // decrease (up to numerical noise).
  const DenseTensor x = synthetic_low_rank({6, 7, 8}, 4, 5003);
  CpAlsOptions opts;
  opts.rank = 4;
  opts.max_iterations = 40;
  opts.tolerance = 0.0;  // run all iterations
  const CpAlsResult result = cp_als(x, opts);
  for (std::size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_GE(result.trace[i].fit, result.trace[i - 1].fit - 1e-9)
        << "iteration " << i;
  }
}

TEST(CpAls, ConvergesAndStops) {
  const DenseTensor x = synthetic_low_rank({6, 6, 6}, 2, 5007);
  CpAlsOptions opts;
  opts.rank = 2;
  opts.max_iterations = 500;
  opts.tolerance = 1e-7;
  const CpAlsResult result = cp_als(x, opts);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.iterations, 500);
}

TEST(CpAls, AllMttkrpBackendsGiveTheSameTrajectory) {
  // The backend changes arithmetic order, not semantics; with the same seed
  // the fits must agree to high precision.
  const DenseTensor x = synthetic_low_rank({6, 5, 7}, 3, 5009);
  std::vector<double> fits;
  for (MttkrpAlgo algo : {MttkrpAlgo::kReference, MttkrpAlgo::kBlocked,
                          MttkrpAlgo::kMatmul, MttkrpAlgo::kTwoStep}) {
    CpAlsOptions opts;
    opts.rank = 3;
    opts.max_iterations = 10;
    opts.tolerance = 0.0;
    opts.mttkrp.algo = algo;
    opts.mttkrp.block_size = 3;
    fits.push_back(cp_als(x, opts).final_fit);
  }
  for (std::size_t i = 1; i < fits.size(); ++i) {
    EXPECT_NEAR(fits[i], fits[0], 1e-8);
  }
}

TEST(CpAls, NoisyTensorStillFitsWell) {
  Rng rng(5011);
  DenseTensor x = synthetic_low_rank({8, 8, 8}, 3, 5013);
  const double scale = x.frobenius_norm() / std::sqrt(512.0);
  for (index_t i = 0; i < x.size(); ++i) {
    x[i] += 0.01 * scale * rng.normal();
  }
  CpAlsOptions opts;
  opts.rank = 3;
  opts.max_iterations = 100;
  const CpAlsResult result = cp_als(x, opts);
  EXPECT_GT(result.final_fit, 0.95);
}

TEST(CpAls, HigherOrderTensor) {
  const DenseTensor x = synthetic_low_rank({4, 5, 3, 4}, 2, 5017);
  CpAlsOptions opts;
  opts.rank = 2;
  opts.max_iterations = 150;
  const CpAlsResult result = cp_als(x, opts);
  EXPECT_GT(result.final_fit, 0.999);
}

TEST(CpAls, Validation) {
  const DenseTensor x = synthetic_low_rank({4, 4}, 2, 5019);
  CpAlsOptions opts;
  opts.rank = 0;
  EXPECT_THROW(cp_als(x, opts), std::invalid_argument);
  opts.rank = 2;
  opts.max_iterations = 0;
  EXPECT_THROW(cp_als(x, opts), std::invalid_argument);
  const DenseTensor zero({3, 3}, 0.0);
  opts.max_iterations = 5;
  EXPECT_THROW(cp_als(zero, opts), std::invalid_argument);
}

TEST(CpModelNorm, MatchesDirectComputation) {
  Rng rng(5023);
  std::vector<Matrix> factors;
  factors.push_back(Matrix::random_normal(4, 2, rng));
  factors.push_back(Matrix::random_normal(5, 2, rng));
  const std::vector<double> lambda{1.5, -0.5};
  std::vector<Matrix> grams;
  for (const Matrix& a : factors) grams.push_back(gram(a));
  const double norm_sq = cp_model_norm_squared(grams, lambda);
  const DenseTensor t = DenseTensor::from_cp(factors, lambda);
  EXPECT_NEAR(norm_sq, std::pow(t.frobenius_norm(), 2.0),
              1e-9 * std::max(1.0, norm_sq));
}

// ---------------------------------------------------------------------------
// Parallel CP-ALS.

TEST(ParCpAls, MatchesSequentialFit) {
  const DenseTensor x = synthetic_low_rank({8, 8, 8}, 3, 5027);

  CpAlsOptions seq_opts;
  seq_opts.rank = 3;
  seq_opts.max_iterations = 8;
  seq_opts.tolerance = 0.0;
  seq_opts.seed = 99;
  const CpAlsResult seq = cp_als(x, seq_opts);

  ParCpAlsOptions par_opts;
  par_opts.rank = 3;
  par_opts.max_iterations = 8;
  par_opts.tolerance = 0.0;
  par_opts.grid = {2, 2, 2};
  par_opts.seed = 99;
  const ParCpAlsResult par = par_cp_als(x, par_opts);

  ASSERT_EQ(par.trace.size(), seq.trace.size());
  for (std::size_t i = 0; i < par.trace.size(); ++i) {
    EXPECT_NEAR(par.trace[i].fit, seq.trace[i].fit, 1e-8)
        << "iteration " << i;
  }
}

TEST(ParCpAls, CountsCommunicationPerIteration) {
  const DenseTensor x = synthetic_low_rank({8, 8, 8}, 4, 5031);
  ParCpAlsOptions opts;
  opts.rank = 4;
  opts.max_iterations = 3;
  opts.tolerance = 0.0;
  opts.grid = {2, 2, 2};
  const ParCpAlsResult result = par_cp_als(x, opts);
  ASSERT_EQ(result.trace.size(), 3u);
  for (const ParCpAlsIterate& it : result.trace) {
    EXPECT_GT(it.mttkrp_words_max, 0);
    EXPECT_GT(it.gram_words_max, 0);
  }
  // Every iteration moves the same words (same distributions every sweep).
  EXPECT_EQ(result.trace[0].mttkrp_words_max,
            result.trace[1].mttkrp_words_max);
  // The totals sum the per-iteration traces, plus — for the Gram side —
  // the N initialization All-Reduces that precede iteration 1 (one extra
  // iteration's worth of Gram traffic on top of the trace sum).
  index_t mttkrp_sum = 0;
  index_t gram_sum = 0;
  for (const ParCpAlsIterate& it : result.trace) {
    mttkrp_sum += it.mttkrp_words_max;
    gram_sum += it.gram_words_max;
  }
  EXPECT_EQ(result.total_mttkrp_words_max, mttkrp_sum);
  EXPECT_EQ(result.total_gram_words_max,
            gram_sum + result.trace[0].gram_words_max);
  EXPECT_GT(result.total_mttkrp_words_max,
            result.total_gram_words_max -
                result.trace[0].gram_words_max);  // MTTKRP dominates per iter
}

TEST(ParCpAls, SingleProcessorGridMovesOnlyGramWords) {
  const DenseTensor x = synthetic_low_rank({6, 6, 6}, 2, 5039);
  ParCpAlsOptions opts;
  opts.rank = 2;
  opts.max_iterations = 2;
  opts.tolerance = 0.0;
  opts.grid = {1, 1, 1};
  const ParCpAlsResult result = par_cp_als(x, opts);
  EXPECT_EQ(result.total_mttkrp_words_max, 0);
  EXPECT_EQ(result.total_gram_words_max, 0);  // singleton all-reduce is free
}

TEST(ParCpAls, Validation) {
  const DenseTensor x = synthetic_low_rank({6, 6, 6}, 2, 5041);
  ParCpAlsOptions opts;
  opts.rank = 2;
  opts.grid = {2, 2};  // wrong dimensionality
  EXPECT_THROW(par_cp_als(x, opts), std::invalid_argument);
}

}  // namespace
}  // namespace mtk
