// Tests for Algorithms 3 and 4 on the simulated machine: correctness against
// the sequential reference over grid sweeps, exact communication counts
// against Eqs. (14) and (18) for divisible configurations, degeneracy of
// Algorithm 4 to Algorithm 3 at P0 = 1, and lower-bound consistency.
#include <gtest/gtest.h>

#include <tuple>

#include "src/bounds/parallel_bounds.hpp"
#include "src/costmodel/grid_search.hpp"
#include "src/mttkrp/mttkrp.hpp"
#include "src/parsim/par_mttkrp.hpp"
#include "src/support/rng.hpp"

namespace mtk {
namespace {

struct Problem {
  DenseTensor x;
  std::vector<Matrix> factors;
};

Problem make_problem(const shape_t& dims, index_t rank, std::uint64_t seed) {
  Rng rng(seed);
  Problem p;
  p.x = DenseTensor::random_normal(dims, rng);
  for (index_t d : dims) {
    p.factors.push_back(Matrix::random_normal(d, rank, rng));
  }
  return p;
}

// ---------------------------------------------------------------------------
// Correctness sweeps.

using StatParam = std::tuple<shape_t, index_t, int, std::vector<int>>;

class StationarySweep : public ::testing::TestWithParam<StatParam> {};

TEST_P(StationarySweep, MatchesSequentialReference) {
  const auto& [dims, rank, mode, grid] = GetParam();
  const Problem p = make_problem(dims, rank, 1009);
  const Matrix expected = mttkrp_reference(p.x, p.factors, mode);
  const ParMttkrpResult result =
      par_mttkrp_stationary(p.x, p.factors, mode, grid);
  EXPECT_LT(max_abs_diff(result.b, expected), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, StationarySweep,
    ::testing::Values(
        StatParam{{8, 8, 8}, 4, 0, {2, 2, 2}},
        StatParam{{8, 8, 8}, 4, 1, {2, 2, 2}},
        StatParam{{8, 8, 8}, 4, 2, {2, 2, 2}},
        StatParam{{8, 8, 8}, 4, 0, {8, 1, 1}},   // 1D over mode 0
        StatParam{{8, 8, 8}, 4, 1, {1, 1, 8}},   // 1D over mode 2
        StatParam{{8, 8, 8}, 4, 2, {4, 2, 1}},
        StatParam{{7, 5, 9}, 3, 1, {2, 2, 3}},   // non-divisible blocks
        StatParam{{6, 6}, 2, 0, {3, 2}},         // order 2
        StatParam{{6, 6}, 2, 1, {2, 3}},
        StatParam{{4, 4, 4, 4}, 3, 2, {2, 1, 2, 2}},  // order 4
        StatParam{{8, 8, 8}, 4, 0, {1, 1, 1}}));  // single processor

class GeneralSweep : public ::testing::TestWithParam<StatParam> {};

TEST_P(GeneralSweep, MatchesSequentialReference) {
  const auto& [dims, rank, mode, grid] = GetParam();
  const Problem p = make_problem(dims, rank, 2003);
  const Matrix expected = mttkrp_reference(p.x, p.factors, mode);
  const ParMttkrpResult result =
      par_mttkrp_general(p.x, p.factors, mode, grid);
  EXPECT_LT(max_abs_diff(result.b, expected), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, GeneralSweep,
    ::testing::Values(
        StatParam{{8, 8, 8}, 4, 0, {2, 2, 2, 1}},  // P0=2, tensor gathered
        StatParam{{8, 8, 8}, 4, 1, {4, 2, 1, 1}},
        StatParam{{8, 8, 8}, 4, 2, {2, 1, 2, 2}},
        StatParam{{8, 8, 8}, 8, 0, {8, 1, 1, 1}},  // pure rank parallelism
        StatParam{{7, 5, 9}, 4, 1, {2, 2, 1, 3}},  // non-divisible
        StatParam{{6, 6}, 4, 0, {2, 3, 1}},        // order 2, (N+1)=3 grid
        StatParam{{8, 8, 8}, 4, 1, {1, 2, 2, 2}},  // P0=1 degenerates to Alg3
        StatParam{{4, 4, 4, 4}, 4, 3, {2, 1, 2, 1, 2}}));  // order 4

TEST(ParMttkrp, GeneralWithP0EqualOneMatchesStationaryCounts) {
  const Problem p = make_problem({8, 8, 8}, 4, 3001);
  const std::vector<int> stat_grid{2, 2, 2};
  const std::vector<int> gen_grid{1, 2, 2, 2};
  for (int mode = 0; mode < 3; ++mode) {
    const ParMttkrpResult stat =
        par_mttkrp_stationary(p.x, p.factors, mode, stat_grid);
    const ParMttkrpResult gen =
        par_mttkrp_general(p.x, p.factors, mode, gen_grid);
    EXPECT_LT(max_abs_diff(stat.b, gen.b), 1e-10) << "mode " << mode;
    EXPECT_EQ(stat.max_words_moved, gen.max_words_moved) << "mode " << mode;
    EXPECT_EQ(stat.total_words_sent, gen.total_words_sent) << "mode " << mode;
  }
}

// ---------------------------------------------------------------------------
// Exact communication counts for divisible configurations.

TEST(ParMttkrp, StationaryCountsMatchEq14Exactly) {
  // All dimensions divide evenly, so per-rank words must match Eq. (14):
  // each rank sends exactly sum_k (P/P_k - 1) * I_k R / P words and receives
  // the same amount (balanced chunks, bucket collectives).
  const shape_t dims{8, 8, 8};
  const index_t rank = 4;
  const std::vector<int> grid{2, 2, 2};
  const Problem p = make_problem(dims, rank, 4001);
  Machine machine(8);
  par_mttkrp_stationary(machine, p.x, p.factors, 0, grid);

  CostProblem cp;
  cp.dims = dims;
  cp.rank = rank;
  const double eq14 = stationary_comm_cost(cp, {2, 2, 2});
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(machine.stats(r).words_sent, static_cast<index_t>(eq14))
        << "rank " << r;
    EXPECT_EQ(machine.stats(r).words_received, static_cast<index_t>(eq14))
        << "rank " << r;
  }
}

TEST(ParMttkrp, GeneralCountsMatchEq18Exactly) {
  const shape_t dims{8, 8, 8};
  const index_t rank = 8;
  const std::vector<int> grid{2, 2, 2, 1};  // P0=2, P=8
  const Problem p = make_problem(dims, rank, 4003);
  Machine machine(8);
  par_mttkrp_general(machine, p.x, p.factors, 0, grid);

  CostProblem cp;
  cp.dims = dims;
  cp.rank = rank;
  const double eq18 = general_comm_cost(cp, {2, 2, 2, 1});
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(machine.stats(r).words_sent, static_cast<index_t>(eq18))
        << "rank " << r;
  }
}

TEST(ParMttkrp, SingleProcessorMovesNoWords) {
  const Problem p = make_problem({4, 4, 4}, 2, 4007);
  const ParMttkrpResult r =
      par_mttkrp_stationary(p.x, p.factors, 0, {1, 1, 1});
  EXPECT_EQ(r.max_words_moved, 0);
  EXPECT_EQ(r.total_words_sent, 0);
}

// ---------------------------------------------------------------------------
// Bounds consistency.

TEST(ParMttkrp, MeasuredWordsRespectLowerBound) {
  // The bottleneck processor's measured traffic must be at least the
  // memory-independent lower bound (with gamma = delta = 1, the algorithm's
  // own balanced distribution).
  const shape_t dims{8, 8, 8};
  const index_t rank = 4;
  const Problem p = make_problem(dims, rank, 4013);
  for (const std::vector<int>& grid :
       {std::vector<int>{2, 2, 2}, std::vector<int>{4, 2, 1},
        std::vector<int>{8, 1, 1}}) {
    const ParMttkrpResult r =
        par_mttkrp_stationary(p.x, p.factors, 1, grid);
    ParProblem lb;
    lb.dims = dims;
    lb.rank = rank;
    lb.procs = 8;
    const double bound = std::max(
        {0.0, par_lower_bound_thm42(lb), par_lower_bound_thm43(lb)});
    EXPECT_GE(static_cast<double>(r.max_words_moved), bound)
        << "grid " << grid[0] << "x" << grid[1] << "x" << grid[2];
  }
}

TEST(ParMttkrp, OptimalGridBeatsDegenerateGrid) {
  // The grid-shape ablation in miniature: the Eq. (14)-optimal grid must
  // move at most as many words as a 1D grid (Aggour-Yener style).
  const shape_t dims{8, 8, 8};
  const index_t rank = 4;
  const Problem p = make_problem(dims, rank, 4019);
  const ParMttkrpResult balanced =
      par_mttkrp_stationary(p.x, p.factors, 0, {2, 2, 2});
  const ParMttkrpResult degenerate =
      par_mttkrp_stationary(p.x, p.factors, 0, {8, 1, 1});
  EXPECT_LT(balanced.max_words_moved, degenerate.max_words_moved);
}

TEST(ParMttkrp, PhaseBreakdownIsRecorded) {
  const Problem p = make_problem({8, 8, 8}, 4, 4021);
  const ParMttkrpResult r =
      par_mttkrp_stationary(p.x, p.factors, 1, {2, 2, 2});
  // N-1 = 2 all-gather phases plus one reduce-scatter.
  ASSERT_EQ(r.phases.size(), 3u);
  EXPECT_EQ(r.phases.back().label, "reduce-scatter B");
  for (const PhaseRecord& phase : r.phases) {
    EXPECT_EQ(phase.group_size, 4);  // P / P_k = 8 / 2
    EXPECT_GT(phase.max_words_one_rank, 0);
  }
}

// ---------------------------------------------------------------------------
// Validation.

TEST(ParMttkrpValidation, RejectsBadGrids) {
  const Problem p = make_problem({4, 4, 4}, 2, 4027);
  Machine machine(8);
  // Wrong dimensionality.
  EXPECT_THROW(par_mttkrp_stationary(machine, p.x, p.factors, 0, {2, 4}),
               std::invalid_argument);
  // Product mismatch with machine size.
  EXPECT_THROW(par_mttkrp_stationary(machine, p.x, p.factors, 0, {2, 2, 1}),
               std::invalid_argument);
  // Grid extent exceeding a tensor dimension.
  Machine machine2(8);
  EXPECT_THROW(
      par_mttkrp_stationary(machine2, p.x, p.factors, 0, {8, 1, 1}),
      std::invalid_argument);
  // P0 exceeding R.
  Machine machine3(8);
  EXPECT_THROW(par_mttkrp_general(machine3, p.x, p.factors, 0, {8, 1, 1, 1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mtk
