// End-to-end tests for the storage-polymorphic parallel CP-ALS: convergence
// on a synthetic low-rank tensor held in sparse storage (fit -> 1, monotone
// trace), agreement between the dense, COO, and CSF paths (identical
// simulated communication under the block scheme), the medium-grained
// partition, and a FROSTT .tns round trip feeding the same driver.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/cp/cp_als.hpp"
#include "src/cp/par_cp_als.hpp"
#include "src/io/tensor_io.hpp"
#include "src/support/rng.hpp"
#include "src/tensor/csf.hpp"

namespace mtk {
namespace {

// Rank-3 model with positive factors, materialized and re-stored as COO; an
// exactly low-rank input the solver must fit to ~1.
SparseTensor low_rank_coo(const shape_t& dims, index_t rank,
                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Matrix> factors;
  for (index_t d : dims) {
    factors.push_back(Matrix::random_uniform(d, rank, rng));
  }
  const std::vector<double> lambda(static_cast<std::size_t>(rank), 1.0);
  return SparseTensor::from_dense(DenseTensor::from_cp(factors, lambda));
}

void expect_monotone_fit(const ParCpAlsResult& r) {
  double previous = -1.0;
  for (const ParCpAlsIterate& it : r.trace) {
    EXPECT_GE(it.fit, previous - 1e-7) << "iteration " << it.iteration;
    previous = it.fit;
  }
}

TEST(ParSparseCpAls, ConvergesOnLowRankTensorFromCooAndCsf) {
  const SparseTensor coo = low_rank_coo({8, 7, 6}, 3, 20260730);
  const CsfTensor csf = CsfTensor::from_coo(coo);

  ParCpAlsOptions opts;
  opts.rank = 3;
  opts.max_iterations = 80;
  opts.tolerance = 1e-10;
  opts.grid = {2, 2, 2};

  const ParCpAlsResult r_coo = par_cp_als(coo, opts);
  EXPECT_GT(r_coo.final_fit, 0.99);
  expect_monotone_fit(r_coo);
  EXPECT_GT(r_coo.total_mttkrp_words_max, 0);
  EXPECT_GT(r_coo.total_gram_words_max, 0);

  const ParCpAlsResult r_csf = par_cp_als(csf, opts);
  EXPECT_GT(r_csf.final_fit, 0.99);
  expect_monotone_fit(r_csf);
}

TEST(ParSparseCpAls, BackendsAgreeWithDenseRunAndMoveIdenticalWords) {
  // Same tensor, three storage formats, same seed: the iterates differ only
  // by local-kernel summation order, so the fits track each other tightly,
  // and under the block scheme every collective is identical.
  const SparseTensor coo = low_rank_coo({6, 8, 5}, 2, 31);
  const CsfTensor csf = CsfTensor::from_coo(coo);
  const DenseTensor dense = coo.to_dense();

  ParCpAlsOptions opts;
  opts.rank = 2;
  opts.max_iterations = 10;
  opts.tolerance = 0.0;  // run all iterations on every backend
  opts.grid = {2, 2, 1};

  const ParCpAlsResult r_dense = par_cp_als(dense, opts);
  const ParCpAlsResult r_coo = par_cp_als(coo, opts);
  const ParCpAlsResult r_csf = par_cp_als(csf, opts);

  ASSERT_EQ(r_dense.iterations, r_coo.iterations);
  ASSERT_EQ(r_dense.iterations, r_csf.iterations);
  EXPECT_NEAR(r_coo.final_fit, r_dense.final_fit, 1e-6);
  EXPECT_NEAR(r_csf.final_fit, r_dense.final_fit, 1e-6);
  EXPECT_EQ(r_coo.total_mttkrp_words_max, r_dense.total_mttkrp_words_max);
  EXPECT_EQ(r_csf.total_mttkrp_words_max, r_dense.total_mttkrp_words_max);
  EXPECT_EQ(r_coo.total_gram_words_max, r_dense.total_gram_words_max);
}

TEST(ParSparseCpAls, MatchesSequentialCpAlsFit) {
  const SparseTensor coo = low_rank_coo({6, 6, 6}, 2, 47);

  CpAlsOptions seq_opts;
  seq_opts.rank = 2;
  seq_opts.max_iterations = 15;
  seq_opts.tolerance = 0.0;
  const CpAlsResult seq = cp_als(coo, seq_opts);

  ParCpAlsOptions par_opts;
  par_opts.rank = 2;
  par_opts.max_iterations = 15;
  par_opts.tolerance = 0.0;
  par_opts.grid = {2, 2, 2};
  const ParCpAlsResult par = par_cp_als(coo, par_opts);

  ASSERT_EQ(seq.iterations, par.iterations);
  EXPECT_NEAR(seq.final_fit, par.final_fit, 1e-6);
}

TEST(ParSparseCpAls, MediumGrainedPartitionConverges)
{
  // Skew the tensor toward low coordinates so the nonzero-balanced
  // partition differs from the uniform one, then verify the driver still
  // converges on it.
  SparseTensor x({16, 6, 6});
  Rng rng(53);
  std::vector<Matrix> factors;
  for (index_t d : {16, 6, 6}) {
    factors.push_back(Matrix::random_uniform(static_cast<index_t>(d), 2, rng));
  }
  const DenseTensor dense =
      DenseTensor::from_cp(factors, std::vector<double>(2, 1.0));
  // Keep only entries in the first quarter of mode 0 (plus a corner entry
  // so the extent survives from_dense).
  SparseTensor full = SparseTensor::from_dense(dense);
  for (index_t p = 0; p < full.nnz(); ++p) {
    if (full.index(0, p) < 4 || full.index(0, p) == 15) {
      x.push_back(full.coordinate(p), full.value(p));
    }
  }
  x.sort_and_dedup();

  ParCpAlsOptions opts;
  opts.rank = 2;
  opts.max_iterations = 40;
  opts.tolerance = 1e-10;
  opts.grid = {4, 2, 1};
  opts.partition = SparsePartitionScheme::kMediumGrained;
  const ParCpAlsResult r = par_cp_als(x, opts);
  expect_monotone_fit(r);
  EXPECT_GT(r.final_fit, 0.5);  // truncated model is no longer exactly rank-2
}

TEST(ParSparseCpAls, FrosttRoundTripFeedsTheSameDecomposition) {
  const SparseTensor coo = low_rank_coo({7, 5, 6}, 2, 61);
  const std::string path =
      ::testing::TempDir() + "par_sparse_cp_als_roundtrip.tns";
  save_tensor_tns(coo, path);
  const SparseTensor loaded = load_tensor_tns(path);
  std::remove(path.c_str());

  // max_digits10 formatting makes the round trip exact.
  ASSERT_EQ(loaded.dims(), coo.dims());
  ASSERT_EQ(loaded.nnz(), coo.nnz());
  for (index_t p = 0; p < coo.nnz(); ++p) {
    for (int k = 0; k < coo.order(); ++k) {
      ASSERT_EQ(loaded.index(k, p), coo.index(k, p));
    }
    ASSERT_EQ(loaded.value(p), coo.value(p));
  }

  ParCpAlsOptions opts;
  opts.rank = 2;
  opts.max_iterations = 10;
  opts.tolerance = 0.0;
  opts.grid = {2, 1, 2};
  const ParCpAlsResult from_memory = par_cp_als(coo, opts);
  const ParCpAlsResult from_file = par_cp_als(loaded, opts);
  EXPECT_EQ(from_memory.final_fit, from_file.final_fit);
  EXPECT_EQ(from_memory.total_mttkrp_words_max,
            from_file.total_mttkrp_words_max);
}

TEST(ParSparseCpAlsValidation, RejectsBadGridAndZeroTensor) {
  const SparseTensor coo = low_rank_coo({6, 6, 6}, 2, 71);
  ParCpAlsOptions opts;
  opts.rank = 2;
  opts.grid = {2, 2};  // wrong order
  EXPECT_THROW(par_cp_als(coo, opts), std::invalid_argument);

  SparseTensor zero({4, 4, 4});
  opts.grid = {2, 2, 2};
  EXPECT_THROW(par_cp_als(zero, opts), std::invalid_argument);
}

}  // namespace
}  // namespace mtk
