// Algorithm 3/4 with recursive-doubling/halving collectives: identical
// results and word counts, fewer messages (the Section VI-B remark that
// extreme P needs "more efficient algorithms" for the collectives).
#include <gtest/gtest.h>

#include "src/mttkrp/mttkrp.hpp"
#include "src/parsim/par_mttkrp.hpp"
#include "src/support/rng.hpp"

namespace mtk {
namespace {

struct Problem {
  DenseTensor x;
  std::vector<Matrix> factors;
};

Problem make_problem(const shape_t& dims, index_t rank, std::uint64_t seed) {
  Rng rng(seed);
  Problem p;
  p.x = DenseTensor::random_normal(dims, rng);
  for (index_t d : dims) {
    p.factors.push_back(Matrix::random_normal(d, rank, rng));
  }
  return p;
}

index_t max_messages(const Machine& machine) {
  index_t best = 0;
  for (int r = 0; r < machine.num_ranks(); ++r) {
    best = std::max(best, machine.stats(r).messages_sent);
  }
  return best;
}

TEST(ParCollectiveChoice, StationarySameWordsFewerMessages) {
  const Problem p = make_problem({16, 16, 16}, 8, 13001);
  const std::vector<int> grid{2, 4, 2};  // power-of-two groups everywhere
  const Matrix expected = mttkrp_reference(p.x, p.factors, 0);

  Machine bucket(16), recursive(16);
  const ParMttkrpResult rb = par_mttkrp_stationary(
      bucket, p.x, p.factors, 0, grid, CollectiveKind::kBucket);
  const ParMttkrpResult rr = par_mttkrp_stationary(
      recursive, p.x, p.factors, 0, grid, CollectiveKind::kRecursive);

  EXPECT_LT(max_abs_diff(rb.b, expected), 1e-9);
  EXPECT_LT(max_abs_diff(rr.b, expected), 1e-9);
  for (int r = 0; r < 16; ++r) {
    EXPECT_EQ(bucket.stats(r).words_sent, recursive.stats(r).words_sent)
        << "rank " << r;
  }
  EXPECT_LT(max_messages(recursive), max_messages(bucket));
}

TEST(ParCollectiveChoice, GeneralAlgorithmAlsoSupportsRecursive) {
  const Problem p = make_problem({8, 8, 8}, 8, 13003);
  const std::vector<int> grid{2, 2, 2, 1};
  const Matrix expected = mttkrp_reference(p.x, p.factors, 1);

  Machine bucket(8), recursive(8);
  const ParMttkrpResult rb = par_mttkrp_general(
      bucket, p.x, p.factors, 1, grid, CollectiveKind::kBucket);
  const ParMttkrpResult rr = par_mttkrp_general(
      recursive, p.x, p.factors, 1, grid, CollectiveKind::kRecursive);

  EXPECT_LT(max_abs_diff(rb.b, expected), 1e-9);
  EXPECT_LT(max_abs_diff(rr.b, expected), 1e-9);
  EXPECT_EQ(rb.max_words_moved, rr.max_words_moved);
  EXPECT_LE(max_messages(recursive), max_messages(bucket));
}

TEST(ParCollectiveChoice, FallsBackGracefullyOnOddGroups) {
  // 3-way hyperslices are not powers of two; the dispatcher must fall back
  // to the bucket schedule and still produce correct results.
  const Problem p = make_problem({9, 8, 8}, 4, 13005);
  const std::vector<int> grid{3, 2, 2};
  const Matrix expected = mttkrp_reference(p.x, p.factors, 2);
  Machine machine(12);
  const ParMttkrpResult r = par_mttkrp_general(
      machine, p.x, p.factors, 2, {1, 3, 2, 2}, CollectiveKind::kRecursive);
  EXPECT_LT(max_abs_diff(r.b, expected), 1e-9);
  (void)grid;
}

}  // namespace
}  // namespace mtk
