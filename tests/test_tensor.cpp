// Unit tests for DenseTensor and block extraction.
#include <gtest/gtest.h>

#include <cmath>

#include "src/support/rng.hpp"
#include "src/tensor/block.hpp"
#include "src/tensor/dense_tensor.hpp"

namespace mtk {
namespace {

TEST(DenseTensor, ConstructionAndIndexing) {
  DenseTensor t({2, 3, 4}, 0.5);
  EXPECT_EQ(t.order(), 3);
  EXPECT_EQ(t.size(), 24);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(2), 4);
  EXPECT_DOUBLE_EQ(t[0], 0.5);
  t.at({1, 2, 3}) = 9.0;
  EXPECT_DOUBLE_EQ(t.at({1, 2, 3}), 9.0);
  EXPECT_DOUBLE_EQ(t[linearize({1, 2, 3}, t.dims())], 9.0);
  EXPECT_THROW(t.dim(3), std::invalid_argument);
  EXPECT_THROW(DenseTensor({2, 0, 3}), std::invalid_argument);
}

TEST(DenseTensor, FillFromGenerator) {
  DenseTensor t({3, 3});
  t.fill_from([](const multi_index_t& i) {
    return static_cast<double>(10 * i[0] + i[1]);
  });
  EXPECT_DOUBLE_EQ(t.at({2, 1}), 21.0);
  EXPECT_DOUBLE_EQ(t.at({0, 2}), 2.0);
}

TEST(DenseTensor, FrobeniusNorm) {
  DenseTensor t({2, 2});
  t.at({0, 0}) = 1.0;
  t.at({1, 0}) = 2.0;
  t.at({0, 1}) = 2.0;
  EXPECT_DOUBLE_EQ(t.frobenius_norm(), 3.0);
}

TEST(DenseTensor, MaxAbsDiff) {
  DenseTensor a({2, 2}, 1.0), b({2, 2}, 1.0);
  b.at({1, 1}) = 4.0;
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 3.0);
  DenseTensor c({2, 3});
  EXPECT_THROW(a.max_abs_diff(c), std::invalid_argument);
}

TEST(DenseTensor, FromCpMatchesDirectEvaluation) {
  Rng rng(31);
  const index_t rank = 3;
  std::vector<Matrix> factors;
  factors.push_back(Matrix::random_normal(4, rank, rng));
  factors.push_back(Matrix::random_normal(5, rank, rng));
  factors.push_back(Matrix::random_normal(6, rank, rng));
  const std::vector<double> lambda{2.0, -1.0, 0.5};
  const DenseTensor t = DenseTensor::from_cp(factors, lambda);
  ASSERT_EQ(t.dims(), (shape_t{4, 5, 6}));
  // Check Eq. (1) at several entries.
  for (const multi_index_t& idx :
       {multi_index_t{0, 0, 0}, multi_index_t{3, 4, 5}, multi_index_t{1, 2, 3}}) {
    double expect = 0.0;
    for (index_t r = 0; r < rank; ++r) {
      expect += lambda[static_cast<std::size_t>(r)] * factors[0](idx[0], r) *
                factors[1](idx[1], r) * factors[2](idx[2], r);
    }
    EXPECT_NEAR(t.at(idx), expect, 1e-12);
  }
}

TEST(DenseTensor, FromCpValidatesShapes) {
  Rng rng(37);
  std::vector<Matrix> factors;
  factors.push_back(Matrix::random_normal(4, 3, rng));
  factors.push_back(Matrix::random_normal(5, 2, rng));  // rank mismatch
  EXPECT_THROW(DenseTensor::from_cp(factors, {1.0, 1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(DenseTensor::from_cp({}, {}), std::invalid_argument);
}

TEST(Block, ExtractAndAddRoundTrip) {
  Rng rng(41);
  const DenseTensor t = DenseTensor::random_normal({4, 5, 6}, rng);
  const std::vector<Range> ranges{{1, 3}, {0, 5}, {2, 4}};
  const DenseTensor block = extract_block(t, ranges);
  EXPECT_EQ(block.dims(), (shape_t{2, 5, 2}));
  EXPECT_DOUBLE_EQ(block.at({0, 0, 0}), t.at({1, 0, 2}));
  EXPECT_DOUBLE_EQ(block.at({1, 4, 1}), t.at({2, 4, 3}));

  DenseTensor zero({4, 5, 6}, 0.0);
  add_block(zero, ranges, block);
  for (Odometer od(block.dims()); od.valid(); od.next()) {
    multi_index_t gi = od.index();
    gi[0] += 1;
    gi[2] += 2;
    EXPECT_DOUBLE_EQ(zero.at(gi), t.at(gi));
  }
}

TEST(Block, InvalidRangesThrow) {
  DenseTensor t({3, 3}, 0.0);
  EXPECT_THROW(extract_block(t, {{0, 3}}), std::invalid_argument);
  EXPECT_THROW(extract_block(t, {{0, 4}, {0, 3}}), std::invalid_argument);
  EXPECT_THROW(extract_block(t, {{2, 2}, {0, 3}}), std::invalid_argument);
}

TEST(Block, MatrixRowAndSubmatrixOps) {
  Rng rng(43);
  const Matrix m = Matrix::random_normal(6, 4, rng);
  const Matrix rows = extract_rows(m, {2, 5});
  EXPECT_EQ(rows.rows(), 3);
  EXPECT_DOUBLE_EQ(rows(0, 0), m(2, 0));
  EXPECT_DOUBLE_EQ(rows(2, 3), m(4, 3));

  const Matrix sub = extract_submatrix(m, {1, 4}, {1, 3});
  EXPECT_EQ(sub.rows(), 3);
  EXPECT_EQ(sub.cols(), 2);
  EXPECT_DOUBLE_EQ(sub(0, 0), m(1, 1));
  EXPECT_DOUBLE_EQ(sub(2, 1), m(3, 2));

  Matrix acc(6, 4, 0.0);
  add_rows(acc, {2, 5}, rows);
  EXPECT_DOUBLE_EQ(acc(3, 1), m(3, 1));
  add_submatrix(acc, {1, 4}, {1, 3}, sub);
  EXPECT_DOUBLE_EQ(acc(1, 1), m(1, 1));
  EXPECT_DOUBLE_EQ(acc(3, 1), 2.0 * m(3, 1));

  EXPECT_THROW(extract_rows(m, {0, 7}), std::invalid_argument);
  EXPECT_THROW(add_rows(acc, {0, 2}, Matrix(3, 4)), std::invalid_argument);
}

}  // namespace
}  // namespace mtk
