// Randomized end-to-end sweep of the parallel algorithms: random shapes,
// ranks, modes, and feasible grids — Algorithm 3, Algorithm 4, and the
// all-modes variant must always match the sequential reference and never
// beat the lower bound.
#include <gtest/gtest.h>

#include "src/bounds/parallel_bounds.hpp"
#include "src/mttkrp/mttkrp.hpp"
#include "src/parsim/par_mttkrp.hpp"
#include "src/parsim/par_multi_mttkrp.hpp"
#include "src/support/rng.hpp"

namespace mtk {
namespace {

// Draws a random grid whose extents respect caps (grid[k] <= caps[k]),
// with total size at most max_procs.
std::vector<int> random_grid(Rng& rng, const std::vector<index_t>& caps,
                             int max_procs) {
  std::vector<int> grid(caps.size(), 1);
  int p = 1;
  for (int attempts = 0; attempts < 20; ++attempts) {
    const std::size_t k =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<index_t>(caps.size()) - 1));
    if (grid[k] * 2 <= caps[k] && p * 2 <= max_procs) {
      grid[k] *= 2;
      p *= 2;
    }
  }
  return grid;
}

TEST(ParRandomSweep, StationaryAlwaysMatchesReference) {
  Rng rng(15001);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(2, 4));
    shape_t dims;
    for (int k = 0; k < n; ++k) dims.push_back(rng.uniform_int(3, 10));
    const index_t rank = rng.uniform_int(1, 6);
    const int mode = static_cast<int>(rng.uniform_int(0, n - 1));

    DenseTensor x = DenseTensor::random_normal(dims, rng);
    std::vector<Matrix> factors;
    for (index_t d : dims) {
      factors.push_back(Matrix::random_normal(d, rank, rng));
    }

    const std::vector<int> grid =
        random_grid(rng, dims, /*max_procs=*/32);
    const ParMttkrpResult r = par_mttkrp_stationary(x, factors, mode, grid);
    const Matrix expected = mttkrp_reference(x, factors, mode);
    ASSERT_LT(max_abs_diff(r.b, expected), 1e-8)
        << "trial " << trial << " order " << n << " mode " << mode;

    int p = 1;
    for (int g : grid) p *= g;
    ParProblem lb;
    lb.dims = dims;
    lb.rank = rank;
    lb.procs = p;
    EXPECT_GE(static_cast<double>(r.max_words_moved) + 1e-9,
              par_lower_bound(lb))
        << "trial " << trial;
  }
}

TEST(ParRandomSweep, GeneralAlwaysMatchesReference) {
  Rng rng(15003);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(2, 4));
    shape_t dims;
    for (int k = 0; k < n; ++k) dims.push_back(rng.uniform_int(3, 10));
    const index_t rank = rng.uniform_int(2, 8);
    const int mode = static_cast<int>(rng.uniform_int(0, n - 1));

    DenseTensor x = DenseTensor::random_normal(dims, rng);
    std::vector<Matrix> factors;
    for (index_t d : dims) {
      factors.push_back(Matrix::random_normal(d, rank, rng));
    }

    std::vector<index_t> caps{rank};
    for (index_t d : dims) caps.push_back(d);
    const std::vector<int> grid = random_grid(rng, caps, /*max_procs=*/32);
    const ParMttkrpResult r = par_mttkrp_general(x, factors, mode, grid);
    const Matrix expected = mttkrp_reference(x, factors, mode);
    ASSERT_LT(max_abs_diff(r.b, expected), 1e-8)
        << "trial " << trial << " order " << n << " mode " << mode;
  }
}

TEST(ParRandomSweep, AllModesAlwaysMatchesReference) {
  Rng rng(15005);
  for (int trial = 0; trial < 15; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(2, 4));
    shape_t dims;
    for (int k = 0; k < n; ++k) dims.push_back(rng.uniform_int(3, 9));
    const index_t rank = rng.uniform_int(1, 5);

    DenseTensor x = DenseTensor::random_normal(dims, rng);
    std::vector<Matrix> factors;
    for (index_t d : dims) {
      factors.push_back(Matrix::random_normal(d, rank, rng));
    }

    const std::vector<int> grid = random_grid(rng, dims, /*max_procs=*/16);
    const ParAllModesResult r = par_mttkrp_all_modes(x, factors, grid);
    for (int mode = 0; mode < n; ++mode) {
      const Matrix expected = mttkrp_reference(x, factors, mode);
      ASSERT_LT(max_abs_diff(r.outputs[static_cast<std::size_t>(mode)],
                             expected),
                1e-8)
          << "trial " << trial << " mode " << mode;
    }
  }
}

TEST(ParRandomSweep, CollectiveKindsAgreeEverywhere) {
  // Word-count equality between the ring and recursive schedules requires
  // chunks that divide evenly (power-of-two sizes throughout); with uneven
  // chunks the two schedules distribute the same total volume differently
  // across ranks. Results must agree regardless (checked in the fallback
  // test above); here we pin the divisible regime.
  Rng rng(15007);
  for (int trial = 0; trial < 10; ++trial) {
    shape_t dims{8, 8, 8};
    const index_t rank = index_t{1} << rng.uniform_int(1, 3);
    const int mode = static_cast<int>(rng.uniform_int(0, 2));
    DenseTensor x = DenseTensor::random_normal(dims, rng);
    std::vector<Matrix> factors;
    for (index_t d : dims) {
      factors.push_back(Matrix::random_normal(d, rank, rng));
    }
    const std::vector<int> grid = random_grid(rng, dims, 16);
    int p = 1;
    for (int g : grid) p *= g;

    Machine bucket(p), recursive(p);
    const ParMttkrpResult rb = par_mttkrp_stationary(
        bucket, x, factors, mode, grid, CollectiveKind::kBucket);
    const ParMttkrpResult rr = par_mttkrp_stationary(
        recursive, x, factors, mode, grid, CollectiveKind::kRecursive);
    EXPECT_EQ(rb.max_words_moved, rr.max_words_moved) << "trial " << trial;
    EXPECT_LT(max_abs_diff(rb.b, rr.b), 1e-9) << "trial " << trial;
  }
}

}  // namespace
}  // namespace mtk
