// Property tests for the sparse nonzero distribution layer
// (src/parsim/distribution.hpp): every nonzero lands on exactly one process
// and nothing is lost or invented, partitions respect the grid dimensions,
// the medium-grained scheme actually balances skewed tensors, and the
// empty-slice / single-process edge cases hold.
#include <gtest/gtest.h>

#include <tuple>

#include "src/parsim/distribution.hpp"
#include "src/parsim/grid.hpp"
#include "src/support/rng.hpp"

namespace mtk {
namespace {

// Asserts ranges are a non-empty contiguous cover of [0, dim) with the
// expected part count.
void expect_valid_cover(const std::vector<Range>& ranges, index_t dim,
                        int parts) {
  ASSERT_EQ(static_cast<int>(ranges.size()), parts);
  index_t expect = 0;
  for (const Range& r : ranges) {
    EXPECT_EQ(r.lo, expect);
    EXPECT_GT(r.hi, r.lo);
    expect = r.hi;
  }
  EXPECT_EQ(expect, dim);
}

// Rebuilds the global tensor from the per-process blocks by undoing the
// index rebasing; exact equality with the input proves each nonzero was
// assigned to exactly one process with its value intact.
SparseTensor reassemble(const SparseDistribution& d, const ProcessorGrid& grid,
                        const shape_t& dims) {
  SparseTensor global(dims);
  const int n = static_cast<int>(dims.size());
  multi_index_t idx(static_cast<std::size_t>(n));
  for (int r = 0; r < grid.size(); ++r) {
    const std::vector<int> coords = grid.coords(r);
    const SparseTensor& block = d.local[static_cast<std::size_t>(r)];
    for (index_t p = 0; p < block.nnz(); ++p) {
      for (int k = 0; k < n; ++k) {
        idx[static_cast<std::size_t>(k)] =
            block.index(k, p) +
            d.mode_ranges[static_cast<std::size_t>(k)]
                         [static_cast<std::size_t>(coords[static_cast<std::size_t>(k)])]
                .lo;
      }
      global.push_back(idx, block.value(p));
    }
  }
  global.sort_and_dedup();
  return global;
}

void expect_equal_coo(const SparseTensor& a, const SparseTensor& b) {
  ASSERT_EQ(a.dims(), b.dims());
  ASSERT_EQ(a.nnz(), b.nnz());
  for (index_t p = 0; p < a.nnz(); ++p) {
    for (int k = 0; k < a.order(); ++k) {
      EXPECT_EQ(a.index(k, p), b.index(k, p)) << "nonzero " << p;
    }
    EXPECT_DOUBLE_EQ(a.value(p), b.value(p)) << "nonzero " << p;
  }
}

using SweepParam =
    std::tuple<shape_t, double, std::vector<int>, SparsePartitionScheme>;

class DistributionSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DistributionSweep, PartitionIsLosslessAndRespectsGrid) {
  const auto& [dims, density, grid_shape, scheme] = GetParam();
  Rng rng(20260730);
  const SparseTensor x = SparseTensor::random_sparse(dims, density, rng);
  const ProcessorGrid grid(grid_shape);
  const SparseDistribution d = distribute_nonzeros(x, grid, scheme);

  // Partition respects grid dims: one cover per mode, extent(k) parts.
  ASSERT_EQ(static_cast<int>(d.mode_ranges.size()), x.order());
  for (int k = 0; k < x.order(); ++k) {
    expect_valid_cover(d.mode_ranges[static_cast<std::size_t>(k)], x.dim(k),
                       grid.extent(k));
  }

  // One local block per process, shaped like its coordinate block.
  ASSERT_EQ(static_cast<int>(d.local.size()), grid.size());
  index_t total = 0;
  for (int r = 0; r < grid.size(); ++r) {
    const std::vector<int> coords = grid.coords(r);
    const SparseTensor& block = d.local[static_cast<std::size_t>(r)];
    for (int k = 0; k < x.order(); ++k) {
      const Range range =
          d.mode_ranges[static_cast<std::size_t>(k)]
                       [static_cast<std::size_t>(coords[static_cast<std::size_t>(k)])];
      EXPECT_EQ(block.dim(k), range.length());
      for (index_t p = 0; p < block.nnz(); ++p) {
        EXPECT_GE(block.index(k, p), 0);
        EXPECT_LT(block.index(k, p), range.length());
      }
    }
    total += block.nnz();
  }
  // Every nonzero on exactly one process...
  EXPECT_EQ(total, x.nnz());
  // ...and reassembling the blocks reproduces the input exactly.
  expect_equal_coo(reassemble(d, grid, dims), x);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, DistributionSweep,
    ::testing::Values(
        SweepParam{{8, 8, 8}, 0.2, {2, 2, 2}, SparsePartitionScheme::kBlock},
        SweepParam{{8, 8, 8}, 0.2, {2, 2, 2},
                   SparsePartitionScheme::kMediumGrained},
        SweepParam{{7, 5, 9}, 0.3, {2, 1, 3}, SparsePartitionScheme::kBlock},
        SweepParam{{7, 5, 9}, 0.3, {2, 1, 3},
                   SparsePartitionScheme::kMediumGrained},
        SweepParam{{16, 4}, 0.4, {4, 2}, SparsePartitionScheme::kBlock},
        SweepParam{{16, 4}, 0.4, {4, 2},
                   SparsePartitionScheme::kMediumGrained},
        SweepParam{{4, 4, 4, 4}, 0.25, {2, 2, 1, 2},
                   SparsePartitionScheme::kBlock},
        SweepParam{{4, 4, 4, 4}, 0.25, {2, 2, 1, 2},
                   SparsePartitionScheme::kMediumGrained},
        // Single process: the whole tensor on rank 0.
        SweepParam{{6, 6, 6}, 0.3, {1, 1, 1}, SparsePartitionScheme::kBlock},
        SweepParam{{6, 6, 6}, 0.3, {1, 1, 1},
                   SparsePartitionScheme::kMediumGrained}));

TEST(SparseDistribution, SingleProcessGetsTheWholeTensor) {
  Rng rng(11);
  const SparseTensor x = SparseTensor::random_sparse({5, 7, 3}, 0.3, rng);
  const ProcessorGrid grid({1, 1, 1});
  const SparseDistribution d =
      distribute_nonzeros(x, grid, SparsePartitionScheme::kBlock);
  ASSERT_EQ(d.local.size(), 1u);
  expect_equal_coo(d.local[0], x);
}

TEST(SparseDistribution, EmptySlicesYieldEmptyLocalBlocks) {
  // All nonzeros live in the first two mode-0 slices; under a block
  // partition of mode 0 into 4 parts, the processes owning slices >= 2 hold
  // empty (but correctly shaped) blocks.
  SparseTensor x({8, 4, 4});
  Rng rng(13);
  for (int q = 0; q < 30; ++q) {
    x.push_back({rng.uniform_int(0, 1), rng.uniform_int(0, 3),
                 rng.uniform_int(0, 3)},
                rng.normal());
  }
  x.sort_and_dedup();
  const ProcessorGrid grid({4, 1, 1});
  const SparseDistribution d =
      distribute_nonzeros(x, grid, SparsePartitionScheme::kBlock);
  index_t total = 0;
  for (int r = 0; r < 4; ++r) {
    const SparseTensor& block = d.local[static_cast<std::size_t>(r)];
    EXPECT_EQ(block.dim(0), 2);
    if (r >= 1) EXPECT_EQ(block.nnz(), 0) << "rank " << r;
    total += block.nnz();
  }
  EXPECT_EQ(total, x.nnz());
}

TEST(SparseDistribution, MediumGrainedBalancesSkewedModes) {
  // Nonzeros concentrated in the first 10 of 100 mode-0 slices: the uniform
  // block partition puts everything on one process, the nonzero-balanced
  // boundaries spread it out.
  SparseTensor x({100, 4, 4});
  Rng rng(17);
  for (int q = 0; q < 400; ++q) {
    x.push_back({rng.uniform_int(0, 9), rng.uniform_int(0, 3),
                 rng.uniform_int(0, 3)},
                rng.normal());
  }
  x.sort_and_dedup();
  const ProcessorGrid grid({4, 1, 1});

  const auto max_local_nnz = [&](SparsePartitionScheme scheme) {
    const SparseDistribution d = distribute_nonzeros(x, grid, scheme);
    index_t best = 0;
    for (const SparseTensor& block : d.local) {
      best = std::max(best, block.nnz());
    }
    return best;
  };
  const index_t block_max = max_local_nnz(SparsePartitionScheme::kBlock);
  const index_t medium_max =
      max_local_nnz(SparsePartitionScheme::kMediumGrained);
  EXPECT_EQ(block_max, x.nnz());  // slices 0..9 all fall in block [0, 25)
  EXPECT_LT(medium_max, block_max);
  EXPECT_LE(medium_max, ceil_div(x.nnz(), 2));  // genuinely spread out
}

TEST(SparseDistribution, BalancedModePartitionHandlesZeroNonzeros) {
  const SparseTensor x({6, 6});
  const std::vector<Range> ranges = balanced_mode_partition(x, 0, 3);
  expect_valid_cover(ranges, 6, 3);
}

TEST(SparseDistributionValidation, RejectsBadArguments) {
  Rng rng(19);
  const SparseTensor x = SparseTensor::random_sparse({4, 4, 4}, 0.3, rng);
  // Grid order mismatch.
  EXPECT_THROW(distribute_nonzeros(x, ProcessorGrid({2, 2}),
                                   SparsePartitionScheme::kBlock),
               std::invalid_argument);
  // Grid extent exceeding the dimension.
  EXPECT_THROW(distribute_nonzeros(x, ProcessorGrid({8, 1, 1}),
                                   SparsePartitionScheme::kBlock),
               std::invalid_argument);
  // Wrong number of parts handed to partition_nonzeros.
  const ProcessorGrid grid({2, 2, 1});
  std::vector<std::vector<Range>> parts = sparse_mode_partitions(
      x, {2, 2, 1}, SparsePartitionScheme::kBlock);
  parts[0].pop_back();
  EXPECT_THROW(partition_nonzeros(x, grid, parts), std::invalid_argument);
  // Non-contiguous ranges.
  parts = sparse_mode_partitions(x, {2, 2, 1}, SparsePartitionScheme::kBlock);
  parts[1][1].lo += 1;
  EXPECT_THROW(partition_nonzeros(x, grid, parts), std::invalid_argument);
}

}  // namespace
}  // namespace mtk
