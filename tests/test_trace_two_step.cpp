// Tests for the two-step [13] baseline's address trace: data footprint,
// traffic above the lower bounds, and its relationship to the blocked and
// matmul pipelines under scarce memory.
#include <gtest/gtest.h>

#include "src/bounds/sequential_bounds.hpp"
#include "src/memsim/traced_mttkrp.hpp"
#include "src/mttkrp/mttkrp.hpp"

namespace mtk {
namespace {

TraceProblem make_problem(shape_t dims, index_t rank, int mode) {
  TraceProblem p;
  p.dims = std::move(dims);
  p.rank = rank;
  p.mode = mode;
  return p;
}

TEST(TraceTwoStep, TouchesBaseArraysAndScratch) {
  const TraceProblem p = make_problem({4, 5, 6}, 2, 1);
  DistinctSink distinct;
  trace_two_step(p, 1 << 12, distinct);
  // Base data: X (120) + A^(0) (8) + A^(2) (12) + B (10); scratch:
  // K_R (6*2=12), W (4*5*2=40), K_L (4*2=8). Total distinct = 210.
  EXPECT_EQ(distinct.distinct(), 120 + 8 + 12 + 10 + 12 + 40 + 8);
}

TEST(TraceTwoStep, TrafficAboveLowerBound) {
  for (int mode : {0, 1, 2}) {
    const TraceProblem p = make_problem({10, 10, 10}, 4, mode);
    const index_t m = 250;
    const MemoryStats stats = measure_traffic(
        m, ReplacementPolicy::kLru,
        [&](AccessSink& sink) { trace_two_step(p, m, sink); });
    SeqProblem sp;
    sp.dims = p.dims;
    sp.rank = p.rank;
    sp.fast_memory = m;
    EXPECT_GE(static_cast<double>(stats.traffic()), seq_lower_bound(sp))
        << "mode " << mode;
  }
}

TEST(TraceTwoStep, CheaperThanFullMatmulPipeline) {
  // The two-step approach avoids the explicit permutation and the full
  // I/I_n x R KRP; under scarce memory it should move fewer words than the
  // matricize-KRP-GEMM pipeline for interior modes.
  const TraceProblem p = make_problem({12, 12, 12}, 8, 1);
  const index_t m = 400;
  const MemoryStats two_step = measure_traffic(
      m, ReplacementPolicy::kLru,
      [&](AccessSink& sink) { trace_two_step(p, m, sink); });
  const MemoryStats matmul = measure_traffic(
      m, ReplacementPolicy::kLru,
      [&](AccessSink& sink) { trace_matmul(p, m, sink); });
  EXPECT_LT(two_step.traffic(), matmul.traffic());
}

TEST(TraceTwoStep, EdgeModesUseSinglePass) {
  // mode 0 and mode N-1 skip one contraction; their footprints omit the
  // unused KRP scratch.
  const TraceProblem first = make_problem({4, 5, 6}, 2, 0);
  DistinctSink d0;
  trace_two_step(first, 1 << 12, d0);
  // X(120) + A1(10) + A2(12) + B(8) + K_R(30*2=60) + W(8) copied to B.
  EXPECT_EQ(d0.distinct(), 120 + 10 + 12 + 8 + 60 + 8);

  const TraceProblem last = make_problem({4, 5, 6}, 2, 2);
  DistinctSink d2;
  trace_two_step(last, 1 << 12, d2);
  // X(120) + A0(8) + A1(10) + B(12) + K_L(20*2=40); no W.
  EXPECT_EQ(d2.distinct(), 120 + 8 + 10 + 12 + 40);
}

TEST(TraceTwoStep, Validation) {
  DistinctSink sink;
  EXPECT_THROW(trace_two_step(make_problem({4, 4}, 0, 0), 1024, sink),
               std::invalid_argument);
  EXPECT_THROW(trace_two_step(make_problem({4, 4}, 2, 5), 1024, sink),
               std::invalid_argument);
}

}  // namespace
}  // namespace mtk
