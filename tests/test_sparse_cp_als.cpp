// CP drivers on sparse storage: CP-ALS and CP-gradient must run unmodified
// on COO/CSF backends and, for the same synthetic low-rank tensor and the
// same seed, converge to the same fit as the dense path (the iterate
// sequences are identical up to kernel summation order).
#include <gtest/gtest.h>

#include <cmath>

#include "src/cp/cp_als.hpp"
#include "src/cp/cp_gradient.hpp"
#include "src/support/rng.hpp"

namespace mtk {
namespace {

// A low-rank tensor with sparse support: build rank-R factors, densify, then
// mask all but a fraction of entries. The masked tensor is exactly
// representable only approximately, but dense and sparse drivers see the
// *same* data, which is what the agreement test needs.
SparseTensor masked_low_rank(const shape_t& dims, index_t rank,
                             double density, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Matrix> gen;
  for (index_t d : dims) {
    gen.push_back(Matrix::random_uniform(d, rank, rng, 0.1, 1.0));
  }
  const DenseTensor full =
      DenseTensor::from_cp(gen, std::vector<double>(
                                    static_cast<std::size_t>(rank), 1.0));
  const SparseTensor support =
      SparseTensor::random_sparse(dims, density, rng);
  SparseTensor masked(dims);
  for (index_t p = 0; p < support.nnz(); ++p) {
    const multi_index_t idx = support.coordinate(p);
    masked.push_back(idx, full.at(idx));
  }
  masked.sort_and_dedup();
  return masked;
}

TEST(SparseCpAls, MatchesDenseOnSameData) {
  const SparseTensor sparse = masked_low_rank({8, 7, 9}, 2, 0.3, 211);
  const DenseTensor dense = sparse.to_dense();

  CpAlsOptions opts;
  opts.rank = 2;
  opts.max_iterations = 60;
  opts.tolerance = 1e-9;

  const CpAlsResult on_dense = cp_als(dense, opts);
  const CpAlsResult on_coo = cp_als(sparse, opts);
  const CpAlsResult on_csf = cp_als(CsfTensor::from_coo(sparse), opts);

  // Same data, same seed, same update rule: the runs track each other to
  // within kernel summation-order noise.
  EXPECT_EQ(on_coo.iterations, on_dense.iterations);
  EXPECT_NEAR(on_coo.final_fit, on_dense.final_fit, 1e-6);
  EXPECT_NEAR(on_csf.final_fit, on_dense.final_fit, 1e-6);
  // And every run makes real progress on the (masked, so only approximately
  // low-rank) data.
  EXPECT_GT(on_dense.final_fit, 0.2);
  for (const Matrix& a : on_coo.model.factors) {
    EXPECT_GT(a.rows(), 0);
  }
}

TEST(SparseCpAls, FullySampledLowRankIsRecoveredAccurately) {
  // With every entry of a rank-2 tensor present, CP-ALS at rank 2 reaches a
  // near-perfect fit — identically so for every storage backend.
  const SparseTensor sparse = masked_low_rank({6, 5, 7}, 2, 1.0, 223);
  ASSERT_EQ(sparse.nnz(), 6 * 5 * 7);

  CpAlsOptions opts;
  opts.rank = 2;
  opts.max_iterations = 120;
  opts.tolerance = 1e-12;

  const CpAlsResult on_dense = cp_als(sparse.to_dense(), opts);
  const CpAlsResult on_coo = cp_als(sparse, opts);
  EXPECT_GT(on_dense.final_fit, 0.99);
  EXPECT_GT(on_coo.final_fit, 0.99);
  EXPECT_NEAR(on_coo.final_fit, on_dense.final_fit, 1e-8);
}

TEST(SparseCpAls, SparseAlgoOptionIsHonored) {
  const SparseTensor sparse = masked_low_rank({5, 6, 4}, 2, 0.5, 227);
  CpAlsOptions opts;
  opts.rank = 2;
  opts.max_iterations = 30;
  opts.mttkrp.sparse_algo = SparseMttkrpAlgo::kCsf;
  const CpAlsResult via_csf_kernel = cp_als(sparse, opts);
  opts.mttkrp.sparse_algo = SparseMttkrpAlgo::kCoo;
  const CpAlsResult via_coo_kernel = cp_als(sparse, opts);
  EXPECT_NEAR(via_csf_kernel.final_fit, via_coo_kernel.final_fit, 1e-8);
}

TEST(SparseCpGradient, MatchesDenseOnSameData) {
  const SparseTensor sparse = masked_low_rank({7, 6, 5}, 2, 0.4, 229);
  const DenseTensor dense = sparse.to_dense();

  CpGradOptions opts;
  opts.rank = 2;
  opts.max_iterations = 40;
  opts.tolerance = 1e-6;

  const CpGradResult on_dense = cp_gradient_descent(dense, opts);
  const CpGradResult on_coo = cp_gradient_descent(sparse, opts);
  const CpGradResult on_csf =
      cp_gradient_descent(CsfTensor::from_coo(sparse), opts);

  EXPECT_NEAR(on_coo.final_objective, on_dense.final_objective,
              1e-6 * std::max(1.0, std::fabs(on_dense.final_objective)));
  EXPECT_NEAR(on_csf.final_objective, on_dense.final_objective,
              1e-6 * std::max(1.0, std::fabs(on_dense.final_objective)));
  EXPECT_EQ(on_coo.iterations, on_dense.iterations);
}

TEST(SparseCpAls, RejectsZeroTensor) {
  const SparseTensor empty({4, 4, 4});
  CpAlsOptions opts;
  opts.rank = 1;
  EXPECT_THROW(cp_als(empty, opts), std::invalid_argument);
}

}  // namespace
}  // namespace mtk
