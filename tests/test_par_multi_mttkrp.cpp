// Tests for the all-modes parallel MTTKRP: correctness per mode, and the
// communication-reuse property — one shared gather set instead of N-1
// gathers per mode.
#include <gtest/gtest.h>

#include "src/mttkrp/mttkrp.hpp"
#include "src/parsim/par_mttkrp.hpp"
#include "src/parsim/par_multi_mttkrp.hpp"
#include "src/support/rng.hpp"

namespace mtk {
namespace {

struct Problem {
  DenseTensor x;
  std::vector<Matrix> factors;
};

Problem make_problem(const shape_t& dims, index_t rank, std::uint64_t seed) {
  Rng rng(seed);
  Problem p;
  p.x = DenseTensor::random_normal(dims, rng);
  for (index_t d : dims) {
    p.factors.push_back(Matrix::random_normal(d, rank, rng));
  }
  return p;
}

TEST(ParAllModes, MatchesSequentialReferencePerMode) {
  const Problem p = make_problem({8, 8, 8}, 4, 8001);
  const ParAllModesResult r =
      par_mttkrp_all_modes(p.x, p.factors, {2, 2, 2});
  ASSERT_EQ(r.outputs.size(), 3u);
  for (int mode = 0; mode < 3; ++mode) {
    const Matrix expected = mttkrp_reference(p.x, p.factors, mode);
    EXPECT_LT(max_abs_diff(r.outputs[static_cast<std::size_t>(mode)],
                           expected),
              1e-9)
        << "mode " << mode;
  }
}

TEST(ParAllModes, WorksOnIrregularShapesAndGrids) {
  const Problem p = make_problem({7, 5, 9, 4}, 3, 8003);
  const ParAllModesResult r =
      par_mttkrp_all_modes(p.x, p.factors, {2, 1, 3, 2});
  for (int mode = 0; mode < 4; ++mode) {
    const Matrix expected = mttkrp_reference(p.x, p.factors, mode);
    EXPECT_LT(max_abs_diff(r.outputs[static_cast<std::size_t>(mode)],
                           expected),
              1e-9)
        << "mode " << mode;
  }
}

TEST(ParAllModes, ReusesGathersAcrossModes) {
  // N separate Algorithm-3 sweeps gather each factor N-1 times; the
  // all-modes algorithm gathers each exactly once. The reduce-scatter
  // volume is identical, so the all-modes total must be strictly smaller —
  // and the gather portion smaller by about (N-1)x.
  const Problem p = make_problem({12, 12, 12}, 6, 8005);
  const std::vector<int> grid{2, 2, 3};

  Machine shared(12);
  const ParAllModesResult all =
      par_mttkrp_all_modes(shared, p.x, p.factors, grid);

  index_t separate_total = 0;
  for (int mode = 0; mode < 3; ++mode) {
    Machine machine(12);
    const ParMttkrpResult r =
        par_mttkrp_stationary(machine, p.x, p.factors, mode, grid);
    separate_total += r.max_words_moved;
  }
  EXPECT_LT(all.max_words_moved, separate_total);

  // Gather words: phases labelled "all-gather". For this divisible
  // configuration, separate sweeps gather 2 factors per mode (6 gathers);
  // the shared pass gathers 3 — a 2x gather saving.
  index_t shared_gather = 0;
  for (const PhaseRecord& ph : all.phases) {
    if (ph.label.find("all-gather") != std::string::npos) {
      shared_gather += ph.max_words_one_rank;
    }
  }
  EXPECT_GT(shared_gather, 0);
  EXPECT_LT(3 * shared_gather, 2 * separate_total);
}

TEST(ParAllModes, SingleRankMovesNothing) {
  const Problem p = make_problem({4, 4, 4}, 2, 8007);
  const ParAllModesResult r =
      par_mttkrp_all_modes(p.x, p.factors, {1, 1, 1});
  EXPECT_EQ(r.max_words_moved, 0);
  for (int mode = 0; mode < 3; ++mode) {
    const Matrix expected = mttkrp_reference(p.x, p.factors, mode);
    EXPECT_LT(max_abs_diff(r.outputs[static_cast<std::size_t>(mode)],
                           expected),
              1e-9);
  }
}

TEST(ParAllModes, PhaseBreakdownHasOneGatherPerMode) {
  const Problem p = make_problem({8, 8, 8}, 4, 8009);
  const ParAllModesResult r =
      par_mttkrp_all_modes(p.x, p.factors, {2, 2, 2});
  int gathers = 0, scatters = 0;
  for (const PhaseRecord& ph : r.phases) {
    if (ph.label.find("all-gather") != std::string::npos) ++gathers;
    if (ph.label.find("reduce-scatter") != std::string::npos) ++scatters;
  }
  EXPECT_EQ(gathers, 3);
  EXPECT_EQ(scatters, 3);
}

TEST(ParAllModes, Validation) {
  const Problem p = make_problem({4, 4, 4}, 2, 8011);
  Machine machine(8);
  EXPECT_THROW(par_mttkrp_all_modes(machine, p.x, p.factors, {2, 2}),
               std::invalid_argument);
  EXPECT_THROW(par_mttkrp_all_modes(machine, p.x, p.factors, {8, 1, 1}),
               std::invalid_argument);  // extent exceeds dim
  std::vector<Matrix> bad = p.factors;
  bad[0] = Matrix(4, 3);  // rank mismatch
  Machine machine2(8);
  EXPECT_THROW(par_mttkrp_all_modes(machine2, p.x, bad, {2, 2, 2}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mtk
