// Tests for recursive-doubling All-Gather and recursive-halving
// Reduce-Scatter: data correctness, bandwidth parity with the bucket
// algorithms, and the log2(q) latency advantage.
#include <gtest/gtest.h>

#include <numeric>

#include "src/parsim/collective_variants.hpp"
#include "src/parsim/collectives.hpp"
#include "src/parsim/distribution.hpp"
#include "src/support/rng.hpp"

namespace mtk {
namespace {

std::vector<int> iota_group(int q) {
  std::vector<int> g(static_cast<std::size_t>(q));
  std::iota(g.begin(), g.end(), 0);
  return g;
}

TEST(AllGatherDoubling, MatchesBucketResult) {
  Rng rng(10001);
  for (int q : {1, 2, 4, 8, 16}) {
    Machine doubling(q), bucket(q);
    std::vector<std::vector<double>> contribs(static_cast<std::size_t>(q));
    for (auto& c : contribs) {
      c.resize(5);
      rng.fill_normal(c);
    }
    const auto a = all_gather_doubling(doubling, iota_group(q), contribs);
    const auto b = all_gather_bucket(bucket, iota_group(q), contribs);
    EXPECT_EQ(a, b) << "q = " << q;
  }
}

TEST(AllGatherDoubling, SameWordsFewerMessages) {
  const int q = 16;
  const index_t w = 10;
  Machine doubling(q), bucket(q);
  std::vector<std::vector<double>> contribs(
      static_cast<std::size_t>(q), std::vector<double>(static_cast<std::size_t>(w), 1.0));
  all_gather_doubling(doubling, iota_group(q), contribs);
  all_gather_bucket(bucket, iota_group(q), contribs);
  for (int r = 0; r < q; ++r) {
    EXPECT_EQ(doubling.stats(r).words_sent, (q - 1) * w) << "rank " << r;
    EXPECT_EQ(doubling.stats(r).words_sent, bucket.stats(r).words_sent);
  }
  // log2(16) = 4 messages vs 15 for the ring.
  EXPECT_EQ(max_messages_sent(doubling, iota_group(q)), 4);
  EXPECT_EQ(max_messages_sent(bucket, iota_group(q)), 15);
}

TEST(ReduceScatterHalving, MatchesDirectSum) {
  Rng rng(10003);
  for (int q : {1, 2, 4, 8}) {
    Machine machine(q);
    const index_t len = 8 * q;
    std::vector<std::vector<double>> inputs(static_cast<std::size_t>(q));
    for (auto& v : inputs) {
      v.resize(static_cast<std::size_t>(len));
      rng.fill_normal(v);
    }
    const auto chunks =
        reduce_scatter_halving(machine, iota_group(q), inputs);
    ASSERT_EQ(chunks.size(), static_cast<std::size_t>(q));
    for (int i = 0; i < q; ++i) {
      const index_t chunk_len = len / q;
      ASSERT_EQ(chunks[static_cast<std::size_t>(i)].size(),
                static_cast<std::size_t>(chunk_len));
      for (index_t w = 0; w < chunk_len; ++w) {
        double expect = 0.0;
        for (const auto& v : inputs) {
          expect += v[static_cast<std::size_t>(i * chunk_len + w)];
        }
        EXPECT_NEAR(chunks[static_cast<std::size_t>(i)]
                          [static_cast<std::size_t>(w)],
                    expect, 1e-9)
            << "q=" << q << " chunk " << i << " word " << w;
      }
    }
  }
}

TEST(ReduceScatterHalving, BandwidthMatchesBucket) {
  const int q = 8;
  const index_t len = 64;
  Machine halving(q), bucket(q);
  std::vector<std::vector<double>> inputs(
      static_cast<std::size_t>(q), std::vector<double>(static_cast<std::size_t>(len), 2.0));
  reduce_scatter_halving(halving, iota_group(q), inputs);
  reduce_scatter_bucket(bucket, iota_group(q), inputs,
                        flat_chunk_sizes(len, q));
  for (int r = 0; r < q; ++r) {
    EXPECT_EQ(halving.stats(r).words_sent, bucket.stats(r).words_sent)
        << "rank " << r;
  }
  EXPECT_EQ(max_messages_sent(halving, iota_group(q)), 3);  // log2(8)
  EXPECT_EQ(max_messages_sent(bucket, iota_group(q)), 7);   // q-1
}

TEST(CollectiveVariants, RejectNonPowerOfTwoGroups) {
  Machine machine(6);
  std::vector<std::vector<double>> contribs(3, std::vector<double>{1.0});
  EXPECT_THROW(all_gather_doubling(machine, {0, 1, 2}, contribs),
               std::invalid_argument);
  std::vector<std::vector<double>> inputs(3, std::vector<double>(6, 1.0));
  EXPECT_THROW(reduce_scatter_halving(machine, {0, 1, 2}, inputs),
               std::invalid_argument);
}

TEST(ReduceScatterHalving, RejectsIndivisibleLength) {
  Machine machine(4);
  std::vector<std::vector<double>> inputs(4, std::vector<double>(6, 1.0));
  EXPECT_THROW(reduce_scatter_halving(machine, iota_group(4), inputs),
               std::invalid_argument);
}

}  // namespace
}  // namespace mtk
