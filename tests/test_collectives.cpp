// Tests for the bucket collectives: data correctness and *exact* word
// counts against the (q-1)-step ring schedule the paper assumes.
#include <gtest/gtest.h>

#include <numeric>

#include "src/parsim/collectives.hpp"
#include "src/parsim/distribution.hpp"
#include "src/support/rng.hpp"

namespace mtk {
namespace {

std::vector<int> iota_group(int q, int offset = 0) {
  std::vector<int> g(static_cast<std::size_t>(q));
  std::iota(g.begin(), g.end(), offset);
  return g;
}

TEST(AllGather, ConcatenatesContributionsInGroupOrder) {
  Machine machine(3);
  const std::vector<std::vector<double>> contribs{{1, 2}, {3}, {4, 5, 6}};
  const std::vector<double> result =
      all_gather_bucket(machine, iota_group(3), contribs);
  EXPECT_EQ(result, (std::vector<double>{1, 2, 3, 4, 5, 6}));
}

TEST(AllGather, BalancedWordCountsMatchBucketFormula) {
  // With q members each contributing w words, every rank sends and receives
  // exactly (q-1) * w words.
  const int q = 5;
  const index_t w = 7;
  Machine machine(q);
  std::vector<std::vector<double>> contribs(
      static_cast<std::size_t>(q), std::vector<double>(static_cast<std::size_t>(w), 1.0));
  all_gather_bucket(machine, iota_group(q), contribs);
  for (int r = 0; r < q; ++r) {
    EXPECT_EQ(machine.stats(r).words_sent, (q - 1) * w) << "rank " << r;
    EXPECT_EQ(machine.stats(r).words_received, (q - 1) * w) << "rank " << r;
  }
}

TEST(AllGather, IrregularChunksCountExactly) {
  // Ring schedule: rank i sends every chunk except chunk (i+1) mod q, and
  // receives every chunk except its own.
  Machine machine(3);
  const std::vector<std::vector<double>> contribs{{1, 2}, {3}, {4, 5, 6}};
  all_gather_bucket(machine, iota_group(3), contribs);
  const index_t sizes[3] = {2, 1, 3};
  const index_t total = 6;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(machine.stats(i).words_sent, total - sizes[(i + 1) % 3]);
    EXPECT_EQ(machine.stats(i).words_received, total - sizes[i]);
  }
}

TEST(AllGather, SingletonGroupIsFree) {
  Machine machine(4);
  const std::vector<double> result =
      all_gather_bucket(machine, {2}, {{9, 8, 7}});
  EXPECT_EQ(result, (std::vector<double>{9, 8, 7}));
  EXPECT_EQ(machine.total_words_sent(), 0);
}

TEST(ReduceScatter, ComputesElementwiseSums) {
  Machine machine(3);
  // Three members, vector length 6, chunks of 2.
  std::vector<std::vector<double>> inputs{
      {1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2}, {3, 3, 3, 3, 3, 3}};
  const auto chunks = reduce_scatter_bucket(machine, iota_group(3), inputs,
                                            {2, 2, 2});
  ASSERT_EQ(chunks.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(chunks[static_cast<std::size_t>(i)].size(), 2u);
    EXPECT_DOUBLE_EQ(chunks[static_cast<std::size_t>(i)][0], 6.0);
    EXPECT_DOUBLE_EQ(chunks[static_cast<std::size_t>(i)][1], 6.0);
  }
}

TEST(ReduceScatter, RandomInputsMatchDirectSum) {
  Rng rng(433);
  const int q = 6;
  const index_t len = 23;  // deliberately not divisible by q
  Machine machine(q);
  std::vector<std::vector<double>> inputs(static_cast<std::size_t>(q));
  for (auto& v : inputs) {
    v.resize(static_cast<std::size_t>(len));
    rng.fill_normal(v);
  }
  const auto sizes = flat_chunk_sizes(len, q);
  const auto chunks =
      reduce_scatter_bucket(machine, iota_group(q), inputs, sizes);

  std::vector<double> expected(static_cast<std::size_t>(len), 0.0);
  for (const auto& v : inputs) {
    for (index_t w = 0; w < len; ++w) {
      expected[static_cast<std::size_t>(w)] += v[static_cast<std::size_t>(w)];
    }
  }
  index_t offset = 0;
  for (int i = 0; i < q; ++i) {
    for (index_t w = 0; w < sizes[static_cast<std::size_t>(i)]; ++w) {
      EXPECT_NEAR(chunks[static_cast<std::size_t>(i)][static_cast<std::size_t>(w)],
                  expected[static_cast<std::size_t>(offset + w)], 1e-9);
    }
    offset += sizes[static_cast<std::size_t>(i)];
  }
}

TEST(ReduceScatter, WordCountsMatchBucketFormula) {
  // Rank i sends total - size(chunk i) words over the q-1 steps.
  Machine machine(4);
  std::vector<std::vector<double>> inputs(
      4, std::vector<double>(10, 1.0));
  const std::vector<index_t> sizes{4, 3, 2, 1};
  reduce_scatter_bucket(machine, iota_group(4), inputs, sizes);
  const index_t total = 10;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(machine.stats(i).words_sent,
              total - sizes[static_cast<std::size_t>(i)])
        << "rank " << i;
  }
}

TEST(ReduceScatter, ValidatesInputLengths) {
  Machine machine(2);
  std::vector<std::vector<double>> inputs{{1, 2, 3}, {1, 2}};
  EXPECT_THROW(
      reduce_scatter_bucket(machine, iota_group(2), inputs, {2, 1}),
      std::invalid_argument);
}

TEST(AllReduce, EveryMemberGetsTheFullSum) {
  Machine machine(4);
  std::vector<std::vector<double>> inputs{
      {1, 0, 0}, {0, 2, 0}, {0, 0, 3}, {1, 1, 1}};
  const std::vector<double> sum =
      all_reduce_bucket(machine, iota_group(4), inputs);
  EXPECT_EQ(sum, (std::vector<double>{2, 3, 4}));
  // Cost: reduce-scatter + all-gather, each ~ (q-1)/q * len per rank.
  EXPECT_GT(machine.total_words_sent(), 0);
}

TEST(Broadcast, RingCountsQMinusOneMessages) {
  Machine machine(5);
  broadcast_ring(machine, iota_group(5), 2, 100);
  index_t total = 0;
  for (int r = 0; r < 5; ++r) total += machine.stats(r).words_sent;
  EXPECT_EQ(total, 4 * 100);
  // The root never receives.
  EXPECT_EQ(machine.stats(2).words_received, 0);
}

TEST(Collectives, GroupValidation) {
  Machine machine(4);
  EXPECT_THROW(all_gather_bucket(machine, {}, {}), std::invalid_argument);
  EXPECT_THROW(all_gather_bucket(machine, {0, 0}, {{1}, {2}}),
               std::invalid_argument);
  EXPECT_THROW(all_gather_bucket(machine, {0, 7}, {{1}, {2}}),
               std::invalid_argument);
  EXPECT_THROW(all_gather_bucket(machine, {0, 1}, {{1}}),
               std::invalid_argument);
}

TEST(Machine, StatsAndReset) {
  Machine machine(3);
  machine.record_send(0, 1, 10);
  machine.record_send(1, 2, 5);
  EXPECT_EQ(machine.stats(0).words_sent, 10);
  EXPECT_EQ(machine.stats(1).words_received, 10);
  EXPECT_EQ(machine.stats(1).words_sent, 5);
  EXPECT_EQ(machine.max_words_moved(), 15);  // rank 1: 10 in + 5 out
  EXPECT_EQ(machine.total_words_sent(), 15);
  machine.reset_stats();
  EXPECT_EQ(machine.total_words_sent(), 0);
  EXPECT_THROW(machine.record_send(0, 0, 1), std::invalid_argument);
  EXPECT_THROW(machine.record_send(0, 9, 1), std::invalid_argument);
  EXPECT_THROW(Machine(0), std::invalid_argument);
}

}  // namespace
}  // namespace mtk
