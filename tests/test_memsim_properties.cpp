// Property tests for the memory simulator: the LRU inclusion (stack)
// property, policy dominance relations, and capacity monotonicity on both
// random traces and real MTTKRP traces.
#include <gtest/gtest.h>

#include "src/memsim/traced_mttkrp.hpp"
#include "src/support/rng.hpp"

namespace mtk {
namespace {

std::vector<TraceEntry> random_trace(Rng& rng, int length,
                                     index_t address_space,
                                     double write_fraction) {
  std::vector<TraceEntry> trace;
  trace.reserve(static_cast<std::size_t>(length));
  for (int t = 0; t < length; ++t) {
    trace.push_back({rng.uniform_int(0, address_space - 1),
                     rng.uniform(0, 1) < write_fraction});
  }
  return trace;
}

MemoryStats run_policy(const std::vector<TraceEntry>& trace, index_t capacity,
                       ReplacementPolicy policy) {
  FastMemory mem(capacity, policy);
  for (const TraceEntry& e : trace) {
    if (e.is_write) {
      mem.write(e.addr);
    } else {
      mem.read(e.addr);
    }
  }
  mem.flush();
  return mem.stats();
}

TEST(MemsimProperty, LruStackInclusion) {
  // LRU is a stack algorithm: a larger capacity never causes more misses
  // (loads). This is the classic inclusion property.
  Rng rng(17001);
  for (int trial = 0; trial < 20; ++trial) {
    const auto trace = random_trace(rng, 2000, 40, 0.3);
    index_t previous_loads = std::numeric_limits<index_t>::max();
    for (index_t capacity : {2, 4, 8, 16, 32}) {
      const MemoryStats stats = run_policy(trace, capacity,
                                           ReplacementPolicy::kLru);
      EXPECT_LE(stats.loads, previous_loads)
          << "trial " << trial << " capacity " << capacity;
      previous_loads = stats.loads;
    }
  }
}

TEST(MemsimProperty, FifoIsNotAStackAlgorithm) {
  // Belady's anomaly on the canonical reference string
  // 1 2 3 4 1 2 5 1 2 3 4 5: FIFO faults 9 times with 3 frames but 10
  // times with 4 — more memory, more misses. This guards against
  // "fixing" FIFO into LRU by accident (LRU cannot exhibit the anomaly,
  // per LruStackInclusion above).
  std::vector<TraceEntry> trace;
  for (index_t addr : {1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5}) {
    trace.push_back({addr, false});
  }
  const MemoryStats three = run_policy(trace, 3, ReplacementPolicy::kFifo);
  const MemoryStats four = run_policy(trace, 4, ReplacementPolicy::kFifo);
  EXPECT_EQ(three.loads, 9);
  EXPECT_EQ(four.loads, 10);
}

TEST(MemsimProperty, OptDominatesEveryPolicy) {
  Rng rng(17005);
  for (int trial = 0; trial < 15; ++trial) {
    const auto trace = random_trace(rng, 1500, 30, 0.25);
    for (index_t capacity : {3, 7, 15}) {
      const MemoryStats opt = simulate_optimal(capacity, trace);
      const MemoryStats lru = run_policy(trace, capacity,
                                         ReplacementPolicy::kLru);
      const MemoryStats fifo = run_policy(trace, capacity,
                                          ReplacementPolicy::kFifo);
      EXPECT_LE(opt.traffic(), lru.traffic())
          << "trial " << trial << " capacity " << capacity;
      EXPECT_LE(opt.traffic(), fifo.traffic())
          << "trial " << trial << " capacity " << capacity;
    }
  }
}

TEST(MemsimProperty, TrafficLowerBoundedByCompulsoryMisses) {
  // No policy can beat one load per distinct address read before being
  // written, plus one store per dirty word.
  Rng rng(17007);
  const auto trace = random_trace(rng, 800, 25, 0.2);
  DistinctSink distinct;
  for (const TraceEntry& e : trace) {
    if (e.is_write) {
      distinct.write(e.addr);
    } else {
      distinct.read(e.addr);
    }
  }
  const MemoryStats opt = simulate_optimal(6, trace);
  // Compulsory floor: every distinct address costs at least one transfer
  // (a load if first touched by a read, a store if it ends dirty).
  EXPECT_GE(opt.traffic(), distinct.distinct() / 2);
}

TEST(MemsimProperty, MttkrpTraceStackInclusion) {
  // The inclusion property on a real Algorithm 2 trace, tying the memsim
  // property suite to the paper's workload.
  TraceProblem p;
  p.dims = {10, 10, 10};
  p.rank = 4;
  p.mode = 1;
  RecordingSink rec;
  trace_blocked(p, 4, rec);
  index_t previous = std::numeric_limits<index_t>::max();
  for (index_t m : {30, 90, 270, 810}) {
    FastMemory mem(m, ReplacementPolicy::kLru);
    for (const TraceEntry& e : rec.trace()) {
      if (e.is_write) {
        mem.write(e.addr);
      } else {
        mem.read(e.addr);
      }
    }
    mem.flush();
    EXPECT_LE(mem.stats().loads, previous) << "M = " << m;
    previous = mem.stats().loads;
  }
}

}  // namespace
}  // namespace mtk
