// CsfSet (multi-tree CSF) and the memoized fused all-modes walk:
// correctness against the reference kernel for every policy, exact multiply
// accounting, the computation-reuse factor the Section VII extension
// promises (mirroring test_dim_tree.cpp for the sparse side), and the
// zero-rebuild contract of the StoredTensor acceleration cache and the
// CP drivers.
#include <gtest/gtest.h>

#include "src/cp/cp_als.hpp"
#include "src/cp/cp_gradient.hpp"
#include "src/mttkrp/dispatch.hpp"
#include "src/support/rng.hpp"

namespace mtk {
namespace {

constexpr double kTol = 1e-9;

struct Problem {
  SparseTensor coo;
  std::vector<Matrix> factors;
};

Problem make_problem(const shape_t& dims, index_t rank, double density,
                     std::uint64_t seed) {
  Rng rng(seed);
  Problem p;
  p.coo = SparseTensor::random_sparse(dims, density, rng);
  for (index_t d : dims) {
    p.factors.push_back(Matrix::random_normal(d, rank, rng));
  }
  return p;
}

// ---------------------------------------------------------------------------
// Structure per policy.

TEST(CsfSet, OnePerModeRootsEveryModeAtItsTree) {
  const Problem p = make_problem({6, 5, 7, 4}, 3, 0.05, 9001);
  const CsfSet set = CsfSet::build(p.coo, CsfSetPolicy::kOnePerMode);
  EXPECT_EQ(set.tree_count(), 4);
  EXPECT_EQ(set.nnz(), p.coo.nnz());
  for (int mode = 0; mode < 4; ++mode) {
    EXPECT_EQ(set.tree_for(mode).level_of_mode(mode), 0) << "mode " << mode;
  }
}

TEST(CsfSet, HybridHalvesTheTreesAndPinsRootOrLeaf) {
  for (const shape_t& dims : {shape_t{6, 5, 7}, shape_t{6, 5, 7, 4},
                              shape_t{4, 3, 5, 3, 4}}) {
    const Problem p = make_problem(dims, 2, 0.08, 9007);
    const CsfSet set = CsfSet::build(p.coo, CsfSetPolicy::kHybrid);
    const int n = static_cast<int>(dims.size());
    EXPECT_EQ(set.tree_count(), (n + 1) / 2);
    for (int mode = 0; mode < n; ++mode) {
      const int level = set.tree_for(mode).level_of_mode(mode);
      EXPECT_TRUE(level == 0 || level == n - 1)
          << "mode " << mode << " sits at interior level " << level;
    }
    // The storage saving is the policy's point.
    const CsfSet full = CsfSet::build(p.coo, CsfSetPolicy::kOnePerMode);
    EXPECT_LT(set.storage_words(), full.storage_words());
  }
}

TEST(CsfSet, SinglePolicyAndAdoptHoldOneTree) {
  const Problem p = make_problem({5, 6, 4}, 2, 0.1, 9011);
  const CsfSet single = CsfSet::build(p.coo, CsfSetPolicy::kSingle);
  EXPECT_EQ(single.tree_count(), 1);
  const CsfSet adopted = CsfSet::adopt(CsfTensor::from_coo(p.coo, 2));
  EXPECT_EQ(adopted.tree_count(), 1);
  EXPECT_EQ(adopted.tree_for(0).nnz(), p.coo.nnz());
}

// ---------------------------------------------------------------------------
// Per-mode kernels through the set agree with the reference for every
// policy.

class CsfSetPolicies : public ::testing::TestWithParam<CsfSetPolicy> {};

TEST_P(CsfSetPolicies, PerModeMttkrpMatchesReference) {
  for (const shape_t& dims :
       {shape_t{6, 5, 7}, shape_t{5, 4, 6, 3}, shape_t{3, 2, 4, 2, 3}}) {
    const Problem p = make_problem(dims, 3, 0.07, 9013);
    const CsfSet set = CsfSet::build(p.coo, GetParam());
    const int n = static_cast<int>(dims.size());
    for (int mode = 0; mode < n; ++mode) {
      const Matrix expected = mttkrp_coo(p.coo, p.factors, mode);
      EXPECT_LT(max_abs_diff(mttkrp(set, p.factors, mode), expected), kTol)
          << to_string(GetParam()) << ", mode " << mode;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, CsfSetPolicies,
                         ::testing::Values(CsfSetPolicy::kOnePerMode,
                                           CsfSetPolicy::kHybrid,
                                           CsfSetPolicy::kSingle));

// ---------------------------------------------------------------------------
// Fused all-modes walk: correctness, exact accounting, reuse factor.

TEST(FusedAllModes, MatchesPerModeMttkrpSerialAndParallel) {
  for (const shape_t& dims :
       {shape_t{5, 7}, shape_t{6, 5, 7}, shape_t{5, 4, 6, 3},
        shape_t{3, 2, 4, 2, 3}}) {
    const Problem p = make_problem(dims, 3, 0.08, 9017);
    const CsfTensor tree = CsfTensor::from_coo(p.coo, -1);
    const int n = static_cast<int>(dims.size());
    for (bool parallel : {false, true}) {
      const AllModesResult fused =
          mttkrp_all_modes_fused(tree, p.factors, parallel);
      ASSERT_EQ(fused.outputs.size(), static_cast<std::size_t>(n));
      for (int mode = 0; mode < n; ++mode) {
        const Matrix expected = mttkrp_coo(p.coo, p.factors, mode);
        EXPECT_LT(max_abs_diff(
                      fused.outputs[static_cast<std::size_t>(mode)],
                      expected),
                  kTol)
            << "mode " << mode << (parallel ? " (parallel)" : " (serial)");
      }
      EXPECT_EQ(fused.multiplies, fused_multiply_count(tree, 3));
    }
  }
}

TEST(FusedAllModes, MultiplyCountMatchesModel) {
  const Problem p = make_problem({8, 6, 7, 5}, 4, 0.04, 9019);
  const CsfTensor tree = CsfTensor::from_coo(p.coo, -1);
  // The model: 2R per leaf, 3R per interior non-root fiber.
  index_t interior = 0;
  for (int l = 1; l + 1 < tree.order(); ++l) interior += tree.node_count(l);
  EXPECT_EQ(fused_multiply_count(tree, 4),
            4 * (2 * tree.nnz() + 3 * interior));
  // A single-target walk touches every fiber once.
  index_t nodes = 0;
  for (int l = 0; l < tree.order(); ++l) nodes += tree.node_count(l);
  EXPECT_EQ(csf_target_multiply_count(tree, 4), 4 * nodes);
}

TEST(FusedAllModes, ReusesWorkOverSeparateMttkrps) {
  // Mirrors DimTree.SavesWorkOverSeparateMttkrps: for order >= 3 the fused
  // walk must perform strictly fewer multiplies than N independent
  // single-tree walks, and the gap widens with the order.
  const Problem p3 = make_problem({8, 8, 8}, 4, 0.05, 9023);
  const CsfSet set3 = CsfSet::build(p3.coo, CsfSetPolicy::kOnePerMode);
  const AllModesResult fused3 = mttkrp_all_modes(set3, p3.factors);
  const index_t sep3 = csf_separate_multiply_count(set3, 4);
  EXPECT_LT(fused3.multiplies, sep3);
  const double ratio3 = static_cast<double>(sep3) /
                        static_cast<double>(fused3.multiplies);
  EXPECT_GT(ratio3, 1.0);

  const Problem p5 = make_problem({4, 4, 4, 4, 4}, 3, 0.05, 9029);
  const CsfSet set5 = CsfSet::build(p5.coo, CsfSetPolicy::kOnePerMode);
  const AllModesResult fused5 = mttkrp_all_modes(set5, p5.factors);
  const double ratio5 =
      static_cast<double>(csf_separate_multiply_count(set5, 3)) /
      static_cast<double>(fused5.multiplies);
  EXPECT_GT(ratio5, ratio3);
}

// ---------------------------------------------------------------------------
// Zero-rebuild contracts.

TEST(CsfAccelCache, RepeatedCallsOnOneHandleBuildTreesOnce) {
  const Problem p = make_problem({10, 8, 9}, 3, 0.06, 9031);
  const StoredTensor handle = StoredTensor::coo_view(p.coo);

  // Per-mode forest: N builds on first touch, zero afterwards; the same
  // object is served to every caller.
  const index_t before_forest = CsfTensor::build_count();
  const CsfSet& forest = handle.csf_forest();
  EXPECT_EQ(CsfTensor::build_count() - before_forest, 3);
  EXPECT_EQ(&handle.csf_forest(), &forest);
  EXPECT_EQ(CsfTensor::build_count() - before_forest, 3);

  // Copies share the cache.
  const StoredTensor copy = handle;
  EXPECT_EQ(&copy.csf_forest(), &forest);
  EXPECT_EQ(CsfTensor::build_count() - before_forest, 3);

  // kCsf dispatch on a COO handle uses the cached forest — no rebuilds.
  MttkrpOptions opts;
  opts.sparse_algo = SparseMttkrpAlgo::kCsf;
  const Matrix expected = mttkrp_coo(p.coo, p.factors, 1);
  const index_t before_calls = CsfTensor::build_count();
  for (int repeat = 0; repeat < 3; ++repeat) {
    EXPECT_LT(max_abs_diff(mttkrp(handle, p.factors, 1, opts), expected),
              kTol);
  }
  EXPECT_EQ(CsfTensor::build_count(), before_calls);

  // All-modes: one fused tree on first call, zero rebuilds afterwards.
  const AllModesResult first = mttkrp_all_modes(handle, p.factors);
  const index_t after_first = CsfTensor::build_count();
  const AllModesResult second = mttkrp_all_modes(handle, p.factors);
  EXPECT_EQ(CsfTensor::build_count(), after_first);
  for (int mode = 0; mode < 3; ++mode) {
    EXPECT_LT(max_abs_diff(first.outputs[static_cast<std::size_t>(mode)],
                           second.outputs[static_cast<std::size_t>(mode)]),
              kTol);
  }
  EXPECT_THROW(StoredTensor::dense(p.coo.to_dense()).csf_forest(),
               std::invalid_argument);
}

TEST(CsfAccelCache, CpAlsSweepsRebuildNothingAfterTheForest) {
  const Problem p = make_problem({12, 9, 10}, 3, 0.08, 9037);
  CpAlsOptions opts;
  opts.rank = 3;
  opts.max_iterations = 6;
  opts.tolerance = 0.0;  // force all iterations

  const index_t before = CsfTensor::build_count();
  const CpAlsResult result = cp_als(p.coo, opts);
  // Exactly the N forest trees, regardless of the iteration count.
  EXPECT_EQ(CsfTensor::build_count() - before, 3);
  EXPECT_EQ(result.iterations, 6);

  // The forest-backed driver matches the explicit-COO driver sweep for
  // sweep (identical initialization, identical normal equations).
  CpAlsOptions coo_opts = opts;
  coo_opts.mttkrp.sparse_algo = SparseMttkrpAlgo::kCoo;
  const CpAlsResult baseline = cp_als(p.coo, coo_opts);
  ASSERT_EQ(result.trace.size(), baseline.trace.size());
  for (std::size_t i = 0; i < result.trace.size(); ++i) {
    EXPECT_NEAR(result.trace[i].fit, baseline.trace[i].fit, 1e-6);
  }
}

TEST(CsfAccelCache, CpGradientEvaluationsShareOneFusedTree) {
  const Problem p = make_problem({8, 7, 6}, 2, 0.1, 9041);
  CpGradOptions opts;
  opts.rank = 2;
  opts.max_iterations = 4;

  const index_t before = CsfTensor::build_count();
  const CpGradResult result =
      cp_gradient_descent(StoredTensor::coo_view(p.coo), opts);
  // One fused tree serves every evaluation (accepted iterates and rejected
  // Armijo trials alike).
  EXPECT_EQ(CsfTensor::build_count() - before, 1);
  EXPECT_GE(result.iterations, 1);
}

}  // namespace
}  // namespace mtk
