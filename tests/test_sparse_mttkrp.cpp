// Storage-backend agreement tests for MTTKRP: the same tensor stored dense,
// COO, and CSF must produce identical results (max-abs-diff <= 1e-10) for
// every mode, across orders 3-5, including empty slices and inputs built
// from duplicate coordinates. Also covers the dispatch layer (StoredTensor,
// sparse_algo conversions) and the parallel kernels.
#include <gtest/gtest.h>

#include <tuple>

#include "src/mttkrp/dispatch.hpp"
#include "src/support/rng.hpp"

namespace mtk {
namespace {

constexpr double kTol = 1e-10;

std::vector<Matrix> make_factors(const shape_t& dims, index_t rank,
                                 Rng& rng) {
  std::vector<Matrix> factors;
  for (index_t d : dims) {
    factors.push_back(Matrix::random_normal(d, rank, rng));
  }
  return factors;
}

// ---------------------------------------------------------------------------
// Randomized agreement sweep: (dims, rank, density) across orders 3-5; every
// mode of every case is checked dense vs COO vs CSF (all rootings).

using SweepParam = std::tuple<shape_t, index_t, double>;

class SparseAgreementSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SparseAgreementSweep, DenseCooCsfAgreeOnEveryMode) {
  const auto& [dims, rank, density] = GetParam();
  Rng rng(101 + static_cast<std::uint64_t>(dims.size()));
  const SparseTensor coo = SparseTensor::random_sparse(dims, density, rng);
  const DenseTensor dense = coo.to_dense();
  const std::vector<Matrix> factors = make_factors(dims, rank, rng);

  const int n = static_cast<int>(dims.size());
  for (int mode = 0; mode < n; ++mode) {
    const Matrix expected = mttkrp_reference(dense, factors, mode);
    EXPECT_LT(max_abs_diff(mttkrp_coo(coo, factors, mode), expected), kTol)
        << "coo, mode " << mode;
    // CSF rooted at the output mode (the fast path), at every other mode
    // (generic any-mode kernel), and with the default heuristic rooting.
    for (int root = -1; root < n; ++root) {
      const CsfTensor csf = CsfTensor::from_coo(coo, root);
      EXPECT_LT(max_abs_diff(mttkrp_csf(csf, factors, mode), expected), kTol)
          << "csf root " << root << ", mode " << mode;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    OrderThree, SparseAgreementSweep,
    ::testing::Values(SweepParam{{6, 5, 7}, 3, 0.1},
                      SweepParam{{12, 4, 9}, 4, 0.03},
                      SweepParam{{3, 3, 3}, 2, 0.5},
                      SweepParam{{16, 16, 16}, 5, 0.01}));

INSTANTIATE_TEST_SUITE_P(
    OrderFour, SparseAgreementSweep,
    ::testing::Values(SweepParam{{5, 4, 6, 3}, 3, 0.05},
                      SweepParam{{8, 3, 5, 7}, 2, 0.02},
                      SweepParam{{2, 2, 2, 2}, 4, 0.6}));

INSTANTIATE_TEST_SUITE_P(
    OrderFive, SparseAgreementSweep,
    ::testing::Values(SweepParam{{4, 3, 5, 3, 4}, 2, 0.03},
                      SweepParam{{3, 2, 4, 2, 3}, 3, 0.1}));

// ---------------------------------------------------------------------------
// Empty slices: indices with no nonzeros must yield zero output rows, and
// wholly empty tensors must not crash any kernel.

TEST(SparseMttkrp, EmptySlicesYieldZeroRows) {
  // Nonzeros confined to slices {1, 3} of mode 0; rows 0, 2, 4, 5 of the
  // mode-0 output must be exactly zero.
  SparseTensor s({6, 4, 5});
  Rng rng(107);
  for (index_t j = 0; j < 4; ++j) {
    for (index_t k = 0; k < 5; ++k) {
      s.push_back({1, j, k}, rng.normal());
      s.push_back({3, j, k}, rng.normal());
    }
  }
  s.sort_and_dedup();
  const std::vector<Matrix> factors = make_factors(s.dims(), 3, rng);
  const Matrix expected = mttkrp_reference(s.to_dense(), factors, 0);

  for (const Matrix& b :
       {mttkrp_coo(s, factors, 0),
        mttkrp_csf(CsfTensor::from_coo(s, 0), factors, 0),
        mttkrp_csf(CsfTensor::from_coo(s, 2), factors, 0)}) {
    EXPECT_LT(max_abs_diff(b, expected), kTol);
    for (index_t i : {index_t{0}, index_t{2}, index_t{4}, index_t{5}}) {
      for (index_t r = 0; r < b.cols(); ++r) {
        EXPECT_EQ(b(i, r), 0.0) << "row " << i;
      }
    }
  }
}

TEST(SparseMttkrp, AllZeroTensorProducesZeroOutput) {
  const SparseTensor s({4, 5, 6});
  Rng rng(109);
  const std::vector<Matrix> factors = make_factors(s.dims(), 2, rng);
  for (int mode = 0; mode < 3; ++mode) {
    EXPECT_EQ(mttkrp_coo(s, factors, mode).max_abs(), 0.0);
    EXPECT_EQ(
        mttkrp_csf(CsfTensor::from_coo(s, mode), factors, mode).max_abs(),
        0.0);
  }
}

// ---------------------------------------------------------------------------
// Duplicate coordinates: a tensor assembled from overlapping increments
// (finite-element style) must agree with its densified sum.

TEST(SparseMttkrp, DuplicateCoordinatesSumBeforeKernel) {
  Rng rng(113);
  SparseTensor s({5, 4, 6});
  for (int rep = 0; rep < 3; ++rep) {
    for (index_t p = 0; p < 20; ++p) {
      const multi_index_t idx{rng.uniform_int(0, 4), rng.uniform_int(0, 3),
                              rng.uniform_int(0, 5)};
      s.push_back(idx, rng.normal());
    }
  }
  const DenseTensor dense = s.to_dense();  // sums duplicates independently
  s.sort_and_dedup();
  const std::vector<Matrix> factors = make_factors(s.dims(), 4, rng);
  for (int mode = 0; mode < 3; ++mode) {
    const Matrix expected = mttkrp_reference(dense, factors, mode);
    EXPECT_LT(max_abs_diff(mttkrp_coo(s, factors, mode), expected), kTol);
    EXPECT_LT(max_abs_diff(
                  mttkrp_csf(CsfTensor::from_coo(s), factors, mode), expected),
              kTol);
  }
}

TEST(SparseMttkrp, UnsortedCooIsRejected) {
  SparseTensor s({3, 3});
  s.push_back({1, 1}, 1.0);
  Rng rng(127);
  const std::vector<Matrix> factors = make_factors(s.dims(), 2, rng);
  EXPECT_THROW(mttkrp_coo(s, factors, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Parallel kernels match the serial ones.

TEST(SparseMttkrp, ParallelMatchesSerial) {
  Rng rng(131);
  const SparseTensor s = SparseTensor::random_sparse({14, 10, 12}, 0.05, rng);
  const std::vector<Matrix> factors = make_factors(s.dims(), 4, rng);
  for (int mode = 0; mode < 3; ++mode) {
    EXPECT_LT(max_abs_diff(mttkrp_coo(s, factors, mode, true),
                           mttkrp_coo(s, factors, mode, false)),
              kTol);
    // Root-mode rooting exercises the disjoint-row fast path; another
    // rooting exercises scratch-row accumulation.
    for (int root : {mode, (mode + 1) % 3}) {
      const CsfTensor csf = CsfTensor::from_coo(s, root);
      EXPECT_LT(max_abs_diff(mttkrp_csf(csf, factors, mode, true),
                             mttkrp_csf(csf, factors, mode, false)),
                kTol);
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch layer: StoredTensor handles and sparse_algo conversion paths.

TEST(StorageDispatch, AllFormatsAgreeThroughStoredTensor) {
  Rng rng(137);
  const SparseTensor coo = SparseTensor::random_sparse({8, 6, 7}, 0.08, rng);
  const std::vector<Matrix> factors = make_factors(coo.dims(), 3, rng);

  const StoredTensor handles[] = {
      StoredTensor::dense(coo.to_dense()),
      StoredTensor::coo_view(coo),
      StoredTensor::csf(CsfTensor::from_coo(coo)),
  };
  EXPECT_EQ(handles[0].format(), StorageFormat::kDense);
  EXPECT_EQ(handles[1].format(), StorageFormat::kCoo);
  EXPECT_EQ(handles[2].format(), StorageFormat::kCsf);
  EXPECT_EQ(handles[1].stored_values(), coo.nnz());
  EXPECT_NEAR(handles[2].frobenius_norm(), handles[0].frobenius_norm(),
              1e-12);

  for (int mode = 0; mode < 3; ++mode) {
    const Matrix expected = mttkrp(handles[0], factors, mode);
    for (const StoredTensor& h : handles) {
      EXPECT_LT(max_abs_diff(mttkrp(h, factors, mode), expected), kTol)
          << to_string(h.format()) << ", mode " << mode;
    }
  }
}

TEST(StorageDispatch, SparseAlgoConversionsAgree) {
  Rng rng(139);
  const SparseTensor coo = SparseTensor::random_sparse({7, 9, 5}, 0.06, rng);
  const CsfTensor csf = CsfTensor::from_coo(coo);
  const std::vector<Matrix> factors = make_factors(coo.dims(), 3, rng);

  for (int mode = 0; mode < 3; ++mode) {
    const Matrix expected = mttkrp_coo(coo, factors, mode);
    for (SparseMttkrpAlgo algo : {SparseMttkrpAlgo::kAuto,
                                  SparseMttkrpAlgo::kCoo,
                                  SparseMttkrpAlgo::kCsf}) {
      MttkrpOptions opts;
      opts.sparse_algo = algo;
      EXPECT_LT(max_abs_diff(mttkrp(coo, factors, mode, opts), expected),
                kTol)
          << "coo storage, algo " << to_string(algo);
      EXPECT_LT(max_abs_diff(mttkrp(csf, factors, mode, opts), expected),
                kTol)
          << "csf storage, algo " << to_string(algo);
    }
  }
}

TEST(StorageDispatch, AllModesMatchesPerModeCalls) {
  Rng rng(149);
  const SparseTensor coo = SparseTensor::random_sparse({6, 8, 5}, 0.1, rng);
  const std::vector<Matrix> factors = make_factors(coo.dims(), 3, rng);

  const StoredTensor sparse = StoredTensor::coo_view(coo);
  const StoredTensor dense = StoredTensor::dense(coo.to_dense());
  const AllModesResult from_sparse = mttkrp_all_modes(sparse, factors);
  const AllModesResult from_dense = mttkrp_all_modes(dense, factors);
  ASSERT_EQ(from_sparse.outputs.size(), 3u);
  ASSERT_EQ(from_dense.outputs.size(), 3u);
  for (int mode = 0; mode < 3; ++mode) {
    EXPECT_LT(max_abs_diff(from_sparse.outputs[static_cast<std::size_t>(mode)],
                           from_dense.outputs[static_cast<std::size_t>(mode)]),
              kTol);
  }
  EXPECT_GT(from_sparse.multiplies, 0);
}

TEST(StorageDispatch, EmptyHandleAndWrongAccessorThrow) {
  const StoredTensor empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_THROW(empty.format(), std::invalid_argument);
  Rng rng(151);
  const StoredTensor d =
      StoredTensor::dense(DenseTensor::random_normal({2, 2}, rng));
  EXPECT_THROW(d.as_coo(), std::invalid_argument);
  EXPECT_THROW(d.as_csf(), std::invalid_argument);
  EXPECT_NO_THROW(d.as_dense());
}

}  // namespace
}  // namespace mtk
