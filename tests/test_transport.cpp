// Agreement battery for the transport layer (see DESIGN.md): the real
// thread backend must produce bit-identical collective outputs, driver
// results, and per-rank word/message counters to the counting simulator,
// across collective kinds, group shapes, algorithms, and storage formats.
// CountingTransport asserting parity inside a run is itself under test, as
// are wall-clock accounting and error propagation out of rank bodies.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "src/mttkrp/sparse_kernels.hpp"
#include "src/parsim/par_multi_mttkrp.hpp"
#include "src/parsim/par_mttkrp.hpp"
#include "src/parsim/transport/counting_transport.hpp"
#include "src/parsim/transport/thread_transport.hpp"
#include "src/parsim/transport/transport.hpp"
#include "src/support/rng.hpp"
#include "src/tensor/csf.hpp"

namespace mtk {
namespace {

// Bitwise equality, not tolerance: the backends run the same per-member
// schedules, so their floating-point accumulation orders are identical.
void expect_bits_equal(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (index_t i = 0; i < a.rows(); ++i) {
    EXPECT_EQ(0, std::memcmp(a.row(i), b.row(i),
                             static_cast<std::size_t>(a.cols()) *
                                 sizeof(double)))
        << "row " << i << " differs";
  }
}

void expect_same_stats(const Transport& a, const Transport& b) {
  ASSERT_EQ(a.num_ranks(), b.num_ranks());
  for (int r = 0; r < a.num_ranks(); ++r) {
    EXPECT_EQ(a.stats(r).words_sent, b.stats(r).words_sent) << "rank " << r;
    EXPECT_EQ(a.stats(r).words_received, b.stats(r).words_received)
        << "rank " << r;
    EXPECT_EQ(a.stats(r).messages_sent, b.stats(r).messages_sent)
        << "rank " << r;
  }
}

std::vector<std::vector<double>> random_vectors(
    const std::vector<index_t>& lengths, Rng& rng) {
  std::vector<std::vector<double>> out;
  out.reserve(lengths.size());
  for (index_t len : lengths) {
    std::vector<double> v(static_cast<std::size_t>(len));
    for (double& x : v) x = rng.normal();
    out.push_back(std::move(v));
  }
  return out;
}

struct SparseProblem {
  SparseTensor coo;
  CsfTensor csf;
  DenseTensor dense;
  std::vector<Matrix> factors;
};

SparseProblem make_problem(const shape_t& dims, index_t rank,
                           std::uint64_t seed) {
  Rng rng(seed);
  SparseProblem p;
  p.coo = SparseTensor::random_sparse(dims, 0.3, rng);
  p.csf = CsfTensor::from_coo(p.coo);
  p.dense = p.coo.to_dense();
  for (index_t d : dims) {
    p.factors.push_back(Matrix::random_normal(d, rank, rng));
  }
  return p;
}

// ---------------------------------------------------------------------------
// Collective-level agreement: raw all_gather / reduce_scatter / all_reduce.

struct GroupCase {
  int num_ranks;
  std::vector<int> group;
};

std::vector<GroupCase> group_cases() {
  return {
      {4, {0, 1, 2, 3}},     // full power-of-two group: recursive applies
      {5, {0, 1, 2, 3, 4}},  // non-power-of-two: recursive falls back
      {8, {1, 3, 5, 7}},     // strided subset of a larger machine
      {3, {2, 0}},           // out-of-order two-member group
  };
}

TEST(TransportCollectives, AllGatherMatchesSimBitwiseWithSameCounters) {
  for (const GroupCase& gc : group_cases()) {
    for (CollectiveKind kind :
         {CollectiveKind::kBucket, CollectiveKind::kRecursive}) {
      Rng rng(99 + static_cast<std::uint64_t>(gc.num_ranks));
      // Ragged member contributions (All-Gather has no uniformity rule).
      std::vector<index_t> lengths;
      for (std::size_t i = 0; i < gc.group.size(); ++i) {
        lengths.push_back(static_cast<index_t>(3 + 2 * i));
      }
      const auto contributions = random_vectors(lengths, rng);

      SimTransport sim(gc.num_ranks);
      ThreadTransport thr(gc.num_ranks);
      const std::vector<double> want =
          sim.all_gather(gc.group, contributions, kind);
      const std::vector<double> got =
          thr.all_gather(gc.group, contributions, kind);
      EXPECT_EQ(want, got) << "q=" << gc.group.size()
                           << " kind=" << to_string(kind);
      expect_same_stats(sim, thr);
    }
  }
}

TEST(TransportCollectives, ReduceScatterMatchesSimBitwiseWithSameCounters) {
  for (const GroupCase& gc : group_cases()) {
    for (CollectiveKind kind :
         {CollectiveKind::kBucket, CollectiveKind::kRecursive}) {
      const int q = static_cast<int>(gc.group.size());
      Rng rng(7 + static_cast<std::uint64_t>(gc.num_ranks));
      // Uniform chunks so recursive halving applies where the group is a
      // power of two; the bucket runs use the same shape for comparability.
      std::vector<index_t> chunk_sizes(static_cast<std::size_t>(q), 4);
      const index_t total =
          std::accumulate(chunk_sizes.begin(), chunk_sizes.end(), index_t{0});
      const auto inputs = random_vectors(
          std::vector<index_t>(static_cast<std::size_t>(q), total), rng);

      SimTransport sim(gc.num_ranks);
      ThreadTransport thr(gc.num_ranks);
      const auto want = sim.reduce_scatter(gc.group, inputs, chunk_sizes, kind);
      const auto got = thr.reduce_scatter(gc.group, inputs, chunk_sizes, kind);
      EXPECT_EQ(want, got) << "q=" << q << " kind=" << to_string(kind);
      expect_same_stats(sim, thr);
    }
  }
}

TEST(TransportCollectives, RaggedReduceScatterAndAllReduceAgree) {
  // Ragged chunks force the bucket fallback even under kRecursive.
  const std::vector<int> group{0, 1, 2};
  const std::vector<index_t> chunk_sizes{5, 0, 2};
  Rng rng(41);
  const auto inputs =
      random_vectors(std::vector<index_t>(3, index_t{7}), rng);

  for (CollectiveKind kind :
       {CollectiveKind::kBucket, CollectiveKind::kRecursive}) {
    SimTransport sim(3);
    ThreadTransport thr(3);
    EXPECT_EQ(sim.reduce_scatter(group, inputs, chunk_sizes, kind),
              thr.reduce_scatter(group, inputs, chunk_sizes, kind));
    EXPECT_EQ(sim.all_reduce(group, inputs, kind),
              thr.all_reduce(group, inputs, kind));
    expect_same_stats(sim, thr);
  }
}

// ---------------------------------------------------------------------------
// Driver-level agreement: Algorithms 3/4 and the all-modes driver, each
// over dense/COO/CSF storage and both collective kinds.

TEST(TransportDrivers, StationaryAgreesAcrossBackends) {
  const SparseProblem p = make_problem({6, 6, 6}, 4, 2024);
  const std::vector<int> grid{2, 2, 2};
  const std::vector<StoredTensor> storages{StoredTensor::dense_view(p.dense),
                                           StoredTensor::coo_view(p.coo),
                                           StoredTensor::csf_view(p.csf)};
  for (const StoredTensor& x : storages) {
    for (CollectiveKind kind :
         {CollectiveKind::kBucket, CollectiveKind::kRecursive}) {
      for (int mode = 0; mode < 3; ++mode) {
        SimTransport sim(8);
        ThreadTransport thr(8);
        const ParMttkrpResult r_sim =
            par_mttkrp_stationary(sim, x, p.factors, mode, grid, kind);
        const ParMttkrpResult r_thr =
            par_mttkrp_stationary(thr, x, p.factors, mode, grid, kind);
        expect_bits_equal(r_sim.b, r_thr.b);
        expect_same_stats(sim, thr);
        EXPECT_EQ(r_sim.max_words_moved, r_thr.max_words_moved);
        EXPECT_EQ(r_sim.max_messages, r_thr.max_messages);
        EXPECT_EQ(TransportKind::kThreads, r_thr.transport);
        EXPECT_GT(r_thr.comm_seconds, 0.0);
      }
    }
  }
}

TEST(TransportDrivers, GeneralAgreesAcrossBackends) {
  const SparseProblem p = make_problem({6, 6, 6}, 4, 77);
  const std::vector<int> grid{2, 2, 1, 2};  // P0 = 2
  const std::vector<StoredTensor> storages{StoredTensor::dense_view(p.dense),
                                           StoredTensor::coo_view(p.coo),
                                           StoredTensor::csf_view(p.csf)};
  for (const StoredTensor& x : storages) {
    for (CollectiveKind kind :
         {CollectiveKind::kBucket, CollectiveKind::kRecursive}) {
      SimTransport sim(8);
      ThreadTransport thr(8);
      const ParMttkrpResult r_sim =
          par_mttkrp_general(sim, x, p.factors, 1, grid, kind);
      const ParMttkrpResult r_thr =
          par_mttkrp_general(thr, x, p.factors, 1, grid, kind);
      expect_bits_equal(r_sim.b, r_thr.b);
      expect_same_stats(sim, thr);
    }
  }
}

TEST(TransportDrivers, AllModesAgreesAcrossBackends) {
  const SparseProblem p = make_problem({6, 6, 6}, 3, 5150);
  const std::vector<int> grid{2, 2, 2};
  const std::vector<StoredTensor> storages{StoredTensor::dense_view(p.dense),
                                           StoredTensor::coo_view(p.coo),
                                           StoredTensor::csf_view(p.csf)};
  for (const StoredTensor& x : storages) {
    for (CollectiveKind kind :
         {CollectiveKind::kBucket, CollectiveKind::kRecursive}) {
      SimTransport sim(8);
      ThreadTransport thr(8);
      const ParAllModesResult r_sim =
          par_mttkrp_all_modes(sim, x, p.factors, grid, kind);
      const ParAllModesResult r_thr =
          par_mttkrp_all_modes(thr, x, p.factors, grid, kind);
      ASSERT_EQ(r_sim.outputs.size(), r_thr.outputs.size());
      for (std::size_t m = 0; m < r_sim.outputs.size(); ++m) {
        expect_bits_equal(r_sim.outputs[m], r_thr.outputs[m]);
      }
      expect_same_stats(sim, thr);
    }
  }
}

// The planner-chosen kernel variant must not perturb cross-backend
// agreement: both transports run the same explicit schedule.
TEST(TransportDrivers, ExplicitKernelVariantStillAgrees) {
  const SparseProblem p = make_problem({6, 5, 7}, 3, 31);
  const std::vector<int> grid{2, 1, 2};
  for (SparseKernelVariant variant :
       {SparseKernelVariant::kPrivatized, SparseKernelVariant::kAtomic,
        SparseKernelVariant::kTiled}) {
    SimTransport sim(4);
    ThreadTransport thr(4);
    const ParMttkrpResult r_sim = par_mttkrp_stationary(
        sim, StoredTensor::coo_view(p.coo), p.factors, 0, grid,
        CollectiveKind::kBucket, SparsePartitionScheme::kBlock, variant);
    const ParMttkrpResult r_thr = par_mttkrp_stationary(
        thr, StoredTensor::coo_view(p.coo), p.factors, 0, grid,
        CollectiveKind::kBucket, SparsePartitionScheme::kBlock, variant);
    expect_bits_equal(r_sim.b, r_thr.b);
    expect_same_stats(sim, thr);
  }
}

// ---------------------------------------------------------------------------
// CountingTransport: the words-match-the-model assertion wrapper.

TEST(CountingTransport, VerifiesThreadBackendAgainstShadowMachine) {
  const SparseProblem p = make_problem({6, 6, 6}, 4, 808);
  CountingTransport counted(std::make_unique<ThreadTransport>(8));
  const std::vector<int> grid{2, 2, 2};
  const ParMttkrpResult r = par_mttkrp_stationary(
      counted, StoredTensor::coo_view(p.coo), p.factors, 0, grid);
  EXPECT_GT(counted.collectives_checked(), 0);

  SimTransport sim(8);
  const ParMttkrpResult r_sim = par_mttkrp_stationary(
      sim, StoredTensor::coo_view(p.coo), p.factors, 0, grid);
  expect_bits_equal(r_sim.b, r.b);
  expect_same_stats(sim, counted);
}

TEST(CountingTransport, AcceptsTheSimBackendToo) {
  // Wrapping SimTransport must trivially pass: same code path both sides.
  CountingTransport counted(std::make_unique<SimTransport>(4));
  Rng rng(3);
  const auto inputs = random_vectors({5, 5, 5, 5}, rng);
  counted.all_reduce({0, 1, 2, 3}, inputs, CollectiveKind::kRecursive);
  EXPECT_GT(counted.collectives_checked(), 0);
}

// ---------------------------------------------------------------------------
// Mechanics: factory, error propagation, reuse after failure, timing.

TEST(TransportMechanics, FactoryBuildsTheRequestedBackend) {
  const std::unique_ptr<Transport> sim =
      make_transport(TransportKind::kSim, 4);
  const std::unique_ptr<Transport> thr =
      make_transport(TransportKind::kThreads, 4);
  EXPECT_EQ(TransportKind::kSim, sim->kind());
  EXPECT_EQ(TransportKind::kThreads, thr->kind());
  EXPECT_EQ(4, sim->num_ranks());
  EXPECT_EQ(4, thr->num_ranks());
}

TEST(TransportMechanics, RankBodyExceptionsPropagateAndTransportSurvives) {
  ThreadTransport thr(4);
  EXPECT_THROW(thr.run_ranks([](int r) {
                 if (r == 2) throw std::runtime_error("rank body failed");
               }),
               std::runtime_error);
  // The pool must stay usable: a subsequent collective runs to completion.
  Rng rng(11);
  const auto contributions = random_vectors({2, 2, 2, 2}, rng);
  SimTransport sim(4);
  EXPECT_EQ(sim.all_gather({0, 1, 2, 3}, contributions,
                           CollectiveKind::kBucket),
            thr.all_gather({0, 1, 2, 3}, contributions,
                           CollectiveKind::kBucket));
}

TEST(TransportMechanics, WallClockAccumulates) {
  ThreadTransport thr(4);
  EXPECT_EQ(0.0, thr.comm_seconds());
  EXPECT_EQ(0.0, thr.compute_seconds());
  Rng rng(5);
  const auto contributions = random_vectors({8, 8, 8, 8}, rng);
  thr.all_gather({0, 1, 2, 3}, contributions, CollectiveKind::kBucket);
  thr.run_ranks([](int) {});
  EXPECT_GT(thr.comm_seconds(), 0.0);
  EXPECT_GT(thr.compute_seconds(), 0.0);
  const double after_one = thr.comm_seconds();
  thr.all_gather({0, 1, 2, 3}, contributions, CollectiveKind::kBucket);
  EXPECT_GT(thr.comm_seconds(), after_one);
}

}  // namespace
}  // namespace mtk
