// Observability layer: the metrics registry's fast-path semantics and JSON
// snapshot, the span tracer's disabled-path / nesting / rank-attribution
// behavior, the Chrome trace export (validated through the in-tree JSON
// reader), the migrated legacy counters (kernel-variant witnesses, CSF
// build counts) staying in lockstep with their registry instruments, and
// plan-vs-actual drift being identically zero on the simulator for both a
// single MTTKRP and a full par_cp_als run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/cp/par_cp_als.hpp"
#include "src/mttkrp/sparse_kernels.hpp"
#include "src/obs/drift.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/parsim/par_mttkrp.hpp"
#include "src/parsim/transport/counting_transport.hpp"
#include "src/parsim/transport/transport.hpp"
#include "src/planner/predict.hpp"
#include "src/support/json.hpp"
#include "src/support/rng.hpp"
#include "src/tensor/csf.hpp"

namespace mtk {
namespace {

std::int64_t counter_value(const char* name) {
  return MetricsRegistry::global().counter(name).value();
}

std::vector<Matrix> random_factors(const shape_t& dims, index_t rank,
                                   Rng& rng) {
  std::vector<Matrix> factors;
  for (index_t d : dims) {
    factors.push_back(Matrix::random_normal(d, rank, rng));
  }
  return factors;
}

TEST(MetricsRegistry, CounterGaugeHistogramRoundTrip) {
  MetricsRegistry& reg = MetricsRegistry::global();
  Counter& c = reg.counter("test.obs.counter");
  Gauge& g = reg.gauge("test.obs.gauge");
  Histogram& h = reg.histogram("test.obs.histogram");
  c.reset();
  g.reset();
  h.reset();

  c.add();
  c.add(41);
  g.set(2.5);
  g.add(-0.5);
  h.observe(1);
  h.observe(7);
  h.observe(1024);

  EXPECT_EQ(42, c.value());
  EXPECT_DOUBLE_EQ(2.0, g.value());
  EXPECT_EQ(3, h.count());
  EXPECT_EQ(1032, h.sum());
  EXPECT_EQ(1, h.min());
  EXPECT_EQ(1024, h.max());
  // Power-of-two buckets: bucket index is the value's bit width.
  EXPECT_EQ(1, h.bucket_count(1));   // value 1
  EXPECT_EQ(1, h.bucket_count(3));   // value 7
  EXPECT_EQ(1, h.bucket_count(11));  // value 1024

  const MetricsSnapshot snap = reg.snapshot();
  const MetricsSnapshot::CounterRow* row =
      snap.find_counter("test.obs.counter");
  ASSERT_NE(nullptr, row);
  EXPECT_EQ(42, row->value);

  // Same registration is idempotent and returns the same instrument.
  EXPECT_EQ(&c, &reg.counter("test.obs.counter"));
  // A name registers exactly one instrument kind.
  EXPECT_THROW(reg.gauge("test.obs.counter"), std::invalid_argument);
  EXPECT_THROW(reg.counter("test.obs.histogram"), std::invalid_argument);
}

TEST(MetricsRegistry, ConcurrentCountersAreExact) {
  Counter& c = MetricsRegistry::global().counter("test.obs.concurrent");
  c.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(kThreads * kPerThread, c.value());
}

TEST(MetricsRegistry, JsonSnapshotParsesWithRequiredShape) {
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter("test.obs.json_counter").add(5);
  reg.gauge("test.obs.json_gauge").set(1.5);
  reg.histogram("test.obs.json_histogram").observe(9);

  const std::string path = "test_obs_metrics.json";
  ASSERT_TRUE(reg.write_json_file(path));
  const JsonValue doc = JsonValue::parse_file(path);
  std::remove(path.c_str());

  EXPECT_EQ("mtk-metrics-v1", doc.at("context").at("kind").as_string());
  const JsonValue& rows = doc.at("benchmarks");
  ASSERT_TRUE(rows.is_array());
  bool saw_counter = false, saw_gauge = false, saw_histogram = false;
  for (const JsonValue& row : rows.items()) {
    const std::string& name = row.at("name").as_string();
    const std::string& kind = row.at("run_type").as_string();
    if (name == "test.obs.json_counter") {
      saw_counter = true;
      EXPECT_EQ("counter", kind);
      EXPECT_GE(row.at("value").as_integer(), 5);
    } else if (name == "test.obs.json_gauge") {
      saw_gauge = true;
      EXPECT_EQ("gauge", kind);
    } else if (name == "test.obs.json_histogram") {
      saw_histogram = true;
      EXPECT_EQ("histogram", kind);
      EXPECT_GE(row.at("count").as_integer(), 1);
      EXPECT_TRUE(row.has("sum") && row.has("min") && row.has("max"));
    }
  }
  EXPECT_TRUE(saw_counter && saw_gauge && saw_histogram);
}

// The legacy accessors are shims over the registry now; both views of the
// kernel-variant witnesses must move together.
TEST(MetricsMigration, KernelVariantCountersMatchRegistry) {
  Rng rng(3);
  const shape_t dims = {12, 10, 8};
  const SparseTensor x = SparseTensor::random_sparse(dims, 0.1, rng);
  const std::vector<Matrix> factors = random_factors(dims, 4, rng);

  reset_kernel_variant_counters();
  EXPECT_EQ(0, counter_value("mtk.kernel.variant.serial"));

  (void)mttkrp_coo(x, factors, 0);
  (void)mttkrp_coo(x, factors, 1);

  const KernelVariantCounters after = kernel_variant_counters();
  EXPECT_EQ(after.serial, counter_value("mtk.kernel.variant.serial"));
  EXPECT_EQ(after.privatized,
            counter_value("mtk.kernel.variant.privatized"));
  EXPECT_EQ(after.atomic_adds, counter_value("mtk.kernel.variant.atomic"));
  EXPECT_EQ(after.tiled, counter_value("mtk.kernel.variant.tiled"));
  EXPECT_EQ(2, after.serial);
}

TEST(MetricsMigration, CsfBuildCountMatchesRegistry) {
  Rng rng(4);
  const SparseTensor coo =
      SparseTensor::random_sparse({10, 9, 8}, 0.1, rng);
  const index_t shim_before = CsfTensor::build_count();
  const std::int64_t reg_before = counter_value("mtk.csf.builds");
  const CsfTensor csf = CsfTensor::from_coo(coo);
  (void)csf;
  EXPECT_EQ(CsfTensor::build_count() - shim_before,
            counter_value("mtk.csf.builds") - reg_before);
  EXPECT_GT(CsfTensor::build_count(), shim_before);
}

TEST(Tracer, DisabledSpansAreInertAndFree) {
  ASSERT_EQ(nullptr, TraceSession::current());
  Span span(SpanCategory::kKernel, "not recorded");
  EXPECT_FALSE(span.enabled());
  span.arg("ignored", 1);  // must not crash or allocate
}

TEST(Tracer, RecordsNestedSpansWithArgs) {
  TraceSession session;
  session.start();
  {
    Span outer(SpanCategory::kSweep, "outer");
    outer.arg("iter", 7);
    {
      Span inner(SpanCategory::kKernel, "inner");
      inner.arg("nnz", 123);
    }
  }
  session.stop();
  // Stopped sessions are invisible to new spans.
  EXPECT_EQ(nullptr, TraceSession::current());
  { Span late(SpanCategory::kOther, "after stop"); EXPECT_FALSE(late.enabled()); }

  const std::vector<TraceEvent> events = session.events();
  ASSERT_EQ(2u, events.size());
  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == "outer") outer = &e;
    if (std::string(e.name) == "inner") inner = &e;
  }
  ASSERT_NE(nullptr, outer);
  ASSERT_NE(nullptr, inner);
  EXPECT_EQ(0, outer->track);  // orchestrator thread
  EXPECT_EQ(7, outer->args[0].value);
  // The inner span nests inside the outer one on the timeline.
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->start_ns + inner->dur_ns,
            outer->start_ns + outer->dur_ns);
}

TEST(Tracer, ThreadTransportAttributesSpansToRankTracks) {
  Rng rng(5);
  const shape_t dims = {12, 10, 8};
  const SparseTensor x = SparseTensor::random_sparse(dims, 0.2, rng);
  const std::vector<Matrix> factors = random_factors(dims, 4, rng);
  const std::vector<int> grid = {2, 2, 2};

  TraceSession session;
  session.start();
  {
    std::unique_ptr<Transport> tp =
        make_transport(TransportKind::kThreads, 8);
    (void)par_mttkrp_stationary(*tp, StoredTensor::coo_view(x), factors, 0,
                                grid, CollectiveKind::kBucket,
                                SparsePartitionScheme::kBlock);
  }
  session.stop();

  std::set<int> rank_tracks;
  for (const TraceEvent& e : session.events()) {
    if (e.category == SpanCategory::kCollective && e.track >= 1) {
      rank_tracks.insert(e.track);
    }
  }
  // Every one of the 8 rank threads ran collective member bodies under its
  // own track (track = rank + 1).
  EXPECT_EQ(8u, rank_tracks.size());
  EXPECT_EQ(1, *rank_tracks.begin());
  EXPECT_EQ(8, *rank_tracks.rbegin());
}

TEST(Tracer, ChromeExportIsValidAndCategorized) {
  Rng rng(6);
  const shape_t dims = {12, 10, 8};
  const SparseTensor x = SparseTensor::random_sparse(dims, 0.2, rng);

  TraceSession session;
  session.start();
  std::unique_ptr<Transport> tp = make_transport(TransportKind::kSim, 8);
  ParCpAlsOptions opts;
  opts.rank = 4;
  opts.max_iterations = 3;
  opts.tolerance = 0.0;
  opts.grid = {2, 2, 2};
  opts.transport_ptr = tp.get();
  (void)par_cp_als(StoredTensor::coo_view(x), opts);
  session.stop();

  const std::string path = "test_obs_trace.json";
  ASSERT_TRUE(session.write_chrome_trace_file(path));
  const JsonValue doc = JsonValue::parse_file(path);
  std::remove(path.c_str());

  const JsonValue& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  std::set<std::string> categories;
  std::set<std::string> thread_names;
  double last_ts = -1.0;
  for (const JsonValue& ev : events.items()) {
    const std::string& ph = ev.at("ph").as_string();
    if (ph == "M") {
      thread_names.insert(ev.at("args").at("name").as_string());
      continue;
    }
    ASSERT_EQ("X", ph);
    categories.insert(ev.at("cat").as_string());
    const double ts = ev.at("ts").as_number();
    EXPECT_GE(ts, last_ts);  // export sorts events by start time
    last_ts = ts;
    EXPECT_GE(ev.at("dur").as_number(), 0.0);
  }
  // A traced parallel CP-ALS exercises collectives, local kernels, sweeps,
  // and the run_ranks phase wrapper.
  EXPECT_GE(categories.size(), 4u);
  EXPECT_EQ(1u, categories.count("collective"));
  EXPECT_EQ(1u, categories.count("kernel"));
  EXPECT_EQ(1u, categories.count("sweep"));
  EXPECT_EQ(1u, thread_names.count("orchestrator"));
  EXPECT_EQ(1u, thread_names.count("rank 0"));
  EXPECT_EQ(1u, thread_names.count("rank 7"));
}

TEST(Drift, SingleMttkrpIsExactOnSim) {
  Rng rng(7);
  const shape_t dims = {12, 10, 8};
  const SparseTensor x = SparseTensor::random_sparse(dims, 0.2, rng);
  const std::vector<Matrix> factors = random_factors(dims, 4, rng);
  const std::vector<int> grid = {2, 2, 2};

  std::unique_ptr<Transport> tp = make_transport(TransportKind::kSim, 8);
  (void)par_mttkrp_stationary(*tp, StoredTensor::coo_view(x), factors, 1,
                              grid, CollectiveKind::kBucket,
                              SparsePartitionScheme::kBlock);

  SparseTensor scratch;
  const PredictProblem pp =
      make_predict_problem(StoredTensor::coo_view(x), 4, scratch);
  const CommPrediction pred = predict_mttkrp_comm(
      pp, ParAlgo::kStationary, grid, 1, SparsePartitionScheme::kBlock);
  ASSERT_TRUE(pred.exact);

  const DriftReport report = compute_drift(*tp, pred);
  EXPECT_TRUE(report.exact_expected);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(0.0, report.max_abs_drift_pct);
  EXPECT_GT(report.phases_recorded, 0);
  for (const DriftRow& row : report.rows) {
    EXPECT_TRUE(row.exact()) << row.phase;
  }
  const DriftRow* total = report.find("total");
  ASSERT_NE(nullptr, total);
  EXPECT_DOUBLE_EQ(pred.words, total->actual_words);
  EXPECT_DOUBLE_EQ(pred.messages, total->actual_messages);
}

TEST(Drift, ParCpAlsIsExactOnSimAcrossIterations) {
  Rng rng(8);
  const shape_t dims = {12, 10, 8};
  const SparseTensor x = SparseTensor::random_sparse(dims, 0.2, rng);
  const std::vector<int> grid = {2, 2, 2};

  std::unique_ptr<Transport> tp = make_transport(TransportKind::kSim, 8);
  ParCpAlsOptions opts;
  opts.rank = 4;
  opts.max_iterations = 3;
  opts.tolerance = 0.0;  // run all iterations
  opts.grid = grid;
  opts.transport_ptr = tp.get();
  const ParCpAlsResult r = par_cp_als(StoredTensor::coo_view(x), opts);
  ASSERT_EQ(3, r.iterations);

  SparseTensor scratch;
  const PredictProblem pp =
      make_predict_problem(StoredTensor::coo_view(x), 4, scratch);
  const CommPrediction pred = predict_cp_als_iteration(pp, grid);
  ASSERT_TRUE(pred.exact);

  // Initialization adds one extra set of Gram all-reduces on top of the
  // per-iteration schedule, hence the iterations + 1 divisor.
  const DriftReport report =
      compute_drift(*tp, pred, r.iterations, r.iterations + 1);
  EXPECT_TRUE(report.exact_expected);
  EXPECT_TRUE(report.ok()) << report.max_abs_drift_pct;
  for (const DriftRow& row : report.rows) {
    EXPECT_TRUE(row.exact()) << row.phase;
  }
  const DriftRow* gram = report.find("gram");
  ASSERT_NE(nullptr, gram);
  EXPECT_GT(gram->actual_words, 0.0);
}

TEST(Drift, MismatchedPredictionIsFlaggedOnSim) {
  Rng rng(9);
  const shape_t dims = {12, 10, 8};
  const SparseTensor x = SparseTensor::random_sparse(dims, 0.2, rng);
  const std::vector<Matrix> factors = random_factors(dims, 4, rng);

  std::unique_ptr<Transport> tp = make_transport(TransportKind::kSim, 8);
  (void)par_mttkrp_stationary(*tp, StoredTensor::coo_view(x), factors, 0,
                              {2, 2, 2}, CollectiveKind::kBucket,
                              SparsePartitionScheme::kBlock);

  // Predict a different grid: the run cannot match it, and on sim that is
  // a hard failure.
  SparseTensor scratch;
  const PredictProblem pp =
      make_predict_problem(StoredTensor::coo_view(x), 4, scratch);
  const CommPrediction pred = predict_mttkrp_comm(
      pp, ParAlgo::kStationary, {4, 2, 1}, 0, SparsePartitionScheme::kBlock);
  const DriftReport report = compute_drift(*tp, pred);
  EXPECT_TRUE(report.exact_expected);
  EXPECT_FALSE(report.ok());
  EXPECT_GT(report.max_abs_drift_pct, 0.0);
}

TEST(MeasuredSeconds, ThreadsArePositiveAndSimIsBookkeeping) {
  Rng rng(10);
  const shape_t dims = {12, 10, 8};
  const SparseTensor x = SparseTensor::random_sparse(dims, 0.2, rng);
  const std::vector<Matrix> factors = random_factors(dims, 4, rng);
  const std::vector<int> grid = {2, 2, 2};

  std::unique_ptr<Transport> threads =
      make_transport(TransportKind::kThreads, 8);
  (void)par_mttkrp_stationary(*threads, StoredTensor::coo_view(x), factors,
                              0, grid, CollectiveKind::kBucket,
                              SparsePartitionScheme::kBlock);
  EXPECT_GT(threads->comm_seconds(), 0.0);
  EXPECT_GT(threads->compute_seconds(), 0.0);

  std::unique_ptr<Transport> sim = make_transport(TransportKind::kSim, 8);
  (void)par_mttkrp_stationary(*sim, StoredTensor::coo_view(x), factors, 0,
                              grid, CollectiveKind::kBucket,
                              SparsePartitionScheme::kBlock);
  // The simulator still walks the schedules for real, so its measured
  // seconds are bookkeeping overhead: nonnegative, and far below a real
  // exchange would be for this problem, but never negative.
  EXPECT_GE(sim->comm_seconds(), 0.0);
  EXPECT_GE(sim->compute_seconds(), 0.0);
}

TEST(MeasuredSeconds, PerRankSpanDurationsFitInsideTotals) {
  Rng rng(11);
  const shape_t dims = {12, 10, 8};
  const SparseTensor x = SparseTensor::random_sparse(dims, 0.2, rng);
  const std::vector<Matrix> factors = random_factors(dims, 4, rng);

  TraceSession session;
  session.start();
  double comm = 0.0, compute = 0.0;
  {
    std::unique_ptr<Transport> tp =
        make_transport(TransportKind::kThreads, 8);
    (void)par_mttkrp_stationary(*tp, StoredTensor::coo_view(x), factors, 0,
                                {2, 2, 2}, CollectiveKind::kBucket,
                                SparsePartitionScheme::kBlock);
    comm = tp->comm_seconds();
    compute = tp->compute_seconds();
  }
  session.stop();

  // A rank's member-collective spans run strictly inside the orchestrator's
  // timed collective calls, so each rank's span-duration sum is bounded by
  // the total comm wall-clock (generous slack for clock-read skew).
  std::map<int, double> per_rank_ns;
  for (const TraceEvent& e : session.events()) {
    if (e.category == SpanCategory::kCollective && e.track >= 1) {
      per_rank_ns[e.track] += static_cast<double>(e.dur_ns);
    }
  }
  ASSERT_FALSE(per_rank_ns.empty());
  const double budget_s = (comm + compute) * 1.5 + 0.005;
  for (const auto& [track, ns] : per_rank_ns) {
    EXPECT_LE(ns * 1e-9, budget_s) << "rank track " << track;
  }
}

TEST(TransportCounters, CollectiveCallsLandInRegistry) {
  Rng rng(12);
  const std::int64_t ag_before =
      counter_value("mtk.transport.all_gather.calls");
  const std::int64_t rs_before =
      counter_value("mtk.transport.reduce_scatter.calls");
  const std::int64_t rr_before =
      counter_value("mtk.transport.run_ranks.calls");

  const shape_t dims = {12, 10, 8};
  const SparseTensor x = SparseTensor::random_sparse(dims, 0.2, rng);
  const std::vector<Matrix> factors = random_factors(dims, 4, rng);
  std::unique_ptr<Transport> tp = make_transport(TransportKind::kSim, 8);
  (void)par_mttkrp_stationary(*tp, StoredTensor::coo_view(x), factors, 0,
                              {2, 2, 2}, CollectiveKind::kBucket,
                              SparsePartitionScheme::kBlock);

  EXPECT_GT(counter_value("mtk.transport.all_gather.calls"), ag_before);
  EXPECT_GT(counter_value("mtk.transport.reduce_scatter.calls"), rs_before);
  EXPECT_GT(counter_value("mtk.transport.run_ranks.calls"), rr_before);
}

// The counting wrapper replays every collective on a shadow machine; its
// comparison totals feed the CLI's --verify-counts parity summary.
TEST(TransportCounters, CountingTransportReportsComparisonTotals) {
  Rng rng(13);
  const shape_t dims = {12, 10, 8};
  const SparseTensor x = SparseTensor::random_sparse(dims, 0.2, rng);
  const std::vector<Matrix> factors = random_factors(dims, 4, rng);

  auto counting = std::make_unique<CountingTransport>(
      make_transport(TransportKind::kThreads, 8));
  (void)par_mttkrp_stationary(*counting, StoredTensor::coo_view(x), factors,
                              0, {2, 2, 2}, CollectiveKind::kBucket,
                              SparsePartitionScheme::kBlock);
  EXPECT_GT(counting->collectives_checked(), 0);
  EXPECT_GT(counting->words_compared(), 0);
  EXPECT_GT(counting->messages_compared(), 0);
}

}  // namespace
}  // namespace mtk
