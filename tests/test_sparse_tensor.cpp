// Storage-format tests: COO invariants (sorted, deduped, bounds-checked),
// dense <-> COO conversion, CSF construction for every root mode, CSF <-> COO
// round trips, and the compression accounting.
#include <gtest/gtest.h>

#include "src/support/rng.hpp"
#include "src/tensor/csf.hpp"
#include "src/tensor/sparse_tensor.hpp"

namespace mtk {
namespace {

TEST(SparseTensor, PushBackSortAndDedup) {
  SparseTensor s({3, 4, 5});
  s.push_back({2, 3, 4}, 1.0);
  s.push_back({0, 0, 0}, 2.0);
  s.push_back({2, 3, 4}, 0.5);  // duplicate of the first entry
  s.push_back({1, 2, 3}, -1.0);
  EXPECT_FALSE(s.sorted());
  s.sort_and_dedup();
  ASSERT_EQ(s.nnz(), 3);
  EXPECT_TRUE(s.sorted());
  // Lexicographic order, mode 0 most significant.
  EXPECT_EQ(s.coordinate(0), (multi_index_t{0, 0, 0}));
  EXPECT_EQ(s.coordinate(1), (multi_index_t{1, 2, 3}));
  EXPECT_EQ(s.coordinate(2), (multi_index_t{2, 3, 4}));
  EXPECT_DOUBLE_EQ(s.value(0), 2.0);
  EXPECT_DOUBLE_EQ(s.value(1), -1.0);
  EXPECT_DOUBLE_EQ(s.value(2), 1.5);  // duplicates summed
}

TEST(SparseTensor, DuplicatesCancellingToZeroAreDropped) {
  SparseTensor s({2, 2});
  s.push_back({1, 1}, 3.0);
  s.push_back({1, 1}, -3.0);
  s.push_back({0, 1}, 1.0);
  s.sort_and_dedup();
  ASSERT_EQ(s.nnz(), 1);
  EXPECT_EQ(s.coordinate(0), (multi_index_t{0, 1}));
}

TEST(SparseTensor, RejectsOutOfRangeCoordinates) {
  SparseTensor s({3, 4});
  EXPECT_THROW(s.push_back({3, 0}, 1.0), std::invalid_argument);
  EXPECT_THROW(s.push_back({0, -1}, 1.0), std::invalid_argument);
  EXPECT_THROW(s.push_back({0, 0, 0}, 1.0), std::invalid_argument);
}

TEST(SparseTensor, DenseRoundTrip) {
  Rng rng(31);
  const DenseTensor x = DenseTensor::random_normal({4, 3, 5}, rng);
  const SparseTensor s = SparseTensor::from_dense(x);
  EXPECT_EQ(s.nnz(), x.size());  // normal draws are almost surely nonzero
  EXPECT_LT(x.max_abs_diff(s.to_dense()), 1e-15);
  EXPECT_NEAR(s.frobenius_norm(), x.frobenius_norm(), 1e-12);
}

TEST(SparseTensor, FromDenseDropsZerosAndThresholds) {
  DenseTensor x({2, 3});
  x.at({0, 0}) = 5.0;
  x.at({1, 2}) = 0.01;
  const SparseTensor exact = SparseTensor::from_dense(x);
  EXPECT_EQ(exact.nnz(), 2);
  const SparseTensor thresholded = SparseTensor::from_dense(x, 0.1);
  ASSERT_EQ(thresholded.nnz(), 1);
  EXPECT_DOUBLE_EQ(thresholded.value(0), 5.0);
}

TEST(SparseTensor, UndedupedToDenseSumsDuplicates) {
  SparseTensor s({2, 2});
  s.push_back({1, 0}, 1.0);
  s.push_back({1, 0}, 2.0);
  const DenseTensor x = s.to_dense();
  EXPECT_DOUBLE_EQ(x.at({1, 0}), 3.0);
}

TEST(SparseTensor, RandomSparseHitsTargetDensity) {
  Rng rng(37);
  const shape_t dims{10, 12, 8};
  const SparseTensor s = SparseTensor::random_sparse(dims, 0.05, rng);
  const index_t expected =
      static_cast<index_t>(0.05 * static_cast<double>(shape_size(dims)));
  EXPECT_EQ(s.nnz(), expected);  // sampled without replacement
  EXPECT_TRUE(s.sorted());
  // All coordinates distinct (dedup would have merged otherwise).
  for (index_t p = 1; p < s.nnz(); ++p) {
    EXPECT_NE(s.coordinate(p - 1), s.coordinate(p));
  }
}

TEST(SparseTensor, RandomSparseHighDensityUsesAllPositions) {
  Rng rng(41);
  const SparseTensor s = SparseTensor::random_sparse({3, 3}, 1.0, rng);
  EXPECT_EQ(s.nnz(), 9);
}

// ---------------------------------------------------------------------------
// CSF

TEST(CsfTensor, RoundTripsThroughCooForEveryRootMode) {
  Rng rng(43);
  const SparseTensor s = SparseTensor::random_sparse({6, 4, 9, 3}, 0.03, rng);
  for (int root = -1; root < 4; ++root) {
    const CsfTensor csf = CsfTensor::from_coo(s, root);
    EXPECT_EQ(csf.nnz(), s.nnz());
    if (root >= 0) {
      EXPECT_EQ(csf.mode_order().front(), root);
      EXPECT_EQ(csf.level_of_mode(root), 0);
    }
    const SparseTensor back = csf.to_coo();
    ASSERT_EQ(back.nnz(), s.nnz()) << "root " << root;
    for (index_t p = 0; p < s.nnz(); ++p) {
      EXPECT_EQ(back.coordinate(p), s.coordinate(p)) << "root " << root;
      EXPECT_DOUBLE_EQ(back.value(p), s.value(p)) << "root " << root;
    }
  }
}

TEST(CsfTensor, CompressesRepeatedFibers) {
  // A single dense slice: every nonzero shares the mode-0 coordinate, so the
  // root level has one fiber and CSF stores far fewer index words than COO.
  SparseTensor s({4, 8, 8});
  for (index_t j = 0; j < 8; ++j) {
    for (index_t k = 0; k < 8; ++k) {
      s.push_back({2, j, k}, 1.0 + static_cast<double>(j * 8 + k));
    }
  }
  s.sort_and_dedup();
  const CsfTensor csf = CsfTensor::from_coo(s, 0);
  EXPECT_EQ(csf.node_count(0), 1);
  EXPECT_EQ(csf.node_count(1), 8);
  EXPECT_EQ(csf.node_count(2), 64);
  const index_t coo_words = s.nnz() * (1 + 3);
  EXPECT_LT(csf.storage_words(), coo_words);
}

TEST(CsfTensor, DefaultModeOrderSortsByDimension) {
  Rng rng(47);
  const SparseTensor s = SparseTensor::random_sparse({9, 2, 5}, 0.2, rng);
  const CsfTensor csf = CsfTensor::from_coo(s);
  EXPECT_EQ(csf.mode_order(), (std::vector<int>{1, 2, 0}));
}

TEST(CsfTensor, FiberPointersAreConsistent) {
  Rng rng(53);
  const SparseTensor s = SparseTensor::random_sparse({7, 6, 5}, 0.1, rng);
  const CsfTensor csf = CsfTensor::from_coo(s, 1);
  for (int l = 0; l + 1 < csf.order(); ++l) {
    const auto& fptr = csf.fptr(l);
    ASSERT_EQ(static_cast<index_t>(fptr.size()), csf.node_count(l) + 1);
    EXPECT_EQ(fptr.front(), 0);
    EXPECT_EQ(fptr.back(), csf.node_count(l + 1));
    for (std::size_t f = 1; f < fptr.size(); ++f) {
      EXPECT_LT(fptr[f - 1], fptr[f]);  // every fiber is non-empty
    }
  }
}

TEST(CsfTensor, RequiresSortedCoo) {
  SparseTensor s({2, 2});
  s.push_back({1, 0}, 1.0);
  EXPECT_THROW(CsfTensor::from_coo(s), std::invalid_argument);
}

TEST(CsfTensor, EmptyTensor) {
  SparseTensor s({3, 3});
  const CsfTensor csf = CsfTensor::from_coo(s);
  EXPECT_EQ(csf.nnz(), 0);
  EXPECT_EQ(csf.node_count(0), 0);
  EXPECT_EQ(csf.to_coo().nnz(), 0);
}

}  // namespace
}  // namespace mtk
