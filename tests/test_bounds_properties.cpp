// Randomized property tests tying the bounds machinery together:
//  * for ARBITRARY random loop nests, the simplex-derived HBL exponents
//    must make Lemma 4.1 hold on random iteration-space subsets (this is
//    the Christ et al. [11] result the paper's proofs build on);
//  * the sequential bounds must obey their ordering and monotonicity
//    relations across random problems;
//  * Lemmas 4.3 and 4.4 are inverse optimizations of each other.
#include <gtest/gtest.h>

#include <cmath>

#include "src/bounds/hbl.hpp"
#include "src/bounds/parallel_bounds.hpp"
#include "src/bounds/sequential_bounds.hpp"
#include "src/mttkrp/mttkrp.hpp"
#include "src/support/rng.hpp"

namespace mtk {
namespace {

TEST(HblProperty, LpExponentsValidateRandomLoopNests) {
  Rng rng(14001);
  for (int trial = 0; trial < 30; ++trial) {
    const int depth = static_cast<int>(rng.uniform_int(2, 5));
    const int arrays = static_cast<int>(rng.uniform_int(2, 5));

    // Random projections; retry until every loop index is covered by at
    // least one array (otherwise |F| is unbounded and the LP infeasible).
    std::vector<Projection> projections;
    std::vector<bool> covered(static_cast<std::size_t>(depth), false);
    for (int j = 0; j < arrays; ++j) {
      Projection proj;
      for (int i = 0; i < depth; ++i) {
        if (rng.uniform(0.0, 1.0) < 0.5) {
          proj.push_back(i);
          covered[static_cast<std::size_t>(i)] = true;
        }
      }
      if (proj.empty()) proj.push_back(static_cast<int>(rng.uniform_int(0, depth - 1)));
      covered[static_cast<std::size_t>(proj.front())] = true;
      projections.push_back(proj);
    }
    for (int i = 0; i < depth; ++i) {
      if (!covered[static_cast<std::size_t>(i)]) {
        projections.push_back({i});
      }
    }

    const std::vector<double> s =
        hbl_exponents_lp(projections, depth);
    for (double v : s) {
      EXPECT_GE(v, -1e-9);
      EXPECT_LE(v, 1.0 + 1e-9);
    }

    // Random subsets of a small box must satisfy the inequality.
    for (int f_trial = 0; f_trial < 10; ++f_trial) {
      std::set<multi_index_t> f;
      const int points = static_cast<int>(rng.uniform_int(1, 40));
      for (int q = 0; q < points; ++q) {
        multi_index_t pt(static_cast<std::size_t>(depth));
        for (int d = 0; d < depth; ++d) {
          pt[static_cast<std::size_t>(d)] = rng.uniform_int(0, 3);
        }
        f.insert(pt);
      }
      EXPECT_TRUE(verify_hbl_inequality(f, projections, s))
          << "trial " << trial << "." << f_trial;
    }
  }
}

TEST(HblProperty, FullBoxesAreTightForMttkrp) {
  // For full rectangular boxes [b]^N x [R], Lemma 4.1 with s* is exactly
  // tight (used implicitly when the paper matches bounds to blocked
  // algorithms). Verified symbolically: |F| = b^N R and the bound is
  // (bR)^(N/N) ... = b^N R.
  for (int n = 2; n <= 4; ++n) {
    const auto s = mttkrp_optimal_exponents(n);
    for (index_t b : {index_t{2}, index_t{3}}) {
      for (index_t r : {index_t{1}, index_t{4}}) {
        std::vector<index_t> sizes;
        for (int k = 0; k < n; ++k) sizes.push_back(b * r);
        sizes.push_back(ipow(b, n));
        const double bound = hbl_product_bound(sizes, s);
        const double truth =
            static_cast<double>(ipow(b, n)) * static_cast<double>(r);
        EXPECT_NEAR(bound, truth, truth * 1e-10) << "N=" << n;
      }
    }
  }
}

TEST(LemmaDuality, MaxProductAndMinSumInvertEachOther) {
  // If the max product under sum <= c is v, then the min sum under
  // product >= v must be c (the optimizations are inverse at the optimum).
  Rng rng(14003);
  for (int trial = 0; trial < 50; ++trial) {
    const int m = static_cast<int>(rng.uniform_int(2, 6));
    std::vector<double> s(static_cast<std::size_t>(m));
    for (double& v : s) v = rng.uniform(0.1, 1.0);
    const double c = rng.uniform(1.0, 100.0);
    const double v = max_product_given_sum(s, c);
    const double back = min_sum_given_product(s, v);
    EXPECT_NEAR(back, c, c * 1e-9) << "trial " << trial;
  }
}

TEST(SeqBoundsProperty, OrderingAcrossRandomProblems) {
  Rng rng(14005);
  for (int trial = 0; trial < 100; ++trial) {
    SeqProblem p;
    const int n = static_cast<int>(rng.uniform_int(2, 5));
    for (int k = 0; k < n; ++k) p.dims.push_back(rng.uniform_int(4, 64));
    p.rank = rng.uniform_int(1, 64);
    p.fast_memory = rng.uniform_int(n + 2, 1 << 16);

    const double lb = seq_lower_bound(p);
    EXPECT_GE(lb, 0.0);
    const index_t b = max_block_size(n, p.fast_memory);
    const double ub = seq_upper_bound_blocked(p, b);
    // The Eq. (21) upper bound can never undercut the universal lower
    // bound — they describe the same machine.
    EXPECT_GE(ub, lb * (1.0 - 1e-12)) << "trial " << trial;
    // The unblocked algorithm's bound dominates the blocked one whenever
    // the block size is at least 1 (it is Eq. (21) with b = 1, minus the
    // ability to reuse the tensor... compare directly at b = 1).
    EXPECT_GE(seq_upper_bound_unblocked(p) * (1.0 + 1e-12),
              seq_upper_bound_blocked(p, 1) - 2.0 * static_cast<double>(p.rank));
  }
}

TEST(SeqBoundsProperty, MemoryMonotonicity) {
  Rng rng(14007);
  for (int trial = 0; trial < 30; ++trial) {
    SeqProblem p;
    const int n = static_cast<int>(rng.uniform_int(2, 4));
    for (int k = 0; k < n; ++k) p.dims.push_back(rng.uniform_int(8, 48));
    p.rank = rng.uniform_int(2, 32);
    p.fast_memory = rng.uniform_int(n + 2, 1 << 12);

    SeqProblem bigger = p;
    bigger.fast_memory = p.fast_memory * 2;
    // More memory can only weaken (reduce) lower bounds.
    EXPECT_LE(seq_lower_bound_memory(bigger), seq_lower_bound_memory(p));
    EXPECT_LE(seq_lower_bound_trivial(bigger), seq_lower_bound_trivial(p));
  }
}

TEST(ParBoundsProperty, MainTermsDecreaseWithP) {
  // The *main terms* of both memory-independent bounds scale as negative
  // powers of P. (The full bounds are NOT monotone in P: the subtracted
  // data-reuse terms gamma*I/P and delta*sum I_k R/P shrink like 1/P,
  // faster than the main terms, so the net bound can rise when P doubles —
  // a real property of the paper's per-processor bounds, exercised below.)
  Rng rng(14009);
  for (int trial = 0; trial < 50; ++trial) {
    ParProblem p;
    const int n = static_cast<int>(rng.uniform_int(2, 4));
    for (int k = 0; k < n; ++k) p.dims.push_back(rng.uniform_int(16, 128));
    p.rank = rng.uniform_int(2, 64);
    p.procs = rng.uniform_int(2, 512);

    ParProblem more = p;
    more.procs = p.procs * 2;
    EXPECT_LE(par_lower_bound_cubical_envelope(more),
              par_lower_bound_cubical_envelope(p) + 1e-9)
        << "trial " << trial;
  }
}

TEST(ParBoundsProperty, FullBoundsCanRiseWithP) {
  // Documented non-monotonicity: with few processors most data fits "for
  // free" in the initial distribution and the bound degenerates; doubling
  // P shrinks that slack faster than the main term. Exhibit one instance.
  ParProblem p;
  p.dims = {64, 64, 64};
  p.rank = 8;
  p.procs = 2;
  ParProblem more = p;
  more.procs = 8;
  EXPECT_GT(par_lower_bound(more), par_lower_bound(p));
}

TEST(ParBoundsProperty, SingleProcessorExactBoundIsZero) {
  // With P = 1 there is nothing to communicate. The exact Lemma 4.4 form
  // of Theorem 4.2 must degenerate to <= 0 (the full iteration space's
  // projections attain the HBL constraint with equality and sum to
  // I + sum I_k R, which the gamma/delta terms absorb).
  for (const shape_t& dims : {shape_t{8, 8}, shape_t{16, 8, 4}}) {
    ParProblem p;
    p.dims = dims;
    p.rank = 8;
    p.procs = 1;
    EXPECT_LE(par_lower_bound_thm42_exact(p), 1e-9);
    EXPECT_LE(par_lower_bound_thm43(p), 1e-9);
  }
}

TEST(ParBoundsProperty, PaperConstantSlightlyOverstatesExactForm) {
  // Reproduction finding: Theorem 4.2's simplified main term
  // 2(NIR/P)^(N/(2N-1)) exceeds the exact Lemma 4.4 value by ~5.5% at
  // N = 2 and ~2% at N = 3; at P = 1 the paper's form can exceed the total
  // problem data. The discrepancy vanishes as N grows.
  ParProblem p;
  p.dims = {8, 8};
  p.rank = 8;
  p.procs = 1;
  // Paper's form exceeds total data I + sum I_k R = 192 at P = 1:
  EXPECT_GT(par_lower_bound_thm42(p), 0.0);
  // ... while the exact form stays valid:
  EXPECT_LE(par_lower_bound_thm42_exact(p), 0.0);

  // Quantify the ratio of main terms (add back the subtracted data terms).
  auto main_term = [](const ParProblem& q, bool exact) {
    const double data =
        q.gamma * static_cast<double>(q.tensor_size()) /
            static_cast<double>(q.procs) +
        q.delta * static_cast<double>(q.factor_entries()) /
            static_cast<double>(q.procs);
    return (exact ? par_lower_bound_thm42_exact(q)
                  : par_lower_bound_thm42(q)) +
           data;
  };
  const double ratio2 = main_term(p, true) / main_term(p, false);
  EXPECT_NEAR(ratio2, 0.945, 0.01);  // N = 2

  ParProblem p3;
  p3.dims = {8, 8, 8};
  p3.rank = 8;
  p3.procs = 4;
  const double ratio3 = main_term(p3, true) / main_term(p3, false);
  EXPECT_NEAR(ratio3, 0.980, 0.01);  // N = 3
  EXPECT_GT(ratio3, ratio2);         // converges toward 1 with N
}

}  // namespace
}  // namespace mtk
