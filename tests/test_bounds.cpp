// Tests for the closed-form bound evaluators of Sections IV and VI:
// specific values, scaling behaviour, regime splits, and validation.
#include <gtest/gtest.h>

#include <cmath>

#include "src/bounds/parallel_bounds.hpp"
#include "src/bounds/sequential_bounds.hpp"

namespace mtk {
namespace {

SeqProblem cubical_seq(int order, index_t dim, index_t rank, index_t m) {
  SeqProblem p;
  p.dims.assign(static_cast<std::size_t>(order), dim);
  p.rank = rank;
  p.fast_memory = m;
  return p;
}

TEST(SeqBounds, MemoryDependentFormula) {
  // N=3, I=64^3, R=16, M=4096:
  // W >= 3*I*R / (3^(5/3) * M^(2/3)) - M.
  const SeqProblem p = cubical_seq(3, 64, 16, 4096);
  const double i = 64.0 * 64.0 * 64.0;
  const double expect =
      3.0 * i * 16.0 / (std::pow(3.0, 5.0 / 3.0) * std::pow(4096.0, 2.0 / 3.0)) -
      4096.0;
  EXPECT_NEAR(seq_lower_bound_memory(p), expect, 1e-6);
  EXPECT_GT(expect, 0.0);
}

TEST(SeqBounds, TrivialBoundCountsData) {
  const SeqProblem p = cubical_seq(3, 10, 4, 100);
  // I + sum I_k R - 2M = 1000 + 3*40 - 200 = 920.
  EXPECT_DOUBLE_EQ(seq_lower_bound_trivial(p), 920.0);
}

TEST(SeqBounds, MemoryBoundDecreasesWithM) {
  double previous = std::numeric_limits<double>::infinity();
  for (index_t m : {256, 1024, 4096, 16384}) {
    const double w = seq_lower_bound_memory(cubical_seq(3, 64, 16, m));
    EXPECT_LT(w, previous);
    previous = w;
  }
}

TEST(SeqBounds, ExactSegmentFormAlwaysDominatedByData) {
  // The exact form M * floor(NIR / (3M)^(2-1/N)) is within M of the smooth
  // form whenever the smooth form is positive.
  for (index_t m : {64, 256, 1024}) {
    const SeqProblem p = cubical_seq(3, 32, 8, m);
    const double smooth = seq_lower_bound_memory(p);
    const double exact = seq_lower_bound_memory_exact(p);
    EXPECT_GE(exact + static_cast<double>(m) + 1e-6, smooth);
  }
}

TEST(SeqBounds, CombinedBoundIsMaxAndNonNegative) {
  // Huge memory: both raw bounds go negative, combined clamps at zero.
  const SeqProblem p = cubical_seq(3, 4, 2, index_t{1} << 30);
  EXPECT_LT(seq_lower_bound_memory(p), 0.0);
  EXPECT_LT(seq_lower_bound_trivial(p), 0.0);
  EXPECT_DOUBLE_EQ(seq_lower_bound(p), 0.0);

  const SeqProblem q = cubical_seq(3, 64, 16, 1024);
  EXPECT_DOUBLE_EQ(seq_lower_bound(q),
                   std::max({seq_lower_bound_memory(q),
                             seq_lower_bound_memory_exact(q),
                             seq_lower_bound_trivial(q)}));
}

TEST(SeqBounds, BlockedUpperBoundFormula) {
  // Eq. (21) with everything divisible: I + (N+1) * (I / b^N) * b * R.
  const SeqProblem p = cubical_seq(3, 64, 16, 0 + 4096);
  const double i = 64.0 * 64.0 * 64.0;
  const index_t b = 8;
  const double blocks = (64.0 / 8) * (64.0 / 8) * (64.0 / 8);
  EXPECT_DOUBLE_EQ(seq_upper_bound_blocked(p, b),
                   i + 4.0 * blocks * 8.0 * 16.0);
}

TEST(SeqBounds, BlockedUpperBoundCeilingBehaviour) {
  // Non-divisible block size uses ceilings.
  const SeqProblem p = cubical_seq(2, 10, 3, 64);
  // blocks = ceil(10/4)^2 = 9; W = 100 + 3 * 9 * 4 * 3.
  EXPECT_DOUBLE_EQ(seq_upper_bound_blocked(p, 4), 100.0 + 3.0 * 9 * 4 * 3);
}

TEST(SeqBounds, UpperBoundsOrdering) {
  // For sensible parameters the blocked bound with a good block size is far
  // below the unblocked bound.
  const SeqProblem p = cubical_seq(3, 64, 16, 4096);
  const double blocked = seq_upper_bound_blocked(p, 8);
  const double unblocked = seq_upper_bound_unblocked(p);
  EXPECT_LT(blocked, unblocked / 4.0);
}

TEST(SeqBounds, OptimalityGapIsConstantInTheTheorem61Regime) {
  // Theorem 6.1: with b ~ (alpha M)^(1/N), upper / lower = O(1) as the
  // problem grows. Check the ratio stays bounded across a size sweep.
  double worst_ratio = 0.0;
  for (index_t dim : {32, 48, 64, 96}) {
    const index_t m = 3000;
    const SeqProblem p = cubical_seq(3, dim, 16, m);
    // b = floor((M/2)^(1/3)) satisfies Eq. (11) comfortably.
    const index_t b = nth_root_floor(m / 2, 3);
    const double ub = seq_upper_bound_blocked(p, b);
    const double lb = seq_lower_bound(p);
    ASSERT_GT(lb, 0.0);
    worst_ratio = std::max(worst_ratio, ub / lb);
  }
  EXPECT_LT(worst_ratio, 30.0);  // constant-factor gap, not asymptotic
}

TEST(SeqBounds, Validation) {
  EXPECT_THROW(seq_lower_bound_memory(cubical_seq(3, 0, 2, 8)),
               std::invalid_argument);
  EXPECT_THROW(seq_lower_bound_memory(cubical_seq(3, 4, 0, 8)),
               std::invalid_argument);
  EXPECT_THROW(seq_lower_bound_memory(cubical_seq(3, 4, 2, 0)),
               std::invalid_argument);
  SeqProblem one_d;
  one_d.dims = {8};
  one_d.rank = 2;
  one_d.fast_memory = 8;
  EXPECT_THROW(seq_lower_bound_memory(one_d), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Parallel bounds.

ParProblem cubical_par(int order, index_t dim, index_t rank, index_t procs) {
  ParProblem p;
  p.dims.assign(static_cast<std::size_t>(order), dim);
  p.rank = rank;
  p.procs = procs;
  return p;
}

TEST(ParBounds, Theorem42Formula) {
  const ParProblem p = cubical_par(3, 64, 16, 8);
  const double i = 64.0 * 64.0 * 64.0;
  const double expect = 2.0 * std::pow(3.0 * i * 16.0 / 8.0, 3.0 / 5.0) -
                        i / 8.0 - 3.0 * 64.0 * 16.0 / 8.0;
  EXPECT_NEAR(par_lower_bound_thm42(p), expect, 1e-6);
}

TEST(ParBounds, Theorem43Formula) {
  const ParProblem p = cubical_par(3, 64, 16, 8);
  const double i = 64.0 * 64.0 * 64.0;
  const double small_tensor_case =
      std::sqrt(2.0 / 3.0) * 3.0 * 16.0 * std::pow(i / 8.0, 1.0 / 3.0) -
      3.0 * 64.0 * 16.0 / 8.0;
  const double large_tensor_case = i / 16.0;
  EXPECT_NEAR(par_lower_bound_thm43(p),
              std::min(small_tensor_case, large_tensor_case), 1e-6);
}

TEST(ParBounds, MemoryDependentMatchesSequentialOverP) {
  const ParProblem p = [] {
    ParProblem q = cubical_par(3, 64, 16, 4);
    q.local_memory = 1024;
    return q;
  }();
  SeqProblem s;
  s.dims = p.dims;
  s.rank = p.rank;
  s.fast_memory = p.local_memory;
  const double seq = seq_lower_bound_memory(s);
  // Corollary 4.1: (seq + M)/P - M.
  EXPECT_NEAR(par_lower_bound_memory(p), (seq + 1024.0) / 4.0 - 1024.0,
              1e-6);
}

TEST(ParBounds, RegimeSplitMatchesCorollary42) {
  // Small NR: Theorem 4.3's term dominates; large NR: Theorem 4.2 dominates.
  const ParProblem small_nr = cubical_par(3, 256, 1, 4);
  EXPECT_FALSE(memory_independent_regime_large_nr(small_nr));
  const ParProblem large_nr = cubical_par(3, 16, 4096, 4);
  EXPECT_TRUE(memory_independent_regime_large_nr(large_nr));
}

TEST(ParBounds, EnvelopeScalesAsPredicted) {
  // Doubling P must reduce the envelope, and the envelope must be the sum of
  // its two terms.
  const ParProblem p1 = cubical_par(3, 64, 16, 64);
  const ParProblem p2 = cubical_par(3, 64, 16, 128);
  EXPECT_GT(par_lower_bound_cubical_envelope(p1),
            par_lower_bound_cubical_envelope(p2));
  const double i = 64.0 * 64.0 * 64.0;
  const double t1 = std::pow(3.0 * i * 16.0 / 64.0, 3.0 / 5.0);
  const double t2 = 3.0 * 16.0 * std::pow(i / 64.0, 1.0 / 3.0);
  EXPECT_NEAR(par_lower_bound_cubical_envelope(p1), t1 + t2, 1e-6);
}

TEST(ParBounds, CombinedBoundNonNegativeAndUsesMemoryWhenGiven) {
  ParProblem p = cubical_par(3, 8, 2, 512);
  EXPECT_GE(par_lower_bound(p), 0.0);
  p.local_memory = 16;
  const double with_memory = par_lower_bound(p);
  EXPECT_GE(with_memory, par_lower_bound_memory(p));
}

TEST(ParBounds, GammaDeltaValidation) {
  ParProblem p = cubical_par(3, 16, 4, 8);
  p.gamma = 0.5;  // < 1 invalid
  EXPECT_THROW(par_lower_bound_thm42(p), std::invalid_argument);
  p.gamma = 1.0;
  p.delta = 0.0;
  EXPECT_THROW(par_lower_bound_thm43(p), std::invalid_argument);
  p.delta = 1.0;
  p.procs = 0;
  EXPECT_THROW(par_lower_bound_thm42(p), std::invalid_argument);
}

TEST(ParBounds, LargerGammaWeakensTheorem43) {
  ParProblem p = cubical_par(3, 64, 16, 32);
  const double tight = par_lower_bound_thm43(p);
  p.gamma = 2.0;
  const double loose = par_lower_bound_thm43(p);
  // gamma appears as 1/sqrt(gamma) in the first case and gamma/2 in the
  // second; for this configuration the minimum is the first case, which
  // shrinks as gamma grows.
  EXPECT_LT(loose, tight);
}

}  // namespace
}  // namespace mtk
