// End-to-end integration across modules: synthesize -> serialize ->
// decompose (sequential and simulated-parallel) -> verify against bounds
// and against each other. One test exercises most of the library's public
// surface the way a downstream user would.
#include <gtest/gtest.h>

#include <cstdio>

#include "src/mtk.hpp"

namespace mtk {
namespace {

TEST(Integration, FullPipeline) {
  const std::string tensor_path =
      std::string(::testing::TempDir()) + "/pipeline_tensor.bin";
  const std::string model_path =
      std::string(::testing::TempDir()) + "/pipeline_model.bin";

  // 1. Synthesize a noisy rank-4 tensor and write it to disk.
  Rng rng(20001);
  const shape_t dims{12, 10, 8};
  const index_t rank = 4;
  std::vector<Matrix> truth;
  for (index_t d : dims) {
    truth.push_back(Matrix::random_uniform(d, rank, rng, 0.1, 1.0));
  }
  DenseTensor x = DenseTensor::from_cp(
      truth, std::vector<double>(static_cast<std::size_t>(rank), 1.0));
  save_tensor(x, tensor_path);

  // 2. Read it back; decompose with CP-ALS on the blocked MTTKRP backend.
  const DenseTensor loaded = load_tensor(tensor_path);
  ASSERT_EQ(loaded.dims(), dims);

  CpAlsOptions als;
  als.rank = rank;
  als.max_iterations = 150;
  als.tolerance = 1e-10;
  als.mttkrp.algo = MttkrpAlgo::kBlocked;
  const CpAlsResult seq = cp_als(loaded, als);
  EXPECT_GT(seq.final_fit, 0.99);

  // 3. Persist and reload the model; reconstruction must survive the trip.
  save_cp_model(seq.model, model_path);
  const CpModel reloaded = load_cp_model(model_path);
  EXPECT_LT(
      seq.model.reconstruct().max_abs_diff(reloaded.reconstruct()), 1e-12);

  // 4. The same decomposition on the simulated cluster agrees iterate by
  //    iterate, and its communication respects the lower bound.
  ParCpAlsOptions par;
  par.rank = rank;
  par.max_iterations = 5;
  par.tolerance = 0.0;
  par.grid = {2, 2, 2};
  par.seed = als.seed;
  const ParCpAlsResult pr = par_cp_als(loaded, par);
  CpAlsOptions seq5 = als;
  seq5.max_iterations = 5;
  seq5.tolerance = 0.0;
  const CpAlsResult sr = cp_als(loaded, seq5);
  ASSERT_EQ(pr.trace.size(), sr.trace.size());
  for (std::size_t i = 0; i < pr.trace.size(); ++i) {
    EXPECT_NEAR(pr.trace[i].fit, sr.trace[i].fit, 1e-8);
  }
  ParProblem lb;
  lb.dims = dims;
  lb.rank = rank;
  lb.procs = 8;
  // Each iteration runs N MTTKRPs; the per-iteration MTTKRP words of the
  // bottleneck rank must respect N times the single-MTTKRP bound.
  EXPECT_GE(static_cast<double>(pr.trace.front().mttkrp_words_max) + 1e-9,
            par_lower_bound(lb));

  // 5. Tucker-compress the fitted model's reconstruction; at multilinear
  //    rank (4,4,4) a rank-4 CP tensor is represented exactly.
  const TuckerModel tucker =
      st_hosvd(seq.model.reconstruct(), {.ranks = {4, 4, 4}});
  EXPECT_LT(tucker_residual_norm(seq.model.reconstruct(), tucker),
            1e-6 * loaded.frobenius_norm());

  // 6. The memory simulator's measured traffic for the backend we used
  //    stays between the bounds.
  TraceProblem tp;
  tp.dims = dims;
  tp.rank = rank;
  tp.mode = 0;
  const index_t m = 200;
  const index_t b = max_block_size(3, m);
  const MemoryStats traffic = measure_traffic(
      m, ReplacementPolicy::kLru,
      [&](AccessSink& sink) { trace_blocked(tp, b, sink); });
  SeqProblem sp;
  sp.dims = dims;
  sp.rank = rank;
  sp.fast_memory = m;
  EXPECT_GE(static_cast<double>(traffic.traffic()), seq_lower_bound(sp));
  EXPECT_LE(static_cast<double>(traffic.traffic()),
            seq_upper_bound_blocked(sp, b) * 1.05);

  std::remove(tensor_path.c_str());
  std::remove(model_path.c_str());
}

TEST(Integration, GradientAndAlsAgreeOnTheOptimum) {
  // Both optimizers minimize the same objective; from good initializations
  // on an exactly low-rank tensor they must reach comparable fits.
  Rng rng(20003);
  const shape_t dims{8, 8, 8};
  std::vector<Matrix> truth;
  for (index_t d : dims) {
    truth.push_back(Matrix::random_uniform(d, 2, rng, 0.2, 1.0));
  }
  const DenseTensor x = DenseTensor::from_cp(truth, {1.0, 1.0});

  CpAlsOptions als;
  als.rank = 2;
  als.max_iterations = 200;
  als.tolerance = 1e-12;
  const CpAlsResult a = cp_als(x, als);

  CpGradOptions grad;
  grad.rank = 2;
  grad.max_iterations = 400;
  grad.tolerance = 1e-8;
  const CpGradResult g = cp_gradient_descent(x, grad);

  EXPECT_GT(a.final_fit, 0.999);
  EXPECT_GT(g.final_fit, 0.95);  // first-order converges slower
}

}  // namespace
}  // namespace mtk
