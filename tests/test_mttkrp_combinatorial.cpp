// Combinatorial sweep: every sequential algorithm x several tensor shapes
// x every mode x several ranks, all against the reference. Catches
// convention bugs (mode ordering, matricization direction, KRP orientation)
// that single-point tests can miss.
#include <gtest/gtest.h>

#include <tuple>

#include "src/mttkrp/blocked_rect.hpp"
#include "src/mttkrp/mttkrp.hpp"
#include "src/support/rng.hpp"

namespace mtk {
namespace {

// (shape id, rank, mode) — mode is validated against the shape's order.
using ComboParam = std::tuple<int, index_t, int>;

const shape_t kShapes[] = {
    {6, 7},           // order 2
    {5, 4, 6},        // order 3, mixed
    {2, 9, 3},        // order 3, skewed
    {3, 3, 3, 3},     // order 4, cubical
    {4, 2, 3, 2, 2},  // order 5
};

class MttkrpCombinatorial : public ::testing::TestWithParam<ComboParam> {};

TEST_P(MttkrpCombinatorial, AllAlgorithmsAgree) {
  const auto& [shape_id, rank, mode] = GetParam();
  const shape_t& dims = kShapes[shape_id];
  if (mode >= static_cast<int>(dims.size())) {
    GTEST_SKIP() << "mode exceeds order for this shape";
  }

  Rng rng(18000 + static_cast<std::uint64_t>(shape_id) * 100 +
          static_cast<std::uint64_t>(rank) * 10 +
          static_cast<std::uint64_t>(mode));
  const DenseTensor x = DenseTensor::random_normal(dims, rng);
  std::vector<Matrix> factors;
  for (index_t d : dims) {
    factors.push_back(Matrix::random_normal(d, rank, rng));
  }

  const Matrix expected = mttkrp_reference(x, factors, mode);
  EXPECT_LT(max_abs_diff(mttkrp_blocked(x, factors, mode, 2), expected),
            1e-9);
  EXPECT_LT(max_abs_diff(mttkrp_matmul(x, factors, mode), expected), 1e-9);
  EXPECT_LT(max_abs_diff(mttkrp_two_step(x, factors, mode), expected),
            1e-9);
  const shape_t block = optimize_block_shape(dims, rank, mode, 64);
  EXPECT_LT(
      max_abs_diff(mttkrp_blocked_rect(x, factors, mode, block), expected),
      1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MttkrpCombinatorial,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values<index_t>(1, 3, 8),
                       ::testing::Values(0, 1, 2, 3, 4)),
    [](const ::testing::TestParamInfo<ComboParam>& info) {
      return "shape" + std::to_string(std::get<0>(info.param)) + "_r" +
             std::to_string(std::get<1>(info.param)) + "_m" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace mtk
