// Tests for the Tucker substrate: TTM, the Jacobi eigensolver, and
// ST-HOSVD (exact recovery at full multilinear rank, quasi-optimal
// truncation, orthonormal factors).
#include <gtest/gtest.h>

#include <cmath>

#include "src/cp/tucker.hpp"
#include "src/support/rng.hpp"
#include "src/tensor/eigen_sym.hpp"
#include "src/tensor/matricize.hpp"
#include "src/tensor/ttm.hpp"

namespace mtk {
namespace {

TEST(Ttm, MatchesDefinition) {
  Rng rng(16001);
  const DenseTensor x = DenseTensor::random_normal({3, 4, 5}, rng);
  const Matrix u = Matrix::random_normal(6, 4, rng);  // mode 1: 4 -> 6
  const DenseTensor y = ttm(x, u, 1);
  ASSERT_EQ(y.dims(), (shape_t{3, 6, 5}));
  for (Odometer od(y.dims()); od.valid(); od.next()) {
    const multi_index_t& idx = od.index();
    double expect = 0.0;
    for (index_t i = 0; i < 4; ++i) {
      expect += u(idx[1], i) * x.at({idx[0], i, idx[2]});
    }
    EXPECT_NEAR(y.at(idx), expect, 1e-12);
  }
}

TEST(Ttm, IdentityIsNoop) {
  Rng rng(16003);
  const DenseTensor x = DenseTensor::random_normal({4, 5, 3}, rng);
  for (int mode = 0; mode < 3; ++mode) {
    const DenseTensor y = ttm(x, Matrix::identity(x.dim(mode)), mode);
    EXPECT_DOUBLE_EQ(x.max_abs_diff(y), 0.0) << "mode " << mode;
  }
}

TEST(Ttm, ModesCommute) {
  // TTMs in distinct modes commute.
  Rng rng(16005);
  const DenseTensor x = DenseTensor::random_normal({4, 5, 6}, rng);
  const Matrix u0 = Matrix::random_normal(3, 4, rng);
  const Matrix u2 = Matrix::random_normal(2, 6, rng);
  const DenseTensor a = ttm(ttm(x, u0, 0), u2, 2);
  const DenseTensor b = ttm(ttm(x, u2, 2), u0, 0);
  EXPECT_LT(a.max_abs_diff(b), 1e-12);
}

TEST(Ttm, ChainAppliesAllProvidedModes) {
  Rng rng(16007);
  const DenseTensor x = DenseTensor::random_normal({3, 4, 5}, rng);
  const Matrix u1 = Matrix::random_normal(2, 4, rng);
  const DenseTensor direct = ttm(x, u1, 1);
  const DenseTensor chained = ttm_chain(x, {nullptr, &u1, nullptr});
  EXPECT_DOUBLE_EQ(direct.max_abs_diff(chained), 0.0);
}

TEST(Ttm, Validation) {
  DenseTensor x({3, 3}, 1.0);
  EXPECT_THROW(ttm(x, Matrix(2, 4), 0), std::invalid_argument);
  EXPECT_THROW(ttm(x, Matrix(2, 3), 2), std::invalid_argument);
}

TEST(EigenSymmetric, DiagonalizesRandomSymmetricMatrices) {
  Rng rng(16009);
  for (index_t n : {index_t{1}, index_t{2}, index_t{5}, index_t{12}}) {
    const Matrix b = Matrix::random_normal(n, n, rng);
    Matrix a(n, n);
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = 0; j < n; ++j) {
        a(i, j) = 0.5 * (b(i, j) + b(j, i));
      }
    }
    const SymmetricEigen eig = eigen_symmetric(a);
    // A v_j = lambda_j v_j.
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < n; ++i) {
        double av = 0.0;
        for (index_t k = 0; k < n; ++k) {
          av += a(i, k) * eig.vectors(k, j);
        }
        EXPECT_NEAR(av,
                    eig.values[static_cast<std::size_t>(j)] *
                        eig.vectors(i, j),
                    1e-8)
            << "n=" << n << " (" << i << "," << j << ")";
      }
    }
    // Orthonormal eigenbasis.
    for (index_t p = 0; p < n; ++p) {
      for (index_t q = 0; q < n; ++q) {
        double ip = 0.0;
        for (index_t i = 0; i < n; ++i) {
          ip += eig.vectors(i, p) * eig.vectors(i, q);
        }
        EXPECT_NEAR(ip, p == q ? 1.0 : 0.0, 1e-9);
      }
    }
    // Descending order.
    for (std::size_t j = 1; j < eig.values.size(); ++j) {
      EXPECT_GE(eig.values[j - 1], eig.values[j] - 1e-12);
    }
  }
}

TEST(EigenSymmetric, KnownSpectrum) {
  Matrix a(2, 2);
  a(0, 0) = 2.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 2.0;
  const SymmetricEigen eig = eigen_symmetric(a);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-12);
}

TEST(EigenSymmetric, RejectsAsymmetric) {
  Matrix a(2, 2);
  a(0, 1) = 1.0;
  EXPECT_THROW(eigen_symmetric(a), std::invalid_argument);
}

DenseTensor random_multilinear(const shape_t& dims, const shape_t& ranks,
                               std::uint64_t seed) {
  Rng rng(seed);
  DenseTensor core = DenseTensor::random_normal(ranks, rng);
  DenseTensor x = core;
  for (int k = 0; k < static_cast<int>(dims.size()); ++k) {
    x = ttm(x, Matrix::random_normal(dims[static_cast<std::size_t>(k)],
                                     ranks[static_cast<std::size_t>(k)], rng),
            k);
  }
  return x;
}

TEST(StHosvd, ExactAtFullRank) {
  Rng rng(16011);
  const DenseTensor x = DenseTensor::random_normal({4, 5, 6}, rng);
  const TuckerModel model = st_hosvd(x, {.ranks = {4, 5, 6}});
  const DenseTensor back = model.reconstruct();
  EXPECT_LT(x.max_abs_diff(back), 1e-9);
  EXPECT_LT(tucker_residual_norm(x, model), 1e-8);
}

TEST(StHosvd, RecoversExactLowMultilinearRank) {
  const shape_t dims{8, 9, 7};
  const shape_t ranks{3, 2, 4};
  const DenseTensor x = random_multilinear(dims, ranks, 16013);
  const TuckerModel model = st_hosvd(x, {.ranks = ranks});
  EXPECT_EQ(model.core.dims(), ranks);
  const DenseTensor back = model.reconstruct();
  EXPECT_LT(x.max_abs_diff(back), 1e-8 * x.frobenius_norm());
}

TEST(StHosvd, FactorsAreOrthonormal) {
  const DenseTensor x = random_multilinear({6, 6, 6}, {2, 3, 2}, 16017);
  const TuckerModel model = st_hosvd(x, {.ranks = {2, 3, 2}});
  for (const Matrix& u : model.factors) {
    const Matrix g = gram(u);
    EXPECT_LT(max_abs_diff(g, Matrix::identity(u.cols())), 1e-9);
  }
}

TEST(StHosvd, TruncationErrorMatchesResidualFormula) {
  Rng rng(16019);
  const DenseTensor x = DenseTensor::random_normal({6, 6, 6}, rng);
  const TuckerModel model = st_hosvd(x, {.ranks = {3, 3, 3}});
  const DenseTensor back = model.reconstruct();
  DenseTensor diff = x;
  for (index_t i = 0; i < diff.size(); ++i) diff[i] -= back[i];
  EXPECT_NEAR(diff.frobenius_norm(), tucker_residual_norm(x, model),
              1e-8 * x.frobenius_norm());
}

TEST(StHosvd, Validation) {
  DenseTensor x({4, 4}, 1.0);
  EXPECT_THROW(st_hosvd(x, {.ranks = {4}}), std::invalid_argument);
  EXPECT_THROW(st_hosvd(x, {.ranks = {5, 4}}), std::invalid_argument);
  EXPECT_THROW(st_hosvd(x, {.ranks = {0, 4}}), std::invalid_argument);
}

}  // namespace
}  // namespace mtk
