// Regression tests for ExecutionPlan::kernel_variant plumbing: an
// explicitly requested sparse-kernel schedule must actually execute (the
// process-wide KernelVariantCounters are the witness), all the way from the
// kernels through the parallel drivers to the autotuned CP-ALS path that
// used to drop the planner's choice on the floor.
#include <gtest/gtest.h>

#include "src/cp/par_cp_als.hpp"
#include "src/mttkrp/sparse_kernels.hpp"
#include "src/parsim/par_mttkrp.hpp"
#include "src/parsim/transport/transport.hpp"
#include "src/support/rng.hpp"
#include "src/tensor/csf.hpp"

namespace mtk {
namespace {

struct SparseProblem {
  SparseTensor coo;
  CsfTensor csf;
  std::vector<Matrix> factors;
};

SparseProblem make_problem(const shape_t& dims, index_t rank,
                           std::uint64_t seed) {
  Rng rng(seed);
  SparseProblem p;
  p.coo = SparseTensor::random_sparse(dims, 0.3, rng);
  p.csf = CsfTensor::from_coo(p.coo);
  for (index_t d : dims) {
    p.factors.push_back(Matrix::random_normal(d, rank, rng));
  }
  return p;
}

// ---------------------------------------------------------------------------
// Kernel layer: an explicit variant runs its schedule even single-threaded
// (the old code silently took the serial fast path), and stays correct.

TEST(KernelVariantCountersTest, ExplicitVariantsExecuteTheirSchedule) {
  const SparseProblem p = make_problem({8, 7, 6}, 4, 301);
  const Matrix expected = mttkrp_coo(p.coo, p.factors, 1);

  struct Case {
    SparseKernelVariant variant;
    index_t KernelVariantCounters::* counter;
  };
  const Case cases[] = {
      {SparseKernelVariant::kPrivatized, &KernelVariantCounters::privatized},
      {SparseKernelVariant::kAtomic, &KernelVariantCounters::atomic_adds},
      {SparseKernelVariant::kTiled, &KernelVariantCounters::tiled},
  };
  for (const Case& c : cases) {
    reset_kernel_variant_counters();
    const Matrix got =
        mttkrp_coo(p.coo, p.factors, 1, /*parallel=*/false, c.variant);
    const KernelVariantCounters counters = kernel_variant_counters();
    EXPECT_EQ(1, counters.*(c.counter)) << to_string(c.variant);
    EXPECT_EQ(0, counters.serial) << to_string(c.variant);
    EXPECT_LT(max_abs_diff(got, expected), 1e-9) << to_string(c.variant);

    reset_kernel_variant_counters();
    const Matrix got_csf =
        mttkrp_csf(p.csf, p.factors, 1, /*parallel=*/false, c.variant);
    EXPECT_GT(kernel_variant_counters().*(c.counter), 0)
        << "csf " << to_string(c.variant);
    EXPECT_LT(max_abs_diff(got_csf, expected), 1e-9)
        << "csf " << to_string(c.variant);
  }

  // kAuto at one thread keeps the serial fast path.
  reset_kernel_variant_counters();
  mttkrp_coo(p.coo, p.factors, 1);
  EXPECT_GT(kernel_variant_counters().serial, 0);
}

TEST(KernelVariantCountersTest, ExplicitVariantIsDeterministic) {
  const SparseProblem p = make_problem({9, 6, 5}, 3, 17);
  for (SparseKernelVariant variant :
       {SparseKernelVariant::kPrivatized, SparseKernelVariant::kAtomic,
        SparseKernelVariant::kTiled}) {
    const Matrix a =
        mttkrp_coo(p.coo, p.factors, 0, /*parallel=*/false, variant);
    const Matrix b =
        mttkrp_coo(p.coo, p.factors, 0, /*parallel=*/false, variant);
    EXPECT_EQ(0.0, max_abs_diff(a, b)) << to_string(variant);
  }
}

// ---------------------------------------------------------------------------
// Driver layer: the variant reaches every rank's local kernel.

TEST(KernelVariantPlumbing, StationaryDriverForwardsTheVariant) {
  const SparseProblem p = make_problem({6, 6, 6}, 4, 404);
  const std::vector<int> grid{2, 2, 1};

  reset_kernel_variant_counters();
  SimTransport sim(4);
  const ParMttkrpResult r_auto = par_mttkrp_stationary(
      sim, StoredTensor::coo_view(p.coo), p.factors, 0, grid);
  EXPECT_EQ(0, kernel_variant_counters().tiled);

  reset_kernel_variant_counters();
  SimTransport sim2(4);
  const ParMttkrpResult r_tiled = par_mttkrp_stationary(
      sim2, StoredTensor::coo_view(p.coo), p.factors, 0, grid,
      CollectiveKind::kBucket, SparsePartitionScheme::kBlock,
      SparseKernelVariant::kTiled);
  const KernelVariantCounters counters = kernel_variant_counters();
  EXPECT_GT(counters.tiled, 0);
  EXPECT_EQ(0, counters.serial);
  EXPECT_LT(max_abs_diff(r_auto.b, r_tiled.b), 1e-9);
}

TEST(KernelVariantPlumbing, ParCpAlsOptionForwardsTheVariant) {
  const SparseProblem p = make_problem({6, 6, 6}, 3, 555);
  ParCpAlsOptions opts;
  opts.rank = 3;
  opts.max_iterations = 2;
  opts.grid = {2, 2, 1};
  opts.kernel_variant = SparseKernelVariant::kPrivatized;

  reset_kernel_variant_counters();
  const ParCpAlsResult result =
      par_cp_als(StoredTensor::coo_view(p.coo), opts);
  EXPECT_GT(kernel_variant_counters().privatized, 0);
  EXPECT_EQ(0, kernel_variant_counters().serial);
  EXPECT_EQ(2, result.iterations);
}

// ---------------------------------------------------------------------------
// The autotune bug itself: a measured calibration makes the planner emit a
// non-auto kernel_variant; before the fix par_cp_als dropped it, so the
// serial fast path ran and the chosen schedule's counter stayed at zero.

TEST(KernelVariantPlumbing, AutotunedParCpAlsHonorsThePlansVariant) {
  const SparseProblem p = make_problem({6, 6, 6}, 3, 666);

  Calibration cal;
  cal.measured = true;
  cal.alpha_seconds = 1e-6;
  cal.beta_seconds_per_word = 1e-9;
  cal.dense_seconds_per_flop = 1e-10;
  cal.coo_seconds_per_flop = 1e-10;
  cal.csf_seconds_per_flop = 1e-10;
  // Tiled measured strictly faster on both sparse backends, so whatever
  // backend the planner picks, plan.kernel_variant == kTiled.
  cal.coo_privatized_seconds_per_flop = 2e-10;
  cal.coo_tiled_seconds_per_flop = 1e-10;
  cal.csf_privatized_seconds_per_flop = 2e-10;
  cal.csf_tiled_seconds_per_flop = 1e-10;

  ParCpAlsOptions opts;
  opts.rank = 3;
  opts.max_iterations = 2;
  opts.autotune = true;
  opts.procs = 4;
  opts.machine = cal;

  reset_kernel_variant_counters();
  const ParCpAlsResult result =
      par_cp_als(StoredTensor::coo_view(p.coo), opts);
  ASSERT_TRUE(result.autotuned);
  ASSERT_EQ(SparseKernelVariant::kTiled, result.plan.kernel_variant);
  EXPECT_GT(kernel_variant_counters().tiled, 0);
  EXPECT_EQ(0, kernel_variant_counters().serial);
}

}  // namespace
}  // namespace mtk
