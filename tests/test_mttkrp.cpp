// Core MTTKRP correctness tests: all four algorithms against an independent
// brute-force oracle, parameterized sweeps over order/dims/rank/mode, block
// size properties, and argument validation.
#include <gtest/gtest.h>

#include <tuple>

#include "src/mttkrp/mttkrp.hpp"
#include "src/support/rng.hpp"

namespace mtk {
namespace {

// Independent oracle: literal Definition 2.1, no shared code with the
// library implementations beyond element access.
Matrix oracle_mttkrp(const DenseTensor& x, const std::vector<Matrix>& factors,
                     int mode) {
  const index_t rank = factors[static_cast<std::size_t>(mode == 0 ? 1 : 0)].cols();
  Matrix b(x.dim(mode), rank, 0.0);
  for (Odometer od(x.dims()); od.valid(); od.next()) {
    const multi_index_t& i = od.index();
    for (index_t r = 0; r < rank; ++r) {
      double prod = x.at(i);
      for (int k = 0; k < x.order(); ++k) {
        if (k == mode) continue;
        prod *= factors[static_cast<std::size_t>(k)](i[static_cast<std::size_t>(k)], r);
      }
      b(i[static_cast<std::size_t>(mode)], r) += prod;
    }
  }
  return b;
}

struct Problem {
  DenseTensor x;
  std::vector<Matrix> factors;
};

Problem make_problem(const shape_t& dims, index_t rank, std::uint64_t seed) {
  Rng rng(seed);
  Problem p;
  p.x = DenseTensor::random_normal(dims, rng);
  for (index_t d : dims) {
    p.factors.push_back(Matrix::random_normal(d, rank, rng));
  }
  return p;
}

// ---------------------------------------------------------------------------
// Parameterized sweep: (dims, rank, mode) across orders 2..5.

using SweepParam = std::tuple<shape_t, index_t, int>;

class MttkrpSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(MttkrpSweep, AllAlgorithmsMatchOracle) {
  const auto& [dims, rank, mode] = GetParam();
  const Problem p = make_problem(dims, rank, 97 + mode);
  const Matrix expected = oracle_mttkrp(p.x, p.factors, mode);

  for (MttkrpAlgo algo : {MttkrpAlgo::kReference, MttkrpAlgo::kBlocked,
                          MttkrpAlgo::kMatmul, MttkrpAlgo::kTwoStep}) {
    MttkrpOptions opts;
    opts.algo = algo;
    opts.block_size = 3;  // deliberately awkward block size
    const Matrix b = mttkrp(p.x, p.factors, mode, opts);
    EXPECT_LT(max_abs_diff(b, expected), 1e-9)
        << "algo " << to_string(algo) << " mode " << mode;
  }
}

INSTANTIATE_TEST_SUITE_P(
    OrderTwo, MttkrpSweep,
    ::testing::Values(SweepParam{{4, 5}, 3, 0}, SweepParam{{4, 5}, 3, 1},
                      SweepParam{{1, 7}, 2, 0}, SweepParam{{7, 1}, 2, 1},
                      SweepParam{{16, 16}, 1, 0}));

INSTANTIATE_TEST_SUITE_P(
    OrderThree, MttkrpSweep,
    ::testing::Values(SweepParam{{4, 5, 6}, 3, 0}, SweepParam{{4, 5, 6}, 3, 1},
                      SweepParam{{4, 5, 6}, 3, 2}, SweepParam{{2, 2, 2}, 5, 1},
                      SweepParam{{9, 3, 7}, 4, 2},
                      SweepParam{{1, 6, 1}, 2, 1}));

INSTANTIATE_TEST_SUITE_P(
    OrderFour, MttkrpSweep,
    ::testing::Values(SweepParam{{3, 4, 2, 5}, 3, 0},
                      SweepParam{{3, 4, 2, 5}, 3, 1},
                      SweepParam{{3, 4, 2, 5}, 3, 2},
                      SweepParam{{3, 4, 2, 5}, 3, 3},
                      SweepParam{{2, 2, 2, 2}, 6, 2}));

INSTANTIATE_TEST_SUITE_P(
    OrderFive, MttkrpSweep,
    ::testing::Values(SweepParam{{2, 3, 2, 3, 2}, 2, 0},
                      SweepParam{{2, 3, 2, 3, 2}, 2, 2},
                      SweepParam{{2, 3, 2, 3, 2}, 2, 4},
                      SweepParam{{3, 2, 2, 2, 4}, 3, 3}));

// ---------------------------------------------------------------------------
// Block-size sweep: the blocked algorithm must be correct for every block
// size, including b = 1, b dividing dims, b not dividing dims, b > max dim.

class BlockSizeSweep : public ::testing::TestWithParam<index_t> {};

TEST_P(BlockSizeSweep, BlockedMatchesReference) {
  const index_t b = GetParam();
  const Problem p = make_problem({7, 5, 6}, 3, 211);
  const Matrix expected = mttkrp_reference(p.x, p.factors, 1);
  const Matrix got = mttkrp_blocked(p.x, p.factors, 1, b);
  EXPECT_LT(max_abs_diff(got, expected), 1e-10) << "block size " << b;
}

INSTANTIATE_TEST_SUITE_P(Blocks, BlockSizeSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 100));

TEST(MttkrpBlocked, ParallelMatchesSerial) {
  const Problem p = make_problem({12, 9, 10}, 4, 223);
  for (int mode = 0; mode < 3; ++mode) {
    const Matrix serial = mttkrp_blocked(p.x, p.factors, mode, 4, false);
    const Matrix parallel = mttkrp_blocked(p.x, p.factors, mode, 4, true);
    EXPECT_LT(max_abs_diff(serial, parallel), 1e-10) << "mode " << mode;
  }
}

// ---------------------------------------------------------------------------
// Structured inputs with known outputs.

TEST(Mttkrp, AllOnesInputsCountIterations) {
  // With X and all factors identically 1, B(i_n, r) = I / I_n.
  const shape_t dims{3, 4, 5};
  DenseTensor x(dims, 1.0);
  std::vector<Matrix> factors;
  for (index_t d : dims) factors.push_back(Matrix(d, 2, 1.0));
  for (int mode = 0; mode < 3; ++mode) {
    const Matrix b = mttkrp_reference(x, factors, mode);
    const double expect =
        static_cast<double>(shape_size(dims) / dims[static_cast<std::size_t>(mode)]);
    for (index_t i = 0; i < b.rows(); ++i) {
      for (index_t r = 0; r < b.cols(); ++r) {
        EXPECT_DOUBLE_EQ(b(i, r), expect);
      }
    }
  }
}

TEST(Mttkrp, RankOneTensorRecoversScaledFactor) {
  // X = u ∘ v ∘ w. MTTKRP in mode 0 against (v, w) gives
  // B(:, r) = u * (v'v)(w'w) when factors equal the generators.
  Rng rng(227);
  std::vector<Matrix> gen;
  gen.push_back(Matrix::random_normal(4, 1, rng));
  gen.push_back(Matrix::random_normal(5, 1, rng));
  gen.push_back(Matrix::random_normal(6, 1, rng));
  const DenseTensor x = DenseTensor::from_cp(gen, {1.0});
  const Matrix b = mttkrp_reference(x, gen, 0);
  double vv = 0.0, ww = 0.0;
  for (index_t i = 0; i < 5; ++i) vv += gen[1](i, 0) * gen[1](i, 0);
  for (index_t i = 0; i < 6; ++i) ww += gen[2](i, 0) * gen[2](i, 0);
  for (index_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(b(i, 0), gen[0](i, 0) * vv * ww, 1e-10);
  }
}

TEST(Mttkrp, FactorForOutputModeIsIgnored) {
  Problem p = make_problem({4, 5, 6}, 3, 229);
  const Matrix with_factor = mttkrp_reference(p.x, p.factors, 1);
  p.factors[1] = Matrix();  // empty
  const Matrix without = mttkrp_reference(p.x, p.factors, 1);
  EXPECT_LT(max_abs_diff(with_factor, without), 1e-15);
}

// ---------------------------------------------------------------------------
// Argument validation.

TEST(MttkrpValidation, RejectsBadMode) {
  const Problem p = make_problem({4, 5}, 2, 233);
  EXPECT_THROW(mttkrp_reference(p.x, p.factors, 2), std::invalid_argument);
  EXPECT_THROW(mttkrp_reference(p.x, p.factors, -1), std::invalid_argument);
}

TEST(MttkrpValidation, RejectsWrongFactorCount) {
  const Problem p = make_problem({4, 5, 6}, 2, 239);
  std::vector<Matrix> two(p.factors.begin(), p.factors.begin() + 2);
  EXPECT_THROW(mttkrp_reference(p.x, two, 0), std::invalid_argument);
}

TEST(MttkrpValidation, RejectsRowMismatch) {
  Problem p = make_problem({4, 5, 6}, 2, 241);
  Rng rng(99);
  p.factors[2] = Matrix::random_normal(7, 2, rng);  // should be 6 rows
  EXPECT_THROW(mttkrp_reference(p.x, p.factors, 0), std::invalid_argument);
}

TEST(MttkrpValidation, RejectsRankMismatch) {
  Problem p = make_problem({4, 5, 6}, 2, 251);
  Rng rng(100);
  p.factors[2] = Matrix::random_normal(6, 3, rng);  // rank 3 vs 2
  EXPECT_THROW(mttkrp_reference(p.x, p.factors, 0), std::invalid_argument);
}

TEST(MttkrpValidation, RejectsBadBlockSize) {
  const Problem p = make_problem({4, 5, 6}, 2, 257);
  EXPECT_THROW(mttkrp_blocked(p.x, p.factors, 0, 0), std::invalid_argument);
  EXPECT_THROW(mttkrp_blocked(p.x, p.factors, 0, -2), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Block-size selection (Eq. (11)).

TEST(MaxBlockSize, SatisfiesMemoryConstraint) {
  for (int order = 2; order <= 6; ++order) {
    for (index_t m : {index_t{16}, index_t{100}, index_t{1024},
                      index_t{1} << 20}) {
      if (m < 1 + order) continue;
      const index_t b = max_block_size(order, m);
      EXPECT_GE(b, 1);
      EXPECT_LE(ipow(b, order) + order * b, m)
          << "order " << order << " M " << m;
      // Maximality: b+1 must violate the constraint.
      EXPECT_GT(ipow(b + 1, order) + order * (b + 1), m)
          << "order " << order << " M " << m;
    }
  }
}

TEST(MaxBlockSize, TooSmallMemoryThrows) {
  EXPECT_THROW(max_block_size(3, 3), std::invalid_argument);
  EXPECT_EQ(max_block_size(3, 4), 1);  // 1 + 3 = 4 fits exactly
}

TEST(MttkrpDispatch, AutoBlockSizeUsesFastMemoryOption) {
  const Problem p = make_problem({6, 6, 6}, 2, 263);
  MttkrpOptions opts;
  opts.algo = MttkrpAlgo::kBlocked;
  opts.block_size = 0;
  opts.fast_memory_words = 40;  // max b with b^3 + 3b <= 40 is 3
  const Matrix b = mttkrp(p.x, p.factors, 0, opts);
  const Matrix expected = mttkrp_reference(p.x, p.factors, 0);
  EXPECT_LT(max_abs_diff(b, expected), 1e-10);
}

TEST(MttkrpDispatch, AlgoNames) {
  EXPECT_STREQ(to_string(MttkrpAlgo::kReference), "reference");
  EXPECT_STREQ(to_string(MttkrpAlgo::kBlocked), "blocked");
  EXPECT_STREQ(to_string(MttkrpAlgo::kMatmul), "matmul");
  EXPECT_STREQ(to_string(MttkrpAlgo::kTwoStep), "two_step");
}

}  // namespace
}  // namespace mtk
