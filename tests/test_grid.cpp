// Tests for processor grids and distribution helpers.
#include <gtest/gtest.h>

#include <set>

#include "src/parsim/distribution.hpp"
#include "src/parsim/grid.hpp"

namespace mtk {
namespace {

TEST(ProcessorGrid, CoordsRankRoundTrip) {
  const ProcessorGrid grid({2, 3, 4});
  EXPECT_EQ(grid.size(), 24);
  EXPECT_EQ(grid.ndims(), 3);
  for (int r = 0; r < grid.size(); ++r) {
    EXPECT_EQ(grid.rank_of(grid.coords(r)), r);
  }
  // Column-major: rank 1 = (1,0,0), rank 2 = (0,1,0).
  EXPECT_EQ(grid.coords(1), (std::vector<int>{1, 0, 0}));
  EXPECT_EQ(grid.coords(2), (std::vector<int>{0, 1, 0}));
  EXPECT_EQ(grid.coords(6), (std::vector<int>{0, 0, 1}));
}

TEST(ProcessorGrid, GroupFixingOneDimension) {
  const ProcessorGrid grid({2, 3, 2});
  // Fixing dim 1 at the coordinate of rank 0 (=0): group varies dims 0 and
  // 2: size 4.
  const auto group = grid.group_fixing({1}, 0);
  ASSERT_EQ(group.size(), 4u);
  for (int r : group) {
    EXPECT_EQ(grid.coords(r)[1], 0);
  }
  // All members compute the identical group.
  for (int r : group) {
    EXPECT_EQ(grid.group_fixing({1}, r), group);
  }
}

TEST(ProcessorGrid, GroupFixingMultipleDimensions) {
  const ProcessorGrid grid({2, 3, 2, 2});
  const int rank = grid.rank_of({1, 2, 0, 1});
  const auto group = grid.group_fixing({0, 2}, rank);
  ASSERT_EQ(group.size(), 6u);  // varies dims 1 (3) and 3 (2)
  for (int r : group) {
    const auto c = grid.coords(r);
    EXPECT_EQ(c[0], 1);
    EXPECT_EQ(c[2], 0);
  }
}

TEST(ProcessorGrid, GroupsPartitionTheMachine) {
  // The groups fixing dim k over all coordinate values partition all ranks.
  const ProcessorGrid grid({3, 2, 2});
  std::set<int> seen;
  for (int c = 0; c < 3; ++c) {
    const int representative = grid.rank_of({c, 0, 0});
    for (int r : grid.group_fixing({0}, representative)) {
      EXPECT_TRUE(seen.insert(r).second) << "rank " << r << " in two groups";
    }
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(grid.size()));
}

TEST(ProcessorGrid, PositionInGroupIsConsistent) {
  const ProcessorGrid grid({2, 2, 2});
  for (int r = 0; r < grid.size(); ++r) {
    const auto group = grid.group_fixing({1}, r);
    const int pos = grid.position_in_group({1}, r);
    EXPECT_EQ(group[static_cast<std::size_t>(pos)], r);
  }
}

TEST(ProcessorGrid, FixingAllDimsYieldsSingleton) {
  const ProcessorGrid grid({2, 3});
  const auto group = grid.group_fixing({0, 1}, 4);
  EXPECT_EQ(group, (std::vector<int>{4}));
}

TEST(ProcessorGrid, FixingNothingYieldsWholeMachine) {
  const ProcessorGrid grid({2, 2});
  const auto group = grid.group_fixing({}, 0);
  EXPECT_EQ(group.size(), 4u);
}

TEST(ProcessorGrid, Validation) {
  EXPECT_THROW(ProcessorGrid({}), std::invalid_argument);
  EXPECT_THROW(ProcessorGrid({2, 0}), std::invalid_argument);
  const ProcessorGrid grid({2, 2});
  EXPECT_THROW(grid.coords(4), std::invalid_argument);
  EXPECT_THROW(grid.rank_of({2, 0}), std::invalid_argument);
  EXPECT_THROW(grid.group_fixing({2}, 0), std::invalid_argument);
  EXPECT_THROW(grid.extent(5), std::invalid_argument);
}

TEST(BlockPartition, BalancedSizes) {
  const auto parts = block_partition(10, 3);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].length(), 4);  // first gets the extra
  EXPECT_EQ(parts[1].length(), 3);
  EXPECT_EQ(parts[2].length(), 3);
  EXPECT_EQ(parts[0].lo, 0);
  EXPECT_EQ(parts[2].hi, 10);
  // Contiguous coverage.
  for (std::size_t i = 1; i < parts.size(); ++i) {
    EXPECT_EQ(parts[i].lo, parts[i - 1].hi);
  }
}

TEST(BlockPartition, MorePartsThanElements) {
  const auto parts = block_partition(2, 4);
  EXPECT_EQ(parts[0].length(), 1);
  EXPECT_EQ(parts[1].length(), 1);
  EXPECT_EQ(parts[2].length(), 0);
  EXPECT_EQ(parts[3].length(), 0);
}

TEST(FlatChunks, CoverWithoutOverlap) {
  for (index_t total : {index_t{0}, index_t{1}, index_t{17}, index_t{100}}) {
    for (int parts : {1, 3, 7}) {
      index_t covered = 0;
      for (int p = 0; p < parts; ++p) {
        const Range c = flat_chunk(total, parts, p);
        EXPECT_EQ(c.lo, covered);
        covered = c.hi;
      }
      EXPECT_EQ(covered, total);
      const auto sizes = flat_chunk_sizes(total, parts);
      index_t sum = 0;
      for (index_t s : sizes) sum += s;
      EXPECT_EQ(sum, total);
    }
  }
  EXPECT_THROW(flat_chunk(10, 2, 2), std::invalid_argument);
}

}  // namespace
}  // namespace mtk
