// Statistical battery for the randomized sketched backend (src/sketch):
// leverage scores against a brute-force pseudo-inverse, unbiasedness and
// S-convergence of the sampled MTTKRP on every storage format, sketched
// normal equations against the exact ones, sampled CP-ALS fit against the
// exact driver, and the plan-cache v2 -> v3 migration. Every randomized
// check is seeded and uses medians over repeated trials, so the assertions
// are deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <string>
#include <vector>

#include "src/cp/cp_als.hpp"
#include "src/cp/cp_gradient.hpp"
#include "src/io/frostt_presets.hpp"
#include "src/mttkrp/dispatch.hpp"
#include "src/planner/plan_cache.hpp"
#include "src/sketch/krp_sample.hpp"
#include "src/sketch/leverage.hpp"
#include "src/sketch/sampled_mttkrp.hpp"
#include "src/sketch/sketched_solve.hpp"
#include "src/tensor/eigen_sym.hpp"
#include "src/tensor/khatri_rao.hpp"
#include "src/tensor/matricize.hpp"

namespace mtk {
namespace {

double relative_error(const Matrix& approx, const Matrix& exact) {
  double num = 0.0, den = 0.0;
  for (index_t i = 0; i < exact.rows(); ++i) {
    for (index_t j = 0; j < exact.cols(); ++j) {
      const double d = approx(i, j) - exact(i, j);
      num += d * d;
      den += exact(i, j) * exact(i, j);
    }
  }
  return std::sqrt(num) / std::sqrt(std::max(den, 1e-300));
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

// --------------------------------------------------------------------------
// Leverage scores.

TEST(Leverage, MatchesBruteForcePseudoInverse) {
  Rng rng(11);
  const Matrix a = Matrix::random_normal(23, 4, rng);
  const std::vector<double> scores = leverage_scores(a);

  // Brute force: l_i = a_i^T (A^T A)^{-1} a_i via the eigen pseudo-inverse
  // assembled explicitly.
  const SymmetricEigen eig = eigen_symmetric(gram(a));
  Matrix pinv(4, 4, 0.0);
  for (index_t p = 0; p < 4; ++p) {
    for (index_t q = 0; q < 4; ++q) {
      double acc = 0.0;
      for (index_t j = 0; j < 4; ++j) {
        acc += eig.vectors(p, j) * eig.vectors(q, j) /
               eig.values[static_cast<std::size_t>(j)];
      }
      pinv(p, q) = acc;
    }
  }
  for (index_t i = 0; i < a.rows(); ++i) {
    double want = 0.0;
    for (index_t p = 0; p < 4; ++p) {
      for (index_t q = 0; q < 4; ++q) {
        want += a(i, p) * pinv(p, q) * a(i, q);
      }
    }
    EXPECT_NEAR(scores[static_cast<std::size_t>(i)], want, 1e-9);
  }

  // sum_i l_i = rank(A) and every score lies in [0, 1].
  double total = 0.0;
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0 + 1e-9);
    total += s;
  }
  EXPECT_NEAR(total, 4.0, 1e-8);
}

TEST(Leverage, RankDeficientGramUsesPseudoInverse) {
  // Duplicate column -> rank 2 Gram; scores must still sum to the rank.
  Rng rng(5);
  Matrix a = Matrix::random_normal(17, 3, rng);
  for (index_t i = 0; i < a.rows(); ++i) a(i, 2) = a(i, 1);
  const std::vector<double> scores = leverage_scores(a);
  double total = 0.0;
  for (double s : scores) total += s;
  EXPECT_NEAR(total, 2.0, 1e-6);
}

// --------------------------------------------------------------------------
// KRP sampling.

TEST(KrpSample, WeightsAreInverseProbabilities) {
  Rng init(3);
  std::vector<Matrix> factors = {Matrix::random_uniform(6, 3, init),
                                 Matrix::random_uniform(5, 3, init),
                                 Matrix::random_uniform(4, 3, init)};
  Rng rng(7);
  const KrpSample sample = sample_krp_leverage(factors, 1, 64, rng);
  ASSERT_EQ(sample.count(), 64);
  ASSERT_EQ(sample.skip_mode, 1);
  EXPECT_TRUE(sample.indices[1].empty());

  const std::vector<double> l0 = leverage_scores(factors[0]);
  const std::vector<double> l2 = leverage_scores(factors[2]);
  double t0 = 0.0, t2 = 0.0;
  for (double v : l0) t0 += v;
  for (double v : l2) t2 += v;
  for (index_t s = 0; s < sample.count(); ++s) {
    const double p =
        (l0[static_cast<std::size_t>(sample.indices[0][s])] / t0) *
        (l2[static_cast<std::size_t>(sample.indices[2][s])] / t2);
    EXPECT_NEAR(sample.weights[static_cast<std::size_t>(s)], 1.0 / (64 * p),
                1e-9 / p);
  }
}

TEST(KrpSample, SeededDrawsAreReproducible) {
  Rng init(3);
  std::vector<Matrix> factors = {Matrix::random_uniform(6, 2, init),
                                 Matrix::random_uniform(5, 2, init)};
  Rng r1(derive_seed(99, 1)), r2(derive_seed(99, 1));
  const KrpSample a = sample_krp_leverage(factors, 0, 32, r1);
  const KrpSample b = sample_krp_leverage(factors, 0, 32, r2);
  EXPECT_EQ(a.indices[1], b.indices[1]);
  EXPECT_EQ(a.weights, b.weights);
  // A different derived stream must (overwhelmingly) differ.
  Rng r3(derive_seed(99, 2));
  const KrpSample c = sample_krp_leverage(factors, 0, 32, r3);
  EXPECT_NE(a.indices[1], c.indices[1]);
}

TEST(KrpSample, EpsilonDerivesSampleCount) {
  const index_t s1 = sample_count_for_epsilon(8, 0.5);
  const index_t s2 = sample_count_for_epsilon(8, 0.25);
  EXPECT_GT(s2, s1);  // tighter budget -> more samples
  EXPECT_NEAR(static_cast<double>(s2) / static_cast<double>(s1), 4.0, 0.1);
  EXPECT_LE(predicted_sampling_error(8, s2), 0.25 + 1e-12);

  SketchOptions opts;
  opts.epsilon = 0.5;
  EXPECT_EQ(opts.resolve_sample_count(8), s1);
  opts.sample_count = 10;
  EXPECT_EQ(opts.resolve_sample_count(8), 10);
  EXPECT_FALSE(SketchOptions{}.enabled());
  EXPECT_TRUE(opts.enabled());
}

// --------------------------------------------------------------------------
// Sampled MTTKRP.

class SampledMttkrp : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(41);
    coo_ = SparseTensor::random_sparse_skewed({30, 24, 18}, 0.05, 1.2, rng);
    Rng frng(42);
    for (index_t d : coo_.dims()) {
      factors_.push_back(Matrix::random_uniform(d, kRank, frng, 0.1, 1.0));
    }
  }

  static constexpr index_t kRank = 5;
  SparseTensor coo_;
  std::vector<Matrix> factors_;
};

TEST_F(SampledMttkrp, FullCoverageSampleReproducesExactMttkrp) {
  // A sample containing every complement tuple exactly once with weight
  // p_s = 1/(S p_s) computed from the true distribution is only unbiased in
  // expectation — but sampling with replacement S >> tuples times makes the
  // estimate concentrate. The deterministic check instead: hand-build a
  // "sample" that enumerates every complement tuple once with weight 1.
  // The filtered kernels must then reproduce the exact MTTKRP bit-for-bit
  // modulo float summation order.
  for (int mode = 0; mode < 3; ++mode) {
    KrpSample sample;
    sample.skip_mode = mode;
    sample.dims = coo_.dims();
    sample.indices.assign(3, {});
    const int k1 = mode == 0 ? 1 : 0;
    const int k2 = mode == 2 ? 1 : 2;
    for (index_t i = 0; i < coo_.dim(k1); ++i) {
      for (index_t j = 0; j < coo_.dim(k2); ++j) {
        sample.indices[static_cast<std::size_t>(k1)].push_back(i);
        sample.indices[static_cast<std::size_t>(k2)].push_back(j);
        sample.weights.push_back(1.0);
      }
    }

    const Matrix exact = mttkrp(coo_, factors_, mode);
    SampledMttkrpStats stats;
    const Matrix via_coo =
        mttkrp_sampled(coo_, factors_, sample, {}, &stats);
    EXPECT_LT(relative_error(via_coo, exact), 1e-12);
    EXPECT_EQ(stats.surviving_nonzeros, coo_.nnz());

    // CSF trees rooted at every mode exercise out_level = 0, middle, leaf.
    for (int root = 0; root < 3; ++root) {
      const CsfTensor tree = CsfTensor::from_coo(coo_, root);
      SampledMttkrpStats cstats;
      const Matrix via_csf =
          mttkrp_sampled(tree, factors_, sample, {}, &cstats);
      EXPECT_LT(relative_error(via_csf, exact), 1e-12)
          << "mode " << mode << " root " << root;
      EXPECT_EQ(cstats.surviving_nonzeros, coo_.nnz());
    }
  }
}

TEST_F(SampledMttkrp, CooAndCsfKernelsAgree) {
  Rng rng(derive_seed(17, 0));
  const KrpSample sample = sample_krp_leverage(factors_, 1, 200, rng);
  SampledMttkrpStats s1, s2;
  const Matrix a = mttkrp_sampled(coo_, factors_, sample, {}, &s1);
  const CsfTensor tree = CsfTensor::from_coo(coo_, 1);
  const Matrix b = mttkrp_sampled(tree, factors_, sample, {}, &s2);
  EXPECT_LT(relative_error(a, b), 1e-12);
  EXPECT_EQ(s1.surviving_nonzeros, s2.surviving_nonzeros);
  EXPECT_EQ(s1.distinct_tuples, s2.distinct_tuples);
  EXPECT_LT(s1.surviving_nonzeros, coo_.nnz());  // it actually filtered

  // Parallel schedules must agree with the serial kernels.
  MttkrpOptions par;
  par.parallel = true;
  EXPECT_LT(relative_error(mttkrp_sampled(coo_, factors_, sample, par), a),
            1e-12);
  EXPECT_LT(relative_error(mttkrp_sampled(tree, factors_, sample, par), b),
            1e-12);
}

TEST_F(SampledMttkrp, DispatchRoutesEveryFormat) {
  Rng rng(derive_seed(18, 0));
  const KrpSample sample = sample_krp_leverage(factors_, 0, 150, rng);
  const Matrix via_coo =
      mttkrp_sampled(StoredTensor::coo_view(coo_), factors_, sample);
  const CsfTensor tree = CsfTensor::from_coo(coo_, 0);
  const Matrix via_csf =
      mttkrp_sampled(StoredTensor::csf_view(tree), factors_, sample);
  EXPECT_LT(relative_error(via_csf, via_coo), 1e-12);

  // Dense dispatch: densify and compare against the sparse sampled result
  // (same sample, same estimator -> same numbers).
  DenseTensor dense(coo_.dims(), 0.0);
  for (index_t q = 0; q < coo_.nnz(); ++q) {
    multi_index_t idx(3);
    for (int k = 0; k < 3; ++k) idx[static_cast<std::size_t>(k)] = coo_.index(k, q);
    dense.at(idx) = coo_.values()[static_cast<std::size_t>(q)];
  }
  const Matrix via_dense =
      mttkrp_sampled(StoredTensor::dense_view(dense), factors_, sample);
  EXPECT_LT(relative_error(via_dense, via_coo), 1e-12);
}

TEST_F(SampledMttkrp, ErrorShrinksWithSampleCount) {
  const int mode = 0;
  const Matrix exact = mttkrp(coo_, factors_, mode);
  const auto median_error = [&](index_t s_count) {
    std::vector<double> errs;
    for (std::uint64_t trial = 0; trial < 9; ++trial) {
      Rng rng(derive_seed(1234, trial * 31 + static_cast<std::uint64_t>(s_count)));
      const KrpSample sample =
          sample_krp_leverage(factors_, mode, s_count, rng);
      errs.push_back(relative_error(
          mttkrp_sampled(coo_, factors_, sample), exact));
    }
    return median(errs);
  };
  const double e_small = median_error(32);
  const double e_mid = median_error(128);
  const double e_big = median_error(512);
  // Monotone (median over 9 seeded trials smooths the noise) and roughly
  // like 1/sqrt(S): a 16x sample increase must cut the error at least ~2x.
  EXPECT_LT(e_mid, e_small * 1.05);
  EXPECT_LT(e_big, e_mid * 1.05);
  EXPECT_LT(e_big, e_small / 2.0);
}

// --------------------------------------------------------------------------
// Sketched normal equations.

TEST_F(SampledMttkrp, SketchedGramEstimatesHadamardGram) {
  const int mode = 2;
  // Exact V = Hadamard of the other Grams = K^T K.
  Matrix v_exact = gram(factors_[0]);
  hadamard_inplace(v_exact, gram(factors_[1]));

  std::vector<double> errs;
  for (std::uint64_t trial = 0; trial < 9; ++trial) {
    Rng rng(derive_seed(77, trial));
    const KrpSample sample =
        sample_krp_leverage(factors_, mode, 2000, rng);
    errs.push_back(relative_error(sketched_krp_gram(factors_, sample),
                                  v_exact));
  }
  EXPECT_LT(median(errs), 0.15);
}

TEST_F(SampledMttkrp, GaussianSketchSolvesDenseLeastSquares) {
  // Small dense problem: the Gaussian-KRP sketched solve must land close to
  // the exact normal-equations solution.
  Rng rng(4242);
  const shape_t dims = {12, 10, 8};
  std::vector<Matrix> factors;
  for (index_t d : dims) {
    factors.push_back(Matrix::random_uniform(d, 3, rng, 0.1, 1.0));
  }
  DenseTensor x = DenseTensor::random_uniform(dims, rng);

  const int mode = 0;
  const Matrix m = mttkrp(x, factors, mode);
  Matrix v = gram(factors[1]);
  hadamard_inplace(v, gram(factors[2]));
  const Matrix a_exact = solve_spd_right(v, m);

  std::vector<double> errs;
  for (std::uint64_t trial = 0; trial < 5; ++trial) {
    Rng srng(derive_seed(555, trial));
    const SketchedNormalEq eq =
        sketched_normal_eq_gaussian(x, factors, mode, 600, srng);
    errs.push_back(relative_error(solve_sketched(eq), a_exact));
  }
  EXPECT_LT(median(errs), 0.2);
}

// --------------------------------------------------------------------------
// Preset rescaling (gen_tns --scale rides on this helper).

TEST(FrosttPresets, ScaleKeepsSkewAndNnzRatio) {
  const FrosttPreset* amazon = find_frostt_preset("amazon");
  ASSERT_NE(amazon, nullptr);
  const FrosttPreset tenth = scale_frostt_preset(*amazon, 0.1);
  EXPECT_EQ(tenth.skew, amazon->skew);
  ASSERT_EQ(tenth.dims.size(), amazon->dims.size());
  for (std::size_t k = 0; k < tenth.dims.size(); ++k) {
    EXPECT_GE(tenth.dims[k], 2);
    EXPECT_NEAR(static_cast<double>(tenth.dims[k]),
                0.1 * static_cast<double>(amazon->dims[k]), 1.0);
  }
  // Expected nnz = density * prod(dims) must scale like the factor.
  const double nnz_full = amazon->density *
                          static_cast<double>(shape_size(amazon->dims));
  const double nnz_tenth =
      tenth.density * static_cast<double>(shape_size(tenth.dims));
  EXPECT_NEAR(nnz_tenth / nnz_full, 0.1, 0.02);

  // Growing works too, and the generated tensor is deterministic per seed.
  const FrosttPreset grown = scale_frostt_preset(*amazon, 2.0);
  const double nnz_grown =
      grown.density * static_cast<double>(shape_size(grown.dims));
  EXPECT_NEAR(nnz_grown / nnz_full, 2.0, 0.2);
  const SparseTensor a = make_frostt_like(tenth, 9);
  const SparseTensor b = make_frostt_like(tenth, 9);
  EXPECT_EQ(a.nnz(), b.nnz());
}

// --------------------------------------------------------------------------
// Sampled CP drivers.

TEST(SampledCp, AlsFitTracksExactWithinEpsilon) {
  // gen_tns-preset-shaped input at CI scale: the sampled sweep's returned
  // model (exact-evaluated fit) must land within the epsilon budget of the
  // exact driver's fit.
  const FrosttPreset* amazon = find_frostt_preset("amazon");
  ASSERT_NE(amazon, nullptr);
  const SparseTensor x =
      make_frostt_like(scale_frostt_preset(*amazon, 0.05), 23);

  CpAlsOptions exact_opts;
  exact_opts.rank = 6;
  exact_opts.max_iterations = 10;
  exact_opts.seed = 7;
  const CpAlsResult exact = cp_als(x, exact_opts);

  CpAlsOptions sampled_opts = exact_opts;
  sampled_opts.sketch.epsilon = 0.25;
  sampled_opts.sketch.seed = 1001;
  const CpAlsResult sampled = cp_als(x, sampled_opts);

  EXPECT_GT(sampled.iterations, 0);
  EXPECT_TRUE(std::isfinite(sampled.final_fit));
  EXPECT_NEAR(sampled.final_fit, exact.final_fit,
              sampled_opts.sketch.epsilon);

  // Bit-reproducible: the sampling streams are fully derived from the seed.
  const CpAlsResult again = cp_als(x, sampled_opts);
  EXPECT_EQ(sampled.final_fit, again.final_fit);
  EXPECT_EQ(sampled.iterations, again.iterations);

  // refresh_every > 1 reuses draws across sweeps; still a valid estimator.
  CpAlsOptions lazy = sampled_opts;
  lazy.sketch.refresh_every = 3;
  const CpAlsResult lazy_result = cp_als(x, lazy);
  EXPECT_NEAR(lazy_result.final_fit, exact.final_fit,
              sampled_opts.sketch.epsilon);
}

TEST(SampledCp, DenseAlsUsesGaussianSketch) {
  Rng rng(33);
  DenseTensor x = DenseTensor::random_uniform({14, 12, 10}, rng);
  CpAlsOptions opts;
  opts.rank = 4;
  opts.max_iterations = 8;
  opts.seed = 3;
  const CpAlsResult exact = cp_als(x, opts);
  opts.sketch.sample_count = 400;
  const CpAlsResult sampled = cp_als(x, opts);
  EXPECT_TRUE(std::isfinite(sampled.final_fit));
  EXPECT_NEAR(sampled.final_fit, exact.final_fit, 0.15);
}

TEST(SampledCp, GradientDescentRunsSampled) {
  Rng rng(19);
  const SparseTensor x =
      SparseTensor::random_sparse_skewed({40, 32, 24}, 0.02, 1.1, rng);

  CpGradOptions opts;
  opts.rank = 4;
  opts.max_iterations = 15;
  opts.seed = 5;
  const CpGradResult exact = cp_gradient_descent(x, opts);

  CpGradOptions sopts = opts;
  sopts.sketch.sample_count = 512;
  sopts.sketch.refresh_every = 4;  // line searches share a fixed sketch
  sopts.sketch.seed = 2024;
  const CpGradResult sampled = cp_gradient_descent(x, sopts);

  EXPECT_GT(sampled.iterations, 0);
  EXPECT_TRUE(std::isfinite(sampled.final_objective));
  // The exact-evaluated fit of the sampled-trained model must be in the
  // neighborhood of the exact driver's (loose: descent paths differ).
  EXPECT_NEAR(sampled.final_fit, exact.final_fit, 0.25);

  const CpGradResult again = cp_gradient_descent(x, sopts);
  EXPECT_EQ(sampled.final_objective, again.final_objective);
}

// --------------------------------------------------------------------------
// Planner epsilon knob.

TEST(PlannerEpsilon, ZeroEpsilonNeverSelectsSampled) {
  PlannerOptions opts;
  opts.procs = 8;
  opts.flop_word_ratio = 1e-2;
  const PlanReport report = plan_mttkrp_model(
      {4821, 17818, 236}, 16, StorageFormat::kCoo, 5'000'000, opts);
  ASSERT_FALSE(report.ranked.empty());
  for (const ExecutionPlan& plan : report.ranked) {
    EXPECT_EQ(plan.path, ExecutionPath::kExact);
    EXPECT_EQ(plan.sample_count, 0);
    EXPECT_EQ(plan.predicted_error, 0.0);
  }
}

TEST(PlannerEpsilon, BudgetSelectsSampledOnLargeNnz) {
  PlannerOptions opts;
  opts.procs = 8;
  opts.flop_word_ratio = 1e-2;  // compute matters: nnz * R exact kernel cost
  opts.epsilon = 0.1;
  opts.top_k = 64;  // keep enough plans that the exact twins stay visible
  const PlanReport report = plan_mttkrp_model(
      {4821, 17818, 236}, 16, StorageFormat::kCoo, 5'000'000, opts);
  ASSERT_FALSE(report.ranked.empty());
  const ExecutionPlan& best = report.best();
  EXPECT_EQ(best.path, ExecutionPath::kSampled);
  EXPECT_EQ(best.sample_count, sample_count_for_epsilon(16, 0.1));
  EXPECT_GT(best.predicted_error, 0.0);
  EXPECT_LE(best.predicted_error, 0.1 + 1e-12);
  // The exact twins are still in the ranking (the knob adds candidates,
  // it never removes the deterministic answer).
  bool saw_exact = false;
  for (const ExecutionPlan& plan : report.ranked) {
    saw_exact = saw_exact || plan.path == ExecutionPath::kExact;
  }
  EXPECT_TRUE(saw_exact);

  // Dense input ignores the knob entirely.
  const PlanReport dense = plan_mttkrp_model(
      {64, 64, 64}, 16, StorageFormat::kDense, 0, opts);
  for (const ExecutionPlan& plan : dense.ranked) {
    EXPECT_EQ(plan.path, ExecutionPath::kExact);
  }

  // An explicit sample count overrides the epsilon-derived one.
  PlannerOptions fixed = opts;
  fixed.sample_count = 4096;
  const PlanReport fixed_report = plan_mttkrp_model(
      {4821, 17818, 236}, 16, StorageFormat::kCoo, 5'000'000, fixed);
  EXPECT_EQ(fixed_report.best().sample_count, 4096);
}

// --------------------------------------------------------------------------
// Plan-cache v2 -> v3 migration.

class SketchPlanCache : public ::testing::Test {
 protected:
  std::string scratch(const char* name) {
    return std::string(::testing::TempDir()) + name;
  }
};

TEST_F(SketchPlanCache, LegacyV2FileMigratesAndV3RoundTrips) {
  Rng rng(61);
  const SparseTensor coo =
      SparseTensor::random_sparse({24, 18, 14}, 0.04, rng);
  PlannerOptions opts;
  opts.procs = 4;
  opts.flop_word_ratio = 1e-2;

  // A v2 file — the pre-sketch layout — written by the versioned save.
  const std::string v2_path = scratch("sketch_cache_v2.txt");
  {
    PlanCache cache;
    cache.get_or_plan(StoredTensor::coo_view(coo), 4, opts);
    ASSERT_TRUE(cache.save(v2_path, nullptr, PlanCache::kLegacyFileVersion));
  }
  std::ifstream v2_in(v2_path);
  std::string header;
  std::getline(v2_in, header);
  EXPECT_EQ(header, "mtkplancache 2");

  // Migration: the v2 entries load and serve hits for epsilon = 0 queries
  // (the fingerprint of an exact-execution query is version-stable).
  PlanCache migrated;
  ASSERT_TRUE(migrated.load(v2_path));
  EXPECT_EQ(migrated.size(), 1u);
  const auto hit = migrated.get_or_plan(StoredTensor::coo_view(coo), 4, opts);
  EXPECT_EQ(migrated.hits(), 1u);
  EXPECT_EQ(migrated.misses(), 0u);
  EXPECT_EQ(hit->best().path, ExecutionPath::kExact);

  // v3 round-trip with a sampled plan in the report: the path, sample
  // count, and predicted error must all survive the file.
  PlannerOptions sketchy = opts;
  sketchy.epsilon = 0.2;
  const auto planned =
      migrated.get_or_plan(StoredTensor::coo_view(coo), 4, sketchy);
  const std::string v3_path = scratch("sketch_cache_v3.txt");
  ASSERT_TRUE(migrated.save(v3_path));
  std::ifstream v3_in(v3_path);
  std::getline(v3_in, header);
  EXPECT_EQ(header, "mtkplancache 3");

  PlanCache reloaded;
  ASSERT_TRUE(reloaded.load(v3_path));
  EXPECT_EQ(reloaded.size(), 2u);
  const auto restored =
      reloaded.get_or_plan(StoredTensor::coo_view(coo), 4, sketchy);
  EXPECT_EQ(reloaded.hits(), 1u);
  ASSERT_EQ(restored->ranked.size(), planned->ranked.size());
  for (std::size_t i = 0; i < planned->ranked.size(); ++i) {
    EXPECT_EQ(restored->ranked[i].path, planned->ranked[i].path);
    EXPECT_EQ(restored->ranked[i].sample_count,
              planned->ranked[i].sample_count);
    EXPECT_EQ(restored->ranked[i].predicted_error,
              planned->ranked[i].predicted_error);
  }
}

}  // namespace
}  // namespace mtk
