// Parallel gradient-based CP (the all-modes workload): the simulated-
// parallel driver shares the sequential optimizer core, so the two must
// produce matching decompositions while the parallel one charges the
// machine for every gradient evaluation; the autotuned path must plan the
// all-modes exchange through the planner.
#include <gtest/gtest.h>

#include <cmath>

#include "src/cp/par_cp_gradient.hpp"
#include "src/planner/plan_cache.hpp"
#include "src/planner/predict.hpp"
#include "src/support/rng.hpp"
#include "src/tensor/csf.hpp"

namespace mtk {
namespace {

CpGradOptions descent_options() {
  CpGradOptions o;
  o.rank = 3;
  o.max_iterations = 15;
  o.tolerance = 1e-5;
  o.seed = 7;
  return o;
}

TEST(ParCpGradient, MatchesSequentialOptimizer) {
  Rng rng(51);
  const DenseTensor x = DenseTensor::random_normal({8, 7, 6}, rng);
  const CpGradOptions o = descent_options();

  const CpGradResult seq = cp_gradient_descent(x, o);

  ParCpGradOptions po;
  po.descent = o;
  po.grid = {2, 2, 1};
  const ParCpGradResult par = par_cp_gradient(StoredTensor::dense_view(x), po);

  // Same seed, same optimizer core, numerically equivalent evaluations
  // (the parallel all-modes MTTKRP reduces in a different order, so allow
  // floating-point slack but require the same trajectory shape).
  EXPECT_EQ(par.descent.iterations, seq.iterations);
  EXPECT_EQ(par.descent.converged, seq.converged);
  EXPECT_NEAR(par.descent.final_fit, seq.final_fit, 1e-8);
  ASSERT_EQ(par.descent.trace.size(), seq.trace.size());
  for (std::size_t i = 0; i < seq.trace.size(); ++i) {
    EXPECT_NEAR(par.descent.trace[i].objective, seq.trace[i].objective,
                1e-6 * std::max(1.0, std::fabs(seq.trace[i].objective)));
  }

  // Every evaluation (initial + one per accepted/rejected trial) moved
  // data: at least the initial evaluation plus one per iteration.
  EXPECT_GE(par.evaluations, seq.iterations + 1);
  EXPECT_GT(par.total_words_max, 0);
  EXPECT_GT(par.total_messages_max, 0);
}

TEST(ParCpGradient, SparseBackendsAgree) {
  Rng rng(53);
  const SparseTensor coo = SparseTensor::random_sparse({10, 9, 8}, 0.15, rng);
  const CsfTensor csf = CsfTensor::from_coo(coo);
  ParCpGradOptions po;
  po.descent = descent_options();
  po.grid = {2, 1, 2};

  const ParCpGradResult rc = par_cp_gradient(coo, po);
  const ParCpGradResult rf = par_cp_gradient(csf, po);
  EXPECT_NEAR(rc.descent.final_fit, rf.descent.final_fit, 1e-8);
  // Block partitions + identical collective payloads: the bottleneck
  // traffic is storage-independent in Algorithm 3 form.
  EXPECT_EQ(rc.total_words_max, rf.total_words_max);
  EXPECT_EQ(rc.total_messages_max, rf.total_messages_max);
}

TEST(ParCpGradient, TrafficConsistentWithAllModesPrediction) {
  Rng rng(57);
  const DenseTensor x = DenseTensor::random_normal({8, 8, 8}, rng);
  ParCpGradOptions po;
  po.descent = descent_options();
  po.descent.max_iterations = 4;
  po.grid = {2, 2, 2};

  const ParCpGradResult par = par_cp_gradient(StoredTensor::dense_view(x), po);

  SparseTensor scratch;
  const StoredTensor xs = StoredTensor::dense_view(x);
  const PredictProblem p = make_predict_problem(xs, po.descent.rank, scratch);
  const CommPrediction mttkrp =
      predict_mttkrp_comm(p, ParAlgo::kAllModes, po.grid, 0);
  // Every evaluation pays one all-modes MTTKRP plus N Gram All-Reduces;
  // the all-modes share alone already lower-bounds the measured total.
  EXPECT_GE(static_cast<double>(par.total_words_max),
            static_cast<double>(par.evaluations) * mttkrp.words);
}

TEST(ParCpGradient, AutotunePlansTheAllModesExchange) {
  Rng rng(59);
  const SparseTensor coo = SparseTensor::random_sparse({16, 14, 12}, 0.1, rng);
  ParCpGradOptions po;
  po.descent = descent_options();
  po.descent.max_iterations = 8;
  po.autotune = true;
  po.procs = 8;
  po.latency_word_ratio = 1.0;

  const ParCpGradResult r = par_cp_gradient(coo, po);
  EXPECT_TRUE(r.autotuned);
  EXPECT_EQ(r.plan.algo, ParAlgo::kAllModes);
  int grid_procs = 1;
  for (int e : r.plan.grid) grid_procs *= e;
  EXPECT_EQ(grid_procs, 8);
  EXPECT_GT(r.descent.final_fit, 0.0);
  EXPECT_GT(r.total_words_max, 0);

  // plan_cp_gradient is the same planning entry the autotuner used: same
  // options must reproduce the same best plan (via the global cache).
  PlannerOptions popts;
  popts.procs = 8;
  popts.latency_word_ratio = 1.0;
  popts.reuse_count = po.descent.max_iterations;
  const PlanReport direct =
      plan_cp_gradient(StoredTensor::coo_view(coo), po.descent.rank, popts);
  EXPECT_EQ(direct.best().grid, r.plan.grid);
  EXPECT_EQ(direct.best().algo, r.plan.algo);
  EXPECT_TRUE(direct.best().collectives == r.plan.collectives);
}

}  // namespace
}  // namespace mtk
