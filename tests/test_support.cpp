// Unit tests for src/support: checked math, multi-index utilities, odometer.
#include <gtest/gtest.h>

#include "src/support/check.hpp"
#include "src/support/index.hpp"
#include "src/support/math_util.hpp"
#include "src/support/rng.hpp"

namespace mtk {
namespace {

TEST(CheckMacros, CheckThrowsInvalidArgument) {
  EXPECT_THROW(MTK_CHECK(false, "message ", 42), std::invalid_argument);
  EXPECT_NO_THROW(MTK_CHECK(true, "unused"));
}

TEST(CheckMacros, RequireThrowsRuntimeError) {
  EXPECT_THROW(MTK_REQUIRE(false, "state"), std::runtime_error);
}

TEST(CheckMacros, AssertThrowsLogicError) {
  EXPECT_THROW(MTK_ASSERT(false, "bug"), std::logic_error);
}

TEST(CheckMacros, MessageContainsContext) {
  try {
    MTK_CHECK(1 == 2, "got ", 7, " expected ", 8);
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("got 7 expected 8"), std::string::npos);
  }
}

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 3), 0);
  EXPECT_EQ(ceil_div(1, 3), 1);
  EXPECT_EQ(ceil_div(3, 3), 1);
  EXPECT_EQ(ceil_div(4, 3), 2);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_THROW(ceil_div(1, 0), std::invalid_argument);
  EXPECT_THROW(ceil_div(-1, 2), std::invalid_argument);
}

TEST(MathUtil, CheckedMulDetectsOverflow) {
  EXPECT_EQ(checked_mul(6, 7), 42);
  EXPECT_EQ(checked_mul(0, 1'000'000'000), 0);
  const index_t big = index_t{1} << 40;
  EXPECT_THROW(checked_mul(big, big), std::invalid_argument);
  EXPECT_THROW(checked_mul(-1, 2), std::invalid_argument);
}

TEST(MathUtil, Ipow) {
  EXPECT_EQ(ipow(2, 10), 1024);
  EXPECT_EQ(ipow(5, 0), 1);
  EXPECT_EQ(ipow(1, 100), 1);
  EXPECT_THROW(ipow(2, -1), std::invalid_argument);
  EXPECT_THROW(ipow(10, 30), std::invalid_argument);  // overflow
}

TEST(MathUtil, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(-4));
}

TEST(MathUtil, Ilog2) {
  EXPECT_EQ(ilog2(1), 0);
  EXPECT_EQ(ilog2(2), 1);
  EXPECT_EQ(ilog2(3), 1);
  EXPECT_EQ(ilog2(1024), 10);
  EXPECT_THROW(ilog2(0), std::invalid_argument);
}

TEST(MathUtil, NthRootFloor) {
  EXPECT_EQ(nth_root_floor(27, 3), 3);
  EXPECT_EQ(nth_root_floor(26, 3), 2);
  EXPECT_EQ(nth_root_floor(28, 3), 3);
  EXPECT_EQ(nth_root_floor(1, 5), 1);
  EXPECT_EQ(nth_root_floor(0, 2), 0);
  EXPECT_EQ(nth_root_floor(1'000'000, 2), 1000);
  // Near-cube values where floating point rounding could go either way.
  for (index_t b = 2; b <= 100; ++b) {
    EXPECT_EQ(nth_root_floor(b * b * b, 3), b) << "b=" << b;
    EXPECT_EQ(nth_root_floor(b * b * b - 1, 3), b - 1) << "b=" << b;
  }
}

TEST(Index, ShapeSizeAndValidation) {
  EXPECT_EQ(shape_size({3, 4, 5}), 60);
  EXPECT_EQ(shape_size({7}), 7);
  EXPECT_THROW(check_shape({}), std::invalid_argument);
  EXPECT_THROW(check_shape({3, 0, 5}), std::invalid_argument);
  EXPECT_NO_THROW(check_shape({1, 1, 1}));
}

TEST(Index, ColMajorStrides) {
  const shape_t strides = col_major_strides({3, 4, 5});
  EXPECT_EQ(strides, (shape_t{1, 3, 12}));
}

TEST(Index, LinearizeDelinearizeRoundTrip) {
  const shape_t dims{3, 4, 5};
  for (index_t lin = 0; lin < shape_size(dims); ++lin) {
    const multi_index_t idx = delinearize(lin, dims);
    EXPECT_EQ(linearize(idx, dims), lin);
  }
}

TEST(Index, LinearizeColumnMajorOrder) {
  // First index fastest: (1,0,0) maps to 1, (0,1,0) maps to I_1.
  const shape_t dims{3, 4, 5};
  EXPECT_EQ(linearize({0, 0, 0}, dims), 0);
  EXPECT_EQ(linearize({1, 0, 0}, dims), 1);
  EXPECT_EQ(linearize({0, 1, 0}, dims), 3);
  EXPECT_EQ(linearize({0, 0, 1}, dims), 12);
  EXPECT_EQ(linearize({2, 3, 4}, dims), 59);
}

TEST(Index, LinearizeBoundsChecked) {
  EXPECT_THROW(linearize({3, 0}, {3, 4}), std::invalid_argument);
  EXPECT_THROW(linearize({0, -1}, {3, 4}), std::invalid_argument);
  EXPECT_THROW(linearize({0}, {3, 4}), std::invalid_argument);
}

TEST(Odometer, VisitsAllIndicesInColumnMajorOrder) {
  const shape_t dims{2, 3};
  std::vector<multi_index_t> seen;
  for (Odometer od(dims); od.valid(); od.next()) {
    seen.push_back(od.index());
  }
  const std::vector<multi_index_t> expected{{0, 0}, {1, 0}, {0, 1},
                                            {1, 1}, {0, 2}, {1, 2}};
  EXPECT_EQ(seen, expected);
}

TEST(Odometer, RangedIteration) {
  Odometer od({1, 2}, {3, 4});
  EXPECT_EQ(od.count(), 4);
  std::vector<multi_index_t> seen;
  for (; od.valid(); od.next()) seen.push_back(od.index());
  const std::vector<multi_index_t> expected{{1, 2}, {2, 2}, {1, 3}, {2, 3}};
  EXPECT_EQ(seen, expected);
}

TEST(Odometer, EmptyRangeIsImmediatelyInvalid) {
  Odometer od({0, 0}, {3, 0});
  EXPECT_FALSE(od.valid());
  EXPECT_EQ(od.count(), 0);
}

TEST(Odometer, ResetRestartsIteration) {
  Odometer od(shape_t{2, 2});
  int count = 0;
  for (; od.valid(); od.next()) ++count;
  EXPECT_EQ(count, 4);
  od.reset();
  EXPECT_TRUE(od.valid());
  EXPECT_EQ(od.index(), (multi_index_t{0, 0}));
}

TEST(Odometer, InvalidRangesThrow) {
  EXPECT_THROW(Odometer({2}, {1}), std::invalid_argument);
  EXPECT_THROW(Odometer({-1}, {1}), std::invalid_argument);
  EXPECT_THROW(Odometer({0, 0}, {1}), std::invalid_argument);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, UniformRespectsRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
  EXPECT_THROW(rng.uniform(1.0, 1.0), std::invalid_argument);
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const index_t v = rng.uniform_int(2, 4);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 4);
    saw_lo |= (v == 2);
    saw_hi |= (v == 4);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

}  // namespace
}  // namespace mtk
