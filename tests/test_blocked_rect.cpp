// Tests for the rectangular-block generalization of Algorithm 2.
#include <gtest/gtest.h>

#include "src/mttkrp/blocked_rect.hpp"
#include "src/mttkrp/mttkrp.hpp"
#include "src/support/rng.hpp"

namespace mtk {
namespace {

struct Problem {
  DenseTensor x;
  std::vector<Matrix> factors;
};

Problem make_problem(const shape_t& dims, index_t rank, std::uint64_t seed) {
  Rng rng(seed);
  Problem p;
  p.x = DenseTensor::random_normal(dims, rng);
  for (index_t d : dims) {
    p.factors.push_back(Matrix::random_normal(d, rank, rng));
  }
  return p;
}

TEST(BlockedRect, MatchesReferenceOnVariousShapes) {
  const Problem p = make_problem({7, 12, 5}, 3, 11001);
  for (int mode = 0; mode < 3; ++mode) {
    const Matrix expected = mttkrp_reference(p.x, p.factors, mode);
    for (const shape_t& block :
         {shape_t{1, 1, 1}, shape_t{2, 5, 3}, shape_t{7, 12, 5},
          shape_t{3, 3, 3}, shape_t{100, 1, 2}}) {
      const Matrix got = mttkrp_blocked_rect(p.x, p.factors, mode, block);
      EXPECT_LT(max_abs_diff(got, expected), 1e-10)
          << "mode " << mode << " block " << block[0] << "," << block[1]
          << "," << block[2];
    }
  }
}

TEST(BlockedRect, ParallelMatchesSerial) {
  const Problem p = make_problem({9, 8, 10}, 4, 11003);
  const shape_t block{3, 4, 5};
  const Matrix serial = mttkrp_blocked_rect(p.x, p.factors, 1, block, false);
  const Matrix parallel = mttkrp_blocked_rect(p.x, p.factors, 1, block, true);
  EXPECT_LT(max_abs_diff(serial, parallel), 1e-10);
}

TEST(BlockedRect, UniformBlockMatchesCubicAlgorithm) {
  const Problem p = make_problem({8, 8, 8}, 3, 11005);
  const Matrix cubic = mttkrp_blocked(p.x, p.factors, 0, 3);
  const Matrix rect =
      mttkrp_blocked_rect(p.x, p.factors, 0, {3, 3, 3});
  EXPECT_LT(max_abs_diff(cubic, rect), 1e-12);
}

TEST(BlockShapeFits, GeneralizesEq11) {
  // prod + sum <= M.
  EXPECT_TRUE(block_shape_fits({4, 4, 4}, 64 + 12));
  EXPECT_FALSE(block_shape_fits({4, 4, 4}, 64 + 11));
  EXPECT_TRUE(block_shape_fits({1, 1}, 3));
  EXPECT_THROW(block_shape_fits({0, 2}, 100), std::invalid_argument);
}

TEST(TrafficModel, ReducesToEq12ForUniformBlocks) {
  // With b_k = b and weight (N-1) + 2 = N+1, the model is exactly Eq. (12).
  const shape_t dims{24, 24, 24};
  const index_t rank = 8;
  const index_t b = 6;
  const double model =
      blocked_rect_traffic_model(dims, rank, 1, {b, b, b});
  const double blocks = 4.0 * 4.0 * 4.0;
  EXPECT_DOUBLE_EQ(model, 24.0 * 24.0 * 24.0 +
                              blocks * 8.0 * (6.0 + 2.0 * 6.0 + 6.0));
}

TEST(OptimizeBlockShape, CubicalTensorGetsNearCubicalBlocks) {
  const shape_t dims{64, 64, 64};
  const shape_t block = optimize_block_shape(dims, 16, 0, 1000);
  // The cubical optimum for M = 1000 is b ~ 9; allow one step of asymmetry
  // from the greedy doubling schedule.
  for (index_t b : block) {
    EXPECT_GE(b, 6);
    EXPECT_LE(b, 14);
  }
  EXPECT_TRUE(block_shape_fits(block, 1000));
}

TEST(OptimizeBlockShape, SkewedTensorGetsSkewedBlocks) {
  // I = (256, 4, 4): the small dimensions saturate at 4 and the rest of the
  // memory goes to the large mode, beating the best cubical block.
  const shape_t dims{256, 4, 4};
  const index_t rank = 8;
  const index_t m = 500;
  const shape_t block = optimize_block_shape(dims, rank, 0, m);
  EXPECT_EQ(block[1], 4);
  EXPECT_EQ(block[2], 4);
  EXPECT_GT(block[0], 8);
  EXPECT_TRUE(block_shape_fits(block, m));

  const index_t cubical = max_block_size(3, m);  // 7 for M = 500
  const double rect_traffic =
      blocked_rect_traffic_model(dims, rank, 0, block);
  const double cubical_traffic = blocked_rect_traffic_model(
      dims, rank, 0, {cubical, cubical, cubical});
  EXPECT_LT(rect_traffic, cubical_traffic * 0.8);
}

TEST(OptimizeBlockShape, NeverExceedsTensorExtents) {
  const shape_t dims{3, 5, 2};
  const shape_t block = optimize_block_shape(dims, 4, 1, 1 << 20);
  EXPECT_LE(block[0], 3);
  EXPECT_LE(block[1], 5);
  EXPECT_LE(block[2], 2);
  // Plenty of memory: the whole tensor is one block.
  EXPECT_EQ(block, dims);
}

TEST(BlockedRect, Validation) {
  const Problem p = make_problem({4, 4}, 2, 11007);
  EXPECT_THROW(mttkrp_blocked_rect(p.x, p.factors, 0, {4}),
               std::invalid_argument);
  EXPECT_THROW(mttkrp_blocked_rect(p.x, p.factors, 0, {0, 4}),
               std::invalid_argument);
  EXPECT_THROW(optimize_block_shape({4, 4}, 2, 0, 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace mtk
