// Tests for the analytic cost models and the Figure 4 reproduction: cost
// formulas, grid search, CARMA regimes, and the paper's headline claims
// (matmul kink, ~25x gap at P=2^17, Alg3/Alg4 divergence point).
#include <gtest/gtest.h>

#include <cmath>

#include "src/costmodel/carma.hpp"
#include "src/costmodel/grid_search.hpp"
#include "src/costmodel/model.hpp"

namespace mtk {
namespace {

CostProblem cubical(int order, index_t dim, index_t rank) {
  CostProblem p;
  p.dims.assign(static_cast<std::size_t>(order), dim);
  p.rank = rank;
  return p;
}

TEST(Factorizations, EnumerationCountsAndProducts) {
  int count = 0;
  enumerate_factorizations(12, 2, [&](const std::vector<index_t>& f) {
    EXPECT_EQ(f[0] * f[1], 12);
    ++count;
  });
  EXPECT_EQ(count, 6);  // 1x12, 2x6, 3x4, 4x3, 6x2, 12x1

  count = 0;
  enumerate_factorizations(8, 3, [&](const std::vector<index_t>& f) {
    EXPECT_EQ(f[0] * f[1] * f[2], 8);
    ++count;
  });
  EXPECT_EQ(count, 10);  // compositions of 2^3 into 3 ordered factors

  count = 0;
  enumerate_factorizations(1, 3, [&](const std::vector<index_t>& f) {
    EXPECT_EQ(f, (std::vector<index_t>{1, 1, 1}));
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(StationaryCost, HandComputedExample) {
  // I_k = 8, R = 4, P = 8, grid 2x2x2:
  // each term (8/2 - 1) * 8*4/8 = 3 * 4 = 12; total 36.
  const CostProblem p = cubical(3, 8, 4);
  EXPECT_DOUBLE_EQ(stationary_comm_cost(p, {2, 2, 2}), 36.0);
  // 1D grid 8x1x1: (1-1)*4 + (8-1)*4 + (8-1)*4 = 56.
  EXPECT_DOUBLE_EQ(stationary_comm_cost(p, {8, 1, 1}), 56.0);
}

TEST(GeneralCost, HandComputedExample) {
  // I_k = 8, R = 8, P = 8, grid (2, 2, 2, 1):
  // (2-1)*512/8 + (8/4-1)*8 + (8/4-1)*8 + (8/2-1)*8 = 64 + 8 + 8 + 24.
  const CostProblem p = cubical(3, 8, 8);
  EXPECT_DOUBLE_EQ(general_comm_cost(p, {2, 2, 2, 1}), 104.0);
  // P0 = 1 reduces exactly to the stationary cost.
  EXPECT_DOUBLE_EQ(general_comm_cost(p, {1, 2, 2, 2}),
                   stationary_comm_cost(p, {2, 2, 2}));
}

TEST(GridSearch, SymmetricProblemPrefersCubicalGrid) {
  const CostProblem p = cubical(3, 64, 16);
  const GridSearchResult r = optimal_stationary_grid(p, 64);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.grid, (std::vector<index_t>{4, 4, 4}));
}

TEST(GridSearch, AsymmetricProblemSkewsTowardLargeDims) {
  // With I = (64, 4, 4), parallelizing the large mode avoids replicating
  // its large factor matrix.
  CostProblem p;
  p.dims = {64, 4, 4};
  p.rank = 8;
  const GridSearchResult r = optimal_stationary_grid(p, 16);
  ASSERT_TRUE(r.feasible);
  EXPECT_GE(r.grid[0], 8);  // most processors along the big mode
}

TEST(GridSearch, GeneralNeverWorseThanStationary) {
  const CostProblem p = cubical(3, 32, 32);
  for (index_t procs : {index_t{4}, index_t{64}, index_t{1} << 12}) {
    const GridSearchResult stat = optimal_stationary_grid(p, procs);
    const GridSearchResult gen = optimal_general_grid(p, procs);
    ASSERT_TRUE(stat.feasible && gen.feasible);
    EXPECT_LE(gen.cost, stat.cost + 1e-9) << "P = " << procs;
  }
}

TEST(GridSearch, InfeasibleWhenProcessorsExceedElements) {
  const CostProblem p = cubical(2, 4, 100);
  // P = 64 > 4*4: no N-way grid with P_k <= I_k exists.
  EXPECT_FALSE(optimal_stationary_grid(p, 64).feasible);
}

TEST(Carma, RegimeSelection) {
  // Square and huge P: 3 large dims.
  EXPECT_EQ(carma_comm_cost(1024, 1024, 1024, 4096).large_dims, 3);
  // One very long inner dimension, small P: 1 large dim (cost = 2*m*n, the
  // partial-output reduction).
  const CarmaCost one = carma_comm_cost(32, 1 << 20, 32, 4);
  EXPECT_EQ(one.large_dims, 1);
  EXPECT_DOUBLE_EQ(one.words, 2.0 * 32.0 * 32.0);
}

TEST(Carma, MonotoneNonIncreasingInP) {
  double previous = std::numeric_limits<double>::infinity();
  for (double procs = 1; procs <= (1 << 20); procs *= 4) {
    const double w = carma_comm_cost(1 << 15, 1 << 30, 1 << 15, procs).words;
    EXPECT_LE(w, previous);
    previous = w;
  }
}

TEST(Carma, PaperConfigurationKinkNearP215) {
  // Fig. 4: the matmul curve is flat (the 1D-regime cost ~ I^(1/N) R) until
  // P ~ 2^15, then decreases — the paper attributes the kink to the switch
  // from the 1D to the 2D algorithm. With our honest constants the flat
  // value is 2 * 2^30 and the switch lands within one octave of 2^15.
  const double i = std::pow(2.0, 45.0);
  const double r = std::pow(2.0, 15.0);
  const double flat = mttkrp_via_matmul_cost(3, i, r, 1.0).words;
  EXPECT_NEAR(flat, 2.0 * std::pow(2.0, 30.0), flat * 1e-9);
  // Still flat an octave below the kink.
  EXPECT_NEAR(mttkrp_via_matmul_cost(3, i, r, std::pow(2.0, 13.0)).words,
              flat, flat * 1e-9);
  // Decreasing an octave above, and in the 2D regime (the paper's "switch
  // from a 1D parallel algorithm to a 2D parallel algorithm").
  const CarmaCost after = mttkrp_via_matmul_cost(3, i, r, std::pow(2.0, 17.0));
  EXPECT_LT(after.words, flat * 0.75);
  EXPECT_EQ(after.large_dims, 2);
}

// ---------------------------------------------------------------------------
// Figure 4 reproduction properties.

class Figure4Test : public ::testing::Test {
 protected:
  static const std::vector<ScalingPoint>& series() {
    static const std::vector<ScalingPoint> s = [] {
      ScalingModelConfig cfg;  // paper defaults: N=3, I=2^45, R=2^15
      return strong_scaling_series(cfg);
    }();
    return s;
  }

  static const ScalingPoint& at_log2(int e) {
    return series()[static_cast<std::size_t>(e)];
  }
};

TEST_F(Figure4Test, SeriesCoversFullProcessorRange) {
  ASSERT_EQ(series().size(), 31u);
  EXPECT_EQ(series().front().procs, 1);
  EXPECT_EQ(series().back().procs, index_t{1} << 30);
}

TEST_F(Figure4Test, TensorAwareAlgorithmsAlwaysWin) {
  // The paper: "our proposed algorithms perform less communication than
  // matrix multiplication throughout the range of processors." A 1% slack
  // absorbs the exact-integer-grid -1 terms at the extreme P = 2^30 point,
  // where the two models tie.
  for (const ScalingPoint& pt : series()) {
    if (pt.procs == 1) continue;  // no communication at P=1
    EXPECT_LE(pt.stationary_words, pt.matmul_words * 1.01)
        << "P = " << pt.procs;
    EXPECT_LE(pt.general_words, pt.stationary_words + 1e-9)
        << "P = " << pt.procs;
  }
}

TEST_F(Figure4Test, OrderOfMagnitudeGapAtP217) {
  // The paper reports "approximately 25x less communication" at P = 2^17.
  // With our exact Eq. (14) grids and honest CARMA constants the measured
  // gap is ~16x — same direction and order of magnitude; the residual
  // factor traces to the paper's matmul curve remaining on its 1D branch
  // there (see EXPERIMENTS.md).
  const ScalingPoint& pt = at_log2(17);
  const double gap = pt.matmul_words / pt.stationary_words;
  EXPECT_GT(gap, 8.0);
  EXPECT_LT(gap, 40.0);
}

TEST_F(Figure4Test, AlgorithmsDivergeOnlyAtLargeP) {
  // "Algorithm 3 and Algorithm 4 diverge only when P >= 2^27."
  int first_divergence = -1;
  for (int e = 0; e <= 30; ++e) {
    const ScalingPoint& pt = at_log2(e);
    if (pt.general_words < pt.stationary_words * 0.99) {
      first_divergence = e;
      break;
    }
  }
  ASSERT_GE(first_divergence, 0) << "Algorithm 4 never wins";
  EXPECT_GE(first_divergence, 20);  // deep into the strong-scaling range
  EXPECT_LE(first_divergence, 28);
}

TEST_F(Figure4Test, GeneralAlgorithmTracksLowerBound) {
  // Algorithm 4 is communication optimal (Theorem 6.2): its modeled cost
  // must stay within a small constant of the proved lower bound
  // max(Theorem 4.2, Theorem 4.3), and can never fall below it. Metric
  // note: Eq. (18) counts words *sent* per processor; the theorems bound
  // sends *plus* receives, and the ring collectives receive as much as they
  // send — hence the factor 2 on the model side.
  for (const ScalingPoint& pt : series()) {
    if (pt.procs < 8) continue;
    ASSERT_GT(pt.lower_bound_words, 0.0) << "P = " << pt.procs;
    const double sends_plus_receives = 2.0 * pt.general_words;
    EXPECT_LE(sends_plus_receives, 12.0 * pt.lower_bound_words)
        << "P = " << pt.procs;
    EXPECT_GE(sends_plus_receives, 0.99 * pt.lower_bound_words)
        << "P = " << pt.procs;
  }
}

TEST_F(Figure4Test, CostsDecreaseWithPBeyondSmallP) {
  // The exact Eq. (14)/(18) costs rise from zero at P=1 to a peak at P=4
  // (the -1 terms dominate at tiny P), then decrease monotonically — the
  // strong-scaling regime the paper plots.
  for (std::size_t i = 3; i < series().size(); ++i) {
    EXPECT_LE(series()[i].stationary_words,
              series()[i - 1].stationary_words + 1e-9)
        << "P = " << series()[i].procs;
    EXPECT_LE(series()[i].general_words,
              series()[i - 1].general_words + 1e-9)
        << "P = " << series()[i].procs;
  }
}

TEST_F(Figure4Test, StationaryMatchesClosedFormAtPowersOfEight) {
  // When P = p^3 with p | I_k, the optimal grid is cubical and the cost is
  // exactly 3 (P/p - 1) I_k R / P = ~3 R (I/P)^(1/3) at large P.
  const ScalingPoint& pt = at_log2(12);  // P = 4096 = 16^3
  EXPECT_EQ(pt.stationary_grid,
            (std::vector<index_t>{16, 16, 16}));
  const double expect =
      3.0 * (4096.0 / 16.0 - 1.0) *
      (std::pow(2.0, 15.0) * std::pow(2.0, 15.0) / 4096.0);
  EXPECT_NEAR(pt.stationary_words, expect, expect * 1e-12);
}

TEST(ScalingModel, ValidatesConfig) {
  ScalingModelConfig cfg;
  cfg.order = 1;
  EXPECT_THROW(strong_scaling_series(cfg), std::invalid_argument);
  cfg.order = 3;
  cfg.min_log2_procs = 5;
  cfg.max_log2_procs = 2;
  EXPECT_THROW(strong_scaling_series(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace mtk
