// Unit tests for the Matrix substrate: GEMM, Gram, Hadamard, Cholesky
// solves, norms, and column scaling.
#include <gtest/gtest.h>

#include <cmath>

#include "src/support/rng.hpp"
#include "src/tensor/matrix.hpp"

namespace mtk {
namespace {

Matrix naive_gemm(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (index_t l = 0; l < a.cols(); ++l) acc += a(i, l) * b(l, j);
      c(i, j) = acc;
    }
  }
  return c;
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(3, 4, 1.5);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.size(), 12);
  EXPECT_DOUBLE_EQ(m(2, 3), 1.5);
  m(1, 2) = -7.0;
  EXPECT_DOUBLE_EQ(m(1, 2), -7.0);
  EXPECT_THROW(Matrix(-1, 2), std::invalid_argument);
}

TEST(Matrix, Identity) {
  const Matrix eye = Matrix::identity(4);
  for (index_t i = 0; i < 4; ++i) {
    for (index_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(eye(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(Gemm, MatchesNaiveOnRandomShapes) {
  Rng rng(11);
  const index_t shapes[][3] = {{1, 1, 1},   {2, 3, 4},   {5, 1, 7},
                               {64, 64, 64}, {65, 63, 67}, {128, 3, 2}};
  for (const auto& s : shapes) {
    const Matrix a = Matrix::random_normal(s[0], s[1], rng);
    const Matrix b = Matrix::random_normal(s[1], s[2], rng);
    Matrix c(s[0], s[2]);
    gemm(a, b, c);
    EXPECT_LT(max_abs_diff(c, naive_gemm(a, b)), 1e-10)
        << s[0] << "x" << s[1] << "x" << s[2];
  }
}

TEST(Gemm, AccumulateAddsIntoC) {
  Rng rng(13);
  const Matrix a = Matrix::random_normal(5, 6, rng);
  const Matrix b = Matrix::random_normal(6, 7, rng);
  Matrix c(5, 7, 1.0);
  gemm(a, b, c, /*accumulate=*/true);
  Matrix expected = naive_gemm(a, b);
  for (index_t i = 0; i < 5; ++i) {
    for (index_t j = 0; j < 7; ++j) expected(i, j) += 1.0;
  }
  EXPECT_LT(max_abs_diff(c, expected), 1e-10);
}

TEST(Gemm, ShapeMismatchThrows) {
  Matrix a(2, 3), b(4, 5), c(2, 5);
  EXPECT_THROW(gemm(a, b, c), std::invalid_argument);
  Matrix b2(3, 5), c_bad(3, 5);
  EXPECT_THROW(gemm(a, b2, c_bad), std::invalid_argument);
}

TEST(Gram, MatchesExplicitTransposeProduct) {
  Rng rng(17);
  const Matrix a = Matrix::random_normal(20, 6, rng);
  const Matrix g = gram(a);
  // G = A' A via gemm_tn.
  const Matrix expected = gemm_tn(a, a);
  EXPECT_LT(max_abs_diff(g, expected), 1e-10);
  // Symmetry.
  for (index_t p = 0; p < 6; ++p) {
    for (index_t q = 0; q < 6; ++q) {
      EXPECT_DOUBLE_EQ(g(p, q), g(q, p));
    }
  }
}

TEST(GemmTn, MatchesNaive) {
  Rng rng(19);
  const Matrix a = Matrix::random_normal(8, 3, rng);
  const Matrix b = Matrix::random_normal(8, 5, rng);
  const Matrix c = gemm_tn(a, b);
  for (index_t p = 0; p < 3; ++p) {
    for (index_t q = 0; q < 5; ++q) {
      double acc = 0.0;
      for (index_t i = 0; i < 8; ++i) acc += a(i, p) * b(i, q);
      EXPECT_NEAR(c(p, q), acc, 1e-12);
    }
  }
  EXPECT_THROW(gemm_tn(Matrix(3, 2), Matrix(4, 2)), std::invalid_argument);
}

TEST(Hadamard, ElementwiseProduct) {
  Matrix a(2, 2), b(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
  const Matrix c = hadamard(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 5);
  EXPECT_DOUBLE_EQ(c(0, 1), 12);
  EXPECT_DOUBLE_EQ(c(1, 0), 21);
  EXPECT_DOUBLE_EQ(c(1, 1), 32);
  EXPECT_THROW(hadamard(a, Matrix(3, 2)), std::invalid_argument);
}

TEST(SolveSpdRight, RecoversKnownSolution) {
  Rng rng(23);
  // Build a well-conditioned SPD matrix S = Q' Q + I.
  const Matrix q = Matrix::random_normal(6, 6, rng);
  Matrix s = gram(q);
  for (index_t i = 0; i < 6; ++i) s(i, i) += 1.0;
  const Matrix x_true = Matrix::random_normal(4, 6, rng);
  // rhs = X * S.
  Matrix rhs(4, 6);
  gemm(x_true, s, rhs);
  const Matrix x = solve_spd_right(s, rhs);
  EXPECT_LT(max_abs_diff(x, x_true), 1e-8);
}

TEST(SolveSpdRight, HandlesSemidefiniteWithJitter) {
  // Rank-1 Gram matrix: classic CP-ALS degeneracy (collinear factors).
  Matrix s(3, 3);
  for (index_t i = 0; i < 3; ++i) {
    for (index_t j = 0; j < 3; ++j) s(i, j) = 1.0;
  }
  Matrix rhs(2, 3, 1.0);
  EXPECT_NO_THROW({
    const Matrix x = solve_spd_right(s, rhs);
    EXPECT_EQ(x.rows(), 2);
  });
}

TEST(SolveSpdRight, RejectsNonSquare) {
  EXPECT_THROW(solve_spd_right(Matrix(2, 3), Matrix(2, 3)),
               std::invalid_argument);
  EXPECT_THROW(solve_spd_right(Matrix(3, 3), Matrix(2, 4)),
               std::invalid_argument);
}

TEST(Matrix, ColumnNormsAndScaling) {
  Matrix m(2, 2);
  m(0, 0) = 3.0; m(1, 0) = 4.0;  // column 0 norm 5
  m(0, 1) = 0.0; m(1, 1) = 2.0;  // column 1 norm 2
  const auto norms = m.column_norms();
  EXPECT_DOUBLE_EQ(norms[0], 5.0);
  EXPECT_DOUBLE_EQ(norms[1], 2.0);
  m.scale_columns_inv(norms);
  const auto after = m.column_norms();
  EXPECT_NEAR(after[0], 1.0, 1e-12);
  EXPECT_NEAR(after[1], 1.0, 1e-12);
  m.scale_columns(norms);
  EXPECT_DOUBLE_EQ(m(1, 0), 4.0);
  EXPECT_THROW(m.scale_columns_inv({1.0}), std::invalid_argument);
  EXPECT_THROW(m.scale_columns_inv({0.0, 1.0}), std::invalid_argument);
}

TEST(Matrix, Norms) {
  Matrix m(2, 2);
  m(0, 0) = 3.0; m(0, 1) = -4.0;
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
  EXPECT_DOUBLE_EQ(m.max_abs(), 4.0);
}

TEST(Matrix, DotAndMaxAbsDiff) {
  Matrix a(2, 2, 2.0), b(2, 2, 3.0);
  EXPECT_DOUBLE_EQ(dot(a, b), 24.0);
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 1.0);
  EXPECT_THROW(dot(a, Matrix(1, 2)), std::invalid_argument);
}

}  // namespace
}  // namespace mtk
