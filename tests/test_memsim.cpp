// Tests for the two-level memory simulator: hit/miss semantics, write-back
// behaviour, LRU vs FIFO vs Belady-OPT, and the OPT-dominates-LRU property.
#include <gtest/gtest.h>

#include "src/memsim/memory_model.hpp"
#include "src/support/rng.hpp"

namespace mtk {
namespace {

TEST(FastMemory, ColdReadsAreLoads) {
  FastMemory mem(4, ReplacementPolicy::kLru);
  mem.read(10);
  mem.read(11);
  mem.read(10);  // hit
  EXPECT_EQ(mem.stats().loads, 2);
  EXPECT_EQ(mem.stats().read_hits, 1);
  EXPECT_EQ(mem.stats().stores, 0);
  EXPECT_EQ(mem.resident(), 2);
}

TEST(FastMemory, CapacityEvictsLruVictim) {
  FastMemory mem(2, ReplacementPolicy::kLru);
  mem.read(1);
  mem.read(2);
  mem.read(1);  // 1 becomes MRU; LRU order now 2, 1
  mem.read(3);  // evicts 2
  mem.read(1);  // still resident -> hit
  mem.read(2);  // miss again
  EXPECT_EQ(mem.stats().loads, 4);
  EXPECT_EQ(mem.stats().read_hits, 2);
}

TEST(FastMemory, FifoIgnoresRecency) {
  FastMemory mem(2, ReplacementPolicy::kFifo);
  mem.read(1);
  mem.read(2);
  mem.read(1);  // hit, but does not refresh FIFO position
  mem.read(3);  // evicts 1 (oldest insertion)
  mem.read(1);  // miss under FIFO
  EXPECT_EQ(mem.stats().loads, 4);
}

TEST(FastMemory, DirtyEvictionCountsStore) {
  FastMemory mem(1, ReplacementPolicy::kLru);
  mem.write(5);  // write-allocate, no load
  mem.read(6);   // evicts dirty 5 -> one store, one load
  EXPECT_EQ(mem.stats().loads, 1);
  EXPECT_EQ(mem.stats().stores, 1);
}

TEST(FastMemory, WriteAllocateNeedsNoLoad) {
  FastMemory mem(4, ReplacementPolicy::kLru);
  mem.write(1);
  mem.write(2);
  EXPECT_EQ(mem.stats().loads, 0);
  mem.flush();
  EXPECT_EQ(mem.stats().stores, 2);
}

TEST(FastMemory, CleanEvictionIsFree) {
  FastMemory mem(1, ReplacementPolicy::kLru);
  mem.read(1);
  mem.read(2);  // evicts clean 1, no store
  EXPECT_EQ(mem.stats().stores, 0);
  mem.flush();
  EXPECT_EQ(mem.stats().stores, 0);
}

TEST(FastMemory, ReadModifyWritePattern) {
  // The accumulation pattern of Algorithm 1: read B, write B.
  FastMemory mem(2, ReplacementPolicy::kLru);
  mem.read(7);
  mem.write(7);
  mem.read(7);
  mem.write(7);
  EXPECT_EQ(mem.stats().loads, 1);
  EXPECT_EQ(mem.stats().write_hits, 2);
  mem.flush();
  EXPECT_EQ(mem.stats().stores, 1);  // single dirty word
}

TEST(FastMemory, FlushEmptiesResidency) {
  FastMemory mem(4, ReplacementPolicy::kLru);
  mem.write(1);
  mem.read(2);
  mem.flush();
  EXPECT_EQ(mem.resident(), 0);
  mem.read(1);  // must miss again after flush
  EXPECT_EQ(mem.stats().loads, 2);
}

TEST(FastMemory, InvalidCapacityThrows) {
  EXPECT_THROW(FastMemory(0, ReplacementPolicy::kLru),
               std::invalid_argument);
}

TEST(SimulateOptimal, MatchesLruWhenNoChoiceExists) {
  // Capacity 1: every distinct consecutive access misses under any policy.
  std::vector<TraceEntry> trace{{1, false}, {2, false}, {1, false},
                                {2, false}};
  const MemoryStats opt = simulate_optimal(1, trace);
  EXPECT_EQ(opt.loads, 4);
}

TEST(SimulateOptimal, KeepsTheFartherUsedWord) {
  // Classic Belady example: with capacity 2 and trace 1 2 3 1 2, OPT evicts
  // 2 (or keeps both 1,2... ): accesses: 1m 2m 3m(evict the one used
  // farthest: 2) 1h 2m -> 4 loads. LRU evicts 1 at the 3 -> 1m 2m 3m 1m 2m
  // = 5 loads.
  std::vector<TraceEntry> trace{
      {1, false}, {2, false}, {3, false}, {1, false}, {2, false}};
  const MemoryStats opt = simulate_optimal(2, trace);
  EXPECT_EQ(opt.loads, 4);

  FastMemory lru(2, ReplacementPolicy::kLru);
  for (const TraceEntry& e : trace) lru.read(e.addr);
  EXPECT_EQ(lru.stats().loads, 5);
}

TEST(SimulateOptimal, NeverWorseThanLruOnRandomTraces) {
  Rng rng(401);
  for (int trial = 0; trial < 20; ++trial) {
    const index_t capacity = rng.uniform_int(2, 8);
    std::vector<TraceEntry> trace;
    for (int t = 0; t < 500; ++t) {
      trace.push_back({rng.uniform_int(0, 20), rng.uniform(0, 1) < 0.3});
    }
    const MemoryStats opt = simulate_optimal(capacity, trace);

    FastMemory lru(capacity, ReplacementPolicy::kLru);
    for (const TraceEntry& e : trace) {
      if (e.is_write) {
        lru.write(e.addr);
      } else {
        lru.read(e.addr);
      }
    }
    lru.flush();
    EXPECT_LE(opt.traffic(), lru.stats().traffic())
        << "capacity " << capacity << " trial " << trial;
  }
}

TEST(SimulateOptimal, CountsFinalDirtyWords) {
  std::vector<TraceEntry> trace{{1, true}, {2, true}, {3, false}};
  const MemoryStats opt = simulate_optimal(8, trace);
  EXPECT_EQ(opt.loads, 1);   // only the read misses with a load
  EXPECT_EQ(opt.stores, 2);  // both dirty words written back at the end
}

TEST(Sinks, RecordingAndDistinct) {
  RecordingSink rec;
  rec.read(3);
  rec.write(3);
  rec.read(4);
  ASSERT_EQ(rec.trace().size(), 3u);
  EXPECT_FALSE(rec.trace()[0].is_write);
  EXPECT_TRUE(rec.trace()[1].is_write);

  DistinctSink distinct;
  distinct.read(3);
  distinct.write(3);
  distinct.read(4);
  EXPECT_EQ(distinct.distinct(), 2);
}

}  // namespace
}  // namespace mtk
