// Tests for the Theorem 6.1 hypothesis checker, reproducing the paper's
// Section VI-A worked example: with beta = 1 - alpha = 1/100, gamma = 100,
// delta = epsilon = 1/10 and N <= 10 cubical tensors, the hypotheses hold
// for M between ~10^4 and min(I/1000, sqrt(NIR)/10)-ish bounds.
#include <gtest/gtest.h>

#include <cmath>

#include "src/bounds/optimality.hpp"
#include "src/bounds/sequential_bounds.hpp"
#include "src/mttkrp/mttkrp.hpp"

namespace mtk {
namespace {

Theorem61Constants paper_constants() {
  Theorem61Constants c;
  c.alpha = 0.99;
  c.beta = 0.01;
  c.gamma = 100.0;
  c.delta = 0.1;
  c.epsilon = 0.1;
  return c;
}

TEST(Theorem61, PaperWorkedExampleHolds) {
  // N = 3, I_k = 2^10 (I = 2^30), R = 64: generous middle-of-range M.
  const shape_t dims{1024, 1024, 1024};
  const HypothesisReport report = check_theorem61_hypotheses(
      dims, 64, index_t{1} << 16, paper_constants());
  EXPECT_TRUE(report.all_hold) << (report.failures.empty()
                                       ? ""
                                       : report.failures.front());
}

TEST(Theorem61, TooSmallMemoryViolatesEq25Or26) {
  const shape_t dims{1024, 1024, 1024};
  const HypothesisReport report =
      check_theorem61_hypotheses(dims, 64, 100, paper_constants());
  EXPECT_FALSE(report.all_hold);
  bool lower_violation = false;
  for (const std::string& f : report.failures) {
    if (f.find("Eq.(25)") != std::string::npos ||
        f.find("Eq.(26)") != std::string::npos) {
      lower_violation = true;
    }
  }
  EXPECT_TRUE(lower_violation);
}

TEST(Theorem61, TooLargeMemoryViolatesUpperHypotheses) {
  // M close to the tensor size breaks Eq. (27)/(28)/(29).
  const shape_t dims{64, 64, 64};
  const HypothesisReport report = check_theorem61_hypotheses(
      dims, 8, shape_size(dims), paper_constants());
  EXPECT_FALSE(report.all_hold);
  bool upper_violation = false;
  for (const std::string& f : report.failures) {
    if (f.find("Eq.(27)") != std::string::npos ||
        f.find("Eq.(28)") != std::string::npos ||
        f.find("Eq.(29)") != std::string::npos) {
      upper_violation = true;
    }
  }
  EXPECT_TRUE(upper_violation);
}

TEST(Theorem61, MemoryRangeMatchesPaperOrderOfMagnitude) {
  // The paper: "the left-hand inequalities require that the fast memory
  // size M is bounded below by 10^4 ... and above by the minimum of I/1000
  // and sqrt(NIR)/10" (N <= 10, cubical). The paper's sqrt(NIR)/10 is an
  // informal approximation of Eq. (29)'s exact cap
  // ((1/3^(2-1/N) - eps) NIR)^(N/(2N-1)); we verify against the exact
  // expressions and confirm the paper's lower-edge ballpark.
  const shape_t dims{1024, 1024, 1024};
  const Theorem61Constants c = paper_constants();
  const MemoryRange range = theorem61_memory_range(dims, 64, c);
  ASSERT_FALSE(range.empty());
  // Paper's illustration: lower edge ~10^4.
  EXPECT_GT(range.min_words, 1000);
  EXPECT_LT(range.min_words, 100000);
  // Exact upper caps from Eqs. (27)-(29).
  const double i = std::pow(2.0, 30.0);
  const double eq29 = std::pow(
      (1.0 / std::pow(3.0, 5.0 / 3.0) - c.epsilon) * 3.0 * i * 64.0,
      3.0 / 5.0);
  const double eq28 = ((1.0 - c.delta) * i + 3.0 * 1024.0 * 64.0) / 2.0;
  const double upper_exact = std::min(eq28, eq29);
  EXPECT_GT(static_cast<double>(range.max_words), upper_exact * 0.5);
  EXPECT_LT(static_cast<double>(range.max_words), upper_exact * 1.5);
}

TEST(Theorem61, RangeIsContiguous) {
  // Hypotheses are monotone in M from each side, so feasibility must be an
  // interval: everything inside holds, immediately outside fails.
  const shape_t dims{512, 512, 512};
  const Theorem61Constants c = paper_constants();
  const MemoryRange range = theorem61_memory_range(dims, 32, c);
  ASSERT_FALSE(range.empty());
  EXPECT_TRUE(check_theorem61_hypotheses(dims, 32, range.min_words, c)
                  .all_hold);
  EXPECT_TRUE(check_theorem61_hypotheses(dims, 32, range.max_words, c)
                  .all_hold);
  EXPECT_FALSE(
      check_theorem61_hypotheses(dims, 32, range.min_words - 1, c).all_hold);
  EXPECT_FALSE(
      check_theorem61_hypotheses(dims, 32, range.max_words + 1, c).all_hold);
}

TEST(Theorem61, BlockSizeSatisfiesEq11InsideTheRange) {
  // Whenever the hypotheses hold, b = floor((alpha M)^(1/N)) must satisfy
  // b^N + N b <= M — that is the point of Eq. (25).
  const shape_t dims{1024, 1024, 1024};
  const Theorem61Constants c = paper_constants();
  const MemoryRange range = theorem61_memory_range(dims, 64, c);
  ASSERT_FALSE(range.empty());
  for (index_t m : {range.min_words, (range.min_words + range.max_words) / 2,
                    range.max_words}) {
    const index_t b = theorem61_block_size(3, m, c.alpha);
    EXPECT_LE(ipow(b, 3) + 3 * b, m) << "M = " << m;
    EXPECT_GE(b, 1);
  }
}

TEST(Theorem61, ProvableGapFormula) {
  const Theorem61Constants c = paper_constants();
  // 2 * gamma / (beta * min(delta, epsilon)) = 2*100 / (0.01 * 0.1).
  EXPECT_DOUBLE_EQ(theorem61_provable_gap(c), 200000.0);
  // The *measured* gap (see bench_seq_traffic) is orders of magnitude
  // smaller — the theorem's constants are extremely loose, which the paper
  // acknowledges by choosing them for simplicity.
}

TEST(Theorem61, ConstantValidation) {
  const shape_t dims{64, 64, 64};
  Theorem61Constants c = paper_constants();
  c.alpha = 1.5;
  EXPECT_THROW(check_theorem61_hypotheses(dims, 8, 1024, c),
               std::invalid_argument);
  c = paper_constants();
  c.gamma = 1.0;  // must exceed 1 + 1/N
  EXPECT_THROW(check_theorem61_hypotheses(dims, 8, 1024, c),
               std::invalid_argument);
  c = paper_constants();
  c.epsilon = 0.5;  // must be below 1/3^(2-1/N) ~ 0.16
  EXPECT_THROW(check_theorem61_hypotheses(dims, 8, 1024, c),
               std::invalid_argument);
}

}  // namespace
}  // namespace mtk
