// Tests for the dense two-phase simplex solver.
#include <gtest/gtest.h>

#include "src/bounds/simplex.hpp"

namespace mtk {
namespace {

TEST(Simplex, SimpleTwoVariableProblem) {
  // min x + y s.t. x + 2y >= 4, 3x + y >= 3.
  // Optimum at intersection: x = 2/5, y = 9/5, objective 11/5.
  const LpResult r = lp_solve_min({{1, 2}, {3, 1}}, {4, 3}, {1, 1});
  ASSERT_TRUE(r.feasible);
  ASSERT_TRUE(r.bounded);
  EXPECT_NEAR(r.objective, 11.0 / 5.0, 1e-9);
  EXPECT_NEAR(r.x[0], 2.0 / 5.0, 1e-9);
  EXPECT_NEAR(r.x[1], 9.0 / 5.0, 1e-9);
}

TEST(Simplex, SingleConstraint) {
  // min 2x + 3y s.t. x + y >= 10 -> all weight on the cheaper variable.
  const LpResult r = lp_solve_min({{1, 1}}, {10}, {2, 3});
  ASSERT_TRUE(r.feasible && r.bounded);
  EXPECT_NEAR(r.objective, 20.0, 1e-9);
  EXPECT_NEAR(r.x[0], 10.0, 1e-9);
}

TEST(Simplex, InfeasibleDetected) {
  // x >= 2 and -x >= -1 (x <= 1) cannot both hold.
  const LpResult r = lp_solve_min({{1}, {-1}}, {2, -1}, {1});
  EXPECT_FALSE(r.feasible);
}

TEST(Simplex, UnboundedDetected) {
  // min -x s.t. x >= 1: objective decreases without bound.
  const LpResult r = lp_solve_min({{1}}, {1}, {-1});
  ASSERT_TRUE(r.feasible);
  EXPECT_FALSE(r.bounded);
}

TEST(Simplex, NegativeRhsHandled) {
  // min x s.t. -x >= -5 (x <= 5), x >= 2 -> minimum 2.
  const LpResult r = lp_solve_min({{-1}, {1}}, {-5, 2}, {1});
  ASSERT_TRUE(r.feasible && r.bounded);
  EXPECT_NEAR(r.objective, 2.0, 1e-9);
}

TEST(Simplex, DegenerateConstraintsDoNotCycle) {
  // Multiple redundant constraints meeting at one vertex.
  const LpResult r = lp_solve_min(
      {{1, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 2}}, {1, 1, 1, 2, 4}, {1, 1});
  ASSERT_TRUE(r.feasible && r.bounded);
  EXPECT_NEAR(r.objective, 2.0, 1e-9);
}

TEST(Simplex, MaxVariantByDuality) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (classic textbook LP).
  // Optimum: x = 2, y = 6, objective 36.
  const LpResult r = lp_solve_max({{1, 0}, {0, 2}, {3, 2}}, {4, 12, 18},
                                  {3, 5});
  ASSERT_TRUE(r.feasible && r.bounded);
  EXPECT_NEAR(r.objective, 36.0, 1e-9);
  EXPECT_NEAR(r.x[0], 2.0, 1e-9);
  EXPECT_NEAR(r.x[1], 6.0, 1e-9);
}

TEST(Simplex, StrongDualityOnMttkrpLp) {
  // Primal: min 1's s.t. Delta s >= 1 (the Lemma 4.2 LP, N = 3).
  // Dual:   max 1't s.t. Delta' t <= 1. Both optima must be 2 - 1/N.
  const std::vector<std::vector<double>> delta{
      {1, 0, 0, 1},
      {0, 1, 0, 1},
      {0, 0, 1, 1},
      {1, 1, 1, 0},
  };
  const LpResult primal =
      lp_solve_min(delta, {1, 1, 1, 1}, {1, 1, 1, 1});
  ASSERT_TRUE(primal.feasible && primal.bounded);
  EXPECT_NEAR(primal.objective, 2.0 - 1.0 / 3.0, 1e-9);

  std::vector<std::vector<double>> delta_t(4, std::vector<double>(4));
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) delta_t[i][j] = delta[j][i];
  }
  const LpResult dual = lp_solve_max(delta_t, {1, 1, 1, 1}, {1, 1, 1, 1});
  ASSERT_TRUE(dual.feasible && dual.bounded);
  EXPECT_NEAR(dual.objective, primal.objective, 1e-9);
}

TEST(Simplex, ValidatesShapes) {
  EXPECT_THROW(lp_solve_min({{1, 2}}, {1, 2}, {1, 1}),
               std::invalid_argument);
  EXPECT_THROW(lp_solve_min({{1}}, {1}, {1, 1}), std::invalid_argument);
}

TEST(Simplex, EqualityLikeConstraintPair) {
  // x + y >= 3 and -(x + y) >= -3 pin x + y = 3; min 2x + y -> x=0, y=3.
  const LpResult r =
      lp_solve_min({{1, 1}, {-1, -1}}, {3, -3}, {2, 1});
  ASSERT_TRUE(r.feasible && r.bounded);
  EXPECT_NEAR(r.objective, 3.0, 1e-9);
  EXPECT_NEAR(r.x[0], 0.0, 1e-9);
  EXPECT_NEAR(r.x[1], 3.0, 1e-9);
}

}  // namespace
}  // namespace mtk
