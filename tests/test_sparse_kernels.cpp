// Agreement battery for the sparse kernel variants: every parallel
// reduction schedule (privatized / atomic / tiled / auto) must match the
// serial reference kernel bit-tightly across thread counts 1-8, uniform and
// skewed nonzero patterns, and every output mode — for both the COO and CSF
// kernels, including non-root CSF targets (the tile-filtered walk). Also
// covers the ThreadArena reuse contract: steady-state kernel calls grow the
// arena footprint by zero words.
#include <gtest/gtest.h>

#include "src/mttkrp/dispatch.hpp"
#include "src/mttkrp/thread_arena.hpp"
#include "src/support/omp_threads.hpp"
#include "src/support/rng.hpp"

namespace mtk {
namespace {

constexpr double kTol = 1e-10;

using ThreadCountGuard = OmpThreadCountGuard;

std::vector<Matrix> make_factors(const shape_t& dims, index_t rank,
                                 Rng& rng) {
  std::vector<Matrix> factors;
  for (index_t d : dims) {
    factors.push_back(Matrix::random_normal(d, rank, rng));
  }
  return factors;
}

constexpr SparseKernelVariant kVariants[] = {
    SparseKernelVariant::kAuto, SparseKernelVariant::kPrivatized,
    SparseKernelVariant::kAtomic, SparseKernelVariant::kTiled};

// (dims, rank, density, skew) — skew 0 is uniform; > 0 concentrates
// nonzeros in hub slices, the regime that stresses tile balancing.
using SweepParam = std::tuple<shape_t, index_t, double, double>;

class KernelVariantSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(KernelVariantSweep, EveryVariantMatchesSerialOnEveryMode) {
  const auto& [dims, rank, density, skew] = GetParam();
  Rng rng(211 + static_cast<std::uint64_t>(dims.size()));
  const SparseTensor coo =
      skew == 0.0 ? SparseTensor::random_sparse(dims, density, rng)
                  : SparseTensor::random_sparse_skewed(dims, density, skew,
                                                       rng);
  const std::vector<Matrix> factors = make_factors(dims, rank, rng);
  const int n = static_cast<int>(dims.size());

  for (int mode = 0; mode < n; ++mode) {
    const Matrix expected = mttkrp_coo(coo, factors, mode, false);
    // Root the tree both at the output mode (owner-computes fast path) and
    // away from it (tile-filtered / privatized / atomic non-root targets).
    const CsfTensor csf_root = CsfTensor::from_coo(coo, mode);
    const CsfTensor csf_off = CsfTensor::from_coo(coo, (mode + 1) % n);
    ASSERT_LT(max_abs_diff(mttkrp_csf(csf_root, factors, mode, false),
                           expected),
              kTol);

    for (int threads : {1, 2, 4, 8}) {
      ThreadCountGuard guard(threads);
      for (SparseKernelVariant variant : kVariants) {
        EXPECT_LT(max_abs_diff(
                      mttkrp_coo(coo, factors, mode, true, variant),
                      expected),
                  kTol)
            << "coo " << to_string(variant) << ", mode " << mode << ", "
            << threads << " threads";
        EXPECT_LT(max_abs_diff(
                      mttkrp_csf(csf_root, factors, mode, true, variant),
                      expected),
                  kTol)
            << "csf-root " << to_string(variant) << ", mode " << mode
            << ", " << threads << " threads";
        EXPECT_LT(max_abs_diff(
                      mttkrp_csf(csf_off, factors, mode, true, variant),
                      expected),
                  kTol)
            << "csf-offroot " << to_string(variant) << ", mode " << mode
            << ", " << threads << " threads";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Uniform, KernelVariantSweep,
    ::testing::Values(SweepParam{{14, 10, 12}, 4, 0.05, 0.0},
                      SweepParam{{40, 6, 9}, 3, 0.03, 0.0},
                      SweepParam{{5, 4, 6, 3}, 3, 0.05, 0.0},
                      SweepParam{{4, 3, 5, 3, 4}, 2, 0.03, 0.0}));

INSTANTIATE_TEST_SUITE_P(
    Skewed, KernelVariantSweep,
    ::testing::Values(SweepParam{{60, 12, 10}, 4, 0.02, 1.5},
                      SweepParam{{25, 25, 25}, 3, 0.01, 2.0},
                      SweepParam{{12, 8, 6, 5}, 2, 0.02, 1.2}));

// Degenerate shapes: empty tensors and single-row outputs must survive
// every schedule (tile cuts and row snapping have edge cases at 0 and 1).
TEST(SparseKernelVariants, EmptyAndTinyTensors) {
  Rng rng(223);
  const std::vector<shape_t> shapes = {{3, 4, 5}, {1, 6, 2}};
  for (const shape_t& dims : shapes) {
    SparseTensor empty(dims);
    const std::vector<Matrix> factors = make_factors(dims, 2, rng);
    ThreadCountGuard guard(4);
    for (SparseKernelVariant variant : kVariants) {
      for (int mode = 0; mode < 3; ++mode) {
        EXPECT_EQ(mttkrp_coo(empty, factors, mode, true, variant).max_abs(),
                  0.0);
        EXPECT_EQ(mttkrp_csf(CsfTensor::from_coo(empty, mode), factors,
                             mode, true, variant)
                      .max_abs(),
                  0.0);
      }
    }
  }
  // One nonzero: all schedules degenerate to a single write.
  SparseTensor one({5, 4, 3});
  one.push_back({2, 1, 0}, 2.5);
  one.sort_and_dedup();
  const std::vector<Matrix> factors = make_factors(one.dims(), 3, rng);
  const Matrix expected = mttkrp_coo(one, factors, 1, false);
  ThreadCountGuard guard(8);
  for (SparseKernelVariant variant : kVariants) {
    EXPECT_LT(max_abs_diff(mttkrp_coo(one, factors, 1, true, variant),
                           expected),
              kTol);
  }
}

// Dispatch plumbing: MttkrpOptions::kernel_variant reaches the kernels.
TEST(SparseKernelVariants, DispatchHonorsKernelVariant) {
  Rng rng(227);
  const SparseTensor coo = SparseTensor::random_sparse({10, 8, 9}, 0.1, rng);
  const std::vector<Matrix> factors = make_factors(coo.dims(), 3, rng);
  const StoredTensor handle = StoredTensor::coo_view(coo);
  const Matrix expected = mttkrp_coo(coo, factors, 0, false);
  ThreadCountGuard guard(4);
  for (SparseKernelVariant variant : kVariants) {
    MttkrpOptions opts;
    opts.parallel = true;
    opts.kernel_variant = variant;
    EXPECT_LT(max_abs_diff(mttkrp(handle, factors, 0, opts), expected),
              kTol)
        << to_string(variant);
  }
}

// The arena grows to a high-water mark and then stops allocating: repeated
// kernel calls at steady state must not change the footprint.
TEST(ThreadArena, SteadyStateCallsDoNotGrowTheArena) {
  Rng rng(229);
  const SparseTensor coo =
      SparseTensor::random_sparse({30, 20, 25}, 0.05, rng);
  const CsfTensor csf = CsfTensor::from_coo(coo, 1);
  const std::vector<Matrix> factors = make_factors(coo.dims(), 4, rng);
  ThreadCountGuard guard(4);

  // Warm-up establishes the high-water mark for every schedule.
  for (SparseKernelVariant variant : kVariants) {
    for (int mode = 0; mode < 3; ++mode) {
      mttkrp_coo(coo, factors, mode, true, variant);
      mttkrp_csf(csf, factors, mode, true, variant);
    }
  }
  const std::size_t footprint = mttkrp_arena().footprint_words();
  EXPECT_GT(footprint, 0u);
  for (int repeat = 0; repeat < 3; ++repeat) {
    for (SparseKernelVariant variant : kVariants) {
      for (int mode = 0; mode < 3; ++mode) {
        mttkrp_coo(coo, factors, mode, true, variant);
        mttkrp_csf(csf, factors, mode, true, variant);
      }
    }
  }
  EXPECT_EQ(mttkrp_arena().footprint_words(), footprint);
}

TEST(ThreadArena, PrepareKeepsHighWaterMark) {
  ThreadArena arena;
  arena.prepare(4, 100);
  EXPECT_EQ(arena.prepared_threads(), 4);
  EXPECT_EQ(arena.slot_words(), 100u);
  arena.prepare(2, 10);  // smaller request: no shrink
  EXPECT_EQ(arena.prepared_threads(), 4);
  EXPECT_EQ(arena.slot_words(), 100u);
  arena.prepare(6, 200);
  EXPECT_EQ(arena.prepared_threads(), 6);
  EXPECT_GE(arena.slot_words(), 200u);
  // Slots are distinct, writable buffers.
  arena.slot(0)[0] = 1.0;
  arena.slot(5)[199] = 2.0;
  EXPECT_EQ(arena.slot(0)[0], 1.0);
  EXPECT_EQ(arena.slot(5)[199], 2.0);
}

}  // namespace
}  // namespace mtk
