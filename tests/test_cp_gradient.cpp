// Tests for the gradient-based CP driver: objective decreases, gradient
// norms shrink, low-rank tensors are fit well, and the dimension-tree
// kernel inside matches what separate MTTKRPs would give.
#include <gtest/gtest.h>

#include "src/cp/cp_gradient.hpp"
#include "src/support/rng.hpp"

namespace mtk {
namespace {

DenseTensor synthetic_low_rank(const shape_t& dims, index_t rank,
                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Matrix> factors;
  for (index_t d : dims) {
    factors.push_back(Matrix::random_uniform(d, rank, rng, 0.1, 1.0));
  }
  return DenseTensor::from_cp(
      factors, std::vector<double>(static_cast<std::size_t>(rank), 1.0));
}

TEST(CpGradient, ObjectiveMonotoneDecreasing) {
  const DenseTensor x = synthetic_low_rank({6, 7, 8}, 3, 9001);
  CpGradOptions opts;
  opts.rank = 3;
  opts.max_iterations = 40;
  opts.tolerance = 0.0;  // run all iterations
  const CpGradResult r = cp_gradient_descent(x, opts);
  ASSERT_GE(r.trace.size(), 2u);
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    EXPECT_LE(r.trace[i].objective, r.trace[i - 1].objective + 1e-12)
        << "iteration " << i;
  }
}

TEST(CpGradient, FitsLowRankTensorReasonably) {
  const DenseTensor x = synthetic_low_rank({8, 8, 8}, 2, 9003);
  CpGradOptions opts;
  opts.rank = 2;
  opts.max_iterations = 300;
  opts.tolerance = 1e-7;
  const CpGradResult r = cp_gradient_descent(x, opts);
  // First-order methods converge slowly; demand a solid but not exact fit.
  EXPECT_GT(r.final_fit, 0.95);
  // The objective must have dropped by orders of magnitude from the start.
  EXPECT_LT(r.final_objective, r.trace.front().objective * 0.05);
}

TEST(CpGradient, GradientNormShrinks) {
  const DenseTensor x = synthetic_low_rank({6, 6, 6}, 2, 9005);
  CpGradOptions opts;
  opts.rank = 2;
  opts.max_iterations = 150;
  opts.tolerance = 0.0;
  const CpGradResult r = cp_gradient_descent(x, opts);
  EXPECT_LT(r.trace.back().gradient_norm,
            r.trace.front().gradient_norm * 0.5);
}

TEST(CpGradient, HigherOrderTensor) {
  const DenseTensor x = synthetic_low_rank({4, 3, 4, 3}, 2, 9007);
  CpGradOptions opts;
  opts.rank = 2;
  opts.max_iterations = 150;
  const CpGradResult r = cp_gradient_descent(x, opts);
  EXPECT_LT(r.final_objective, r.trace.front().objective * 0.2);
}

TEST(CpGradient, Validation) {
  const DenseTensor x = synthetic_low_rank({4, 4}, 2, 9009);
  CpGradOptions opts;
  opts.rank = 0;
  EXPECT_THROW(cp_gradient_descent(x, opts), std::invalid_argument);
  opts.rank = 2;
  opts.backtrack = 1.5;
  EXPECT_THROW(cp_gradient_descent(x, opts), std::invalid_argument);
  opts.backtrack = 0.5;
  const DenseTensor zero({3, 3}, 0.0);
  EXPECT_THROW(cp_gradient_descent(zero, opts), std::invalid_argument);
}

}  // namespace
}  // namespace mtk
