// Round-trip and failure-path tests for the serialization module: the
// binary dense/matrix/model formats and the FROSTT .tns COO text format.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/io/tensor_io.hpp"
#include "src/support/rng.hpp"

namespace mtk {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TensorIo, TensorRoundTrip) {
  Rng rng(12001);
  const DenseTensor x = DenseTensor::random_normal({4, 5, 6}, rng);
  const std::string path = temp_path("tensor.bin");
  save_tensor(x, path);
  const DenseTensor back = load_tensor(path);
  EXPECT_EQ(back.dims(), x.dims());
  EXPECT_DOUBLE_EQ(x.max_abs_diff(back), 0.0);
  std::remove(path.c_str());
}

TEST(TensorIo, MatrixRoundTrip) {
  Rng rng(12003);
  const Matrix m = Matrix::random_normal(7, 3, rng);
  const std::string path = temp_path("matrix.bin");
  save_matrix(m, path);
  const Matrix back = load_matrix(path);
  EXPECT_EQ(back.rows(), 7);
  EXPECT_EQ(back.cols(), 3);
  EXPECT_DOUBLE_EQ(max_abs_diff(m, back), 0.0);
  std::remove(path.c_str());
}

TEST(TensorIo, CpModelRoundTrip) {
  Rng rng(12005);
  CpModel model;
  model.factors.push_back(Matrix::random_normal(4, 2, rng));
  model.factors.push_back(Matrix::random_normal(5, 2, rng));
  model.factors.push_back(Matrix::random_normal(6, 2, rng));
  model.lambda = {1.5, -2.5};
  const std::string path = temp_path("model.bin");
  save_cp_model(model, path);
  const CpModel back = load_cp_model(path);
  ASSERT_EQ(back.factors.size(), 3u);
  EXPECT_EQ(back.lambda, model.lambda);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_DOUBLE_EQ(max_abs_diff(back.factors[k], model.factors[k]), 0.0);
  }
  // Reconstruction consistency after the round trip.
  EXPECT_LT(model.reconstruct().max_abs_diff(back.reconstruct()), 1e-15);
  std::remove(path.c_str());
}

TEST(TensorIo, MissingFileThrows) {
  EXPECT_THROW(load_tensor(temp_path("does_not_exist.bin")),
               std::runtime_error);
}

TEST(TensorIo, WrongMagicThrows) {
  const std::string path = temp_path("junk.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not a tensor";
  }
  EXPECT_THROW(load_tensor(path), std::runtime_error);
  EXPECT_THROW(load_matrix(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TensorIo, TruncatedFileThrows) {
  Rng rng(12007);
  const DenseTensor x = DenseTensor::random_normal({8, 8}, rng);
  const std::string path = temp_path("truncated.bin");
  save_tensor(x, path);
  // Chop off the tail.
  {
    std::ifstream in(path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() / 2));
  }
  EXPECT_THROW(load_tensor(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TensorIo, CrossTypeMagicRejected) {
  Rng rng(12009);
  const Matrix m = Matrix::random_normal(3, 3, rng);
  const std::string path = temp_path("matrix_as_tensor.bin");
  save_matrix(m, path);
  EXPECT_THROW(load_tensor(path), std::runtime_error);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// FROSTT .tns coordinate format.

TEST(TensorIo, TnsRoundTrip) {
  Rng rng(12011);
  // Dims chosen so the last slice of every mode is empty — only the
  // "# dims:" comment preserves the extents across the round trip.
  SparseTensor x({7, 5, 9});
  for (int p = 0; p < 20; ++p) {
    x.push_back({rng.uniform_int(0, 5), rng.uniform_int(0, 3),
                 rng.uniform_int(0, 7)},
                rng.normal());
  }
  x.sort_and_dedup();
  const std::string path = temp_path("tensor.tns");
  save_tensor_tns(x, path);
  const SparseTensor back = load_tensor_tns(path);
  EXPECT_EQ(back.dims(), x.dims());
  ASSERT_EQ(back.nnz(), x.nnz());
  for (index_t p = 0; p < x.nnz(); ++p) {
    EXPECT_EQ(back.coordinate(p), x.coordinate(p));
    EXPECT_DOUBLE_EQ(back.value(p), x.value(p));
  }
  std::remove(path.c_str());
}

TEST(TensorIo, TnsLoadsPlainFrosttFile) {
  // No dims comment (the common FROSTT case): extents are inferred from the
  // maximum 1-based index per mode, and duplicate lines are summed.
  const std::string path = temp_path("plain.tns");
  {
    std::ofstream out(path);
    out << "# a comment line\n";
    out << "1 1 1 1.5\n";
    out << "3 2 4 -2.0\n";
    out << "3 2 4 0.5\n";
    out << "2 5 1 3.25\n";
  }
  const SparseTensor x = load_tensor_tns(path);
  EXPECT_EQ(x.dims(), (shape_t{3, 5, 4}));
  ASSERT_EQ(x.nnz(), 3);
  EXPECT_DOUBLE_EQ(x.to_dense().at({2, 1, 3}), -1.5);
  std::remove(path.c_str());
}

TEST(TensorIo, TnsRejectsMalformedFiles) {
  const std::string path = temp_path("bad.tns");
  {
    std::ofstream out(path);
    out << "1 2 3 4.0\n";
    out << "1 2 0.5\n";  // wrong arity
  }
  EXPECT_THROW(load_tensor_tns(path), std::runtime_error);
  {
    std::ofstream out(path, std::ios::trunc);
    out << "0 2 3 4.0\n";  // 0 is not a valid 1-based index
  }
  EXPECT_THROW(load_tensor_tns(path), std::runtime_error);
  {
    std::ofstream out(path, std::ios::trunc);
    out << "# only comments\n";
  }
  EXPECT_THROW(load_tensor_tns(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW(load_tensor_tns(temp_path("missing.tns")), std::runtime_error);
}

TEST(TensorIo, TnsEmptyTensorRoundTrips) {
  const std::string path = temp_path("empty.tns");
  save_tensor_tns(SparseTensor({4, 5}), path);
  const SparseTensor back = load_tensor_tns(path);
  EXPECT_EQ(back.dims(), (shape_t{4, 5}));
  EXPECT_EQ(back.nnz(), 0);
  std::remove(path.c_str());
}

TEST(TensorIo, TnsRejectsNonIntegerIndexFields) {
  const std::string path = temp_path("float_index.tns");
  {
    std::ofstream out(path);
    out << "2.7 1 1 3.0\n";  // column shift / corruption must not truncate
  }
  EXPECT_THROW(load_tensor_tns(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TensorIo, TnsProseCommentMentioningDimsIsIgnored) {
  const std::string path = temp_path("prose.tns");
  {
    std::ofstream out(path);
    out << "# original matrix dims: 2 2\n";  // prose, not a declaration
    out << "3 1 1 1.0\n";
  }
  const SparseTensor x = load_tensor_tns(path);
  EXPECT_EQ(x.dims(), (shape_t{3, 1, 1}));
  std::remove(path.c_str());
}

TEST(TensorIo, TnsDeclaredDimsSmallerThanDataThrows) {
  const std::string path = temp_path("shrunk.tns");
  {
    std::ofstream out(path);
    out << "# dims: 2 2\n";
    out << "3 1 1.0\n";
  }
  EXPECT_THROW(load_tensor_tns(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mtk
