// Round-trip and failure-path tests for the binary serialization module.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/io/tensor_io.hpp"
#include "src/support/rng.hpp"

namespace mtk {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TensorIo, TensorRoundTrip) {
  Rng rng(12001);
  const DenseTensor x = DenseTensor::random_normal({4, 5, 6}, rng);
  const std::string path = temp_path("tensor.bin");
  save_tensor(x, path);
  const DenseTensor back = load_tensor(path);
  EXPECT_EQ(back.dims(), x.dims());
  EXPECT_DOUBLE_EQ(x.max_abs_diff(back), 0.0);
  std::remove(path.c_str());
}

TEST(TensorIo, MatrixRoundTrip) {
  Rng rng(12003);
  const Matrix m = Matrix::random_normal(7, 3, rng);
  const std::string path = temp_path("matrix.bin");
  save_matrix(m, path);
  const Matrix back = load_matrix(path);
  EXPECT_EQ(back.rows(), 7);
  EXPECT_EQ(back.cols(), 3);
  EXPECT_DOUBLE_EQ(max_abs_diff(m, back), 0.0);
  std::remove(path.c_str());
}

TEST(TensorIo, CpModelRoundTrip) {
  Rng rng(12005);
  CpModel model;
  model.factors.push_back(Matrix::random_normal(4, 2, rng));
  model.factors.push_back(Matrix::random_normal(5, 2, rng));
  model.factors.push_back(Matrix::random_normal(6, 2, rng));
  model.lambda = {1.5, -2.5};
  const std::string path = temp_path("model.bin");
  save_cp_model(model, path);
  const CpModel back = load_cp_model(path);
  ASSERT_EQ(back.factors.size(), 3u);
  EXPECT_EQ(back.lambda, model.lambda);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_DOUBLE_EQ(max_abs_diff(back.factors[k], model.factors[k]), 0.0);
  }
  // Reconstruction consistency after the round trip.
  EXPECT_LT(model.reconstruct().max_abs_diff(back.reconstruct()), 1e-15);
  std::remove(path.c_str());
}

TEST(TensorIo, MissingFileThrows) {
  EXPECT_THROW(load_tensor(temp_path("does_not_exist.bin")),
               std::runtime_error);
}

TEST(TensorIo, WrongMagicThrows) {
  const std::string path = temp_path("junk.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not a tensor";
  }
  EXPECT_THROW(load_tensor(path), std::runtime_error);
  EXPECT_THROW(load_matrix(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TensorIo, TruncatedFileThrows) {
  Rng rng(12007);
  const DenseTensor x = DenseTensor::random_normal({8, 8}, rng);
  const std::string path = temp_path("truncated.bin");
  save_tensor(x, path);
  // Chop off the tail.
  {
    std::ifstream in(path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() / 2));
  }
  EXPECT_THROW(load_tensor(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TensorIo, CrossTypeMagicRejected) {
  Rng rng(12009);
  const Matrix m = Matrix::random_normal(3, 3, rng);
  const std::string path = temp_path("matrix_as_tensor.bin");
  save_matrix(m, path);
  EXPECT_THROW(load_tensor(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mtk
