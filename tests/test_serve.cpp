// Serving-layer tests: incremental COO append with the staleness-driven
// rebuild policy (witnessed by mtk.csf.builds), warm-started CP-ALS
// refinement, concurrent request isolation, plan-cache warm hits across
// requests, and the acceptance smoke — a concurrent mixed workload with a
// > 90% plan-cache hit rate after warmup and zero CSF rebuilds below the
// staleness threshold.
#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "src/cp/cp_als.hpp"
#include "src/mttkrp/dispatch.hpp"
#include "src/obs/metrics.hpp"
#include "src/planner/plan_cache.hpp"
#include "src/serve/server.hpp"
#include "src/serve/tensor_registry.hpp"
#include "src/support/json.hpp"
#include "src/support/rng.hpp"

namespace mtk {
namespace {

std::int64_t counter_value(const char* name) {
  return MetricsRegistry::global().counter(name).value();
}

SparseTensor make_tensor(const shape_t& dims, double density,
                         std::uint64_t seed) {
  Rng rng(seed);
  return SparseTensor::random_sparse(dims, density, rng);
}

// The server's factor-generation recipe (documented in docs/serving.md):
// one Rng seeded by the request seed, mode-major draw order.
std::vector<Matrix> request_factors(const shape_t& dims, index_t rank,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Matrix> factors;
  for (index_t d : dims) {
    factors.push_back(Matrix::random_normal(d, rank, rng));
  }
  return factors;
}

std::string mttkrp_request(int id, const std::string& tensor, index_t rank,
                           int mode, std::uint64_t seed) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"id\":%d,\"op\":\"mttkrp\",\"tensor\":\"%s\",\"rank\":%lld,"
                "\"mode\":%d,\"seed\":%llu}",
                id, tensor.c_str(), static_cast<long long>(rank), mode,
                static_cast<unsigned long long>(seed));
  return buf;
}

// ---------------------------------------------------------------------------
// Registry: delta append, staleness threshold, CSF rebuild witness.

TEST(TensorRegistry, AppendBelowThresholdSharesForestAndStaysExact) {
  TensorRegistry registry(0.25);
  const shape_t dims{14, 12, 10};
  SparseTensor x = make_tensor(dims, 0.05, 11);
  registry.load("t", x, StorageFormat::kCsf);

  auto v1 = registry.get("t");
  ASSERT_NE(v1, nullptr);

  const index_t rank = 5;
  std::vector<Matrix> factors = request_factors(dims, rank, 99);
  MttkrpOptions csf_opts;
  csf_opts.sparse_algo = SparseMttkrpAlgo::kCsf;

  // First kernel call compresses the forest (one CsfTensor per mode).
  const std::int64_t builds_cold = counter_value("mtk.csf.builds");
  Matrix base_result = mttkrp(v1->handle, factors, 0, csf_opts);
  const std::int64_t builds_warm = counter_value("mtk.csf.builds");
  EXPECT_EQ(builds_warm - builds_cold, static_cast<std::int64_t>(dims.size()));

  // A small append publishes a new version sharing base and handle: no new
  // compression on the next kernel call.
  bool rebuilt = true;
  auto v2 = registry.append(
      "t", {{{0, 0, 0}, 0.5}, {{13, 11, 9}, -2.0}}, &rebuilt);
  EXPECT_FALSE(rebuilt);
  EXPECT_EQ(v2->pending_nnz(), 2);
  EXPECT_EQ(v2->base.get(), v1->base.get());

  Matrix warm_result = mttkrp(v2->handle, factors, 0, csf_opts);
  EXPECT_EQ(counter_value("mtk.csf.builds"), builds_warm);
  EXPECT_NEAR(max_abs_diff(base_result, warm_result), 0.0, 0.0);

  // Serving answer = base + pending must equal the MTTKRP of the merged
  // tensor (linearity), bit-for-tolerance across kernel orders.
  MttkrpOptions coo_opts;
  coo_opts.sparse_algo = SparseMttkrpAlgo::kCoo;
  Matrix delta = mttkrp(v2->pending, factors, 0, coo_opts);
  for (index_t i = 0; i < warm_result.rows(); ++i) {
    for (index_t j = 0; j < warm_result.cols(); ++j) {
      warm_result(i, j) += delta(i, j);
    }
  }
  SparseTensor merged = *v2->base;
  for (index_t p = 0; p < v2->pending.nnz(); ++p) {
    merged.push_back(v2->pending.coordinate(p), v2->pending.value(p));
  }
  merged.sort_and_dedup();
  Matrix expected = mttkrp(merged, factors, 0, coo_opts);
  EXPECT_LT(max_abs_diff(warm_result, expected), 1e-9);
}

TEST(TensorRegistry, CrossingStalenessThresholdRebuilds) {
  TensorRegistry registry(0.10);
  const shape_t dims{10, 8, 6};
  SparseTensor x = make_tensor(dims, 0.1, 21);
  registry.load("t", x, StorageFormat::kCsf);
  auto v1 = registry.get("t");
  const index_t base_nnz = v1->base_nnz();

  // Build the forest so a rebuild is observable as *new* builds.
  std::vector<Matrix> factors = request_factors(dims, 4, 5);
  MttkrpOptions csf_opts;
  csf_opts.sparse_algo = SparseMttkrpAlgo::kCsf;
  mttkrp(v1->handle, factors, 0, csf_opts);
  const std::int64_t builds_before = counter_value("mtk.csf.builds");
  const std::int64_t rebuilds_before = counter_value("mtk.serve.rebuilds");

  // Append enough distinct coordinates to cross 10% of the base.
  std::vector<DeltaEntry> entries;
  const index_t needed = base_nnz / 10 + 2;
  Rng rng(77);
  for (index_t p = 0; p < needed; ++p) {
    entries.push_back({{rng.uniform_int(0, dims[0] - 1),
                        rng.uniform_int(0, dims[1] - 1),
                        rng.uniform_int(0, dims[2] - 1)},
                       1.0});
  }
  bool rebuilt = false;
  auto v2 = registry.append("t", entries, &rebuilt);
  EXPECT_TRUE(rebuilt);
  EXPECT_EQ(v2->pending_nnz(), 0);
  EXPECT_EQ(counter_value("mtk.serve.rebuilds"), rebuilds_before + 1);
  EXPECT_NE(v2->base.get(), v1->base.get());

  // The fold produced a fresh handle: the next kernel call re-compresses.
  mttkrp(v2->handle, factors, 0, csf_opts);
  EXPECT_EQ(counter_value("mtk.csf.builds"),
            builds_before + static_cast<std::int64_t>(dims.size()));
}

// ---------------------------------------------------------------------------
// Warm-started CP-ALS.

TEST(CpAlsWarmStart, MatchesColdStartFitAfterIdenticalDeltas) {
  // Exactly rank-3-representable tensor, so both runs converge to fit ~ 1.
  const shape_t dims{12, 10, 8};
  const index_t rank = 3;
  Rng rng(5);
  CpModel truth;
  for (index_t d : dims) {
    truth.factors.push_back(Matrix::random_uniform(d, rank, rng, 0.1, 1.0));
  }
  truth.lambda.assign(static_cast<std::size_t>(rank), 1.0);
  SparseTensor full = SparseTensor::from_dense(truth.reconstruct());

  // Split into an initial tensor and a tail of "streamed" deltas.
  SparseTensor initial(dims);
  std::vector<DeltaEntry> deltas;
  for (index_t p = 0; p < full.nnz(); ++p) {
    if (p % 7 == 0) {
      deltas.push_back({full.coordinate(p), full.value(p)});
    } else {
      initial.push_back(full.coordinate(p), full.value(p));
    }
  }
  initial.sort_and_dedup();

  CpAlsOptions opts;
  opts.rank = rank;
  opts.max_iterations = 80;
  opts.tolerance = 1e-10;
  opts.seed = 31;

  // Warm path: fit the initial tensor, apply the deltas, continue from the
  // stored model.
  TensorRegistry registry(1e9);  // never fold: keep the base identical
  registry.load("t", initial, StorageFormat::kCsf);
  CpAlsResult first = cp_als(registry.get("t")->handle, opts);
  registry.store_model("t", rank, first.model);

  TensorRegistry merged_registry(1e-12);  // always fold
  merged_registry.load("t", initial, StorageFormat::kCsf);
  bool rebuilt = false;
  auto merged = merged_registry.append("t", deltas, &rebuilt);
  ASSERT_TRUE(rebuilt);

  auto warm_model = registry.model("t", rank);
  ASSERT_NE(warm_model, nullptr);
  CpAlsOptions warm_opts = opts;
  warm_opts.initial = warm_model.get();
  CpAlsResult warm = cp_als(merged->handle, warm_opts);

  // Cold path: same merged tensor, random initialization.
  CpAlsResult cold = cp_als(merged->handle, opts);

  EXPECT_NEAR(warm.final_fit, cold.final_fit, 0.05);
  EXPECT_GT(warm.final_fit, 0.9);
  // Continuing a converged nearby fit must not need more sweeps than
  // starting over.
  EXPECT_LE(warm.iterations, cold.iterations);
}

TEST(CpAlsWarmStart, RejectsShapeMismatch) {
  const shape_t dims{6, 5, 4};
  SparseTensor x = make_tensor(dims, 0.3, 9);
  CpModel wrong;
  Rng rng(1);
  wrong.factors.push_back(Matrix::random_uniform(6, 2, rng));
  wrong.factors.push_back(Matrix::random_uniform(5, 2, rng));
  wrong.factors.push_back(Matrix::random_uniform(4, 2, rng));
  wrong.lambda.assign(2, 1.0);
  CpAlsOptions opts;
  opts.rank = 3;  // != model rank 2
  opts.initial = &wrong;
  EXPECT_THROW(cp_als(x, opts), std::exception);
}

// ---------------------------------------------------------------------------
// Server: isolation, warm plan hits, admission, mixed-workload acceptance.

TEST(MttkrpServer, ConcurrentRequestsAreIsolated) {
  ServeOptions sopts;
  sopts.workers = 2;
  MttkrpServer server(sopts);

  const shape_t dims_a{16, 12, 10};
  const shape_t dims_b{9, 14, 11};
  SparseTensor a = make_tensor(dims_a, 0.05, 100);
  SparseTensor b = make_tensor(dims_b, 0.08, 200);
  server.registry().load("a", a, StorageFormat::kCsf);
  server.registry().load("b", b, StorageFormat::kCoo);

  const index_t rank = 6;
  // Expected norms, computed with the server's factor recipe. The server
  // may answer through the CSF forest; norms agree to rounding.
  const auto expected_norm = [&](const SparseTensor& x, const shape_t& dims,
                                 std::uint64_t seed, int mode) {
    std::vector<Matrix> factors = request_factors(dims, rank, seed);
    MttkrpOptions opts;
    opts.sparse_algo = SparseMttkrpAlgo::kCoo;
    return mttkrp(x, factors, mode, opts).frobenius_norm();
  };

  const int kThreads = 4;
  const int kPerThread = 6;
  std::vector<std::thread> clients;
  std::vector<std::string> failures(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const bool use_a = (t + i) % 2 == 0;
        const std::string tensor = use_a ? "a" : "b";
        const shape_t& dims = use_a ? dims_a : dims_b;
        const SparseTensor& x = use_a ? a : b;
        const int mode = i % static_cast<int>(dims.size());
        const std::uint64_t seed = 1000 + 10 * t + i;
        const std::string response = server.handle(
            mttkrp_request(100 * t + i, tensor, rank, mode, seed));
        const JsonValue json = JsonValue::parse(response);
        if (!json.at("ok").as_bool()) {
          failures[t] = response;
          return;
        }
        const double got = json.at("norm").as_number();
        const double want = expected_norm(x, dims, seed, mode);
        if (std::abs(got - want) > 1e-8 * (1.0 + std::abs(want))) {
          failures[t] = "norm mismatch: " + response;
          return;
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  for (const std::string& f : failures) EXPECT_EQ(f, "");
}

TEST(MttkrpServer, PlanCacheServesWarmHitsAcrossRequests) {
  ServeOptions sopts;
  sopts.workers = 2;
  MttkrpServer server(sopts);
  SparseTensor x = make_tensor({24, 20, 16}, 0.04, 42);
  server.registry().load("t", x, StorageFormat::kCsf);

  // Warmup: one request per (mode) key plans once.
  for (int mode = 0; mode < 3; ++mode) {
    const JsonValue warm = JsonValue::parse(
        server.handle(mttkrp_request(mode, "t", 8, mode, 7)));
    ASSERT_TRUE(warm.at("ok").as_bool());
  }
  const std::size_t hits_before = PlanCache::global().hits();
  const std::size_t misses_before = PlanCache::global().misses();

  std::vector<std::future<std::string>> pending;
  const int kRequests = 30;
  for (int i = 0; i < kRequests; ++i) {
    pending.push_back(
        server.submit(mttkrp_request(10 + i, "t", 8, i % 3, 50 + i)));
  }
  for (auto& f : pending) {
    const JsonValue json = JsonValue::parse(f.get());
    EXPECT_TRUE(json.at("ok").as_bool());
  }
  EXPECT_EQ(PlanCache::global().misses(), misses_before);
  EXPECT_EQ(PlanCache::global().hits(), hits_before + kRequests);
}

TEST(MttkrpServer, AdmissionRejectsOnPredictedCost) {
  ServeOptions sopts;
  sopts.workers = 1;
  sopts.admit_max_cost = 1e-12;  // every real plan scores above this
  MttkrpServer server(sopts);
  SparseTensor x = make_tensor({24, 20, 16}, 0.04, 43);
  server.registry().load("t", x, StorageFormat::kCsf);

  const std::int64_t rejected_before = counter_value("mtk.serve.rejected");
  const JsonValue json =
      JsonValue::parse(server.handle(mttkrp_request(1, "t", 8, 0, 7)));
  EXPECT_FALSE(json.at("ok").as_bool());
  EXPECT_TRUE(json.at("rejected").as_bool());
  EXPECT_EQ(counter_value("mtk.serve.rejected"), rejected_before + 1);
}

TEST(MttkrpServer, UnknownTensorAndParseErrorsAnswerCleanly) {
  ServeOptions sopts;
  sopts.workers = 1;
  MttkrpServer server(sopts);
  const JsonValue unknown =
      JsonValue::parse(server.handle(mttkrp_request(1, "nope", 4, 0, 7)));
  EXPECT_FALSE(unknown.at("ok").as_bool());
  const JsonValue garbage = JsonValue::parse(server.handle("not json"));
  EXPECT_FALSE(garbage.at("ok").as_bool());
  const JsonValue no_op = JsonValue::parse(server.handle("{\"id\":4}"));
  EXPECT_FALSE(no_op.at("ok").as_bool());
}

// The acceptance smoke: a concurrent mixed workload — batched MTTKRP
// alongside streaming appends and warm CP-ALS refinement — served with a
// > 90% plan-cache hit rate after warmup and zero CSF rebuilds below the
// staleness threshold, witnessed via mtk.serve.* and mtk.plan.cache.*.
TEST(MttkrpServer, MixedWorkloadSustainsWarmPlansAndZeroRebuilds) {
  ServeOptions sopts;
  sopts.workers = 2;
  sopts.batch_window = 8;
  sopts.staleness_threshold = 0.25;
  MttkrpServer server(sopts);
  SparseTensor x = make_tensor({24, 20, 16}, 0.05, 4242);
  server.registry().load("t", x, StorageFormat::kCsf);
  const index_t base_nnz = server.registry().get("t")->base_nnz();

  // Warmup: plan each key once and build the forest.
  for (int mode = 0; mode < 3; ++mode) {
    ASSERT_TRUE(JsonValue::parse(
                    server.handle(mttkrp_request(mode, "t", 8, mode, 7)))
                    .at("ok")
                    .as_bool());
  }
  ASSERT_TRUE(
      JsonValue::parse(
          server.handle("{\"id\":3,\"op\":\"refine\",\"tensor\":\"t\","
                        "\"rank\":4,\"iters\":2}"))
          .at("ok")
          .as_bool());

  const std::size_t hits_before = PlanCache::global().hits();
  const std::size_t misses_before = PlanCache::global().misses();
  const std::int64_t builds_before = counter_value("mtk.csf.builds");
  const std::int64_t rebuilds_before = counter_value("mtk.serve.rebuilds");
  const std::int64_t batches_before = counter_value("mtk.serve.batches");

  // Mixed concurrent load: two mttkrp floods (batchable same-key streams),
  // one delta-append stream (kept well below the staleness threshold), one
  // refinement stream.
  const int kMttkrpPerMode = 20;
  const int kAppends = 10;   // 2 nonzeros each: 20 << 0.25 * base_nnz
  const int kRefines = 5;
  ASSERT_LT(index_t{2 * kAppends},
            static_cast<index_t>(0.25 * static_cast<double>(base_nnz)));

  std::vector<std::future<std::string>> pending;
  std::mutex pending_mu;
  const auto enqueue = [&](const std::string& line) {
    std::future<std::string> f = server.submit(line);
    std::lock_guard<std::mutex> lock(pending_mu);
    pending.push_back(std::move(f));
  };

  std::vector<std::thread> clients;
  for (int mode = 0; mode < 2; ++mode) {
    clients.emplace_back([&, mode] {
      for (int i = 0; i < kMttkrpPerMode; ++i) {
        enqueue(mttkrp_request(1000 + 100 * mode + i, "t", 8, mode, 60 + i));
      }
    });
  }
  clients.emplace_back([&] {
    Rng rng(909);
    for (int i = 0; i < kAppends; ++i) {
      char buf[200];
      std::snprintf(
          buf, sizeof(buf),
          "{\"id\":%d,\"op\":\"append\",\"tensor\":\"t\",\"entries\":"
          "[[%lld,%lld,%lld,0.25],[%lld,%lld,%lld,-0.5]]}",
          2000 + i, static_cast<long long>(rng.uniform_int(0, 23)),
          static_cast<long long>(rng.uniform_int(0, 19)),
          static_cast<long long>(rng.uniform_int(0, 15)),
          static_cast<long long>(rng.uniform_int(0, 23)),
          static_cast<long long>(rng.uniform_int(0, 19)),
          static_cast<long long>(rng.uniform_int(0, 15)));
      enqueue(buf);
    }
  });
  clients.emplace_back([&] {
    for (int i = 0; i < kRefines; ++i) {
      char buf[120];
      std::snprintf(buf, sizeof(buf),
                    "{\"id\":%d,\"op\":\"refine\",\"tensor\":\"t\","
                    "\"rank\":4,\"iters\":2}",
                    3000 + i);
      enqueue(buf);
    }
  });
  for (auto& c : clients) c.join();
  for (auto& f : pending) {
    const JsonValue json = JsonValue::parse(f.get());
    EXPECT_TRUE(json.at("ok").as_bool()) << "response: " << f.valid();
  }
  server.wait_idle();

  // Plan-cache hit rate after warmup: every mttkrp and refine lookup must
  // hit (sub-threshold appends leave the base — and so the cache key —
  // untouched), which is > 90% by a wide margin.
  const std::size_t new_hits = PlanCache::global().hits() - hits_before;
  const std::size_t new_misses = PlanCache::global().misses() - misses_before;
  const std::size_t lookups = new_hits + new_misses;
  ASSERT_GT(lookups, std::size_t{0});
  EXPECT_EQ(new_misses, std::size_t{0});
  EXPECT_GT(static_cast<double>(new_hits) / static_cast<double>(lookups),
            0.9);

  // Zero CSF rebuilds below the staleness threshold — the whole point of
  // the delta store.
  EXPECT_EQ(counter_value("mtk.csf.builds"), builds_before);
  EXPECT_EQ(counter_value("mtk.serve.rebuilds"), rebuilds_before);
  EXPECT_GT(server.registry().get("t")->pending_nnz(), 0);

  // The same-key mttkrp floods must have produced at least one coalesced
  // batch (the submission burst far outpaces single-request execution).
  EXPECT_GT(counter_value("mtk.serve.batches"), batches_before);

  // Warm starts: every refine after the first reuses the stored model.
  EXPECT_GE(counter_value("mtk.serve.warm_starts"),
            static_cast<std::int64_t>(kRefines));
}

}  // namespace
}  // namespace mtk
