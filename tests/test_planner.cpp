// Tests for the autotuning planner layer: the exact communication
// predictor against both the closed-form Eq. (14)/(18) models and the
// simulator's measured counters, the grid/scheme/backend search, the plan
// cache, the nonzero-balance statistics, and the skewed generator feeding
// the scenario sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "src/costmodel/grid_search.hpp"
#include "src/cp/par_cp_als.hpp"
#include "src/parsim/par_common.hpp"
#include "src/parsim/par_mttkrp.hpp"
#include "src/parsim/par_multi_mttkrp.hpp"
#include "src/planner/plan_cache.hpp"
#include "src/planner/planner.hpp"
#include "src/support/rng.hpp"
#include "src/tensor/csf.hpp"

namespace mtk {
namespace {

PredictProblem dense_problem(const shape_t& dims, index_t rank) {
  PredictProblem p;
  p.dims = dims;
  p.rank = rank;
  p.format = StorageFormat::kDense;
  p.nnz = shape_size(dims);
  return p;
}

// ---------------------------------------------------------------------------
// Predictor vs closed-form models (regression pins to the Eq. values).

TEST(Predict, StationaryMatchesEq14OnBalancedProblem) {
  // I_k = 8, R = 4, grid 2x2x2: Eq. (14) counts 36 sent words per
  // processor; the ring collectives receive as much as they send, and
  // every block and chunk divides evenly, so the exact replay must give
  // exactly 2 x 36 for every output mode.
  const PredictProblem p = dense_problem({8, 8, 8}, 4);
  CostProblem cp;
  cp.dims = p.dims;
  cp.rank = p.rank;
  const double eq14 = stationary_comm_cost(cp, {2, 2, 2});
  EXPECT_DOUBLE_EQ(eq14, 36.0);
  for (int mode = 0; mode < 3; ++mode) {
    const CommPrediction c =
        predict_mttkrp_comm(p, ParAlgo::kStationary, {2, 2, 2}, mode);
    EXPECT_TRUE(c.exact);
    EXPECT_DOUBLE_EQ(c.words, 2.0 * eq14);
    EXPECT_DOUBLE_EQ(c.tensor_words, 0.0);
  }
}

TEST(Predict, GeneralMatchesEq18OnBalancedProblem) {
  // I_k = 8, R = 8, grid (2, 2, 2, 1): Eq. (18) counts 104 sent words
  // (64 tensor + 40 factor/output); the balanced replay doubles it.
  const PredictProblem p = dense_problem({8, 8, 8}, 8);
  CostProblem cp;
  cp.dims = p.dims;
  cp.rank = p.rank;
  const double eq18 = general_comm_cost(cp, {2, 2, 2, 1});
  EXPECT_DOUBLE_EQ(eq18, 104.0);
  const CommPrediction c =
      predict_mttkrp_comm(p, ParAlgo::kGeneral, {2, 2, 2, 1}, 0);
  EXPECT_TRUE(c.exact);
  EXPECT_DOUBLE_EQ(c.words, 2.0 * eq18);
  EXPECT_DOUBLE_EQ(c.tensor_words, 128.0);  // 2 x (P0-1) I / P
}

TEST(Predict, GeneralDegeneratesToStationaryAtP0One) {
  const PredictProblem p = dense_problem({12, 10, 8}, 6);
  const CommPrediction gen =
      predict_mttkrp_comm(p, ParAlgo::kGeneral, {1, 2, 2, 2}, 1);
  const CommPrediction stat =
      predict_mttkrp_comm(p, ParAlgo::kStationary, {2, 2, 2}, 1);
  EXPECT_DOUBLE_EQ(gen.words, stat.words);
  EXPECT_DOUBLE_EQ(gen.tensor_words, 0.0);
}

TEST(CostModel, SparseEq18TensorTermUsesNnzTuples) {
  CostProblem cp;
  cp.dims = {64, 64, 64};
  cp.rank = 32;
  const index_t nnz = 1000;  // density ~0.004: tuples << dense block
  const std::vector<index_t> grid{4, 2, 2, 2};
  const double dense_cost = general_comm_cost(cp, grid);
  const double sparse_cost = general_comm_cost_sparse(cp, nnz, grid);
  EXPECT_LT(sparse_cost, dense_cost);
  // Factor terms agree; the difference is exactly the tensor-term swap.
  const double dense_tensor = (4.0 - 1.0) * cp.tensor_size() / 32.0;
  const double sparse_tensor = (4.0 - 1.0) * 1000.0 * 4.0 / 32.0;
  EXPECT_DOUBLE_EQ(dense_cost - dense_tensor, sparse_cost - sparse_tensor);
  // P0 = 1 removes the tensor term entirely: both models meet Eq. (14).
  EXPECT_DOUBLE_EQ(general_comm_cost_sparse(cp, nnz, {1, 4, 2, 2}),
                   general_comm_cost(cp, {1, 4, 2, 2}));
  // The sparse-optimal search is never worse than the dense-optimal grid
  // evaluated under the sparse model.
  const GridSearchResult best = optimal_general_grid_sparse(cp, nnz, 32);
  const GridSearchResult dense_best = optimal_general_grid(cp, 32);
  ASSERT_TRUE(best.feasible && dense_best.feasible);
  EXPECT_LE(best.cost,
            general_comm_cost_sparse(cp, nnz, dense_best.grid) + 1e-9);
}

// The costmodel's closed-form round counts must agree with the balanced
// predictor's message terms (the shortlist uses the former, the scoring
// the latter — they cannot be allowed to drift apart).
TEST(CostModel, MsgCostsMatchClosedFormPredictor) {
  const PredictProblem p = dense_problem({64, 64, 64}, 32);
  for (const bool recursive : {false, true}) {
    const CollectiveSchedule sched(recursive ? CollectiveKind::kRecursive
                                             : CollectiveKind::kBucket);
    // exact_rank_cap = 1 forces the closed-form estimate.
    const CommPrediction stat = predict_mttkrp_comm(
        p, ParAlgo::kStationary, {4, 2, 2}, 0,
        SparsePartitionScheme::kBlock, sched, 1);
    EXPECT_FALSE(stat.exact);
    EXPECT_DOUBLE_EQ(stat.messages,
                     stationary_msg_cost({4, 2, 2}, recursive));

    const CommPrediction all = predict_mttkrp_comm(
        p, ParAlgo::kAllModes, {4, 2, 2}, 0, SparsePartitionScheme::kBlock,
        sched, 1);
    EXPECT_DOUBLE_EQ(all.messages,
                     2.0 * stationary_msg_cost({4, 2, 2}, recursive));

    const CommPrediction gen = predict_mttkrp_comm(
        p, ParAlgo::kGeneral, {4, 2, 2, 2}, 0,
        SparsePartitionScheme::kBlock, sched, 1);
    EXPECT_DOUBLE_EQ(gen.messages,
                     general_msg_cost({4, 2, 2, 2}, recursive));
  }
  // The recursive counts only differ on power-of-two groups.
  EXPECT_DOUBLE_EQ(stationary_msg_cost({4, 2, 2}, false),
                   3.0 + 7.0 + 7.0);
  EXPECT_DOUBLE_EQ(stationary_msg_cost({4, 2, 2}, true), 2.0 + 3.0 + 3.0);
  EXPECT_DOUBLE_EQ(stationary_msg_cost({3, 1, 1}, true),
                   stationary_msg_cost({3, 1, 1}, false));
}

// ---------------------------------------------------------------------------
// Predictor vs the simulator's measured counters (word-for-word).

class PredictAgreement : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(20180521);
    dims_ = {13, 10, 9};
    rank_ = 5;
    dense_ = DenseTensor::random_normal(dims_, rng);
    coo_ = SparseTensor::random_sparse(dims_, 0.08, rng);
    for (index_t d : dims_) {
      factors_.push_back(Matrix::random_normal(d, rank_, rng));
    }
  }

  shape_t dims_;
  index_t rank_ = 0;
  DenseTensor dense_;
  SparseTensor coo_;
  std::vector<Matrix> factors_;
};

TEST_F(PredictAgreement, DenseStationaryExact) {
  SparseTensor scratch;
  const StoredTensor x = StoredTensor::dense_view(dense_);
  const PredictProblem p = make_predict_problem(x, rank_, scratch);
  for (const std::vector<int>& g :
       {std::vector<int>{2, 3, 2}, {4, 1, 3}, {13, 1, 1}}) {
    for (int mode = 0; mode < 3; ++mode) {
      const CommPrediction c =
          predict_mttkrp_comm(p, ParAlgo::kStationary, g, mode);
      const ParMttkrpResult r =
          par_mttkrp_stationary(dense_, factors_, mode, g);
      ASSERT_TRUE(c.exact);
      EXPECT_DOUBLE_EQ(c.words, static_cast<double>(r.max_words_moved))
          << "grid " << g[0] << "x" << g[1] << "x" << g[2] << " mode "
          << mode;
    }
  }
}

TEST_F(PredictAgreement, DenseGeneralExact) {
  SparseTensor scratch;
  const StoredTensor x = StoredTensor::dense_view(dense_);
  const PredictProblem p = make_predict_problem(x, rank_, scratch);
  for (const std::vector<int>& g :
       {std::vector<int>{2, 2, 1, 3}, {5, 2, 1, 1}, {1, 2, 2, 2}}) {
    const CommPrediction c = predict_mttkrp_comm(p, ParAlgo::kGeneral, g, 1);
    const ParMttkrpResult r = par_mttkrp_general(dense_, factors_, 1, g);
    ASSERT_TRUE(c.exact);
    EXPECT_DOUBLE_EQ(c.words, static_cast<double>(r.max_words_moved));
  }
}

TEST_F(PredictAgreement, SparseBothSchemesBothAlgorithmsExact) {
  const StoredTensor x = StoredTensor::coo_view(coo_);
  SparseTensor scratch;
  const PredictProblem p = make_predict_problem(x, rank_, scratch);
  for (const SparsePartitionScheme scheme :
       {SparsePartitionScheme::kBlock, SparsePartitionScheme::kMediumGrained}) {
    const CommPrediction stat =
        predict_mttkrp_comm(p, ParAlgo::kStationary, {2, 3, 2}, 0, scheme);
    const ParMttkrpResult rs =
        par_mttkrp_stationary(x, factors_, 0, {2, 3, 2}, scheme);
    EXPECT_DOUBLE_EQ(stat.words, static_cast<double>(rs.max_words_moved));

    // The sparse Algorithm 4 gather ships N+1 words per nonzero; the
    // nnz-aware replay must still be exact.
    const CommPrediction gen =
        predict_mttkrp_comm(p, ParAlgo::kGeneral, {2, 2, 1, 3}, 2, scheme);
    const ParMttkrpResult rg =
        par_mttkrp_general(x, factors_, 2, {2, 2, 1, 3}, scheme);
    EXPECT_DOUBLE_EQ(gen.words, static_cast<double>(rg.max_words_moved));
    EXPECT_GT(gen.tensor_words, 0.0);
  }
}

TEST_F(PredictAgreement, CsfStorageSameCollectiveTraffic) {
  const CsfTensor csf = CsfTensor::from_coo(coo_);
  const StoredTensor x = StoredTensor::csf_view(csf);
  SparseTensor scratch;
  const PredictProblem p = make_predict_problem(x, rank_, scratch);
  const CommPrediction c =
      predict_mttkrp_comm(p, ParAlgo::kStationary, {3, 2, 2}, 1);
  const ParMttkrpResult r = par_mttkrp_stationary(x, factors_, 1, {3, 2, 2});
  EXPECT_DOUBLE_EQ(c.words, static_cast<double>(r.max_words_moved));
}

// The acceptance matrix for the α-β predictor: predicted bottleneck words
// AND messages must equal the simulator's per-rank counters exactly, for
// both collective kinds, across stationary/general/all-modes and
// dense/COO/CSF. Grids mix power-of-two hyperslices (recursive schedules
// engage) with non-power-of-two ones (the dispatcher falls back to the
// bucket ring, and the predictor must fall back identically).
TEST_F(PredictAgreement, WordsAndMessagesExactBothKindsAllAlgosAllFormats) {
  const CsfTensor csf = CsfTensor::from_coo(coo_);
  std::vector<std::pair<const char*, StoredTensor>> storages;
  storages.emplace_back("dense", StoredTensor::dense_view(dense_));
  storages.emplace_back("coo", StoredTensor::coo_view(coo_));
  storages.emplace_back("csf", StoredTensor::csf_view(csf));

  for (auto& [name, x] : storages) {
    SparseTensor scratch;
    const PredictProblem p = make_predict_problem(x, rank_, scratch);
    for (const CollectiveKind kind :
         {CollectiveKind::kBucket, CollectiveKind::kRecursive}) {
      const CollectiveSchedule sched(kind);

      for (const std::vector<int>& g :
           {std::vector<int>{2, 2, 2}, {2, 3, 2}}) {
        for (int mode = 0; mode < 3; ++mode) {
          const CommPrediction c = predict_mttkrp_comm(
              p, ParAlgo::kStationary, g, mode,
              SparsePartitionScheme::kBlock, sched);
          Machine machine(grid_size(g));
          const ParMttkrpResult r = par_mttkrp_stationary(
              machine, x, factors_, mode, g, sched);
          ASSERT_TRUE(c.exact);
          EXPECT_DOUBLE_EQ(c.words, static_cast<double>(r.max_words_moved))
              << name << " stationary " << to_string(kind) << " mode "
              << mode;
          EXPECT_DOUBLE_EQ(c.messages, static_cast<double>(r.max_messages))
              << name << " stationary " << to_string(kind) << " mode "
              << mode;
        }

        const CommPrediction c = predict_mttkrp_comm(
            p, ParAlgo::kAllModes, g, 0, SparsePartitionScheme::kBlock,
            sched);
        Machine machine(grid_size(g));
        const ParAllModesResult r =
            par_mttkrp_all_modes(machine, x, factors_, g, sched);
        EXPECT_DOUBLE_EQ(c.words, static_cast<double>(r.max_words_moved))
            << name << " all-modes " << to_string(kind);
        EXPECT_DOUBLE_EQ(c.messages, static_cast<double>(r.max_messages))
            << name << " all-modes " << to_string(kind);
      }

      for (const std::vector<int>& g :
           {std::vector<int>{2, 2, 1, 3}, {2, 2, 2, 2}, {4, 2, 2, 1}}) {
        const CommPrediction c = predict_mttkrp_comm(
            p, ParAlgo::kGeneral, g, 1, SparsePartitionScheme::kBlock,
            sched);
        Machine machine(grid_size(g));
        const ParMttkrpResult r = par_mttkrp_general(
            machine, x, factors_, 1, g, sched);
        ASSERT_TRUE(c.exact);
        EXPECT_DOUBLE_EQ(c.words, static_cast<double>(r.max_words_moved))
            << name << " general " << to_string(kind);
        EXPECT_DOUBLE_EQ(c.messages, static_cast<double>(r.max_messages))
            << name << " general " << to_string(kind);
      }
    }
  }
}

// Mixed per-phase schedules must stay exact too (the planner emits these).
TEST_F(PredictAgreement, MixedScheduleExact) {
  const StoredTensor x = StoredTensor::coo_view(coo_);
  SparseTensor scratch;
  const PredictProblem p = make_predict_problem(x, rank_, scratch);
  CollectiveSchedule sched;
  sched.factor = CollectiveKind::kRecursive;
  sched.output = CollectiveKind::kBucket;
  sched.tensor = CollectiveKind::kRecursive;
  for (const SparsePartitionScheme scheme :
       {SparsePartitionScheme::kBlock,
        SparsePartitionScheme::kMediumGrained}) {
    const CommPrediction stat = predict_mttkrp_comm(
        p, ParAlgo::kStationary, {2, 2, 2}, 0, scheme, sched);
    Machine ms(8);
    const ParMttkrpResult rs = par_mttkrp_stationary(
        ms, x, factors_, 0, {2, 2, 2}, sched, scheme);
    EXPECT_DOUBLE_EQ(stat.words, static_cast<double>(rs.max_words_moved));
    EXPECT_DOUBLE_EQ(stat.messages, static_cast<double>(rs.max_messages));

    const CommPrediction gen = predict_mttkrp_comm(
        p, ParAlgo::kGeneral, {2, 2, 1, 3}, 2, scheme, sched);
    Machine mg(12);
    const ParMttkrpResult rg = par_mttkrp_general(
        mg, x, factors_, 2, {2, 2, 1, 3}, sched, scheme);
    EXPECT_DOUBLE_EQ(gen.words, static_cast<double>(rg.max_words_moved));
    EXPECT_DOUBLE_EQ(gen.messages, static_cast<double>(rg.max_messages));
  }
}

TEST_F(PredictAgreement, AllModesExact) {
  SparseTensor scratch;
  const StoredTensor x = StoredTensor::dense_view(dense_);
  const PredictProblem p = make_predict_problem(x, rank_, scratch);
  const CommPrediction c =
      predict_mttkrp_comm(p, ParAlgo::kAllModes, {2, 3, 2}, 0);
  const ParAllModesResult r =
      par_mttkrp_all_modes(dense_, factors_, {2, 3, 2});
  EXPECT_DOUBLE_EQ(c.words, static_cast<double>(r.max_words_moved));
}

TEST_F(PredictAgreement, CpAlsIterationExact) {
  const StoredTensor x = StoredTensor::coo_view(coo_);
  SparseTensor scratch;
  const PredictProblem p = make_predict_problem(x, rank_, scratch);
  const std::vector<int> grid{2, 3, 2};
  const CommPrediction c = predict_cp_als_iteration(p, grid);

  ParCpAlsOptions opts;
  opts.rank = rank_;
  opts.max_iterations = 3;
  opts.tolerance = 0.0;
  opts.grid = grid;
  const ParCpAlsResult r = par_cp_als(x, opts);
  ASSERT_GE(r.trace.size(), 2u);
  // Steady-state iterations move identical words (the volumes depend only
  // on shapes, not values); compare against the second iteration.
  const double measured =
      static_cast<double>(r.trace[1].mttkrp_words_max) +
      static_cast<double>(r.trace[1].gram_words_max);
  EXPECT_DOUBLE_EQ(c.words, measured);
}

// The recursive Gram All-Reduce mixes schedules internally on this problem
// (R^2 = 25 does not divide P = 8, so the Reduce-Scatter stage falls back
// to the ring while the All-Gather stage runs doubling); the iteration
// prediction must still be word- and message-exact.
TEST_F(PredictAgreement, CpAlsIterationExactRecursive) {
  const StoredTensor x = StoredTensor::coo_view(coo_);
  SparseTensor scratch;
  const PredictProblem p = make_predict_problem(x, rank_, scratch);
  const std::vector<int> grid{2, 2, 2};
  const CommPrediction c = predict_cp_als_iteration(
      p, grid, SparsePartitionScheme::kBlock, CollectiveKind::kRecursive);

  ParCpAlsOptions opts;
  opts.rank = rank_;
  opts.max_iterations = 3;
  opts.tolerance = 0.0;
  opts.grid = grid;
  opts.collectives = CollectiveKind::kRecursive;
  const ParCpAlsResult r = par_cp_als(x, opts);
  ASSERT_GE(r.trace.size(), 2u);
  const double words =
      static_cast<double>(r.trace[1].mttkrp_words_max) +
      static_cast<double>(r.trace[1].gram_words_max);
  EXPECT_DOUBLE_EQ(c.words, words);
  EXPECT_DOUBLE_EQ(c.messages,
                   static_cast<double>(r.trace[1].messages_max));
}

// ---------------------------------------------------------------------------
// Planner search properties.

// With a positive latency/word ratio the planner must trade rounds for
// words per phase: on a power-of-two grid with divisible payloads the
// recursive schedules move identical words in fewer rounds, so they must
// be selected, and the reported prediction must reflect the mix.
TEST(Planner, LatencyRatioSelectsRecursiveSchedules) {
  PlannerOptions opts;
  opts.procs = 8;
  opts.consider_general = false;

  const shape_t dims{16, 16, 16};
  const PlanReport bucket_report =
      plan_mttkrp_model(dims, 8, StorageFormat::kDense, 0, opts);
  EXPECT_TRUE(bucket_report.best().collectives == CollectiveSchedule());

  opts.latency_word_ratio = 4.0;
  const PlanReport report =
      plan_mttkrp_model(dims, 8, StorageFormat::kDense, 0, opts);
  const ExecutionPlan& best = report.best();
  EXPECT_EQ(best.collectives.factor, CollectiveKind::kRecursive);
  EXPECT_EQ(best.collectives.output, CollectiveKind::kRecursive);
  // Same words as the bucket plan on the same grid, strictly fewer rounds.
  ASSERT_EQ(best.grid, bucket_report.best().grid);
  EXPECT_DOUBLE_EQ(best.comm.words, bucket_report.best().comm.words);
  EXPECT_LT(best.comm.messages, bucket_report.best().comm.messages);
}

// A measured calibration supersedes both knob ratios; planning twice with
// the same calibration must be deterministic and cache-compatible.
TEST(Planner, CalibrationSupersedesKnobs) {
  Calibration cal;
  cal.alpha_seconds = 4.0e-6;
  cal.beta_seconds_per_word = 1.0e-9;
  cal.dense_seconds_per_flop = 1.0e-10;
  cal.coo_seconds_per_flop = 1.0e-10;
  cal.csf_seconds_per_flop = 5.0e-11;
  cal.measured = true;
  EXPECT_DOUBLE_EQ(cal.latency_word_ratio(), 4000.0);
  EXPECT_DOUBLE_EQ(cal.flop_word_ratio(StorageFormat::kCsf), 0.05);

  PlannerOptions opts;
  opts.procs = 8;
  opts.consider_general = false;
  opts.machine = cal;
  // The knob says "pure bandwidth", the calibration says otherwise; the
  // calibration must win and pull in the recursive schedules.
  opts.latency_word_ratio = 0.0;
  const PlanReport report =
      plan_mttkrp_model({16, 16, 16}, 8, StorageFormat::kDense, 0, opts);
  EXPECT_EQ(report.best().collectives.factor, CollectiveKind::kRecursive);
}

TEST(Planner, ChosenGridNeverWorseThanTrivial1D) {
  Rng rng(11);
  for (const index_t procs : {index_t{4}, index_t{8}, index_t{12}}) {
    const shape_t dims{24, 18, 12};
    const SparseTensor coo = SparseTensor::random_sparse(dims, 0.05, rng);
    const StoredTensor x = StoredTensor::coo_view(coo);
    SparseTensor scratch;
    const PredictProblem p = make_predict_problem(x, 6, scratch);

    PlannerOptions opts;
    opts.procs = static_cast<int>(procs);
    const PlanReport report = plan_mttkrp(x, 6, opts);
    const std::vector<int> trivial{static_cast<int>(procs), 1, 1};
    const CommPrediction naive =
        predict_mttkrp_comm(p, ParAlgo::kStationary, trivial, opts.mode);
    EXPECT_LE(report.best().comm.words, naive.words + 1e-9)
        << "P = " << procs;
  }
}

TEST(Planner, RanksBlockAheadOfMediumOnUniformAndReportsBalance) {
  Rng rng(5);
  const SparseTensor coo =
      SparseTensor::random_sparse({30, 24, 20}, 0.03, rng);
  const StoredTensor x = StoredTensor::coo_view(coo);
  PlannerOptions opts;
  opts.procs = 8;
  const PlanReport report = plan_mttkrp(x, 8, opts);
  ASSERT_FALSE(report.ranked.empty());
  for (const ExecutionPlan& plan : report.ranked) {
    // Every sparse plan carries its partition's balance stats.
    EXPECT_EQ(plan.nnz_stats.per_block.size(),
              plan.algo == ParAlgo::kGeneral
                  ? static_cast<std::size_t>(8 / plan.grid[0])
                  : 8u);
    EXPECT_GE(plan.nnz_stats.imbalance(), 1.0);
    EXPECT_GT(plan.lower_bound, 0.0);
    EXPECT_GE(plan.optimality_ratio, 1.0);
  }
}

TEST(Planner, FlopWordRatioPrefersCsfBackend) {
  Rng rng(17);
  const SparseTensor coo =
      SparseTensor::random_sparse({24, 24, 24}, 0.04, rng);
  const StoredTensor x = StoredTensor::coo_view(coo);
  PlannerOptions opts;
  opts.procs = 8;
  opts.workload = PlanWorkload::kCpAls;
  opts.flop_word_ratio = 0.01;
  opts.reuse_count = 100;  // amortize the compression
  const PlanReport report = plan_mttkrp(x, 8, opts);
  EXPECT_EQ(report.best().backend, StorageFormat::kCsf);
  EXPECT_EQ(report.best().algo, ParAlgo::kStationary);
}

TEST(Planner, InfeasibleProcessorCountThrows) {
  Rng rng(3);
  const SparseTensor coo = SparseTensor::random_sparse({4, 4, 4}, 0.5, rng);
  const StoredTensor x = StoredTensor::coo_view(coo);
  PlannerOptions opts;
  opts.procs = 4096;  // > 4*4*4 and > R: no feasible factorization
  opts.consider_general = true;
  EXPECT_THROW(plan_mttkrp(x, 2, opts), std::invalid_argument);
}

TEST(Planner, ModelOnlyPlanningScalesBeyondSimulation) {
  PlannerOptions opts;
  opts.procs = 1 << 18;  // far above exact_rank_cap
  opts.consider_general = true;
  const shape_t dims{1 << 10, 1 << 10, 1 << 10};
  const PlanReport report = plan_mttkrp_model(
      dims, 1 << 10, StorageFormat::kDense, 0, opts);
  ASSERT_FALSE(report.ranked.empty());
  EXPECT_FALSE(report.best().comm.exact);  // balanced closed form
  EXPECT_GT(report.best().comm.words, 0.0);
  // Sends+receives of the modeled optimum can graze the proved bound from
  // above (cf. Figure 4's GeneralAlgorithmTracksLowerBound slack).
  EXPECT_GE(report.best().optimality_ratio, 0.99);
}

// ---------------------------------------------------------------------------
// Plan cache.

TEST(PlanCache, SecondCallHitsAndSharesReport) {
  Rng rng(23);
  const SparseTensor coo =
      SparseTensor::random_sparse({20, 16, 12}, 0.05, rng);
  const StoredTensor x = StoredTensor::coo_view(coo);
  PlannerOptions opts;
  opts.procs = 8;

  PlanCache cache;
  const auto r1 = cache.get_or_plan(x, 4, opts);
  const auto r2 = cache.get_or_plan(x, 4, opts);
  EXPECT_EQ(r1.get(), r2.get());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);

  // A different rank (or procs) is a different key.
  cache.get_or_plan(x, 5, opts);
  EXPECT_EQ(cache.misses(), 2u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PlanCache, KeySeesNnzProfileNotJustShape) {
  Rng rng(29);
  const shape_t dims{32, 32, 32};
  const SparseTensor uniform = SparseTensor::random_sparse(dims, 0.02, rng);
  SparseTensor skewed =
      SparseTensor::random_sparse_skewed(dims, 0.02, 1.5, rng);
  PlannerOptions opts;
  opts.procs = 8;
  const std::uint64_t key_uniform =
      plan_cache_key(StoredTensor::coo_view(uniform), 4, opts);
  const std::uint64_t key_skewed =
      plan_cache_key(StoredTensor::coo_view(skewed), 4, opts);
  EXPECT_NE(key_uniform, key_skewed);
}

// ---------------------------------------------------------------------------
// Autotuned par_cp_als.

TEST(ParCpAlsAutotune, PicksAPlanAndConverges) {
  Rng rng(31);
  const SparseTensor coo =
      SparseTensor::random_sparse({16, 14, 12}, 0.1, rng);
  ParCpAlsOptions opts;
  opts.rank = 4;
  opts.max_iterations = 25;
  opts.tolerance = 1e-6;
  opts.autotune = true;
  opts.procs = 8;
  const ParCpAlsResult r = par_cp_als(coo, opts);
  EXPECT_TRUE(r.autotuned);
  int grid_procs = 1;
  for (int e : r.plan.grid) grid_procs *= e;
  EXPECT_EQ(grid_procs, 8);
  EXPECT_GT(r.final_fit, 0.0);
  EXPECT_GT(r.total_mttkrp_words_max, 0);
}

// ---------------------------------------------------------------------------
// Nonzero balance statistics and the skewed generator.

TEST(BlockNnz, CountsMatchDistributedLocals) {
  Rng rng(37);
  const SparseTensor coo =
      SparseTensor::random_sparse_skewed({25, 19, 14}, 0.05, 1.0, rng);
  const ProcessorGrid grid({3, 2, 2});
  for (const SparsePartitionScheme scheme :
       {SparsePartitionScheme::kBlock, SparsePartitionScheme::kMediumGrained}) {
    const BlockNnzStats stats = count_block_nnz(coo, grid, scheme);
    const SparseDistribution dist = distribute_nonzeros(coo, grid, scheme);
    index_t total = 0;
    for (int r = 0; r < grid.size(); ++r) {
      EXPECT_EQ(stats.per_block[static_cast<std::size_t>(r)],
                dist.local[static_cast<std::size_t>(r)].nnz());
      total += stats.per_block[static_cast<std::size_t>(r)];
    }
    EXPECT_EQ(total, coo.nnz());
    EXPECT_GE(stats.max_nnz, stats.min_nnz);
    EXPECT_NEAR(stats.mean_nnz,
                static_cast<double>(coo.nnz()) / grid.size(), 1e-12);
  }
}

TEST(BlockNnz, MediumGrainedNoWorseThanBlockOnSkewedTensor) {
  Rng rng(41);
  const SparseTensor coo =
      SparseTensor::random_sparse_skewed({40, 40, 40}, 0.02, 1.5, rng);
  const ProcessorGrid grid({2, 2, 2});
  const BlockNnzStats block =
      count_block_nnz(coo, grid, SparsePartitionScheme::kBlock);
  const BlockNnzStats medium =
      count_block_nnz(coo, grid, SparsePartitionScheme::kMediumGrained);
  EXPECT_LE(medium.imbalance(), block.imbalance() + 1e-12);
}

TEST(SkewedGenerator, RespectsDimsAndSkewConcentrates) {
  Rng rng(43);
  const shape_t dims{30, 20, 10};
  const SparseTensor x =
      SparseTensor::random_sparse_skewed(dims, 0.05, 2.0, rng);
  EXPECT_EQ(x.dims(), dims);
  EXPECT_GT(x.nnz(), 0);
  EXPECT_LE(x.nnz(), static_cast<index_t>(0.05 * 30 * 20 * 10 + 1));
  for (int k = 0; k < 3; ++k) {
    for (index_t q = 0; q < x.nnz(); ++q) {
      ASSERT_LT(x.index(k, q), dims[static_cast<std::size_t>(k)]);
    }
  }
  // Strong skew concentrates mass on low indices: the first quarter of the
  // slices in mode 0 holds well over its proportional share.
  index_t low = 0;
  for (index_t q = 0; q < x.nnz(); ++q) {
    if (x.index(0, q) < dims[0] / 4) ++low;
  }
  EXPECT_GT(static_cast<double>(low), 0.5 * static_cast<double>(x.nnz()));

  // skew = 0 matches the uniform generator's statistical profile (no
  // concentration) without requiring identical draws.
  const SparseTensor flat =
      SparseTensor::random_sparse_skewed(dims, 0.05, 0.0, rng);
  index_t flat_low = 0;
  for (index_t q = 0; q < flat.nnz(); ++q) {
    if (flat.index(0, q) < dims[0] / 4) ++flat_low;
  }
  EXPECT_LT(static_cast<double>(flat_low),
            0.5 * static_cast<double>(flat.nnz()));
}

}  // namespace
}  // namespace mtk
