// Umbrella header: the full public API of the communication-optimal MTTKRP
// library. Include this for everything, or the individual module headers
// for faster builds:
//
//   src/tensor/*      storage backends (dense, sparse COO, CSF), matrices,
//                     matricization, Khatri-Rao
//   src/mttkrp/*      sequential MTTKRP algorithms (dense + sparse kernels),
//                     storage dispatch layer, dimension tree
//   src/bounds/*      communication lower bounds, HBL/LP machinery,
//                     Theorem 6.1 optimality checkers
//   src/memsim/*      two-level memory (I/O) model simulator + traces
//   src/parsim/*      distributed-machine simulator, collectives,
//                     Algorithms 3 and 4, all-modes variant
//   src/costmodel/*   Eq. (14)/(18) grid optimization, CARMA model, Fig. 4
//   src/planner/*     autotuning planner: exact communication predictor,
//                     grid/scheme/backend search, memoized plan cache
//   src/sketch/*      randomized sketched backend: leverage scores, exact
//                     KRP sampling, sampled MTTKRP, sketched Gram solves
//   src/cp/*          CP-ALS (sequential + simulated-parallel), CP-gradient;
//                     storage-polymorphic via src/mttkrp/dispatch.hpp
//   src/obs/*         observability: span tracer + Chrome-trace export,
//                     process-wide metrics registry, plan-vs-actual drift
//   src/io/*          binary tensor/matrix/model files, FROSTT .tns COO
#pragma once

#include "src/bounds/hbl.hpp"
#include "src/bounds/optimality.hpp"
#include "src/bounds/parallel_bounds.hpp"
#include "src/bounds/sequential_bounds.hpp"
#include "src/bounds/simplex.hpp"
#include "src/costmodel/carma.hpp"
#include "src/costmodel/grid_search.hpp"
#include "src/costmodel/model.hpp"
#include "src/cp/cp_als.hpp"
#include "src/cp/cp_gradient.hpp"
#include "src/cp/par_cp_als.hpp"
#include "src/cp/par_cp_gradient.hpp"
#include "src/cp/tucker.hpp"
#include "src/io/frostt_presets.hpp"
#include "src/io/tensor_io.hpp"
#include "src/memsim/memory_model.hpp"
#include "src/memsim/traced_mttkrp.hpp"
#include "src/mttkrp/blocked_rect.hpp"
#include "src/mttkrp/dim_tree.hpp"
#include "src/mttkrp/dispatch.hpp"
#include "src/mttkrp/mttkrp.hpp"
#include "src/mttkrp/partial.hpp"
#include "src/mttkrp/sparse_kernels.hpp"
#include "src/mttkrp/thread_arena.hpp"
#include "src/obs/drift.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/parsim/collective_variants.hpp"
#include "src/parsim/collectives.hpp"
#include "src/parsim/distribution.hpp"
#include "src/parsim/grid.hpp"
#include "src/parsim/machine.hpp"
#include "src/parsim/par_mttkrp.hpp"
#include "src/parsim/par_multi_mttkrp.hpp"
#include "src/parsim/transport/counting_transport.hpp"
#include "src/parsim/transport/thread_transport.hpp"
#include "src/parsim/transport/transport.hpp"
#include "src/planner/calibrate.hpp"
#include "src/planner/plan_cache.hpp"
#include "src/planner/planner.hpp"
#include "src/planner/predict.hpp"
#include "src/serve/server.hpp"
#include "src/serve/tensor_registry.hpp"
#include "src/sketch/krp_sample.hpp"
#include "src/sketch/leverage.hpp"
#include "src/sketch/sampled_mttkrp.hpp"
#include "src/sketch/sketched_solve.hpp"
#include "src/support/check.hpp"
#include "src/support/index.hpp"
#include "src/support/json.hpp"
#include "src/support/math_util.hpp"
#include "src/support/rng.hpp"
#include "src/tensor/block.hpp"
#include "src/tensor/csf.hpp"
#include "src/tensor/csf_set.hpp"
#include "src/tensor/dense_tensor.hpp"
#include "src/tensor/eigen_sym.hpp"
#include "src/tensor/khatri_rao.hpp"
#include "src/tensor/matricize.hpp"
#include "src/tensor/matrix.hpp"
#include "src/tensor/sparse_tensor.hpp"
#include "src/tensor/ttm.hpp"
