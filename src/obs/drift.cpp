#include "src/obs/drift.hpp"

#include <algorithm>
#include <cmath>

namespace mtk {
namespace {

enum class PhaseKind { kTensor, kFactor, kOutput, kGram, kUnknown };

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

// Maps the PhaseScope labels the drivers use onto the predictor's four
// traffic categories. Labels are an API the drivers own; keep this switch
// in sync when adding phases.
PhaseKind classify(const std::string& label) {
  if (starts_with(label, "all-gather X")) return PhaseKind::kTensor;
  if (starts_with(label, "all-gather A")) return PhaseKind::kFactor;
  if (starts_with(label, "reduce-scatter B")) return PhaseKind::kOutput;
  if (starts_with(label, "all-reduce gram")) return PhaseKind::kGram;
  return PhaseKind::kUnknown;
}

double drift_pct(double predicted, double actual) {
  if (predicted == actual) return 0.0;
  if (predicted == 0.0) return 100.0;
  return 100.0 * (actual - predicted) / predicted;
}

}  // namespace

double DriftRow::word_drift_pct() const {
  return drift_pct(predicted_words, actual_words);
}

double DriftRow::message_drift_pct() const {
  return drift_pct(predicted_messages, actual_messages);
}

const DriftRow* DriftReport::find(const std::string& phase) const {
  for (const auto& row : rows) {
    if (row.phase == phase) return &row;
  }
  return nullptr;
}

DriftReport compute_drift(const Transport& transport,
                          const CommPrediction& predicted, double sweep_count,
                          double gram_count) {
  MTK_CHECK(sweep_count > 0.0 && gram_count > 0.0,
            "compute_drift: counts must be positive");
  const std::size_t p = static_cast<std::size_t>(transport.num_ranks());

  // Per-rank, per-category accumulation over every recorded phase,
  // normalized to one sweep so it is comparable to the per-iteration
  // prediction. Legacy records without per-rank deltas contribute nothing
  // (all current drivers record them).
  constexpr int kCategories = 4;  // tensor, factor, output, gram
  std::vector<double> words(p * kCategories, 0.0);
  std::vector<double> msgs(p * kCategories, 0.0);
  int recorded = 0;
  for (const PhaseRecord& phase : transport.phases()) {
    const PhaseKind kind = classify(phase.label);
    if (kind == PhaseKind::kUnknown) continue;
    if (phase.rank_words.size() != p || phase.rank_messages.size() != p) {
      continue;
    }
    ++recorded;
    const std::size_t c = static_cast<std::size_t>(kind);
    for (std::size_t r = 0; r < p; ++r) {
      words[r * kCategories + c] += static_cast<double>(phase.rank_words[r]);
      msgs[r * kCategories + c] +=
          static_cast<double>(phase.rank_messages[r]);
    }
  }

  // Normalize to one sweep with a single division per category: the raw
  // sums are exact integers, and one correctly-rounded division returns the
  // exact quotient whenever it is representable — scaling each phase by a
  // reciprocal instead would smear ~1e-16 of error into the exact-parity
  // comparison.
  for (std::size_t r = 0; r < p; ++r) {
    for (int c = 0; c < kCategories; ++c) {
      const double divisor = c == static_cast<int>(PhaseKind::kGram)
                                 ? gram_count
                                 : sweep_count;
      words[r * kCategories + static_cast<std::size_t>(c)] /= divisor;
      msgs[r * kCategories + static_cast<std::size_t>(c)] /= divisor;
    }
  }

  // Mirror RankAccum::finalize (predict.cpp): the first rank with maximal
  // total words supplies the breakdown; messages are the max over all ranks.
  auto total_words = [&](std::size_t r) {
    double t = 0.0;
    for (int c = 0; c < kCategories; ++c) t += words[r * kCategories + c];
    return t;
  };
  auto total_msgs = [&](std::size_t r) {
    double t = 0.0;
    for (int c = 0; c < kCategories; ++c) t += msgs[r * kCategories + c];
    return t;
  };
  std::size_t best = 0;
  double max_msgs = p > 0 ? total_msgs(0) : 0.0;
  for (std::size_t r = 1; r < p; ++r) {
    if (total_words(r) > total_words(best)) best = r;
    max_msgs = std::max(max_msgs, total_msgs(r));
  }

  auto category = [&](PhaseKind kind, double* w, double* m) {
    const std::size_t c = static_cast<std::size_t>(kind);
    *w = p > 0 ? words[best * kCategories + c] : 0.0;
    *m = p > 0 ? msgs[best * kCategories + c] : 0.0;
  };

  DriftReport report;
  report.phases_recorded = recorded;
  report.exact_expected =
      transport.kind() == TransportKind::kSim && predicted.exact;

  struct CatSpec {
    const char* name;
    PhaseKind kind;
    double pred_words;
    double pred_msgs;
  };
  const CatSpec cats[] = {
      {"tensor", PhaseKind::kTensor, predicted.tensor_words,
       predicted.tensor_messages},
      {"factor", PhaseKind::kFactor, predicted.factor_words,
       predicted.factor_messages},
      {"output", PhaseKind::kOutput, predicted.output_words,
       predicted.output_messages},
      {"gram", PhaseKind::kGram, predicted.gram_words,
       predicted.gram_messages},
  };
  for (const CatSpec& cat : cats) {
    DriftRow row;
    row.phase = cat.name;
    row.predicted_words = cat.pred_words;
    row.predicted_messages = cat.pred_msgs;
    category(cat.kind, &row.actual_words, &row.actual_messages);
    if (row.predicted_words == 0.0 && row.actual_words == 0.0 &&
        row.predicted_messages == 0.0 && row.actual_messages == 0.0) {
      continue;  // phase absent from this run (e.g. no tensor gather)
    }
    report.rows.push_back(std::move(row));
  }

  DriftRow total;
  total.phase = "total";
  total.predicted_words = predicted.words;
  total.predicted_messages = predicted.messages;
  total.actual_words = p > 0 ? total_words(best) : 0.0;
  total.actual_messages = max_msgs;
  report.rows.push_back(std::move(total));

  for (const DriftRow& row : report.rows) {
    report.max_abs_drift_pct =
        std::max({report.max_abs_drift_pct, std::fabs(row.word_drift_pct()),
                  std::fabs(row.message_drift_pct())});
  }
  return report;
}

void print_drift_report(std::FILE* out, const DriftReport& report) {
  std::fprintf(out, "plan-vs-actual drift (%d phase records, %s parity)\n",
               report.phases_recorded,
               report.exact_expected ? "exact" : "best-effort");
  std::fprintf(out, "  %-8s %14s %14s %8s %12s %12s %8s\n", "phase",
               "pred words", "actual words", "drift", "pred msgs",
               "actual msgs", "drift");
  for (const DriftRow& row : report.rows) {
    std::fprintf(out, "  %-8s %14.1f %14.1f %7.2f%% %12.1f %12.1f %7.2f%%\n",
                 row.phase.c_str(), row.predicted_words, row.actual_words,
                 row.word_drift_pct(), row.predicted_messages,
                 row.actual_messages, row.message_drift_pct());
  }
  std::fprintf(out, "  max |drift| = %.4f%%%s\n", report.max_abs_drift_pct,
               report.ok() ? "" : "  ** exceeds exact-parity requirement **");
}

}  // namespace mtk
