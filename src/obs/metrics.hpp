// Process-wide metrics registry: the one home for every counter the library
// used to scatter across subsystems (kernel-variant witnesses, CSF build
// counts, plan-cache hit rates, leverage-CDF rebuilds, collective traffic).
//
// Design rules (see DESIGN.md, "Observability"):
//   * Instruments are registered once by stable dotted name
//     ("mtk.kernel.variant.tiled") and live for the process lifetime — the
//     returned references never dangle, so call sites hold them in
//     function-local statics and the steady-state path never touches the
//     registry lock.
//   * The fast path is lock-free: Counter::add and Histogram::observe are
//     relaxed atomic RMWs; Gauge::set is a relaxed store. Only registration
//     (first call per site) and snapshotting take the mutex.
//   * Snapshots are consistent-enough: values are read with relaxed loads
//     while writers may be running; the registry is accounting, not a
//     synchronization mechanism.
//
// Stable names in use are tabulated in README.md ("Observability").
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mtk {

class Counter {
 public:
  void add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    // Relaxed CAS loop: gauges are updated from orchestrator code, not the
    // per-nonzero hot loop, so contention is negligible.
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Power-of-two histogram over nonnegative integer observations: bucket b
// counts values whose bit width is b (value 0 lands in bucket 0), so 64
// fixed buckets cover the full int64 range with no configuration and the
// observe path is two relaxed RMWs plus two bounded CAS loops.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void observe(std::int64_t value);

  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  // Smallest / largest observation; 0 when empty.
  std::int64_t min() const;
  std::int64_t max() const;
  std::int64_t bucket_count(int bucket) const;
  // Upper bound of the power-of-two bucket holding the q-quantile
  // (q in [0, 1]) of the observations so far; 0 when empty. Within 2x of
  // the true quantile — runbook-grade latency reporting (exact percentiles
  // come from recorded samples, e.g. bench_serve).
  std::int64_t approx_quantile_upper(double q) const;
  void reset();

 private:
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{0};  // valid only when count_ > 0
  std::atomic<std::int64_t> max_{0};
  std::atomic<std::int64_t> buckets_[kBuckets] = {};
};

struct MetricsSnapshot {
  struct CounterRow {
    std::string name;
    std::int64_t value = 0;
  };
  struct GaugeRow {
    std::string name;
    double value = 0.0;
  };
  struct HistogramRow {
    std::string name;
    std::int64_t count = 0;
    std::int64_t sum = 0;
    std::int64_t min = 0;
    std::int64_t max = 0;
  };
  std::vector<CounterRow> counters;      // sorted by name
  std::vector<GaugeRow> gauges;          // sorted by name
  std::vector<HistogramRow> histograms;  // sorted by name

  const CounterRow* find_counter(const std::string& name) const;
};

class MetricsRegistry {
 public:
  // The process-wide registry. Intentionally leaked: instruments are
  // referenced from function-local statics all over the library, so the
  // registry must survive static destruction.
  static MetricsRegistry& global();

  // Returns the instrument registered under `name`, creating it on first
  // use. A name identifies exactly one instrument kind; asking for the same
  // name as a different kind throws.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

  // Metrics snapshot in the BENCH_* telemetry shape: a "context" object
  // (kind mtk-metrics-v1) and a "benchmarks" array with one row per
  // instrument, so the same downstream tooling consumes bench telemetry and
  // metrics snapshots uniformly (tools/validate_telemetry checks both).
  void write_json(std::FILE* out) const;
  bool write_json_file(const std::string& path) const;

  // Zeroes every registered instrument (names stay registered). Tests only.
  void reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace mtk
