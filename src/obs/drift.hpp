// Plan-vs-actual drift: after a traced run, compares the predictor's
// per-phase word/message breakdown (src/planner/predict) against the
// transport's recorded phase counters. On the sim backend the predictor
// replays the exact schedules, so drift must be identically zero — the CLI
// exits nonzero otherwise; on the threads backend the counters are
// bit-identical to the simulator's by construction (see DESIGN.md), so zero
// drift doubles as a live check that the real transport still executes the
// planned schedules.
//
// The comparison mirrors CommPrediction's bottleneck semantics exactly: the
// word breakdown belongs to the rank with the largest total words moved
// (first such rank in ascending order), while the message total is the max
// over all ranks. Anything else would report phantom drift on runs where
// the word-bottleneck rank is not the message-bottleneck rank.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/parsim/transport/transport.hpp"
#include "src/planner/predict.hpp"

namespace mtk {

struct DriftRow {
  std::string phase;  // "tensor" / "factor" / "output" / "gram" / "total"
  double predicted_words = 0.0;
  double actual_words = 0.0;
  double predicted_messages = 0.0;
  double actual_messages = 0.0;

  double word_drift_pct() const;
  double message_drift_pct() const;
  bool exact() const {
    return predicted_words == actual_words &&
           predicted_messages == actual_messages;
  }
};

struct DriftReport {
  std::vector<DriftRow> rows;  // per-phase rows, then a "total" row
  int phases_recorded = 0;     // transport phase records consumed
  // True when the backend promises exact parity (sim, or an exact
  // prediction being checked against counters the sim also produced).
  bool exact_expected = false;
  double max_abs_drift_pct = 0.0;  // over words and messages, all rows

  const DriftRow* find(const std::string& phase) const;
  // Exact parity when expected; within-tolerance otherwise (the threads
  // backend keeps sim-identical counters, so this is still exact in
  // practice — the flag only controls whether a mismatch is fatal).
  bool ok() const { return !exact_expected || max_abs_drift_pct == 0.0; }
};

// Builds the report from the transport's recorded phases. `sweep_count`
// divides the per-sweep phases (factor gathers, tensor gathers, output
// scatters) and `gram_count` divides the Gram all-reduces, so a CP-ALS run
// over I iterations compares against the per-iteration prediction with
// sweep_count = I and gram_count = I + 1 (initialization performs one extra
// set of Gram all-reduces). A single MTTKRP uses the defaults (1, 1).
DriftReport compute_drift(const Transport& transport,
                          const CommPrediction& predicted,
                          double sweep_count = 1.0, double gram_count = 1.0);

// Human-readable percent-drift table (the --drift-report output).
void print_drift_report(std::FILE* out, const DriftReport& report);

}  // namespace mtk
