#include "src/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/support/check.hpp"

namespace mtk {
namespace {

int bucket_for(std::int64_t value) {
  if (value <= 0) return 0;
  int b = 0;
  std::uint64_t v = static_cast<std::uint64_t>(value);
  while (v != 0) {
    v >>= 1;
    ++b;
  }
  return b < Histogram::kBuckets ? b : Histogram::kBuckets - 1;
}

void atomic_min(std::atomic<std::int64_t>& slot, std::int64_t value) {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (value < cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::int64_t>& slot, std::int64_t value) {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (value > cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

// Writes `s` as a JSON string literal. Metric names are plain dotted ASCII,
// but escape defensively so a stray character can't corrupt the document.
void write_json_string(std::FILE* out, const std::string& s) {
  std::fputc('"', out);
  for (const char c : s) {
    switch (c) {
      case '"': std::fputs("\\\"", out); break;
      case '\\': std::fputs("\\\\", out); break;
      case '\n': std::fputs("\\n", out); break;
      case '\t': std::fputs("\\t", out); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::fprintf(out, "\\u%04x", static_cast<unsigned>(c));
        } else {
          std::fputc(c, out);
        }
    }
  }
  std::fputc('"', out);
}

}  // namespace

void Histogram::observe(std::int64_t value) {
  // First observation seeds min_/max_ via count_: racy first-few-updates can
  // briefly leave min at 0 if two threads race the very first observe, which
  // is acceptable accounting slop (documented in the header).
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  } else {
    atomic_min(min_, value);
    atomic_max(max_, value);
  }
  sum_.fetch_add(value, std::memory_order_relaxed);
  buckets_[bucket_for(value)].fetch_add(1, std::memory_order_relaxed);
}

std::int64_t Histogram::min() const {
  return count() > 0 ? min_.load(std::memory_order_relaxed) : 0;
}

std::int64_t Histogram::max() const {
  return count() > 0 ? max_.load(std::memory_order_relaxed) : 0;
}

std::int64_t Histogram::bucket_count(int bucket) const {
  MTK_CHECK(bucket >= 0 && bucket < kBuckets, "histogram bucket out of range");
  return buckets_[bucket].load(std::memory_order_relaxed);
}

std::int64_t Histogram::approx_quantile_upper(double q) const {
  MTK_CHECK(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1], got ", q);
  const std::int64_t total = count();
  if (total <= 0) return 0;
  // Rank of the q-quantile (1-based), then walk the cumulative bucket
  // counts. Buckets hold values of one bit width, so bucket b's upper
  // bound is 2^b - 1 (bucket 0 holds exactly the value 0).
  std::int64_t target = static_cast<std::int64_t>(
      std::ceil(q * static_cast<double>(total)));
  if (target < 1) target = 1;
  std::int64_t cumulative = 0;
  for (int b = 0; b < kBuckets; ++b) {
    cumulative += buckets_[b].load(std::memory_order_relaxed);
    if (cumulative >= target) {
      if (b == 0) return 0;
      if (b >= 63) return std::numeric_limits<std::int64_t>::max();
      return (std::int64_t{1} << b) - 1;
    }
  }
  return max();
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

const MetricsSnapshot::CounterRow* MetricsSnapshot::find_counter(
    const std::string& name) const {
  for (const auto& row : counters) {
    if (row.name == name) return &row;
  }
  return nullptr;
}

MetricsRegistry& MetricsRegistry::global() {
  static auto* registry = new MetricsRegistry;
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  MTK_CHECK(gauges_.count(name) == 0 && histograms_.count(name) == 0,
            "metric '", name, "' already registered as a different kind");
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  MTK_CHECK(counters_.count(name) == 0 && histograms_.count(name) == 0,
            "metric '", name, "' already registered as a different kind");
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  MTK_CHECK(counters_.count(name) == 0 && gauges_.count(name) == 0,
            "metric '", name, "' already registered as a different kind");
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back(
        {name, h->count(), h->sum(), h->min(), h->max()});
  }
  return snap;
}

void MetricsRegistry::write_json(std::FILE* out) const {
  const MetricsSnapshot snap = snapshot();
  std::fputs("{\n  \"context\": {\n", out);
  std::fputs("    \"kind\": \"mtk-metrics-v1\",\n", out);
  std::fputs("    \"caveat\": \"point-in-time snapshot of the process-wide "
             "MetricsRegistry\"\n",
             out);
  std::fputs("  },\n  \"benchmarks\": [\n", out);
  bool first = true;
  auto comma = [&] {
    if (!first) std::fputs(",\n", out);
    first = false;
  };
  for (const auto& row : snap.counters) {
    comma();
    std::fputs("    {\"name\": ", out);
    write_json_string(out, row.name);
    std::fprintf(out, ", \"run_type\": \"counter\", \"value\": %lld}",
                 static_cast<long long>(row.value));
  }
  for (const auto& row : snap.gauges) {
    comma();
    std::fputs("    {\"name\": ", out);
    write_json_string(out, row.name);
    std::fprintf(out, ", \"run_type\": \"gauge\", \"value\": %.17g}",
                 row.value);
  }
  for (const auto& row : snap.histograms) {
    comma();
    std::fputs("    {\"name\": ", out);
    write_json_string(out, row.name);
    std::fprintf(out,
                 ", \"run_type\": \"histogram\", \"count\": %lld, "
                 "\"sum\": %lld, \"min\": %lld, \"max\": %lld}",
                 static_cast<long long>(row.count),
                 static_cast<long long>(row.sum),
                 static_cast<long long>(row.min),
                 static_cast<long long>(row.max));
  }
  std::fputs("\n  ]\n}\n", out);
}

bool MetricsRegistry::write_json_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  write_json(f);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace mtk
