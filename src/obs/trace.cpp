#include "src/obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <set>

#include "src/support/check.hpp"

namespace mtk {
namespace {

// Thread-local tracing state. `rank` is keyed by session generation so a
// worker tagged in one session doesn't leak its rank into the next.
struct ThreadState {
  std::uint64_t generation = 0;
  int rank = -1;
  void* buffer = nullptr;  // TraceSession::ThreadBuffer* for `generation`
};

thread_local ThreadState t_state;

ThreadState& state_for(std::uint64_t generation) {
  if (t_state.generation != generation) {
    t_state.generation = generation;
    t_state.rank = -1;
    t_state.buffer = nullptr;
  }
  return t_state;
}

}  // namespace

const char* to_string(SpanCategory category) {
  switch (category) {
    case SpanCategory::kCollective: return "collective";
    case SpanCategory::kKernel: return "kernel";
    case SpanCategory::kPlanner: return "planner";
    case SpanCategory::kSweep: return "sweep";
    case SpanCategory::kPhase: return "phase";
    case SpanCategory::kOther: return "other";
  }
  return "other";
}

struct TraceSession::ThreadBuffer {
  std::vector<TraceEvent> events;
};

std::atomic<TraceSession*> TraceSession::g_current{nullptr};

TraceSession::TraceSession() = default;

TraceSession::~TraceSession() {
  if (active_) stop();
}

void TraceSession::start() {
  MTK_CHECK(!active_, "TraceSession already started");
  static std::atomic<std::uint64_t> next_generation{1};
  generation_ = next_generation.fetch_add(1, std::memory_order_relaxed);
  active_ = true;
  TraceSession* expected = nullptr;
  MTK_REQUIRE(
      g_current.compare_exchange_strong(expected, this,
                                        std::memory_order_release),
      "another TraceSession is already active");
}

void TraceSession::stop() {
  if (!active_) return;
  active_ = false;
  g_current.store(nullptr, std::memory_order_release);
}

void TraceSession::set_current_rank(int rank) {
  TraceSession* session = current();
  if (session == nullptr) return;
  state_for(session->generation_).rank = rank;
}

int TraceSession::current_rank() {
  TraceSession* session = current();
  if (session == nullptr) return -1;
  return state_for(session->generation_).rank;
}

std::int64_t TraceSession::now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                              epoch)
      .count();
}

TraceSession::ThreadBuffer* TraceSession::buffer_for_this_thread() {
  ThreadState& state = state_for(generation_);
  if (state.buffer == nullptr) {
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->events.reserve(4096);
    state.buffer = buffer.get();
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(std::move(buffer));
  }
  return static_cast<ThreadBuffer*>(state.buffer);
}

void TraceSession::record(const TraceEvent& event) {
  buffer_for_this_thread()->events.push_back(event);
}

std::vector<TraceEvent> TraceSession::events() const {
  MTK_CHECK(!active_, "stop the TraceSession before reading events");
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> merged;
  std::size_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->events.size();
  merged.reserve(total);
  for (const auto& buffer : buffers_) {
    merged.insert(merged.end(), buffer->events.begin(), buffer->events.end());
  }
  return merged;
}

namespace {

void write_escaped(std::FILE* out, const char* s) {
  std::fputc('"', out);
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      std::fputc('\\', out);
      std::fputc(c, out);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::fprintf(out, "\\u%04x", static_cast<unsigned>(c));
    } else {
      std::fputc(c, out);
    }
  }
  std::fputc('"', out);
}

}  // namespace

void TraceSession::write_chrome_trace(std::FILE* out) const {
  std::vector<TraceEvent> all = events();
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns < b.start_ns;
                   });

  std::set<int> tracks;
  for (const TraceEvent& e : all) tracks.insert(e.track);

  std::fputs("{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n", out);
  bool first = true;
  auto comma = [&] {
    if (!first) std::fputs(",\n", out);
    first = false;
  };
  // Metadata first: name each used track so Perfetto shows "rank 0..P-1"
  // lanes instead of raw tids. Track 0 is the orchestrating thread.
  for (const int track : tracks) {
    comma();
    std::fprintf(out,
                 "{\"ph\": \"M\", \"pid\": 1, \"tid\": %d, "
                 "\"name\": \"thread_name\", \"args\": {\"name\": ",
                 track);
    if (track == 0) {
      std::fputs("\"orchestrator\"}}", out);
    } else {
      std::fprintf(out, "\"rank %d\"}}", track - 1);
    }
  }
  for (const TraceEvent& e : all) {
    comma();
    std::fprintf(out, "{\"ph\": \"X\", \"pid\": 1, \"tid\": %d, \"cat\": ",
                 e.track);
    write_escaped(out, to_string(e.category));
    std::fputs(", \"name\": ", out);
    write_escaped(out, e.name);
    // Chrome traces use microseconds; keep sub-µs resolution as a fraction.
    std::fprintf(out, ", \"ts\": %.3f, \"dur\": %.3f",
                 static_cast<double>(e.start_ns) / 1000.0,
                 static_cast<double>(e.dur_ns) / 1000.0);
    if (e.arg_count > 0) {
      std::fputs(", \"args\": {", out);
      for (int i = 0; i < e.arg_count; ++i) {
        if (i > 0) std::fputs(", ", out);
        write_escaped(out, e.args[i].name);
        std::fprintf(out, ": %lld", static_cast<long long>(e.args[i].value));
      }
      std::fputc('}', out);
    }
    std::fputc('}', out);
  }
  std::fputs("\n]\n}\n", out);
}

bool TraceSession::write_chrome_trace_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  write_chrome_trace(f);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace mtk
