// Span-based tracer with a near-zero-cost disabled path.
//
// Usage:
//   TraceSession session;
//   session.start();                     // tracing on, process-wide
//   { Span s(SpanCategory::kKernel, "mttkrp_csf"); s.arg("nnz", nnz); ... }
//   session.stop();                      // tracing off; events retained
//   session.write_chrome_trace_file("trace.json");
//
// Overhead discipline (the invariants DESIGN.md's appendix explains):
//   * Disabled (the default — no session started): a Span constructor is one
//     relaxed atomic load and trivial stack initialization. No clock read, no
//     allocation, no branch beyond the null check. Tier-1 perf gates
//     (kernel_smoke) run with tracing off and must not see the tracer.
//   * Enabled: events land in per-thread buffers (vector push_back onto
//     pre-reserved storage), so the hot path takes no lock and shares no
//     cache line across threads. Buffer registration — once per thread per
//     session — is the only locked operation.
//   * Span names and arg names must be string literals (or otherwise outlive
//     the session): spans store `const char*` and never copy or allocate.
//
// Rank attribution: transports call TraceSession::set_current_rank(r) on the
// thread about to run rank r's work (ThreadTransport worker threads do it
// once at spawn; SimTransport brackets each run_ranks body). Spans opened
// while a rank is current are emitted on that rank's track in the Chrome
// trace (tid = rank + 1; tid 0 is the orchestrator thread).
//
// stop() requires quiescence: the caller must ensure no thread is inside a
// Span when stop() flips the session off. All call sites in this repo stop
// only after transports are joined / parallel regions ended.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mtk {

enum class SpanCategory : std::uint8_t {
  kCollective,  // one collective phase (all-gather / reduce-scatter / ...)
  kKernel,      // one local MTTKRP kernel dispatch
  kPlanner,     // plan_mttkrp scoring, plan-cache lookups
  kSweep,       // one CP-ALS / CP-gradient iteration, leverage redraws
  kPhase,       // driver-level phase (gather factors / local compute / ...)
  kOther,
};

const char* to_string(SpanCategory category);

struct TraceEvent {
  static constexpr int kMaxArgs = 3;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
  int track = 0;  // 0 = orchestrator, r + 1 = transport rank r
  SpanCategory category = SpanCategory::kOther;
  const char* name = "";
  struct Arg {
    const char* name = "";
    std::int64_t value = 0;
  };
  Arg args[kMaxArgs];
  int arg_count = 0;
};

class TraceSession {
 public:
  // Out of line: the implicit member instantiations need the complete
  // ThreadBuffer type, which only trace.cpp has.
  TraceSession();
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  // Makes this session the process-wide active one. Only one session may be
  // active at a time.
  void start();
  // Deactivates tracing. Requires span quiescence (see file comment).
  // Collected events remain available for export.
  void stop();
  bool active() const { return active_; }

  // The active session, or nullptr when tracing is off. One relaxed load.
  static TraceSession* current() {
    return g_current.load(std::memory_order_relaxed);
  }

  // Tags the calling thread as executing `rank`'s work (-1 = orchestrator).
  // No-op when no session is active.
  static void set_current_rank(int rank);
  static int current_rank();

  // Monotonic clock in nanoseconds (0 at first use in the process).
  static std::int64_t now_ns();

  void record(const TraceEvent& event);

  // All recorded events, merged across threads (stable within a thread).
  // Call only while stopped.
  std::vector<TraceEvent> events() const;

  // Chrome trace-event JSON ("trace event format"), loadable in Perfetto /
  // chrome://tracing: thread_name metadata per track, then complete ("X")
  // events sorted by timestamp. Call only while stopped.
  void write_chrome_trace(std::FILE* out) const;
  bool write_chrome_trace_file(const std::string& path) const;

 private:
  struct ThreadBuffer;
  ThreadBuffer* buffer_for_this_thread();

  static std::atomic<TraceSession*> g_current;

  bool active_ = false;
  std::uint64_t generation_ = 0;  // distinguishes sessions for TL caching
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

// RAII span. Construction snapshots the clock when tracing is enabled;
// destruction records one TraceEvent into the calling thread's buffer.
class Span {
 public:
  Span(SpanCategory category, const char* name) {
    session_ = TraceSession::current();
    if (session_ == nullptr) return;
    event_.category = category;
    event_.name = name;
    event_.track = TraceSession::current_rank() + 1;
    event_.start_ns = TraceSession::now_ns();
  }

  ~Span() {
    if (session_ == nullptr) return;
    event_.dur_ns = TraceSession::now_ns() - event_.start_ns;
    session_->record(event_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Attaches a labeled integer to the event; `name` must be a literal.
  // Silently drops args beyond TraceEvent::kMaxArgs.
  void arg(const char* name, std::int64_t value) {
    if (session_ == nullptr) return;
    if (event_.arg_count >= TraceEvent::kMaxArgs) return;
    event_.args[event_.arg_count++] = {name, value};
  }

  bool enabled() const { return session_ != nullptr; }

 private:
  TraceSession* session_ = nullptr;
  TraceEvent event_;
};

}  // namespace mtk
