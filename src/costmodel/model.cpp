#include "src/costmodel/model.hpp"

#include <cstdio>

#include "src/support/check.hpp"

namespace mtk {

std::vector<ScalingPoint> strong_scaling_series(
    const ScalingModelConfig& cfg) {
  MTK_CHECK(cfg.order >= 2, "order must be >= 2");
  MTK_CHECK(cfg.dim_per_mode >= 1 && cfg.rank >= 1, "sizes must be >= 1");
  MTK_CHECK(cfg.min_log2_procs >= 0 &&
                cfg.min_log2_procs <= cfg.max_log2_procs &&
                cfg.max_log2_procs < 62,
            "invalid processor range [2^", cfg.min_log2_procs, ", 2^",
            cfg.max_log2_procs, "]");

  CostProblem problem;
  problem.dims.assign(static_cast<std::size_t>(cfg.order), cfg.dim_per_mode);
  problem.rank = cfg.rank;
  const double tensor_size = problem.tensor_size();

  std::vector<ScalingPoint> series;
  for (int e = cfg.min_log2_procs; e <= cfg.max_log2_procs; ++e) {
    const index_t procs = index_t{1} << e;
    ScalingPoint point;
    point.procs = procs;
    point.matmul_words =
        mttkrp_via_matmul_cost(cfg.order, tensor_size,
                               static_cast<double>(cfg.rank),
                               static_cast<double>(procs))
            .words;

    const GridSearchResult stat = optimal_stationary_grid(problem, procs);
    MTK_REQUIRE(stat.feasible, "no feasible N-way grid for P = ", procs,
                " (need P_k <= I_k; increase dims or decrease P)");
    point.stationary_words = stat.cost;
    point.stationary_grid = stat.grid;

    const GridSearchResult gen = optimal_general_grid(problem, procs);
    MTK_REQUIRE(gen.feasible, "no feasible (N+1)-way grid for P = ", procs);
    point.general_words = gen.cost;
    point.general_grid = gen.grid;

    // The proved lower bound: the max of Theorems 4.2 and 4.3 with
    // gamma = delta = 1 (the algorithms' own balanced distributions). The
    // Corollary 4.2 sum-envelope is NOT used here: in the small-NR regime
    // (NR < (I/P)^(1-1/N)) its Theorem 4.2 term exceeds the valid bound —
    // see the discussion in EXPERIMENTS.md.
    ParProblem lb;
    lb.dims = problem.dims;
    lb.rank = cfg.rank;
    lb.procs = procs;
    point.lower_bound_words = par_lower_bound(lb);

    series.push_back(std::move(point));
  }
  return series;
}

void print_scaling_table(const std::vector<ScalingPoint>& series) {
  std::printf("%-6s %14s %14s %14s %14s %10s\n", "log2P", "matmul",
              "stationary", "general", "lower-bound", "mm/gen");
  for (const ScalingPoint& pt : series) {
    int log2p = 0;
    index_t v = pt.procs;
    while (v > 1) {
      v >>= 1;
      ++log2p;
    }
    std::printf("%-6d %14.4e %14.4e %14.4e %14.4e %10.2f\n", log2p,
                pt.matmul_words, pt.stationary_words, pt.general_words,
                pt.lower_bound_words,
                pt.general_words > 0.0 ? pt.matmul_words / pt.general_words
                                       : 0.0);
  }
}

}  // namespace mtk
