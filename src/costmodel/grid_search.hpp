// Exact communication-cost expressions for Algorithms 3 and 4 under
// balanced data distributions (Eqs. (14) and (18) with
// nnz(X_p) = I/P, nnz(A^(k)_p) = I_k R / P), plus exhaustive minimization
// over integer processor-grid factorizations of P. These produce the
// Algorithm 3 / Algorithm 4 series of the paper's Figure 4.
#pragma once

#include <functional>
#include <vector>

#include "src/support/index.hpp"

namespace mtk {

struct CostProblem {
  shape_t dims;      // I_1 ... I_N
  index_t rank = 0;  // R

  int order() const { return static_cast<int>(dims.size()); }
  double tensor_size() const;
};

// Eq. (14): sum_k (P/P_k - 1) * I_k R / P for an N-way grid.
double stationary_comm_cost(const CostProblem& p,
                            const std::vector<index_t>& grid);

// Eq. (18): (P0 - 1) I/P + sum_k (P/(P0 P_k) - 1) * I_k R / P for an
// (N+1)-way grid ordered (P0, P1..PN).
double general_comm_cost(const CostProblem& p,
                         const std::vector<index_t>& grid);

// Nonzero-aware Eq. (18) analogue for sparse storage: Algorithm 4's tensor
// All-Gather ships (coordinates, value) tuples — N+1 words per nonzero —
// instead of dense block entries, so under a balanced nonzero distribution
// (nnz(X_p) = nnz/P) the per-processor sent words are
//   (P0 - 1) nnz (N+1) / P + sum_k (P/(P0 P_k) - 1) * I_k R / P.
// The factor terms are unchanged: factors stay dense regardless of tensor
// storage. With P0 = 1 the tensor term vanishes and the cost degenerates to
// Eq. (14) exactly, matching the dense model.
double general_comm_cost_sparse(const CostProblem& p, index_t nnz,
                                const std::vector<index_t>& grid);

// Enumerates every ordered factorization of `value` into `parts` positive
// integer factors, invoking `visit` on each.
void enumerate_factorizations(
    index_t value, int parts,
    const std::function<void(const std::vector<index_t>&)>& visit);

struct GridSearchResult {
  std::vector<index_t> grid;
  double cost = 0.0;
  bool feasible = false;
};

// The feasibility rules every grid consumer shares (the searches below and
// the planner's shortlists): an N-way grid needs P_k <= I_k so every
// processor owns a non-empty block row; an (N+1)-way grid (P0 first)
// additionally needs P0 <= R.
bool stationary_grid_feasible(const CostProblem& p,
                              const std::vector<index_t>& grid);
bool general_grid_feasible(const CostProblem& p,
                           const std::vector<index_t>& grid);

// Minimizes Eq. (14) over N-way grids with P_k <= I_k (so every processor
// owns a non-empty subtensor).
GridSearchResult optimal_stationary_grid(const CostProblem& p, index_t procs);

// Minimizes Eq. (18) over (N+1)-way grids with P0 <= R and P_k <= I_k.
GridSearchResult optimal_general_grid(const CostProblem& p, index_t procs);

// Minimizes the sparse Eq. (18) analogue over (N+1)-way grids with P0 <= R
// and P_k <= I_k. At low density the optimal P0 grows earlier than in the
// dense model: the tensor term costs nnz(N+1)/P per P0 increment instead of
// I/P, so rank replication becomes profitable at smaller P.
GridSearchResult optimal_general_grid_sparse(const CostProblem& p, index_t nnz,
                                             index_t procs);

// ---------------------------------------------------------------------------
// α-β latency terms. The Eq. (14)/(18) expressions above are the β (word)
// side of the cost; these are the matching α (message-count) side, which is
// what the bucket vs. recursive collective schedules actually trade: a
// bucket ring over a group of q members takes q-1 rounds per member, the
// recursive doubling/halving schedules log2(q) rounds when q is a power of
// two (they fall back to the ring — same count — otherwise).

// Rounds one collective costs each member under the closed-form model.
double collective_rounds_model(double group_size, bool recursive);

// Algorithm 3 per-MTTKRP message count for an N-way grid: one collective
// per mode (N-1 factor All-Gathers + 1 output Reduce-Scatter), each within
// a hyperslice of P/P_k members — mode-independent, so the sum runs over
// all modes. The all-modes driver pays the sum twice (every factor gathered
// AND every mode reduce-scattered).
double stationary_msg_cost(const std::vector<index_t>& grid, bool recursive);

// Algorithm 4 message count for an (N+1)-way grid (P0 first): the tensor
// All-Gather across the P0-fiber plus one collective per mode within groups
// of P/(P0 P_k) members.
double general_msg_cost(const std::vector<index_t>& grid, bool recursive);

}  // namespace mtk
