#include "src/costmodel/grid_search.hpp"

#include <limits>

#include "src/support/check.hpp"
#include "src/support/index.hpp"
#include "src/support/math_util.hpp"

namespace mtk {

double CostProblem::tensor_size() const {
  double i = 1.0;
  for (index_t ik : dims) i *= static_cast<double>(ik);
  return i;
}

namespace {

void check_cost_problem(const CostProblem& p) {
  check_shape(p.dims);
  MTK_CHECK(p.dims.size() >= 2, "cost model requires order >= 2");
  MTK_CHECK(p.rank >= 1, "rank must be >= 1, got ", p.rank);
}

double grid_product(const std::vector<index_t>& grid) {
  double total = 1.0;
  for (index_t g : grid) total *= static_cast<double>(g);
  return total;
}

}  // namespace

double stationary_comm_cost(const CostProblem& p,
                            const std::vector<index_t>& grid) {
  check_cost_problem(p);
  MTK_CHECK(static_cast<int>(grid.size()) == p.order(),
            "stationary cost needs an N-way grid, got ", grid.size(),
            " extents for order ", p.order());
  const double procs = grid_product(grid);
  const double r = static_cast<double>(p.rank);
  double cost = 0.0;
  for (int k = 0; k < p.order(); ++k) {
    MTK_CHECK(grid[static_cast<std::size_t>(k)] >= 1, "grid extents must be "
              ">= 1");
    const double pk = static_cast<double>(grid[static_cast<std::size_t>(k)]);
    const double words_per_proc =
        static_cast<double>(p.dims[static_cast<std::size_t>(k)]) * r / procs;
    cost += (procs / pk - 1.0) * words_per_proc;
  }
  return cost;
}

double general_comm_cost(const CostProblem& p,
                         const std::vector<index_t>& grid) {
  check_cost_problem(p);
  MTK_CHECK(static_cast<int>(grid.size()) == p.order() + 1,
            "general cost needs an (N+1)-way grid, got ", grid.size(),
            " extents for order ", p.order());
  const double procs = grid_product(grid);
  const double p0 = static_cast<double>(grid[0]);
  const double r = static_cast<double>(p.rank);
  double cost = (p0 - 1.0) * p.tensor_size() / procs;
  for (int k = 0; k < p.order(); ++k) {
    const double pk =
        static_cast<double>(grid[static_cast<std::size_t>(k + 1)]);
    const double words_per_proc =
        static_cast<double>(p.dims[static_cast<std::size_t>(k)]) * r / procs;
    cost += (procs / (p0 * pk) - 1.0) * words_per_proc;
  }
  return cost;
}

double general_comm_cost_sparse(const CostProblem& p, index_t nnz,
                                const std::vector<index_t>& grid) {
  check_cost_problem(p);
  MTK_CHECK(nnz >= 0, "nnz must be >= 0, got ", nnz);
  MTK_CHECK(static_cast<int>(grid.size()) == p.order() + 1,
            "sparse general cost needs an (N+1)-way grid, got ", grid.size(),
            " extents for order ", p.order());
  const double procs = grid_product(grid);
  const double p0 = static_cast<double>(grid[0]);
  const double r = static_cast<double>(p.rank);
  const double tuple_words =
      static_cast<double>(nnz) * static_cast<double>(p.order() + 1);
  double cost = (p0 - 1.0) * tuple_words / procs;
  for (int k = 0; k < p.order(); ++k) {
    const double pk =
        static_cast<double>(grid[static_cast<std::size_t>(k + 1)]);
    const double words_per_proc =
        static_cast<double>(p.dims[static_cast<std::size_t>(k)]) * r / procs;
    cost += (procs / (p0 * pk) - 1.0) * words_per_proc;
  }
  return cost;
}

void enumerate_factorizations(
    index_t value, int parts,
    const std::function<void(const std::vector<index_t>&)>& visit) {
  MTK_CHECK(value >= 1, "can only factorize positive integers, got ", value);
  MTK_CHECK(parts >= 1, "need at least one factor slot, got ", parts);
  std::vector<index_t> current(static_cast<std::size_t>(parts), 1);
  // Recursive divisor enumeration: slot i takes any divisor of the remainder.
  auto recurse = [&](auto&& self, index_t remaining, int slot) -> void {
    if (slot == parts - 1) {
      current[static_cast<std::size_t>(slot)] = remaining;
      visit(current);
      return;
    }
    for (index_t d = 1; d * d <= remaining; ++d) {
      if (remaining % d != 0) continue;
      current[static_cast<std::size_t>(slot)] = d;
      self(self, remaining / d, slot + 1);
      if (d != remaining / d) {
        current[static_cast<std::size_t>(slot)] = remaining / d;
        self(self, d, slot + 1);
      }
    }
  };
  recurse(recurse, value, 0);
}

bool stationary_grid_feasible(const CostProblem& p,
                              const std::vector<index_t>& grid) {
  MTK_CHECK(static_cast<int>(grid.size()) == p.order(),
            "expected an N-way grid, got ", grid.size(), " extents");
  for (int k = 0; k < p.order(); ++k) {
    if (grid[static_cast<std::size_t>(k)] >
        p.dims[static_cast<std::size_t>(k)]) {
      return false;  // processor would own an empty block row
    }
  }
  return true;
}

bool general_grid_feasible(const CostProblem& p,
                           const std::vector<index_t>& grid) {
  MTK_CHECK(static_cast<int>(grid.size()) == p.order() + 1,
            "expected an (N+1)-way grid, got ", grid.size(), " extents");
  if (grid[0] > p.rank) return false;
  return stationary_grid_feasible(
      p, std::vector<index_t>(grid.begin() + 1, grid.end()));
}

namespace {

// Shared best-grid search: enumerate factorizations of `procs` into `parts`
// slots, keep the cheapest grid passing `feasible` under `cost`.
GridSearchResult minimize_over_grids(
    const CostProblem& p, index_t procs, int parts,
    const std::function<bool(const std::vector<index_t>&)>& feasible,
    const std::function<double(const std::vector<index_t>&)>& cost) {
  check_cost_problem(p);
  MTK_CHECK(procs >= 1, "processor count must be >= 1, got ", procs);
  GridSearchResult best;
  best.cost = std::numeric_limits<double>::infinity();
  enumerate_factorizations(procs, parts,
                           [&](const std::vector<index_t>& grid) {
    if (!feasible(grid)) return;
    const double c = cost(grid);
    if (c < best.cost) {
      best.cost = c;
      best.grid = grid;
      best.feasible = true;
    }
  });
  return best;
}

}  // namespace

GridSearchResult optimal_stationary_grid(const CostProblem& p,
                                         index_t procs) {
  return minimize_over_grids(
      p, procs, p.order(),
      [&](const std::vector<index_t>& g) {
        return stationary_grid_feasible(p, g);
      },
      [&](const std::vector<index_t>& g) {
        return stationary_comm_cost(p, g);
      });
}

GridSearchResult optimal_general_grid(const CostProblem& p, index_t procs) {
  return minimize_over_grids(
      p, procs, p.order() + 1,
      [&](const std::vector<index_t>& g) {
        return general_grid_feasible(p, g);
      },
      [&](const std::vector<index_t>& g) { return general_comm_cost(p, g); });
}

GridSearchResult optimal_general_grid_sparse(const CostProblem& p, index_t nnz,
                                             index_t procs) {
  return minimize_over_grids(
      p, procs, p.order() + 1,
      [&](const std::vector<index_t>& g) {
        return general_grid_feasible(p, g);
      },
      [&](const std::vector<index_t>& g) {
        return general_comm_cost_sparse(p, nnz, g);
      });
}

double collective_rounds_model(double group_size, bool recursive) {
  if (group_size <= 1.0) return 0.0;
  const index_t q = static_cast<index_t>(group_size + 0.5);
  if (recursive && is_pow2(q)) {
    return static_cast<double>(ilog2(q));  // same count parsim's
                                           // collective_rounds uses
  }
  return group_size - 1.0;
}

double stationary_msg_cost(const std::vector<index_t>& grid, bool recursive) {
  double procs = 1.0;
  for (index_t e : grid) procs *= static_cast<double>(e);
  double msgs = 0.0;
  for (index_t e : grid) {
    msgs += collective_rounds_model(procs / static_cast<double>(e), recursive);
  }
  return msgs;
}

double general_msg_cost(const std::vector<index_t>& grid, bool recursive) {
  MTK_CHECK(grid.size() >= 2, "general grid needs at least (P0, P1)");
  double procs = 1.0;
  for (index_t e : grid) procs *= static_cast<double>(e);
  const double p0 = static_cast<double>(grid[0]);
  double msgs = collective_rounds_model(p0, recursive);
  for (std::size_t k = 1; k < grid.size(); ++k) {
    msgs += collective_rounds_model(
        procs / (p0 * static_cast<double>(grid[k])), recursive);
  }
  return msgs;
}

}  // namespace mtk
