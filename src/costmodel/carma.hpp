// Communication cost model for communication-optimal parallel rectangular
// matrix multiplication (CARMA, Demmel et al. [10]) in the
// memory-unconstrained regime — the comparator the paper uses for MTTKRP
// via matrix multiplication in Figure 4 and Section VI-B.
//
// For C = A * B with A: m x k and B: k x n on P processors, the
// memory-independent cost is governed by how many of the three dimensions
// are "large" relative to P. With d1 >= d2 >= d3 the sorted dimensions, the
// per-processor block of the iteration-space cube is a1 x a2 x a3 with
// a1 a2 a3 = m k n / P, and the communication is the block's surface terms
// clipped at the matrix faces:
//   1 large dim  (P <= d1/d2):          W = 2 d2 d3    (reduce the partial
//                                         output across processors)
//   2 large dims (P <= d1 d2 / d3^2):   W = 2 d3 sqrt(d1 d2 / P)
//   3 large dims (otherwise):           W = 3 (d1 d2 d3 / P)^(2/3)
// The leading constants are those of the attaining algorithms (bucket
// reduction, SUMMA, 3D blocking); the paper's Figure 4 text quotes the same
// expressions with unit constants. KRP formation cost is excluded, matching
// the paper's convention.
#pragma once

namespace mtk {

struct CarmaCost {
  double words = 0.0;
  int large_dims = 0;  // which regime produced the minimum (1, 2, or 3)
};

CarmaCost carma_comm_cost(double m, double k, double n, double procs);

// MTTKRP via matrix multiplication for an order-N cubical tensor with
// I = prod I_k: multiplies the I^(1/N) x I^((N-1)/N) matricization by the
// I^((N-1)/N) x R Khatri-Rao product.
CarmaCost mttkrp_via_matmul_cost(int order, double tensor_size, double rank,
                                 double procs);

}  // namespace mtk
