// Strong-scaling communication model: regenerates the three series of the
// paper's Figure 4 (matrix multiplication vs Algorithm 3 vs Algorithm 4)
// for cubical tensors, and evaluates the lower-bound envelope alongside.
#pragma once

#include <vector>

#include "src/bounds/parallel_bounds.hpp"
#include "src/costmodel/carma.hpp"
#include "src/costmodel/grid_search.hpp"

namespace mtk {

struct ScalingPoint {
  index_t procs = 1;
  double matmul_words = 0.0;          // CARMA model, Fig. 4 convention
  double stationary_words = 0.0;      // Eq. (14), optimal N-way grid
  std::vector<index_t> stationary_grid;
  double general_words = 0.0;         // Eq. (18), optimal (N+1)-way grid
  std::vector<index_t> general_grid;
  double lower_bound_words = 0.0;     // Corollary 4.2 envelope
};

struct ScalingModelConfig {
  int order = 3;
  index_t dim_per_mode = index_t{1} << 15;  // I_k (cubical)
  index_t rank = index_t{1} << 15;          // R
  int min_log2_procs = 0;
  int max_log2_procs = 30;
};

// One point per power-of-two processor count in the configured range.
std::vector<ScalingPoint> strong_scaling_series(const ScalingModelConfig& cfg);

// Prints the series as an aligned table (the Fig. 4 data).
void print_scaling_table(const std::vector<ScalingPoint>& series);

}  // namespace mtk
