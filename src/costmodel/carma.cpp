#include "src/costmodel/carma.hpp"

#include <algorithm>
#include <cmath>

#include "src/support/check.hpp"

namespace mtk {

CarmaCost carma_comm_cost(double m, double k, double n, double procs) {
  MTK_CHECK(m >= 1.0 && k >= 1.0 && n >= 1.0, "matrix dimensions must be "
            ">= 1");
  MTK_CHECK(procs >= 1.0, "processor count must be >= 1");
  double d[3] = {m, k, n};
  std::sort(d, d + 3, std::greater<double>());
  const double d1 = d[0], d2 = d[1], d3 = d[2];

  // Evaluate each regime's cost with its honest leading constant and take
  // the cheapest strategy:
  //  - 1 large dim: split only d1; the partial output (the product of the
  //    two small dims) is combined with a Reduce-Scatter + All-Gather,
  //    costing ~2 d2 d3 words per processor.
  //  - 2 large dims: SUMMA-like, two matrix faces stream past each
  //    processor: ~2 d3 sqrt(d1 d2 / P).
  //  - 3 large dims: each processor owns a block of the iteration cube and
  //    touches its three faces: ~3 (d1 d2 d3 / P)^(2/3).
  const double one_large = 2.0 * d2 * d3;
  const double two_large = 2.0 * d3 * std::sqrt(d1 * d2 / procs);
  const double three_large = 3.0 * std::pow(d1 * d2 * d3 / procs, 2.0 / 3.0);

  CarmaCost cost;
  cost.words = one_large;
  cost.large_dims = 1;
  if (two_large < cost.words) {
    cost.words = two_large;
    cost.large_dims = 2;
  }
  if (three_large < cost.words) {
    cost.words = three_large;
    cost.large_dims = 3;
  }
  return cost;
}

CarmaCost mttkrp_via_matmul_cost(int order, double tensor_size, double rank,
                                 double procs) {
  MTK_CHECK(order >= 2, "order must be >= 2, got ", order);
  MTK_CHECK(tensor_size >= 1.0 && rank >= 1.0, "problem sizes must be >= 1");
  const double n = static_cast<double>(order);
  const double rows = std::pow(tensor_size, 1.0 / n);          // I^(1/N)
  const double inner = tensor_size / rows;                      // I^((N-1)/N)
  return carma_comm_cost(rows, inner, rank, procs);
}

}  // namespace mtk
