#include "src/bounds/hbl.hpp"

#include <cmath>

namespace mtk {

std::vector<Projection> mttkrp_projections(int order) {
  MTK_CHECK(order >= 2, "mttkrp_projections: order must be >= 2, got ",
            order);
  std::vector<Projection> projections;
  projections.reserve(static_cast<std::size_t>(order) + 1);
  for (int k = 0; k < order; ++k) {
    projections.push_back({k, order});  // factor matrix k reads (i_k, r)
  }
  Projection tensor(static_cast<std::size_t>(order));
  for (int k = 0; k < order; ++k) tensor[static_cast<std::size_t>(k)] = k;
  projections.push_back(tensor);  // tensor reads (i_1, ..., i_N)
  return projections;
}

std::vector<std::vector<double>> delta_matrix(
    const std::vector<Projection>& projections, int depth) {
  MTK_CHECK(depth >= 1, "delta_matrix: depth must be >= 1");
  std::vector<std::vector<double>> delta(
      static_cast<std::size_t>(depth),
      std::vector<double>(projections.size(), 0.0));
  for (std::size_t j = 0; j < projections.size(); ++j) {
    for (int i : projections[j]) {
      MTK_CHECK(i >= 0 && i < depth, "projection ", j,
                " references loop index ", i, " outside depth ", depth);
      delta[static_cast<std::size_t>(i)][j] = 1.0;
    }
  }
  return delta;
}

std::vector<double> mttkrp_optimal_exponents(int order) {
  MTK_CHECK(order >= 2, "mttkrp_optimal_exponents: order must be >= 2");
  std::vector<double> s(static_cast<std::size_t>(order) + 1,
                        1.0 / static_cast<double>(order));
  s.back() = 1.0 - 1.0 / static_cast<double>(order);
  return s;
}

std::vector<double> hbl_exponents_lp(
    const std::vector<Projection>& projections, int depth) {
  const auto delta = delta_matrix(projections, depth);
  const std::size_t m = projections.size();

  // Constraints: Delta s >= 1 (depth rows) and -s >= -1 (box upper bounds).
  std::vector<std::vector<double>> a = delta;
  std::vector<double> b(static_cast<std::size_t>(depth), 1.0);
  for (std::size_t j = 0; j < m; ++j) {
    std::vector<double> row(m, 0.0);
    row[j] = -1.0;
    a.push_back(row);
    b.push_back(-1.0);
  }
  const std::vector<double> c(m, 1.0);
  const LpResult r = lp_solve_min(a, b, c);
  MTK_REQUIRE(r.feasible && r.bounded,
              "HBL exponent LP unsolvable: every loop index must be covered "
              "by at least one projection");
  return r.x;
}

std::set<multi_index_t> project(const std::set<multi_index_t>& f,
                                const Projection& proj) {
  std::set<multi_index_t> image;
  for (const multi_index_t& point : f) {
    multi_index_t reduced;
    reduced.reserve(proj.size());
    for (int i : proj) {
      MTK_CHECK(i >= 0 && i < static_cast<int>(point.size()),
                "projection index ", i, " out of range for point of rank ",
                point.size());
      reduced.push_back(point[static_cast<std::size_t>(i)]);
    }
    image.insert(std::move(reduced));
  }
  return image;
}

double hbl_product_bound(const std::vector<index_t>& projection_sizes,
                         const std::vector<double>& exponents) {
  MTK_CHECK(projection_sizes.size() == exponents.size(),
            "hbl_product_bound: ", projection_sizes.size(), " sizes vs ",
            exponents.size(), " exponents");
  double log_bound = 0.0;
  for (std::size_t j = 0; j < exponents.size(); ++j) {
    const double sz = static_cast<double>(projection_sizes[j]);
    MTK_CHECK(sz >= 0.0, "projection sizes must be non-negative");
    if (exponents[j] == 0.0) continue;  // |phi|^0 = 1 even for empty phi
    MTK_CHECK(sz > 0.0, "zero-size projection with positive exponent makes "
              "the bound zero; F must be empty");
    log_bound += exponents[j] * std::log(sz);
  }
  return std::exp(log_bound);
}

bool verify_hbl_inequality(const std::set<multi_index_t>& f,
                           const std::vector<Projection>& projections,
                           const std::vector<double>& exponents) {
  if (f.empty()) return true;
  std::vector<index_t> sizes;
  sizes.reserve(projections.size());
  for (const Projection& proj : projections) {
    sizes.push_back(static_cast<index_t>(project(f, proj).size()));
  }
  const double bound = hbl_product_bound(sizes, exponents);
  // Tolerance: both sides are exact integers/products of integer powers, but
  // the bound is computed in floating point.
  return static_cast<double>(f.size()) <= bound * (1.0 + 1e-12) + 1e-9;
}

double max_product_given_sum(const std::vector<double>& s, double c) {
  MTK_CHECK(c >= 0.0, "max_product_given_sum: budget c must be >= 0");
  double sum_s = 0.0;
  for (double sj : s) {
    MTK_CHECK(sj >= 0.0, "exponents must be non-negative");
    sum_s += sj;
  }
  MTK_CHECK(sum_s > 0.0, "max_product_given_sum: need some positive exponent");
  double log_val = sum_s * std::log(c);
  for (double sj : s) {
    if (sj > 0.0) log_val += sj * std::log(sj / sum_s);
  }
  return std::exp(log_val);
}

double min_sum_given_product(const std::vector<double>& s, double c) {
  MTK_CHECK(c > 0.0, "min_sum_given_product: target c must be > 0");
  double sum_s = 0.0;
  double log_prod_ss = 0.0;
  for (double sj : s) {
    MTK_CHECK(sj >= 0.0, "exponents must be non-negative");
    sum_s += sj;
    if (sj > 0.0) log_prod_ss += sj * std::log(sj);
  }
  MTK_CHECK(sum_s > 0.0, "min_sum_given_product: need some positive exponent");
  const double log_base = (std::log(c) - log_prod_ss) / sum_s;
  return std::exp(log_base) * sum_s;
}

}  // namespace mtk
