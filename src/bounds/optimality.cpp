#include "src/bounds/optimality.hpp"

#include <cmath>
#include <sstream>

#include "src/support/check.hpp"
#include "src/support/index.hpp"

namespace mtk {

namespace {

double min_dim(const shape_t& dims) {
  double m = static_cast<double>(dims.front());
  for (index_t d : dims) m = std::min(m, static_cast<double>(d));
  return m;
}

void check_constants(const shape_t& dims, index_t rank,
                     const Theorem61Constants& c) {
  check_shape(dims);
  MTK_CHECK(dims.size() >= 2, "Theorem 6.1 requires order >= 2");
  MTK_CHECK(rank >= 1, "rank must be >= 1");
  const double n = static_cast<double>(dims.size());
  const double i = static_cast<double>(shape_size(dims));
  double fac = 0.0;
  for (index_t ik : dims) fac += static_cast<double>(ik) * static_cast<double>(rank);
  MTK_CHECK(c.alpha > 0.0 && c.alpha < 1.0, "alpha must lie in (0,1)");
  MTK_CHECK(c.beta > 0.0 && c.beta < std::pow(c.alpha, 1.0 - 1.0 / n),
            "beta must lie in (0, alpha^(1-1/N))");
  MTK_CHECK(c.gamma > 1.0 + 1.0 / n, "gamma must exceed 1 + 1/N");
  MTK_CHECK(c.delta > 0.0 && c.delta < 1.0 + fac / i,
            "delta must lie in (0, 1 + sum I_k R / I)");
  MTK_CHECK(c.epsilon > 0.0 &&
                c.epsilon < 1.0 / std::pow(3.0, 2.0 - 1.0 / n),
            "epsilon must lie in (0, 1/3^(2-1/N))");
}

}  // namespace

HypothesisReport check_theorem61_hypotheses(const shape_t& dims, index_t rank,
                                            index_t fast_memory,
                                            const Theorem61Constants& c) {
  check_constants(dims, rank, c);
  MTK_CHECK(fast_memory >= 1, "fast memory must be >= 1 word");
  const double n = static_cast<double>(dims.size());
  const double i = static_cast<double>(shape_size(dims));
  const double r = static_cast<double>(rank);
  const double m = static_cast<double>(fast_memory);
  double fac = 0.0;
  for (index_t ik : dims) fac += static_cast<double>(ik) * r;

  HypothesisReport report;
  auto fail = [&report](const std::string& msg) {
    report.failures.push_back(msg);
  };
  std::ostringstream os;

  // Eq. (25): M >= (N alpha^(1/N) / (1 - alpha))^(N/(N-1)).
  const double lhs25 =
      std::pow(n * std::pow(c.alpha, 1.0 / n) / (1.0 - c.alpha),
               n / (n - 1.0));
  if (m < lhs25) {
    os.str("");
    os << "Eq.(25): M = " << m << " < " << lhs25;
    fail(os.str());
  }

  // Eq. (26): M >= (1 / (alpha^(1/N) - beta^(1/(N-1))))^N.
  const double denom26 =
      std::pow(c.alpha, 1.0 / n) - std::pow(c.beta, 1.0 / (n - 1.0));
  if (denom26 <= 0.0) {
    fail("Eq.(26): alpha^(1/N) <= beta^(1/(N-1))");
  } else {
    const double lhs26 = std::pow(1.0 / denom26, n);
    if (m < lhs26) {
      os.str("");
      os << "Eq.(26): M = " << m << " < " << lhs26;
      fail(os.str());
    }
  }

  // Eq. (27): M <= ( ((N/(N+1) gamma)^(1/N) - 1) / alpha^(1/N) * min_k I_k )^N.
  const double inner27 =
      (std::pow(n / (n + 1.0) * c.gamma, 1.0 / n) - 1.0) /
      std::pow(c.alpha, 1.0 / n) * min_dim(dims);
  const double rhs27 = inner27 > 0.0 ? std::pow(inner27, n) : 0.0;
  if (m > rhs27) {
    os.str("");
    os << "Eq.(27): M = " << m << " > " << rhs27;
    fail(os.str());
  }

  // Eq. (28): M <= ((1 - delta) I + sum_k I_k R) / 2.
  const double rhs28 = ((1.0 - c.delta) * i + fac) / 2.0;
  if (m > rhs28) {
    os.str("");
    os << "Eq.(28): M = " << m << " > " << rhs28;
    fail(os.str());
  }

  // Eq. (29): M <= ((1/3^(2-1/N) - epsilon) N I R)^(N/(2N-1)).
  const double rhs29 = std::pow(
      (1.0 / std::pow(3.0, 2.0 - 1.0 / n) - c.epsilon) * n * i * r,
      n / (2.0 * n - 1.0));
  if (m > rhs29) {
    os.str("");
    os << "Eq.(29): M = " << m << " > " << rhs29;
    fail(os.str());
  }

  report.all_hold = report.failures.empty();
  return report;
}

index_t theorem61_block_size(int order, index_t fast_memory, double alpha) {
  MTK_CHECK(order >= 2, "order must be >= 2");
  MTK_CHECK(fast_memory >= 1, "fast memory must be >= 1 word");
  MTK_CHECK(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0,1)");
  const double scaled = alpha * static_cast<double>(fast_memory);
  return std::max<index_t>(
      1, nth_root_floor(static_cast<index_t>(scaled), order));
}

double theorem61_provable_gap(const Theorem61Constants& c) {
  MTK_CHECK(c.beta > 0.0 && c.gamma > 0.0 && c.delta > 0.0 &&
                c.epsilon > 0.0,
            "constants must be positive");
  return 2.0 * c.gamma / (c.beta * std::min(c.delta, c.epsilon));
}

MemoryRange theorem61_memory_range(const shape_t& dims, index_t rank,
                                   const Theorem61Constants& c) {
  check_constants(dims, rank, c);
  // Binary-search-free approach: the lower limits come from Eqs. (25)/(26)
  // and the upper limits from Eqs. (27)-(29); all are monotone in M, so the
  // range is the intersection of closed-form endpoints. Reuse the checker
  // to avoid duplicating the formulas: scan exponentially for feasibility,
  // then bisect each edge.
  auto holds = [&](index_t m) {
    return check_theorem61_hypotheses(dims, rank, m, c).all_hold;
  };

  // Find any feasible M (scan powers of two up to a generous cap).
  const index_t cap = index_t{1} << 50;
  index_t feasible = -1;
  for (index_t m = 1; m <= cap; m *= 2) {
    if (holds(m)) {
      feasible = m;
      break;
    }
  }
  if (feasible < 0) return {0, -1};

  // Bisect the lower edge in [1, feasible].
  index_t lo = 1, hi = feasible;
  while (lo < hi) {
    const index_t mid = lo + (hi - lo) / 2;
    if (holds(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  const index_t min_words = lo;

  // Bisect the upper edge in [feasible, cap].
  lo = feasible;
  hi = cap;
  while (lo < hi) {
    const index_t mid = lo + (hi - lo + 1) / 2;
    if (holds(mid)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return {min_words, lo};
}

}  // namespace mtk
