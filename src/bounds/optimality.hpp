// Constant-factor optimality machinery of Section VI: explicit checkers for
// the hypotheses of Theorem 6.1 (sequential, Eqs. (25)-(29)) and the
// resulting provable upper/lower bound gap. The paper illustrates the
// hypotheses with the constants beta = 1 - alpha = 1/100, gamma = 100,
// delta = epsilon = 1/10; reproducing that worked example is a test.
#pragma once

#include <string>
#include <vector>

#include "src/support/index.hpp"

namespace mtk {

struct Theorem61Constants {
  double alpha = 0.99;    // block-size margin, alpha < 1
  double beta = 0.01;     // lower block bound, beta < alpha^(1-1/N)
  double gamma = 100.0;   // block-count slack, gamma > 1 + 1/N
  double delta = 0.1;     // trivial-bound slack, delta < 1 + sum I_k R / I
  double epsilon = 0.1;   // memory-bound slack, epsilon < 1 / 3^(2-1/N)
};

struct HypothesisReport {
  bool all_hold = false;
  std::vector<std::string> failures;  // human-readable violated conditions
};

// Checks Eqs. (25)-(29) for the given problem and constants.
HypothesisReport check_theorem61_hypotheses(const shape_t& dims, index_t rank,
                                            index_t fast_memory,
                                            const Theorem61Constants& c);

// The block size Theorem 6.1 uses: b = floor((alpha M)^(1/N)).
index_t theorem61_block_size(int order, index_t fast_memory, double alpha);

// The provable constant gap of Theorem 6.1's proof:
// W_ub <= (gamma / beta) (I + NIR / M^(1-1/N)) and
// max(W_lb1, W_lb2) >= (min(delta, epsilon)/2) (I + NIR / M^(1-1/N)),
// so ub/lb <= 2 gamma / (beta min(delta, epsilon)).
double theorem61_provable_gap(const Theorem61Constants& c);

// Valid fast-memory range [M_min, M_max] for the paper's illustration
// (cubical tensor): Eqs. (25)/(26) bound M from below; Eqs. (27)-(29) bound
// it from above. Returns {0, -1} (empty) if no M satisfies all hypotheses.
struct MemoryRange {
  index_t min_words = 0;
  index_t max_words = -1;
  bool empty() const { return max_words < min_words; }
};
MemoryRange theorem61_memory_range(const shape_t& dims, index_t rank,
                                   const Theorem61Constants& c);

}  // namespace mtk
