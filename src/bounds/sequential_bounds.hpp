// Sequential communication bounds (Section IV-B and VI-A of the paper).
// All quantities are in words moved between fast and slow memory.
#pragma once

#include "src/support/index.hpp"

namespace mtk {

struct SeqProblem {
  shape_t dims;          // I_1, ..., I_N
  index_t rank = 0;      // R
  index_t fast_memory = 0;  // M (words)

  int order() const { return static_cast<int>(dims.size()); }
  index_t tensor_size() const;   // I = prod I_k
  index_t factor_entries() const;  // sum_k I_k * R
};

// Theorem 4.1 / Eq. (4): W >= NIR / (3^(2-1/N) M^(1-1/N)) - M.
double seq_lower_bound_memory(const SeqProblem& p);

// The segment-counting form from the proof of Theorem 4.1:
// W >= M * floor(NIR / (3M)^(2-1/N)). Slightly tighter for small problems.
double seq_lower_bound_memory_exact(const SeqProblem& p);

// Fact 4.1 / Eq. (5): W >= I + sum_k I_k R - 2M.
double seq_lower_bound_trivial(const SeqProblem& p);

// Best available lower bound: max of the above, clamped at 0.
double seq_lower_bound(const SeqProblem& p);

// Eq. (21): W_ub = I + (N+1) * prod_k ceil(I_k / b) * b * R for Algorithm 2
// with block size b. Counts every tensor load plus factor vector traffic.
double seq_upper_bound_blocked(const SeqProblem& p, index_t block_size);

// Communication cost of Algorithm 1 (Section V-A): W <= I + IR(N+1).
double seq_upper_bound_unblocked(const SeqProblem& p);

// Model cost of the matmul-based approach (Section VI-A): the matricized
// tensor and explicit Khatri-Rao product are multiplied by a
// communication-optimal matrix multiplication: O(I + IR / sqrt(M)).
// The permutation/KRP-formation traffic adds another ~2I + IR/... lower-order
// terms; we count the dominant terms with unit constants:
//   W = I (read X once to permute) + I (write X_(n)) + IR/sqrt(M) (GEMM).
double seq_model_matmul_cost(const SeqProblem& p);

}  // namespace mtk
