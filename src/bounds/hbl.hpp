// Hölder–Brascamp-Lieb machinery (Section IV-A of the paper).
//
// The MTTKRP iteration space is [I_1] x ... x [I_N] x [R] (d = N+1 loop
// indices). There are m = N+1 data arrays: factor matrix k is indexed by the
// projection S_k = {k, r}; the tensor is indexed by S_tensor = {0..N-1}.
// Lemma 4.1 bounds |F| <= prod_j |phi_j(F)|^{s_j} for any s in the polytope
// P = {s in [0,1]^m : Delta s >= 1}; Lemma 4.2 identifies the exponents
// s* = (1/N, ..., 1/N, 1 - 1/N) minimizing 1's over P.
#pragma once

#include <set>
#include <vector>

#include "src/bounds/simplex.hpp"
#include "src/support/index.hpp"

namespace mtk {

// A projection: the subset of loop-index positions an array reads.
using Projection = std::vector<int>;

// The m = N+1 projections of MTTKRP for an order-N tensor, in the paper's
// order: N factor matrices first ({k, N} for k in [0,N)), then the tensor
// ({0, ..., N-1}).
std::vector<Projection> mttkrp_projections(int order);

// The d x m constraint matrix Delta: Delta[i][j] = 1 iff loop index i is in
// projection j. For MTTKRP this is [[I_N, 1],[1', 0]] (Lemma 4.2).
std::vector<std::vector<double>> delta_matrix(
    const std::vector<Projection>& projections, int depth);

// Closed-form optimal exponents s* for MTTKRP (Lemma 4.2).
std::vector<double> mttkrp_optimal_exponents(int order);

// Solves the exponent LP min 1's s.t. Delta s >= 1, 0 <= s <= 1 for an
// arbitrary loop nest via simplex. Throws if infeasible (cannot happen when
// every loop index is covered by some projection).
std::vector<double> hbl_exponents_lp(const std::vector<Projection>& projections,
                                     int depth);

// phi_j(F): the set of distinct projected tuples of F under projection j.
std::set<multi_index_t> project(const std::set<multi_index_t>& f,
                                const Projection& proj);

// prod_j |phi_j(F)|^{s_j}.
double hbl_product_bound(const std::vector<index_t>& projection_sizes,
                         const std::vector<double>& exponents);

// Checks Lemma 4.1 on an explicit subset F of Z^depth.
bool verify_hbl_inequality(const std::set<multi_index_t>& f,
                           const std::vector<Projection>& projections,
                           const std::vector<double>& exponents);

// Lemma 4.3: max prod x_i^{s_i} s.t. sum x_i <= c, x >= 0
//   = c^{sum s} * prod (s_j / sum s)^{s_j}.
double max_product_given_sum(const std::vector<double>& s, double c);

// Lemma 4.4: min sum x_i s.t. prod x_i^{s_i} >= c, x >= 0
//   = (c / prod s_i^{s_i})^{1 / sum s} * sum s.
double min_sum_given_product(const std::vector<double>& s, double c);

}  // namespace mtk
