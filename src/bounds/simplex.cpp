#include "src/bounds/simplex.hpp"

#include <cmath>
#include <limits>

namespace mtk {

namespace {

constexpr double kEps = 1e-9;

// Tableau with rows = constraints (equalities after slack/artificial
// augmentation) plus an objective row; columns = variables plus RHS.
class Tableau {
 public:
  Tableau(int rows, int cols) : rows_(rows), cols_(cols),
                                data_(static_cast<std::size_t>(rows) *
                                          static_cast<std::size_t>(cols),
                                      0.0) {}

  double& at(int i, int j) {
    return data_[static_cast<std::size_t>(i) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(j)];
  }
  double at(int i, int j) const {
    return data_[static_cast<std::size_t>(i) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(j)];
  }

  void pivot(int pr, int pc) {
    const double pv = at(pr, pc);
    MTK_ASSERT(std::fabs(pv) > kEps, "simplex pivot on (near-)zero element");
    for (int j = 0; j < cols_; ++j) at(pr, j) /= pv;
    for (int i = 0; i < rows_; ++i) {
      if (i == pr) continue;
      const double f = at(i, pc);
      if (std::fabs(f) < kEps) continue;
      for (int j = 0; j < cols_; ++j) at(i, j) -= f * at(pr, j);
    }
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }

 private:
  int rows_, cols_;
  std::vector<double> data_;
};

// Runs simplex iterations on `t` minimizing the objective stored in the last
// row, over columns [0, n_active). `basis[i]` tracks the basic variable of
// constraint row i. Returns false if unbounded.
bool run_simplex(Tableau& t, std::vector<int>& basis, int n_active,
                 const std::vector<bool>& allowed) {
  const int m = static_cast<int>(basis.size());
  const int obj = m;           // objective row index
  const int rhs = t.cols() - 1;
  for (int iter = 0; iter < 10000; ++iter) {
    // Bland's rule: the lowest-index column with a negative reduced cost.
    int pc = -1;
    for (int j = 0; j < n_active; ++j) {
      if (allowed[static_cast<std::size_t>(j)] && t.at(obj, j) < -kEps) {
        pc = j;
        break;
      }
    }
    if (pc < 0) return true;  // optimal
    // Ratio test, ties broken by lowest basis index (Bland).
    int pr = -1;
    double best = std::numeric_limits<double>::infinity();
    for (int i = 0; i < m; ++i) {
      if (t.at(i, pc) > kEps) {
        const double ratio = t.at(i, rhs) / t.at(i, pc);
        if (ratio < best - kEps ||
            (ratio < best + kEps && (pr < 0 || basis[static_cast<std::size_t>(i)] <
                                                   basis[static_cast<std::size_t>(pr)]))) {
          best = ratio;
          pr = i;
        }
      }
    }
    if (pr < 0) return false;  // unbounded
    t.pivot(pr, pc);
    basis[static_cast<std::size_t>(pr)] = pc;
  }
  MTK_REQUIRE(false, "simplex failed to converge in 10000 iterations");
  return false;
}

}  // namespace

LpResult lp_solve_min(const std::vector<std::vector<double>>& a,
                      const std::vector<double>& b,
                      const std::vector<double>& c) {
  const int m = static_cast<int>(a.size());
  const int n = static_cast<int>(c.size());
  MTK_CHECK(static_cast<int>(b.size()) == m, "lp_solve_min: b length ",
            b.size(), " != #constraints ", m);
  for (int i = 0; i < m; ++i) {
    MTK_CHECK(static_cast<int>(a[static_cast<std::size_t>(i)].size()) == n,
              "lp_solve_min: row ", i, " has ",
              a[static_cast<std::size_t>(i)].size(), " entries, expected ", n);
  }

  // Standard form: A x - s = b, with rows negated so RHS >= 0, then one
  // artificial variable per row. Columns: [x (n)] [surplus (m)] [artificial
  // (m)] [rhs].
  const int total = n + m + m;
  Tableau t(m + 1, total + 1);
  std::vector<int> basis(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    const bool flip = b[static_cast<std::size_t>(i)] < 0.0;
    const double sign = flip ? -1.0 : 1.0;
    for (int j = 0; j < n; ++j) {
      t.at(i, j) = sign * a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    }
    t.at(i, n + i) = sign * -1.0;            // surplus for Ax >= b
    t.at(i, n + m + i) = 1.0;                // artificial
    t.at(i, total) = sign * b[static_cast<std::size_t>(i)];
    basis[static_cast<std::size_t>(i)] = n + m + i;
  }

  // Phase 1: minimize sum of artificials. The objective row starts as
  // -(sum of constraint rows) so the artificial basis has reduced cost 0.
  for (int j = 0; j <= total; ++j) {
    double s = 0.0;
    for (int i = 0; i < m; ++i) s += t.at(i, j);
    t.at(m, j) = -s;
  }
  for (int i = 0; i < m; ++i) t.at(m, n + m + i) = 0.0;

  std::vector<bool> allowed(static_cast<std::size_t>(total), true);
  LpResult result;
  if (!run_simplex(t, basis, total, allowed)) {
    return result;  // phase 1 cannot be unbounded in exact arithmetic
  }
  if (t.at(m, total) < -kEps * 100) {
    return result;  // infeasible: artificials cannot be driven to zero
  }

  // Drive any artificial variables that linger in the basis at level zero
  // out, if possible; otherwise their rows are redundant.
  for (int i = 0; i < m; ++i) {
    if (basis[static_cast<std::size_t>(i)] >= n + m) {
      for (int j = 0; j < n + m; ++j) {
        if (std::fabs(t.at(i, j)) > kEps) {
          t.pivot(i, j);
          basis[static_cast<std::size_t>(i)] = j;
          break;
        }
      }
    }
  }

  // Phase 2: restore the real objective, priced out over the current basis.
  for (int j = 0; j <= total; ++j) t.at(m, j) = 0.0;
  for (int j = 0; j < n; ++j) t.at(m, j) = c[static_cast<std::size_t>(j)];
  for (int i = 0; i < m; ++i) {
    const int bv = basis[static_cast<std::size_t>(i)];
    if (bv < n) {
      const double cost = c[static_cast<std::size_t>(bv)];
      if (std::fabs(cost) > 0.0) {
        for (int j = 0; j <= total; ++j) {
          t.at(m, j) -= cost * t.at(i, j);
        }
      }
    }
  }
  // Forbid artificials from re-entering.
  for (int j = n + m; j < total; ++j) allowed[static_cast<std::size_t>(j)] = false;

  result.feasible = true;
  if (!run_simplex(t, basis, total, allowed)) {
    result.bounded = false;
    return result;
  }
  result.bounded = true;
  result.x.assign(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < m; ++i) {
    const int bv = basis[static_cast<std::size_t>(i)];
    if (bv < n) {
      result.x[static_cast<std::size_t>(bv)] = t.at(i, total);
    }
  }
  double obj = 0.0;
  for (int j = 0; j < n; ++j) {
    obj += c[static_cast<std::size_t>(j)] * result.x[static_cast<std::size_t>(j)];
  }
  result.objective = obj;
  return result;
}

LpResult lp_solve_max(const std::vector<std::vector<double>>& a,
                      const std::vector<double>& b,
                      const std::vector<double>& c) {
  // max c'x s.t. Ax <= b  ==  -min (-c)'x s.t. (-A)x >= -b.
  std::vector<std::vector<double>> na(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    na[i].reserve(a[i].size());
    for (double v : a[i]) na[i].push_back(-v);
  }
  std::vector<double> nb;
  nb.reserve(b.size());
  for (double v : b) nb.push_back(-v);
  std::vector<double> nc;
  nc.reserve(c.size());
  for (double v : c) nc.push_back(-v);
  LpResult r = lp_solve_min(na, nb, nc);
  r.objective = -r.objective;
  return r;
}

}  // namespace mtk
