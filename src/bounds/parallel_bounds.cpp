#include "src/bounds/parallel_bounds.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/support/check.hpp"
#include "src/support/index.hpp"

namespace mtk {

index_t ParProblem::tensor_size() const { return shape_size(dims); }

index_t ParProblem::factor_entries() const {
  index_t total = 0;
  for (index_t ik : dims) total += checked_mul(ik, rank);
  return total;
}

namespace {

void check_problem(const ParProblem& p) {
  check_shape(p.dims);
  MTK_CHECK(p.dims.size() >= 2, "parallel bounds require order >= 2");
  MTK_CHECK(p.rank >= 1, "rank must be >= 1, got ", p.rank);
  MTK_CHECK(p.procs >= 1, "processor count must be >= 1, got ", p.procs);
  MTK_CHECK(p.gamma >= 1.0, "gamma must be >= 1, got ", p.gamma);
  MTK_CHECK(p.delta >= 1.0, "delta must be >= 1, got ", p.delta);
}

}  // namespace

double par_lower_bound_memory(const ParProblem& p) {
  check_problem(p);
  MTK_CHECK(p.local_memory >= 1,
            "par_lower_bound_memory requires local_memory >= 1");
  const double n = static_cast<double>(p.order());
  const double i = static_cast<double>(p.tensor_size());
  const double r = static_cast<double>(p.rank);
  const double m = static_cast<double>(p.local_memory);
  const double pp = static_cast<double>(p.procs);
  return n * i * r /
             (std::pow(3.0, 2.0 - 1.0 / n) * pp * std::pow(m, 1.0 - 1.0 / n)) -
         m;
}

double par_lower_bound_thm42(const ParProblem& p) {
  check_problem(p);
  const double n = static_cast<double>(p.order());
  const double i = static_cast<double>(p.tensor_size());
  const double r = static_cast<double>(p.rank);
  const double pp = static_cast<double>(p.procs);
  const double main_term =
      2.0 * std::pow(n * i * r / pp, n / (2.0 * n - 1.0));
  return main_term - p.gamma * i / pp -
         p.delta * static_cast<double>(p.factor_entries()) / pp;
}

double par_lower_bound_thm42_exact(const ParProblem& p) {
  check_problem(p);
  const double n = static_cast<double>(p.order());
  const double i = static_cast<double>(p.tensor_size());
  const double r = static_cast<double>(p.rank);
  const double pp = static_cast<double>(p.procs);
  // prod_j s*_j^{s*_j} with s* = (1/N, ..., 1/N, 1-1/N).
  const double log_prod_ss = n * (1.0 / n) * std::log(1.0 / n) +
                             (1.0 - 1.0 / n) * std::log(1.0 - 1.0 / n);
  const double main_term =
      std::pow(i * r / pp / std::exp(log_prod_ss), n / (2.0 * n - 1.0)) *
      (2.0 - 1.0 / n);
  return main_term - p.gamma * i / pp -
         p.delta * static_cast<double>(p.factor_entries()) / pp;
}

double par_lower_bound_thm43(const ParProblem& p) {
  check_problem(p);
  const double n = static_cast<double>(p.order());
  const double i = static_cast<double>(p.tensor_size());
  const double r = static_cast<double>(p.rank);
  const double pp = static_cast<double>(p.procs);
  const double case_small_tensor =
      std::sqrt(2.0 / (3.0 * p.gamma)) * n * r * std::pow(i / pp, 1.0 / n) -
      p.delta * static_cast<double>(p.factor_entries()) / pp;
  const double case_large_tensor = p.gamma * i / (2.0 * pp);
  return std::min(case_small_tensor, case_large_tensor);
}

double par_lower_bound(const ParProblem& p) {
  double best = std::max({0.0, par_lower_bound_thm42(p),
                          par_lower_bound_thm43(p)});
  if (p.local_memory >= 1) {
    best = std::max(best, par_lower_bound_memory(p));
  }
  return best;
}

double par_lower_bound_cubical_envelope(const ParProblem& p) {
  check_problem(p);
  const double n = static_cast<double>(p.order());
  const double i = static_cast<double>(p.tensor_size());
  const double r = static_cast<double>(p.rank);
  const double pp = static_cast<double>(p.procs);
  return std::pow(n * i * r / pp, n / (2.0 * n - 1.0)) +
         n * r * std::pow(i / pp, 1.0 / n);
}

double par_optimality_ratio(double words_moved, const ParProblem& p) {
  MTK_CHECK(words_moved >= 0.0, "words_moved must be >= 0, got ", words_moved);
  const double bound = par_lower_bound(p);
  if (bound <= 0.0) {
    return words_moved == 0.0 ? 1.0
                              : std::numeric_limits<double>::infinity();
  }
  return words_moved / bound;
}

bool memory_independent_regime_large_nr(const ParProblem& p) {
  check_problem(p);
  const double n = static_cast<double>(p.order());
  const double i = static_cast<double>(p.tensor_size());
  const double r = static_cast<double>(p.rank);
  const double pp = static_cast<double>(p.procs);
  return n * r >= std::pow(i / pp, 1.0 - 1.0 / n);
}

}  // namespace mtk
