#include "src/bounds/sequential_bounds.hpp"

#include <algorithm>
#include <cmath>

#include "src/support/check.hpp"
#include "src/support/index.hpp"

namespace mtk {

index_t SeqProblem::tensor_size() const { return shape_size(dims); }

index_t SeqProblem::factor_entries() const {
  index_t total = 0;
  for (index_t ik : dims) total += checked_mul(ik, rank);
  return total;
}

namespace {

void check_problem(const SeqProblem& p) {
  check_shape(p.dims);
  MTK_CHECK(p.dims.size() >= 2, "sequential bounds require order >= 2");
  MTK_CHECK(p.rank >= 1, "rank must be >= 1, got ", p.rank);
  MTK_CHECK(p.fast_memory >= 1, "fast memory must be >= 1 word, got ",
            p.fast_memory);
}

}  // namespace

double seq_lower_bound_memory(const SeqProblem& p) {
  check_problem(p);
  const double n = static_cast<double>(p.order());
  const double i = static_cast<double>(p.tensor_size());
  const double r = static_cast<double>(p.rank);
  const double m = static_cast<double>(p.fast_memory);
  const double exponent = 2.0 - 1.0 / n;
  return n * i * r / (std::pow(3.0, exponent) * std::pow(m, 1.0 - 1.0 / n)) -
         m;
}

double seq_lower_bound_memory_exact(const SeqProblem& p) {
  check_problem(p);
  const double n = static_cast<double>(p.order());
  const double i = static_cast<double>(p.tensor_size());
  const double r = static_cast<double>(p.rank);
  const double m = static_cast<double>(p.fast_memory);
  const double exponent = 2.0 - 1.0 / n;
  const double segments = std::floor(n * i * r / std::pow(3.0 * m, exponent));
  return m * segments;
}

double seq_lower_bound_trivial(const SeqProblem& p) {
  check_problem(p);
  return static_cast<double>(p.tensor_size()) +
         static_cast<double>(p.factor_entries()) -
         2.0 * static_cast<double>(p.fast_memory);
}

double seq_lower_bound(const SeqProblem& p) {
  return std::max({0.0, seq_lower_bound_memory(p),
                   seq_lower_bound_memory_exact(p),
                   seq_lower_bound_trivial(p)});
}

double seq_upper_bound_blocked(const SeqProblem& p, index_t block_size) {
  check_problem(p);
  MTK_CHECK(block_size >= 1, "block size must be >= 1, got ", block_size);
  double blocks = 1.0;
  for (index_t ik : p.dims) {
    blocks *= static_cast<double>(ceil_div(ik, block_size));
  }
  const double n = static_cast<double>(p.order());
  return static_cast<double>(p.tensor_size()) +
         (n + 1.0) * blocks * static_cast<double>(block_size) *
             static_cast<double>(p.rank);
}

double seq_upper_bound_unblocked(const SeqProblem& p) {
  check_problem(p);
  const double i = static_cast<double>(p.tensor_size());
  const double r = static_cast<double>(p.rank);
  const double n = static_cast<double>(p.order());
  return i + i * r * (n + 1.0);
}

double seq_model_matmul_cost(const SeqProblem& p) {
  check_problem(p);
  const double i = static_cast<double>(p.tensor_size());
  const double r = static_cast<double>(p.rank);
  const double m = static_cast<double>(p.fast_memory);
  return 2.0 * i + i * r / std::sqrt(m);
}

}  // namespace mtk
