// Dense two-phase primal simplex solver for small linear programs.
//
// Solves   min c'x   subject to   A x >= b,  x >= 0.
//
// This is the substrate for Lemma 4.2: the HBL exponents s* come from the LP
// min 1's s.t. Delta s >= 1, s >= 0. The paper proves the MTTKRP case by
// exhibiting a dual-feasible point; the solver lets us compute (and verify
// optimality of) exponents for *any* loop-nest structure, and the tests
// cross-check it against the closed form for N = 2..10.
//
// Bland's anti-cycling rule is used throughout; problems here have at most a
// few dozen variables, so performance is irrelevant.
#pragma once

#include <vector>

#include "src/support/check.hpp"

namespace mtk {

struct LpResult {
  bool feasible = false;
  bool bounded = false;
  double objective = 0.0;
  std::vector<double> x;  // primal solution (size = #variables) when solved
};

// min c'x s.t. A x >= b, x >= 0. A is row-major: A[i] is constraint i.
LpResult lp_solve_min(const std::vector<std::vector<double>>& a,
                      const std::vector<double>& b,
                      const std::vector<double>& c);

// max c'x s.t. A x <= b, x >= 0 (the dual-shaped variant), by negation.
LpResult lp_solve_max(const std::vector<std::vector<double>>& a,
                      const std::vector<double>& b,
                      const std::vector<double>& c);

}  // namespace mtk
