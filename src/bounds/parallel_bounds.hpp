// Parallel communication lower bounds (Section IV-B/C). All quantities are
// words sent+received by the bottleneck processor.
#pragma once

#include "src/support/index.hpp"

namespace mtk {

struct ParProblem {
  shape_t dims;            // I_1, ..., I_N
  index_t rank = 0;        // R
  index_t procs = 1;       // P
  double gamma = 1.0;      // tensor load-balance slack (>= 1)
  double delta = 1.0;      // factor-matrix load-balance slack (>= 1)
  index_t local_memory = 0;  // M (words); 0 = unbounded / not applicable

  int order() const { return static_cast<int>(dims.size()); }
  index_t tensor_size() const;
  index_t factor_entries() const;
};

// Corollary 4.1: the memory-dependent bound divided across processors:
// W >= NIR / (3^(2-1/N) P M^(1-1/N)) - M. Requires local_memory > 0.
double par_lower_bound_memory(const ParProblem& p);

// Theorem 4.2 / Eq. (6): W >= 2 (NIR/P)^(N/(2N-1)) - gamma*I/P
//                             - delta * sum_k I_k R / P.
double par_lower_bound_thm42(const ParProblem& p);

// The exact form of Theorem 4.2's main term, straight from Lemma 4.4:
//   sum_j |phi_j(F)| >= (IR/P / prod_j s*_j^{s*_j})^(N/(2N-1)) * (2 - 1/N).
//
// Reproduction finding: the paper simplifies this to 2 (NIR/P)^(N/(2N-1)),
// but the claimed inequality overstates the exact value by ~5.5% at N = 2
// and ~2% at N = 3 (the ratio (2-1/N) / (prod s^s)^(N/(2N-1)) over
// 2 N^(N/(2N-1)) is < 1 for finite N, -> 1 as N -> infinity). The symptom:
// at P = 1 the paper's form can exceed I + sum_k I_k R — more than the
// total data — while this exact form is always <= 0 there, as it must be.
double par_lower_bound_thm42_exact(const ParProblem& p);

// Theorem 4.3 / Eq. (7):
// W >= min( sqrt(2/(3 gamma)) * N R (I/P)^(1/N) - delta sum_k I_k R / P,
//           gamma I / (2P) ).
double par_lower_bound_thm43(const ParProblem& p);

// Best available bound: max of the applicable bounds, clamped at 0.
double par_lower_bound(const ParProblem& p);

// Corollary 4.2 asymptotic envelope for cubical tensors (unit constants):
// (NIR/P)^(N/(2N-1)) + N R (I/P)^(1/N).
//
// Caveat (documented reproduction finding): the sum form is only a valid
// lower bound in the large-NR regime, NR >= (I/P)^(1-1/N). In the small-NR
// regime the first term *numerically dominates* the second — the algebra
// gives term1 <= term2 iff NR >= (I/P)^(1-1/N) — while only the second term
// is actually proved there (Theorem 4.2 degenerates to a negative bound).
// Use par_lower_bound() for a bound that is valid at every P.
double par_lower_bound_cubical_envelope(const ParProblem& p);

// The threshold NR vs (I/P)^(1-1/N) that decides which term dominates
// (Corollary 4.2's case split). Returns true when the Theorem 4.2 term
// (NIR/P)^(N/(2N-1)) dominates.
bool memory_independent_regime_large_nr(const ParProblem& p);

// How far an algorithm's measured or predicted bottleneck traffic (words
// sent+received, the same metric the theorems bound) sits above the best
// proved lower bound: words_moved / par_lower_bound(p). Degenerate cases:
// when the bound is 0 (e.g. P = 1, where no communication is required) the
// ratio is 1 if words_moved is also 0 and +infinity otherwise.
double par_optimality_ratio(double words_moved, const ParProblem& p);

}  // namespace mtk
