#include "src/mttkrp/sparse_kernels.hpp"

#include <algorithm>
#include <atomic>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "src/mttkrp/thread_arena.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace mtk {

namespace {

// Which schedule actually executed, process-wide — the regression hook for
// planner plumbing, now homed on the MetricsRegistry under the stable
// mtk.kernel.variant.* names (kernel_variant_counters() reads them back).
// `serial` counts the kAuto fast path that bypasses scheduling. The
// function-local statics resolve the registry lookup once per process.
Counter& serial_counter() {
  static Counter& c =
      MetricsRegistry::global().counter("mtk.kernel.variant.serial");
  return c;
}
Counter& privatized_counter() {
  static Counter& c =
      MetricsRegistry::global().counter("mtk.kernel.variant.privatized");
  return c;
}
Counter& atomic_counter() {
  static Counter& c =
      MetricsRegistry::global().counter("mtk.kernel.variant.atomic");
  return c;
}
Counter& tiled_counter() {
  static Counter& c =
      MetricsRegistry::global().counter("mtk.kernel.variant.tiled");
  return c;
}

void note_serial_executed() { serial_counter().add(); }

void note_variant_executed(SparseKernelVariant v) {
  switch (v) {
    case SparseKernelVariant::kPrivatized: privatized_counter().add(); break;
    case SparseKernelVariant::kAtomic: atomic_counter().add(); break;
    case SparseKernelVariant::kTiled: tiled_counter().add(); break;
    case SparseKernelVariant::kAuto:
      break;  // resolved before this point
  }
}

int max_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

// Output rows x rank at or below which the privatized schedule wins under
// kAuto: zeroing + merging thread-private copies of a small B is cheaper
// than building a tiling or contending on atomics.
constexpr index_t kPrivatizeOutputWords = index_t{1} << 13;

void add_range(double* dst, const double* src, index_t count) {
  for (index_t i = 0; i < count; ++i) dst[i] += src[i];
}

// ---------------------------------------------------------------------------
// COO kernel

// Accumulates nonzeros q in [begin, end) — positions ids[q] when a gather
// list is given, q itself otherwise — into `out` (row-major, `rank` cols).
// `atomic_adds` makes the output update safe against concurrent writers.
void coo_accumulate(const SparseTensor& x, const std::vector<Matrix>& factors,
                    int mode, const index_t* ids, index_t begin, index_t end,
                    double* out, index_t rank, double* prod,
                    bool atomic_adds) {
  const int n = x.order();
  const index_t* out_ind = x.mode_indices(mode).data();
  const double* values = x.values().data();
  // Hoist the per-mode index arrays and factor matrices out of the nonzero
  // loop so the innermost path is free of accessor checks.
  std::vector<const index_t*> ind;
  std::vector<const Matrix*> fac;
  ind.reserve(static_cast<std::size_t>(n));
  fac.reserve(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    if (k == mode) continue;
    ind.push_back(x.mode_indices(k).data());
    fac.push_back(&factors[static_cast<std::size_t>(k)]);
  }
  for (index_t q = begin; q < end; ++q) {
    const index_t p = ids != nullptr ? ids[q] : q;
    const double xv = values[p];
    for (index_t r = 0; r < rank; ++r) prod[r] = xv;
    for (std::size_t k = 0; k < ind.size(); ++k) {
      const double* arow = fac[k]->row(ind[k][p]);
      for (index_t r = 0; r < rank; ++r) prod[r] *= arow[r];
    }
    double* brow = out + out_ind[p] * rank;
    if (atomic_adds) {
      for (index_t r = 0; r < rank; ++r) {
#pragma omp atomic
        brow[r] += prod[r];
      }
    } else {
      for (index_t r = 0; r < rank; ++r) brow[r] += prod[r];
    }
  }
}

// Smallest position >= q that starts a new output row in the sorted order
// (valid when `mode` is the lexicographic sort's primary mode).
index_t snap_to_row_boundary(const index_t* ind, index_t count, index_t q) {
  q = std::min(q, count);
  while (q > 0 && q < count && ind[q] == ind[q - 1]) ++q;
  return q;
}

// Owner-computes tiling for an arbitrary output mode: output rows are cut
// into `threads` tiles of near-equal nonzero weight and the nonzero ids are
// bucketed by tile. Built once per call in the arena's shared index buffer
// (layout: row->tile map | per-tile cursors | tile offsets | permutation).
struct CooTiling {
  const index_t* perm;     // nonzero ids grouped by tile, ascending inside
  const index_t* offsets;  // [threads + 1] bounds into perm
};

CooTiling build_coo_tiling(const SparseTensor& x, int mode, int threads,
                           ThreadArena& arena) {
  const index_t count = x.nnz();
  const index_t rows = x.dim(mode);
  const index_t* ind = x.mode_indices(mode).data();
  index_t* buf = arena.index_scratch(
      static_cast<std::size_t>(rows + 2 * (threads + 1) + count));
  index_t* row_tile = buf;                      // rows: counts, then tile id
  index_t* cursor = buf + rows;                 // threads + 1
  index_t* offsets = cursor + threads + 1;      // threads + 1
  index_t* perm = offsets + threads + 1;        // count

  std::fill(row_tile, row_tile + rows, index_t{0});
  for (index_t p = 0; p < count; ++p) ++row_tile[ind[p]];

  // Assign rows to tiles so each tile holds ~count/threads nonzeros, and
  // rewrite the histogram into the row -> tile map in the same pass.
  std::fill(offsets, offsets + threads + 1, index_t{0});
  index_t acc = 0;
  int tile = 0;
  for (index_t r = 0; r < rows; ++r) {
    while (tile + 1 < threads &&
           acc >= ceil_div(count * (tile + 1), threads)) {
      ++tile;
    }
    const index_t c = row_tile[r];
    row_tile[r] = tile;
    offsets[tile + 1] += c;
    acc += c;
  }
  for (int t = 0; t < threads; ++t) offsets[t + 1] += offsets[t];
  std::copy(offsets, offsets + threads + 1, cursor);
  for (index_t p = 0; p < count; ++p) {
    perm[cursor[row_tile[ind[p]]]++] = p;
  }
  return {perm, offsets};
}

SparseKernelVariant resolve_coo_variant(SparseKernelVariant variant, int mode,
                                        index_t out_words) {
  if (variant != SparseKernelVariant::kAuto) return variant;
  if (mode == 0) return SparseKernelVariant::kTiled;  // sorted: free tiles
  if (out_words <= kPrivatizeOutputWords) {
    return SparseKernelVariant::kPrivatized;
  }
  return SparseKernelVariant::kTiled;
}

}  // namespace

KernelVariantCounters kernel_variant_counters() {
  KernelVariantCounters c;
  c.serial = serial_counter().value();
  c.privatized = privatized_counter().value();
  c.atomic_adds = atomic_counter().value();
  c.tiled = tiled_counter().value();
  return c;
}

void reset_kernel_variant_counters() {
  serial_counter().reset();
  privatized_counter().reset();
  atomic_counter().reset();
  tiled_counter().reset();
}

Matrix mttkrp_coo(const SparseTensor& x, const std::vector<Matrix>& factors,
                  int mode, bool parallel, SparseKernelVariant variant) {
  const index_t rank = check_mttkrp_args(x.dims(), factors, mode);
  MTK_CHECK(x.sorted(), "mttkrp_coo requires sort_and_dedup() first");
  Span span(SpanCategory::kKernel, "mttkrp_coo");
  if (span.enabled()) {
    span.arg("nnz", x.nnz());
    span.arg("mode", mode);
    span.arg("variant", static_cast<int>(variant));
  }
  Matrix b(x.dim(mode), rank);
  const index_t count = x.nnz();
  ThreadArena& arena = mttkrp_arena();
  const int threads = parallel ? max_threads() : 1;

  // The plain serial loop is the kAuto fast path only: an explicitly
  // requested variant must execute its schedule even at one thread (its
  // single tile/chunk reproduces the serial accumulation order bit-for-bit),
  // so planner-chosen variants are honored wherever the call lands.
  if (threads <= 1 && variant == SparseKernelVariant::kAuto) {
    note_serial_executed();
    arena.prepare(1, static_cast<std::size_t>(rank));
    coo_accumulate(x, factors, mode, nullptr, 0, count, b.data(), rank,
                   arena.slot(0), /*atomic_adds=*/false);
    return b;
  }

  const index_t out_words = checked_mul(b.rows(), rank);
  const SparseKernelVariant resolved =
      resolve_coo_variant(variant, mode, out_words);
  note_variant_executed(resolved);
  switch (resolved) {
    case SparseKernelVariant::kPrivatized: {
      // Seed schedule, arena-backed: private copies of B merged under a
      // critical section.
      arena.prepare(threads, static_cast<std::size_t>(out_words + rank));
#pragma omp parallel num_threads(threads)
      {
#ifdef _OPENMP
        const index_t nth = omp_get_num_threads();
        const index_t tid = omp_get_thread_num();
#else
        const index_t nth = 1, tid = 0;
#endif
        const index_t chunk = ceil_div(std::max<index_t>(count, 1), nth);
        const index_t begin = std::min(count, tid * chunk);
        const index_t end = std::min(count, begin + chunk);
        if (begin < end) {
          double* scratch = arena.slot(static_cast<int>(tid));
          double* prod = scratch + out_words;
          std::fill(scratch, scratch + out_words, 0.0);
          coo_accumulate(x, factors, mode, nullptr, begin, end, scratch, rank,
                         prod, /*atomic_adds=*/false);
#pragma omp critical(mtk_mttkrp_coo_reduce)
          add_range(b.data(), scratch, out_words);
        }
      }
      return b;
    }
    case SparseKernelVariant::kAtomic: {
      arena.prepare(threads, static_cast<std::size_t>(rank));
#pragma omp parallel num_threads(threads)
      {
#ifdef _OPENMP
        const index_t nth = omp_get_num_threads();
        const index_t tid = omp_get_thread_num();
#else
        const index_t nth = 1, tid = 0;
#endif
        const index_t chunk = ceil_div(std::max<index_t>(count, 1), nth);
        const index_t begin = std::min(count, tid * chunk);
        const index_t end = std::min(count, begin + chunk);
        if (begin < end) {
          coo_accumulate(x, factors, mode, nullptr, begin, end, b.data(),
                         rank, arena.slot(static_cast<int>(tid)),
                         /*atomic_adds=*/true);
        }
      }
      return b;
    }
    case SparseKernelVariant::kAuto:  // resolved above; not reachable
    case SparseKernelVariant::kTiled: {
      arena.prepare(threads, static_cast<std::size_t>(rank));
      if (mode == 0) {
        // The COO order is lexicographic with mode 0 most significant, so
        // equal chunks snapped to row boundaries give disjoint output rows
        // with no extra memory. The loop is over tiles (not thread ids) so
        // a smaller-than-requested team still covers every tile.
        const index_t* ind = x.mode_indices(0).data();
        const index_t chunk = ceil_div(std::max<index_t>(count, 1),
                                       static_cast<index_t>(threads));
#pragma omp parallel for schedule(static) num_threads(threads)
        for (int t = 0; t < threads; ++t) {
#ifdef _OPENMP
          const int tid = omp_get_thread_num();
#else
          const int tid = 0;
#endif
          const index_t begin = snap_to_row_boundary(ind, count, t * chunk);
          const index_t end =
              snap_to_row_boundary(ind, count, (t + 1) * chunk);
          if (begin < end) {
            coo_accumulate(x, factors, mode, nullptr, begin, end, b.data(),
                           rank, arena.slot(tid), /*atomic_adds=*/false);
          }
        }
        return b;
      }
      const CooTiling tiling = build_coo_tiling(x, mode, threads, arena);
#pragma omp parallel for schedule(static) num_threads(threads)
      for (int t = 0; t < threads; ++t) {
#ifdef _OPENMP
        const int tid = omp_get_thread_num();
#else
        const int tid = 0;
#endif
        const index_t begin = tiling.offsets[t];
        const index_t end = tiling.offsets[t + 1];
        if (begin < end) {
          coo_accumulate(x, factors, mode, tiling.perm, begin, end, b.data(),
                         rank, arena.slot(tid), /*atomic_adds=*/false);
        }
      }
      return b;
    }
  }
  MTK_ASSERT(false, "unreachable: unknown sparse kernel variant");
  return b;
}

// ---------------------------------------------------------------------------
// CSF kernel

namespace {

// Adds to `out` the subtree sum of (level, node):
//   out[r] += A_{order[level]}(fid, r) * (value at leaf | sum over children),
// i.e. the product of all factor rows strictly below the target level,
// weighted by the nonzero values. Only called for levels below the target.
// `bot_stack` holds one rank-sized accumulator per level.
void csf_bottom_sum(const CsfTensor& x, const std::vector<Matrix>& factors,
                    int level, index_t node, index_t rank, double* bot_stack,
                    double* out) {
  const int n = x.order();
  const int k = x.mode_order()[static_cast<std::size_t>(level)];
  const double* arow = factors[static_cast<std::size_t>(k)].row(
      x.fids(level)[static_cast<std::size_t>(node)]);
  if (level == n - 1) {
    const double v = x.values()[static_cast<std::size_t>(node)];
    for (index_t r = 0; r < rank; ++r) out[r] += v * arow[r];
    return;
  }
  double* acc = bot_stack + level * rank;
  std::fill(acc, acc + rank, 0.0);
  const index_t begin = x.fptr(level)[static_cast<std::size_t>(node)];
  const index_t end = x.fptr(level)[static_cast<std::size_t>(node) + 1];
  for (index_t c = begin; c < end; ++c) {
    csf_bottom_sum(x, factors, level + 1, c, rank, bot_stack, acc);
  }
  for (index_t r = 0; r < rank; ++r) out[r] += arow[r] * acc[r];
}

struct CsfWalkCtx {
  const CsfTensor& x;
  const std::vector<Matrix>& factors;
  int target = 0;
  index_t rank = 0;
  double* out = nullptr;  // row-major rank-column output
  bool atomic_adds = false;
  index_t tile_lo = 0;  // target-fid half-open filter for owner-computes
  index_t tile_hi = 0;
  double* top_stack = nullptr;  // [order x rank]
  double* bot_stack = nullptr;  // [order x rank]
};

// Walks the tree from (level, node) with `top` holding the elementwise
// product of ancestor factor rows; at the target level it combines top and
// the subtree ("bottom") sum into the output row for that fiber's index.
// Subtrees whose target fiber falls outside [tile_lo, tile_hi) are skipped.
void csf_walk(CsfWalkCtx& c, int level, index_t node, const double* top) {
  const int n = c.x.order();
  const index_t rank = c.rank;
  const index_t fid = c.x.fids(level)[static_cast<std::size_t>(node)];
  if (level == c.target) {
    if (fid < c.tile_lo || fid >= c.tile_hi) return;
    double* brow = c.out + fid * rank;
    if (level == n - 1) {
      const double v = c.x.values()[static_cast<std::size_t>(node)];
      if (c.atomic_adds) {
        for (index_t r = 0; r < rank; ++r) {
#pragma omp atomic
          brow[r] += v * top[r];
        }
      } else {
        for (index_t r = 0; r < rank; ++r) brow[r] += v * top[r];
      }
      return;
    }
    double* bot = c.bot_stack + level * rank;
    std::fill(bot, bot + rank, 0.0);
    const index_t begin = c.x.fptr(level)[static_cast<std::size_t>(node)];
    const index_t end = c.x.fptr(level)[static_cast<std::size_t>(node) + 1];
    for (index_t ch = begin; ch < end; ++ch) {
      csf_bottom_sum(c.x, c.factors, level + 1, ch, rank, c.bot_stack, bot);
    }
    if (c.atomic_adds) {
      for (index_t r = 0; r < rank; ++r) {
#pragma omp atomic
        brow[r] += top[r] * bot[r];
      }
    } else {
      for (index_t r = 0; r < rank; ++r) brow[r] += top[r] * bot[r];
    }
    return;
  }
  const int k = c.x.mode_order()[static_cast<std::size_t>(level)];
  const double* arow = c.factors[static_cast<std::size_t>(k)].row(fid);
  double* next = c.top_stack + level * rank;
  for (index_t r = 0; r < rank; ++r) next[r] = top[r] * arow[r];
  const index_t begin = c.x.fptr(level)[static_cast<std::size_t>(node)];
  const index_t end = c.x.fptr(level)[static_cast<std::size_t>(node) + 1];
  for (index_t ch = begin; ch < end; ++ch) {
    csf_walk(c, level + 1, ch, next);
  }
}

void csf_roots(CsfWalkCtx& c, index_t root_begin, index_t root_end,
               const double* ones) {
  for (index_t f = root_begin; f < root_end; ++f) {
    csf_walk(c, 0, f, ones);
  }
}

// Leaf index where each root fiber's subtree begins (plus an nnz sentinel),
// by chasing first-child pointers; used to split roots into slabs of
// near-equal nonzero count. Written into `offsets` (roots + 1 entries).
void csf_root_leaf_offsets(const CsfTensor& x, index_t* offsets) {
  const int n = x.order();
  const index_t roots = x.node_count(0);
  for (index_t f = 0; f < roots; ++f) {
    index_t c = f;
    for (int l = 0; l + 1 < n; ++l) {
      c = x.fptr(l)[static_cast<std::size_t>(c)];
    }
    offsets[f] = c;
  }
  offsets[roots] = x.nnz();
}

// Root slab [begin, end) of thread `tid` when nonzeros are cut into `nth`
// near-equal chunks (leaf_offsets as produced above).
void root_slab(const index_t* leaf_offsets, index_t roots, index_t nnz,
               index_t tid, index_t nth, index_t* begin, index_t* end) {
  const index_t chunk = ceil_div(std::max<index_t>(nnz, 1), nth);
  const index_t* last = leaf_offsets + roots;  // excludes the sentinel
  const index_t* lo =
      std::lower_bound(leaf_offsets, last, tid * chunk);
  const index_t* hi = std::lower_bound(lo, last, (tid + 1) * chunk);
  *begin = static_cast<index_t>(lo - leaf_offsets);
  *end = static_cast<index_t>(hi - leaf_offsets);
}

SparseKernelVariant resolve_csf_variant(SparseKernelVariant variant,
                                        int target, index_t out_words) {
  if (variant != SparseKernelVariant::kAuto) return variant;
  if (target == 0) return SparseKernelVariant::kTiled;  // root slabs: free
  if (out_words <= kPrivatizeOutputWords) {
    return SparseKernelVariant::kPrivatized;
  }
  return SparseKernelVariant::kTiled;
}

}  // namespace

Matrix mttkrp_csf(const CsfTensor& x, const std::vector<Matrix>& factors,
                  int mode, bool parallel, SparseKernelVariant variant) {
  const index_t rank = check_mttkrp_args(x.dims(), factors, mode);
  Span span(SpanCategory::kKernel, "mttkrp_csf");
  if (span.enabled()) {
    span.arg("nnz", x.nnz());
    span.arg("mode", mode);
    span.arg("variant", static_cast<int>(variant));
  }
  const int target = x.level_of_mode(mode);
  const int n = x.order();
  Matrix b(x.dim(mode), rank);
  const index_t roots = x.node_count(0);
  const index_t count = x.nnz();
  ThreadArena& arena = mttkrp_arena();
  const std::size_t stack_words =
      static_cast<std::size_t>(2 * n * rank + rank);
  const int threads = parallel ? max_threads() : 1;

  const auto make_ctx = [&](double* slot, double* out,
                            bool atomic_adds) -> CsfWalkCtx {
    CsfWalkCtx c{x, factors};
    c.target = target;
    c.rank = rank;
    c.out = out;
    c.atomic_adds = atomic_adds;
    c.tile_lo = 0;
    c.tile_hi = b.rows();
    c.top_stack = slot;
    c.bot_stack = slot + n * rank;
    return c;
  };
  // The walk multiplies the root row into a running "top" product, so the
  // initial top is all-ones (stored at the tail of each slot).
  const auto fill_ones = [&](double* slot) -> const double* {
    double* ones = slot + 2 * n * rank;
    std::fill(ones, ones + rank, 1.0);
    return ones;
  };

  // Like the COO kernel: the plain walk serves kAuto only, so an explicitly
  // requested variant runs its schedule even at one thread.
  if (threads <= 1 && variant == SparseKernelVariant::kAuto) {
    note_serial_executed();
    arena.prepare(1, stack_words);
    double* slot = arena.slot(0);
    CsfWalkCtx c = make_ctx(slot, b.data(), false);
    csf_roots(c, 0, roots, fill_ones(slot));
    return b;
  }

  const index_t out_words = checked_mul(b.rows(), rank);
  const SparseKernelVariant resolved =
      resolve_csf_variant(variant, target, out_words);
  note_variant_executed(resolved);

  if (resolved == SparseKernelVariant::kTiled && target > 0) {
    // Owner-computes over output tiles: rows are cut into per-thread tiles
    // balanced by the nonzero weight below each target-level fiber; every
    // thread walks the whole forest but only processes target fibers in
    // its tile, so writes need no synchronization. The duplicated
    // traversal above the target level is bounded by the (much smaller)
    // upper-level fiber counts.
    const index_t targets = x.node_count(target);
    index_t* buf = arena.index_scratch(static_cast<std::size_t>(
        targets + 1 + b.rows() + threads + 1));
    index_t* target_leaf = buf;                 // targets + 1
    index_t* row_weight = target_leaf + targets + 1;  // rows
    index_t* cuts = row_weight + b.rows();      // threads + 1
    for (index_t f = 0; f < targets; ++f) {
      index_t c = f;
      for (int l = target; l + 1 < n; ++l) {
        c = x.fptr(l)[static_cast<std::size_t>(c)];
      }
      target_leaf[f] = c;
    }
    target_leaf[targets] = count;
    std::fill(row_weight, row_weight + b.rows(), index_t{0});
    for (index_t f = 0; f < targets; ++f) {
      row_weight[x.fids(target)[static_cast<std::size_t>(f)]] +=
          target_leaf[f + 1] - target_leaf[f];
    }
    cuts[0] = 0;
    index_t acc = 0;
    int tile = 0;
    for (index_t r = 0; r < b.rows(); ++r) {
      while (tile + 1 < threads &&
             acc >= ceil_div(count * (tile + 1),
                             static_cast<index_t>(threads))) {
        cuts[++tile] = r;
      }
      acc += row_weight[r];
    }
    while (tile + 1 <= threads) cuts[++tile] = b.rows();

    arena.prepare(threads, stack_words);
#pragma omp parallel for schedule(static) num_threads(threads)
    for (int t = 0; t < threads; ++t) {
#ifdef _OPENMP
      const int tid = omp_get_thread_num();
#else
      const int tid = 0;
#endif
      double* slot = arena.slot(tid);
      CsfWalkCtx c = make_ctx(slot, b.data(), false);
      c.tile_lo = cuts[t];
      c.tile_hi = cuts[t + 1];
      if (c.tile_lo < c.tile_hi) {
        csf_roots(c, 0, roots, fill_ones(slot));
      }
    }
    return b;
  }

  // Remaining parallel schedules partition root fibers into slabs of
  // near-equal nonzero count (root subtrees are wildly uneven, so the cut
  // is by leaf offset, not fiber count).
  index_t* leaf_offsets =
      arena.index_scratch(static_cast<std::size_t>(roots) + 1);
  csf_root_leaf_offsets(x, leaf_offsets);

  const std::size_t slot_words =
      resolved == SparseKernelVariant::kPrivatized
          ? stack_words + static_cast<std::size_t>(out_words)
          : stack_words;
  arena.prepare(threads, slot_words);
#pragma omp parallel num_threads(threads)
  {
#ifdef _OPENMP
    const index_t nth = omp_get_num_threads();
    const index_t tid = omp_get_thread_num();
#else
    const index_t nth = 1, tid = 0;
#endif
    index_t root_begin = 0, root_end = 0;
    root_slab(leaf_offsets, roots, count, tid, nth, &root_begin, &root_end);
    if (root_begin < root_end) {
      double* slot = arena.slot(static_cast<int>(tid));
      if (target == 0) {
        // Root-mode fast path: each root fiber owns exactly one output
        // row, so slab workers write disjoint rows with no
        // synchronization (any requested variant short of privatized).
        if (resolved == SparseKernelVariant::kPrivatized) {
          double* scratch = slot + stack_words;
          std::fill(scratch, scratch + out_words, 0.0);
          CsfWalkCtx c = make_ctx(slot, scratch, false);
          csf_roots(c, root_begin, root_end, fill_ones(slot));
#pragma omp critical(mtk_mttkrp_csf_reduce)
          add_range(b.data(), scratch, out_words);
        } else {
          CsfWalkCtx c = make_ctx(slot, b.data(), false);
          csf_roots(c, root_begin, root_end, fill_ones(slot));
        }
      } else if (resolved == SparseKernelVariant::kAtomic) {
        CsfWalkCtx c = make_ctx(slot, b.data(), true);
        csf_roots(c, root_begin, root_end, fill_ones(slot));
      } else {
        // Privatized: per-thread copy of B from the arena, merged under a
        // critical section (the seed schedule, minus its per-call
        // allocation).
        double* scratch = slot + stack_words;
        std::fill(scratch, scratch + out_words, 0.0);
        CsfWalkCtx c = make_ctx(slot, scratch, false);
        csf_roots(c, root_begin, root_end, fill_ones(slot));
#pragma omp critical(mtk_mttkrp_csf_reduce)
        add_range(b.data(), scratch, out_words);
      }
    }
  }
  return b;
}

Matrix mttkrp(const CsfSet& set, const std::vector<Matrix>& factors,
              int mode, const MttkrpOptions& opts) {
  return mttkrp_csf(set.tree_for(mode), factors, mode, opts.parallel,
                    opts.kernel_variant);
}

// ---------------------------------------------------------------------------
// Fused all-modes walk

namespace {

struct FusedCtx {
  const CsfTensor& x;
  const std::vector<Matrix>& factors;
  std::vector<Matrix>* outs = nullptr;
  index_t rank = 0;
  bool atomic_adds = false;    // for levels >= 1 under the root-slab split
  double* top_stack = nullptr;  // [order x rank] child top products
  double* s_stack = nullptr;    // [order x rank] memoized subtree partials
};

// Computes, for node u, the memoized subtree partial
//   S(u)[r] = sum_{leaves v below u} value(v) * prod_{w strictly below u on
//             the path to v} A(fid(w), r)
// and adds every level's MTTKRP contribution on the way:
//   out_{mode(l)}(fid(u), :) += top(u) o S(u)        (root: top = ones)
//   parent_acc += A(fid(u), :) o S(u)                (P(u), reused upward)
// One walk therefore serves all N modes; the leaf contributes 2R multiplies
// and each interior non-root fiber 3R, which fused_multiply_count mirrors.
void fused_walk(FusedCtx& c, int level, index_t node, const double* top,
                double* parent_acc) {
  const int n = c.x.order();
  const index_t rank = c.rank;
  const index_t fid = c.x.fids(level)[static_cast<std::size_t>(node)];
  const int k = c.x.mode_order()[static_cast<std::size_t>(level)];
  const double* arow = c.factors[static_cast<std::size_t>(k)].row(fid);
  double* brow = (*c.outs)[static_cast<std::size_t>(k)].row(fid);

  if (level == n - 1) {
    const double v = c.x.values()[static_cast<std::size_t>(node)];
    if (c.atomic_adds) {
      for (index_t r = 0; r < rank; ++r) {
#pragma omp atomic
        brow[r] += v * top[r];
      }
    } else {
      for (index_t r = 0; r < rank; ++r) brow[r] += v * top[r];
    }
    for (index_t r = 0; r < rank; ++r) parent_acc[r] += v * arow[r];
    return;
  }

  double* s = c.s_stack + level * rank;
  std::fill(s, s + rank, 0.0);
  const double* child_top;
  if (level == 0) {
    child_top = arow;  // top(root) = ones, so the children's top is the row
  } else {
    double* buf = c.top_stack + level * rank;
    for (index_t r = 0; r < rank; ++r) buf[r] = top[r] * arow[r];
    child_top = buf;
  }
  const index_t begin = c.x.fptr(level)[static_cast<std::size_t>(node)];
  const index_t end = c.x.fptr(level)[static_cast<std::size_t>(node) + 1];
  for (index_t ch = begin; ch < end; ++ch) {
    fused_walk(c, level + 1, ch, child_top, s);
  }

  if (level == 0) {
    // Root fids are unique, so under the root-slab partition these rows are
    // owner-computed — no synchronization even in parallel runs.
    for (index_t r = 0; r < rank; ++r) brow[r] += s[r];
    return;
  }
  if (c.atomic_adds) {
    for (index_t r = 0; r < rank; ++r) {
#pragma omp atomic
      brow[r] += top[r] * s[r];
    }
  } else {
    for (index_t r = 0; r < rank; ++r) brow[r] += top[r] * s[r];
  }
  for (index_t r = 0; r < rank; ++r) parent_acc[r] += arow[r] * s[r];
}

}  // namespace

index_t fused_multiply_count(const CsfTensor& tree, index_t rank) {
  const int n = tree.order();
  index_t interior = 0;
  for (int l = 1; l + 1 < n; ++l) interior += tree.node_count(l);
  return checked_mul(rank, 2 * tree.nnz() + 3 * interior);
}

index_t csf_target_multiply_count(const CsfTensor& tree, index_t rank) {
  index_t nodes = 0;
  for (int l = 0; l < tree.order(); ++l) nodes += tree.node_count(l);
  return checked_mul(rank, nodes);
}

index_t csf_separate_multiply_count(const CsfSet& set, index_t rank) {
  index_t total = 0;
  for (int mode = 0; mode < set.order(); ++mode) {
    total += csf_target_multiply_count(set.tree_for(mode), rank);
  }
  return total;
}

AllModesResult mttkrp_all_modes_fused(const CsfTensor& tree,
                                      const std::vector<Matrix>& factors,
                                      bool parallel) {
  const int n = tree.order();
  MTK_CHECK(n >= 2, "all-modes MTTKRP requires order >= 2");
  Span span(SpanCategory::kKernel, "mttkrp_all_modes_fused");
  if (span.enabled()) {
    span.arg("nnz", tree.nnz());
    span.arg("order", n);
  }
  const index_t rank = check_mttkrp_args(tree.dims(), factors, 0);
  for (int mode = 1; mode < n; ++mode) {
    check_mttkrp_args(tree.dims(), factors, mode);
  }

  AllModesResult result;
  result.outputs.reserve(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    result.outputs.emplace_back(tree.dim(k), rank);
  }
  result.multiplies = fused_multiply_count(tree, rank);

  const index_t roots = tree.node_count(0);
  const index_t count = tree.nnz();
  ThreadArena& arena = mttkrp_arena();
  const std::size_t stack_words = static_cast<std::size_t>(2 * n * rank);
  const int threads = parallel ? max_threads() : 1;

  if (threads <= 1 || roots == 0) {
    arena.prepare(1, stack_words);
    FusedCtx c{tree, factors};
    c.outs = &result.outputs;
    c.rank = rank;
    c.top_stack = arena.slot(0);
    c.s_stack = arena.slot(0) + n * rank;
    for (index_t f = 0; f < roots; ++f) {
      fused_walk(c, 0, f, nullptr, nullptr);
    }
    return result;
  }

  index_t* leaf_offsets =
      arena.index_scratch(static_cast<std::size_t>(roots) + 1);
  csf_root_leaf_offsets(tree, leaf_offsets);
  arena.prepare(threads, stack_words);
#pragma omp parallel num_threads(threads)
  {
#ifdef _OPENMP
    const index_t nth = omp_get_num_threads();
    const index_t tid = omp_get_thread_num();
#else
    const index_t nth = 1, tid = 0;
#endif
    index_t root_begin = 0, root_end = 0;
    root_slab(leaf_offsets, roots, count, tid, nth, &root_begin, &root_end);
    if (root_begin < root_end) {
      double* slot = arena.slot(static_cast<int>(tid));
      FusedCtx c{tree, factors};
      c.outs = &result.outputs;
      c.rank = rank;
      c.atomic_adds = true;  // levels >= 1 can collide across root slabs
      c.top_stack = slot;
      c.s_stack = slot + n * rank;
      for (index_t f = root_begin; f < root_end; ++f) {
        fused_walk(c, 0, f, nullptr, nullptr);
      }
    }
  }
  return result;
}

AllModesResult mttkrp_all_modes(const CsfSet& set,
                                const std::vector<Matrix>& factors,
                                const MttkrpOptions& opts) {
  MTK_CHECK(!set.empty(), "mttkrp_all_modes on an empty CsfSet");
  return mttkrp_all_modes_fused(set.tree(0), factors, opts.parallel);
}

}  // namespace mtk
