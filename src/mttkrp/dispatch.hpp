// Storage-backend dispatch for MTTKRP: one entry point, three storage
// formats.
//
//   DenseTensor  — routed to the dense algorithms in src/mttkrp/mttkrp.hpp
//                  (reference / blocked / matmul / two_step, per
//                  MttkrpOptions::algo).
//   SparseTensor — coordinate (COO) kernel: one fused multiply per nonzero,
//                  OpenMP over nonzero chunks or owner-computed output
//                  tiles (src/mttkrp/sparse_kernels.hpp).
//   CsfTensor    — compressed-sparse-fiber kernel: factor rows shared along
//                  fibers, OpenMP over root fiber slabs / output tiles with
//                  per-variant reduction schedules, as in SPLATT.
//
// `StoredTensor` is the type-erased handle the upper layers (CP-ALS,
// CP-gradient, IO, CLI) hold so they run unmodified on any backend. Sparse
// handles also carry a lazily built, shared kernel-acceleration cache (the
// per-mode CsfSet forest and the fused all-modes tree), so repeated
// MTTKRP calls on the same handle never re-compress trees. Adding a new
// storage format means: add the format tag, a StoredTensor factory, a
// kernel, and one switch arm in each dispatch function below — no changes
// above this layer.
#pragma once

#include <memory>
#include <vector>

#include "src/mttkrp/dim_tree.hpp"
#include "src/mttkrp/mttkrp.hpp"
#include "src/mttkrp/sparse_kernels.hpp"
#include "src/tensor/csf.hpp"
#include "src/tensor/csf_set.hpp"
#include "src/tensor/dense_tensor.hpp"
#include "src/tensor/sparse_tensor.hpp"

namespace mtk {

enum class StorageFormat { kDense, kCoo, kCsf };

const char* to_string(StorageFormat format);

class CsfAccel;  // lazily built CSF forest cache (defined in dispatch.cpp)

// Type-erased tensor handle. Owning factories move the storage in;
// borrowing factories (`*_view`) alias caller-owned storage, which must
// outlive the handle. Copies share the underlying (immutable) storage and
// the kernel-acceleration cache.
class StoredTensor {
 public:
  StoredTensor() = default;

  static StoredTensor dense(DenseTensor x);
  static StoredTensor coo(SparseTensor x);  // requires sort_and_dedup()
  static StoredTensor csf(CsfTensor x);

  static StoredTensor dense_view(const DenseTensor& x);
  static StoredTensor coo_view(const SparseTensor& x);
  static StoredTensor csf_view(const CsfTensor& x);

  bool empty() const { return storage_ == nullptr; }
  StorageFormat format() const;

  int order() const;
  const shape_t& dims() const;
  index_t dim(int k) const;
  // Number of explicitly stored values (prod(dims) for dense, nnz for
  // sparse) — the work/traffic unit of every kernel.
  index_t stored_values() const;
  double frobenius_norm() const;

  const DenseTensor& as_dense() const;
  const SparseTensor& as_coo() const;
  const CsfTensor& as_csf() const;

  // Lazily built kernel accelerators for sparse storage (throws on dense).
  // Built at most once per handle family (copies share the cache) and
  // reused for every later call — repeated `mttkrp(x, ..., mode)` and
  // `mttkrp_all_modes(x, ...)` calls perform zero CSF compressions after
  // the first. Thread-safe; the returned reference lives as long as any
  // sharing handle.
  const CsfSet& csf_forest() const;       // one root-rooted tree per mode
  const CsfTensor& csf_fused_tree() const;  // single tree for all-modes

 private:
  StorageFormat format_ = StorageFormat::kDense;
  // Exactly one is non-null; shared_ptr with a no-op deleter implements the
  // borrowing views.
  std::shared_ptr<const void> storage_;
  const DenseTensor* dense_ = nullptr;
  const SparseTensor* coo_ = nullptr;
  const CsfTensor* csf_ = nullptr;
  std::shared_ptr<CsfAccel> accel_;  // sparse handles only
};

// COO expansion of any storage format: returns a fresh (owning) tensor;
// dense entries with |x| > dense_threshold are kept, matching
// SparseTensor::from_dense. For a borrowed view of already-sparse storage
// (no copy) use sparse_coo_view in src/parsim/par_common.hpp instead.
SparseTensor to_coo(const StoredTensor& x, double dense_threshold = 0.0);

// Dispatching entry points; MttkrpOptions::sparse_algo selects the sparse
// kernel (kAuto runs the storage-native kernel without conversion) and
// MttkrpOptions::kernel_variant its parallel schedule.
Matrix mttkrp(const SparseTensor& x, const std::vector<Matrix>& factors,
              int mode, const MttkrpOptions& opts = {});
Matrix mttkrp(const CsfTensor& x, const std::vector<Matrix>& factors,
              int mode, const MttkrpOptions& opts = {});
Matrix mttkrp(const StoredTensor& x, const std::vector<Matrix>& factors,
              int mode, const MttkrpOptions& opts = {});

// All-modes MTTKRP for gradient-style workloads: dense storage uses the
// dimension tree (partial-contraction reuse); sparse storage runs the
// fused multi-tree walk on the handle's cached CSF tree (memoized subtree
// partials — the sparse analogue of the dimension tree), unless
// sparse_algo forces the per-mode COO loop.
AllModesResult mttkrp_all_modes(const StoredTensor& x,
                                const std::vector<Matrix>& factors,
                                const MttkrpOptions& opts = {});

}  // namespace mtk
