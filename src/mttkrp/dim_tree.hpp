// Dimension-tree multi-mode MTTKRP: computes B^(n) for *every* mode n of a
// CP-ALS sweep while sharing partial contractions between modes
// (Phan et al. [13]; the extension the paper's Section VII identifies:
// "optimizing over multiple MTTKRPs can save both communication and
// computation").
//
// The tree splits the mode set recursively in half. The root contraction
// produces two partials (left modes kept / right modes kept), each computed
// directly from the tensor; deeper levels contract existing partials. A
// leaf {n} is exactly the mode-n MTTKRP. Relative to N independent
// MTTKRPs — each a full O(N I R) pass over the tensor — the tree touches
// the tensor only twice and does the remaining work on partials that shrink
// geometrically.
//
// The implementation counts scalar multiplies so benchmarks can report the
// exact reuse factor.
#pragma once

#include <vector>

#include "src/mttkrp/partial.hpp"

namespace mtk {

struct AllModesResult {
  std::vector<Matrix> outputs;   // outputs[n] = B^(n), one per mode
  index_t multiplies = 0;        // scalar multiplies performed
};

// All N MTTKRPs via the dimension tree. `factors` supplies all N factor
// matrices (all are read — each mode's output contracts the other N-1).
AllModesResult mttkrp_all_modes_tree(const DenseTensor& x,
                                     const std::vector<Matrix>& factors);

// Baseline: N independent MTTKRP calls (reference algorithm), with the
// same multiply accounting, for measuring the reuse factor.
AllModesResult mttkrp_all_modes_separate(const DenseTensor& x,
                                         const std::vector<Matrix>& factors);

// The number of scalar multiplies the tree performs for the given problem
// (model, no execution); used in tests against the measured count.
index_t dim_tree_multiply_count(const shape_t& dims, index_t rank);

}  // namespace mtk
