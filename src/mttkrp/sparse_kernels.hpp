// SPLATT-class sparse MTTKRP kernels: the shared-memory hot path behind the
// storage dispatch layer (src/mttkrp/dispatch.hpp).
//
// Parallel schedules (MttkrpOptions::kernel_variant / SparseKernelVariant):
//
//   privatized — every thread accumulates its chunk into a private copy of
//                B and the copies merge under a critical section. This is
//                the seed schedule; its scratch now comes from the
//                per-thread ThreadArena instead of a fresh `rows x rank`
//                Matrix allocated inside the parallel region, and it
//                remains the right choice when the output is small (merge
//                cost ~ rows x rank x threads is negligible).
//   atomic     — threads update the shared B with per-element atomic adds;
//                no scratch, no merge, contention proportional to how many
//                nonzeros share an output row.
//   tiled      — owner-computes: output rows are partitioned into
//                per-thread tiles balanced by nonzero weight, and every
//                write is unsynchronized because each thread only touches
//                its own rows. COO sorted by the output mode and root-mode
//                CSF get this for free (contiguous fiber slabs); other COO
//                modes bucket the nonzeros by tile once per call; non-root
//                CSF targets filter the tree walk by tile.
//   auto       — tiled when the schedule permits owner-computes cheaply,
//                privatized when the output is small, tiled otherwise.
//
// All scratch (product buffers, walk stacks, privatized output copies,
// tiling permutations) lives in the calling thread's ThreadArena
// (src/mttkrp/thread_arena.hpp): nothing is allocated in the hot loop.
#pragma once

#include <vector>

#include "src/mttkrp/dim_tree.hpp"
#include "src/mttkrp/mttkrp.hpp"
#include "src/tensor/csf.hpp"
#include "src/tensor/csf_set.hpp"
#include "src/tensor/sparse_tensor.hpp"

namespace mtk {

// Process-wide counts of which sparse-kernel schedule actually executed —
// the regression hook for planner plumbing: tests assert that a plan's
// kernel_variant reaches the kernels instead of being silently dropped.
// `serial` counts kAuto calls that took the unscheduled serial fast path;
// explicitly requested variants always land in their schedule's counter.
struct KernelVariantCounters {
  index_t serial = 0;
  index_t privatized = 0;
  index_t atomic_adds = 0;
  index_t tiled = 0;
};
KernelVariantCounters kernel_variant_counters();
void reset_kernel_variant_counters();

// Direct sparse kernels (used by the dispatch layer, tests, benchmarks).
Matrix mttkrp_coo(const SparseTensor& x, const std::vector<Matrix>& factors,
                  int mode, bool parallel = false,
                  SparseKernelVariant variant = SparseKernelVariant::kAuto);
Matrix mttkrp_csf(const CsfTensor& x, const std::vector<Matrix>& factors,
                  int mode, bool parallel = false,
                  SparseKernelVariant variant = SparseKernelVariant::kAuto);

// Per-mode MTTKRP against a prebuilt CsfSet: routes to the tree where
// `mode` sits at its cheapest level (no per-call compression).
Matrix mttkrp(const CsfSet& set, const std::vector<Matrix>& factors,
              int mode, const MttkrpOptions& opts = {});

// Fused all-modes MTTKRP on one CSF tree: a single walk computes every
// B^(n) by memoizing each subtree's partial product S(u) — the sparse
// analogue of the dense dimension tree. Per node the walk spends
// 2R multiplies per leaf and 3R per interior non-root fiber, versus
// R x (total nodes) for EACH of the N single-target walks it replaces, so
// the reported multiply reuse factor exceeds 1 for every order >= 3
// tensor. Parallel runs partition root fibers by nonzero count (root-level
// rows are owner-computed; deeper levels use atomic adds).
AllModesResult mttkrp_all_modes_fused(const CsfTensor& tree,
                                      const std::vector<Matrix>& factors,
                                      bool parallel = false);
AllModesResult mttkrp_all_modes(const CsfSet& set,
                                const std::vector<Matrix>& factors,
                                const MttkrpOptions& opts = {});

// Exact multiply counts of the kernels above (models, no execution):
// the fused walk performs R x (2 nnz + 3 x interior non-root fibers)
// multiplies; a single-target walk performs R x (total fibers). Tests and
// benchmarks derive the reuse factor from their ratio.
index_t fused_multiply_count(const CsfTensor& tree, index_t rank);
index_t csf_target_multiply_count(const CsfTensor& tree, index_t rank);
// Sum of per-mode single-target counts across a set's trees — the
// N-independent-MTTKRPs baseline the fused walk is measured against.
index_t csf_separate_multiply_count(const CsfSet& set, index_t rank);

}  // namespace mtk
