// Public sequential MTTKRP API (Definition 2.1):
//
//   B(i_n, r) = sum_i X(i) * prod_{k != n} A^(k)(i_k, r)
//
// `factors` holds all N factor matrices in mode order; factors[mode] is not
// read (it may be empty) — this mirrors how CP-ALS calls MTTKRP with the
// to-be-updated factor excluded.
//
// Four algorithms are provided:
//   kReference — Algorithm 1 of the paper: unblocked loop nest, atomic
//                N-ary multiplies. The correctness oracle.
//   kBlocked   — Algorithm 2: iterates over b x ... x b subtensors; the
//                communication-optimal sequential algorithm.
//   kMatmul    — the conventional baseline: explicit matricization X_(n)
//                times an explicit Khatri-Rao product, via GEMM.
//   kTwoStep   — the Phan et al. [13] baseline: one GEMM contracting the
//                modes above n, then a contraction of the modes below n.
#pragma once

#include <vector>

#include "src/tensor/dense_tensor.hpp"
#include "src/tensor/matrix.hpp"

namespace mtk {

enum class MttkrpAlgo { kReference, kBlocked, kMatmul, kTwoStep };

// Kernel selection for sparse storage (src/mttkrp/dispatch.hpp). kAuto runs
// the kernel native to the storage format: COO tensors use the coordinate
// kernel, CSF tensors the fiber kernel. kCsf on a COO tensor compresses to
// CSF first; kCoo on a CSF tensor expands (both are conversions worth
// benchmarking, not fast paths).
enum class SparseMttkrpAlgo { kAuto, kCoo, kCsf };

// Parallel schedule of the sparse kernels (src/mttkrp/sparse_kernels.hpp).
//   kAuto       — heuristic: owner-computes when the schedule permits it
//                 (root-mode CSF, primary-sorted COO), privatized scratch
//                 when the output is small, tiled otherwise.
//   kPrivatized — every thread accumulates into a private copy of B and the
//                 copies merge under a critical section (the seed schedule;
//                 kept as the calibration/benchmark baseline).
//   kAtomic     — threads update the shared B with per-element atomic adds
//                 (SPLATT's mutex-pool idea at word granularity).
//   kTiled      — static fiber-slab / output-tile partition: threads own
//                 disjoint output rows and write with no synchronization.
enum class SparseKernelVariant { kAuto, kPrivatized, kAtomic, kTiled };

const char* to_string(MttkrpAlgo algo);
const char* to_string(SparseMttkrpAlgo algo);
const char* to_string(SparseKernelVariant variant);

struct MttkrpOptions {
  MttkrpAlgo algo = MttkrpAlgo::kBlocked;
  // Kernel used when the storage is sparse (`algo` applies to dense only).
  SparseMttkrpAlgo sparse_algo = SparseMttkrpAlgo::kAuto;
  // Block size b for kBlocked; 0 derives the largest b with
  // b^N + N*b <= fast_memory_words (Eq. (11)).
  index_t block_size = 0;
  // Fast-memory capacity in words used to derive the block size.
  index_t fast_memory_words = index_t{1} << 20;
  // OpenMP-parallelize: over mode-n blocks (kBlocked), nonzero chunks (COO),
  // or root fibers / output tiles (CSF). Dense blocked workers write
  // disjoint rows of B, so no synchronization is needed; the sparse kernels
  // pick their reduction strategy per `kernel_variant`.
  bool parallel = false;
  // Parallel reduction schedule of the sparse kernels (ignored for dense
  // storage and for serial runs).
  SparseKernelVariant kernel_variant = SparseKernelVariant::kAuto;
};

// Validates shapes and returns the common rank R.
index_t check_mttkrp_args(const shape_t& dims,
                          const std::vector<Matrix>& factors, int mode);
index_t check_mttkrp_args(const DenseTensor& x,
                          const std::vector<Matrix>& factors, int mode);

Matrix mttkrp(const DenseTensor& x, const std::vector<Matrix>& factors,
              int mode, const MttkrpOptions& opts = {});

// Direct entry points (used by tests and benchmarks).
Matrix mttkrp_reference(const DenseTensor& x,
                        const std::vector<Matrix>& factors, int mode);
Matrix mttkrp_blocked(const DenseTensor& x,
                      const std::vector<Matrix>& factors, int mode,
                      index_t block_size, bool parallel = false);
Matrix mttkrp_matmul(const DenseTensor& x,
                     const std::vector<Matrix>& factors, int mode);
Matrix mttkrp_two_step(const DenseTensor& x,
                       const std::vector<Matrix>& factors, int mode);

// Largest block size b >= 1 satisfying the paper's Eq. (11),
// b^N + N*b <= M. Throws if even b = 1 does not fit.
index_t max_block_size(int order, index_t fast_memory_words);

}  // namespace mtk
