#include "src/mttkrp/dispatch.hpp"

#include <algorithm>
#include <cmath>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace mtk {

const char* to_string(StorageFormat format) {
  switch (format) {
    case StorageFormat::kDense: return "dense";
    case StorageFormat::kCoo: return "coo";
    case StorageFormat::kCsf: return "csf";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// StoredTensor

namespace {

// Keeps the pointed-to object alive for owning handles; views pass a no-op
// deleter instead.
template <class T>
std::shared_ptr<const T> own(T x) {
  return std::make_shared<const T>(std::move(x));
}

template <class T>
std::shared_ptr<const T> borrow(const T& x) {
  return std::shared_ptr<const T>(&x, [](const T*) {});
}

}  // namespace

StoredTensor StoredTensor::dense(DenseTensor x) {
  auto p = own(std::move(x));
  StoredTensor t;
  t.format_ = StorageFormat::kDense;
  t.dense_ = p.get();
  t.storage_ = std::move(p);
  return t;
}

StoredTensor StoredTensor::coo(SparseTensor x) {
  MTK_CHECK(x.sorted(), "StoredTensor::coo requires sort_and_dedup() first");
  auto p = own(std::move(x));
  StoredTensor t;
  t.format_ = StorageFormat::kCoo;
  t.coo_ = p.get();
  t.storage_ = std::move(p);
  return t;
}

StoredTensor StoredTensor::csf(CsfTensor x) {
  auto p = own(std::move(x));
  StoredTensor t;
  t.format_ = StorageFormat::kCsf;
  t.csf_ = p.get();
  t.storage_ = std::move(p);
  return t;
}

StoredTensor StoredTensor::dense_view(const DenseTensor& x) {
  StoredTensor t;
  t.format_ = StorageFormat::kDense;
  t.dense_ = &x;
  t.storage_ = borrow(x);
  return t;
}

StoredTensor StoredTensor::coo_view(const SparseTensor& x) {
  MTK_CHECK(x.sorted(),
            "StoredTensor::coo_view requires sort_and_dedup() first");
  StoredTensor t;
  t.format_ = StorageFormat::kCoo;
  t.coo_ = &x;
  t.storage_ = borrow(x);
  return t;
}

StoredTensor StoredTensor::csf_view(const CsfTensor& x) {
  StoredTensor t;
  t.format_ = StorageFormat::kCsf;
  t.csf_ = &x;
  t.storage_ = borrow(x);
  return t;
}

StorageFormat StoredTensor::format() const {
  MTK_CHECK(!empty(), "StoredTensor is empty");
  return format_;
}

int StoredTensor::order() const {
  return static_cast<int>(dims().size());
}

const shape_t& StoredTensor::dims() const {
  MTK_CHECK(!empty(), "StoredTensor is empty");
  switch (format_) {
    case StorageFormat::kDense: return dense_->dims();
    case StorageFormat::kCoo: return coo_->dims();
    case StorageFormat::kCsf: return csf_->dims();
  }
  MTK_ASSERT(false, "unreachable: unknown storage format");
  return dense_->dims();
}

index_t StoredTensor::dim(int k) const {
  MTK_CHECK(k >= 0 && k < order(), "dimension index ", k,
            " out of range for order-", order(), " tensor");
  return dims()[static_cast<std::size_t>(k)];
}

index_t StoredTensor::stored_values() const {
  MTK_CHECK(!empty(), "StoredTensor is empty");
  switch (format_) {
    case StorageFormat::kDense: return dense_->size();
    case StorageFormat::kCoo: return coo_->nnz();
    case StorageFormat::kCsf: return csf_->nnz();
  }
  MTK_ASSERT(false, "unreachable: unknown storage format");
  return 0;
}

double StoredTensor::frobenius_norm() const {
  MTK_CHECK(!empty(), "StoredTensor is empty");
  switch (format_) {
    case StorageFormat::kDense: return dense_->frobenius_norm();
    case StorageFormat::kCoo: return coo_->frobenius_norm();
    case StorageFormat::kCsf: {
      double acc = 0.0;
      for (double v : csf_->values()) acc += v * v;
      return std::sqrt(acc);
    }
  }
  MTK_ASSERT(false, "unreachable: unknown storage format");
  return 0.0;
}

const DenseTensor& StoredTensor::as_dense() const {
  MTK_CHECK(!empty() && format_ == StorageFormat::kDense,
            "StoredTensor does not hold dense storage");
  return *dense_;
}

const SparseTensor& StoredTensor::as_coo() const {
  MTK_CHECK(!empty() && format_ == StorageFormat::kCoo,
            "StoredTensor does not hold COO storage");
  return *coo_;
}

const CsfTensor& StoredTensor::as_csf() const {
  MTK_CHECK(!empty() && format_ == StorageFormat::kCsf,
            "StoredTensor does not hold CSF storage");
  return *csf_;
}

SparseTensor to_coo(const StoredTensor& x, double dense_threshold) {
  switch (x.format()) {
    case StorageFormat::kDense:
      return SparseTensor::from_dense(x.as_dense(), dense_threshold);
    case StorageFormat::kCoo:
      return x.as_coo();
    case StorageFormat::kCsf:
      return x.as_csf().to_coo();
  }
  MTK_ASSERT(false, "unreachable: unknown storage format");
  return SparseTensor{};
}

// ---------------------------------------------------------------------------
// COO kernel

namespace {

// Accumulates the contribution of nonzeros [begin, end) into `b`.
void coo_range_kernel(const SparseTensor& x,
                      const std::vector<Matrix>& factors, int mode,
                      index_t begin, index_t end, Matrix& b,
                      std::vector<double>& prod) {
  const int n = x.order();
  const index_t rank = b.cols();
  const std::vector<index_t>& out_ind = x.mode_indices(mode);
  // Hoist the per-mode index arrays and factor matrices out of the nonzero
  // loop so the innermost path is free of accessor checks.
  std::vector<const index_t*> ind;
  std::vector<const Matrix*> fac;
  for (int k = 0; k < n; ++k) {
    if (k == mode) continue;
    ind.push_back(x.mode_indices(k).data());
    fac.push_back(&factors[static_cast<std::size_t>(k)]);
  }
  for (index_t p = begin; p < end; ++p) {
    const double xv = x.value(p);
    for (index_t r = 0; r < rank; ++r) prod[static_cast<std::size_t>(r)] = xv;
    for (std::size_t k = 0; k < ind.size(); ++k) {
      const double* arow = fac[k]->row(ind[k][p]);
      for (index_t r = 0; r < rank; ++r) {
        prod[static_cast<std::size_t>(r)] *= arow[r];
      }
    }
    double* brow = b.row(out_ind[static_cast<std::size_t>(p)]);
    for (index_t r = 0; r < rank; ++r) {
      brow[r] += prod[static_cast<std::size_t>(r)];
    }
  }
}

void add_into(Matrix& dst, const Matrix& src) {
  double* d = dst.data();
  const double* s = src.data();
  const index_t count = dst.size();
  for (index_t i = 0; i < count; ++i) d[i] += s[i];
}

}  // namespace

Matrix mttkrp_coo(const SparseTensor& x, const std::vector<Matrix>& factors,
                  int mode, bool parallel) {
  const index_t rank = check_mttkrp_args(x.dims(), factors, mode);
  MTK_CHECK(x.sorted(), "mttkrp_coo requires sort_and_dedup() first");
  Matrix b(x.dim(mode), rank);
  const index_t count = x.nnz();
  if (!parallel) {
    std::vector<double> prod(static_cast<std::size_t>(rank));
    coo_range_kernel(x, factors, mode, 0, count, b, prod);
    return b;
  }
  // Nonzeros sharing an output row can land in different chunks, so each
  // thread accumulates its contiguous chunk into scratch rows (a private
  // copy of B) and reduces.
#pragma omp parallel
  {
#ifdef _OPENMP
    const index_t nth = omp_get_num_threads();
    const index_t tid = omp_get_thread_num();
#else
    const index_t nth = 1, tid = 0;
#endif
    const index_t chunk = ceil_div(count, nth);
    const index_t begin = std::min(count, tid * chunk);
    const index_t end = std::min(count, begin + chunk);
    if (begin < end) {
      Matrix scratch(b.rows(), rank);
      std::vector<double> prod(static_cast<std::size_t>(rank));
      coo_range_kernel(x, factors, mode, begin, end, scratch, prod);
#pragma omp critical(mtk_mttkrp_coo_reduce)
      add_into(b, scratch);
    }
  }
  return b;
}

// ---------------------------------------------------------------------------
// CSF kernel

namespace {

// Adds to `out` the subtree sum of (level, node):
//   out[r] += A_{order[level]}(fid, r) * (value at leaf | sum over children),
// i.e. the product of all factor rows strictly below the target level,
// weighted by the nonzero values. Only called for levels below the target.
void csf_bottom_sum(const CsfTensor& x, const std::vector<Matrix>& factors,
                    int level, index_t node,
                    std::vector<std::vector<double>>& scratch, double* out) {
  const int n = x.order();
  const int k = x.mode_order()[static_cast<std::size_t>(level)];
  const double* arow = factors[static_cast<std::size_t>(k)].row(
      x.fids(level)[static_cast<std::size_t>(node)]);
  const index_t rank = static_cast<index_t>(
      scratch[static_cast<std::size_t>(level)].size());
  if (level == n - 1) {
    const double v = x.values()[static_cast<std::size_t>(node)];
    for (index_t r = 0; r < rank; ++r) out[r] += v * arow[r];
    return;
  }
  std::vector<double>& acc = scratch[static_cast<std::size_t>(level)];
  std::fill(acc.begin(), acc.end(), 0.0);
  const index_t begin = x.fptr(level)[static_cast<std::size_t>(node)];
  const index_t end = x.fptr(level)[static_cast<std::size_t>(node) + 1];
  for (index_t c = begin; c < end; ++c) {
    csf_bottom_sum(x, factors, level + 1, c, scratch, acc.data());
  }
  for (index_t r = 0; r < rank; ++r) {
    out[r] += arow[r] * acc[static_cast<std::size_t>(r)];
  }
}

// Walks the tree from (level, node) with `top` holding the elementwise
// product of ancestor factor rows; at the target level it combines top and
// the subtree ("bottom") sum into the output row for that fiber's index.
void csf_walk(const CsfTensor& x, const std::vector<Matrix>& factors,
              int target_level, int level, index_t node, const double* top,
              std::vector<std::vector<double>>& top_scratch,
              std::vector<std::vector<double>>& bot_scratch, Matrix& b) {
  const int n = x.order();
  const index_t rank = b.cols();
  const index_t fid = x.fids(level)[static_cast<std::size_t>(node)];
  if (level == target_level) {
    double* brow = b.row(fid);
    if (level == n - 1) {
      const double v = x.values()[static_cast<std::size_t>(node)];
      for (index_t r = 0; r < rank; ++r) brow[r] += v * top[r];
      return;
    }
    std::vector<double>& bot = bot_scratch[static_cast<std::size_t>(level)];
    std::fill(bot.begin(), bot.end(), 0.0);
    const index_t begin = x.fptr(level)[static_cast<std::size_t>(node)];
    const index_t end = x.fptr(level)[static_cast<std::size_t>(node) + 1];
    for (index_t c = begin; c < end; ++c) {
      csf_bottom_sum(x, factors, level + 1, c, bot_scratch, bot.data());
    }
    for (index_t r = 0; r < rank; ++r) {
      brow[r] += top[r] * bot[static_cast<std::size_t>(r)];
    }
    return;
  }
  const int k = x.mode_order()[static_cast<std::size_t>(level)];
  const double* arow = factors[static_cast<std::size_t>(k)].row(fid);
  std::vector<double>& next = top_scratch[static_cast<std::size_t>(level)];
  for (index_t r = 0; r < rank; ++r) {
    next[static_cast<std::size_t>(r)] = top[r] * arow[r];
  }
  const index_t begin = x.fptr(level)[static_cast<std::size_t>(node)];
  const index_t end = x.fptr(level)[static_cast<std::size_t>(node) + 1];
  for (index_t c = begin; c < end; ++c) {
    csf_walk(x, factors, target_level, level + 1, c, next.data(), top_scratch,
             bot_scratch, b);
  }
}

void csf_roots_kernel(const CsfTensor& x, const std::vector<Matrix>& factors,
                      int target_level, index_t root_begin, index_t root_end,
                      Matrix& b) {
  const std::size_t n = static_cast<std::size_t>(x.order());
  const index_t rank = b.cols();
  std::vector<std::vector<double>> top_scratch(
      n, std::vector<double>(static_cast<std::size_t>(rank)));
  std::vector<std::vector<double>> bot_scratch(
      n, std::vector<double>(static_cast<std::size_t>(rank)));
  const std::vector<double> ones(static_cast<std::size_t>(rank), 1.0);
  for (index_t f = root_begin; f < root_end; ++f) {
    csf_walk(x, factors, target_level, 0, f, ones.data(), top_scratch,
             bot_scratch, b);
  }
}

}  // namespace

namespace {

// Leaf index where each root fiber's subtree begins (plus an nnz sentinel),
// by chasing first-child pointers; used to split roots into chunks of
// near-equal nonzero count.
std::vector<index_t> csf_root_leaf_offsets(const CsfTensor& x) {
  const int n = x.order();
  const index_t roots = x.node_count(0);
  std::vector<index_t> offsets(static_cast<std::size_t>(roots) + 1);
  for (index_t f = 0; f < roots; ++f) {
    index_t c = f;
    for (int l = 0; l + 1 < n; ++l) {
      c = x.fptr(l)[static_cast<std::size_t>(c)];
    }
    offsets[static_cast<std::size_t>(f)] = c;
  }
  offsets.back() = x.nnz();
  return offsets;
}

}  // namespace

Matrix mttkrp_csf(const CsfTensor& x, const std::vector<Matrix>& factors,
                  int mode, bool parallel) {
  const index_t rank = check_mttkrp_args(x.dims(), factors, mode);
  const int target_level = x.level_of_mode(mode);
  Matrix b(x.dim(mode), rank);
  const index_t roots = x.node_count(0);
  if (!parallel) {
    csf_roots_kernel(x, factors, target_level, 0, roots, b);
    return b;
  }
  // Root fibers have wildly uneven subtree sizes, so chunk boundaries are
  // placed by nonzero count, not fiber count.
  const std::vector<index_t> leaf_offsets = csf_root_leaf_offsets(x);
  const index_t count = x.nnz();
#pragma omp parallel
  {
#ifdef _OPENMP
    const index_t nth = omp_get_num_threads();
    const index_t tid = omp_get_thread_num();
#else
    const index_t nth = 1, tid = 0;
#endif
    const index_t chunk = ceil_div(std::max<index_t>(count, 1), nth);
    // First root whose subtree starts at or after tid * chunk nonzeros.
    const auto lo = std::lower_bound(leaf_offsets.begin(),
                                     leaf_offsets.end() - 1, tid * chunk);
    const auto hi = std::lower_bound(lo, leaf_offsets.end() - 1,
                                     (tid + 1) * chunk);
    const index_t root_begin =
        static_cast<index_t>(lo - leaf_offsets.begin());
    const index_t root_end = static_cast<index_t>(hi - leaf_offsets.begin());
    if (root_begin < root_end) {
      if (target_level == 0) {
        // Root-mode fast path: each root fiber owns exactly one output row,
        // so workers write disjoint rows with no synchronization.
        csf_roots_kernel(x, factors, target_level, root_begin, root_end, b);
      } else {
        // Non-root output mode: distinct root subtrees can hit the same
        // output row, so accumulate into per-thread scratch rows and reduce
        // (SPLATT's privatized-output strategy).
        Matrix scratch(b.rows(), rank);
        csf_roots_kernel(x, factors, target_level, root_begin, root_end,
                         scratch);
#pragma omp critical(mtk_mttkrp_csf_reduce)
        add_into(b, scratch);
      }
    }
  }
  return b;
}

// ---------------------------------------------------------------------------
// Dispatch

Matrix mttkrp(const SparseTensor& x, const std::vector<Matrix>& factors,
              int mode, const MttkrpOptions& opts) {
  switch (opts.sparse_algo) {
    case SparseMttkrpAlgo::kAuto:
    case SparseMttkrpAlgo::kCoo:
      return mttkrp_coo(x, factors, mode, opts.parallel);
    case SparseMttkrpAlgo::kCsf:
      return mttkrp_csf(CsfTensor::from_coo(x, mode), factors, mode,
                        opts.parallel);
  }
  MTK_ASSERT(false, "unreachable: unknown sparse MTTKRP algorithm");
  return Matrix{};
}

Matrix mttkrp(const CsfTensor& x, const std::vector<Matrix>& factors,
              int mode, const MttkrpOptions& opts) {
  switch (opts.sparse_algo) {
    case SparseMttkrpAlgo::kAuto:
    case SparseMttkrpAlgo::kCsf:
      return mttkrp_csf(x, factors, mode, opts.parallel);
    case SparseMttkrpAlgo::kCoo:
      return mttkrp_coo(x.to_coo(), factors, mode, opts.parallel);
  }
  MTK_ASSERT(false, "unreachable: unknown sparse MTTKRP algorithm");
  return Matrix{};
}

Matrix mttkrp(const StoredTensor& x, const std::vector<Matrix>& factors,
              int mode, const MttkrpOptions& opts) {
  switch (x.format()) {
    case StorageFormat::kDense:
      return mttkrp(x.as_dense(), factors, mode, opts);
    case StorageFormat::kCoo:
      return mttkrp(x.as_coo(), factors, mode, opts);
    case StorageFormat::kCsf:
      return mttkrp(x.as_csf(), factors, mode, opts);
  }
  MTK_ASSERT(false, "unreachable: unknown storage format");
  return Matrix{};
}

AllModesResult mttkrp_all_modes(const StoredTensor& x,
                                const std::vector<Matrix>& factors,
                                const MttkrpOptions& opts) {
  if (x.format() == StorageFormat::kDense) {
    return mttkrp_all_modes_tree(x.as_dense(), factors);
  }
  AllModesResult result;
  const int n = x.order();
  result.outputs.reserve(static_cast<std::size_t>(n));
  index_t rank = 0;
  for (int mode = 0; mode < n; ++mode) {
    result.outputs.push_back(mttkrp(x, factors, mode, opts));
    rank = result.outputs.back().cols();
  }
  // One fused multiply chain of length N-1 per stored value, per mode.
  result.multiplies = checked_mul(
      checked_mul(x.stored_values(), static_cast<index_t>(n) * (n - 1)),
      rank);
  return result;
}

}  // namespace mtk
