#include "src/mttkrp/dispatch.hpp"

#include <cmath>
#include <mutex>

namespace mtk {

const char* to_string(StorageFormat format) {
  switch (format) {
    case StorageFormat::kDense: return "dense";
    case StorageFormat::kCoo: return "coo";
    case StorageFormat::kCsf: return "csf";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// CsfAccel: the handle-shared CSF cache. Trees are built on first use under
// a mutex and then served lock-free-ish (double-checked via shared_ptr
// loads under the same mutex — building dominates, lookups are rare enough
// that a plain mutex is fine).

class CsfAccel {
 public:
  const CsfSet& forest(const StoredTensor& x) {
    std::lock_guard<std::mutex> lock(mu_);
    if (forest_ == nullptr) {
      SparseTensor scratch;
      forest_ = std::make_shared<const CsfSet>(
          CsfSet::build(coo_of(x, scratch), CsfSetPolicy::kOnePerMode));
    }
    return *forest_;
  }

  const CsfTensor& fused_tree(const StoredTensor& x) {
    // CSF storage already holds a usable single tree; no copy.
    if (x.format() == StorageFormat::kCsf) return x.as_csf();
    std::lock_guard<std::mutex> lock(mu_);
    if (fused_ == nullptr) {
      SparseTensor scratch;
      fused_ = std::make_shared<const CsfSet>(
          CsfSet::build(coo_of(x, scratch), CsfSetPolicy::kSingle));
    }
    return fused_->tree(0);
  }

 private:
  static const SparseTensor& coo_of(const StoredTensor& x,
                                    SparseTensor& scratch) {
    if (x.format() == StorageFormat::kCoo) return x.as_coo();
    scratch = x.as_csf().to_coo();
    return scratch;
  }

  std::mutex mu_;
  std::shared_ptr<const CsfSet> forest_;
  std::shared_ptr<const CsfSet> fused_;
};

// ---------------------------------------------------------------------------
// StoredTensor

namespace {

// Keeps the pointed-to object alive for owning handles; views pass a no-op
// deleter instead.
template <class T>
std::shared_ptr<const T> own(T x) {
  return std::make_shared<const T>(std::move(x));
}

template <class T>
std::shared_ptr<const T> borrow(const T& x) {
  return std::shared_ptr<const T>(&x, [](const T*) {});
}

}  // namespace

StoredTensor StoredTensor::dense(DenseTensor x) {
  auto p = own(std::move(x));
  StoredTensor t;
  t.format_ = StorageFormat::kDense;
  t.dense_ = p.get();
  t.storage_ = std::move(p);
  return t;
}

StoredTensor StoredTensor::coo(SparseTensor x) {
  MTK_CHECK(x.sorted(), "StoredTensor::coo requires sort_and_dedup() first");
  auto p = own(std::move(x));
  StoredTensor t;
  t.format_ = StorageFormat::kCoo;
  t.coo_ = p.get();
  t.storage_ = std::move(p);
  t.accel_ = std::make_shared<CsfAccel>();
  return t;
}

StoredTensor StoredTensor::csf(CsfTensor x) {
  auto p = own(std::move(x));
  StoredTensor t;
  t.format_ = StorageFormat::kCsf;
  t.csf_ = p.get();
  t.storage_ = std::move(p);
  t.accel_ = std::make_shared<CsfAccel>();
  return t;
}

StoredTensor StoredTensor::dense_view(const DenseTensor& x) {
  StoredTensor t;
  t.format_ = StorageFormat::kDense;
  t.dense_ = &x;
  t.storage_ = borrow(x);
  return t;
}

StoredTensor StoredTensor::coo_view(const SparseTensor& x) {
  MTK_CHECK(x.sorted(),
            "StoredTensor::coo_view requires sort_and_dedup() first");
  StoredTensor t;
  t.format_ = StorageFormat::kCoo;
  t.coo_ = &x;
  t.storage_ = borrow(x);
  t.accel_ = std::make_shared<CsfAccel>();
  return t;
}

StoredTensor StoredTensor::csf_view(const CsfTensor& x) {
  StoredTensor t;
  t.format_ = StorageFormat::kCsf;
  t.csf_ = &x;
  t.storage_ = borrow(x);
  t.accel_ = std::make_shared<CsfAccel>();
  return t;
}

StorageFormat StoredTensor::format() const {
  MTK_CHECK(!empty(), "StoredTensor is empty");
  return format_;
}

int StoredTensor::order() const {
  return static_cast<int>(dims().size());
}

const shape_t& StoredTensor::dims() const {
  MTK_CHECK(!empty(), "StoredTensor is empty");
  switch (format_) {
    case StorageFormat::kDense: return dense_->dims();
    case StorageFormat::kCoo: return coo_->dims();
    case StorageFormat::kCsf: return csf_->dims();
  }
  MTK_ASSERT(false, "unreachable: unknown storage format");
  return dense_->dims();
}

index_t StoredTensor::dim(int k) const {
  MTK_CHECK(k >= 0 && k < order(), "dimension index ", k,
            " out of range for order-", order(), " tensor");
  return dims()[static_cast<std::size_t>(k)];
}

index_t StoredTensor::stored_values() const {
  MTK_CHECK(!empty(), "StoredTensor is empty");
  switch (format_) {
    case StorageFormat::kDense: return dense_->size();
    case StorageFormat::kCoo: return coo_->nnz();
    case StorageFormat::kCsf: return csf_->nnz();
  }
  MTK_ASSERT(false, "unreachable: unknown storage format");
  return 0;
}

double StoredTensor::frobenius_norm() const {
  MTK_CHECK(!empty(), "StoredTensor is empty");
  switch (format_) {
    case StorageFormat::kDense: return dense_->frobenius_norm();
    case StorageFormat::kCoo: return coo_->frobenius_norm();
    case StorageFormat::kCsf: {
      double acc = 0.0;
      for (double v : csf_->values()) acc += v * v;
      return std::sqrt(acc);
    }
  }
  MTK_ASSERT(false, "unreachable: unknown storage format");
  return 0.0;
}

const DenseTensor& StoredTensor::as_dense() const {
  MTK_CHECK(!empty() && format_ == StorageFormat::kDense,
            "StoredTensor does not hold dense storage");
  return *dense_;
}

const SparseTensor& StoredTensor::as_coo() const {
  MTK_CHECK(!empty() && format_ == StorageFormat::kCoo,
            "StoredTensor does not hold COO storage");
  return *coo_;
}

const CsfTensor& StoredTensor::as_csf() const {
  MTK_CHECK(!empty() && format_ == StorageFormat::kCsf,
            "StoredTensor does not hold CSF storage");
  return *csf_;
}

const CsfSet& StoredTensor::csf_forest() const {
  MTK_CHECK(!empty() && format_ != StorageFormat::kDense && accel_ != nullptr,
            "csf_forest requires sparse storage");
  return accel_->forest(*this);
}

const CsfTensor& StoredTensor::csf_fused_tree() const {
  MTK_CHECK(!empty() && format_ != StorageFormat::kDense && accel_ != nullptr,
            "csf_fused_tree requires sparse storage");
  return accel_->fused_tree(*this);
}

SparseTensor to_coo(const StoredTensor& x, double dense_threshold) {
  switch (x.format()) {
    case StorageFormat::kDense:
      return SparseTensor::from_dense(x.as_dense(), dense_threshold);
    case StorageFormat::kCoo:
      return x.as_coo();
    case StorageFormat::kCsf:
      return x.as_csf().to_coo();
  }
  MTK_ASSERT(false, "unreachable: unknown storage format");
  return SparseTensor{};
}

// ---------------------------------------------------------------------------
// Dispatch

Matrix mttkrp(const SparseTensor& x, const std::vector<Matrix>& factors,
              int mode, const MttkrpOptions& opts) {
  switch (opts.sparse_algo) {
    case SparseMttkrpAlgo::kAuto:
    case SparseMttkrpAlgo::kCoo:
      return mttkrp_coo(x, factors, mode, opts.parallel, opts.kernel_variant);
    case SparseMttkrpAlgo::kCsf:
      // One-shot conversion; handle-level callers go through StoredTensor,
      // whose cached forest avoids this per-call compression.
      return mttkrp_csf(CsfTensor::from_coo(x, mode), factors, mode,
                        opts.parallel, opts.kernel_variant);
  }
  MTK_ASSERT(false, "unreachable: unknown sparse MTTKRP algorithm");
  return Matrix{};
}

Matrix mttkrp(const CsfTensor& x, const std::vector<Matrix>& factors,
              int mode, const MttkrpOptions& opts) {
  switch (opts.sparse_algo) {
    case SparseMttkrpAlgo::kAuto:
    case SparseMttkrpAlgo::kCsf:
      return mttkrp_csf(x, factors, mode, opts.parallel, opts.kernel_variant);
    case SparseMttkrpAlgo::kCoo:
      return mttkrp_coo(x.to_coo(), factors, mode, opts.parallel,
                        opts.kernel_variant);
  }
  MTK_ASSERT(false, "unreachable: unknown sparse MTTKRP algorithm");
  return Matrix{};
}

Matrix mttkrp(const StoredTensor& x, const std::vector<Matrix>& factors,
              int mode, const MttkrpOptions& opts) {
  switch (x.format()) {
    case StorageFormat::kDense:
      return mttkrp(x.as_dense(), factors, mode, opts);
    case StorageFormat::kCoo:
      if (opts.sparse_algo == SparseMttkrpAlgo::kCsf) {
        // Cached per-mode forest: the tree rooted at `mode` is compressed
        // once per handle family, not once per call.
        return mttkrp_csf(x.csf_forest().tree_for(mode), factors, mode,
                          opts.parallel, opts.kernel_variant);
      }
      return mttkrp(x.as_coo(), factors, mode, opts);
    case StorageFormat::kCsf:
      return mttkrp(x.as_csf(), factors, mode, opts);
  }
  MTK_ASSERT(false, "unreachable: unknown storage format");
  return Matrix{};
}

AllModesResult mttkrp_all_modes(const StoredTensor& x,
                                const std::vector<Matrix>& factors,
                                const MttkrpOptions& opts) {
  if (x.format() == StorageFormat::kDense) {
    return mttkrp_all_modes_tree(x.as_dense(), factors);
  }
  if (opts.sparse_algo == SparseMttkrpAlgo::kCoo) {
    // Explicit COO request: the per-mode coordinate loop (the seed
    // behavior), with the seed's fused-chain multiply accounting.
    AllModesResult result;
    const int n = x.order();
    result.outputs.reserve(static_cast<std::size_t>(n));
    index_t rank = 0;
    for (int mode = 0; mode < n; ++mode) {
      result.outputs.push_back(mttkrp(x, factors, mode, opts));
      rank = result.outputs.back().cols();
    }
    // One fused multiply chain of length N-1 per stored value, per mode.
    result.multiplies = checked_mul(
        checked_mul(x.stored_values(), static_cast<index_t>(n) * (n - 1)),
        rank);
    return result;
  }
  // Fused multi-tree walk on the handle's cached tree: one traversal serves
  // every mode with memoized subtree partials; repeated calls (CP-gradient
  // evaluations) reuse the tree with zero rebuilds.
  return mttkrp_all_modes_fused(x.csf_fused_tree(), factors, opts.parallel);
}

}  // namespace mtk
