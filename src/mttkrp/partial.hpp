// Partial MTTKRP contractions: the building block for multi-mode MTTKRP
// with reuse (Phan et al. [13]; the paper's Section VII notes that
// optimizing across the N per-mode MTTKRPs of a CP-ALS sweep "can save both
// communication and computation").
//
// A *partial* over an ordered mode subset S (ascending) is a matrix whose
// rows are indexed by the column-major linearization of (i_k)_{k in S} and
// whose R columns are rank-matched:
//   P_S(j, r) = sum over the contracted-away indices of
//               X(i) * prod_{k contracted} A^(k)(i_k, r).
// The full tensor is the trivial partial over all modes replicated across r
// (stored implicitly); the mode-n MTTKRP output is the partial over {n}.
#pragma once

#include <vector>

#include "src/tensor/dense_tensor.hpp"
#include "src/tensor/matrix.hpp"

namespace mtk {

// A rank-matched partial contraction over the mode subset `modes`
// (ascending order), with row extents `dims` (dims[t] = I_{modes[t]}).
struct Partial {
  std::vector<int> modes;
  shape_t dims;
  Matrix values;  // (prod dims) x R

  index_t row_count() const { return shape_size(dims); }
};

// Builds the initial partial from the tensor by contracting away the modes
// NOT in `keep` (ascending), multiplying by those modes' factor rows.
// keep must be a non-empty, strictly ascending subset of [0, N).
Partial contract_tensor(const DenseTensor& x,
                        const std::vector<Matrix>& factors,
                        const std::vector<int>& keep, index_t rank);

// Contracts an existing partial down to the sub-subset `keep` of its modes
// (again ascending), multiplying in the factors of the modes dropped.
Partial contract_partial(const Partial& parent,
                         const std::vector<Matrix>& factors,
                         const std::vector<int>& keep);

// Interprets a single-mode partial as the MTTKRP output B^(n).
Matrix partial_to_mttkrp(const Partial& leaf);

}  // namespace mtk
