#include "src/mttkrp/thread_arena.hpp"

namespace mtk {

void ThreadArena::prepare(int threads, std::size_t words) {
  MTK_CHECK(threads >= 1, "arena needs at least one thread, got ", threads);
  if (static_cast<int>(slots_.size()) < threads) {
    slots_.resize(static_cast<std::size_t>(threads));
  }
  // Every slot is kept at the high-water mark so a later call with fewer
  // threads or words is a no-op.
  for (auto& slot : slots_) {
    if (slot.size() < words) slot.resize(words);
  }
}

index_t* ThreadArena::index_scratch(std::size_t count) {
  if (indices_.size() < count) indices_.resize(count);
  return indices_.data();
}

std::size_t ThreadArena::footprint_words() const {
  std::size_t total = indices_.size();
  for (const auto& slot : slots_) total += slot.size();
  return total;
}

ThreadArena& mttkrp_arena() {
  thread_local ThreadArena arena;
  return arena;
}

}  // namespace mtk
