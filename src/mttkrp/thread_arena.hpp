// Reusable per-thread scratch storage for the sparse MTTKRP kernels.
//
// The seed kernels allocated a full `rows x rank` scratch Matrix (plus a
// rank-sized product buffer) inside every OpenMP parallel region — once per
// thread per call, in the hot path of every CP-ALS sweep. A ThreadArena
// hoists those buffers out of the loop: it is prepared (sized) once before a
// parallel region and handed out as raw slots inside it, growing
// monotonically and never shrinking, so steady-state kernel calls perform
// zero allocations.
//
// Lifetime rules (also documented in README "Sparse kernels"):
//   * `mttkrp_arena()` returns a thread_local arena — each top-level calling
//     thread owns one, so concurrent top-level MTTKRP calls (e.g. the
//     simulator's per-rank loop) never share buffers.
//   * `prepare(threads, words)` must be called OUTSIDE the parallel region
//     it serves; `slot(tid)` is then safe to call concurrently because it
//     only reads the prepared pointers.
//   * Slots are not zeroed by prepare; kernels that need cleared scratch
//     clear exactly the prefix they use (in parallel, on their own slot).
//   * `index_scratch(count)` is a single shared (not per-thread) index
//     buffer for tiling structures (permutations, histograms); it follows
//     the same prepare-outside / read-inside discipline.
#pragma once

#include <cstddef>
#include <vector>

#include "src/support/index.hpp"

namespace mtk {

class ThreadArena {
 public:
  // Ensures at least `threads` slots of at least `words` doubles each.
  // Existing slots keep their capacity (high-water mark); must not be
  // called while any slot is in use.
  void prepare(int threads, std::size_t words);

  // Slot for thread `tid` (0 <= tid < prepared thread count).
  double* slot(int tid) {
    MTK_ASSERT(tid >= 0 && tid < static_cast<int>(slots_.size()),
               "arena slot ", tid, " outside prepared range ", slots_.size());
    return slots_[static_cast<std::size_t>(tid)].data();
  }

  // Shared index buffer of at least `count` entries; same discipline as
  // prepare (size before the parallel region, use inside).
  index_t* index_scratch(std::size_t count);

  int prepared_threads() const { return static_cast<int>(slots_.size()); }
  std::size_t slot_words() const {
    return slots_.empty() ? 0 : slots_.front().size();
  }
  // Total doubles + index words currently held (for tests / telemetry).
  std::size_t footprint_words() const;

 private:
  std::vector<std::vector<double>> slots_;
  std::vector<index_t> indices_;
};

// The calling thread's arena (thread_local): reused across every sparse
// MTTKRP call this thread issues, for the life of the thread.
ThreadArena& mttkrp_arena();

}  // namespace mtk
