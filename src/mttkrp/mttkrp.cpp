#include "src/mttkrp/mttkrp.hpp"

#include <algorithm>

#include "src/support/index.hpp"
#include "src/tensor/block.hpp"
#include "src/tensor/khatri_rao.hpp"
#include "src/tensor/matricize.hpp"

namespace mtk {

const char* to_string(MttkrpAlgo algo) {
  switch (algo) {
    case MttkrpAlgo::kReference: return "reference";
    case MttkrpAlgo::kBlocked: return "blocked";
    case MttkrpAlgo::kMatmul: return "matmul";
    case MttkrpAlgo::kTwoStep: return "two_step";
  }
  return "unknown";
}

const char* to_string(SparseMttkrpAlgo algo) {
  switch (algo) {
    case SparseMttkrpAlgo::kAuto: return "auto";
    case SparseMttkrpAlgo::kCoo: return "coo";
    case SparseMttkrpAlgo::kCsf: return "csf";
  }
  return "unknown";
}

const char* to_string(SparseKernelVariant variant) {
  switch (variant) {
    case SparseKernelVariant::kAuto: return "auto";
    case SparseKernelVariant::kPrivatized: return "privatized";
    case SparseKernelVariant::kAtomic: return "atomic";
    case SparseKernelVariant::kTiled: return "tiled";
  }
  return "unknown";
}

index_t check_mttkrp_args(const shape_t& dims,
                          const std::vector<Matrix>& factors, int mode) {
  const int n = static_cast<int>(dims.size());
  MTK_CHECK(n >= 2, "MTTKRP requires an order >= 2 tensor, got order ", n);
  MTK_CHECK(mode >= 0 && mode < n, "mode ", mode,
            " out of range for order-", n, " tensor");
  MTK_CHECK(static_cast<int>(factors.size()) == n, "expected ", n,
            " factor matrices (mode ", mode, " may be empty), got ",
            factors.size());
  index_t rank = -1;
  for (int k = 0; k < n; ++k) {
    if (k == mode) continue;
    const Matrix& a = factors[static_cast<std::size_t>(k)];
    MTK_CHECK(a.rows() == dims[static_cast<std::size_t>(k)], "factor ", k,
              " has ", a.rows(), " rows, expected ",
              dims[static_cast<std::size_t>(k)]);
    if (rank < 0) {
      rank = a.cols();
      MTK_CHECK(rank >= 1, "factor matrices must have at least one column");
    } else {
      MTK_CHECK(a.cols() == rank, "factor ", k, " has ", a.cols(),
                " columns, expected rank ", rank);
    }
  }
  return rank;
}

index_t check_mttkrp_args(const DenseTensor& x,
                          const std::vector<Matrix>& factors, int mode) {
  return check_mttkrp_args(x.dims(), factors, mode);
}

index_t max_block_size(int order, index_t fast_memory_words) {
  MTK_CHECK(order >= 2, "max_block_size: order must be >= 2, got ", order);
  MTK_CHECK(fast_memory_words >= 1 + order,
            "fast memory of ", fast_memory_words,
            " words cannot hold even a 1-element block for order ", order,
            " (needs b^N + N*b <= M with b = 1, i.e. M >= ", 1 + order, ")");
  // b <= M^(1/N) always, so start from the integer N-th root and walk down.
  index_t b = std::max<index_t>(nth_root_floor(fast_memory_words, order), 1);
  while (b > 1 && ipow(b, order) + order * b > fast_memory_words) --b;
  return b;
}

Matrix mttkrp(const DenseTensor& x, const std::vector<Matrix>& factors,
              int mode, const MttkrpOptions& opts) {
  switch (opts.algo) {
    case MttkrpAlgo::kReference:
      return mttkrp_reference(x, factors, mode);
    case MttkrpAlgo::kBlocked: {
      index_t b = opts.block_size;
      if (b == 0) b = max_block_size(x.order(), opts.fast_memory_words);
      return mttkrp_blocked(x, factors, mode, b, opts.parallel);
    }
    case MttkrpAlgo::kMatmul:
      return mttkrp_matmul(x, factors, mode);
    case MttkrpAlgo::kTwoStep:
      return mttkrp_two_step(x, factors, mode);
  }
  MTK_ASSERT(false, "unreachable: unknown MTTKRP algorithm");
  return Matrix{};
}

Matrix mttkrp_reference(const DenseTensor& x,
                        const std::vector<Matrix>& factors, int mode) {
  const index_t rank = check_mttkrp_args(x, factors, mode);
  const int n = x.order();
  Matrix b(x.dim(mode), rank);
  std::vector<double> prod(static_cast<std::size_t>(rank));

  index_t lin = 0;
  for (Odometer od(x.dims()); od.valid(); od.next()) {
    const multi_index_t& idx = od.index();
    const double xv = x[lin++];
    // Atomic N-ary multiply per (i, r): X(i) * prod_k A^(k)(i_k, r).
    for (index_t r = 0; r < rank; ++r) prod[static_cast<std::size_t>(r)] = xv;
    for (int k = 0; k < n; ++k) {
      if (k == mode) continue;
      const double* arow =
          factors[static_cast<std::size_t>(k)].row(idx[static_cast<std::size_t>(k)]);
      for (index_t r = 0; r < rank; ++r) {
        prod[static_cast<std::size_t>(r)] *= arow[r];
      }
    }
    double* brow = b.row(idx[static_cast<std::size_t>(mode)]);
    for (index_t r = 0; r < rank; ++r) {
      brow[r] += prod[static_cast<std::size_t>(r)];
    }
  }
  return b;
}

namespace {

// Processes one b x ... x b block: accumulates the block's contribution into
// rows [jn, Jn) of B. `lo`/`hi` delimit the block.
void blocked_kernel(const DenseTensor& x, const std::vector<Matrix>& factors,
                    int mode, const multi_index_t& lo, const multi_index_t& hi,
                    Matrix& b, std::vector<double>& prod) {
  const int n = x.order();
  const index_t rank = b.cols();
  const shape_t strides = col_major_strides(x.dims());
  for (Odometer od(lo, hi); od.valid(); od.next()) {
    const multi_index_t& idx = od.index();
    index_t lin = 0;
    for (int k = 0; k < n; ++k) {
      lin += idx[static_cast<std::size_t>(k)] * strides[static_cast<std::size_t>(k)];
    }
    const double xv = x[lin];
    for (index_t r = 0; r < rank; ++r) prod[static_cast<std::size_t>(r)] = xv;
    for (int k = 0; k < n; ++k) {
      if (k == mode) continue;
      const double* arow =
          factors[static_cast<std::size_t>(k)].row(idx[static_cast<std::size_t>(k)]);
      for (index_t r = 0; r < rank; ++r) {
        prod[static_cast<std::size_t>(r)] *= arow[r];
      }
    }
    double* brow = b.row(idx[static_cast<std::size_t>(mode)]);
    for (index_t r = 0; r < rank; ++r) {
      brow[r] += prod[static_cast<std::size_t>(r)];
    }
  }
}

}  // namespace

Matrix mttkrp_blocked(const DenseTensor& x,
                      const std::vector<Matrix>& factors, int mode,
                      index_t block_size, bool parallel) {
  const index_t rank = check_mttkrp_args(x, factors, mode);
  const int n = x.order();
  MTK_CHECK(block_size >= 1, "block size must be >= 1, got ", block_size);
  Matrix b(x.dim(mode), rank);

  // Iterate blocks with the mode-n block index outermost so that parallel
  // workers write disjoint row ranges of B.
  const index_t n_blocks_mode = ceil_div(x.dim(mode), block_size);

  // Block grid over the remaining dimensions.
  shape_t other_block_counts;
  std::vector<int> other_modes;
  for (int k = 0; k < n; ++k) {
    if (k == mode) continue;
    other_modes.push_back(k);
    other_block_counts.push_back(ceil_div(x.dim(k), block_size));
  }

#pragma omp parallel for schedule(dynamic) if (parallel)
  for (index_t bn = 0; bn < n_blocks_mode; ++bn) {
    std::vector<double> prod(static_cast<std::size_t>(rank));
    multi_index_t lo(static_cast<std::size_t>(n));
    multi_index_t hi(static_cast<std::size_t>(n));
    lo[static_cast<std::size_t>(mode)] = bn * block_size;
    hi[static_cast<std::size_t>(mode)] =
        std::min(x.dim(mode), (bn + 1) * block_size);
    for (Odometer blocks(other_block_counts); blocks.valid(); blocks.next()) {
      const multi_index_t& bidx = blocks.index();
      for (std::size_t j = 0; j < other_modes.size(); ++j) {
        const int k = other_modes[j];
        lo[static_cast<std::size_t>(k)] = bidx[j] * block_size;
        hi[static_cast<std::size_t>(k)] =
            std::min(x.dim(k), (bidx[j] + 1) * block_size);
      }
      blocked_kernel(x, factors, mode, lo, hi, b, prod);
    }
  }
  return b;
}

Matrix mttkrp_matmul(const DenseTensor& x,
                     const std::vector<Matrix>& factors, int mode) {
  check_mttkrp_args(x, factors, mode);
  // Straightforward approach (Section III-B): permute the tensor into its
  // mode-n matricization, form the Khatri-Rao product explicitly, multiply.
  const Matrix xn = matricize(x, mode);
  const Matrix krp = khatri_rao_skip(factors, mode);
  Matrix b(xn.rows(), krp.cols());
  // B = X_(n) * K: X_(n) is I_n x (I/I_n), K is (I/I_n) x R.
  gemm(xn, krp, b);
  return b;
}

Matrix mttkrp_two_step(const DenseTensor& x,
                       const std::vector<Matrix>& factors, int mode) {
  const index_t rank = check_mttkrp_args(x, factors, mode);
  const int n = x.order();
  const shape_t& dims = x.dims();

  // Split the modes at `mode`: L = {0..mode-1}, R = {mode+1..N-1}.
  index_t jl = 1, jr = 1;
  std::vector<const Matrix*> left, right;
  for (int k = 0; k < mode; ++k) {
    jl = checked_mul(jl, dims[static_cast<std::size_t>(k)]);
    left.push_back(&factors[static_cast<std::size_t>(k)]);
  }
  for (int k = mode + 1; k < n; ++k) {
    jr = checked_mul(jr, dims[static_cast<std::size_t>(k)]);
    right.push_back(&factors[static_cast<std::size_t>(k)]);
  }
  const index_t in = dims[static_cast<std::size_t>(mode)];
  Matrix b(in, rank);

  if (right.empty()) {
    // mode == N-1: single contraction B(i_n, r) = sum_p X[p + jl*i_n] K_L(p, r).
    const Matrix kl = khatri_rao(left);
    for (index_t i = 0; i < in; ++i) {
      const double* xcol = x.data() + jl * i;
      double* brow = b.row(i);
      for (index_t p = 0; p < jl; ++p) {
        const double xv = xcol[p];
        const double* krow = kl.row(p);
        for (index_t r = 0; r < rank; ++r) brow[r] += xv * krow[r];
      }
    }
    return b;
  }

  // Step 1 (GEMM over the right modes): W(p, r) = sum_q X[p + P*q] K_R(q, r),
  // where P = jl * in and q ranges over the right-mode multi-indices.
  const Matrix kr = khatri_rao(right);
  const index_t p_total = checked_mul(jl, in);
  Matrix w(p_total, rank);
  for (index_t q = 0; q < jr; ++q) {
    const double* xslab = x.data() + p_total * q;
    const double* krow = kr.row(q);
    for (index_t p = 0; p < p_total; ++p) {
      const double xv = xslab[p];
      double* wrow = w.row(p);
      for (index_t r = 0; r < rank; ++r) wrow[r] += xv * krow[r];
    }
  }

  if (left.empty()) {
    // mode == 0: W is already B.
    return w;
  }

  // Step 2: B(i_n, r) = sum_p K_L(p, r) * W(p + jl*i_n, r).
  const Matrix kl = khatri_rao(left);
  for (index_t i = 0; i < in; ++i) {
    double* brow = b.row(i);
    for (index_t p = 0; p < jl; ++p) {
      const double* krow = kl.row(p);
      const double* wrow = w.row(p + jl * i);
      for (index_t r = 0; r < rank; ++r) brow[r] += krow[r] * wrow[r];
    }
  }
  return b;
}

}  // namespace mtk
