// Rectangular-block generalization of Algorithm 2: per-dimension block
// extents (b_1, ..., b_N) instead of a single cube edge b. The paper's
// Eq. (11)/(12) analysis assumes cubical blocks; for skewed tensors (some
// I_k much smaller than M^(1/N)) rectangular blocks use the same fast
// memory to cover more of the large dimensions, reducing factor-matrix
// traffic. This is an ablation/extension of the paper's design choice, not
// a replacement: for cubical tensors the optimizer recovers cubical blocks.
//
// Generalized feasibility (Eq. (11)):  prod_k b_k + sum_k b_k <= M.
// Generalized traffic model (Eq. (12)):
//   W(b) = I + prod_k ceil(I_k / b_k) * R * (sum_{k != n} b_k + 2 b_n),
// counting, per block and per r, the N-1 input subvectors plus the
// load and store of the output subvector.
#pragma once

#include <vector>

#include "src/tensor/dense_tensor.hpp"
#include "src/tensor/matrix.hpp"

namespace mtk {

// Feasibility: prod b_k + sum b_k <= M with 1 <= b_k.
bool block_shape_fits(const shape_t& block, index_t fast_memory_words);

// The traffic model above (words).
double blocked_rect_traffic_model(const shape_t& dims, index_t rank,
                                  int mode, const shape_t& block);

// Coordinate-ascent optimizer for the block shape: starts from all-ones and
// greedily grows the dimension giving the largest traffic reduction while
// the shape stays feasible and within the tensor extents.
shape_t optimize_block_shape(const shape_t& dims, index_t rank, int mode,
                             index_t fast_memory_words);

// MTTKRP with rectangular blocks; same semantics as mttkrp_blocked.
Matrix mttkrp_blocked_rect(const DenseTensor& x,
                           const std::vector<Matrix>& factors, int mode,
                           const shape_t& block, bool parallel = false);

}  // namespace mtk
