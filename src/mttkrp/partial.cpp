#include "src/mttkrp/partial.hpp"

#include <algorithm>

#include "src/support/index.hpp"

namespace mtk {

namespace {

void check_keep_subset(const std::vector<int>& keep, int universe,
                       const char* what) {
  MTK_CHECK(!keep.empty(), what, ": kept mode set must be non-empty");
  for (std::size_t t = 0; t < keep.size(); ++t) {
    MTK_CHECK(keep[t] >= 0 && keep[t] < universe, what, ": mode ", keep[t],
              " out of range");
    if (t > 0) {
      MTK_CHECK(keep[t] > keep[t - 1], what,
                ": kept modes must be strictly ascending");
    }
  }
}

}  // namespace

Partial contract_tensor(const DenseTensor& x,
                        const std::vector<Matrix>& factors,
                        const std::vector<int>& keep, index_t rank) {
  const int n = x.order();
  check_keep_subset(keep, n, "contract_tensor");
  MTK_CHECK(static_cast<int>(factors.size()) == n, "expected ", n,
            " factors, got ", factors.size());
  MTK_CHECK(rank >= 1, "rank must be >= 1, got ", rank);

  std::vector<bool> kept(static_cast<std::size_t>(n), false);
  for (int k : keep) kept[static_cast<std::size_t>(k)] = true;
  std::vector<int> dropped;
  for (int k = 0; k < n; ++k) {
    if (!kept[static_cast<std::size_t>(k)]) {
      const Matrix& a = factors[static_cast<std::size_t>(k)];
      MTK_CHECK(a.rows() == x.dim(k) && a.cols() == rank,
                "factor ", k, " must be ", x.dim(k), "x", rank, ", got ",
                a.rows(), "x", a.cols());
      dropped.push_back(k);
    }
  }

  Partial result;
  result.modes = keep;
  for (int k : keep) result.dims.push_back(x.dim(k));
  result.values = Matrix(result.row_count(), rank);

  // Single pass over the tensor in storage order; for each entry, compute
  // the kept-row index and multiply the dropped modes' factor rows into the
  // rank vector. When nothing is dropped the partial is X replicated
  // across r.
  const shape_t kept_strides = col_major_strides(result.dims);
  std::vector<double> vec(static_cast<std::size_t>(rank));
  index_t lin = 0;
  for (Odometer od(x.dims()); od.valid(); od.next()) {
    const multi_index_t& idx = od.index();
    const double xv = x[lin++];
    for (index_t r = 0; r < rank; ++r) vec[static_cast<std::size_t>(r)] = xv;
    for (int k : dropped) {
      const double* arow = factors[static_cast<std::size_t>(k)].row(
          idx[static_cast<std::size_t>(k)]);
      for (index_t r = 0; r < rank; ++r) {
        vec[static_cast<std::size_t>(r)] *= arow[r];
      }
    }
    index_t row = 0;
    for (std::size_t t = 0; t < keep.size(); ++t) {
      row += idx[static_cast<std::size_t>(keep[t])] * kept_strides[t];
    }
    double* out = result.values.row(row);
    for (index_t r = 0; r < rank; ++r) {
      out[r] += vec[static_cast<std::size_t>(r)];
    }
  }
  return result;
}

Partial contract_partial(const Partial& parent,
                         const std::vector<Matrix>& factors,
                         const std::vector<int>& keep) {
  const index_t rank = parent.values.cols();
  check_keep_subset(keep, 1 << 30, "contract_partial");

  // Positions of the kept/dropped modes within the parent's mode list.
  std::vector<std::size_t> keep_pos, drop_pos;
  {
    std::size_t cursor = 0;
    for (std::size_t t = 0; t < parent.modes.size(); ++t) {
      if (cursor < keep.size() && parent.modes[t] == keep[cursor]) {
        keep_pos.push_back(t);
        ++cursor;
      } else {
        drop_pos.push_back(t);
      }
    }
    MTK_CHECK(cursor == keep.size(),
              "contract_partial: kept modes must be a subset of the "
              "parent's modes");
  }
  MTK_CHECK(!drop_pos.empty(),
            "contract_partial: nothing to contract (kept set equals parent)");

  Partial result;
  result.modes = keep;
  for (std::size_t t : keep_pos) result.dims.push_back(parent.dims[t]);
  result.values = Matrix(result.row_count(), rank);

  const shape_t kept_strides = col_major_strides(result.dims);
  std::vector<double> vec(static_cast<std::size_t>(rank));
  index_t lin = 0;
  for (Odometer od(parent.dims); od.valid(); od.next()) {
    const multi_index_t& idx = od.index();
    const double* in = parent.values.row(lin++);
    for (index_t r = 0; r < rank; ++r) vec[static_cast<std::size_t>(r)] = in[r];
    for (std::size_t t : drop_pos) {
      const int mode = parent.modes[t];
      const Matrix& a = factors[static_cast<std::size_t>(mode)];
      MTK_CHECK(a.rows() == parent.dims[t] && a.cols() == rank,
                "factor ", mode, " shape mismatch in contract_partial");
      const double* arow = a.row(idx[t]);
      for (index_t r = 0; r < rank; ++r) {
        vec[static_cast<std::size_t>(r)] *= arow[r];
      }
    }
    index_t row = 0;
    for (std::size_t t = 0; t < keep_pos.size(); ++t) {
      row += idx[keep_pos[t]] * kept_strides[t];
    }
    double* out = result.values.row(row);
    for (index_t r = 0; r < rank; ++r) {
      out[r] += vec[static_cast<std::size_t>(r)];
    }
  }
  return result;
}

Matrix partial_to_mttkrp(const Partial& leaf) {
  MTK_CHECK(leaf.modes.size() == 1,
            "partial_to_mttkrp: expected a single-mode partial, got ",
            leaf.modes.size(), " modes");
  return leaf.values;
}

}  // namespace mtk
