#include "src/mttkrp/blocked_rect.hpp"

#include <algorithm>

#include "src/mttkrp/mttkrp.hpp"
#include "src/support/index.hpp"

namespace mtk {

bool block_shape_fits(const shape_t& block, index_t fast_memory_words) {
  check_shape(block);
  index_t prod = 1, sum = 0;
  for (index_t b : block) {
    prod = checked_mul(prod, b);
    sum += b;
  }
  return prod + sum <= fast_memory_words;
}

double blocked_rect_traffic_model(const shape_t& dims, index_t rank,
                                  int mode, const shape_t& block) {
  check_shape(dims);
  check_shape(block);
  MTK_CHECK(dims.size() == block.size(), "block rank ", block.size(),
            " != tensor order ", dims.size());
  MTK_CHECK(mode >= 0 && mode < static_cast<int>(dims.size()),
            "mode out of range");
  MTK_CHECK(rank >= 1, "rank must be >= 1");
  double blocks = 1.0;
  double vector_words = 0.0;
  for (std::size_t k = 0; k < dims.size(); ++k) {
    blocks *= static_cast<double>(ceil_div(dims[k], block[k]));
    vector_words += static_cast<double>(block[k]) *
                    (static_cast<int>(k) == mode ? 2.0 : 1.0);
  }
  return static_cast<double>(shape_size(dims)) +
         blocks * static_cast<double>(rank) * vector_words;
}

shape_t optimize_block_shape(const shape_t& dims, index_t rank, int mode,
                             index_t fast_memory_words) {
  check_shape(dims);
  const int n = static_cast<int>(dims.size());
  MTK_CHECK(n >= 2, "optimize_block_shape requires order >= 2");
  MTK_CHECK(mode >= 0 && mode < n, "mode out of range");
  MTK_CHECK(fast_memory_words >= 1 + n, "fast memory of ",
            fast_memory_words, " words cannot hold a 1-element block");

  shape_t block(static_cast<std::size_t>(n), 1);
  double current = blocked_rect_traffic_model(dims, rank, mode, block);

  // Greedy growth: each step grows one dimension by one (or doubles it when
  // far from the boundary, to converge quickly) if that is feasible and
  // reduces modeled traffic the most.
  for (;;) {
    int best_dim = -1;
    index_t best_value = 0;
    double best_traffic = current;
    for (int k = 0; k < n; ++k) {
      for (index_t grow :
           {block[static_cast<std::size_t>(k)] * 2,
            block[static_cast<std::size_t>(k)] + 1}) {
        const index_t capped = std::min(grow, dims[static_cast<std::size_t>(k)]);
        if (capped == block[static_cast<std::size_t>(k)]) continue;
        shape_t trial = block;
        trial[static_cast<std::size_t>(k)] = capped;
        if (!block_shape_fits(trial, fast_memory_words)) continue;
        const double traffic =
            blocked_rect_traffic_model(dims, rank, mode, trial);
        if (traffic < best_traffic) {
          best_traffic = traffic;
          best_dim = k;
          best_value = capped;
        }
      }
    }
    if (best_dim < 0) break;
    block[static_cast<std::size_t>(best_dim)] = best_value;
    current = best_traffic;
  }
  return block;
}

Matrix mttkrp_blocked_rect(const DenseTensor& x,
                           const std::vector<Matrix>& factors, int mode,
                           const shape_t& block, bool parallel) {
  const index_t rank = check_mttkrp_args(x, factors, mode);
  const int n = x.order();
  MTK_CHECK(static_cast<int>(block.size()) == n, "block rank ", block.size(),
            " != tensor order ", n);
  for (int k = 0; k < n; ++k) {
    MTK_CHECK(block[static_cast<std::size_t>(k)] >= 1,
              "block extents must be >= 1");
  }
  Matrix b(x.dim(mode), rank);
  const shape_t strides = col_major_strides(x.dims());

  const index_t n_blocks_mode =
      ceil_div(x.dim(mode), block[static_cast<std::size_t>(mode)]);
  shape_t other_block_counts;
  std::vector<int> other_modes;
  for (int k = 0; k < n; ++k) {
    if (k == mode) continue;
    other_modes.push_back(k);
    other_block_counts.push_back(
        ceil_div(x.dim(k), block[static_cast<std::size_t>(k)]));
  }

#pragma omp parallel for schedule(dynamic) if (parallel)
  for (index_t bn = 0; bn < n_blocks_mode; ++bn) {
    std::vector<double> prod(static_cast<std::size_t>(rank));
    multi_index_t lo(static_cast<std::size_t>(n));
    multi_index_t hi(static_cast<std::size_t>(n));
    lo[static_cast<std::size_t>(mode)] =
        bn * block[static_cast<std::size_t>(mode)];
    hi[static_cast<std::size_t>(mode)] =
        std::min(x.dim(mode), lo[static_cast<std::size_t>(mode)] +
                                  block[static_cast<std::size_t>(mode)]);
    for (Odometer blocks(other_block_counts); blocks.valid(); blocks.next()) {
      const multi_index_t& bidx = blocks.index();
      for (std::size_t j = 0; j < other_modes.size(); ++j) {
        const int k = other_modes[j];
        lo[static_cast<std::size_t>(k)] =
            bidx[j] * block[static_cast<std::size_t>(k)];
        hi[static_cast<std::size_t>(k)] =
            std::min(x.dim(k), lo[static_cast<std::size_t>(k)] +
                                   block[static_cast<std::size_t>(k)]);
      }
      for (Odometer entry(lo, hi); entry.valid(); entry.next()) {
        const multi_index_t& idx = entry.index();
        index_t lin = 0;
        for (int k = 0; k < n; ++k) {
          lin += idx[static_cast<std::size_t>(k)] *
                 strides[static_cast<std::size_t>(k)];
        }
        const double xv = x[lin];
        for (index_t r = 0; r < rank; ++r) {
          prod[static_cast<std::size_t>(r)] = xv;
        }
        for (int k = 0; k < n; ++k) {
          if (k == mode) continue;
          const double* arow = factors[static_cast<std::size_t>(k)].row(
              idx[static_cast<std::size_t>(k)]);
          for (index_t r = 0; r < rank; ++r) {
            prod[static_cast<std::size_t>(r)] *= arow[r];
          }
        }
        double* brow = b.row(idx[static_cast<std::size_t>(mode)]);
        for (index_t r = 0; r < rank; ++r) {
          brow[r] += prod[static_cast<std::size_t>(r)];
        }
      }
    }
  }
  return b;
}

}  // namespace mtk
