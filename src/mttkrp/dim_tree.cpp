#include "src/mttkrp/dim_tree.hpp"

#include "src/mttkrp/mttkrp.hpp"
#include "src/support/index.hpp"

namespace mtk {

namespace {

// Multiplies needed to contract a source with `rows` rank-matched rows over
// mode extents `dims`, dropping `n_dropped` modes: each source row costs
// n_dropped multiplies per rank entry (the source value times each dropped
// factor entry).
index_t contraction_multiplies(index_t rows, index_t rank,
                               std::size_t n_dropped) {
  return checked_mul(checked_mul(rows, rank),
                     static_cast<index_t>(n_dropped));
}

// Recursively contracts `parent` (a partial over >= 2 modes) down to all of
// its single-mode leaves, appending outputs[mode].
void expand(const Partial& parent, const std::vector<Matrix>& factors,
            std::vector<Matrix>& outputs, index_t& multiplies) {
  const std::size_t m = parent.modes.size();
  MTK_ASSERT(m >= 1, "expand on empty partial");
  if (m == 1) {
    outputs[static_cast<std::size_t>(parent.modes[0])] =
        partial_to_mttkrp(parent);
    return;
  }
  const std::size_t half = m / 2;
  const std::vector<int> left(parent.modes.begin(),
                              parent.modes.begin() + static_cast<long>(half));
  const std::vector<int> right(parent.modes.begin() + static_cast<long>(half),
                               parent.modes.end());

  Partial left_partial = contract_partial(parent, factors, left);
  multiplies += contraction_multiplies(parent.row_count(),
                                       parent.values.cols(), m - half);
  expand(left_partial, factors, outputs, multiplies);

  Partial right_partial = contract_partial(parent, factors, right);
  multiplies += contraction_multiplies(parent.row_count(),
                                       parent.values.cols(), half);
  expand(right_partial, factors, outputs, multiplies);
}

}  // namespace

AllModesResult mttkrp_all_modes_tree(const DenseTensor& x,
                                     const std::vector<Matrix>& factors) {
  const int n = x.order();
  MTK_CHECK(n >= 2, "mttkrp_all_modes_tree requires order >= 2");
  MTK_CHECK(static_cast<int>(factors.size()) == n, "expected ", n,
            " factors, got ", factors.size());
  index_t rank = -1;
  for (int k = 0; k < n; ++k) {
    const Matrix& a = factors[static_cast<std::size_t>(k)];
    MTK_CHECK(a.rows() == x.dim(k), "factor ", k, " has ", a.rows(),
              " rows, expected ", x.dim(k));
    if (rank < 0) {
      rank = a.cols();
    } else {
      MTK_CHECK(a.cols() == rank, "factor ", k, " rank mismatch");
    }
  }

  AllModesResult result;
  result.outputs.resize(static_cast<std::size_t>(n));

  // Root split: two direct tensor contractions. (For N = 2 these are
  // already the two leaves.)
  const int half = n / 2;
  std::vector<int> left, right;
  for (int k = 0; k < half; ++k) left.push_back(k);
  for (int k = half; k < n; ++k) right.push_back(k);

  Partial left_partial = contract_tensor(x, factors, left, rank);
  result.multiplies += contraction_multiplies(
      x.size(), rank, static_cast<std::size_t>(n - half));
  expand(left_partial, factors, result.outputs, result.multiplies);

  Partial right_partial = contract_tensor(x, factors, right, rank);
  result.multiplies += contraction_multiplies(
      x.size(), rank, static_cast<std::size_t>(half));
  expand(right_partial, factors, result.outputs, result.multiplies);

  return result;
}

AllModesResult mttkrp_all_modes_separate(const DenseTensor& x,
                                         const std::vector<Matrix>& factors) {
  const int n = x.order();
  AllModesResult result;
  result.outputs.reserve(static_cast<std::size_t>(n));
  for (int mode = 0; mode < n; ++mode) {
    result.outputs.push_back(mttkrp_reference(x, factors, mode));
    // Each iteration point performs one N-ary multiply: the tensor entry
    // times N-1 factor entries = N-1 scalar multiplies per (i, r).
    result.multiplies += checked_mul(checked_mul(x.size(), factors[0].cols()),
                                     static_cast<index_t>(n - 1));
  }
  return result;
}

index_t dim_tree_multiply_count(const shape_t& dims, index_t rank) {
  check_shape(dims);
  MTK_CHECK(dims.size() >= 2, "dim_tree_multiply_count requires order >= 2");
  MTK_CHECK(rank >= 1, "rank must be >= 1");

  index_t total = 0;
  // Mirrors the recursion of mttkrp_all_modes_tree.
  auto recurse = [&](auto&& self, const shape_t& sub) -> void {
    const std::size_t m = sub.size();
    if (m == 1) return;
    const std::size_t half = m / 2;
    const index_t rows = shape_size(sub);
    total += contraction_multiplies(rows, rank, m - half);  // left child
    total += contraction_multiplies(rows, rank, half);      // right child
    self(self, shape_t(sub.begin(), sub.begin() + static_cast<long>(half)));
    self(self, shape_t(sub.begin() + static_cast<long>(half), sub.end()));
  };

  // Root contractions read the tensor (rank-replicated) directly.
  const index_t root_rows = shape_size(dims);
  const std::size_t n = dims.size();
  const std::size_t half = n / 2;
  total += contraction_multiplies(root_rows, rank, n - half);
  total += contraction_multiplies(root_rows, rank, half);
  recurse(recurse, shape_t(dims.begin(), dims.begin() + static_cast<long>(half)));
  recurse(recurse, shape_t(dims.begin() + static_cast<long>(half), dims.end()));
  return total;
}

}  // namespace mtk
