// Word-granular address traces of the MTTKRP algorithms, used to measure
// slow-fast memory traffic in the two-level model and compare it against the
// bounds of Section IV.
//
// Address space layout (disjoint ranges):
//   X       : [x_base, x_base + I)                  col-major linearization
//   A^(k)   : [factor_base[k], ... + I_k * R)       row-major (i_k * R + r)
//   B       : [b_base, b_base + I_n * R)            row-major
//   scratch : auxiliary arrays for the matmul trace (X_(n) copy, KRP).
//
// Layout does not affect counts (the model is word-granular and fully
// associative) but fixed bases make traces reproducible and testable.
#pragma once

#include "src/memsim/memory_model.hpp"
#include "src/support/index.hpp"

namespace mtk {

struct TraceProblem {
  shape_t dims;
  index_t rank = 0;
  int mode = 0;

  int order() const { return static_cast<int>(dims.size()); }
  index_t tensor_size() const { return shape_size(dims); }
};

struct TraceLayout {
  index_t x_base = 0;
  std::vector<index_t> factor_base;  // one per mode; mode n unused
  index_t b_base = 0;
  index_t scratch_base = 0;  // first free address after all arrays

  static TraceLayout make(const TraceProblem& p);
};

// Algorithm 1 (sequential unblocked): the literal loop nest of the paper —
// for each tensor entry (col-major), read X(i); then for each r read the
// N-1 factor entries, read B(i_n, r), write B(i_n, r).
void trace_unblocked(const TraceProblem& p, AccessSink& sink);

// Algorithm 2 (sequential blocked) with block size b: per block, read the
// X block once; then per r, read the N-1 factor subvectors and
// read-modify-write the B subvector, with the inner loops walking the block.
// Emits every reference (hits are resolved by the simulator), in the paper's
// literal loop order.
void trace_blocked(const TraceProblem& p, index_t block_size,
                   AccessSink& sink);

// The matmul-based baseline: (1) permute X into X_(n) (read X, write
// scratch), (2) form the Khatri-Rao product explicitly (read factor entries,
// write scratch), (3) tiled matrix multiplication B = X_(n) * K with square
// tiles sized to fit three tiles in fast memory.
void trace_matmul(const TraceProblem& p, index_t fast_memory_words,
                  AccessSink& sink);

// The two-step baseline (Phan et al. [13]): (1) form the Khatri-Rao product
// of the modes right of n, (2) contract the tensor against it column-wise —
// a GEMM-shaped sweep writing the intermediate W, tiled over W's rows so
// each W tile stays resident (tile ~ M / (2R) rows), (3) form the left KRP
// and reduce W into B. Mode N-1 degenerates to a single left contraction
// and mode 0 skips step (3), exactly like mttkrp_two_step.
void trace_two_step(const TraceProblem& p, index_t fast_memory_words,
                    AccessSink& sink);

// Runs a trace generator against an online simulator and returns the stats
// (including the final flush of dirty output words).
template <class TraceFn>
MemoryStats measure_traffic(index_t fast_memory_words,
                            ReplacementPolicy policy, TraceFn&& generate) {
  FastMemory mem(fast_memory_words, policy);
  SimulatorSink sink(mem);
  generate(sink);
  mem.flush();
  return mem.stats();
}

}  // namespace mtk
