#include "src/memsim/traced_mttkrp.hpp"

#include <algorithm>

#include "src/support/check.hpp"

namespace mtk {

namespace {

void check_trace_problem(const TraceProblem& p) {
  check_shape(p.dims);
  MTK_CHECK(p.dims.size() >= 2, "trace problems require order >= 2");
  MTK_CHECK(p.rank >= 1, "rank must be >= 1, got ", p.rank);
  MTK_CHECK(p.mode >= 0 && p.mode < p.order(), "mode ", p.mode,
            " out of range for order-", p.order(), " tensor");
}

}  // namespace

TraceLayout TraceLayout::make(const TraceProblem& p) {
  check_trace_problem(p);
  TraceLayout layout;
  index_t next = 0;
  layout.x_base = next;
  next += p.tensor_size();
  layout.factor_base.resize(p.dims.size());
  for (int k = 0; k < p.order(); ++k) {
    layout.factor_base[static_cast<std::size_t>(k)] = next;
    next += checked_mul(p.dims[static_cast<std::size_t>(k)], p.rank);
  }
  layout.b_base = next;
  next += checked_mul(p.dims[static_cast<std::size_t>(p.mode)], p.rank);
  layout.scratch_base = next;
  return layout;
}

void trace_unblocked(const TraceProblem& p, AccessSink& sink) {
  check_trace_problem(p);
  const TraceLayout layout = TraceLayout::make(p);
  const index_t rank = p.rank;
  index_t lin = 0;
  for (Odometer od(p.dims); od.valid(); od.next()) {
    const multi_index_t& idx = od.index();
    sink.read(layout.x_base + lin++);
    const index_t in = idx[static_cast<std::size_t>(p.mode)];
    for (index_t r = 0; r < rank; ++r) {
      for (int k = 0; k < p.order(); ++k) {
        if (k == p.mode) continue;
        sink.read(layout.factor_base[static_cast<std::size_t>(k)] +
                  idx[static_cast<std::size_t>(k)] * rank + r);
      }
      const index_t b_addr = layout.b_base + in * rank + r;
      sink.read(b_addr);
      sink.write(b_addr);
    }
  }
}

void trace_blocked(const TraceProblem& p, index_t block_size,
                   AccessSink& sink) {
  check_trace_problem(p);
  MTK_CHECK(block_size >= 1, "block size must be >= 1, got ", block_size);
  const TraceLayout layout = TraceLayout::make(p);
  const int n = p.order();
  const index_t rank = p.rank;
  const shape_t strides = col_major_strides(p.dims);

  shape_t block_counts;
  for (index_t ik : p.dims) block_counts.push_back(ceil_div(ik, block_size));

  multi_index_t lo(static_cast<std::size_t>(n)), hi(static_cast<std::size_t>(n));
  for (Odometer blocks(block_counts); blocks.valid(); blocks.next()) {
    const multi_index_t& bidx = blocks.index();
    for (int k = 0; k < n; ++k) {
      lo[static_cast<std::size_t>(k)] = bidx[static_cast<std::size_t>(k)] * block_size;
      hi[static_cast<std::size_t>(k)] = std::min(
          p.dims[static_cast<std::size_t>(k)], lo[static_cast<std::size_t>(k)] + block_size);
    }
    // Line 6: load the X block (first touch of each entry this block).
    for (Odometer entry(lo, hi); entry.valid(); entry.next()) {
      index_t xlin = 0;
      for (int k = 0; k < n; ++k) {
        xlin += entry.index()[static_cast<std::size_t>(k)] *
                strides[static_cast<std::size_t>(k)];
      }
      sink.read(layout.x_base + xlin);
    }
    for (index_t r = 0; r < rank; ++r) {
      // Lines 8-9: load the factor subvectors for this r.
      for (int k = 0; k < n; ++k) {
        if (k == p.mode) continue;
        for (index_t i = lo[static_cast<std::size_t>(k)];
             i < hi[static_cast<std::size_t>(k)]; ++i) {
          sink.read(layout.factor_base[static_cast<std::size_t>(k)] + i * rank +
                    r);
        }
      }
      for (index_t i = lo[static_cast<std::size_t>(p.mode)];
           i < hi[static_cast<std::size_t>(p.mode)]; ++i) {
        sink.read(layout.b_base + i * rank + r);
      }
      // Lines 10-16: the inner loop nest references X and B entries again;
      // they are resident, so these resolve as hits in the simulator. We
      // emit only the B writes (line 13 updates), one per inner iteration.
      for (Odometer entry(lo, hi); entry.valid(); entry.next()) {
        const index_t in = entry.index()[static_cast<std::size_t>(p.mode)];
        sink.write(layout.b_base + in * rank + r);
      }
      // Line 17: store vector B — modeled by eviction/flush of dirty words.
    }
  }
}

void trace_matmul(const TraceProblem& p, index_t fast_memory_words,
                  AccessSink& sink) {
  check_trace_problem(p);
  MTK_CHECK(fast_memory_words >= 3, "matmul trace needs at least 3 words of "
            "fast memory, got ", fast_memory_words);
  const TraceLayout layout = TraceLayout::make(p);
  const index_t in_dim = p.dims[static_cast<std::size_t>(p.mode)];
  const index_t jn = p.tensor_size() / in_dim;
  const index_t rank = p.rank;

  // Scratch arrays: X_(n) (in_dim x jn, row-major) and K (jn x rank,
  // row-major).
  const index_t xn_base = layout.scratch_base;
  const index_t k_base = xn_base + checked_mul(in_dim, jn);

  // Step 1: permute X into X_(n). Read each tensor entry in storage order,
  // write its unfolding position.
  {
    index_t lin = 0;
    const shape_t strides = col_major_strides(p.dims);
    for (Odometer od(p.dims); od.valid(); od.next()) {
      const multi_index_t& idx = od.index();
      index_t col = 0;
      index_t stride = 1;
      for (int k = 0; k < p.order(); ++k) {
        if (k == p.mode) continue;
        col += idx[static_cast<std::size_t>(k)] * stride;
        stride *= p.dims[static_cast<std::size_t>(k)];
      }
      sink.read(layout.x_base + lin++);
      sink.write(xn_base + idx[static_cast<std::size_t>(p.mode)] * jn + col);
    }
  }

  // Step 2: form the Khatri-Rao product. Row j of K multiplies one entry
  // from each non-mode factor; emit those reads then the write of K(j, :).
  {
    shape_t rest;
    std::vector<int> rest_modes;
    for (int k = 0; k < p.order(); ++k) {
      if (k == p.mode) continue;
      rest.push_back(p.dims[static_cast<std::size_t>(k)]);
      rest_modes.push_back(k);
    }
    index_t j = 0;
    for (Odometer od(rest); od.valid(); od.next()) {
      for (index_t r = 0; r < rank; ++r) {
        for (std::size_t q = 0; q < rest_modes.size(); ++q) {
          const int k = rest_modes[q];
          sink.read(layout.factor_base[static_cast<std::size_t>(k)] +
                    od.index()[q] * rank + r);
        }
        sink.write(k_base + j * rank + r);
      }
      ++j;
    }
  }

  // Step 3: tiled GEMM B = X_(n) * K with square tiles of edge t chosen so
  // three tiles fit: 3 t^2 <= M.
  const index_t t = std::max<index_t>(1, nth_root_floor(fast_memory_words / 3, 2));
  for (index_t i0 = 0; i0 < in_dim; i0 += t) {
    const index_t i1 = std::min(i0 + t, in_dim);
    for (index_t r0 = 0; r0 < rank; r0 += t) {
      const index_t r1 = std::min(r0 + t, rank);
      for (index_t l0 = 0; l0 < jn; l0 += t) {
        const index_t l1 = std::min(l0 + t, jn);
        for (index_t i = i0; i < i1; ++i) {
          for (index_t l = l0; l < l1; ++l) {
            sink.read(xn_base + i * jn + l);
            for (index_t r = r0; r < r1; ++r) {
              sink.read(k_base + l * rank + r);
              const index_t b_addr = layout.b_base + i * rank + r;
              sink.read(b_addr);
              sink.write(b_addr);
            }
          }
        }
      }
    }
  }
}

void trace_two_step(const TraceProblem& p, index_t fast_memory_words,
                    AccessSink& sink) {
  check_trace_problem(p);
  MTK_CHECK(fast_memory_words >= 2 * p.rank + 1,
            "two-step trace needs at least 2R+1 words of fast memory");
  const TraceLayout layout = TraceLayout::make(p);
  const int n = p.order();
  const index_t rank = p.rank;

  index_t jl = 1, jr = 1;
  for (int k = 0; k < p.mode; ++k) jl *= p.dims[static_cast<std::size_t>(k)];
  for (int k = p.mode + 1; k < n; ++k) {
    jr *= p.dims[static_cast<std::size_t>(k)];
  }
  const index_t in_dim = p.dims[static_cast<std::size_t>(p.mode)];

  // Scratch: K_R (jr x rank), W (jl*in x rank), K_L (jl x rank),
  // allocated in that order after the base arrays.
  const index_t kr_base = layout.scratch_base;
  const index_t w_base = kr_base + jr * rank;
  const index_t kl_base = w_base + jl * in_dim * rank;

  // Left-mode dims/strides for KRP row decoding.
  shape_t left_dims, right_dims;
  std::vector<int> left_modes, right_modes;
  for (int k = 0; k < p.mode; ++k) {
    left_dims.push_back(p.dims[static_cast<std::size_t>(k)]);
    left_modes.push_back(k);
  }
  for (int k = p.mode + 1; k < n; ++k) {
    right_dims.push_back(p.dims[static_cast<std::size_t>(k)]);
    right_modes.push_back(k);
  }

  // Emits the accesses forming a KRP over `dims`/`modes` at `base`.
  auto form_krp = [&](const shape_t& dims, const std::vector<int>& modes,
                      index_t base) {
    index_t j = 0;
    for (Odometer od(dims); od.valid(); od.next()) {
      for (index_t r = 0; r < rank; ++r) {
        for (std::size_t q = 0; q < modes.size(); ++q) {
          sink.read(layout.factor_base[static_cast<std::size_t>(modes[q])] +
                    od.index()[q] * rank + r);
        }
        sink.write(base + j * rank + r);
      }
      ++j;
    }
  };

  if (right_modes.empty()) {
    // mode == N-1: single left contraction B(i, r) += X[p + jl*i] K_L(p, r).
    form_krp(left_dims, left_modes, kl_base);
    for (index_t i = 0; i < in_dim; ++i) {
      for (index_t q = 0; q < jl; ++q) {
        sink.read(layout.x_base + q + jl * i);
        for (index_t r = 0; r < rank; ++r) {
          sink.read(kl_base + q * rank + r);
          const index_t b_addr = layout.b_base + i * rank + r;
          sink.read(b_addr);
          sink.write(b_addr);
        }
      }
    }
    return;
  }

  // Step 1: K_R, then W(pq, r) += X[pq + P*q] * K_R(q, r). The sweep is
  // tiled over W's rows so each W tile (tile * R words) stays resident for
  // the whole q loop; each X entry is read exactly once either way.
  form_krp(right_dims, right_modes, kr_base);
  const index_t p_total = jl * in_dim;
  const index_t tile =
      std::max<index_t>(1, fast_memory_words / (2 * rank));
  for (index_t pq0 = 0; pq0 < p_total; pq0 += tile) {
    const index_t pq1 = std::min(pq0 + tile, p_total);
    for (index_t q = 0; q < jr; ++q) {
      for (index_t pq = pq0; pq < pq1; ++pq) {
        sink.read(layout.x_base + p_total * q + pq);
        for (index_t r = 0; r < rank; ++r) {
          sink.read(kr_base + q * rank + r);
          const index_t w_addr = w_base + pq * rank + r;
          sink.read(w_addr);
          sink.write(w_addr);
        }
      }
    }
  }

  if (left_modes.empty()) {
    // mode == 0: W is B; copy it out.
    for (index_t i = 0; i < in_dim * rank; ++i) {
      sink.read(w_base + i);
      sink.write(layout.b_base + i);
    }
    return;
  }

  // Step 2: K_L, then B(i, r) += K_L(q, r) * W(q + jl*i, r).
  form_krp(left_dims, left_modes, kl_base);
  for (index_t i = 0; i < in_dim; ++i) {
    for (index_t q = 0; q < jl; ++q) {
      for (index_t r = 0; r < rank; ++r) {
        sink.read(kl_base + q * rank + r);
        sink.read(w_base + (q + jl * i) * rank + r);
        const index_t b_addr = layout.b_base + i * rank + r;
        sink.read(b_addr);
        sink.write(b_addr);
      }
    }
  }
}

}  // namespace mtk
