#include "src/memsim/memory_model.hpp"

#include <queue>

namespace mtk {

FastMemory::FastMemory(index_t capacity, ReplacementPolicy policy)
    : capacity_(capacity), policy_(policy) {
  MTK_CHECK(capacity >= 1, "fast memory capacity must be >= 1 word, got ",
            capacity);
}

void FastMemory::read(index_t addr) {
  ++stats_.accesses;
  auto it = entries_.find(addr);
  if (it != entries_.end()) {
    ++stats_.read_hits;
    if (policy_ == ReplacementPolicy::kLru) {
      order_.splice(order_.end(), order_, it->second);  // move to MRU end
    }
    return;
  }
  ++stats_.loads;
  touch(addr, /*is_write=*/false);
}

void FastMemory::write(index_t addr) {
  ++stats_.accesses;
  auto it = entries_.find(addr);
  if (it != entries_.end()) {
    ++stats_.write_hits;
    it->second->dirty = true;
    if (policy_ == ReplacementPolicy::kLru) {
      order_.splice(order_.end(), order_, it->second);
    }
    return;
  }
  // Write-allocate without a load: the full word is overwritten.
  touch(addr, /*is_write=*/true);
}

void FastMemory::touch(index_t addr, bool is_write) {
  if (static_cast<index_t>(entries_.size()) >= capacity_) {
    evict_one();
  }
  order_.push_back({addr, is_write});
  entries_[addr] = std::prev(order_.end());
}

void FastMemory::evict_one() {
  MTK_ASSERT(!order_.empty(), "evicting from an empty fast memory");
  const Entry victim = order_.front();
  if (victim.dirty) ++stats_.stores;
  entries_.erase(victim.addr);
  order_.pop_front();
}

void FastMemory::flush() {
  for (const Entry& e : order_) {
    if (e.dirty) ++stats_.stores;
  }
  order_.clear();
  entries_.clear();
}

MemoryStats simulate_optimal(index_t capacity,
                             const std::vector<TraceEntry>& trace) {
  MTK_CHECK(capacity >= 1, "fast memory capacity must be >= 1 word, got ",
            capacity);
  const index_t n = static_cast<index_t>(trace.size());
  constexpr index_t kNever = std::numeric_limits<index_t>::max();

  // next_use[t] = next position after t touching the same address.
  std::vector<index_t> next_use(static_cast<std::size_t>(n), kNever);
  {
    std::unordered_map<index_t, index_t> last_seen;
    for (index_t t = n - 1; t >= 0; --t) {
      const index_t addr = trace[static_cast<std::size_t>(t)].addr;
      auto it = last_seen.find(addr);
      if (it != last_seen.end()) {
        next_use[static_cast<std::size_t>(t)] = it->second;
      }
      last_seen[addr] = t;
      if (t == 0) break;
    }
  }

  MemoryStats stats;
  // Resident set: addr -> (dirty, next use). Victim selection uses a lazy
  // max-heap on next-use positions; stale heap entries are skipped.
  struct HeapItem {
    index_t next;
    index_t addr;
    bool operator<(const HeapItem& o) const { return next < o.next; }
  };
  std::priority_queue<HeapItem> heap;
  struct Resident {
    bool dirty;
    index_t next;
  };
  std::unordered_map<index_t, Resident> resident;

  for (index_t t = 0; t < n; ++t) {
    const TraceEntry& e = trace[static_cast<std::size_t>(t)];
    ++stats.accesses;
    const index_t nu = next_use[static_cast<std::size_t>(t)];
    auto it = resident.find(e.addr);
    if (it != resident.end()) {
      if (e.is_write) {
        ++stats.write_hits;
        it->second.dirty = true;
      } else {
        ++stats.read_hits;
      }
      it->second.next = nu;
      heap.push({nu, e.addr});
      continue;
    }
    // Miss.
    if (!e.is_write) ++stats.loads;
    if (static_cast<index_t>(resident.size()) >= capacity) {
      // Evict the valid heap entry with the farthest next use.
      while (true) {
        MTK_ASSERT(!heap.empty(), "OPT heap exhausted with full residency");
        const HeapItem top = heap.top();
        heap.pop();
        auto rit = resident.find(top.addr);
        if (rit != resident.end() && rit->second.next == top.next) {
          if (rit->second.dirty) ++stats.stores;
          resident.erase(rit);
          break;
        }
      }
    }
    resident[e.addr] = {e.is_write, nu};
    heap.push({nu, e.addr});
  }
  for (const auto& [addr, r] : resident) {
    (void)addr;
    if (r.dirty) ++stats.stores;
  }
  return stats;
}

}  // namespace mtk
