// Two-level sequential memory model (Section II-C of the paper, the
// Hong–Kung I/O model): a fast memory of capacity M words backed by an
// unbounded slow memory. The simulator is driven by a word-granular access
// trace and counts loads (slow -> fast) and stores (fast -> slow).
//
// Semantics:
//   * read miss  -> one load; the word becomes resident (clean).
//   * read hit   -> free.
//   * write      -> marks the resident word dirty; a write miss allocates
//                   without a load (the old value is not needed). Traces for
//                   read-modify-write accumulations issue read-then-write,
//                   so they pay the load explicitly, matching the paper's
//                   accounting of Algorithms 1 and 2.
//   * eviction of a dirty word -> one store.
//   * flush()    -> stores every remaining dirty word (outputs must reach
//                   slow memory at the end).
//
// Replacement policies: LRU and FIFO run online; Belady's optimal (OPT) runs
// offline over a recorded trace and gives the best achievable counts for
// that trace, which is the right comparator for the *schedule-independent*
// lower bounds of Section IV.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "src/support/check.hpp"
#include "src/support/math_util.hpp"

namespace mtk {

struct MemoryStats {
  index_t loads = 0;
  index_t stores = 0;
  index_t read_hits = 0;
  index_t write_hits = 0;
  index_t accesses = 0;

  index_t traffic() const { return loads + stores; }
};

enum class ReplacementPolicy { kLru, kFifo };

class FastMemory {
 public:
  FastMemory(index_t capacity, ReplacementPolicy policy);

  void read(index_t addr);
  void write(index_t addr);
  // Writes back all dirty words and empties the cache.
  void flush();

  const MemoryStats& stats() const { return stats_; }
  index_t capacity() const { return capacity_; }
  index_t resident() const { return static_cast<index_t>(entries_.size()); }

 private:
  struct Entry {
    index_t addr;
    bool dirty;
  };

  // Brings addr in (possibly evicting), returns its entry. `make_dirty`
  // marks the word dirty on allocation (write-allocate).
  void touch(index_t addr, bool is_write);
  void evict_one();

  index_t capacity_;
  ReplacementPolicy policy_;
  MemoryStats stats_;
  // Recency / insertion order list; front = next eviction victim.
  std::list<Entry> order_;
  std::unordered_map<index_t, std::list<Entry>::iterator> entries_;
};

// One entry of a recorded trace for offline (OPT) simulation.
struct TraceEntry {
  index_t addr;
  bool is_write;
};

// Belady's OPT policy over a full trace: evicts the resident word whose next
// use is farthest in the future (never-used-again words first).
MemoryStats simulate_optimal(index_t capacity,
                             const std::vector<TraceEntry>& trace);

// Convenience sink interface so trace generators can either drive a live
// simulator or record entries for OPT.
class AccessSink {
 public:
  virtual ~AccessSink() = default;
  virtual void read(index_t addr) = 0;
  virtual void write(index_t addr) = 0;
};

class SimulatorSink final : public AccessSink {
 public:
  explicit SimulatorSink(FastMemory& mem) : mem_(mem) {}
  void read(index_t addr) override { mem_.read(addr); }
  void write(index_t addr) override { mem_.write(addr); }

 private:
  FastMemory& mem_;
};

class RecordingSink final : public AccessSink {
 public:
  void read(index_t addr) override { trace_.push_back({addr, false}); }
  void write(index_t addr) override { trace_.push_back({addr, true}); }
  const std::vector<TraceEntry>& trace() const { return trace_; }

 private:
  std::vector<TraceEntry> trace_;
};

// Counts distinct addresses only (compulsory traffic floor for the trace).
class DistinctSink final : public AccessSink {
 public:
  void read(index_t addr) override { addrs_.insert({addr, true}); }
  void write(index_t addr) override { addrs_.insert({addr, true}); }
  index_t distinct() const { return static_cast<index_t>(addrs_.size()); }

 private:
  std::unordered_map<index_t, bool> addrs_;
};

}  // namespace mtk
