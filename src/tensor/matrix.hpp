// Dense row-major matrix of doubles with the linear-algebra kernels the rest
// of the library needs: GEMM (blocked, OpenMP), Gram matrices, Hadamard
// products, Cholesky solves, and norms. This stands in for a BLAS/LAPACK
// dependency (none is installed in this environment); interfaces are kept
// BLAS-shaped so a real backend could be dropped in.
#pragma once

#include <vector>

#include "src/support/check.hpp"
#include "src/support/math_util.hpp"
#include "src/support/rng.hpp"

namespace mtk {

class Matrix {
 public:
  Matrix() = default;
  Matrix(index_t rows, index_t cols, double init = 0.0);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t size() const { return rows_ * cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(index_t i, index_t j) {
    MTK_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_, "matrix index (",
               i, ",", j, ") out of bounds for ", rows_, "x", cols_);
    return data_[i * cols_ + j];
  }
  double operator()(index_t i, index_t j) const {
    MTK_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_, "matrix index (",
               i, ",", j, ") out of bounds for ", rows_, "x", cols_);
    return data_[i * cols_ + j];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* row(index_t i) { return data_.data() + i * cols_; }
  const double* row(index_t i) const { return data_.data() + i * cols_; }

  void set_zero();
  void fill(double value);

  // Per-column Euclidean norms.
  std::vector<double> column_norms() const;
  // Divides column j by scale[j]; scale entries must be non-zero.
  void scale_columns_inv(const std::vector<double>& scale);
  // Multiplies column j by scale[j].
  void scale_columns(const std::vector<double>& scale);

  double frobenius_norm() const;
  double max_abs() const;

  static Matrix random_uniform(index_t rows, index_t cols, Rng& rng,
                               double lo = 0.0, double hi = 1.0);
  static Matrix random_normal(index_t rows, index_t cols, Rng& rng);
  static Matrix identity(index_t n);

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<double> data_;
};

// C = A * B (optionally accumulating into C when accumulate=true).
// Cache-blocked, OpenMP-parallel over row blocks.
void gemm(const Matrix& a, const Matrix& b, Matrix& c,
          bool accumulate = false);

// C = A^T * A (the Gram matrix), exploiting symmetry.
Matrix gram(const Matrix& a);

// C = A^T * B.
Matrix gemm_tn(const Matrix& a, const Matrix& b);

// Elementwise (Hadamard) product; shapes must match.
Matrix hadamard(const Matrix& a, const Matrix& b);
void hadamard_inplace(Matrix& a, const Matrix& b);

// Solves X * S = B_rhs for X, where S is symmetric positive (semi)definite
// (the normal-equations solve in CP-ALS: X = B_rhs * S^{-1}, row-wise).
// Uses Cholesky with diagonal jitter escalation when S is near-singular.
Matrix solve_spd_right(const Matrix& s, const Matrix& rhs);

// max_ij |a(i,j) - b(i,j)|; shapes must match.
double max_abs_diff(const Matrix& a, const Matrix& b);

// Sum of entries of A ∘ B (the inner product <A, B>).
double dot(const Matrix& a, const Matrix& b);

}  // namespace mtk
