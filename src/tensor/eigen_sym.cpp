#include "src/tensor/eigen_sym.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace mtk {

SymmetricEigen eigen_symmetric(const Matrix& a) {
  const index_t n = a.rows();
  MTK_CHECK(n == a.cols(), "eigen_symmetric: matrix must be square, got ",
            a.rows(), "x", a.cols());
  const double scale = std::max(a.max_abs(), 1e-300);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = i + 1; j < n; ++j) {
      MTK_CHECK(std::fabs(a(i, j) - a(j, i)) <= 1e-8 * scale,
                "eigen_symmetric: matrix is not symmetric at (", i, ",", j,
                ")");
    }
  }

  Matrix d = a;                      // working copy, driven to diagonal
  Matrix v = Matrix::identity(n);    // accumulated rotations

  auto off_diagonal_mass = [&]() {
    double acc = 0.0;
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = i + 1; j < n; ++j) {
        acc += d(i, j) * d(i, j);
      }
    }
    return acc;
  };

  const double tol = 1e-24 * scale * scale * static_cast<double>(n * n);
  for (int sweep = 0; sweep < 60; ++sweep) {
    if (off_diagonal_mass() <= tol) break;
    for (index_t p = 0; p < n; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        // Classic Jacobi rotation annihilating d(p, q).
        const double theta = (d(q, q) - d(p, p)) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (index_t k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (index_t k = 0; k < n; ++k) {
          const double dpk = d(p, k);
          const double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (index_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort descending by eigenvalue.
  std::vector<index_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](index_t x, index_t y) {
    return d(x, x) > d(y, y);
  });

  SymmetricEigen result;
  result.values.reserve(static_cast<std::size_t>(n));
  result.vectors = Matrix(n, n);
  for (index_t j = 0; j < n; ++j) {
    const index_t src = order[static_cast<std::size_t>(j)];
    result.values.push_back(d(src, src));
    for (index_t i = 0; i < n; ++i) {
      result.vectors(i, j) = v(i, src);
    }
  }
  return result;
}

}  // namespace mtk
