#include "src/tensor/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace mtk {

Matrix::Matrix(index_t rows, index_t cols, double init)
    : rows_(rows), cols_(cols) {
  MTK_CHECK(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative, "
            "got ", rows, "x", cols);
  data_.assign(static_cast<std::size_t>(checked_mul(rows, cols)), init);
}

void Matrix::set_zero() { std::fill(data_.begin(), data_.end(), 0.0); }

void Matrix::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

std::vector<double> Matrix::column_norms() const {
  std::vector<double> norms(static_cast<std::size_t>(cols_), 0.0);
  for (index_t i = 0; i < rows_; ++i) {
    const double* r = row(i);
    for (index_t j = 0; j < cols_; ++j) {
      norms[static_cast<std::size_t>(j)] += r[j] * r[j];
    }
  }
  for (double& n : norms) n = std::sqrt(n);
  return norms;
}

void Matrix::scale_columns_inv(const std::vector<double>& scale) {
  MTK_CHECK(static_cast<index_t>(scale.size()) == cols_,
            "scale vector length ", scale.size(), " != cols ", cols_);
  for (double s : scale) {
    MTK_CHECK(s != 0.0, "scale_columns_inv requires non-zero scales");
  }
  for (index_t i = 0; i < rows_; ++i) {
    double* r = row(i);
    for (index_t j = 0; j < cols_; ++j) {
      r[j] /= scale[static_cast<std::size_t>(j)];
    }
  }
}

void Matrix::scale_columns(const std::vector<double>& scale) {
  MTK_CHECK(static_cast<index_t>(scale.size()) == cols_,
            "scale vector length ", scale.size(), " != cols ", cols_);
  for (index_t i = 0; i < rows_; ++i) {
    double* r = row(i);
    for (index_t j = 0; j < cols_; ++j) {
      r[j] *= scale[static_cast<std::size_t>(j)];
    }
  }
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

double Matrix::max_abs() const {
  double acc = 0.0;
  for (double x : data_) acc = std::max(acc, std::fabs(x));
  return acc;
}

Matrix Matrix::random_uniform(index_t rows, index_t cols, Rng& rng, double lo,
                              double hi) {
  Matrix m(rows, cols);
  for (index_t i = 0; i < rows * cols; ++i) {
    m.data_[static_cast<std::size_t>(i)] = rng.uniform(lo, hi);
  }
  return m;
}

Matrix Matrix::random_normal(index_t rows, index_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (index_t i = 0; i < rows * cols; ++i) {
    m.data_[static_cast<std::size_t>(i)] = rng.normal();
  }
  return m;
}

Matrix Matrix::identity(index_t n) {
  Matrix m(n, n);
  for (index_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

namespace {
// Block edge for the GEMM microkernel; 64 doubles * 64 doubles per tile keeps
// the working set within L1/L2 on typical cores.
constexpr index_t kGemmBlock = 64;
}  // namespace

void gemm(const Matrix& a, const Matrix& b, Matrix& c, bool accumulate) {
  MTK_CHECK(a.cols() == b.rows(), "gemm inner dimension mismatch: ", a.cols(),
            " vs ", b.rows());
  MTK_CHECK(c.rows() == a.rows() && c.cols() == b.cols(),
            "gemm output shape mismatch: got ", c.rows(), "x", c.cols(),
            ", expected ", a.rows(), "x", b.cols());
  if (!accumulate) c.set_zero();
  const index_t m = a.rows(), k = a.cols(), n = b.cols();

#pragma omp parallel for schedule(static)
  for (index_t i0 = 0; i0 < m; i0 += kGemmBlock) {
    const index_t i1 = std::min(i0 + kGemmBlock, m);
    for (index_t l0 = 0; l0 < k; l0 += kGemmBlock) {
      const index_t l1 = std::min(l0 + kGemmBlock, k);
      for (index_t j0 = 0; j0 < n; j0 += kGemmBlock) {
        const index_t j1 = std::min(j0 + kGemmBlock, n);
        for (index_t i = i0; i < i1; ++i) {
          const double* arow = a.row(i);
          double* crow = c.row(i);
          for (index_t l = l0; l < l1; ++l) {
            const double av = arow[l];
            const double* brow = b.row(l);
            for (index_t j = j0; j < j1; ++j) {
              crow[j] += av * brow[j];
            }
          }
        }
      }
    }
  }
}

Matrix gram(const Matrix& a) {
  const index_t n = a.cols();
  Matrix g(n, n);
  // Accumulate upper triangle then mirror.
  for (index_t i = 0; i < a.rows(); ++i) {
    const double* r = a.row(i);
    for (index_t p = 0; p < n; ++p) {
      const double v = r[p];
      double* grow = g.row(p);
      for (index_t q = p; q < n; ++q) {
        grow[q] += v * r[q];
      }
    }
  }
  for (index_t p = 0; p < n; ++p) {
    for (index_t q = 0; q < p; ++q) {
      g(p, q) = g(q, p);
    }
  }
  return g;
}

Matrix gemm_tn(const Matrix& a, const Matrix& b) {
  MTK_CHECK(a.rows() == b.rows(), "gemm_tn row mismatch: ", a.rows(), " vs ",
            b.rows());
  Matrix c(a.cols(), b.cols());
  for (index_t i = 0; i < a.rows(); ++i) {
    const double* ar = a.row(i);
    const double* br = b.row(i);
    for (index_t p = 0; p < a.cols(); ++p) {
      const double v = ar[p];
      double* crow = c.row(p);
      for (index_t q = 0; q < b.cols(); ++q) {
        crow[q] += v * br[q];
      }
    }
  }
  return c;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  hadamard_inplace(c, b);
  return c;
}

void hadamard_inplace(Matrix& a, const Matrix& b) {
  MTK_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
            "hadamard shape mismatch: ", a.rows(), "x", a.cols(), " vs ",
            b.rows(), "x", b.cols());
  double* ad = a.data();
  const double* bd = b.data();
  for (index_t i = 0; i < a.size(); ++i) ad[i] *= bd[i];
}

namespace {

// In-place Cholesky factorization S = L L^T (lower triangle). Returns false
// if a non-positive pivot is met.
bool cholesky_inplace(Matrix& s) {
  const index_t n = s.rows();
  for (index_t j = 0; j < n; ++j) {
    double d = s(j, j);
    for (index_t p = 0; p < j; ++p) d -= s(j, p) * s(j, p);
    if (d <= 0.0) return false;
    const double ljj = std::sqrt(d);
    s(j, j) = ljj;
    for (index_t i = j + 1; i < n; ++i) {
      double v = s(i, j);
      for (index_t p = 0; p < j; ++p) v -= s(i, p) * s(j, p);
      s(i, j) = v / ljj;
    }
  }
  return true;
}

// Solves L L^T x = b in place for one right-hand side (b overwritten).
void cholesky_solve_vec(const Matrix& l, std::vector<double>& b) {
  const index_t n = l.rows();
  for (index_t i = 0; i < n; ++i) {  // forward substitution: L y = b
    double v = b[static_cast<std::size_t>(i)];
    for (index_t p = 0; p < i; ++p) v -= l(i, p) * b[static_cast<std::size_t>(p)];
    b[static_cast<std::size_t>(i)] = v / l(i, i);
  }
  for (index_t i = n - 1; i >= 0; --i) {  // backward: L^T x = y
    double v = b[static_cast<std::size_t>(i)];
    for (index_t p = i + 1; p < n; ++p) v -= l(p, i) * b[static_cast<std::size_t>(p)];
    b[static_cast<std::size_t>(i)] = v / l(i, i);
  }
}

}  // namespace

Matrix solve_spd_right(const Matrix& s, const Matrix& rhs) {
  MTK_CHECK(s.rows() == s.cols(), "solve_spd_right: S must be square, got ",
            s.rows(), "x", s.cols());
  MTK_CHECK(rhs.cols() == s.rows(), "solve_spd_right: rhs cols ", rhs.cols(),
            " != S order ", s.rows());
  const index_t n = s.rows();

  // Escalate jitter until Cholesky succeeds; the Gram-matrix products in
  // CP-ALS can be numerically semidefinite when factors are collinear.
  double scale = 0.0;
  for (index_t i = 0; i < n; ++i) scale = std::max(scale, std::fabs(s(i, i)));
  if (scale == 0.0) scale = 1.0;

  Matrix l = s;
  double jitter = 0.0;
  for (int attempt = 0; attempt < 40; ++attempt) {
    l = s;
    if (jitter > 0.0) {
      for (index_t i = 0; i < n; ++i) l(i, i) += jitter;
    }
    if (cholesky_inplace(l)) break;
    jitter = (jitter == 0.0) ? scale * 1e-14 : jitter * 10.0;
    MTK_REQUIRE(attempt < 39, "solve_spd_right: matrix is not positive "
                "definite even after jitter ", jitter);
  }

  Matrix x(rhs.rows(), rhs.cols());
  std::vector<double> b(static_cast<std::size_t>(n));
  for (index_t i = 0; i < rhs.rows(); ++i) {
    for (index_t j = 0; j < n; ++j) b[static_cast<std::size_t>(j)] = rhs(i, j);
    cholesky_solve_vec(l, b);
    for (index_t j = 0; j < n; ++j) x(i, j) = b[static_cast<std::size_t>(j)];
  }
  return x;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  MTK_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
            "max_abs_diff shape mismatch: ", a.rows(), "x", a.cols(), " vs ",
            b.rows(), "x", b.cols());
  double acc = 0.0;
  const double* ad = a.data();
  const double* bd = b.data();
  for (index_t i = 0; i < a.size(); ++i) {
    acc = std::max(acc, std::fabs(ad[i] - bd[i]));
  }
  return acc;
}

double dot(const Matrix& a, const Matrix& b) {
  MTK_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
            "dot shape mismatch: ", a.rows(), "x", a.cols(), " vs ", b.rows(),
            "x", b.cols());
  double acc = 0.0;
  const double* ad = a.data();
  const double* bd = b.data();
  for (index_t i = 0; i < a.size(); ++i) acc += ad[i] * bd[i];
  return acc;
}

}  // namespace mtk
