#include "src/tensor/block.hpp"

namespace mtk {

namespace {

void check_ranges(const shape_t& dims, const std::vector<Range>& r) {
  MTK_CHECK(r.size() == dims.size(), "block rank ", r.size(),
            " != tensor order ", dims.size());
  for (std::size_t k = 0; k < r.size(); ++k) {
    MTK_CHECK(r[k].lo >= 0 && r[k].lo < r[k].hi &&
                  r[k].hi <= dims[k],
              "block range [", r[k].lo, ", ", r[k].hi,
              ") invalid for extent ", dims[k], " in dimension ", k);
  }
}

}  // namespace

DenseTensor extract_block(const DenseTensor& x, const std::vector<Range>& r) {
  check_ranges(x.dims(), r);
  shape_t block_dims;
  multi_index_t lo, hi;
  for (const Range& rg : r) {
    block_dims.push_back(rg.length());
    lo.push_back(rg.lo);
    hi.push_back(rg.hi);
  }
  DenseTensor block(block_dims);
  index_t lin = 0;
  for (Odometer od(lo, hi); od.valid(); od.next()) {
    block[lin++] = x[linearize(od.index(), x.dims())];
  }
  return block;
}

void add_block(DenseTensor& x, const std::vector<Range>& r,
               const DenseTensor& block) {
  check_ranges(x.dims(), r);
  multi_index_t lo, hi;
  for (std::size_t k = 0; k < r.size(); ++k) {
    MTK_CHECK(block.dim(static_cast<int>(k)) == r[k].length(),
              "add_block: block extent mismatch in dimension ", k);
    lo.push_back(r[k].lo);
    hi.push_back(r[k].hi);
  }
  index_t lin = 0;
  for (Odometer od(lo, hi); od.valid(); od.next()) {
    x[linearize(od.index(), x.dims())] += block[lin++];
  }
}

Matrix extract_rows(const Matrix& m, Range r) {
  MTK_CHECK(r.lo >= 0 && r.lo < r.hi && r.hi <= m.rows(), "row range [",
            r.lo, ", ", r.hi, ") invalid for ", m.rows(), " rows");
  Matrix out(r.length(), m.cols());
  for (index_t i = 0; i < r.length(); ++i) {
    const double* src = m.row(r.lo + i);
    double* dst = out.row(i);
    for (index_t j = 0; j < m.cols(); ++j) dst[j] = src[j];
  }
  return out;
}

Matrix extract_submatrix(const Matrix& m, Range rr, Range cr) {
  MTK_CHECK(rr.lo >= 0 && rr.lo < rr.hi && rr.hi <= m.rows(),
            "row range [", rr.lo, ", ", rr.hi, ") invalid for ", m.rows(),
            " rows");
  MTK_CHECK(cr.lo >= 0 && cr.lo < cr.hi && cr.hi <= m.cols(),
            "column range [", cr.lo, ", ", cr.hi, ") invalid for ", m.cols(),
            " cols");
  Matrix out(rr.length(), cr.length());
  for (index_t i = 0; i < rr.length(); ++i) {
    const double* src = m.row(rr.lo + i);
    double* dst = out.row(i);
    for (index_t j = 0; j < cr.length(); ++j) dst[j] = src[cr.lo + j];
  }
  return out;
}

void add_rows(Matrix& m, Range r, const Matrix& rows) {
  MTK_CHECK(r.lo >= 0 && r.lo < r.hi && r.hi <= m.rows(), "row range [",
            r.lo, ", ", r.hi, ") invalid for ", m.rows(), " rows");
  MTK_CHECK(rows.rows() == r.length() && rows.cols() == m.cols(),
            "add_rows: block shape mismatch");
  for (index_t i = 0; i < r.length(); ++i) {
    const double* src = rows.row(i);
    double* dst = m.row(r.lo + i);
    for (index_t j = 0; j < m.cols(); ++j) dst[j] += src[j];
  }
}

void add_submatrix(Matrix& m, Range rr, Range cr, const Matrix& sub) {
  MTK_CHECK(sub.rows() == rr.length() && sub.cols() == cr.length(),
            "add_submatrix: block shape mismatch");
  MTK_CHECK(rr.hi <= m.rows() && cr.hi <= m.cols(),
            "add_submatrix: block exceeds matrix bounds");
  for (index_t i = 0; i < rr.length(); ++i) {
    const double* src = sub.row(i);
    double* dst = m.row(rr.lo + i);
    for (index_t j = 0; j < cr.length(); ++j) dst[cr.lo + j] += src[j];
  }
}

}  // namespace mtk
