// Mode-n matricization (unfolding), Kolda–Bader convention: X_(n) has
// dimensions I_n x (I / I_n), and column index j linearizes the remaining
// modes in ascending order, first remaining mode fastest. This matches the
// column-major tensor layout, so mode-0 matricization is a reshape.
#pragma once

#include "src/tensor/dense_tensor.hpp"
#include "src/tensor/matrix.hpp"

namespace mtk {

// Explicitly forms X_(n) as a dense row-major matrix (a permute-and-copy).
Matrix matricize(const DenseTensor& x, int mode);

// Maps a tensor multi-index to its (row, column) position in X_(n).
// Exposed separately so traces and tests can reason about the unfolding
// without materializing it.
struct UnfoldingCoord {
  index_t row;
  index_t col;
};
UnfoldingCoord unfolding_coord(const multi_index_t& idx, const shape_t& dims,
                               int mode);

// Inverse: reconstructs the tensor multi-index from (row, col) of X_(n).
multi_index_t unfolding_inverse(index_t row, index_t col, const shape_t& dims,
                                int mode);

// Folds a matricization back into a tensor (inverse of matricize).
DenseTensor fold(const Matrix& m, const shape_t& dims, int mode);

}  // namespace mtk
