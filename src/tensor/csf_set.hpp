// CsfSet: the multi-tree CSF layout a CP workload keeps for the life of the
// tensor, built once instead of once per MTTKRP call (the seed dispatch
// rebuilt `CsfTensor::from_coo(coo, mode)` on every kCsf call).
//
// Three policies, after SPLATT (Smith & Karypis):
//   kOnePerMode — N trees, tree k rooted at mode k. Every per-mode MTTKRP
//                 (the CP-ALS inner loop) hits the root-level owner-computes
//                 fast path: threads own disjoint output rows, no reduction.
//   kHybrid     — ceil(N/2) trees. Modes are sorted by dimension and paired
//                 smallest-with-largest; each pair shares one tree with the
//                 small mode pinned at the root and the large one at the
//                 leaf level, the two levels with owner-computes-friendly
//                 kernels. Halves the tree storage and build time of
//                 kOnePerMode at the cost of leaf-target traversals.
//   kSingle     — one tree rooted at the smallest mode. This is the layout
//                 the fused all-modes kernel (mttkrp_all_modes on a CsfSet,
//                 src/mttkrp/sparse_kernels.hpp) wants: one walk computes
//                 every B^(n) by memoizing each subtree's partial product —
//                 the sparse analogue of the dense dimension tree.
#pragma once

#include <vector>

#include "src/tensor/csf.hpp"
#include "src/tensor/sparse_tensor.hpp"

namespace mtk {

enum class CsfSetPolicy { kOnePerMode, kHybrid, kSingle };

const char* to_string(CsfSetPolicy policy);

class CsfSet {
 public:
  CsfSet() = default;

  // Builds the trees for `policy` from a sorted/deduped COO tensor.
  static CsfSet build(const SparseTensor& coo,
                      CsfSetPolicy policy = CsfSetPolicy::kOnePerMode);

  // Wraps an existing single tree (no compression) as a kSingle set; used
  // when the caller already holds CSF storage.
  static CsfSet adopt(CsfTensor tree);

  bool empty() const { return trees_.empty(); }
  CsfSetPolicy policy() const { return policy_; }
  int order() const { return empty() ? 0 : trees_.front().order(); }
  const shape_t& dims() const;
  index_t nnz() const { return empty() ? 0 : trees_.front().nnz(); }

  int tree_count() const { return static_cast<int>(trees_.size()); }
  const CsfTensor& tree(int i) const;

  // The tree serving `mode` under this policy (the one where `mode` sits at
  // the cheapest level: root for kOnePerMode, root or leaf for kHybrid, the
  // single tree for kSingle).
  const CsfTensor& tree_for(int mode) const;

  // Sum of per-tree storage; the kOnePerMode-vs-kHybrid trade-off.
  index_t storage_words() const;

 private:
  CsfSetPolicy policy_ = CsfSetPolicy::kOnePerMode;
  std::vector<CsfTensor> trees_;
  std::vector<int> tree_of_mode_;  // [order] -> index into trees_
};

}  // namespace mtk
