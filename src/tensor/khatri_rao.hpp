// Khatri-Rao product (column-wise Kronecker) of a list of matrices.
//
// Given matrices M_0 (I_0 x R), ..., M_{q-1} (I_{q-1} x R), the result K has
// dimensions (I_0 * ... * I_{q-1}) x R with
//   K(j, r) = prod_k M_k(i_k, r),   j = linearize((i_0..i_{q-1}), col-major),
// i.e. the *first* matrix's row index varies fastest. With factors passed in
// ascending mode order (mode n omitted), X_(n) * K is exactly the MTTKRP
// output of Definition 2.1.
#pragma once

#include <vector>

#include "src/tensor/matrix.hpp"

namespace mtk {

Matrix khatri_rao(const std::vector<const Matrix*>& matrices);
Matrix khatri_rao(const std::vector<Matrix>& matrices);

// Convenience: Khatri-Rao of all factors except `mode`, ascending order.
Matrix khatri_rao_skip(const std::vector<Matrix>& factors, int mode);

}  // namespace mtk
