#include "src/tensor/ttm.hpp"

#include "src/support/index.hpp"

namespace mtk {

DenseTensor ttm(const DenseTensor& x, const Matrix& u, int mode) {
  const int n = x.order();
  MTK_CHECK(mode >= 0 && mode < n, "ttm: mode ", mode,
            " out of range for order-", n, " tensor");
  MTK_CHECK(u.cols() == x.dim(mode), "ttm: matrix has ", u.cols(),
            " columns, expected ", x.dim(mode));
  MTK_CHECK(u.rows() >= 1, "ttm: matrix must have at least one row");

  shape_t out_dims = x.dims();
  out_dims[static_cast<std::size_t>(mode)] = u.rows();
  DenseTensor y(out_dims);

  // Column-major walk: linear index = left + stride_k * (i_k + I_k * right)
  // where `left` spans modes < k and `right` spans modes > k.
  const shape_t strides = col_major_strides(x.dims());
  const index_t stride_k = strides[static_cast<std::size_t>(mode)];
  const index_t ik = x.dim(mode);
  const index_t jk = u.rows();
  const index_t left = stride_k;  // product of extents below mode
  const index_t right = x.size() / (left * ik);

  const shape_t out_strides = col_major_strides(out_dims);
  const index_t out_stride_k = out_strides[static_cast<std::size_t>(mode)];

  for (index_t rgt = 0; rgt < right; ++rgt) {
    const index_t x_base = stride_k * ik * rgt;
    const index_t y_base = out_stride_k * jk * rgt;
    for (index_t i = 0; i < ik; ++i) {
      const double* xs = x.data() + x_base + stride_k * i;
      for (index_t j = 0; j < jk; ++j) {
        const double uji = u(j, i);
        if (uji == 0.0) continue;
        double* ys = y.data() + y_base + out_stride_k * j;
        for (index_t l = 0; l < left; ++l) {
          ys[l] += uji * xs[l];
        }
      }
    }
  }
  return y;
}

DenseTensor ttm_chain(const DenseTensor& x,
                      const std::vector<const Matrix*>& factors) {
  MTK_CHECK(static_cast<int>(factors.size()) == x.order(),
            "ttm_chain: expected ", x.order(), " factor slots, got ",
            factors.size());
  DenseTensor result = x;
  for (int k = 0; k < x.order(); ++k) {
    if (factors[static_cast<std::size_t>(k)] != nullptr) {
      result = ttm(result, *factors[static_cast<std::size_t>(k)], k);
    }
  }
  return result;
}

}  // namespace mtk
