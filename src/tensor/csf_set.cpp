#include "src/tensor/csf_set.hpp"

#include <algorithm>
#include <numeric>

namespace mtk {

const char* to_string(CsfSetPolicy policy) {
  switch (policy) {
    case CsfSetPolicy::kOnePerMode: return "one-per-mode";
    case CsfSetPolicy::kHybrid: return "hybrid";
    case CsfSetPolicy::kSingle: return "single";
  }
  return "unknown";
}

CsfSet CsfSet::build(const SparseTensor& coo, CsfSetPolicy policy) {
  const int n = coo.order();
  MTK_CHECK(n >= 1, "cannot build a CsfSet from an order-0 tensor");
  MTK_CHECK(coo.sorted(), "CsfSet::build requires sort_and_dedup() first");

  CsfSet set;
  set.policy_ = policy;
  set.tree_of_mode_.assign(static_cast<std::size_t>(n), 0);

  switch (policy) {
    case CsfSetPolicy::kOnePerMode: {
      set.trees_.reserve(static_cast<std::size_t>(n));
      for (int mode = 0; mode < n; ++mode) {
        set.trees_.push_back(CsfTensor::from_coo(coo, mode));
        set.tree_of_mode_[static_cast<std::size_t>(mode)] = mode;
      }
      break;
    }
    case CsfSetPolicy::kHybrid: {
      // Sort modes by dimension and pair smallest (root) with largest
      // (leaf); the SPLATT rooting heuristic applied pairwise. An odd
      // middle mode gets its own root-rooted tree.
      std::vector<int> by_dim(static_cast<std::size_t>(n));
      std::iota(by_dim.begin(), by_dim.end(), 0);
      std::stable_sort(by_dim.begin(), by_dim.end(), [&](int a, int b) {
        return coo.dim(a) < coo.dim(b);
      });
      for (int i = 0; 2 * i < n; ++i) {
        const int root = by_dim[static_cast<std::size_t>(i)];
        const int leaf = by_dim[static_cast<std::size_t>(n - 1 - i)];
        const int t = static_cast<int>(set.trees_.size());
        if (root == leaf) {  // odd middle mode
          set.trees_.push_back(CsfTensor::from_coo(coo, root));
          set.tree_of_mode_[static_cast<std::size_t>(root)] = t;
          break;
        }
        // Remaining modes keep the increasing-dimension order between the
        // pinned root and leaf.
        std::vector<int> order{root};
        for (int j = 0; j < n; ++j) {
          const int m = by_dim[static_cast<std::size_t>(j)];
          if (m != root && m != leaf) order.push_back(m);
        }
        order.push_back(leaf);
        set.trees_.push_back(CsfTensor::from_coo_ordered(coo, order));
        set.tree_of_mode_[static_cast<std::size_t>(root)] = t;
        set.tree_of_mode_[static_cast<std::size_t>(leaf)] = t;
      }
      break;
    }
    case CsfSetPolicy::kSingle: {
      set.trees_.push_back(CsfTensor::from_coo(coo, -1));
      break;
    }
  }
  return set;
}

CsfSet CsfSet::adopt(CsfTensor tree) {
  CsfSet set;
  set.policy_ = CsfSetPolicy::kSingle;
  set.tree_of_mode_.assign(static_cast<std::size_t>(tree.order()), 0);
  set.trees_.push_back(std::move(tree));
  return set;
}

const shape_t& CsfSet::dims() const {
  MTK_CHECK(!empty(), "CsfSet is empty");
  return trees_.front().dims();
}

const CsfTensor& CsfSet::tree(int i) const {
  MTK_CHECK(i >= 0 && i < tree_count(), "tree index ", i,
            " out of range for ", tree_count(), "-tree set");
  return trees_[static_cast<std::size_t>(i)];
}

const CsfTensor& CsfSet::tree_for(int mode) const {
  MTK_CHECK(!empty(), "CsfSet is empty");
  MTK_CHECK(mode >= 0 && mode < order(), "mode ", mode,
            " out of range for order-", order(), " set");
  return trees_[static_cast<std::size_t>(
      tree_of_mode_[static_cast<std::size_t>(mode)])];
}

index_t CsfSet::storage_words() const {
  index_t words = 0;
  for (const CsfTensor& t : trees_) words += t.storage_words();
  return words;
}

}  // namespace mtk
