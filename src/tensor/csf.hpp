// Compressed-sparse-fiber (CSF) storage, after SPLATT (Smith & Karypis):
// the nonzeros are arranged as a forest of depth-N paths, one tree level per
// tensor mode in a configurable `mode_order`, so coordinates shared by many
// nonzeros are stored (and their factor rows loaded) once per fiber instead
// of once per nonzero. Per-mode orderings are supported by rooting the tree
// at any mode (`from_coo(coo, root_mode)`); CP-ALS-style workloads can keep
// one tree per mode or use the generic any-mode MTTKRP kernel
// (src/mttkrp/dispatch.hpp) on a single tree.
//
// Level l holds node_count(l) fibers; fids(l)[f] is the mode-
// `mode_order[l]` coordinate of fiber f, and fptr(l)[f] .. fptr(l)[f+1]
// delimit its children at level l+1 (values at the leaf level N-1).
#pragma once

#include <vector>

#include "src/support/index.hpp"
#include "src/tensor/sparse_tensor.hpp"

namespace mtk {

class CsfTensor {
 public:
  CsfTensor() = default;

  // Compresses a sorted/deduped COO tensor. `root_mode` selects the level-0
  // mode (per-mode orderings); the remaining modes are ordered by increasing
  // dimension, the SPLATT heuristic that puts long, highly shared fibers
  // near the root. `root_mode == -1` picks the smallest-dimension mode.
  static CsfTensor from_coo(const SparseTensor& coo, int root_mode = -1);

  // Compression with a fully explicit level ordering (`mode_order[l]` is the
  // tensor mode stored at level l; must be a permutation of 0..N-1). The
  // hybrid CsfSet uses this to pin one mode at the root AND one at the leaf
  // level, so both get owner-computes kernels from a single tree.
  static CsfTensor from_coo_ordered(const SparseTensor& coo,
                                    std::vector<int> mode_order);

  int order() const { return static_cast<int>(dims_.size()); }
  const shape_t& dims() const { return dims_; }
  index_t dim(int k) const {
    MTK_CHECK(k >= 0 && k < order(), "dimension index ", k,
              " out of range for order-", order(), " tensor");
    return dims_[static_cast<std::size_t>(k)];
  }
  index_t nnz() const { return static_cast<index_t>(values_.size()); }

  // mode_order()[l] is the tensor mode stored at tree level l.
  const std::vector<int>& mode_order() const { return mode_order_; }
  // Tree level at which `mode` is stored (inverse of mode_order).
  int level_of_mode(int mode) const;

  index_t node_count(int level) const {
    return static_cast<index_t>(
        fids_[static_cast<std::size_t>(level)].size());
  }
  const std::vector<index_t>& fids(int level) const {
    return fids_[static_cast<std::size_t>(level)];
  }
  // Children ranges for levels 0 .. order()-2 (leaf nodes have no fptr).
  const std::vector<index_t>& fptr(int level) const {
    return fptr_[static_cast<std::size_t>(level)];
  }
  const std::vector<double>& values() const { return values_; }

  // Expands back to COO (sorted); used by tests and format conversions.
  SparseTensor to_coo() const;

  // Total index/pointer/value words stored — the compression the format
  // exists to provide; compare against 1 + order() words per COO nonzero.
  index_t storage_words() const;

  // Process-wide count of CSF compressions performed (every from_coo /
  // from_coo_ordered call increments it). Benchmarks and tests snapshot it
  // around CP-ALS sweeps to assert zero per-iteration tree rebuilds.
  static index_t build_count();

 private:
  shape_t dims_;
  std::vector<int> mode_order_;             // [order]
  std::vector<std::vector<index_t>> fids_;  // [order][nodes at level]
  std::vector<std::vector<index_t>> fptr_;  // [order-1][nodes at level + 1]
  std::vector<double> values_;              // [nnz], aligned with leaf fids
};

}  // namespace mtk
