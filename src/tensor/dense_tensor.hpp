// N-way dense tensor stored in column-major (first-index-fastest) order.
#pragma once

#include <functional>
#include <vector>

#include "src/support/index.hpp"
#include "src/support/rng.hpp"
#include "src/tensor/matrix.hpp"

namespace mtk {

class DenseTensor {
 public:
  DenseTensor() = default;
  explicit DenseTensor(shape_t dims, double init = 0.0);

  int order() const { return static_cast<int>(dims_.size()); }
  const shape_t& dims() const { return dims_; }
  index_t dim(int k) const {
    MTK_CHECK(k >= 0 && k < order(), "dimension index ", k,
              " out of range for order-", order(), " tensor");
    return dims_[static_cast<std::size_t>(k)];
  }
  index_t size() const { return static_cast<index_t>(data_.size()); }

  double& operator[](index_t lin) {
    MTK_ASSERT(lin >= 0 && lin < size(), "linear index ", lin,
               " out of bounds for tensor of size ", size());
    return data_[static_cast<std::size_t>(lin)];
  }
  double operator[](index_t lin) const {
    MTK_ASSERT(lin >= 0 && lin < size(), "linear index ", lin,
               " out of bounds for tensor of size ", size());
    return data_[static_cast<std::size_t>(lin)];
  }

  double& at(const multi_index_t& idx) { return (*this)[linearize(idx, dims_)]; }
  double at(const multi_index_t& idx) const {
    return (*this)[linearize(idx, dims_)];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  void set_zero();
  double frobenius_norm() const;
  double max_abs_diff(const DenseTensor& other) const;

  // Fills entries from a generator invoked with each multi-index.
  void fill_from(const std::function<double(const multi_index_t&)>& gen);

  static DenseTensor random_uniform(const shape_t& dims, Rng& rng,
                                    double lo = 0.0, double hi = 1.0);
  static DenseTensor random_normal(const shape_t& dims, Rng& rng);

  // Builds the rank-R tensor Σ_r λ_r a^(1)_r ∘ ... ∘ a^(N)_r from factor
  // matrices (the CP model of Eq. (1)); used to make synthetic low-rank data.
  static DenseTensor from_cp(const std::vector<Matrix>& factors,
                             const std::vector<double>& lambda);

 private:
  shape_t dims_;
  std::vector<double> data_;
};

}  // namespace mtk
