// N-way sparse tensor in coordinate (COO) format: one index array per mode
// plus a value array, kept sorted in lexicographic order (mode 0 most
// significant) with duplicate coordinates summed. This is the interchange
// format of the storage-backend layer — FROSTT `.tns` files load into it,
// dense tensors convert to and from it, and the compressed-sparse-fiber
// format (src/tensor/csf.hpp) is built from it.
#pragma once

#include <vector>

#include "src/support/index.hpp"
#include "src/support/rng.hpp"
#include "src/tensor/dense_tensor.hpp"

namespace mtk {

class SparseTensor {
 public:
  SparseTensor() = default;
  explicit SparseTensor(shape_t dims);

  int order() const { return static_cast<int>(dims_.size()); }
  const shape_t& dims() const { return dims_; }
  index_t dim(int k) const {
    MTK_CHECK(k >= 0 && k < order(), "dimension index ", k,
              " out of range for order-", order(), " tensor");
    return dims_[static_cast<std::size_t>(k)];
  }
  index_t nnz() const { return static_cast<index_t>(values_.size()); }
  bool sorted() const { return sorted_; }

  // Coordinate of nonzero p along `mode` (struct-of-arrays layout).
  index_t index(int mode, index_t p) const {
    return indices_[static_cast<std::size_t>(mode)][static_cast<std::size_t>(p)];
  }
  double value(index_t p) const { return values_[static_cast<std::size_t>(p)]; }

  // Raw per-mode index array (length nnz) and value array, for kernels.
  const std::vector<index_t>& mode_indices(int mode) const {
    MTK_CHECK(mode >= 0 && mode < order(), "mode ", mode, " out of range");
    return indices_[static_cast<std::size_t>(mode)];
  }
  const std::vector<double>& values() const { return values_; }

  multi_index_t coordinate(index_t p) const;

  // Appends an entry (bounds-checked); marks the tensor unsorted. Call
  // sort_and_dedup() before handing the tensor to a kernel.
  void push_back(const multi_index_t& idx, double value);

  // Sorts entries lexicographically (mode 0 most significant), sums entries
  // with identical coordinates, and drops entries whose summed value is
  // exactly zero. Idempotent.
  void sort_and_dedup();

  void set_zero() {
    for (auto& ind : indices_) ind.clear();
    values_.clear();
    sorted_ = true;
  }

  double frobenius_norm() const;

  // Dense <-> sparse conversion. `from_dense` keeps entries with
  // |x| > threshold (default: keep exact nonzeros).
  static SparseTensor from_dense(const DenseTensor& x, double threshold = 0.0);
  DenseTensor to_dense() const;

  // Random tensor with ~density * prod(dims) nonzeros at distinct uniform
  // coordinates and standard-normal values. Deterministic given the Rng.
  static SparseTensor random_sparse(const shape_t& dims, double density,
                                    Rng& rng);

  // FROSTT-like synthetic tensor: each mode-k coordinate is drawn with
  // probability proportional to 1/(i+1)^skew, so skew = 0 is uniform and
  // larger values concentrate nonzeros near low indices (the hub-and-tail
  // slice profile of real datasets). Coordinate collisions are summed by
  // sort_and_dedup, so at high skew the final nnz can land below the
  // ~density * prod(dims) target. Deterministic given the Rng.
  static SparseTensor random_sparse_skewed(const shape_t& dims, double density,
                                           double skew, Rng& rng);

 private:
  shape_t dims_;
  std::vector<std::vector<index_t>> indices_;  // [order][nnz]
  std::vector<double> values_;                 // [nnz]
  bool sorted_ = true;
};

}  // namespace mtk
