// Rectangular block extraction/insertion for tensors and row-ranges for
// matrices. The parallel algorithms distribute data as blocks; the blocked
// sequential algorithm iterates over blocks. Blocks are extracted by copy —
// the copies model the load of a block into fast/local memory.
#pragma once

#include "src/tensor/dense_tensor.hpp"
#include "src/tensor/matrix.hpp"

namespace mtk {

// Half-open index range [lo, hi) in one dimension.
struct Range {
  index_t lo = 0;
  index_t hi = 0;
  index_t length() const { return hi - lo; }
};

// Extracts the subtensor X(lo_1:hi_1, ..., lo_N:hi_N).
DenseTensor extract_block(const DenseTensor& x, const std::vector<Range>& r);

// Adds `block` into X at offset lo (used to reassemble distributed results).
void add_block(DenseTensor& x, const std::vector<Range>& r,
               const DenseTensor& block);

// Extracts rows [r.lo, r.hi) of a matrix.
Matrix extract_rows(const Matrix& m, Range r);

// Extracts the intersection of rows [rr.lo,rr.hi) and columns [cr.lo,cr.hi).
Matrix extract_submatrix(const Matrix& m, Range rr, Range cr);

// Adds `rows` into m starting at row r.lo.
void add_rows(Matrix& m, Range r, const Matrix& rows);

// Adds `sub` into m at row offset rr.lo, column offset cr.lo.
void add_submatrix(Matrix& m, Range rr, Range cr, const Matrix& sub);

}  // namespace mtk
