#include "src/tensor/sparse_tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace mtk {

SparseTensor::SparseTensor(shape_t dims) : dims_(std::move(dims)) {
  check_shape(dims_);
  indices_.resize(dims_.size());
}

multi_index_t SparseTensor::coordinate(index_t p) const {
  MTK_CHECK(p >= 0 && p < nnz(), "nonzero index ", p,
            " out of range for nnz ", nnz());
  multi_index_t idx(dims_.size());
  for (std::size_t k = 0; k < dims_.size(); ++k) {
    idx[k] = indices_[k][static_cast<std::size_t>(p)];
  }
  return idx;
}

void SparseTensor::push_back(const multi_index_t& idx, double value) {
  MTK_CHECK(idx.size() == dims_.size(), "coordinate has ", idx.size(),
            " components, expected ", dims_.size());
  for (std::size_t k = 0; k < dims_.size(); ++k) {
    MTK_CHECK(idx[k] >= 0 && idx[k] < dims_[k], "coordinate ", idx[k],
              " out of range [0, ", dims_[k], ") in mode ", k);
    indices_[k].push_back(idx[k]);
  }
  values_.push_back(value);
  sorted_ = false;
}

void SparseTensor::sort_and_dedup() {
  if (sorted_) return;
  const int n = order();
  const std::size_t count = values_.size();

  // Sort a permutation of nonzero positions, then apply it; the
  // struct-of-arrays layout never materializes per-entry tuples.
  std::vector<index_t> perm(count);
  std::iota(perm.begin(), perm.end(), index_t{0});
  std::sort(perm.begin(), perm.end(), [&](index_t a, index_t b) {
    for (int k = 0; k < n; ++k) {
      const auto& ind = indices_[static_cast<std::size_t>(k)];
      const index_t ia = ind[static_cast<std::size_t>(a)];
      const index_t ib = ind[static_cast<std::size_t>(b)];
      if (ia != ib) return ia < ib;
    }
    return false;
  });

  std::vector<std::vector<index_t>> new_indices(static_cast<std::size_t>(n));
  std::vector<double> new_values;
  new_values.reserve(count);
  for (auto& ind : new_indices) ind.reserve(count);

  auto same_coord = [&](index_t p, std::size_t back) {
    for (int k = 0; k < n; ++k) {
      const auto& src = indices_[static_cast<std::size_t>(k)];
      if (src[static_cast<std::size_t>(p)] !=
          new_indices[static_cast<std::size_t>(k)][back]) {
        return false;
      }
    }
    return true;
  };

  for (std::size_t i = 0; i < count; ++i) {
    const index_t p = perm[i];
    if (!new_values.empty() && same_coord(p, new_values.size() - 1)) {
      new_values.back() += values_[static_cast<std::size_t>(p)];
      continue;
    }
    for (int k = 0; k < n; ++k) {
      new_indices[static_cast<std::size_t>(k)].push_back(
          indices_[static_cast<std::size_t>(k)][static_cast<std::size_t>(p)]);
    }
    new_values.push_back(values_[static_cast<std::size_t>(p)]);
  }

  // Drop entries that cancelled to exactly zero (e.g. +v and -v duplicates).
  std::size_t keep = 0;
  for (std::size_t i = 0; i < new_values.size(); ++i) {
    if (new_values[i] == 0.0) continue;
    if (keep != i) {
      for (int k = 0; k < n; ++k) {
        new_indices[static_cast<std::size_t>(k)][keep] =
            new_indices[static_cast<std::size_t>(k)][i];
      }
      new_values[keep] = new_values[i];
    }
    ++keep;
  }
  for (auto& ind : new_indices) ind.resize(keep);
  new_values.resize(keep);

  indices_ = std::move(new_indices);
  values_ = std::move(new_values);
  sorted_ = true;
}

double SparseTensor::frobenius_norm() const {
  // Correct only post-dedup (duplicates must be summed, not squared apart).
  MTK_CHECK(sorted_, "frobenius_norm requires sort_and_dedup() first");
  double acc = 0.0;
  for (double v : values_) acc += v * v;
  return std::sqrt(acc);
}

SparseTensor SparseTensor::from_dense(const DenseTensor& x, double threshold) {
  MTK_CHECK(threshold >= 0.0, "threshold must be non-negative, got ",
            threshold);
  SparseTensor s(x.dims());
  index_t lin = 0;
  for (Odometer od(x.dims()); od.valid(); od.next()) {
    const double v = x[lin++];
    if (std::fabs(v) > threshold || (threshold == 0.0 && v != 0.0)) {
      s.push_back(od.index(), v);
    }
  }
  // Dense traversal is column-major (mode 0 fastest), which is *not* the COO
  // sort order (mode 0 most significant), so sort explicitly.
  s.sort_and_dedup();
  return s;
}

DenseTensor SparseTensor::to_dense() const {
  DenseTensor x(dims_);
  const shape_t strides = col_major_strides(dims_);
  for (index_t p = 0; p < nnz(); ++p) {
    index_t lin = 0;
    for (int k = 0; k < order(); ++k) {
      lin += index(k, p) * strides[static_cast<std::size_t>(k)];
    }
    x[lin] += value(p);  // += so un-deduped tensors densify correctly
  }
  return x;
}

SparseTensor SparseTensor::random_sparse(const shape_t& dims, double density,
                                         Rng& rng) {
  check_shape(dims);
  MTK_CHECK(density > 0.0 && density <= 1.0, "density must be in (0, 1], got ",
            density);
  const index_t total = shape_size(dims);
  const index_t target =
      std::max<index_t>(1, static_cast<index_t>(
                               std::llround(density * static_cast<double>(total))));

  // Sample linear positions without replacement. Dense targets shuffle the
  // full index range; sparse targets draw batches of candidates and dedup
  // until enough distinct positions accumulate (expected O(1) rounds at
  // density <= 1/2).
  std::vector<index_t> positions;
  if (2 * target > total) {
    positions.resize(static_cast<std::size_t>(total));
    std::iota(positions.begin(), positions.end(), index_t{0});
    std::shuffle(positions.begin(), positions.end(), rng.engine());
    positions.resize(static_cast<std::size_t>(target));
  } else {
    positions.reserve(static_cast<std::size_t>(target) + 16);
    while (static_cast<index_t>(positions.size()) < target) {
      const index_t missing = target - static_cast<index_t>(positions.size());
      for (index_t i = 0; i < missing + missing / 8 + 8; ++i) {
        positions.push_back(rng.uniform_int(0, total - 1));
      }
      std::sort(positions.begin(), positions.end());
      positions.erase(std::unique(positions.begin(), positions.end()),
                      positions.end());
    }
    // Over-drawn positions are discarded *after* a shuffle so the kept
    // subset is unbiased.
    std::shuffle(positions.begin(), positions.end(), rng.engine());
    positions.resize(static_cast<std::size_t>(target));
  }

  SparseTensor s(dims);
  for (index_t lin : positions) {
    double v = rng.normal();
    if (v == 0.0) v = 1.0;
    s.push_back(delinearize(lin, dims), v);
  }
  s.sort_and_dedup();
  return s;
}

SparseTensor SparseTensor::random_sparse_skewed(const shape_t& dims,
                                                double density, double skew,
                                                Rng& rng) {
  check_shape(dims);
  MTK_CHECK(density > 0.0 && density <= 1.0, "density must be in (0, 1], got ",
            density);
  MTK_CHECK(skew >= 0.0, "skew must be >= 0, got ", skew);
  const index_t total = shape_size(dims);
  const index_t target =
      std::max<index_t>(1, static_cast<index_t>(std::llround(
                               density * static_cast<double>(total))));

  // Per-mode cumulative weights for inverse-CDF sampling of the power law.
  std::vector<std::vector<double>> cumulative(dims.size());
  for (std::size_t k = 0; k < dims.size(); ++k) {
    cumulative[k].reserve(static_cast<std::size_t>(dims[k]));
    double sum = 0.0;
    for (index_t i = 0; i < dims[k]; ++i) {
      sum += std::pow(static_cast<double>(i + 1), -skew);
      cumulative[k].push_back(sum);
    }
  }

  SparseTensor s(dims);
  multi_index_t idx(dims.size());
  for (index_t q = 0; q < target; ++q) {
    for (std::size_t k = 0; k < dims.size(); ++k) {
      const std::vector<double>& cum = cumulative[k];
      const double u = rng.uniform(0.0, cum.back());
      idx[k] = static_cast<index_t>(
          std::upper_bound(cum.begin(), cum.end(), u) - cum.begin());
      if (idx[k] >= dims[k]) idx[k] = dims[k] - 1;  // u == cum.back() edge
    }
    double v = rng.normal();
    if (v == 0.0) v = 1.0;
    s.push_back(idx, v);
  }
  s.sort_and_dedup();
  // Summed collisions can cancel to exactly zero and be dropped; keep the
  // tensor non-empty for downstream kernels.
  if (s.nnz() == 0) {
    idx.assign(dims.size(), 0);
    s.push_back(idx, 1.0);
    s.sort_and_dedup();
  }
  return s;
}

}  // namespace mtk
