#include "src/tensor/dense_tensor.hpp"

#include <cmath>

namespace mtk {

DenseTensor::DenseTensor(shape_t dims, double init) : dims_(std::move(dims)) {
  check_shape(dims_);
  data_.assign(static_cast<std::size_t>(shape_size(dims_)), init);
}

void DenseTensor::set_zero() {
  std::fill(data_.begin(), data_.end(), 0.0);
}

double DenseTensor::frobenius_norm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

double DenseTensor::max_abs_diff(const DenseTensor& other) const {
  MTK_CHECK(dims_ == other.dims_, "max_abs_diff: tensor shape mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    acc = std::max(acc, std::fabs(data_[i] - other.data_[i]));
  }
  return acc;
}

void DenseTensor::fill_from(
    const std::function<double(const multi_index_t&)>& gen) {
  index_t lin = 0;
  for (Odometer od(dims_); od.valid(); od.next()) {
    data_[static_cast<std::size_t>(lin++)] = gen(od.index());
  }
}

DenseTensor DenseTensor::random_uniform(const shape_t& dims, Rng& rng,
                                        double lo, double hi) {
  DenseTensor t(dims);
  rng.fill_uniform(t.data_, lo, hi);
  return t;
}

DenseTensor DenseTensor::random_normal(const shape_t& dims, Rng& rng) {
  DenseTensor t(dims);
  rng.fill_normal(t.data_);
  return t;
}

DenseTensor DenseTensor::from_cp(const std::vector<Matrix>& factors,
                                 const std::vector<double>& lambda) {
  MTK_CHECK(!factors.empty(), "from_cp requires at least one factor matrix");
  const index_t rank = factors.front().cols();
  MTK_CHECK(static_cast<index_t>(lambda.size()) == rank,
            "from_cp: lambda length ", lambda.size(), " != rank ", rank);
  shape_t dims;
  for (std::size_t k = 0; k < factors.size(); ++k) {
    MTK_CHECK(factors[k].cols() == rank, "from_cp: factor ", k, " has ",
              factors[k].cols(), " columns, expected ", rank);
    dims.push_back(factors[k].rows());
  }
  DenseTensor t(dims);
  index_t lin = 0;
  for (Odometer od(dims); od.valid(); od.next()) {
    const multi_index_t& idx = od.index();
    double value = 0.0;
    for (index_t r = 0; r < rank; ++r) {
      double prod = lambda[static_cast<std::size_t>(r)];
      for (std::size_t k = 0; k < factors.size(); ++k) {
        prod *= factors[k](idx[k], r);
      }
      value += prod;
    }
    t[lin++] = value;
  }
  return t;
}

}  // namespace mtk
