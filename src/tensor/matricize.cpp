#include "src/tensor/matricize.hpp"

namespace mtk {

namespace {

void check_mode(const shape_t& dims, int mode) {
  MTK_CHECK(mode >= 0 && mode < static_cast<int>(dims.size()),
            "mode ", mode, " out of range for order-", dims.size(),
            " tensor");
}

// Shape of the remaining modes, ascending, with `mode` removed.
shape_t remaining_dims(const shape_t& dims, int mode) {
  shape_t rest;
  rest.reserve(dims.size() - 1);
  for (int k = 0; k < static_cast<int>(dims.size()); ++k) {
    if (k != mode) rest.push_back(dims[static_cast<std::size_t>(k)]);
  }
  return rest;
}

}  // namespace

UnfoldingCoord unfolding_coord(const multi_index_t& idx, const shape_t& dims,
                               int mode) {
  check_mode(dims, mode);
  MTK_CHECK(idx.size() == dims.size(), "index rank mismatch in "
            "unfolding_coord: ", idx.size(), " vs ", dims.size());
  index_t col = 0;
  index_t stride = 1;
  for (int k = 0; k < static_cast<int>(dims.size()); ++k) {
    if (k == mode) continue;
    col += idx[static_cast<std::size_t>(k)] * stride;
    stride = checked_mul(stride, dims[static_cast<std::size_t>(k)]);
  }
  return {idx[static_cast<std::size_t>(mode)], col};
}

multi_index_t unfolding_inverse(index_t row, index_t col, const shape_t& dims,
                                int mode) {
  check_mode(dims, mode);
  const shape_t rest = remaining_dims(dims, mode);
  MTK_CHECK(row >= 0 && row < dims[static_cast<std::size_t>(mode)],
            "unfolding row ", row, " out of bounds");
  const multi_index_t rest_idx = delinearize(col, rest);
  multi_index_t idx(dims.size());
  std::size_t pos = 0;
  for (int k = 0; k < static_cast<int>(dims.size()); ++k) {
    if (k == mode) {
      idx[static_cast<std::size_t>(k)] = row;
    } else {
      idx[static_cast<std::size_t>(k)] = rest_idx[pos++];
    }
  }
  return idx;
}

Matrix matricize(const DenseTensor& x, int mode) {
  check_mode(x.dims(), mode);
  const shape_t& dims = x.dims();
  const index_t in = dims[static_cast<std::size_t>(mode)];
  const index_t jn = x.size() / in;
  Matrix m(in, jn);
  // Walk the tensor once in storage order; compute (row, col) incrementally
  // would be faster, but a single multi-index pass keeps this obviously
  // correct and it is not on any benchmarked path.
  index_t lin = 0;
  for (Odometer od(dims); od.valid(); od.next()) {
    const UnfoldingCoord rc = unfolding_coord(od.index(), dims, mode);
    m(rc.row, rc.col) = x[lin++];
  }
  return m;
}

DenseTensor fold(const Matrix& m, const shape_t& dims, int mode) {
  check_mode(dims, mode);
  const index_t in = dims[static_cast<std::size_t>(mode)];
  MTK_CHECK(m.rows() == in, "fold: matrix has ", m.rows(),
            " rows, expected ", in);
  MTK_CHECK(m.cols() == shape_size(dims) / in, "fold: matrix has ", m.cols(),
            " cols, expected ", shape_size(dims) / in);
  DenseTensor x(dims);
  index_t lin = 0;
  for (Odometer od(dims); od.valid(); od.next()) {
    const UnfoldingCoord rc = unfolding_coord(od.index(), dims, mode);
    x[lin++] = m(rc.row, rc.col);
  }
  return x;
}

}  // namespace mtk
