#include "src/tensor/csf.hpp"

#include <algorithm>
#include <numeric>

#include "src/obs/metrics.hpp"

namespace mtk {

namespace {

// Lives on the MetricsRegistry so CSF (re)build pressure shows up in
// metrics snapshots; build_count() stays as the legacy accessor.
Counter& csf_build_counter() {
  static Counter& c = MetricsRegistry::global().counter("mtk.csf.builds");
  return c;
}

}  // namespace

index_t CsfTensor::build_count() { return csf_build_counter().value(); }

int CsfTensor::level_of_mode(int mode) const {
  MTK_CHECK(mode >= 0 && mode < order(), "mode ", mode,
            " out of range for order-", order(), " tensor");
  for (int l = 0; l < order(); ++l) {
    if (mode_order_[static_cast<std::size_t>(l)] == mode) return l;
  }
  MTK_ASSERT(false, "mode_order is not a permutation");
  return -1;
}

CsfTensor CsfTensor::from_coo(const SparseTensor& coo, int root_mode) {
  const int n = coo.order();
  MTK_CHECK(n >= 1, "cannot build CSF from an order-0 tensor");
  MTK_CHECK(root_mode >= -1 && root_mode < n, "root mode ", root_mode,
            " out of range for order-", n, " tensor");

  // Mode order: requested root first, remaining modes by increasing
  // dimension (ties broken by mode number for determinism).
  std::vector<int> rest;
  for (int k = 0; k < n; ++k) {
    if (k != root_mode) rest.push_back(k);
  }
  std::stable_sort(rest.begin(), rest.end(), [&](int a, int b) {
    return coo.dim(a) < coo.dim(b);
  });
  std::vector<int> order;
  if (root_mode >= 0) order.push_back(root_mode);
  order.insert(order.end(), rest.begin(), rest.end());
  return from_coo_ordered(coo, std::move(order));
}

CsfTensor CsfTensor::from_coo_ordered(const SparseTensor& coo,
                                      std::vector<int> mode_order) {
  const int n = coo.order();
  MTK_CHECK(n >= 1, "cannot build CSF from an order-0 tensor");
  MTK_CHECK(coo.sorted(), "from_coo requires sort_and_dedup() first");
  MTK_CHECK(static_cast<int>(mode_order.size()) == n,
            "mode order has ", mode_order.size(), " entries for order-", n,
            " tensor");
  {
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    for (int k : mode_order) {
      MTK_CHECK(k >= 0 && k < n && !seen[static_cast<std::size_t>(k)],
                "mode order is not a permutation of 0..", n - 1);
      seen[static_cast<std::size_t>(k)] = true;
    }
  }
  csf_build_counter().add();

  CsfTensor csf;
  csf.dims_ = coo.dims();
  csf.mode_order_ = std::move(mode_order);

  // Sort nonzero positions lexicographically in the permuted mode order.
  const index_t count = coo.nnz();
  std::vector<index_t> perm(static_cast<std::size_t>(count));
  std::iota(perm.begin(), perm.end(), index_t{0});
  std::sort(perm.begin(), perm.end(), [&](index_t a, index_t b) {
    for (int l = 0; l < n; ++l) {
      const int k = csf.mode_order_[static_cast<std::size_t>(l)];
      const index_t ia = coo.index(k, a);
      const index_t ib = coo.index(k, b);
      if (ia != ib) return ia < ib;
    }
    return false;
  });

  csf.fids_.resize(static_cast<std::size_t>(n));
  csf.fptr_.resize(static_cast<std::size_t>(n > 0 ? n - 1 : 0));
  csf.values_.reserve(static_cast<std::size_t>(count));

  for (index_t i = 0; i < count; ++i) {
    const index_t p = perm[static_cast<std::size_t>(i)];
    // Highest level whose coordinate differs from the previous path opens a
    // new fiber there and at every deeper level.
    int split = 0;
    if (i > 0) {
      const index_t q = perm[static_cast<std::size_t>(i - 1)];
      split = n;
      for (int l = 0; l < n; ++l) {
        const int k = csf.mode_order_[static_cast<std::size_t>(l)];
        if (coo.index(k, p) != coo.index(k, q)) {
          split = l;
          break;
        }
      }
      MTK_ASSERT(split < n, "duplicate coordinate in deduped COO tensor");
    }
    for (int l = split; l < n; ++l) {
      const int k = csf.mode_order_[static_cast<std::size_t>(l)];
      auto& fids = csf.fids_[static_cast<std::size_t>(l)];
      if (l < n - 1) {
        // Child range starts at the next level's current node count.
        csf.fptr_[static_cast<std::size_t>(l)].push_back(
            static_cast<index_t>(csf.fids_[static_cast<std::size_t>(l + 1)].size()));
      }
      fids.push_back(coo.index(k, p));
    }
    csf.values_.push_back(coo.value(p));
  }

  // Close every fptr array with a sentinel so fiber f spans
  // [fptr[f], fptr[f+1]).
  for (int l = 0; l + 1 < n; ++l) {
    csf.fptr_[static_cast<std::size_t>(l)].push_back(
        static_cast<index_t>(csf.fids_[static_cast<std::size_t>(l + 1)].size()));
  }
  return csf;
}

SparseTensor CsfTensor::to_coo() const {
  const int n = order();
  SparseTensor coo(dims_);
  if (n == 0 || nnz() == 0) return coo;

  // Walk every root-to-leaf path; `stack[l]` is the current fiber at level l
  // and `ends[l]` the end of its sibling range.
  multi_index_t idx(static_cast<std::size_t>(n));
  std::vector<index_t> node(static_cast<std::size_t>(n));
  for (index_t root = 0; root < node_count(0); ++root) {
    node[0] = root;
    int l = 0;
    // Depth-first expansion without recursion: descend to the leaf, emit,
    // then advance the deepest unfinished level.
    std::vector<index_t> end(static_cast<std::size_t>(n));
    end[0] = root + 1;
    while (true) {
      idx[static_cast<std::size_t>(mode_order_[static_cast<std::size_t>(l)])] =
          fids(l)[static_cast<std::size_t>(node[static_cast<std::size_t>(l)])];
      if (l < n - 1) {
        end[static_cast<std::size_t>(l + 1)] =
            fptr(l)[static_cast<std::size_t>(node[static_cast<std::size_t>(l)]) + 1];
        node[static_cast<std::size_t>(l + 1)] =
            fptr(l)[static_cast<std::size_t>(node[static_cast<std::size_t>(l)])];
        ++l;
        continue;
      }
      coo.push_back(idx, values_[static_cast<std::size_t>(
                             node[static_cast<std::size_t>(l)])]);
      // Advance: bump the deepest level with remaining siblings.
      while (l > 0 &&
             node[static_cast<std::size_t>(l)] + 1 >=
                 end[static_cast<std::size_t>(l)]) {
        --l;
      }
      if (l == 0) break;
      ++node[static_cast<std::size_t>(l)];
    }
  }
  coo.sort_and_dedup();
  return coo;
}

index_t CsfTensor::storage_words() const {
  index_t words = static_cast<index_t>(values_.size());
  for (const auto& fids : fids_) words += static_cast<index_t>(fids.size());
  for (const auto& fptr : fptr_) words += static_cast<index_t>(fptr.size());
  return words;
}

}  // namespace mtk
