// Mode-k tensor-times-matrix (TTM): Y = X x_k U, where U is J x I_k and
// the result has mode-k extent J:
//   Y(i_1, .., j, .., i_N) = sum_{i_k} U(j, i_k) X(i_1, .., i_k, .., i_N).
// The kernel behind Tucker decompositions (Section VII's "extensions ...
// for computing Tucker"), and a useful substrate in its own right.
#pragma once

#include "src/tensor/dense_tensor.hpp"
#include "src/tensor/matrix.hpp"

namespace mtk {

DenseTensor ttm(const DenseTensor& x, const Matrix& u, int mode);

// Chains TTMs over several modes (ascending application order; each entry
// of `factors` multiplies its own mode; null entries are skipped).
DenseTensor ttm_chain(const DenseTensor& x,
                      const std::vector<const Matrix*>& factors);

}  // namespace mtk
