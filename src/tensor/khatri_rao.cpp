#include "src/tensor/khatri_rao.hpp"

#include "src/support/index.hpp"

namespace mtk {

Matrix khatri_rao(const std::vector<const Matrix*>& matrices) {
  MTK_CHECK(!matrices.empty(), "khatri_rao requires at least one matrix");
  const index_t rank = matrices.front()->cols();
  shape_t row_dims;
  for (std::size_t k = 0; k < matrices.size(); ++k) {
    MTK_CHECK(matrices[k] != nullptr, "khatri_rao: null matrix pointer at ",
              k);
    MTK_CHECK(matrices[k]->cols() == rank, "khatri_rao: matrix ", k, " has ",
              matrices[k]->cols(), " columns, expected ", rank);
    row_dims.push_back(matrices[k]->rows());
  }
  Matrix result(shape_size(row_dims), rank);
  index_t j = 0;
  for (Odometer od(row_dims); od.valid(); od.next()) {
    const multi_index_t& idx = od.index();
    double* out = result.row(j++);
    const double* first = matrices[0]->row(idx[0]);
    for (index_t r = 0; r < rank; ++r) out[r] = first[r];
    for (std::size_t k = 1; k < matrices.size(); ++k) {
      const double* mk = matrices[k]->row(idx[k]);
      for (index_t r = 0; r < rank; ++r) out[r] *= mk[r];
    }
  }
  return result;
}

Matrix khatri_rao(const std::vector<Matrix>& matrices) {
  std::vector<const Matrix*> ptrs;
  ptrs.reserve(matrices.size());
  for (const Matrix& m : matrices) ptrs.push_back(&m);
  return khatri_rao(ptrs);
}

Matrix khatri_rao_skip(const std::vector<Matrix>& factors, int mode) {
  MTK_CHECK(mode >= 0 && mode < static_cast<int>(factors.size()),
            "khatri_rao_skip: mode ", mode, " out of range for ",
            factors.size(), " factors");
  MTK_CHECK(factors.size() >= 2, "khatri_rao_skip needs at least 2 factors");
  std::vector<const Matrix*> ptrs;
  for (int k = 0; k < static_cast<int>(factors.size()); ++k) {
    if (k != mode) ptrs.push_back(&factors[static_cast<std::size_t>(k)]);
  }
  return khatri_rao(ptrs);
}

}  // namespace mtk
