// Symmetric eigendecomposition via the cyclic Jacobi rotation method —
// the small dense eigensolver the Tucker substrate needs (leading
// eigenvectors of Gram matrices of unfoldings). Robust and simple; for the
// R x R and I_k x I_k matrices in this library, performance is irrelevant.
#pragma once

#include <vector>

#include "src/tensor/matrix.hpp"

namespace mtk {

struct SymmetricEigen {
  std::vector<double> values;  // descending order
  Matrix vectors;              // column j is the eigenvector of values[j]
};

// A must be symmetric (checked up to a tolerance). Convergence: off-diagonal
// Frobenius mass below 1e-12 * ||A||_F, or 60 sweeps.
SymmetricEigen eigen_symmetric(const Matrix& a);

}  // namespace mtk
