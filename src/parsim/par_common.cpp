#include "src/parsim/par_common.hpp"

#include <algorithm>

#include "src/parsim/distribution.hpp"
#include "src/tensor/csf.hpp"

namespace mtk {

int grid_size(const std::vector<int>& grid_shape) {
  int p = 1;
  for (int e : grid_shape) p *= e;
  return p;
}

const SparseTensor& sparse_coo_view(const StoredTensor& x,
                                    SparseTensor& scratch) {
  MTK_CHECK(x.format() != StorageFormat::kDense,
            "sparse_coo_view requires COO or CSF storage");
  if (x.format() == StorageFormat::kCoo) return x.as_coo();
  scratch = x.as_csf().to_coo();
  return scratch;
}

Matrix local_sparse_mttkrp(const SparseTensor& block,
                           const std::vector<Matrix>& factors, int mode,
                           StorageFormat format, SparseKernelVariant variant) {
  if (format == StorageFormat::kCsf) {
    return mttkrp_csf(CsfTensor::from_coo(block, mode), factors, mode,
                      /*parallel=*/false, variant);
  }
  return mttkrp_coo(block, factors, mode, /*parallel=*/false, variant);
}

PhaseScope::PhaseScope(Transport& transport, std::string label,
                       int group_size)
    : transport_(transport),
      label_(std::move(label)),
      group_size_(group_size) {
  const std::size_t p = static_cast<std::size_t>(transport.num_ranks());
  before_.reserve(p);
  before_messages_.reserve(p);
  for (int r = 0; r < transport.num_ranks(); ++r) {
    before_.push_back(transport.stats(r).words_moved());
    before_messages_.push_back(transport.stats(r).messages_sent);
  }
}

PhaseScope::~PhaseScope() {
  PhaseRecord record;
  record.label = label_;
  record.group_size = group_size_;
  const std::size_t p = static_cast<std::size_t>(transport_.num_ranks());
  record.rank_words.resize(p);
  record.rank_messages.resize(p);
  for (std::size_t r = 0; r < p; ++r) {
    const CommStats& stats = transport_.stats(static_cast<int>(r));
    record.rank_words[r] = stats.words_moved() - before_[r];
    record.rank_messages[r] = stats.messages_sent - before_messages_[r];
    record.max_words_one_rank =
        std::max(record.max_words_one_rank, record.rank_words[r]);
  }
  transport_.record_phase(std::move(record));
}

Matrix distributed_gram(Transport& transport, const Matrix& a,
                        CollectiveKind kind) {
  const int p = transport.num_ranks();
  const index_t r = a.cols();
  const std::vector<Range> rows = block_partition(a.rows(), p);

  std::vector<std::vector<double>> partials(static_cast<std::size_t>(p));
  for (int rank = 0; rank < p; ++rank) {
    Matrix partial(r, r, 0.0);
    const Range rg = rows[static_cast<std::size_t>(rank)];
    for (index_t i = rg.lo; i < rg.hi; ++i) {
      const double* arow = a.row(i);
      for (index_t s = 0; s < r; ++s) {
        for (index_t t = 0; t < r; ++t) {
          partial(s, t) += arow[s] * arow[t];
        }
      }
    }
    partials[static_cast<std::size_t>(rank)].assign(
        partial.data(), partial.data() + partial.size());
  }

  std::vector<int> group(static_cast<std::size_t>(p));
  for (int rank = 0; rank < p; ++rank) {
    group[static_cast<std::size_t>(rank)] = rank;
  }
  PhaseScope scope(transport, "all-reduce gram", p);
  const std::vector<double> summed = transport.all_reduce(group, partials, kind);

  Matrix g(r, r);
  std::copy(summed.begin(), summed.end(), g.data());
  return g;
}

Matrix distributed_gram(Machine& machine, const Matrix& a,
                        CollectiveKind kind) {
  SimTransport transport(machine);
  return distributed_gram(static_cast<Transport&>(transport), a, kind);
}

std::vector<double> flatten_rows(const Matrix& m, Range rows) {
  std::vector<double> flat;
  flat.reserve(static_cast<std::size_t>(rows.length() * m.cols()));
  for (index_t i = rows.lo; i < rows.hi; ++i) {
    const double* r = m.row(i);
    flat.insert(flat.end(), r, r + m.cols());
  }
  return flat;
}

std::vector<double> flatten_submatrix(const Matrix& m, Range rows,
                                      Range cols) {
  std::vector<double> flat;
  flat.reserve(static_cast<std::size_t>(rows.length() * cols.length()));
  for (index_t i = rows.lo; i < rows.hi; ++i) {
    const double* r = m.row(i);
    flat.insert(flat.end(), r + cols.lo, r + cols.hi);
  }
  return flat;
}

Matrix unflatten_matrix(const std::vector<double>& flat, index_t rows,
                        index_t cols) {
  MTK_ASSERT(static_cast<index_t>(flat.size()) == rows * cols,
             "unflatten_matrix: ", flat.size(), " words != ", rows, "x", cols);
  Matrix m(rows, cols);
  std::copy(flat.begin(), flat.end(), m.data());
  return m;
}

std::vector<Matrix> gather_factor_hyperslices(
    Transport& transport, const ProcessorGrid& grid, const Matrix& factor,
    const std::vector<Range>& parts, int grid_dim, CollectiveKind collectives,
    const std::string& label) {
  const int n = grid.ndims();
  const int p = grid.size();
  PhaseScope scope(transport, label, p / grid.extent(grid_dim));
  std::vector<Matrix> gathered(static_cast<std::size_t>(grid.extent(grid_dim)));
  for (int c = 0; c < grid.extent(grid_dim); ++c) {
    // The group is identical for every member; build it from the first rank
    // with coordinate c on grid_dim.
    std::vector<int> coords(static_cast<std::size_t>(n), 0);
    coords[static_cast<std::size_t>(grid_dim)] = c;
    const int representative = grid.rank_of(coords);
    const std::vector<int> group = grid.group_fixing({grid_dim}, representative);
    const int q = static_cast<int>(group.size());

    const Range rows = parts[static_cast<std::size_t>(c)];
    const std::vector<double> block_row = flatten_rows(factor, rows);
    const index_t total = static_cast<index_t>(block_row.size());

    // Member i initially owns the i-th flat chunk of the block row
    // (Section V-C1: "partitioned arbitrarily across the processors in its
    // hyperslice"; we use balanced contiguous chunks).
    std::vector<std::vector<double>> contributions(static_cast<std::size_t>(q));
    for (int i = 0; i < q; ++i) {
      const Range chunk = flat_chunk(total, q, i);
      contributions[static_cast<std::size_t>(i)].assign(
          block_row.begin() + chunk.lo, block_row.begin() + chunk.hi);
    }
    const std::vector<double> full =
        transport.all_gather(group, contributions, collectives);
    gathered[static_cast<std::size_t>(c)] =
        unflatten_matrix(full, rows.length(), factor.cols());
  }
  return gathered;
}

Matrix reduce_scatter_hyperslices(
    Transport& transport, const ProcessorGrid& grid,
    const std::vector<Matrix>& local_c, const std::vector<Range>& parts,
    int grid_dim, index_t out_rows, index_t rank_r,
    CollectiveKind collectives, const std::string& label) {
  const int n = grid.ndims();
  const int p = grid.size();
  Matrix b(out_rows, rank_r);
  PhaseScope scope(transport, label, p / grid.extent(grid_dim));
  for (int c = 0; c < grid.extent(grid_dim); ++c) {
    std::vector<int> coords(static_cast<std::size_t>(n), 0);
    coords[static_cast<std::size_t>(grid_dim)] = c;
    const int representative = grid.rank_of(coords);
    const std::vector<int> group = grid.group_fixing({grid_dim}, representative);
    const int q = static_cast<int>(group.size());

    const Range rows = parts[static_cast<std::size_t>(c)];
    const index_t total = checked_mul(rows.length(), rank_r);

    std::vector<std::vector<double>> inputs(static_cast<std::size_t>(q));
    for (int i = 0; i < q; ++i) {
      const Matrix& ci =
          local_c[static_cast<std::size_t>(group[static_cast<std::size_t>(i)])];
      inputs[static_cast<std::size_t>(i)] = flatten_rows(ci, Range{0, ci.rows()});
    }
    const std::vector<index_t> chunk_sizes = flat_chunk_sizes(total, q);
    const auto reduced =
        transport.reduce_scatter(group, inputs, chunk_sizes, collectives);

    // Member i's chunk covers flat positions [chunk.lo, chunk.hi) of the
    // row-major flattened block row B(S_c, :).
    for (int i = 0; i < q; ++i) {
      const Range chunk = flat_chunk(total, q, i);
      for (index_t w = 0; w < chunk.length(); ++w) {
        const index_t flat = chunk.lo + w;
        b(rows.lo + flat / rank_r, flat % rank_r) =
            reduced[static_cast<std::size_t>(i)][static_cast<std::size_t>(w)];
      }
    }
  }
  return b;
}

}  // namespace mtk
