// Parallel multi-mode MTTKRP with communication reuse — the Section VII
// extension: a gradient-based CP algorithm (CP-OPT style) needs B^(n) for
// every mode against the *same* factors, so the stationary-tensor algorithm
// can All-Gather each factor's block rows once and reuse them for all N
// local MTTKRPs, paying N Reduce-Scatters for the outputs. Compared to N
// independent runs of Algorithm 3, the gather volume drops by a factor of
// ~(N-1).
//
// Storage-polymorphic like the single-mode drivers: dense blocks compute the
// N local contributions with the dimension tree (partial-contraction reuse);
// sparse blocks (COO/CSF) run the native kernel once per mode on the rank's
// nonzeros — fiber reuse already amortizes the factor traffic the tree would
// save, mirroring src/mttkrp/dispatch.hpp's all-modes policy.
#pragma once

#include <vector>

#include "src/mttkrp/dispatch.hpp"
#include "src/parsim/collective_variants.hpp"
#include "src/parsim/distribution.hpp"
#include "src/parsim/machine.hpp"
#include "src/tensor/dense_tensor.hpp"
#include "src/tensor/matrix.hpp"

namespace mtk {

struct ParAllModesResult {
  std::vector<Matrix> outputs;     // outputs[n] = assembled global B^(n)
  index_t max_words_moved = 0;
  index_t max_messages = 0;        // bottleneck processor: messages sent
  index_t total_words_sent = 0;
  std::vector<PhaseRecord> phases;
};

ParAllModesResult par_mttkrp_all_modes(
    Machine& machine, const StoredTensor& x,
    const std::vector<Matrix>& factors, const std::vector<int>& grid_shape,
    CollectiveSchedule collectives = CollectiveKind::kBucket,
    SparsePartitionScheme scheme = SparsePartitionScheme::kBlock);

// Dense overload and convenience wrappers building a machine of the grid's
// size.
ParAllModesResult par_mttkrp_all_modes(Machine& machine, const DenseTensor& x,
                                       const std::vector<Matrix>& factors,
                                       const std::vector<int>& grid_shape);
ParAllModesResult par_mttkrp_all_modes(const DenseTensor& x,
                                       const std::vector<Matrix>& factors,
                                       const std::vector<int>& grid_shape);
ParAllModesResult par_mttkrp_all_modes(
    const StoredTensor& x, const std::vector<Matrix>& factors,
    const std::vector<int>& grid_shape,
    SparsePartitionScheme scheme = SparsePartitionScheme::kBlock);

}  // namespace mtk
