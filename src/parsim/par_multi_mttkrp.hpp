// Parallel multi-mode MTTKRP with communication reuse — the Section VII
// extension: a gradient-based CP algorithm (CP-OPT style) needs B^(n) for
// every mode against the *same* factors, so the stationary-tensor algorithm
// can All-Gather each factor's block rows once and reuse them for all N
// local MTTKRPs, paying N Reduce-Scatters for the outputs. Compared to N
// independent runs of Algorithm 3, the gather volume drops by a factor of
// ~(N-1).
//
// Storage-polymorphic like the single-mode drivers: dense blocks compute the
// N local contributions with the dimension tree (partial-contraction reuse);
// COO blocks run the coordinate kernel once per mode on the rank's
// nonzeros, and CSF blocks run the fused multi-tree walk
// (src/mttkrp/sparse_kernels.hpp) — one traversal of the rank's tree
// computes all N contributions with memoized subtree partials. Repeated
// evaluations (par_cp_gradient's line search) should build an
// AllModesSparsePlan once and pass it in, which also skips the per-call
// nonzero redistribution.
//
// Like the single-mode drivers, executes on any Transport (see DESIGN.md):
// the counting Machine simulator or real std::thread ranks.
#pragma once

#include <vector>

#include "src/mttkrp/dispatch.hpp"
#include "src/parsim/collective_variants.hpp"
#include "src/parsim/distribution.hpp"
#include "src/parsim/transport/transport.hpp"
#include "src/tensor/dense_tensor.hpp"
#include "src/tensor/matrix.hpp"

namespace mtk {

struct ParAllModesResult {
  std::vector<Matrix> outputs;     // outputs[n] = assembled global B^(n)
  index_t max_words_moved = 0;
  index_t max_messages = 0;        // bottleneck processor: messages sent
  index_t total_words_sent = 0;
  std::vector<PhaseRecord> phases;
  TransportKind transport = TransportKind::kSim;  // backend that executed
  double comm_seconds = 0.0;     // measured wall-clock inside collectives
  double compute_seconds = 0.0;  // measured wall-clock inside local MTTKRP
};

// `kernel_variant` is the planner-chosen sparse local-kernel schedule; it
// reaches the per-mode COO kernel (the fused CSF walk has a single
// schedule, so CSF storage ignores it here).
ParAllModesResult par_mttkrp_all_modes(
    Transport& transport, const StoredTensor& x,
    const std::vector<Matrix>& factors, const std::vector<int>& grid_shape,
    CollectiveSchedule collectives = CollectiveKind::kBucket,
    SparsePartitionScheme scheme = SparsePartitionScheme::kBlock,
    SparseKernelVariant kernel_variant = SparseKernelVariant::kAuto);
ParAllModesResult par_mttkrp_all_modes(
    Machine& machine, const StoredTensor& x,
    const std::vector<Matrix>& factors, const std::vector<int>& grid_shape,
    CollectiveSchedule collectives = CollectiveKind::kBucket,
    SparsePartitionScheme scheme = SparsePartitionScheme::kBlock);

// Reusable per-process state for repeated all-modes MTTKRPs on one sparse
// tensor and grid (par_cp_gradient evaluates once per accepted iterate plus
// once per rejected Armijo trial): the nonzero distribution plus, for CSF
// storage, each rank's single fused tree. Building the plan once skips both
// the per-call O(nnz log nnz) redistribution and every per-call CSF
// compression.
struct AllModesSparsePlan {
  SparseDistribution dist;
  std::vector<CsfTensor> fused;  // [rank] — only populated for CSF storage
};

AllModesSparsePlan plan_all_modes_sparse(
    const StoredTensor& x, const std::vector<int>& grid_shape,
    SparsePartitionScheme scheme = SparsePartitionScheme::kBlock);

// All-modes driver against a precomputed plan (sparse storage only); `plan`
// must come from plan_all_modes_sparse on this tensor with `grid_shape`.
ParAllModesResult par_mttkrp_all_modes(
    Transport& transport, const StoredTensor& x,
    const std::vector<Matrix>& factors, const std::vector<int>& grid_shape,
    const AllModesSparsePlan& plan,
    CollectiveSchedule collectives = CollectiveKind::kBucket,
    SparseKernelVariant kernel_variant = SparseKernelVariant::kAuto);
ParAllModesResult par_mttkrp_all_modes(
    Machine& machine, const StoredTensor& x,
    const std::vector<Matrix>& factors, const std::vector<int>& grid_shape,
    const AllModesSparsePlan& plan,
    CollectiveSchedule collectives = CollectiveKind::kBucket);

// Dense overload and convenience wrappers building a machine of the grid's
// size.
ParAllModesResult par_mttkrp_all_modes(Machine& machine, const DenseTensor& x,
                                       const std::vector<Matrix>& factors,
                                       const std::vector<int>& grid_shape);
ParAllModesResult par_mttkrp_all_modes(const DenseTensor& x,
                                       const std::vector<Matrix>& factors,
                                       const std::vector<int>& grid_shape);
ParAllModesResult par_mttkrp_all_modes(
    const StoredTensor& x, const std::vector<Matrix>& factors,
    const std::vector<int>& grid_shape,
    SparsePartitionScheme scheme = SparsePartitionScheme::kBlock);

}  // namespace mtk
