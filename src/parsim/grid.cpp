#include "src/parsim/grid.hpp"

#include <algorithm>

namespace mtk {

ProcessorGrid::ProcessorGrid(std::vector<int> shape)
    : shape_(std::move(shape)) {
  MTK_CHECK(!shape_.empty(), "processor grid needs at least one dimension");
  for (std::size_t k = 0; k < shape_.size(); ++k) {
    MTK_CHECK(shape_[k] >= 1, "grid extent ", k, " must be >= 1, got ",
              shape_[k]);
    const index_t next = checked_mul(size_, shape_[k]);
    MTK_CHECK(next <= (index_t{1} << 30), "grid too large: ", next,
              " ranks exceeds the simulator limit of 2^30");
    size_ = static_cast<int>(next);
  }
}

int ProcessorGrid::extent(int dim) const {
  MTK_CHECK(dim >= 0 && dim < ndims(), "grid dimension ", dim,
            " out of range for ", ndims(), "-way grid");
  return shape_[static_cast<std::size_t>(dim)];
}

std::vector<int> ProcessorGrid::coords(int rank) const {
  MTK_CHECK(rank >= 0 && rank < size_, "rank ", rank,
            " out of range for grid of size ", size_);
  std::vector<int> c(shape_.size());
  for (std::size_t k = 0; k < shape_.size(); ++k) {
    c[k] = rank % shape_[k];
    rank /= shape_[k];
  }
  return c;
}

int ProcessorGrid::rank_of(const std::vector<int>& coords) const {
  MTK_CHECK(coords.size() == shape_.size(), "coordinate rank ",
            coords.size(), " != grid rank ", shape_.size());
  int rank = 0;
  int stride = 1;
  for (std::size_t k = 0; k < shape_.size(); ++k) {
    MTK_CHECK(coords[k] >= 0 && coords[k] < shape_[k], "grid coordinate ",
              coords[k], " out of range for extent ", shape_[k],
              " in dimension ", k);
    rank += coords[k] * stride;
    stride *= shape_[k];
  }
  return rank;
}

std::vector<int> ProcessorGrid::group_fixing(
    const std::vector<int>& fixed_dims, int rank) const {
  const std::vector<int> base = coords(rank);
  std::vector<bool> is_fixed(shape_.size(), false);
  for (int d : fixed_dims) {
    MTK_CHECK(d >= 0 && d < ndims(), "fixed dimension ", d,
              " out of range for ", ndims(), "-way grid");
    is_fixed[static_cast<std::size_t>(d)] = true;
  }
  std::vector<int> varying;
  for (std::size_t k = 0; k < shape_.size(); ++k) {
    if (!is_fixed[k]) varying.push_back(static_cast<int>(k));
  }

  int group_size = 1;
  for (int k : varying) group_size *= shape_[static_cast<std::size_t>(k)];

  std::vector<int> group;
  group.reserve(static_cast<std::size_t>(group_size));
  std::vector<int> c = base;
  // Column-major enumeration of the varying coordinates.
  for (int g = 0; g < group_size; ++g) {
    int rem = g;
    for (int k : varying) {
      c[static_cast<std::size_t>(k)] = rem % shape_[static_cast<std::size_t>(k)];
      rem /= shape_[static_cast<std::size_t>(k)];
    }
    group.push_back(rank_of(c));
  }
  return group;
}

int ProcessorGrid::position_in_group(const std::vector<int>& fixed_dims,
                                     int rank) const {
  const std::vector<int> group = group_fixing(fixed_dims, rank);
  const auto it = std::find(group.begin(), group.end(), rank);
  MTK_ASSERT(it != group.end(), "rank missing from its own group");
  return static_cast<int>(it - group.begin());
}

}  // namespace mtk
