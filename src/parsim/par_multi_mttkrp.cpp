#include "src/parsim/par_multi_mttkrp.hpp"

#include "src/mttkrp/dim_tree.hpp"
#include "src/parsim/grid.hpp"
#include "src/parsim/par_common.hpp"
#include "src/tensor/block.hpp"

namespace mtk {

namespace {

// All N local contributions of one rank's sparse block: the fused
// multi-tree walk for CSF storage (one traversal, memoized subtree
// partials), the coordinate kernel once per mode for COO. `fused` carries
// the rank's prebuilt tree when a plan exists; otherwise a CSF block
// compresses one tree here (still one build per call, not one per mode).
std::vector<Matrix> local_sparse_all_modes(const SparseTensor& block,
                                           const std::vector<Matrix>& factors,
                                           StorageFormat format,
                                           const CsfTensor* fused,
                                           SparseKernelVariant variant) {
  if (format == StorageFormat::kCsf) {
    // The fused multi-tree walk has a single schedule; the variant knob
    // applies to the per-mode kernels only.
    if (fused != nullptr) {
      return mttkrp_all_modes_fused(*fused, factors).outputs;
    }
    return mttkrp_all_modes_fused(CsfTensor::from_coo(block, -1), factors)
        .outputs;
  }
  const int n = block.order();
  std::vector<Matrix> outputs;
  outputs.reserve(static_cast<std::size_t>(n));
  for (int mode = 0; mode < n; ++mode) {
    outputs.push_back(
        mttkrp_coo(block, factors, mode, /*parallel=*/false, variant));
  }
  return outputs;
}

void check_all_modes_args(const StoredTensor& x,
                          const std::vector<Matrix>& factors,
                          const std::vector<int>& grid_shape,
                          index_t* rank_out) {
  const int n = x.order();
  MTK_CHECK(n >= 2, "par_mttkrp_all_modes requires order >= 2");
  MTK_CHECK(static_cast<int>(factors.size()) == n, "expected ", n,
            " factors, got ", factors.size());
  MTK_CHECK(static_cast<int>(grid_shape.size()) == n,
            "all-modes algorithm needs an N-way grid");
  index_t rank = -1;
  for (int k = 0; k < n; ++k) {
    const Matrix& a = factors[static_cast<std::size_t>(k)];
    MTK_CHECK(a.rows() == x.dim(k), "factor ", k, " has ", a.rows(),
              " rows, expected ", x.dim(k));
    if (rank < 0) {
      rank = a.cols();
    } else {
      MTK_CHECK(a.cols() == rank, "factor ", k, " rank mismatch");
    }
    MTK_CHECK(grid_shape[static_cast<std::size_t>(k)] <= x.dim(k),
              "grid extent exceeds tensor dimension in mode ", k);
  }
  *rank_out = rank;
}

// The driver body shared by the plan-less and planned entry points:
// `local_blocks` is null for dense storage, and `fused` (per-rank trees)
// is non-null only when a plan supplies prebuilt CSF trees.
ParAllModesResult all_modes_impl(Transport& transport, const StoredTensor& x,
                                 const std::vector<Matrix>& factors,
                                 const ProcessorGrid& grid, index_t rank,
                                 const std::vector<std::vector<Range>>& parts,
                                 const std::vector<SparseTensor>* local_blocks,
                                 const std::vector<CsfTensor>* fused,
                                 const CollectiveSchedule& collectives,
                                 SparseKernelVariant variant) {
  const int n = x.order();
  const int p = grid.size();
  MTK_CHECK(transport.num_ranks() == p, "transport has ",
            transport.num_ranks(), " ranks but grid has ", p);
  const bool dense = local_blocks == nullptr;

  // Phase 1: one All-Gather per mode — every factor's block rows are
  // gathered once and reused by all N local MTTKRPs.
  std::vector<std::vector<Matrix>> gathered(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    gathered[static_cast<std::size_t>(k)] = gather_factor_hyperslices(
        transport, grid, factors[static_cast<std::size_t>(k)],
        parts[static_cast<std::size_t>(k)], k, collectives.factor,
        std::string("all-gather A(") + std::to_string(k) + ") [shared]");
  }

  // Phase 2: one local pass per rank computes all N contributions at once —
  // the dimension tree for dense blocks, the fused CSF walk / per-mode COO
  // kernel for sparse ones.
  std::vector<std::vector<Matrix>> local(static_cast<std::size_t>(p));
  transport.run_ranks([&](int r) {
    const std::vector<int> coords = grid.coords(r);
    std::vector<Matrix> local_factors(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) {
      local_factors[static_cast<std::size_t>(k)] =
          gathered[static_cast<std::size_t>(k)]
                  [static_cast<std::size_t>(coords[static_cast<std::size_t>(k)])];
    }
    if (dense) {
      std::vector<Range> ranges(static_cast<std::size_t>(n));
      for (int k = 0; k < n; ++k) {
        ranges[static_cast<std::size_t>(k)] =
            parts[static_cast<std::size_t>(k)]
                 [static_cast<std::size_t>(coords[static_cast<std::size_t>(k)])];
      }
      const DenseTensor x_local = extract_block(x.as_dense(), ranges);
      local[static_cast<std::size_t>(r)] =
          mttkrp_all_modes_tree(x_local, local_factors).outputs;
    } else {
      local[static_cast<std::size_t>(r)] = local_sparse_all_modes(
          (*local_blocks)[static_cast<std::size_t>(r)], local_factors,
          x.format(),
          fused != nullptr ? &(*fused)[static_cast<std::size_t>(r)]
                           : nullptr,
          variant);
    }
  });

  // Phase 3: one Reduce-Scatter per mode.
  ParAllModesResult result;
  result.outputs.assign(static_cast<std::size_t>(n), Matrix());
  std::vector<Matrix> local_c(static_cast<std::size_t>(p));
  for (int mode = 0; mode < n; ++mode) {
    for (int r = 0; r < p; ++r) {
      local_c[static_cast<std::size_t>(r)] = std::move(
          local[static_cast<std::size_t>(r)][static_cast<std::size_t>(mode)]);
    }
    result.outputs[static_cast<std::size_t>(mode)] =
        reduce_scatter_hyperslices(
            transport, grid, local_c, parts[static_cast<std::size_t>(mode)],
            mode, x.dim(mode), rank, collectives.output,
            std::string("reduce-scatter B(") + std::to_string(mode) + ")");
  }

  result.max_words_moved = transport.max_words_moved();
  result.max_messages = transport.max_messages_sent();
  result.total_words_sent = transport.total_words_sent();
  result.phases = transport.phases();
  result.transport = transport.kind();
  result.comm_seconds = transport.comm_seconds();
  result.compute_seconds = transport.compute_seconds();
  return result;
}

}  // namespace

ParAllModesResult par_mttkrp_all_modes(Transport& transport,
                                       const StoredTensor& x,
                                       const std::vector<Matrix>& factors,
                                       const std::vector<int>& grid_shape,
                                       CollectiveSchedule collectives,
                                       SparsePartitionScheme scheme,
                                       SparseKernelVariant kernel_variant) {
  index_t rank = 0;
  check_all_modes_args(x, factors, grid_shape, &rank);
  const ProcessorGrid grid(grid_shape);
  const int n = x.order();

  if (x.format() == StorageFormat::kDense) {
    std::vector<std::vector<Range>> parts(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) {
      parts[static_cast<std::size_t>(k)] =
          block_partition(x.dim(k), grid.extent(k));
    }
    return all_modes_impl(transport, x, factors, grid, rank, parts, nullptr,
                          nullptr, collectives, kernel_variant);
  }
  SparseTensor expanded;
  const SparseDistribution dist =
      distribute_nonzeros(sparse_coo_view(x, expanded), grid, scheme);
  return all_modes_impl(transport, x, factors, grid, rank, dist.mode_ranges,
                        &dist.local, nullptr, collectives, kernel_variant);
}

ParAllModesResult par_mttkrp_all_modes(Machine& machine,
                                       const StoredTensor& x,
                                       const std::vector<Matrix>& factors,
                                       const std::vector<int>& grid_shape,
                                       CollectiveSchedule collectives,
                                       SparsePartitionScheme scheme) {
  SimTransport transport(machine);
  return par_mttkrp_all_modes(static_cast<Transport&>(transport), x, factors,
                              grid_shape, collectives, scheme);
}

AllModesSparsePlan plan_all_modes_sparse(const StoredTensor& x,
                                         const std::vector<int>& grid_shape,
                                         SparsePartitionScheme scheme) {
  MTK_CHECK(x.format() != StorageFormat::kDense,
            "plan_all_modes_sparse applies to sparse storage only");
  const ProcessorGrid grid(grid_shape);
  AllModesSparsePlan plan;
  SparseTensor expanded;
  plan.dist = distribute_nonzeros(sparse_coo_view(x, expanded), grid, scheme);
  if (x.format() == StorageFormat::kCsf) {
    const int p = grid.size();
    plan.fused.resize(static_cast<std::size_t>(p));
#pragma omp parallel for schedule(dynamic)
    for (int r = 0; r < p; ++r) {
      plan.fused[static_cast<std::size_t>(r)] = CsfTensor::from_coo(
          plan.dist.local[static_cast<std::size_t>(r)], -1);
    }
  }
  return plan;
}

ParAllModesResult par_mttkrp_all_modes(Transport& transport,
                                       const StoredTensor& x,
                                       const std::vector<Matrix>& factors,
                                       const std::vector<int>& grid_shape,
                                       const AllModesSparsePlan& plan,
                                       CollectiveSchedule collectives,
                                       SparseKernelVariant kernel_variant) {
  MTK_CHECK(x.format() != StorageFormat::kDense,
            "a precomputed plan applies to sparse storage only");
  index_t rank = 0;
  check_all_modes_args(x, factors, grid_shape, &rank);
  const ProcessorGrid grid(grid_shape);
  MTK_CHECK(static_cast<int>(plan.dist.local.size()) == grid.size() &&
                static_cast<int>(plan.dist.mode_ranges.size()) == x.order(),
            "plan does not match the grid (", plan.dist.local.size(),
            " blocks for ", grid.size(), " ranks)");
  const bool use_fused = x.format() == StorageFormat::kCsf;
  MTK_CHECK(!use_fused ||
                static_cast<int>(plan.fused.size()) == grid.size(),
            "plan fused forest does not match the grid");
  return all_modes_impl(transport, x, factors, grid, rank,
                        plan.dist.mode_ranges, &plan.dist.local,
                        use_fused ? &plan.fused : nullptr, collectives,
                        kernel_variant);
}

ParAllModesResult par_mttkrp_all_modes(Machine& machine,
                                       const StoredTensor& x,
                                       const std::vector<Matrix>& factors,
                                       const std::vector<int>& grid_shape,
                                       const AllModesSparsePlan& plan,
                                       CollectiveSchedule collectives) {
  SimTransport transport(machine);
  return par_mttkrp_all_modes(static_cast<Transport&>(transport), x, factors,
                              grid_shape, plan, collectives);
}

ParAllModesResult par_mttkrp_all_modes(Machine& machine, const DenseTensor& x,
                                       const std::vector<Matrix>& factors,
                                       const std::vector<int>& grid_shape) {
  return par_mttkrp_all_modes(machine, StoredTensor::dense_view(x), factors,
                              grid_shape);
}

ParAllModesResult par_mttkrp_all_modes(const DenseTensor& x,
                                       const std::vector<Matrix>& factors,
                                       const std::vector<int>& grid_shape) {
  Machine machine(grid_size(grid_shape));
  return par_mttkrp_all_modes(machine, x, factors, grid_shape);
}

ParAllModesResult par_mttkrp_all_modes(const StoredTensor& x,
                                       const std::vector<Matrix>& factors,
                                       const std::vector<int>& grid_shape,
                                       SparsePartitionScheme scheme) {
  Machine machine(grid_size(grid_shape));
  return par_mttkrp_all_modes(machine, x, factors, grid_shape,
                              CollectiveKind::kBucket, scheme);
}

}  // namespace mtk
