#include "src/parsim/par_multi_mttkrp.hpp"
#include <algorithm>


#include "src/mttkrp/dim_tree.hpp"
#include "src/parsim/collectives.hpp"
#include "src/parsim/distribution.hpp"
#include "src/parsim/grid.hpp"
#include "src/tensor/block.hpp"

namespace mtk {

namespace {

std::vector<double> flatten_all_rows(const Matrix& m) {
  return std::vector<double>(m.data(), m.data() + m.size());
}

// Per-rank snapshot so a phase's bottleneck is max over ranks of that
// phase's delta (not the delta of the running maximum).
std::vector<index_t> snapshot(const Machine& machine) {
  std::vector<index_t> words;
  words.reserve(static_cast<std::size_t>(machine.num_ranks()));
  for (int r = 0; r < machine.num_ranks(); ++r) {
    words.push_back(machine.stats(r).words_moved());
  }
  return words;
}

index_t max_delta(const Machine& machine, const std::vector<index_t>& before) {
  index_t best = 0;
  for (int r = 0; r < machine.num_ranks(); ++r) {
    best = std::max(best, machine.stats(r).words_moved() -
                              before[static_cast<std::size_t>(r)]);
  }
  return best;
}

}  // namespace

ParAllModesResult par_mttkrp_all_modes(Machine& machine, const DenseTensor& x,
                                       const std::vector<Matrix>& factors,
                                       const std::vector<int>& grid_shape) {
  const int n = x.order();
  MTK_CHECK(n >= 2, "par_mttkrp_all_modes requires order >= 2");
  MTK_CHECK(static_cast<int>(factors.size()) == n, "expected ", n,
            " factors, got ", factors.size());
  MTK_CHECK(static_cast<int>(grid_shape.size()) == n,
            "all-modes algorithm needs an N-way grid");
  index_t rank = -1;
  for (int k = 0; k < n; ++k) {
    const Matrix& a = factors[static_cast<std::size_t>(k)];
    MTK_CHECK(a.rows() == x.dim(k), "factor ", k, " has ", a.rows(),
              " rows, expected ", x.dim(k));
    if (rank < 0) {
      rank = a.cols();
    } else {
      MTK_CHECK(a.cols() == rank, "factor ", k, " rank mismatch");
    }
  }
  const ProcessorGrid grid(grid_shape);
  const int p = grid.size();
  MTK_CHECK(machine.num_ranks() == p, "machine has ", machine.num_ranks(),
            " ranks but grid has ", p);
  for (int k = 0; k < n; ++k) {
    MTK_CHECK(grid_shape[static_cast<std::size_t>(k)] <= x.dim(k),
              "grid extent exceeds tensor dimension in mode ", k);
  }

  std::vector<std::vector<Range>> parts(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    parts[static_cast<std::size_t>(k)] =
        block_partition(x.dim(k), grid.extent(k));
  }

  // Phase 1: one All-Gather per mode — every factor's block rows are
  // gathered once and reused by all N local MTTKRPs.
  std::vector<std::vector<Matrix>> gathered(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    const int pk = grid.extent(k);
    const std::vector<index_t> before = snapshot(machine);
    gathered[static_cast<std::size_t>(k)].resize(static_cast<std::size_t>(pk));
    for (int c = 0; c < pk; ++c) {
      std::vector<int> coords(static_cast<std::size_t>(n), 0);
      coords[static_cast<std::size_t>(k)] = c;
      const std::vector<int> group =
          grid.group_fixing({k}, grid.rank_of(coords));
      const int q = static_cast<int>(group.size());
      const Range rows =
          parts[static_cast<std::size_t>(k)][static_cast<std::size_t>(c)];
      const Matrix block =
          extract_rows(factors[static_cast<std::size_t>(k)], rows);
      const std::vector<double> flat = flatten_all_rows(block);
      std::vector<std::vector<double>> contributions(
          static_cast<std::size_t>(q));
      for (int i = 0; i < q; ++i) {
        const Range chunk =
            flat_chunk(static_cast<index_t>(flat.size()), q, i);
        contributions[static_cast<std::size_t>(i)].assign(
            flat.begin() + chunk.lo, flat.begin() + chunk.hi);
      }
      const std::vector<double> full =
          all_gather_bucket(machine, group, contributions);
      Matrix assembled(rows.length(), rank);
      std::copy(full.begin(), full.end(), assembled.data());
      gathered[static_cast<std::size_t>(k)][static_cast<std::size_t>(c)] =
          std::move(assembled);
    }
    machine.record_phase({std::string("all-gather A(") + std::to_string(k) +
                              ") [shared]",
                          p / pk, max_delta(machine, before)});
  }

  // Phase 2: one local dimension-tree pass per rank computes all N local
  // contributions at once.
  std::vector<std::vector<Matrix>> local(static_cast<std::size_t>(p));
#pragma omp parallel for schedule(dynamic)
  for (int r = 0; r < p; ++r) {
    const std::vector<int> coords = grid.coords(r);
    std::vector<Range> ranges(static_cast<std::size_t>(n));
    std::vector<Matrix> local_factors(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) {
      ranges[static_cast<std::size_t>(k)] =
          parts[static_cast<std::size_t>(k)]
               [static_cast<std::size_t>(coords[static_cast<std::size_t>(k)])];
      local_factors[static_cast<std::size_t>(k)] =
          gathered[static_cast<std::size_t>(k)]
                  [static_cast<std::size_t>(coords[static_cast<std::size_t>(k)])];
    }
    const DenseTensor x_local = extract_block(x, ranges);
    local[static_cast<std::size_t>(r)] =
        mttkrp_all_modes_tree(x_local, local_factors).outputs;
  }

  // Phase 3: one Reduce-Scatter per mode.
  ParAllModesResult result;
  result.outputs.assign(static_cast<std::size_t>(n), Matrix());
  for (int mode = 0; mode < n; ++mode) {
    const std::vector<index_t> before = snapshot(machine);
    Matrix b(x.dim(mode), rank);
    for (int c = 0; c < grid.extent(mode); ++c) {
      std::vector<int> coords(static_cast<std::size_t>(n), 0);
      coords[static_cast<std::size_t>(mode)] = c;
      const std::vector<int> group =
          grid.group_fixing({mode}, grid.rank_of(coords));
      const int q = static_cast<int>(group.size());
      const Range rows =
          parts[static_cast<std::size_t>(mode)][static_cast<std::size_t>(c)];
      const index_t total = checked_mul(rows.length(), rank);

      std::vector<std::vector<double>> inputs(static_cast<std::size_t>(q));
      for (int i = 0; i < q; ++i) {
        inputs[static_cast<std::size_t>(i)] = flatten_all_rows(
            local[static_cast<std::size_t>(group[static_cast<std::size_t>(i)])]
                 [static_cast<std::size_t>(mode)]);
      }
      const std::vector<index_t> chunk_sizes = flat_chunk_sizes(total, q);
      const auto reduced =
          reduce_scatter_bucket(machine, group, inputs, chunk_sizes);
      for (int i = 0; i < q; ++i) {
        const Range chunk = flat_chunk(total, q, i);
        for (index_t w = 0; w < chunk.length(); ++w) {
          const index_t flat = chunk.lo + w;
          b(rows.lo + flat / rank, flat % rank) =
              reduced[static_cast<std::size_t>(i)][static_cast<std::size_t>(w)];
        }
      }
    }
    result.outputs[static_cast<std::size_t>(mode)] = std::move(b);
    machine.record_phase({std::string("reduce-scatter B(") +
                              std::to_string(mode) + ")",
                          p / grid.extent(mode), max_delta(machine, before)});
  }

  result.max_words_moved = machine.max_words_moved();
  result.total_words_sent = machine.total_words_sent();
  result.phases = machine.phases();
  return result;
}

ParAllModesResult par_mttkrp_all_modes(const DenseTensor& x,
                                       const std::vector<Matrix>& factors,
                                       const std::vector<int>& grid_shape) {
  int p = 1;
  for (int e : grid_shape) p *= e;
  Machine machine(p);
  return par_mttkrp_all_modes(machine, x, factors, grid_shape);
}

}  // namespace mtk
