#include "src/parsim/collectives.hpp"

#include <algorithm>
#include <numeric>

namespace mtk {

namespace {

void check_group(const Machine& machine, const std::vector<int>& group) {
  MTK_CHECK(!group.empty(), "collective group must be non-empty");
  for (int r : group) {
    MTK_CHECK(r >= 0 && r < machine.num_ranks(), "group contains invalid "
              "rank ", r);
  }
  // Groups must not repeat members: each position is a distinct processor.
  std::vector<int> sorted = group;
  std::sort(sorted.begin(), sorted.end());
  MTK_CHECK(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
            "collective group contains duplicate ranks");
}

}  // namespace

std::vector<double> all_gather_bucket(
    Machine& machine, const std::vector<int>& group,
    const std::vector<std::vector<double>>& contributions) {
  check_group(machine, group);
  const int q = static_cast<int>(group.size());
  MTK_CHECK(static_cast<int>(contributions.size()) == q,
            "all_gather: expected ", q, " contributions, got ",
            contributions.size());

  // Chunk offsets in the concatenated result.
  std::vector<index_t> sizes(static_cast<std::size_t>(q));
  index_t total = 0;
  for (int i = 0; i < q; ++i) {
    sizes[static_cast<std::size_t>(i)] =
        static_cast<index_t>(contributions[static_cast<std::size_t>(i)].size());
    total += sizes[static_cast<std::size_t>(i)];
  }
  std::vector<double> result;
  result.reserve(static_cast<std::size_t>(total));
  for (const auto& c : contributions) {
    result.insert(result.end(), c.begin(), c.end());
  }

  // Ring schedule: at step s = 0..q-2, member i sends chunk (i - s) mod q to
  // member (i+1) mod q. After q-1 steps every member holds every chunk.
  for (int s = 0; s + 1 < q; ++s) {
    for (int i = 0; i < q; ++i) {
      const int chunk = ((i - s) % q + q) % q;
      machine.record_send(group[static_cast<std::size_t>(i)],
                          group[static_cast<std::size_t>((i + 1) % q)],
                          sizes[static_cast<std::size_t>(chunk)]);
    }
  }
  return result;
}

std::vector<std::vector<double>> reduce_scatter_bucket(
    Machine& machine, const std::vector<int>& group,
    const std::vector<std::vector<double>>& inputs,
    const std::vector<index_t>& chunk_sizes) {
  check_group(machine, group);
  const int q = static_cast<int>(group.size());
  MTK_CHECK(static_cast<int>(inputs.size()) == q, "reduce_scatter: expected ",
            q, " inputs, got ", inputs.size());
  MTK_CHECK(static_cast<int>(chunk_sizes.size()) == q,
            "reduce_scatter: expected ", q, " chunk sizes, got ",
            chunk_sizes.size());
  index_t total = 0;
  std::vector<index_t> offsets(static_cast<std::size_t>(q));
  for (int j = 0; j < q; ++j) {
    MTK_CHECK(chunk_sizes[static_cast<std::size_t>(j)] >= 0,
              "negative chunk size");
    offsets[static_cast<std::size_t>(j)] = total;
    total += chunk_sizes[static_cast<std::size_t>(j)];
  }
  for (int i = 0; i < q; ++i) {
    MTK_CHECK(static_cast<index_t>(inputs[static_cast<std::size_t>(i)].size()) ==
                  total,
              "reduce_scatter: input ", i, " has ",
              inputs[static_cast<std::size_t>(i)].size(), " words, expected ",
              total);
  }

  auto chunk_of = [&](int member, int chunk) {
    const double* base = inputs[static_cast<std::size_t>(member)].data() +
                         offsets[static_cast<std::size_t>(chunk)];
    return std::vector<double>(base,
                               base + chunk_sizes[static_cast<std::size_t>(chunk)]);
  };

  // Traveling partial sums: at the start of step s, member i holds the
  // partial of chunk (i-1-s) mod q. Each step it passes that partial right;
  // the receiver adds its own contribution. After q-1 steps, member i holds
  // the fully reduced chunk i.
  std::vector<std::vector<double>> traveling(static_cast<std::size_t>(q));
  for (int i = 0; i < q; ++i) {
    traveling[static_cast<std::size_t>(i)] = chunk_of(i, ((i - 1) % q + q) % q);
  }
  for (int s = 0; s + 1 < q; ++s) {
    std::vector<std::vector<double>> incoming(static_cast<std::size_t>(q));
    for (int i = 0; i < q; ++i) {
      const int chunk = ((i - 1 - s) % q + q) % q;
      machine.record_send(
          group[static_cast<std::size_t>(i)],
          group[static_cast<std::size_t>((i + 1) % q)],
          chunk_sizes[static_cast<std::size_t>(chunk)]);
      incoming[static_cast<std::size_t>((i + 1) % q)] =
          std::move(traveling[static_cast<std::size_t>(i)]);
    }
    for (int i = 0; i < q; ++i) {
      const int chunk = ((i - 2 - s) % q + q) % q;
      std::vector<double>& partial = incoming[static_cast<std::size_t>(i)];
      const double* own = inputs[static_cast<std::size_t>(i)].data() +
                          offsets[static_cast<std::size_t>(chunk)];
      for (std::size_t w = 0; w < partial.size(); ++w) {
        partial[w] += own[w];
      }
      traveling[static_cast<std::size_t>(i)] = std::move(partial);
    }
  }
  return traveling;
}

std::vector<double> all_reduce_bucket(
    Machine& machine, const std::vector<int>& group,
    const std::vector<std::vector<double>>& inputs) {
  check_group(machine, group);
  const int q = static_cast<int>(group.size());
  MTK_CHECK(!inputs.empty() && static_cast<int>(inputs.size()) == q,
            "all_reduce: expected ", q, " inputs");
  const index_t total = static_cast<index_t>(inputs.front().size());

  // Near-balanced chunking for the reduce-scatter stage.
  std::vector<index_t> chunk_sizes(static_cast<std::size_t>(q));
  for (int j = 0; j < q; ++j) {
    chunk_sizes[static_cast<std::size_t>(j)] =
        total / q + (j < static_cast<int>(total % q) ? 1 : 0);
  }
  auto reduced = reduce_scatter_bucket(machine, group, inputs, chunk_sizes);
  return all_gather_bucket(machine, group, reduced);
}

void broadcast_ring(Machine& machine, const std::vector<int>& group, int root,
                    index_t words) {
  check_group(machine, group);
  const int q = static_cast<int>(group.size());
  MTK_CHECK(root >= 0 && root < q, "broadcast root position ", root,
            " out of range for group of size ", q);
  for (int s = 0; s + 1 < q; ++s) {
    const int from = (root + s) % q;
    const int to = (root + s + 1) % q;
    machine.record_send(group[static_cast<std::size_t>(from)],
                        group[static_cast<std::size_t>(to)], words);
  }
}

}  // namespace mtk
