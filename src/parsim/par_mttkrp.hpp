// Parallel MTTKRP algorithms on the simulated distributed machine.
//
//   par_mttkrp_stationary — Algorithm 3: N-way processor grid, the tensor is
//     never communicated. Per mode k != n, the block row A^(k)_{p_k} is
//     All-Gathered across the hyperslice of processors sharing p_k; the
//     local MTTKRP contribution C_{p_n} is Reduce-Scattered across the mode-n
//     hyperslice. Communication cost: Eq. (14).
//
//   par_mttkrp_general — Algorithm 4: (N+1)-way grid that also partitions
//     the rank dimension R into P0 parts; additionally All-Gathers the
//     subtensor across each P0-fiber. Cost: Eq. (18). With P0 = 1 it
//     degenerates to Algorithm 3 exactly.
//
// Both execute real data movement through the bucket collectives, so the
// assembled output can be verified against the sequential reference, and the
// word counters are exact.
#pragma once

#include <vector>

#include "src/parsim/collective_variants.hpp"
#include "src/parsim/machine.hpp"
#include "src/tensor/dense_tensor.hpp"
#include "src/tensor/matrix.hpp"

namespace mtk {

struct ParMttkrpResult {
  Matrix b;                        // assembled global B^(n) (for checking)
  index_t max_words_moved = 0;     // bottleneck processor: sent + received
  index_t total_words_sent = 0;    // machine-wide volume
  std::vector<PhaseRecord> phases; // per-collective breakdown
};

// Algorithm 3. `grid_shape` must have N entries with product equal to the
// number of ranks of `machine`, and grid_shape[k] <= I_k. `collectives`
// picks the schedule (bucket ring vs recursive doubling/halving) — word
// counts are identical, message counts differ.
ParMttkrpResult par_mttkrp_stationary(
    Machine& machine, const DenseTensor& x,
    const std::vector<Matrix>& factors, int mode,
    const std::vector<int>& grid_shape,
    CollectiveKind collectives = CollectiveKind::kBucket);

// Algorithm 4. `grid_shape` must have N+1 entries ordered (P0, P1..PN) with
// product equal to the rank count, grid_shape[0] <= R, and
// grid_shape[k+1] <= I_k.
ParMttkrpResult par_mttkrp_general(
    Machine& machine, const DenseTensor& x,
    const std::vector<Matrix>& factors, int mode,
    const std::vector<int>& grid_shape,
    CollectiveKind collectives = CollectiveKind::kBucket);

// Convenience wrappers that build a fresh machine with prod(grid) ranks.
ParMttkrpResult par_mttkrp_stationary(const DenseTensor& x,
                                      const std::vector<Matrix>& factors,
                                      int mode,
                                      const std::vector<int>& grid_shape);
ParMttkrpResult par_mttkrp_general(const DenseTensor& x,
                                   const std::vector<Matrix>& factors,
                                   int mode,
                                   const std::vector<int>& grid_shape);

}  // namespace mtk
