// Parallel MTTKRP algorithms on a distributed machine abstraction.
//
//   par_mttkrp_stationary — Algorithm 3: N-way processor grid, the tensor is
//     never communicated. Per mode k != n, the block row A^(k)_{p_k} is
//     All-Gathered across the hyperslice of processors sharing p_k; the
//     local MTTKRP contribution C_{p_n} is Reduce-Scattered across the mode-n
//     hyperslice. Communication cost: Eq. (14).
//
//   par_mttkrp_general — Algorithm 4: (N+1)-way grid that also partitions
//     the rank dimension R into P0 parts; additionally All-Gathers the
//     subtensor across each P0-fiber. Cost: Eq. (18). With P0 = 1 it
//     degenerates to Algorithm 3 exactly.
//
// Both are polymorphic over storage (StoredTensor): a dense tensor is
// distributed as rectangular blocks, a sparse one (COO or CSF) by assigning
// every nonzero to the process whose coordinate block contains it
// (src/parsim/distribution.hpp), with the local MTTKRP running the native
// COO/CSF kernel. The collective phases are shared code, so with the kBlock
// partition scheme a sparse run moves exactly the same factor and output
// words as the dense run on the same grid — the tensor is stationary in
// Algorithm 3, and communication involves only (dense) factors and outputs.
// In Algorithm 4 the subtensor All-Gather ships sparse blocks as
// (coordinates, value) tuples, N+1 words per nonzero, instead of the dense
// block's prod(|S_k|)/P0-per-member volume.
//
// All algorithms execute real data movement through a Transport (see
// DESIGN.md): the counting Machine simulator or real std::thread ranks.
// Either way the assembled output can be verified against the sequential
// reference and the word counters are exact; the thread transport
// additionally reports measured wall-clock seconds.
#pragma once

#include <vector>

#include "src/mttkrp/dispatch.hpp"
#include "src/parsim/collective_variants.hpp"
#include "src/parsim/distribution.hpp"
#include "src/parsim/transport/transport.hpp"
#include "src/tensor/dense_tensor.hpp"
#include "src/tensor/matrix.hpp"

namespace mtk {

struct ParMttkrpResult {
  Matrix b;                        // assembled global B^(n) (for checking)
  index_t max_words_moved = 0;     // bottleneck processor: sent + received
  index_t max_messages = 0;        // bottleneck processor: messages sent
  index_t total_words_sent = 0;    // machine-wide volume
  std::vector<PhaseRecord> phases; // per-collective breakdown
  TransportKind transport = TransportKind::kSim;  // backend that executed
  double comm_seconds = 0.0;     // measured wall-clock inside collectives
  double compute_seconds = 0.0;  // measured wall-clock inside local MTTKRP
};

// Algorithm 3, storage-polymorphic, on any Transport. `grid_shape` must have
// N entries with product equal to the transport's rank count, and
// grid_shape[k] <= I_k. `collectives` picks the per-phase schedule (bucket
// ring vs recursive doubling/halving; a bare CollectiveKind applies to every
// phase) — word counts are near-identical, message counts differ by
// (q-1)/log2(q). `scheme` selects the sparse coordinate partition (ignored
// for dense storage): kBlock matches the dense layout, kMediumGrained
// balances nonzeros per process at the cost of uneven factor blocks.
// `kernel_variant` is the planner-chosen sparse local-kernel schedule
// (ExecutionPlan::kernel_variant); kAuto keeps the per-call heuristic.
ParMttkrpResult par_mttkrp_stationary(
    Transport& transport, const StoredTensor& x,
    const std::vector<Matrix>& factors, int mode,
    const std::vector<int>& grid_shape,
    CollectiveSchedule collectives = CollectiveKind::kBucket,
    SparsePartitionScheme scheme = SparsePartitionScheme::kBlock,
    SparseKernelVariant kernel_variant = SparseKernelVariant::kAuto);

// Machine-backed compatibility overload (borrows the machine via a
// SimTransport, so counters accumulate where existing callers read them).
ParMttkrpResult par_mttkrp_stationary(
    Machine& machine, const StoredTensor& x,
    const std::vector<Matrix>& factors, int mode,
    const std::vector<int>& grid_shape,
    CollectiveSchedule collectives = CollectiveKind::kBucket,
    SparsePartitionScheme scheme = SparsePartitionScheme::kBlock);

// Reusable per-process state for repeated stationary MTTKRPs on one sparse
// tensor and grid (par_cp_als runs N x iterations of them): the nonzero
// distribution plus, for CSF input, the per-rank one-tree-per-mode forest
// built from it (SPLATT's layout). Building the plan once skips both the
// per-call O(nnz log nnz) redistribution and the per-call CSF compression.
struct StationarySparsePlan {
  SparseDistribution dist;
  // forest[rank][mode] — only populated for CSF storage.
  std::vector<std::vector<CsfTensor>> forest;
};

StationarySparsePlan plan_stationary_sparse(
    const StoredTensor& x, const std::vector<int>& grid_shape,
    SparsePartitionScheme scheme = SparsePartitionScheme::kBlock);

// Algorithm 3 against a precomputed plan (sparse storage only); `plan` must
// come from plan_stationary_sparse on this tensor with `grid_shape`.
ParMttkrpResult par_mttkrp_stationary(
    Transport& transport, const StoredTensor& x,
    const std::vector<Matrix>& factors, int mode,
    const std::vector<int>& grid_shape, const StationarySparsePlan& plan,
    CollectiveSchedule collectives = CollectiveKind::kBucket,
    SparseKernelVariant kernel_variant = SparseKernelVariant::kAuto);
ParMttkrpResult par_mttkrp_stationary(
    Machine& machine, const StoredTensor& x,
    const std::vector<Matrix>& factors, int mode,
    const std::vector<int>& grid_shape, const StationarySparsePlan& plan,
    CollectiveSchedule collectives = CollectiveKind::kBucket);

// Algorithm 4, storage-polymorphic. `grid_shape` must have N+1 entries
// ordered (P0, P1..PN) with product equal to the rank count,
// grid_shape[0] <= R, and grid_shape[k+1] <= I_k.
ParMttkrpResult par_mttkrp_general(
    Transport& transport, const StoredTensor& x,
    const std::vector<Matrix>& factors, int mode,
    const std::vector<int>& grid_shape,
    CollectiveSchedule collectives = CollectiveKind::kBucket,
    SparsePartitionScheme scheme = SparsePartitionScheme::kBlock,
    SparseKernelVariant kernel_variant = SparseKernelVariant::kAuto);
ParMttkrpResult par_mttkrp_general(
    Machine& machine, const StoredTensor& x,
    const std::vector<Matrix>& factors, int mode,
    const std::vector<int>& grid_shape,
    CollectiveSchedule collectives = CollectiveKind::kBucket,
    SparsePartitionScheme scheme = SparsePartitionScheme::kBlock);

// Dense overloads (delegate to the StoredTensor drivers via borrowed views).
ParMttkrpResult par_mttkrp_stationary(
    Machine& machine, const DenseTensor& x,
    const std::vector<Matrix>& factors, int mode,
    const std::vector<int>& grid_shape,
    CollectiveSchedule collectives = CollectiveKind::kBucket);
ParMttkrpResult par_mttkrp_general(
    Machine& machine, const DenseTensor& x,
    const std::vector<Matrix>& factors, int mode,
    const std::vector<int>& grid_shape,
    CollectiveSchedule collectives = CollectiveKind::kBucket);

// Convenience wrappers that build a fresh machine with prod(grid) ranks.
ParMttkrpResult par_mttkrp_stationary(const DenseTensor& x,
                                      const std::vector<Matrix>& factors,
                                      int mode,
                                      const std::vector<int>& grid_shape);
ParMttkrpResult par_mttkrp_general(const DenseTensor& x,
                                   const std::vector<Matrix>& factors,
                                   int mode,
                                   const std::vector<int>& grid_shape);
ParMttkrpResult par_mttkrp_stationary(
    const StoredTensor& x, const std::vector<Matrix>& factors, int mode,
    const std::vector<int>& grid_shape,
    SparsePartitionScheme scheme = SparsePartitionScheme::kBlock);
ParMttkrpResult par_mttkrp_general(
    const StoredTensor& x, const std::vector<Matrix>& factors, int mode,
    const std::vector<int>& grid_shape,
    SparsePartitionScheme scheme = SparsePartitionScheme::kBlock);

}  // namespace mtk
