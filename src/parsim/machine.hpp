// Distributed-memory machine simulator (the paper's parallel model,
// Section II-C): P processors, each with local memory, communicating by
// sends and receives. The simulator executes real data movement — parallel
// algorithm outputs are bit-checked against the sequential reference — and
// keeps exact per-rank word counters, which stand in for the MPI machine the
// paper assumes (no MPI exists in this environment; see DESIGN.md).
//
// Both bandwidth (word counts) and latency (message counts) are tracked:
// the paper's analyses are bandwidth-only (Section II-C), but the planner's
// α-β cost model also consumes the per-rank message counters when choosing
// between the bucket and recursive collective schedules.
#pragma once

#include <string>
#include <vector>

#include "src/support/check.hpp"
#include "src/support/math_util.hpp"

namespace mtk {

struct CommStats {
  index_t words_sent = 0;
  index_t words_received = 0;
  index_t messages_sent = 0;

  // The paper's per-processor cost metric: sends plus receives.
  index_t words_moved() const { return words_sent + words_received; }
};

// One collective phase, recorded for per-phase breakdowns in benchmarks and
// for the plan-vs-actual drift report (src/obs/drift).
struct PhaseRecord {
  std::string label;
  int group_size = 0;
  index_t max_words_one_rank = 0;  // max over group members of sent+received
  // Per-machine-rank deltas over the phase: words moved (sent + received)
  // and messages sent. Empty in records built by hand; PhaseScope fills
  // them, and the drift report needs them to reproduce the predictor's
  // bottleneck-rank semantics.
  std::vector<index_t> rank_words;
  std::vector<index_t> rank_messages;
};

class Machine {
 public:
  explicit Machine(int num_ranks);

  int num_ranks() const { return static_cast<int>(stats_.size()); }

  // Point-to-point primitive: every collective reduces to calls to this.
  void record_send(int from, int to, index_t words);

  const CommStats& stats(int rank) const;
  void reset_stats();

  // Bottleneck metric over all ranks: max_p (sent_p + received_p).
  index_t max_words_moved() const;
  // Latency bottleneck: max_p messages sent (the α term of an α-β model).
  index_t max_messages_sent() const;
  // Aggregate words sent across the machine.
  index_t total_words_sent() const;

  void record_phase(PhaseRecord record) { phases_.push_back(std::move(record)); }
  const std::vector<PhaseRecord>& phases() const { return phases_; }

 private:
  std::vector<CommStats> stats_;
  std::vector<PhaseRecord> phases_;
};

}  // namespace mtk
