#include "src/parsim/par_mttkrp.hpp"

#include <numeric>

#include "src/mttkrp/mttkrp.hpp"
#include "src/parsim/collectives.hpp"
#include "src/parsim/distribution.hpp"
#include "src/parsim/grid.hpp"
#include "src/tensor/block.hpp"

namespace mtk {

namespace {

// Snapshots per-rank counters around one collective phase and records the
// per-phase bottleneck.
class PhaseScope {
 public:
  PhaseScope(Machine& machine, std::string label, int group_size)
      : machine_(machine), label_(std::move(label)), group_size_(group_size) {
    before_.reserve(static_cast<std::size_t>(machine.num_ranks()));
    for (int r = 0; r < machine.num_ranks(); ++r) {
      before_.push_back(machine.stats(r).words_moved());
    }
  }
  ~PhaseScope() {
    index_t max_delta = 0;
    for (int r = 0; r < machine_.num_ranks(); ++r) {
      max_delta = std::max(max_delta, machine_.stats(r).words_moved() -
                                          before_[static_cast<std::size_t>(r)]);
    }
    machine_.record_phase({label_, group_size_, max_delta});
  }

 private:
  Machine& machine_;
  std::string label_;
  int group_size_;
  std::vector<index_t> before_;
};

// Flattens rows [rows.lo, rows.hi) x all columns of `m` (row-major order).
std::vector<double> flatten_rows(const Matrix& m, Range rows) {
  std::vector<double> flat;
  flat.reserve(static_cast<std::size_t>(rows.length() * m.cols()));
  for (index_t i = rows.lo; i < rows.hi; ++i) {
    const double* r = m.row(i);
    flat.insert(flat.end(), r, r + m.cols());
  }
  return flat;
}

// Flattens the submatrix rows x cols of `m` (row-major order).
std::vector<double> flatten_submatrix(const Matrix& m, Range rows,
                                      Range cols) {
  std::vector<double> flat;
  flat.reserve(static_cast<std::size_t>(rows.length() * cols.length()));
  for (index_t i = rows.lo; i < rows.hi; ++i) {
    const double* r = m.row(i);
    flat.insert(flat.end(), r + cols.lo, r + cols.hi);
  }
  return flat;
}

Matrix unflatten(const std::vector<double>& flat, index_t rows,
                 index_t cols) {
  MTK_ASSERT(static_cast<index_t>(flat.size()) == rows * cols,
             "unflatten: ", flat.size(), " words != ", rows, "x", cols);
  Matrix m(rows, cols);
  std::copy(flat.begin(), flat.end(), m.data());
  return m;
}

ParMttkrpResult finalize(Machine& machine, Matrix b) {
  ParMttkrpResult result;
  result.b = std::move(b);
  result.max_words_moved = machine.max_words_moved();
  result.total_words_sent = machine.total_words_sent();
  result.phases = machine.phases();
  return result;
}

}  // namespace

ParMttkrpResult par_mttkrp_stationary(Machine& machine, const DenseTensor& x,
                                      const std::vector<Matrix>& factors,
                                      int mode,
                                      const std::vector<int>& grid_shape,
                                      CollectiveKind collectives) {
  const index_t rank_r = check_mttkrp_args(x, factors, mode);
  const int n = x.order();
  MTK_CHECK(static_cast<int>(grid_shape.size()) == n,
            "stationary algorithm needs an N-way grid; got ",
            grid_shape.size(), " dims for an order-", n, " tensor");
  const ProcessorGrid grid(grid_shape);
  const int p = grid.size();
  MTK_CHECK(machine.num_ranks() == p, "machine has ", machine.num_ranks(),
            " ranks but grid has ", p);
  for (int k = 0; k < n; ++k) {
    MTK_CHECK(grid_shape[static_cast<std::size_t>(k)] <= x.dim(k),
              "grid extent ", grid_shape[static_cast<std::size_t>(k)],
              " exceeds tensor dimension ", x.dim(k), " in mode ", k);
  }

  // Index partitions S^(k).
  std::vector<std::vector<Range>> parts(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    parts[static_cast<std::size_t>(k)] =
        block_partition(x.dim(k), grid.extent(k));
  }

  // Phase 1 (Line 4): All-Gather each input factor's block rows within the
  // hyperslice normal to mode k. gathered[k][c] is the full block row
  // A^(k)(S_c, :) shared by the hyperslice with p_k = c.
  std::vector<std::vector<Matrix>> gathered(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    if (k == mode) continue;
    PhaseScope scope(machine, std::string("all-gather A(") +
                                  std::to_string(k) + ")",
                     p / grid.extent(k));
    gathered[static_cast<std::size_t>(k)].resize(
        static_cast<std::size_t>(grid.extent(k)));
    for (int c = 0; c < grid.extent(k); ++c) {
      // The group is identical for every member; build it from the first
      // rank with p_k = c.
      std::vector<int> coords(static_cast<std::size_t>(n), 0);
      coords[static_cast<std::size_t>(k)] = c;
      const int representative = grid.rank_of(coords);
      const std::vector<int> group = grid.group_fixing({k}, representative);
      const int q = static_cast<int>(group.size());

      const Range rows = parts[static_cast<std::size_t>(k)][static_cast<std::size_t>(c)];
      const std::vector<double> block_row =
          flatten_rows(factors[static_cast<std::size_t>(k)], rows);
      const index_t total = static_cast<index_t>(block_row.size());

      // Member i initially owns the i-th flat chunk of the block row
      // (Section V-C1: "partitioned arbitrarily across the processors in
      // its hyperslice"; we use balanced contiguous chunks).
      std::vector<std::vector<double>> contributions(
          static_cast<std::size_t>(q));
      for (int i = 0; i < q; ++i) {
        const Range chunk = flat_chunk(total, q, i);
        contributions[static_cast<std::size_t>(i)].assign(
            block_row.begin() + chunk.lo, block_row.begin() + chunk.hi);
      }
      const std::vector<double> full =
          all_gather_dispatch(machine, group, contributions, collectives);
      gathered[static_cast<std::size_t>(k)][static_cast<std::size_t>(c)] =
          unflatten(full, rows.length(), rank_r);
    }
  }

  // Phase 2 (Line 6): local MTTKRP on each rank's stationary subtensor.
  std::vector<Matrix> local_c(static_cast<std::size_t>(p));
#pragma omp parallel for schedule(dynamic)
  for (int r = 0; r < p; ++r) {
    const std::vector<int> coords = grid.coords(r);
    std::vector<Range> ranges(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) {
      ranges[static_cast<std::size_t>(k)] =
          parts[static_cast<std::size_t>(k)]
               [static_cast<std::size_t>(coords[static_cast<std::size_t>(k)])];
    }
    const DenseTensor x_local = extract_block(x, ranges);
    std::vector<Matrix> local_factors(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) {
      if (k == mode) continue;
      local_factors[static_cast<std::size_t>(k)] =
          gathered[static_cast<std::size_t>(k)]
                  [static_cast<std::size_t>(coords[static_cast<std::size_t>(k)])];
    }
    local_c[static_cast<std::size_t>(r)] =
        mttkrp(x_local, local_factors, mode, {.algo = MttkrpAlgo::kTwoStep});
  }

  // Phase 3 (Line 7): Reduce-Scatter the contributions within the mode-n
  // hyperslices, then assemble the distributed output into a global B.
  Matrix b(x.dim(mode), rank_r);
  {
    PhaseScope scope(machine, "reduce-scatter B", p / grid.extent(mode));
    for (int c = 0; c < grid.extent(mode); ++c) {
      std::vector<int> coords(static_cast<std::size_t>(n), 0);
      coords[static_cast<std::size_t>(mode)] = c;
      const int representative = grid.rank_of(coords);
      const std::vector<int> group = grid.group_fixing({mode}, representative);
      const int q = static_cast<int>(group.size());

      const Range rows =
          parts[static_cast<std::size_t>(mode)][static_cast<std::size_t>(c)];
      const index_t total = checked_mul(rows.length(), rank_r);

      std::vector<std::vector<double>> inputs(static_cast<std::size_t>(q));
      for (int i = 0; i < q; ++i) {
        const Matrix& ci = local_c[static_cast<std::size_t>(
            group[static_cast<std::size_t>(i)])];
        inputs[static_cast<std::size_t>(i)] =
            flatten_rows(ci, Range{0, ci.rows()});
      }
      const std::vector<index_t> chunk_sizes = flat_chunk_sizes(total, q);
      const auto reduced =
          reduce_scatter_dispatch(machine, group, inputs, chunk_sizes,
                                  collectives);

      // Member i's chunk covers flat positions [chunk.lo, chunk.hi) of the
      // row-major flattened block row B(S_c, :).
      for (int i = 0; i < q; ++i) {
        const Range chunk = flat_chunk(total, q, i);
        for (index_t w = 0; w < chunk.length(); ++w) {
          const index_t flat = chunk.lo + w;
          b(rows.lo + flat / rank_r, flat % rank_r) =
              reduced[static_cast<std::size_t>(i)][static_cast<std::size_t>(w)];
        }
      }
    }
  }
  return finalize(machine, std::move(b));
}

ParMttkrpResult par_mttkrp_general(Machine& machine, const DenseTensor& x,
                                   const std::vector<Matrix>& factors,
                                   int mode,
                                   const std::vector<int>& grid_shape,
                                   CollectiveKind collectives) {
  const index_t rank_r = check_mttkrp_args(x, factors, mode);
  const int n = x.order();
  MTK_CHECK(static_cast<int>(grid_shape.size()) == n + 1,
            "general algorithm needs an (N+1)-way grid (P0, P1..PN); got ",
            grid_shape.size(), " dims for an order-", n, " tensor");
  const ProcessorGrid grid(grid_shape);
  const int p = grid.size();
  const int p0 = grid.extent(0);
  MTK_CHECK(machine.num_ranks() == p, "machine has ", machine.num_ranks(),
            " ranks but grid has ", p);
  MTK_CHECK(p0 <= rank_r, "grid extent P0 = ", p0, " exceeds rank R = ",
            rank_r);
  for (int k = 0; k < n; ++k) {
    MTK_CHECK(grid_shape[static_cast<std::size_t>(k + 1)] <= x.dim(k),
              "grid extent ", grid_shape[static_cast<std::size_t>(k + 1)],
              " exceeds tensor dimension ", x.dim(k), " in mode ", k);
  }

  // Index partitions: S^(k) over grid dim k+1; T over the rank dimension.
  std::vector<std::vector<Range>> parts(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    parts[static_cast<std::size_t>(k)] =
        block_partition(x.dim(k), grid.extent(k + 1));
  }
  const std::vector<Range> rank_parts = block_partition(rank_r, p0);

  // Phase 0 (Line 3): All-Gather the subtensor across each P0-fiber.
  // fiber_tensor[f] is the gathered X(S_{p_1},...,S_{p_N}) shared by fiber f
  // (f enumerates the N-way sub-grid of dims 1..N).
  const int fibers = p / p0;
  std::vector<DenseTensor> fiber_tensor(static_cast<std::size_t>(fibers));
  std::vector<std::vector<Range>> fiber_ranges(
      static_cast<std::size_t>(fibers));
  {
    PhaseScope scope(machine, "all-gather X", p0);
    std::vector<int> tensor_dims_fixed;
    for (int k = 1; k <= n; ++k) tensor_dims_fixed.push_back(k);
    for (int f = 0; f < fibers; ++f) {
      // Decode the fiber id into coordinates of grid dims 1..N.
      std::vector<int> coords(static_cast<std::size_t>(n + 1), 0);
      int rem = f;
      for (int k = 1; k <= n; ++k) {
        coords[static_cast<std::size_t>(k)] = rem % grid.extent(k);
        rem /= grid.extent(k);
      }
      const int representative = grid.rank_of(coords);
      const std::vector<int> group =
          grid.group_fixing(tensor_dims_fixed, representative);
      MTK_ASSERT(static_cast<int>(group.size()) == p0,
                 "fiber group size mismatch");

      std::vector<Range> ranges(static_cast<std::size_t>(n));
      for (int k = 0; k < n; ++k) {
        ranges[static_cast<std::size_t>(k)] = parts[static_cast<std::size_t>(k)]
            [static_cast<std::size_t>(coords[static_cast<std::size_t>(k + 1)])];
      }
      const DenseTensor sub = extract_block(x, ranges);
      const index_t total = sub.size();

      std::vector<std::vector<double>> contributions(
          static_cast<std::size_t>(p0));
      for (int i = 0; i < p0; ++i) {
        const Range chunk = flat_chunk(total, p0, i);
        contributions[static_cast<std::size_t>(i)].assign(
            sub.data() + chunk.lo, sub.data() + chunk.hi);
      }
      const std::vector<double> full =
          all_gather_dispatch(machine, group, contributions, collectives);
      shape_t sub_dims;
      for (const Range& rg : ranges) sub_dims.push_back(rg.length());
      DenseTensor assembled(sub_dims);
      std::copy(full.begin(), full.end(), assembled.data());
      fiber_tensor[static_cast<std::size_t>(f)] = std::move(assembled);
      fiber_ranges[static_cast<std::size_t>(f)] = std::move(ranges);
    }
  }

  // Phase 1 (Line 5): All-Gather factor submatrices A^(k)(S_pk, T_p0)
  // within the groups fixing (p_0, p_k).
  // gathered[k][c0][ck] is shared by all ranks with p_0 = c0 and p_k = ck.
  std::vector<std::vector<std::vector<Matrix>>> gathered(
      static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    if (k == mode) continue;
    PhaseScope scope(machine, std::string("all-gather A(") +
                                  std::to_string(k) + ")",
                     p / (p0 * grid.extent(k + 1)));
    gathered[static_cast<std::size_t>(k)].assign(
        static_cast<std::size_t>(p0),
        std::vector<Matrix>(static_cast<std::size_t>(grid.extent(k + 1))));
    for (int c0 = 0; c0 < p0; ++c0) {
      for (int ck = 0; ck < grid.extent(k + 1); ++ck) {
        std::vector<int> coords(static_cast<std::size_t>(n + 1), 0);
        coords[0] = c0;
        coords[static_cast<std::size_t>(k + 1)] = ck;
        const int representative = grid.rank_of(coords);
        const std::vector<int> group =
            grid.group_fixing({0, k + 1}, representative);
        const int q = static_cast<int>(group.size());

        const Range rows =
            parts[static_cast<std::size_t>(k)][static_cast<std::size_t>(ck)];
        const Range cols = rank_parts[static_cast<std::size_t>(c0)];
        const std::vector<double> block = flatten_submatrix(
            factors[static_cast<std::size_t>(k)], rows, cols);
        const index_t total = static_cast<index_t>(block.size());

        std::vector<std::vector<double>> contributions(
            static_cast<std::size_t>(q));
        for (int i = 0; i < q; ++i) {
          const Range chunk = flat_chunk(total, q, i);
          contributions[static_cast<std::size_t>(i)].assign(
              block.begin() + chunk.lo, block.begin() + chunk.hi);
        }
        const std::vector<double> full =
            all_gather_dispatch(machine, group, contributions, collectives);
        gathered[static_cast<std::size_t>(k)][static_cast<std::size_t>(c0)]
                [static_cast<std::size_t>(ck)] =
                    unflatten(full, rows.length(), cols.length());
      }
    }
  }

  // Phase 2 (Line 7): local MTTKRP per rank on the fiber-shared subtensor
  // with the column-sliced factors. Every rank of a fiber computes the same
  // subtensor but a different column slice T_{p_0}.
  std::vector<Matrix> local_c(static_cast<std::size_t>(p));
#pragma omp parallel for schedule(dynamic)
  for (int r = 0; r < p; ++r) {
    const std::vector<int> coords = grid.coords(r);
    int fiber = 0;
    int stride = 1;
    for (int k = 1; k <= n; ++k) {
      fiber += coords[static_cast<std::size_t>(k)] * stride;
      stride *= grid.extent(k);
    }
    const int c0 = coords[0];
    std::vector<Matrix> local_factors(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) {
      if (k == mode) continue;
      local_factors[static_cast<std::size_t>(k)] =
          gathered[static_cast<std::size_t>(k)][static_cast<std::size_t>(c0)]
                  [static_cast<std::size_t>(coords[static_cast<std::size_t>(k + 1)])];
    }
    local_c[static_cast<std::size_t>(r)] =
        mttkrp(fiber_tensor[static_cast<std::size_t>(fiber)], local_factors,
               mode, {.algo = MttkrpAlgo::kTwoStep});
  }

  // Phase 3 (Line 8): Reduce-Scatter within groups fixing (p_0, p_n), then
  // assemble the global B from the distributed chunks.
  Matrix b(x.dim(mode), rank_r);
  {
    PhaseScope scope(machine, "reduce-scatter B",
                     p / (p0 * grid.extent(mode + 1)));
    for (int c0 = 0; c0 < p0; ++c0) {
      for (int cn = 0; cn < grid.extent(mode + 1); ++cn) {
        std::vector<int> coords(static_cast<std::size_t>(n + 1), 0);
        coords[0] = c0;
        coords[static_cast<std::size_t>(mode + 1)] = cn;
        const int representative = grid.rank_of(coords);
        const std::vector<int> group =
            grid.group_fixing({0, mode + 1}, representative);
        const int q = static_cast<int>(group.size());

        const Range rows =
            parts[static_cast<std::size_t>(mode)][static_cast<std::size_t>(cn)];
        const Range cols = rank_parts[static_cast<std::size_t>(c0)];
        const index_t total = checked_mul(rows.length(), cols.length());

        std::vector<std::vector<double>> inputs(static_cast<std::size_t>(q));
        for (int i = 0; i < q; ++i) {
          const Matrix& ci = local_c[static_cast<std::size_t>(
              group[static_cast<std::size_t>(i)])];
          inputs[static_cast<std::size_t>(i)] =
              flatten_rows(ci, Range{0, ci.rows()});
        }
        const std::vector<index_t> chunk_sizes = flat_chunk_sizes(total, q);
        const auto reduced =
            reduce_scatter_dispatch(machine, group, inputs, chunk_sizes,
                                  collectives);

        for (int i = 0; i < q; ++i) {
          const Range chunk = flat_chunk(total, q, i);
          for (index_t w = 0; w < chunk.length(); ++w) {
            const index_t flat = chunk.lo + w;
            b(rows.lo + flat / cols.length(),
              cols.lo + flat % cols.length()) =
                reduced[static_cast<std::size_t>(i)][static_cast<std::size_t>(w)];
          }
        }
      }
    }
  }
  return finalize(machine, std::move(b));
}

ParMttkrpResult par_mttkrp_stationary(const DenseTensor& x,
                                      const std::vector<Matrix>& factors,
                                      int mode,
                                      const std::vector<int>& grid_shape) {
  int p = 1;
  for (int e : grid_shape) p *= e;
  Machine machine(p);
  return par_mttkrp_stationary(machine, x, factors, mode, grid_shape);
}

ParMttkrpResult par_mttkrp_general(const DenseTensor& x,
                                   const std::vector<Matrix>& factors,
                                   int mode,
                                   const std::vector<int>& grid_shape) {
  int p = 1;
  for (int e : grid_shape) p *= e;
  Machine machine(p);
  return par_mttkrp_general(machine, x, factors, mode, grid_shape);
}

}  // namespace mtk
