#include "src/parsim/par_mttkrp.hpp"

#include <numeric>

#include "src/mttkrp/mttkrp.hpp"
#include "src/parsim/collectives.hpp"
#include "src/parsim/grid.hpp"
#include "src/parsim/par_common.hpp"
#include "src/tensor/block.hpp"
#include "src/tensor/csf.hpp"

namespace mtk {

namespace {

ParMttkrpResult finalize(Transport& transport, Matrix b) {
  ParMttkrpResult result;
  result.b = std::move(b);
  result.max_words_moved = transport.max_words_moved();
  result.max_messages = transport.max_messages_sent();
  result.total_words_sent = transport.total_words_sent();
  result.phases = transport.phases();
  result.transport = transport.kind();
  result.comm_seconds = transport.comm_seconds();
  result.compute_seconds = transport.compute_seconds();
  return result;
}

// Common argument validation for the stationary driver.
void check_stationary_grid(const StoredTensor& x,
                           const std::vector<int>& grid_shape) {
  const int n = x.order();
  MTK_CHECK(static_cast<int>(grid_shape.size()) == n,
            "stationary algorithm needs an N-way grid; got ",
            grid_shape.size(), " dims for an order-", n, " tensor");
  for (int k = 0; k < n; ++k) {
    MTK_CHECK(grid_shape[static_cast<std::size_t>(k)] <= x.dim(k),
              "grid extent ", grid_shape[static_cast<std::size_t>(k)],
              " exceeds tensor dimension ", x.dim(k), " in mode ", k);
  }
}

// Algorithm 3 given a fixed index partition: `local_blocks` is null for
// dense storage (blocks are extracted on the fly) and the per-process
// nonzero blocks otherwise; `forest` optionally carries prebuilt per-rank
// CSF trees for the output mode. With the kBlock scheme the sparse
// partitions coincide with the dense ones, so the collective payloads are
// storage-independent.
ParMttkrpResult stationary_impl(
    Transport& transport, const StoredTensor& x,
    const std::vector<Matrix>& factors, int mode, const ProcessorGrid& grid,
    const std::vector<std::vector<Range>>& parts,
    const std::vector<SparseTensor>* local_blocks,
    const std::vector<std::vector<CsfTensor>>* forest,
    const CollectiveSchedule& collectives, SparseKernelVariant variant) {
  const index_t rank_r = check_mttkrp_args(x.dims(), factors, mode);
  const int n = x.order();
  const int p = grid.size();
  MTK_CHECK(transport.num_ranks() == p, "transport has ",
            transport.num_ranks(), " ranks but grid has ", p);

  // Phase 1 (Line 4): All-Gather each input factor's block rows within the
  // hyperslice normal to mode k. gathered[k][c] is the full block row
  // A^(k)(S_c, :) shared by the hyperslice with p_k = c.
  std::vector<std::vector<Matrix>> gathered(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    if (k == mode) continue;
    gathered[static_cast<std::size_t>(k)] = gather_factor_hyperslices(
        transport, grid, factors[static_cast<std::size_t>(k)],
        parts[static_cast<std::size_t>(k)], k, collectives.factor,
        std::string("all-gather A(") + std::to_string(k) + ")");
  }

  // Phase 2 (Line 6): local MTTKRP on each rank's stationary block — dense
  // subtensor with the two-step algorithm, or the native COO/CSF kernel on
  // the rank's nonzeros. Runs on the transport's rank threads (or the
  // simulator's OpenMP team), each rank serially with the planner-chosen
  // kernel variant.
  std::vector<Matrix> local_c(static_cast<std::size_t>(p));
  transport.run_ranks([&](int r) {
    const std::vector<int> coords = grid.coords(r);
    std::vector<Matrix> local_factors(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) {
      if (k == mode) continue;
      local_factors[static_cast<std::size_t>(k)] =
          gathered[static_cast<std::size_t>(k)]
                  [static_cast<std::size_t>(coords[static_cast<std::size_t>(k)])];
    }
    if (local_blocks == nullptr) {
      std::vector<Range> ranges(static_cast<std::size_t>(n));
      for (int k = 0; k < n; ++k) {
        ranges[static_cast<std::size_t>(k)] =
            parts[static_cast<std::size_t>(k)]
                 [static_cast<std::size_t>(coords[static_cast<std::size_t>(k)])];
      }
      const DenseTensor x_local = extract_block(x.as_dense(), ranges);
      local_c[static_cast<std::size_t>(r)] =
          mttkrp(x_local, local_factors, mode, {.algo = MttkrpAlgo::kTwoStep});
    } else if (forest != nullptr) {
      local_c[static_cast<std::size_t>(r)] = mttkrp_csf(
          (*forest)[static_cast<std::size_t>(r)][static_cast<std::size_t>(mode)],
          local_factors, mode, /*parallel=*/false, variant);
    } else {
      local_c[static_cast<std::size_t>(r)] = local_sparse_mttkrp(
          (*local_blocks)[static_cast<std::size_t>(r)], local_factors, mode,
          x.format(), variant);
    }
  });

  // Phase 3 (Line 7): Reduce-Scatter the contributions within the mode-n
  // hyperslices, then assemble the distributed output into a global B.
  Matrix b = reduce_scatter_hyperslices(
      transport, grid, local_c, parts[static_cast<std::size_t>(mode)], mode,
      x.dim(mode), rank_r, collectives.output, "reduce-scatter B");
  return finalize(transport, std::move(b));
}

}  // namespace

ParMttkrpResult par_mttkrp_stationary(Transport& transport,
                                      const StoredTensor& x,
                                      const std::vector<Matrix>& factors,
                                      int mode,
                                      const std::vector<int>& grid_shape,
                                      CollectiveSchedule collectives,
                                      SparsePartitionScheme scheme,
                                      SparseKernelVariant kernel_variant) {
  check_stationary_grid(x, grid_shape);
  const ProcessorGrid grid(grid_shape);
  if (x.format() == StorageFormat::kDense) {
    std::vector<std::vector<Range>> parts(
        static_cast<std::size_t>(x.order()));
    for (int k = 0; k < x.order(); ++k) {
      parts[static_cast<std::size_t>(k)] =
          block_partition(x.dim(k), grid.extent(k));
    }
    return stationary_impl(transport, x, factors, mode, grid, parts, nullptr,
                           nullptr, collectives, kernel_variant);
  }
  SparseTensor expanded;
  const SparseDistribution dist =
      distribute_nonzeros(sparse_coo_view(x, expanded), grid, scheme);
  return stationary_impl(transport, x, factors, mode, grid, dist.mode_ranges,
                         &dist.local, nullptr, collectives, kernel_variant);
}

ParMttkrpResult par_mttkrp_stationary(Machine& machine, const StoredTensor& x,
                                      const std::vector<Matrix>& factors,
                                      int mode,
                                      const std::vector<int>& grid_shape,
                                      CollectiveSchedule collectives,
                                      SparsePartitionScheme scheme) {
  SimTransport transport(machine);
  return par_mttkrp_stationary(static_cast<Transport&>(transport), x, factors,
                               mode, grid_shape, collectives, scheme);
}

StationarySparsePlan plan_stationary_sparse(const StoredTensor& x,
                                            const std::vector<int>& grid_shape,
                                            SparsePartitionScheme scheme) {
  MTK_CHECK(x.format() != StorageFormat::kDense,
            "plan_stationary_sparse applies to sparse storage only");
  check_stationary_grid(x, grid_shape);
  const ProcessorGrid grid(grid_shape);
  StationarySparsePlan plan;
  SparseTensor expanded;
  plan.dist = distribute_nonzeros(sparse_coo_view(x, expanded), grid, scheme);
  if (x.format() == StorageFormat::kCsf) {
    const int n = x.order();
    const int p = grid.size();
    plan.forest.resize(static_cast<std::size_t>(p));
#pragma omp parallel for schedule(dynamic)
    for (int r = 0; r < p; ++r) {
      std::vector<CsfTensor>& trees = plan.forest[static_cast<std::size_t>(r)];
      trees.reserve(static_cast<std::size_t>(n));
      for (int mode = 0; mode < n; ++mode) {
        trees.push_back(CsfTensor::from_coo(
            plan.dist.local[static_cast<std::size_t>(r)], mode));
      }
    }
  }
  return plan;
}

ParMttkrpResult par_mttkrp_stationary(Transport& transport,
                                      const StoredTensor& x,
                                      const std::vector<Matrix>& factors,
                                      int mode,
                                      const std::vector<int>& grid_shape,
                                      const StationarySparsePlan& plan,
                                      CollectiveSchedule collectives,
                                      SparseKernelVariant kernel_variant) {
  MTK_CHECK(x.format() != StorageFormat::kDense,
            "a precomputed plan applies to sparse storage only");
  check_stationary_grid(x, grid_shape);
  const ProcessorGrid grid(grid_shape);
  const SparseDistribution& dist = plan.dist;
  MTK_CHECK(static_cast<int>(dist.local.size()) == grid.size() &&
                static_cast<int>(dist.mode_ranges.size()) == x.order(),
            "plan does not match the grid (", dist.local.size(),
            " blocks for ", grid.size(), " ranks)");
  for (int k = 0; k < x.order(); ++k) {
    const std::vector<Range>& ranges =
        dist.mode_ranges[static_cast<std::size_t>(k)];
    MTK_CHECK(static_cast<int>(ranges.size()) == grid.extent(k) &&
                  !ranges.empty() && ranges.back().hi == x.dim(k),
              "plan mode ", k, " partition does not match the grid");
  }
  const bool use_forest = x.format() == StorageFormat::kCsf;
  MTK_CHECK(!use_forest ||
                static_cast<int>(plan.forest.size()) == grid.size(),
            "plan forest does not match the grid");
  return stationary_impl(transport, x, factors, mode, grid, dist.mode_ranges,
                         &dist.local, use_forest ? &plan.forest : nullptr,
                         collectives, kernel_variant);
}

ParMttkrpResult par_mttkrp_stationary(Machine& machine, const StoredTensor& x,
                                      const std::vector<Matrix>& factors,
                                      int mode,
                                      const std::vector<int>& grid_shape,
                                      const StationarySparsePlan& plan,
                                      CollectiveSchedule collectives) {
  SimTransport transport(machine);
  return par_mttkrp_stationary(static_cast<Transport&>(transport), x, factors,
                               mode, grid_shape, plan, collectives);
}

ParMttkrpResult par_mttkrp_general(Transport& transport, const StoredTensor& x,
                                   const std::vector<Matrix>& factors,
                                   int mode,
                                   const std::vector<int>& grid_shape,
                                   CollectiveSchedule collectives,
                                   SparsePartitionScheme scheme,
                                   SparseKernelVariant kernel_variant) {
  const index_t rank_r = check_mttkrp_args(x.dims(), factors, mode);
  const int n = x.order();
  MTK_CHECK(static_cast<int>(grid_shape.size()) == n + 1,
            "general algorithm needs an (N+1)-way grid (P0, P1..PN); got ",
            grid_shape.size(), " dims for an order-", n, " tensor");
  const ProcessorGrid grid(grid_shape);
  const int p = grid.size();
  const int p0 = grid.extent(0);
  MTK_CHECK(transport.num_ranks() == p, "transport has ",
            transport.num_ranks(), " ranks but grid has ", p);
  MTK_CHECK(p0 <= rank_r, "grid extent P0 = ", p0, " exceeds rank R = ",
            rank_r);
  for (int k = 0; k < n; ++k) {
    MTK_CHECK(grid_shape[static_cast<std::size_t>(k + 1)] <= x.dim(k),
              "grid extent ", grid_shape[static_cast<std::size_t>(k + 1)],
              " exceeds tensor dimension ", x.dim(k), " in mode ", k);
  }

  // Index partitions: S^(k) over grid dim k+1; T over the rank dimension.
  // The N-way sub-grid over grid dims 1..N enumerates the P0-fibers in the
  // same column-major order the full grid uses for those dimensions.
  const bool dense = x.format() == StorageFormat::kDense;
  const std::vector<int> sub_shape(grid_shape.begin() + 1, grid_shape.end());
  const ProcessorGrid sub_grid(sub_shape);
  const int fibers = sub_grid.size();

  SparseTensor expanded;
  std::vector<std::vector<Range>> parts;
  std::vector<SparseTensor> fiber_blocks;
  if (dense) {
    parts.resize(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) {
      parts[static_cast<std::size_t>(k)] =
          block_partition(x.dim(k), grid.extent(k + 1));
    }
  } else {
    SparseDistribution dist = distribute_nonzeros(
        sparse_coo_view(x, expanded), sub_grid, scheme);
    parts = std::move(dist.mode_ranges);
    fiber_blocks = std::move(dist.local);
  }
  const std::vector<Range> rank_parts = block_partition(rank_r, p0);

  // Phase 0 (Line 3): All-Gather the subtensor across each P0-fiber. Dense
  // blocks travel as flat entries; sparse blocks as (coordinates, value)
  // tuples, N+1 words per nonzero. Every fiber member ends with the full
  // block X(S_{p_1},...,S_{p_N}).
  std::vector<DenseTensor> fiber_dense(dense ? static_cast<std::size_t>(fibers)
                                             : 0);
  {
    PhaseScope scope(transport, "all-gather X", p0);
    std::vector<int> tensor_dims_fixed;
    for (int k = 1; k <= n; ++k) tensor_dims_fixed.push_back(k);
    for (int f = 0; f < fibers; ++f) {
      const std::vector<int> sub_coords = sub_grid.coords(f);
      std::vector<int> coords(static_cast<std::size_t>(n + 1), 0);
      for (int k = 0; k < n; ++k) {
        coords[static_cast<std::size_t>(k + 1)] =
            sub_coords[static_cast<std::size_t>(k)];
      }
      const int representative = grid.rank_of(coords);
      const std::vector<int> group =
          grid.group_fixing(tensor_dims_fixed, representative);
      MTK_ASSERT(static_cast<int>(group.size()) == p0,
                 "fiber group size mismatch");

      std::vector<double> flat;
      if (dense) {
        std::vector<Range> ranges(static_cast<std::size_t>(n));
        for (int k = 0; k < n; ++k) {
          ranges[static_cast<std::size_t>(k)] =
              parts[static_cast<std::size_t>(k)][static_cast<std::size_t>(
                  sub_coords[static_cast<std::size_t>(k)])];
        }
        const DenseTensor sub = extract_block(x.as_dense(), ranges);
        flat.assign(sub.data(), sub.data() + sub.size());
      } else {
        const SparseTensor& block =
            fiber_blocks[static_cast<std::size_t>(f)];
        flat.reserve(static_cast<std::size_t>(
            block.nnz() * static_cast<index_t>(n + 1)));
        for (index_t q = 0; q < block.nnz(); ++q) {
          for (int k = 0; k < n; ++k) {
            flat.push_back(static_cast<double>(block.index(k, q)));
          }
          flat.push_back(block.value(q));
        }
      }
      const index_t total = static_cast<index_t>(flat.size());

      std::vector<std::vector<double>> contributions(
          static_cast<std::size_t>(p0));
      for (int i = 0; i < p0; ++i) {
        const Range chunk = flat_chunk(total, p0, i);
        contributions[static_cast<std::size_t>(i)].assign(
            flat.begin() + chunk.lo, flat.begin() + chunk.hi);
      }
      const std::vector<double> full =
          transport.all_gather(group, contributions, collectives.tensor);
      if (dense) {
        shape_t sub_dims;
        for (int k = 0; k < n; ++k) {
          sub_dims.push_back(
              parts[static_cast<std::size_t>(k)]
                   [static_cast<std::size_t>(
                        sub_coords[static_cast<std::size_t>(k)])]
                  .length());
        }
        DenseTensor assembled(sub_dims);
        std::copy(full.begin(), full.end(), assembled.data());
        fiber_dense[static_cast<std::size_t>(f)] = std::move(assembled);
      } else {
        // Reassemble the block from the collective's output (replacing the
        // locally partitioned copy) so the gathered data — not just the
        // counters — feeds the local compute below.
        SparseTensor assembled(
            fiber_blocks[static_cast<std::size_t>(f)].dims());
        multi_index_t idx(static_cast<std::size_t>(n));
        for (std::size_t w = 0; w + n < full.size();
             w += static_cast<std::size_t>(n + 1)) {
          for (int k = 0; k < n; ++k) {
            idx[static_cast<std::size_t>(k)] = static_cast<index_t>(
                full[w + static_cast<std::size_t>(k)]);
          }
          assembled.push_back(idx, full[w + static_cast<std::size_t>(n)]);
        }
        assembled.sort_and_dedup();
        fiber_blocks[static_cast<std::size_t>(f)] = std::move(assembled);
      }
    }
  }

  // Phase 1 (Line 5): All-Gather factor submatrices A^(k)(S_pk, T_p0)
  // within the groups fixing (p_0, p_k).
  // gathered[k][c0][ck] is shared by all ranks with p_0 = c0 and p_k = ck.
  std::vector<std::vector<std::vector<Matrix>>> gathered(
      static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    if (k == mode) continue;
    PhaseScope scope(transport, std::string("all-gather A(") +
                                    std::to_string(k) + ")",
                     p / (p0 * grid.extent(k + 1)));
    gathered[static_cast<std::size_t>(k)].assign(
        static_cast<std::size_t>(p0),
        std::vector<Matrix>(static_cast<std::size_t>(grid.extent(k + 1))));
    for (int c0 = 0; c0 < p0; ++c0) {
      for (int ck = 0; ck < grid.extent(k + 1); ++ck) {
        std::vector<int> coords(static_cast<std::size_t>(n + 1), 0);
        coords[0] = c0;
        coords[static_cast<std::size_t>(k + 1)] = ck;
        const int representative = grid.rank_of(coords);
        const std::vector<int> group =
            grid.group_fixing({0, k + 1}, representative);
        const int q = static_cast<int>(group.size());

        const Range rows =
            parts[static_cast<std::size_t>(k)][static_cast<std::size_t>(ck)];
        const Range cols = rank_parts[static_cast<std::size_t>(c0)];
        const std::vector<double> block = flatten_submatrix(
            factors[static_cast<std::size_t>(k)], rows, cols);
        const index_t total = static_cast<index_t>(block.size());

        std::vector<std::vector<double>> contributions(
            static_cast<std::size_t>(q));
        for (int i = 0; i < q; ++i) {
          const Range chunk = flat_chunk(total, q, i);
          contributions[static_cast<std::size_t>(i)].assign(
              block.begin() + chunk.lo, block.begin() + chunk.hi);
        }
        const std::vector<double> full =
            transport.all_gather(group, contributions, collectives.factor);
        gathered[static_cast<std::size_t>(k)][static_cast<std::size_t>(c0)]
                [static_cast<std::size_t>(ck)] =
                    unflatten_matrix(full, rows.length(), cols.length());
      }
    }
  }

  // Phase 2 (Line 7): local MTTKRP per rank on the fiber-shared block with
  // the column-sliced factors. Every rank of a fiber computes the same
  // block but a different column slice T_{p_0} — so CSF trees are built
  // once per fiber, not once per rank.
  std::vector<CsfTensor> fiber_trees;
  if (!dense && x.format() == StorageFormat::kCsf) {
    fiber_trees.resize(static_cast<std::size_t>(fibers));
#pragma omp parallel for schedule(dynamic)
    for (int f = 0; f < fibers; ++f) {
      fiber_trees[static_cast<std::size_t>(f)] = CsfTensor::from_coo(
          fiber_blocks[static_cast<std::size_t>(f)], mode);
    }
  }
  std::vector<Matrix> local_c(static_cast<std::size_t>(p));
  transport.run_ranks([&](int r) {
    const std::vector<int> coords = grid.coords(r);
    std::vector<int> sub_coords(coords.begin() + 1, coords.end());
    const int fiber = sub_grid.rank_of(sub_coords);
    const int c0 = coords[0];
    std::vector<Matrix> local_factors(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) {
      if (k == mode) continue;
      local_factors[static_cast<std::size_t>(k)] =
          gathered[static_cast<std::size_t>(k)][static_cast<std::size_t>(c0)]
                  [static_cast<std::size_t>(coords[static_cast<std::size_t>(k + 1)])];
    }
    if (dense) {
      local_c[static_cast<std::size_t>(r)] =
          mttkrp(fiber_dense[static_cast<std::size_t>(fiber)], local_factors,
                 mode, {.algo = MttkrpAlgo::kTwoStep});
    } else if (x.format() == StorageFormat::kCsf) {
      local_c[static_cast<std::size_t>(r)] = mttkrp_csf(
          fiber_trees[static_cast<std::size_t>(fiber)], local_factors, mode,
          /*parallel=*/false, kernel_variant);
    } else {
      local_c[static_cast<std::size_t>(r)] = mttkrp_coo(
          fiber_blocks[static_cast<std::size_t>(fiber)], local_factors, mode,
          /*parallel=*/false, kernel_variant);
    }
  });

  // Phase 3 (Line 8): Reduce-Scatter within groups fixing (p_0, p_n), then
  // assemble the global B from the distributed chunks.
  Matrix b(x.dim(mode), rank_r);
  {
    PhaseScope scope(transport, "reduce-scatter B",
                     p / (p0 * grid.extent(mode + 1)));
    for (int c0 = 0; c0 < p0; ++c0) {
      for (int cn = 0; cn < grid.extent(mode + 1); ++cn) {
        std::vector<int> coords(static_cast<std::size_t>(n + 1), 0);
        coords[0] = c0;
        coords[static_cast<std::size_t>(mode + 1)] = cn;
        const int representative = grid.rank_of(coords);
        const std::vector<int> group =
            grid.group_fixing({0, mode + 1}, representative);
        const int q = static_cast<int>(group.size());

        const Range rows =
            parts[static_cast<std::size_t>(mode)][static_cast<std::size_t>(cn)];
        const Range cols = rank_parts[static_cast<std::size_t>(c0)];
        const index_t total = checked_mul(rows.length(), cols.length());

        std::vector<std::vector<double>> inputs(static_cast<std::size_t>(q));
        for (int i = 0; i < q; ++i) {
          const Matrix& ci = local_c[static_cast<std::size_t>(
              group[static_cast<std::size_t>(i)])];
          inputs[static_cast<std::size_t>(i)] =
              flatten_rows(ci, Range{0, ci.rows()});
        }
        const std::vector<index_t> chunk_sizes = flat_chunk_sizes(total, q);
        const auto reduced = transport.reduce_scatter(
            group, inputs, chunk_sizes, collectives.output);

        for (int i = 0; i < q; ++i) {
          const Range chunk = flat_chunk(total, q, i);
          for (index_t w = 0; w < chunk.length(); ++w) {
            const index_t flat = chunk.lo + w;
            b(rows.lo + flat / cols.length(),
              cols.lo + flat % cols.length()) =
                reduced[static_cast<std::size_t>(i)][static_cast<std::size_t>(w)];
          }
        }
      }
    }
  }
  return finalize(transport, std::move(b));
}

ParMttkrpResult par_mttkrp_general(Machine& machine, const StoredTensor& x,
                                   const std::vector<Matrix>& factors,
                                   int mode,
                                   const std::vector<int>& grid_shape,
                                   CollectiveSchedule collectives,
                                   SparsePartitionScheme scheme) {
  SimTransport transport(machine);
  return par_mttkrp_general(static_cast<Transport&>(transport), x, factors,
                            mode, grid_shape, collectives, scheme);
}

// ---------------------------------------------------------------------------
// Dense overloads and convenience wrappers.

ParMttkrpResult par_mttkrp_stationary(Machine& machine, const DenseTensor& x,
                                      const std::vector<Matrix>& factors,
                                      int mode,
                                      const std::vector<int>& grid_shape,
                                      CollectiveSchedule collectives) {
  return par_mttkrp_stationary(machine, StoredTensor::dense_view(x), factors,
                               mode, grid_shape, collectives);
}

ParMttkrpResult par_mttkrp_general(Machine& machine, const DenseTensor& x,
                                   const std::vector<Matrix>& factors,
                                   int mode,
                                   const std::vector<int>& grid_shape,
                                   CollectiveSchedule collectives) {
  return par_mttkrp_general(machine, StoredTensor::dense_view(x), factors,
                            mode, grid_shape, collectives);
}

ParMttkrpResult par_mttkrp_stationary(const DenseTensor& x,
                                      const std::vector<Matrix>& factors,
                                      int mode,
                                      const std::vector<int>& grid_shape) {
  Machine machine(grid_size(grid_shape));
  return par_mttkrp_stationary(machine, x, factors, mode, grid_shape);
}

ParMttkrpResult par_mttkrp_general(const DenseTensor& x,
                                   const std::vector<Matrix>& factors,
                                   int mode,
                                   const std::vector<int>& grid_shape) {
  Machine machine(grid_size(grid_shape));
  return par_mttkrp_general(machine, x, factors, mode, grid_shape);
}

ParMttkrpResult par_mttkrp_stationary(const StoredTensor& x,
                                      const std::vector<Matrix>& factors,
                                      int mode,
                                      const std::vector<int>& grid_shape,
                                      SparsePartitionScheme scheme) {
  Machine machine(grid_size(grid_shape));
  return par_mttkrp_stationary(machine, x, factors, mode, grid_shape,
                               CollectiveKind::kBucket, scheme);
}

ParMttkrpResult par_mttkrp_general(const StoredTensor& x,
                                   const std::vector<Matrix>& factors,
                                   int mode,
                                   const std::vector<int>& grid_shape,
                                   SparsePartitionScheme scheme) {
  Machine machine(grid_size(grid_shape));
  return par_mttkrp_general(machine, x, factors, mode, grid_shape,
                            CollectiveKind::kBucket, scheme);
}

}  // namespace mtk
