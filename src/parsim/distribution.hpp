// Data-distribution helpers for the parallel algorithms (Sections V-C1,
// V-D1): balanced contiguous partitions of index ranges and of flattened
// entry sets.
#pragma once

#include <vector>

#include "src/tensor/block.hpp"

namespace mtk {

// Partitions [0, n) into `parts` contiguous ranges whose sizes differ by at
// most one (the first n % parts ranges get the extra element). Ranges may be
// empty when parts > n.
std::vector<Range> block_partition(index_t n, int parts);

// The `which`-th of `parts` near-balanced contiguous chunks of a flat array
// of `total` entries.
Range flat_chunk(index_t total, int parts, int which);

// Sizes of all `parts` chunks of a flat array of `total` entries.
std::vector<index_t> flat_chunk_sizes(index_t total, int parts);

}  // namespace mtk
