// Data-distribution helpers for the parallel algorithms (Sections V-C1,
// V-D1): balanced contiguous partitions of index ranges and of flattened
// entry sets, plus the sparse nonzero distribution used by the sparse-aware
// parallel MTTKRP. Sparse tensors are partitioned over the same N-way
// processor grid as dense ones — every process owns the nonzeros falling in
// a rectangular block of coordinate ranges — with two ways of choosing the
// per-mode range boundaries:
//
//   kBlock         — uniform index ranges (block_partition), matching the
//                    dense algorithm exactly, so dense and sparse runs are
//                    directly comparable (identical collective payloads).
//   kMediumGrained — nonzero-balanced index ranges (the medium-grained
//                    decomposition of Smith & Karypis): each mode's
//                    boundaries are placed so its slabs hold roughly equal
//                    nonzero counts, trading the dense-comparable layout for
//                    sparse load balance.
#pragma once

#include <vector>

#include "src/parsim/grid.hpp"
#include "src/tensor/block.hpp"
#include "src/tensor/sparse_tensor.hpp"

namespace mtk {

// Partitions [0, n) into `parts` contiguous ranges whose sizes differ by at
// most one (the first n % parts ranges get the extra element). Ranges may be
// empty when parts > n.
std::vector<Range> block_partition(index_t n, int parts);

// The `which`-th of `parts` near-balanced contiguous chunks of a flat array
// of `total` entries.
Range flat_chunk(index_t total, int parts, int which);

// Sizes of all `parts` chunks of a flat array of `total` entries.
std::vector<index_t> flat_chunk_sizes(index_t total, int parts);

// ---------------------------------------------------------------------------
// Sparse nonzero distribution.

enum class SparsePartitionScheme { kBlock, kMediumGrained };

const char* to_string(SparsePartitionScheme scheme);

// Partitions [0, dim(mode)) into `parts` non-empty contiguous ranges whose
// nonzero counts are as balanced as a greedy contiguous cut allows (each
// boundary is pushed until the cumulative count reaches the proportional
// target, while always leaving one index for every remaining part).
// Requires 1 <= parts <= dim(mode).
std::vector<Range> balanced_mode_partition(const SparseTensor& x, int mode,
                                           int parts);

// Per-mode coordinate partitions S^(k) for an N-way grid over `x`:
// extents[k] ranges in mode k, contiguous and covering [0, dim(k)).
std::vector<std::vector<Range>> sparse_mode_partitions(
    const SparseTensor& x, const std::vector<int>& extents,
    SparsePartitionScheme scheme);

// Assigns every nonzero to the unique process whose coordinate block
// contains it, rebasing indices so each local tensor's mode-k coordinates
// run over [0, mode_ranges[k][c_k].length()). Local tensors come back
// sorted/deduped (kernel-ready); processes whose block holds no nonzeros get
// an empty tensor of the block's shape. `mode_ranges[k]` must be contiguous
// non-empty partitions of [0, dim(k)) with grid.extent(k) parts.
std::vector<SparseTensor> partition_nonzeros(
    const SparseTensor& x, const ProcessorGrid& grid,
    const std::vector<std::vector<Range>>& mode_ranges);

// The full sparse distribution: per-mode ranges plus per-process local
// blocks.
struct SparseDistribution {
  std::vector<std::vector<Range>> mode_ranges;  // [order][grid extent]
  std::vector<SparseTensor> local;              // [grid size], rebased
};

SparseDistribution distribute_nonzeros(const SparseTensor& x,
                                       const ProcessorGrid& grid,
                                       SparsePartitionScheme scheme);

// Per-process nonzero counts for a coordinate-block partition, without
// materializing the local tensors (one O(nnz log P) pass). Feeds the
// planner's load-balance report and the scaling bench's imbalance columns.
struct BlockNnzStats {
  std::vector<index_t> per_block;  // [grid size], grid rank order
  index_t max_nnz = 0;
  index_t min_nnz = 0;
  double mean_nnz = 0.0;
  // Bottleneck-to-mean ratio (>= 1); 1.0 means perfectly balanced. The
  // convention of Smith & Karypis' load-imbalance metric.
  double imbalance() const { return mean_nnz > 0.0 ? max_nnz / mean_nnz : 1.0; }
};

// Counts the nonzeros of `x` falling in each process's coordinate block.
// `mode_ranges[k]` must be contiguous partitions of [0, dim(k)) with
// grid.extent(k) parts (the shape sparse_mode_partitions returns).
BlockNnzStats count_block_nnz(const SparseTensor& x, const ProcessorGrid& grid,
                              const std::vector<std::vector<Range>>& mode_ranges);

// Convenience: partitions under `scheme`, then counts.
BlockNnzStats count_block_nnz(const SparseTensor& x, const ProcessorGrid& grid,
                              SparsePartitionScheme scheme);

}  // namespace mtk
