// Logical processor grids (Sections V-C1 and V-D1). Ranks map to grid
// coordinates in column-major order (first grid dimension fastest). The
// hyperslice groups used by the All-Gather and Reduce-Scatter phases are the
// sets of ranks that agree on a subset of coordinates.
#pragma once

#include <vector>

#include "src/support/check.hpp"
#include "src/support/math_util.hpp"

namespace mtk {

class ProcessorGrid {
 public:
  explicit ProcessorGrid(std::vector<int> shape);

  int ndims() const { return static_cast<int>(shape_.size()); }
  int size() const { return size_; }
  const std::vector<int>& shape() const { return shape_; }
  int extent(int dim) const;

  std::vector<int> coords(int rank) const;
  int rank_of(const std::vector<int>& coords) const;

  // The ordered group of ranks whose coordinates match those of `rank` on
  // every dimension in `fixed_dims`, varying all other dimensions
  // (column-major order of the varying coordinates). The caller's own rank
  // is always a member; its position is deterministic and identical on all
  // members, which is what the ring collectives require.
  std::vector<int> group_fixing(const std::vector<int>& fixed_dims,
                                int rank) const;

  // Position of `rank` within group_fixing(fixed_dims, rank).
  int position_in_group(const std::vector<int>& fixed_dims, int rank) const;

 private:
  std::vector<int> shape_;
  int size_ = 1;
};

}  // namespace mtk
