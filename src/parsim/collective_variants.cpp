#include "src/parsim/collective_variants.hpp"

#include <algorithm>

#include "src/parsim/collectives.hpp"
#include "src/support/math_util.hpp"

namespace mtk {

namespace {

void check_pow2_group(const Machine& machine, const std::vector<int>& group) {
  MTK_CHECK(!group.empty(), "collective group must be non-empty");
  MTK_CHECK(is_pow2(static_cast<index_t>(group.size())),
            "recursive collectives require a power-of-two group size, got ",
            group.size());
  for (int r : group) {
    MTK_CHECK(r >= 0 && r < machine.num_ranks(),
              "group contains invalid rank ", r);
  }
  std::vector<int> sorted = group;
  std::sort(sorted.begin(), sorted.end());
  MTK_CHECK(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
            "collective group contains duplicate ranks");
}

}  // namespace

std::vector<double> all_gather_doubling(
    Machine& machine, const std::vector<int>& group,
    const std::vector<std::vector<double>>& contributions) {
  check_pow2_group(machine, group);
  const int q = static_cast<int>(group.size());
  MTK_CHECK(static_cast<int>(contributions.size()) == q,
            "all_gather_doubling: expected ", q, " contributions, got ",
            contributions.size());

  // held[i] = the set of chunk indices member i currently owns; words[i] =
  // their total size. Data assembly is done at the end (all members end
  // with everything), but counters follow the recursive exchange exactly.
  std::vector<index_t> sizes(static_cast<std::size_t>(q));
  for (int i = 0; i < q; ++i) {
    sizes[static_cast<std::size_t>(i)] =
        static_cast<index_t>(contributions[static_cast<std::size_t>(i)].size());
  }
  std::vector<std::vector<int>> held(static_cast<std::size_t>(q));
  for (int i = 0; i < q; ++i) held[static_cast<std::size_t>(i)] = {i};

  for (int dist = 1; dist < q; dist *= 2) {
    // Pairs (i, i ^ dist) swap everything they hold.
    std::vector<std::vector<int>> next = held;
    for (int i = 0; i < q; ++i) {
      const int partner = i ^ dist;
      index_t words = 0;
      for (int c : held[static_cast<std::size_t>(i)]) {
        words += sizes[static_cast<std::size_t>(c)];
      }
      machine.record_send(group[static_cast<std::size_t>(i)],
                          group[static_cast<std::size_t>(partner)], words);
      next[static_cast<std::size_t>(partner)].insert(
          next[static_cast<std::size_t>(partner)].end(),
          held[static_cast<std::size_t>(i)].begin(),
          held[static_cast<std::size_t>(i)].end());
    }
    held = std::move(next);
  }

  std::vector<double> result;
  for (const auto& c : contributions) {
    result.insert(result.end(), c.begin(), c.end());
  }
  return result;
}

std::vector<std::vector<double>> reduce_scatter_halving(
    Machine& machine, const std::vector<int>& group,
    const std::vector<std::vector<double>>& inputs) {
  check_pow2_group(machine, group);
  const int q = static_cast<int>(group.size());
  MTK_CHECK(static_cast<int>(inputs.size()) == q,
            "reduce_scatter_halving: expected ", q, " inputs, got ",
            inputs.size());
  const index_t total = static_cast<index_t>(inputs.front().size());
  for (const auto& v : inputs) {
    MTK_CHECK(static_cast<index_t>(v.size()) == total,
              "reduce_scatter_halving: ragged inputs");
  }
  MTK_CHECK(total % q == 0, "reduce_scatter_halving: vector length ", total,
            " must divide evenly into ", q, " chunks");
  const index_t chunk = total / q;

  // working[i] = member i's current partial over its active index window
  // [lo[i], lo[i] + len[i]) in chunk units.
  std::vector<std::vector<double>> working = inputs;
  std::vector<int> lo(static_cast<std::size_t>(q), 0);
  int len = q;  // active window length in chunks, uniform across members

  for (int half = q / 2; half >= 1; half /= 2) {
    std::vector<std::vector<double>> incoming(static_cast<std::size_t>(q));
    std::vector<int> incoming_lo(static_cast<std::size_t>(q));
    for (int i = 0; i < q; ++i) {
      const int partner = i ^ half;
      // Member i keeps the half of its window containing its own final
      // chunk (bit pattern of i decides: if (i & half) the upper half).
      const bool keep_upper = (i & half) != 0;
      const int send_lo =
          lo[static_cast<std::size_t>(i)] + (keep_upper ? 0 : half);
      machine.record_send(group[static_cast<std::size_t>(i)],
                          group[static_cast<std::size_t>(partner)],
                          static_cast<index_t>(half) * chunk);
      // Extract the words sent (chunk window [send_lo, send_lo + half)).
      const auto& src = working[static_cast<std::size_t>(i)];
      const index_t off =
          static_cast<index_t>(send_lo - lo[static_cast<std::size_t>(i)]) *
          chunk;
      incoming[static_cast<std::size_t>(partner)].assign(
          src.begin() + off, src.begin() + off + half * chunk);
      incoming_lo[static_cast<std::size_t>(partner)] = send_lo;
    }
    for (int i = 0; i < q; ++i) {
      // Shrink to the kept half and add the partner's contribution.
      const bool keep_upper = (i & half) != 0;
      const int new_lo =
          lo[static_cast<std::size_t>(i)] + (keep_upper ? half : 0);
      auto& cur = working[static_cast<std::size_t>(i)];
      const index_t off =
          static_cast<index_t>(new_lo - lo[static_cast<std::size_t>(i)]) *
          chunk;
      std::vector<double> kept(cur.begin() + off,
                               cur.begin() + off + half * chunk);
      MTK_ASSERT(incoming_lo[static_cast<std::size_t>(i)] == new_lo,
                 "recursive halving window mismatch");
      const auto& add = incoming[static_cast<std::size_t>(i)];
      for (std::size_t w = 0; w < kept.size(); ++w) kept[w] += add[w];
      cur = std::move(kept);
      lo[static_cast<std::size_t>(i)] = new_lo;
    }
    len = half;
  }
  MTK_ASSERT(len == 1, "recursive halving did not reach single chunks");
  for (int i = 0; i < q; ++i) {
    MTK_ASSERT(lo[static_cast<std::size_t>(i)] == i,
               "member ended with the wrong chunk");
  }
  return working;
}

index_t max_messages_sent(const Machine& machine,
                          const std::vector<int>& group) {
  index_t best = 0;
  for (int r : group) {
    best = std::max(best, machine.stats(r).messages_sent);
  }
  return best;
}

const char* to_string(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::kBucket: return "bucket";
    case CollectiveKind::kRecursive: return "rec";
  }
  return "unknown";
}

std::string to_string(const CollectiveSchedule& schedule) {
  std::string s = to_string(schedule.tensor);
  s += '/';
  s += to_string(schedule.factor);
  s += '/';
  s += to_string(schedule.output);
  s += '/';
  s += to_string(schedule.gram);
  return s;
}

bool recursive_all_gather_applies(int group_size) {
  return is_pow2(static_cast<index_t>(group_size));
}

bool recursive_reduce_scatter_applies(
    int group_size, const std::vector<index_t>& chunk_sizes) {
  if (!is_pow2(static_cast<index_t>(group_size)) || chunk_sizes.empty()) {
    return false;
  }
  return std::all_of(chunk_sizes.begin(), chunk_sizes.end(),
                     [&](index_t s) { return s == chunk_sizes.front(); });
}

index_t collective_rounds(int group_size, bool recursive_applies) {
  if (group_size <= 1) return 0;
  if (!recursive_applies) return group_size - 1;
  // ceil(log2 q): one round per doubling (q is a power of two whenever the
  // recursive schedules actually apply; the ceil keeps the count honest if
  // a caller models a hypothetical non-pow2 recursion).
  const index_t q = static_cast<index_t>(group_size);
  return is_pow2(q) ? ilog2(q) : ilog2(q) + 1;
}

std::vector<double> all_gather_dispatch(
    Machine& machine, const std::vector<int>& group,
    const std::vector<std::vector<double>>& contributions,
    CollectiveKind kind) {
  if (kind == CollectiveKind::kRecursive &&
      recursive_all_gather_applies(static_cast<int>(group.size()))) {
    return all_gather_doubling(machine, group, contributions);
  }
  return all_gather_bucket(machine, group, contributions);
}

std::vector<std::vector<double>> reduce_scatter_dispatch(
    Machine& machine, const std::vector<int>& group,
    const std::vector<std::vector<double>>& inputs,
    const std::vector<index_t>& chunk_sizes, CollectiveKind kind) {
  if (kind == CollectiveKind::kRecursive &&
      recursive_reduce_scatter_applies(static_cast<int>(group.size()),
                                       chunk_sizes)) {
    return reduce_scatter_halving(machine, group, inputs);
  }
  return reduce_scatter_bucket(machine, group, inputs, chunk_sizes);
}

std::vector<double> all_reduce_dispatch(
    Machine& machine, const std::vector<int>& group,
    const std::vector<std::vector<double>>& inputs, CollectiveKind kind) {
  MTK_CHECK(!inputs.empty() &&
                inputs.size() == group.size(),
            "all_reduce_dispatch: expected ", group.size(), " inputs, got ",
            inputs.size());
  const int q = static_cast<int>(group.size());
  const index_t total = static_cast<index_t>(inputs.front().size());
  // Balanced flat chunks, matching all_reduce_bucket's stage boundaries.
  std::vector<index_t> chunk_sizes(static_cast<std::size_t>(q));
  for (int j = 0; j < q; ++j) {
    chunk_sizes[static_cast<std::size_t>(j)] =
        total / q + (j < static_cast<int>(total % q) ? 1 : 0);
  }
  auto reduced = reduce_scatter_dispatch(machine, group, inputs, chunk_sizes,
                                         kind);
  return all_gather_dispatch(machine, group, reduced, kind);
}

}  // namespace mtk
