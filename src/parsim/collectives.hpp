// Collective communication on the simulated machine, using the "bucket"
// (ring) algorithms the paper assumes (Section V-C3): an All-Gather or
// Reduce-Scatter over q processors runs in q-1 steps, each member passing
// one chunk to its ring neighbor. The bucket schedule is bandwidth-optimal
// for balanced distributions [Chan et al. 2007].
//
// A group is an ordered list of machine ranks; positions in the group define
// the ring. Chunk i is the contribution of (All-Gather) or destined for
// (Reduce-Scatter) the member at position i.
#pragma once

#include <vector>

#include "src/parsim/machine.hpp"

namespace mtk {

// Bucket All-Gather: member i contributes contributions[i]; every member
// ends with the concatenation of all contributions in group order. Since
// all members receive identical data, one shared copy is returned; the
// per-rank counters reflect the full ring traffic.
std::vector<double> all_gather_bucket(
    Machine& machine, const std::vector<int>& group,
    const std::vector<std::vector<double>>& contributions);

// Bucket Reduce-Scatter: member i contributes the full-length vector
// inputs[i]; the elementwise sum is partitioned into chunks of
// chunk_sizes[j] words (sum = vector length) and member i receives reduced
// chunk i. Reduction order around the ring is deterministic.
std::vector<std::vector<double>> reduce_scatter_bucket(
    Machine& machine, const std::vector<int>& group,
    const std::vector<std::vector<double>>& inputs,
    const std::vector<index_t>& chunk_sizes);

// All-Reduce = Reduce-Scatter followed by All-Gather (both bucket); every
// member receives the full elementwise sum.
std::vector<double> all_reduce_bucket(
    Machine& machine, const std::vector<int>& group,
    const std::vector<std::vector<double>>& inputs);

// Ring broadcast from group position `root` (q-1 messages of the full
// payload; latency-suboptimal but bandwidth-faithful for counting).
void broadcast_ring(Machine& machine, const std::vector<int>& group,
                    int root, index_t words);

}  // namespace mtk
