#include "src/parsim/distribution.hpp"

#include <algorithm>

#include "src/support/check.hpp"

namespace mtk {

std::vector<Range> block_partition(index_t n, int parts) {
  MTK_CHECK(n >= 0, "block_partition: n must be >= 0, got ", n);
  MTK_CHECK(parts >= 1, "block_partition: parts must be >= 1, got ", parts);
  const index_t base = n / parts;
  const index_t extra = n % parts;
  std::vector<Range> ranges;
  ranges.reserve(static_cast<std::size_t>(parts));
  index_t lo = 0;
  for (int p = 0; p < parts; ++p) {
    const index_t len = base + (p < static_cast<int>(extra) ? 1 : 0);
    ranges.push_back({lo, lo + len});
    lo += len;
  }
  return ranges;
}

Range flat_chunk(index_t total, int parts, int which) {
  MTK_CHECK(which >= 0 && which < parts, "flat_chunk: index ", which,
            " out of range for ", parts, " parts");
  const index_t base = total / parts;
  const index_t extra = total % parts;
  const index_t lo = static_cast<index_t>(which) * base +
                     std::min<index_t>(which, extra);
  const index_t len = base + (which < static_cast<int>(extra) ? 1 : 0);
  return {lo, lo + len};
}

std::vector<index_t> flat_chunk_sizes(index_t total, int parts) {
  MTK_CHECK(parts >= 1, "flat_chunk_sizes: parts must be >= 1, got ", parts);
  std::vector<index_t> sizes(static_cast<std::size_t>(parts));
  for (int p = 0; p < parts; ++p) {
    sizes[static_cast<std::size_t>(p)] = flat_chunk(total, parts, p).length();
  }
  return sizes;
}

// ---------------------------------------------------------------------------
// Sparse nonzero distribution.

const char* to_string(SparsePartitionScheme scheme) {
  switch (scheme) {
    case SparsePartitionScheme::kBlock: return "block";
    case SparsePartitionScheme::kMediumGrained: return "medium-grained";
  }
  return "unknown";
}

std::vector<Range> balanced_mode_partition(const SparseTensor& x, int mode,
                                           int parts) {
  MTK_CHECK(mode >= 0 && mode < x.order(), "balanced_mode_partition: mode ",
            mode, " out of range for order-", x.order(), " tensor");
  const index_t dim = x.dim(mode);
  MTK_CHECK(parts >= 1 && parts <= dim, "balanced_mode_partition: parts = ",
            parts, " must be in [1, ", dim, "]");

  std::vector<index_t> slice_nnz(static_cast<std::size_t>(dim), 0);
  const std::vector<index_t>& ind = x.mode_indices(mode);
  for (index_t p = 0; p < x.nnz(); ++p) {
    ++slice_nnz[static_cast<std::size_t>(ind[static_cast<std::size_t>(p)])];
  }

  const index_t total = x.nnz();
  std::vector<Range> ranges;
  ranges.reserve(static_cast<std::size_t>(parts));
  index_t lo = 0;
  index_t cum = 0;
  for (int j = 0; j < parts; ++j) {
    index_t hi;
    if (j == parts - 1) {
      hi = dim;
    } else {
      // Greedy cut: extend this slab until its cumulative count reaches the
      // proportional target (j+1)/parts of the nonzeros, but never consume
      // the indices the remaining parts need to stay non-empty.
      const index_t reserve = static_cast<index_t>(parts - j - 1);
      hi = lo + 1;
      cum += slice_nnz[static_cast<std::size_t>(lo)];
      while (hi < dim - reserve &&
             cum * parts < (static_cast<index_t>(j) + 1) * total) {
        cum += slice_nnz[static_cast<std::size_t>(hi)];
        ++hi;
      }
    }
    ranges.push_back({lo, hi});
    lo = hi;
  }
  return ranges;
}

std::vector<std::vector<Range>> sparse_mode_partitions(
    const SparseTensor& x, const std::vector<int>& extents,
    SparsePartitionScheme scheme) {
  const int n = x.order();
  MTK_CHECK(static_cast<int>(extents.size()) == n,
            "sparse_mode_partitions: got ", extents.size(),
            " extents for an order-", n, " tensor");
  std::vector<std::vector<Range>> parts(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    const int e = extents[static_cast<std::size_t>(k)];
    MTK_CHECK(e >= 1 && e <= x.dim(k), "grid extent ", e,
              " exceeds tensor dimension ", x.dim(k), " in mode ", k);
    parts[static_cast<std::size_t>(k)] =
        scheme == SparsePartitionScheme::kBlock
            ? block_partition(x.dim(k), e)
            : balanced_mode_partition(x, k, e);
  }
  return parts;
}

std::vector<SparseTensor> partition_nonzeros(
    const SparseTensor& x, const ProcessorGrid& grid,
    const std::vector<std::vector<Range>>& mode_ranges) {
  const int n = x.order();
  MTK_CHECK(grid.ndims() == n, "partition_nonzeros: grid has ", grid.ndims(),
            " dims for an order-", n, " tensor");
  MTK_CHECK(x.sorted(), "partition_nonzeros requires sort_and_dedup() first");
  MTK_CHECK(static_cast<int>(mode_ranges.size()) == n,
            "partition_nonzeros: got ", mode_ranges.size(),
            " mode partitions for an order-", n, " tensor");
  // Boundary arrays for the per-coordinate binary search, validated as
  // contiguous non-empty covers of [0, dim).
  std::vector<std::vector<index_t>> lows(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    const std::vector<Range>& ranges = mode_ranges[static_cast<std::size_t>(k)];
    MTK_CHECK(static_cast<int>(ranges.size()) == grid.extent(k),
              "mode ", k, " has ", ranges.size(), " ranges but grid extent is ",
              grid.extent(k));
    index_t expect = 0;
    for (const Range& r : ranges) {
      MTK_CHECK(r.lo == expect && r.hi > r.lo, "mode ", k,
                " ranges must be non-empty and contiguous from 0");
      lows[static_cast<std::size_t>(k)].push_back(r.lo);
      expect = r.hi;
    }
    MTK_CHECK(expect == x.dim(k), "mode ", k, " ranges cover [0, ", expect,
              ") but the dimension is ", x.dim(k));
  }

  const int p = grid.size();
  std::vector<SparseTensor> local;
  local.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    const std::vector<int> coords = grid.coords(r);
    shape_t dims(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) {
      dims[static_cast<std::size_t>(k)] =
          mode_ranges[static_cast<std::size_t>(k)]
                     [static_cast<std::size_t>(coords[static_cast<std::size_t>(k)])]
              .length();
    }
    local.emplace_back(dims);
  }

  std::vector<int> coords(static_cast<std::size_t>(n));
  multi_index_t idx(static_cast<std::size_t>(n));
  for (index_t q = 0; q < x.nnz(); ++q) {
    for (int k = 0; k < n; ++k) {
      const std::vector<index_t>& lo = lows[static_cast<std::size_t>(k)];
      const index_t i = x.index(k, q);
      const int c = static_cast<int>(
          std::upper_bound(lo.begin(), lo.end(), i) - lo.begin() - 1);
      coords[static_cast<std::size_t>(k)] = c;
      idx[static_cast<std::size_t>(k)] = i - lo[static_cast<std::size_t>(c)];
    }
    local[static_cast<std::size_t>(grid.rank_of(coords))].push_back(
        idx, x.value(q));
  }
  for (SparseTensor& t : local) t.sort_and_dedup();
  return local;
}

SparseDistribution distribute_nonzeros(const SparseTensor& x,
                                       const ProcessorGrid& grid,
                                       SparsePartitionScheme scheme) {
  SparseDistribution d;
  d.mode_ranges = sparse_mode_partitions(x, grid.shape(), scheme);
  d.local = partition_nonzeros(x, grid, d.mode_ranges);
  return d;
}

BlockNnzStats count_block_nnz(
    const SparseTensor& x, const ProcessorGrid& grid,
    const std::vector<std::vector<Range>>& mode_ranges) {
  const int n = x.order();
  MTK_CHECK(grid.ndims() == n, "count_block_nnz: grid has ", grid.ndims(),
            " dims for an order-", n, " tensor");
  MTK_CHECK(static_cast<int>(mode_ranges.size()) == n,
            "count_block_nnz: got ", mode_ranges.size(),
            " mode partitions for an order-", n, " tensor");
  std::vector<std::vector<index_t>> lows(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    const std::vector<Range>& ranges = mode_ranges[static_cast<std::size_t>(k)];
    MTK_CHECK(static_cast<int>(ranges.size()) == grid.extent(k),
              "mode ", k, " has ", ranges.size(), " ranges but grid extent is ",
              grid.extent(k));
    for (const Range& r : ranges) {
      lows[static_cast<std::size_t>(k)].push_back(r.lo);
    }
  }

  BlockNnzStats stats;
  stats.per_block.assign(static_cast<std::size_t>(grid.size()), 0);
  std::vector<int> coords(static_cast<std::size_t>(n));
  for (index_t q = 0; q < x.nnz(); ++q) {
    for (int k = 0; k < n; ++k) {
      const std::vector<index_t>& lo = lows[static_cast<std::size_t>(k)];
      coords[static_cast<std::size_t>(k)] = static_cast<int>(
          std::upper_bound(lo.begin(), lo.end(), x.index(k, q)) - lo.begin() -
          1);
    }
    ++stats.per_block[static_cast<std::size_t>(grid.rank_of(coords))];
  }

  stats.min_nnz = x.nnz();
  for (index_t c : stats.per_block) {
    stats.max_nnz = std::max(stats.max_nnz, c);
    stats.min_nnz = std::min(stats.min_nnz, c);
  }
  stats.mean_nnz =
      static_cast<double>(x.nnz()) / static_cast<double>(grid.size());
  return stats;
}

BlockNnzStats count_block_nnz(const SparseTensor& x, const ProcessorGrid& grid,
                              SparsePartitionScheme scheme) {
  return count_block_nnz(x, grid,
                         sparse_mode_partitions(x, grid.shape(), scheme));
}

}  // namespace mtk
