#include "src/parsim/distribution.hpp"

#include "src/support/check.hpp"

namespace mtk {

std::vector<Range> block_partition(index_t n, int parts) {
  MTK_CHECK(n >= 0, "block_partition: n must be >= 0, got ", n);
  MTK_CHECK(parts >= 1, "block_partition: parts must be >= 1, got ", parts);
  const index_t base = n / parts;
  const index_t extra = n % parts;
  std::vector<Range> ranges;
  ranges.reserve(static_cast<std::size_t>(parts));
  index_t lo = 0;
  for (int p = 0; p < parts; ++p) {
    const index_t len = base + (p < static_cast<int>(extra) ? 1 : 0);
    ranges.push_back({lo, lo + len});
    lo += len;
  }
  return ranges;
}

Range flat_chunk(index_t total, int parts, int which) {
  MTK_CHECK(which >= 0 && which < parts, "flat_chunk: index ", which,
            " out of range for ", parts, " parts");
  const index_t base = total / parts;
  const index_t extra = total % parts;
  const index_t lo = static_cast<index_t>(which) * base +
                     std::min<index_t>(which, extra);
  const index_t len = base + (which < static_cast<int>(extra) ? 1 : 0);
  return {lo, lo + len};
}

std::vector<index_t> flat_chunk_sizes(index_t total, int parts) {
  MTK_CHECK(parts >= 1, "flat_chunk_sizes: parts must be >= 1, got ", parts);
  std::vector<index_t> sizes(static_cast<std::size_t>(parts));
  for (int p = 0; p < parts; ++p) {
    sizes[static_cast<std::size_t>(p)] = flat_chunk(total, parts, p).length();
  }
  return sizes;
}

}  // namespace mtk
