// Alternative collective algorithms: recursive doubling (All-Gather) and
// recursive halving (Reduce-Scatter). Compared to the bucket/ring schedules
// of collectives.hpp they move the *same* number of words per processor for
// power-of-two groups — (q-1)/q of the data — but in log2(q) rounds instead
// of q-1, i.e. they trade latency for no bandwidth penalty [Thakur et al.,
// Chan et al.]. The paper ignores latency (Section II-C) and notes that
// for extreme P "the All-Gather and Reduce-Scatter collectives require more
// efficient algorithms" (Section VI-B) — these are those algorithms.
//
// Restrictions: group sizes must be powers of two (the classic algorithms;
// non-power-of-two generalizations exist but are not needed here), and
// Reduce-Scatter chunk sizes must be uniform within each recursion level,
// which the balanced flat_chunk distribution satisfies when the data volume
// divides evenly. For irregular inputs use the bucket variants.
#pragma once

#include <vector>

#include "src/parsim/machine.hpp"

namespace mtk {

// Recursive-doubling All-Gather: log2(q) rounds, round t exchanges the
// accumulated 2^t chunks with the partner at distance 2^t. Per-member words
// moved equal the bucket algorithm's.
std::vector<double> all_gather_doubling(
    Machine& machine, const std::vector<int>& group,
    const std::vector<std::vector<double>>& contributions);

// Recursive-halving Reduce-Scatter: log2(q) rounds; round t exchanges and
// reduces half of the remaining data with the partner at distance q/2^(t+1).
// Chunks are the q equal-length pieces of the input vectors; the vector
// length must be divisible by q.
std::vector<std::vector<double>> reduce_scatter_halving(
    Machine& machine, const std::vector<int>& group,
    const std::vector<std::vector<double>>& inputs);

// Maximum messages sent by any single member (the latency proxy the bucket
// and recursive variants differ on).
index_t max_messages_sent(const Machine& machine,
                          const std::vector<int>& group);

// Collective algorithm selection for the parallel MTTKRP drivers. The
// recursive variants apply when their structural requirements hold
// (power-of-two group, uniform chunks); otherwise the dispatcher falls back
// to the bucket schedule, whose word counts are identical.
enum class CollectiveKind { kBucket, kRecursive };

std::vector<double> all_gather_dispatch(
    Machine& machine, const std::vector<int>& group,
    const std::vector<std::vector<double>>& contributions,
    CollectiveKind kind);

std::vector<std::vector<double>> reduce_scatter_dispatch(
    Machine& machine, const std::vector<int>& group,
    const std::vector<std::vector<double>>& inputs,
    const std::vector<index_t>& chunk_sizes, CollectiveKind kind);

}  // namespace mtk
