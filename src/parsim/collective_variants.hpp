// Alternative collective algorithms: recursive doubling (All-Gather) and
// recursive halving (Reduce-Scatter). Compared to the bucket/ring schedules
// of collectives.hpp they move the *same* number of words per processor for
// power-of-two groups — (q-1)/q of the data — but in log2(q) rounds instead
// of q-1, i.e. they trade latency for no bandwidth penalty [Thakur et al.,
// Chan et al.]. The paper ignores latency (Section II-C) and notes that
// for extreme P "the All-Gather and Reduce-Scatter collectives require more
// efficient algorithms" (Section VI-B) — these are those algorithms.
//
// Restrictions: group sizes must be powers of two (the classic algorithms;
// non-power-of-two generalizations exist but are not needed here), and
// Reduce-Scatter chunk sizes must be uniform within each recursion level,
// which the balanced flat_chunk distribution satisfies when the data volume
// divides evenly. For irregular inputs use the bucket variants.
#pragma once

#include <string>
#include <vector>

#include "src/parsim/machine.hpp"

namespace mtk {

// Recursive-doubling All-Gather: log2(q) rounds, round t exchanges the
// accumulated 2^t chunks with the partner at distance 2^t. Per-member words
// moved equal the bucket algorithm's.
std::vector<double> all_gather_doubling(
    Machine& machine, const std::vector<int>& group,
    const std::vector<std::vector<double>>& contributions);

// Recursive-halving Reduce-Scatter: log2(q) rounds; round t exchanges and
// reduces half of the remaining data with the partner at distance q/2^(t+1).
// Chunks are the q equal-length pieces of the input vectors; the vector
// length must be divisible by q.
std::vector<std::vector<double>> reduce_scatter_halving(
    Machine& machine, const std::vector<int>& group,
    const std::vector<std::vector<double>>& inputs);

// Maximum messages sent by any single member (the latency proxy the bucket
// and recursive variants differ on).
index_t max_messages_sent(const Machine& machine,
                          const std::vector<int>& group);

// Collective algorithm selection for the parallel MTTKRP drivers. The
// recursive variants apply when their structural requirements hold
// (power-of-two group, uniform chunks); otherwise the dispatcher falls back
// to the bucket schedule, whose word counts are identical.
enum class CollectiveKind { kBucket, kRecursive };

const char* to_string(CollectiveKind kind);

// The fallback rules, exposed so the communication predictor can mirror the
// dispatchers decision-for-decision (the replayed message counts must match
// the simulator's counters exactly).
bool recursive_all_gather_applies(int group_size);
bool recursive_reduce_scatter_applies(int group_size,
                                      const std::vector<index_t>& chunk_sizes);

// Rounds (= messages sent per member) of one collective over a group of
// q members: q-1 for the bucket ring, log2(q) for a recursive schedule
// that applies, q-1 again when it falls back.
index_t collective_rounds(int group_size, bool recursive_applies);

// Per-phase collective choice for one parallel MTTKRP (or CP-ALS
// iteration). Every phase of the drivers maps to one field; the planner
// fills them independently by message-size regime, and a bare
// CollectiveKind converts to the uniform schedule so existing call sites
// keep reading naturally.
struct CollectiveSchedule {
  CollectiveKind tensor = CollectiveKind::kBucket;  // Alg. 4 tensor gather
  CollectiveKind factor = CollectiveKind::kBucket;  // factor All-Gathers
  CollectiveKind output = CollectiveKind::kBucket;  // output Reduce-Scatters
  CollectiveKind gram = CollectiveKind::kBucket;    // Gram All-Reduces

  CollectiveSchedule() = default;
  CollectiveSchedule(CollectiveKind kind)  // NOLINT: implicit by design
      : tensor(kind), factor(kind), output(kind), gram(kind) {}

  bool operator==(const CollectiveSchedule& o) const {
    return tensor == o.tensor && factor == o.factor && output == o.output &&
           gram == o.gram;
  }
  bool operator!=(const CollectiveSchedule& o) const { return !(*this == o); }
};

// Compact "tensor/factor/output/gram" rendering, e.g. "bucket/rec/rec/bucket".
std::string to_string(const CollectiveSchedule& schedule);

std::vector<double> all_gather_dispatch(
    Machine& machine, const std::vector<int>& group,
    const std::vector<std::vector<double>>& contributions,
    CollectiveKind kind);

std::vector<std::vector<double>> reduce_scatter_dispatch(
    Machine& machine, const std::vector<int>& group,
    const std::vector<std::vector<double>>& inputs,
    const std::vector<index_t>& chunk_sizes, CollectiveKind kind);

// All-Reduce assembled from the dispatched Reduce-Scatter + All-Gather over
// balanced flat chunks; both stages consult the fallback rules
// independently, exactly as the predictor assumes.
std::vector<double> all_reduce_dispatch(
    Machine& machine, const std::vector<int>& group,
    const std::vector<std::vector<double>>& inputs, CollectiveKind kind);

}  // namespace mtk
