// ThreadTransport: the real-execution Transport backend — one persistent
// std::thread per rank, communicating through per-receiver mailboxes
// (mutex + condvar, one FIFO queue per sender). No MPI exists in this
// environment, so P threads in one process stand in for the paper's P
// processors; every collective is executed SPMD, with each rank thread
// running exactly the per-member schedule the counting simulator charges:
//
//   bucket All-Gather      — ring: at step s member i sends chunk
//                            (i - s) mod q to member (i+1) mod q.
//   bucket Reduce-Scatter  — traveling partials: member i starts with its
//                            copy of chunk (i-1) mod q; each step the
//                            received partial accumulates the receiver's
//                            own contribution (partial[w] += own[w]).
//   recursive doubling     — pairs (i, i ^ 2^t) swap their held chunk sets.
//   recursive halving      — pairs (i, i ^ q/2^(t+1)) exchange half of the
//                            active window; kept[w] += incoming[w].
//
// Because the reduction order per output element is identical to the
// centralized implementations in collectives.cpp / collective_variants.cpp,
// the results are bit-identical to SimTransport's, and because each rank
// thread performs exactly the sends the simulator records, the per-rank
// word and message counters match exactly (CountingTransport asserts this).
//
// Thread-sanitizer discipline: stats_[r] is written only by rank r's thread
// while a job is running; the orchestrator reads counters only between
// jobs, after the completion condvar handshake establishes happens-before.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "src/parsim/transport/transport.hpp"

namespace mtk {

class FaultInjector;

class ThreadTransport final : public Transport {
 public:
  explicit ThreadTransport(int num_ranks);
  ~ThreadTransport() override;

  ThreadTransport(const ThreadTransport&) = delete;
  ThreadTransport& operator=(const ThreadTransport&) = delete;

  TransportKind kind() const override { return TransportKind::kThreads; }
  int num_ranks() const override { return static_cast<int>(workers_.size()); }

  const CommStats& stats(int rank) const override;
  void reset_stats() override;
  void record_phase(PhaseRecord record) override {
    phases_.push_back(std::move(record));
  }
  const std::vector<PhaseRecord>& phases() const override { return phases_; }

  // Arms (or disarms, with nullptr) seeded message-level fault injection:
  // sends consult the injector for delay/drop/corruption, payloads carry a
  // wire checksum so injected bit-flips surface as typed kCorruption at the
  // receiver, and ranks stall at collective entry per the schedule.
  // Orchestrator-only, between jobs. With no injector armed the wire path
  // is bit-identical to the pre-fault implementation (no checksums).
  // Dropped messages require a collective deadline (set_deadline) to
  // surface as kTimeout instead of a genuine hang.
  void set_fault_injector(std::shared_ptr<const FaultInjector> injector);

 protected:
  std::vector<double> do_all_gather(
      const std::vector<int>& group,
      const std::vector<std::vector<double>>& contributions,
      CollectiveKind kind) override;
  std::vector<std::vector<double>> do_reduce_scatter(
      const std::vector<int>& group,
      const std::vector<std::vector<double>>& inputs,
      const std::vector<index_t>& chunk_sizes, CollectiveKind kind) override;
  void do_run_ranks(const std::function<void(int)>& body) override;

 private:
  // One message on the wire. The checksum is stamped (and later verified)
  // only while a fault injector is armed, so the fault-free fast path pays
  // nothing and stays bit-identical to the original implementation.
  struct WireMessage {
    std::vector<double> payload;
    std::uint64_t checksum = 0;
    bool checked = false;
  };

  // One receiver's mailbox: a FIFO queue per sender, so concurrent sends
  // from distinct ranks never reorder a (sender, receiver) stream.
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<std::deque<WireMessage>> from;  // indexed by sender
  };

  // Avoid false sharing between adjacent ranks' hot counters.
  struct alignas(64) PaddedStats {
    CommStats s;
  };

  void worker_loop(int rank);
  // Runs job(rank) on every rank's thread and blocks until all complete;
  // rethrows the first exception any rank raised. When a job fails, every
  // mailbox is drained before rethrowing so the transport is reusable for
  // the next collective (serve retries depend on this).
  void dispatch(const std::function<void(int)>& job);
  void abort_waiters();
  // Computes the deadline window for the collective about to dispatch;
  // called orchestrator-side at do_* entry.
  void arm_collective(bool with_deadline);
  // Sleeps out any scheduled stall for this rank at collective entry
  // (called on the rank's thread, first thing inside the dispatched job).
  void apply_stall(int rank);

  // Point-to-point primitives (called from rank threads only).
  void send(int from, int to, std::vector<double> payload);
  std::vector<double> recv(int to, int from);

  // SPMD per-member collective bodies (run on the member's thread).
  struct GatherCtx;
  struct ReduceCtx;
  void run_all_gather_bucket(const GatherCtx& ctx, int pos);
  void run_all_gather_doubling(const GatherCtx& ctx, int pos);
  void run_reduce_scatter_bucket(const ReduceCtx& ctx, int pos);
  void run_reduce_scatter_halving(const ReduceCtx& ctx, int pos);

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<PaddedStats> stats_;
  std::vector<PhaseRecord> phases_;

  // Fault-injection state. The injector is armed by the orchestrator
  // between jobs; per-(sender, receiver) message ordinals live in a flat
  // row-major array where row `from` is written only by rank `from`'s
  // thread, so decisions are deterministic and race-free. The collective
  // ordinal and deadline window are written by the orchestrator before
  // dispatch (the generation handshake orders them before worker reads).
  std::shared_ptr<const FaultInjector> injector_;
  std::vector<std::uint64_t> pair_seq_;
  std::uint64_t collective_seq_ = 0;
  std::uint64_t current_collective_seq_ = 0;
  std::chrono::steady_clock::time_point deadline_tp_{};
  bool has_deadline_ = false;

  // Job dispatch state (generation handshake).
  std::mutex job_mu_;
  std::condition_variable job_cv_;   // workers wait for a new generation
  std::condition_variable done_cv_;  // orchestrator waits for completion
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  int remaining_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
  // Set on job error to wake blocked receivers; atomic because receivers
  // check it under their mailbox mutex, not job_mu_.
  std::atomic<bool> aborted_{false};

  std::vector<std::thread> workers_;
};

}  // namespace mtk
