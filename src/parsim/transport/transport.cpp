#include "src/parsim/transport/transport.hpp"

#include <algorithm>
#include <chrono>

#include "src/parsim/transport/thread_transport.hpp"

namespace mtk {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

const char* to_string(TransportKind kind) {
  switch (kind) {
    case TransportKind::kSim: return "sim";
    case TransportKind::kThreads: return "threads";
  }
  return "unknown";
}

std::vector<double> Transport::all_gather(
    const std::vector<int>& group,
    const std::vector<std::vector<double>>& contributions,
    CollectiveKind kind) {
  const auto start = Clock::now();
  std::vector<double> result = do_all_gather(group, contributions, kind);
  comm_seconds_ += seconds_since(start);
  return result;
}

std::vector<std::vector<double>> Transport::reduce_scatter(
    const std::vector<int>& group,
    const std::vector<std::vector<double>>& inputs,
    const std::vector<index_t>& chunk_sizes, CollectiveKind kind) {
  const auto start = Clock::now();
  std::vector<std::vector<double>> result =
      do_reduce_scatter(group, inputs, chunk_sizes, kind);
  comm_seconds_ += seconds_since(start);
  return result;
}

std::vector<double> Transport::all_reduce(
    const std::vector<int>& group,
    const std::vector<std::vector<double>>& inputs, CollectiveKind kind) {
  MTK_CHECK(!inputs.empty() && inputs.size() == group.size(),
            "all_reduce: expected ", group.size(), " inputs, got ",
            inputs.size());
  // Balanced flat chunks, matching all_reduce_dispatch's stage boundaries,
  // so both stages consult the recursive fallback rules independently and
  // the counters line up with the predictor's replay.
  const int q = static_cast<int>(group.size());
  const index_t total = static_cast<index_t>(inputs.front().size());
  std::vector<index_t> chunk_sizes(static_cast<std::size_t>(q));
  for (int j = 0; j < q; ++j) {
    chunk_sizes[static_cast<std::size_t>(j)] =
        total / q + (j < static_cast<int>(total % q) ? 1 : 0);
  }
  auto reduced = reduce_scatter(group, inputs, chunk_sizes, kind);
  return all_gather(group, reduced, kind);
}

void Transport::run_ranks(const std::function<void(int)>& body) {
  const auto start = Clock::now();
  do_run_ranks(body);
  compute_seconds_ += seconds_since(start);
}

index_t Transport::max_words_moved() const {
  index_t best = 0;
  for (int r = 0; r < num_ranks(); ++r) {
    best = std::max(best, stats(r).words_moved());
  }
  return best;
}

index_t Transport::max_messages_sent() const {
  index_t best = 0;
  for (int r = 0; r < num_ranks(); ++r) {
    best = std::max(best, stats(r).messages_sent);
  }
  return best;
}

index_t Transport::total_words_sent() const {
  index_t total = 0;
  for (int r = 0; r < num_ranks(); ++r) {
    total += stats(r).words_sent;
  }
  return total;
}

SimTransport::SimTransport(Machine& machine) : machine_(&machine) {}

SimTransport::SimTransport(int num_ranks)
    : owned_(std::make_unique<Machine>(num_ranks)), machine_(owned_.get()) {}

std::vector<double> SimTransport::do_all_gather(
    const std::vector<int>& group,
    const std::vector<std::vector<double>>& contributions,
    CollectiveKind kind) {
  return all_gather_dispatch(*machine_, group, contributions, kind);
}

std::vector<std::vector<double>> SimTransport::do_reduce_scatter(
    const std::vector<int>& group,
    const std::vector<std::vector<double>>& inputs,
    const std::vector<index_t>& chunk_sizes, CollectiveKind kind) {
  return reduce_scatter_dispatch(*machine_, group, inputs, chunk_sizes, kind);
}

void SimTransport::do_run_ranks(const std::function<void(int)>& body) {
  const int p = machine_->num_ranks();
#pragma omp parallel for schedule(dynamic)
  for (int r = 0; r < p; ++r) {
    body(r);
  }
}

std::unique_ptr<Transport> make_transport(TransportKind kind, int num_ranks) {
  if (kind == TransportKind::kThreads) {
    return std::make_unique<ThreadTransport>(num_ranks);
  }
  return std::make_unique<SimTransport>(num_ranks);
}

}  // namespace mtk
