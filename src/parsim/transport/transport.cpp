#include "src/parsim/transport/transport.hpp"

#include <algorithm>
#include <chrono>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/parsim/transport/thread_transport.hpp"

namespace mtk {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

index_t payload_words(const std::vector<std::vector<double>>& buffers) {
  index_t words = 0;
  for (const auto& b : buffers) words += static_cast<index_t>(b.size());
  return words;
}

}  // namespace

const char* to_string(TransportKind kind) {
  switch (kind) {
    case TransportKind::kSim: return "sim";
    case TransportKind::kThreads: return "threads";
  }
  return "unknown";
}

const char* to_string(TransportErrorKind kind) {
  switch (kind) {
    case TransportErrorKind::kTimeout: return "timeout";
    case TransportErrorKind::kCorruption: return "corruption";
    case TransportErrorKind::kAborted: return "aborted";
  }
  return "unknown";
}

std::vector<double> Transport::all_gather(
    const std::vector<int>& group,
    const std::vector<std::vector<double>>& contributions,
    CollectiveKind kind) {
  if (!record_telemetry_) return do_all_gather(group, contributions, kind);
  Span span(SpanCategory::kCollective, kind == CollectiveKind::kRecursive
                                           ? "all-gather/recursive"
                                           : "all-gather/bucket");
  const int q = static_cast<int>(group.size());
  if (span.enabled()) {
    span.arg("group", q);
    span.arg("words", payload_words(contributions));
    span.arg("rounds", collective_rounds(
                           q, kind == CollectiveKind::kRecursive &&
                                  recursive_all_gather_applies(q)));
  }
  static Counter& calls =
      MetricsRegistry::global().counter("mtk.transport.all_gather.calls");
  calls.add();
  const auto start = Clock::now();
  std::vector<double> result = do_all_gather(group, contributions, kind);
  comm_seconds_ += seconds_since(start);
  return result;
}

std::vector<std::vector<double>> Transport::reduce_scatter(
    const std::vector<int>& group,
    const std::vector<std::vector<double>>& inputs,
    const std::vector<index_t>& chunk_sizes, CollectiveKind kind) {
  if (!record_telemetry_) {
    return do_reduce_scatter(group, inputs, chunk_sizes, kind);
  }
  Span span(SpanCategory::kCollective, kind == CollectiveKind::kRecursive
                                           ? "reduce-scatter/recursive"
                                           : "reduce-scatter/bucket");
  const int q = static_cast<int>(group.size());
  if (span.enabled()) {
    span.arg("group", q);
    span.arg("words", payload_words(inputs));
    span.arg("rounds",
             collective_rounds(
                 q, kind == CollectiveKind::kRecursive &&
                        recursive_reduce_scatter_applies(q, chunk_sizes)));
  }
  static Counter& calls =
      MetricsRegistry::global().counter("mtk.transport.reduce_scatter.calls");
  calls.add();
  const auto start = Clock::now();
  std::vector<std::vector<double>> result =
      do_reduce_scatter(group, inputs, chunk_sizes, kind);
  comm_seconds_ += seconds_since(start);
  return result;
}

std::vector<double> Transport::all_reduce(
    const std::vector<int>& group,
    const std::vector<std::vector<double>>& inputs, CollectiveKind kind) {
  MTK_CHECK(!inputs.empty() && inputs.size() == group.size(),
            "all_reduce: expected ", group.size(), " inputs, got ",
            inputs.size());
  // Balanced flat chunks, matching all_reduce_dispatch's stage boundaries,
  // so both stages consult the recursive fallback rules independently and
  // the counters line up with the predictor's replay.
  const int q = static_cast<int>(group.size());
  const index_t total = static_cast<index_t>(inputs.front().size());
  std::vector<index_t> chunk_sizes(static_cast<std::size_t>(q));
  for (int j = 0; j < q; ++j) {
    chunk_sizes[static_cast<std::size_t>(j)] =
        total / q + (j < static_cast<int>(total % q) ? 1 : 0);
  }
  auto reduced = reduce_scatter(group, inputs, chunk_sizes, kind);
  return all_gather(group, reduced, kind);
}

void Transport::run_ranks(const std::function<void(int)>& body) {
  Span span(SpanCategory::kPhase, "run_ranks");
  if (span.enabled()) span.arg("ranks", num_ranks());
  static Counter& calls =
      MetricsRegistry::global().counter("mtk.transport.run_ranks.calls");
  if (record_telemetry_) calls.add();
  const auto start = Clock::now();
  do_run_ranks(body);
  compute_seconds_ += seconds_since(start);
}

index_t Transport::max_words_moved() const {
  index_t best = 0;
  for (int r = 0; r < num_ranks(); ++r) {
    best = std::max(best, stats(r).words_moved());
  }
  return best;
}

index_t Transport::max_messages_sent() const {
  index_t best = 0;
  for (int r = 0; r < num_ranks(); ++r) {
    best = std::max(best, stats(r).messages_sent);
  }
  return best;
}

index_t Transport::total_words_sent() const {
  index_t total = 0;
  for (int r = 0; r < num_ranks(); ++r) {
    total += stats(r).words_sent;
  }
  return total;
}

SimTransport::SimTransport(Machine& machine) : machine_(&machine) {}

SimTransport::SimTransport(int num_ranks)
    : owned_(std::make_unique<Machine>(num_ranks)), machine_(owned_.get()) {}

std::vector<double> SimTransport::do_all_gather(
    const std::vector<int>& group,
    const std::vector<std::vector<double>>& contributions,
    CollectiveKind kind) {
  return all_gather_dispatch(*machine_, group, contributions, kind);
}

std::vector<std::vector<double>> SimTransport::do_reduce_scatter(
    const std::vector<int>& group,
    const std::vector<std::vector<double>>& inputs,
    const std::vector<index_t>& chunk_sizes, CollectiveKind kind) {
  return reduce_scatter_dispatch(*machine_, group, inputs, chunk_sizes, kind);
}

void SimTransport::do_run_ranks(const std::function<void(int)>& body) {
  const int p = machine_->num_ranks();
#pragma omp parallel for schedule(dynamic)
  for (int r = 0; r < p; ++r) {
    // Tag the worker thread so spans opened inside the body land on rank
    // r's trace track; OpenMP reuses threads across ranks, so reset after.
    TraceSession::set_current_rank(r);
    body(r);
    TraceSession::set_current_rank(-1);
  }
}

std::unique_ptr<Transport> make_transport(TransportKind kind, int num_ranks) {
  if (kind == TransportKind::kThreads) {
    return std::make_unique<ThreadTransport>(num_ranks);
  }
  return std::make_unique<SimTransport>(num_ranks);
}

}  // namespace mtk
