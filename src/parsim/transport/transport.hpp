// Transport: the execution backend behind the collective-phase helpers of
// src/parsim/par_common (see DESIGN.md). The parallel drivers are written
// against this interface, so the same planner-chosen CollectiveSchedule
// runs either on the counting Machine simulator (SimTransport — exact
// per-rank word/message counters, centralized data movement) or on real
// std::thread ranks exchanging mutex/condvar mailbox messages
// (ThreadTransport, src/parsim/transport/thread_transport.hpp). The two
// produce bit-identical collective outputs and identical counters; the
// CountingTransport wrapper (counting_transport.hpp) asserts both.
//
// The API is orchestrator-level, mirroring the dispatch functions of
// collective_variants.hpp: the caller holds every rank's buffers in one
// address space and the transport decides how the exchange is realized.
// Wall-clock spent inside collectives (comm_seconds) and inside run_ranks
// bodies (compute_seconds) is accumulated so the drivers can report
// measured time next to the simulated counters.
#pragma once

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/parsim/collective_variants.hpp"
#include "src/parsim/machine.hpp"

namespace mtk {

enum class TransportKind {
  kSim,      // counting Machine: centralized exchange, exact counters
  kThreads,  // one std::thread per rank, mutex/condvar mailboxes
};

const char* to_string(TransportKind kind);

// Why a collective failed. The taxonomy is deliberately small: callers
// branch on "transient, worth retrying" (timeout / corruption / aborted)
// versus everything else, which stays a plain std::runtime_error.
enum class TransportErrorKind {
  kTimeout,     // a blocked mailbox wait exceeded the collective deadline
  kCorruption,  // a received payload failed its wire checksum
  kAborted,     // a peer rank failed first; this rank was woken mid-wait
};

const char* to_string(TransportErrorKind kind);

// Typed transport failure. Derives from std::runtime_error so existing
// catch sites keep working; new code catches TransportError to distinguish
// transient collective failures (retryable) from logic errors (not).
class TransportError : public std::runtime_error {
 public:
  TransportError(TransportErrorKind kind, int rank, const std::string& what)
      : std::runtime_error(what), kind_(kind), rank_(rank) {}

  TransportErrorKind fault_kind() const { return kind_; }
  // The rank that observed the failure (-1 when orchestrator-level).
  int rank() const { return rank_; }

 private:
  TransportErrorKind kind_;
  int rank_;
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual TransportKind kind() const = 0;
  virtual int num_ranks() const = 0;

  // Collectives over an ordered group of machine ranks, with the same
  // contracts as the *_dispatch functions (collective_variants.hpp):
  // all_gather concatenates contributions in group order; reduce_scatter
  // returns the reduced chunk per group position; all_reduce is
  // Reduce-Scatter over balanced flat chunks followed by All-Gather, each
  // stage consulting the recursive fallback rules independently. These
  // public entry points time the exchange into comm_seconds().
  std::vector<double> all_gather(
      const std::vector<int>& group,
      const std::vector<std::vector<double>>& contributions,
      CollectiveKind kind);
  std::vector<std::vector<double>> reduce_scatter(
      const std::vector<int>& group,
      const std::vector<std::vector<double>>& inputs,
      const std::vector<index_t>& chunk_sizes, CollectiveKind kind);
  std::vector<double> all_reduce(const std::vector<int>& group,
                                 const std::vector<std::vector<double>>& inputs,
                                 CollectiveKind kind);

  // Runs body(rank) for every rank — the local-compute phase. SimTransport
  // uses an OpenMP loop in the calling thread's team; ThreadTransport runs
  // each rank's body on that rank's dedicated thread. Timed into
  // compute_seconds().
  void run_ranks(const std::function<void(int)>& body);

  // Per-rank counters and phase records, with Machine's exact semantics.
  virtual const CommStats& stats(int rank) const = 0;
  virtual void reset_stats() = 0;
  virtual void record_phase(PhaseRecord record) = 0;
  virtual const std::vector<PhaseRecord>& phases() const = 0;

  index_t max_words_moved() const;
  index_t max_messages_sent() const;
  index_t total_words_sent() const;

  // Measured wall-clock, cumulative over the transport's lifetime (like
  // the word counters): time inside collective exchanges and inside
  // run_ranks bodies respectively.
  double comm_seconds() const { return comm_seconds_; }
  double compute_seconds() const { return compute_seconds_; }

  // Per-collective deadline in seconds; 0 disables (the default, and the
  // pre-deadline behavior). Each collective entry (all_gather,
  // reduce_scatter — all_reduce's two stages each get a fresh budget) must
  // finish within this bound. On ThreadTransport a blocked mailbox wait
  // that exceeds it throws TransportError{kTimeout} instead of hanging;
  // SimTransport collectives are centralized and cannot block, so the
  // deadline is a no-op there. Virtual so wrappers can forward to their
  // inner transport.
  virtual void set_deadline(double seconds) { deadline_seconds_ = seconds; }
  double deadline_seconds() const { return deadline_seconds_; }

 protected:
  virtual std::vector<double> do_all_gather(
      const std::vector<int>& group,
      const std::vector<std::vector<double>>& contributions,
      CollectiveKind kind) = 0;
  virtual std::vector<std::vector<double>> do_reduce_scatter(
      const std::vector<int>& group,
      const std::vector<std::vector<double>>& inputs,
      const std::vector<index_t>& chunk_sizes, CollectiveKind kind) = 0;
  virtual void do_run_ranks(const std::function<void(int)>& body) = 0;

  double comm_seconds_ = 0.0;
  double compute_seconds_ = 0.0;
  double deadline_seconds_ = 0.0;
  // Whether the public entry points emit spans and registry counters.
  // CountingTransport turns this off on itself: its do_* methods replay
  // every collective through the inner transport's *public* entry points,
  // which would otherwise record each exchange twice.
  bool record_telemetry_ = true;
};

// The counting-Machine backend: collectives delegate to the centralized
// dispatch implementations, which move the data once in the orchestrator
// and record the schedule's exact per-rank traffic. Borrows the caller's
// Machine (so counters accumulate where existing code reads them) or owns
// a fresh one.
class SimTransport final : public Transport {
 public:
  explicit SimTransport(Machine& machine);
  explicit SimTransport(int num_ranks);

  TransportKind kind() const override { return TransportKind::kSim; }
  int num_ranks() const override { return machine_->num_ranks(); }

  const CommStats& stats(int rank) const override {
    return machine_->stats(rank);
  }
  void reset_stats() override { machine_->reset_stats(); }
  void record_phase(PhaseRecord record) override {
    machine_->record_phase(std::move(record));
  }
  const std::vector<PhaseRecord>& phases() const override {
    return machine_->phases();
  }

  Machine& machine() { return *machine_; }

 protected:
  std::vector<double> do_all_gather(
      const std::vector<int>& group,
      const std::vector<std::vector<double>>& contributions,
      CollectiveKind kind) override;
  std::vector<std::vector<double>> do_reduce_scatter(
      const std::vector<int>& group,
      const std::vector<std::vector<double>>& inputs,
      const std::vector<index_t>& chunk_sizes, CollectiveKind kind) override;
  void do_run_ranks(const std::function<void(int)>& body) override;

 private:
  std::unique_ptr<Machine> owned_;
  Machine* machine_;
};

// Factory used by the drivers' TransportKind plumbing (par_cp_als,
// par_cp_gradient, mttkrp_cli --transport).
std::unique_ptr<Transport> make_transport(TransportKind kind, int num_ranks);

}  // namespace mtk
