#include "src/parsim/transport/thread_transport.hpp"

#include <algorithm>
#include <cstring>
#include <string>
#include <thread>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/parsim/transport/fault.hpp"

namespace mtk {

namespace {

// Mirrors check_group in collectives.cpp: collectives reject empty groups,
// out-of-range ranks, and duplicate members before any thread is involved,
// so rank threads only ever run validated schedules (a worker-side throw
// would strand its peers in recv until the abort path wakes them).
void check_group(int num_ranks, const std::vector<int>& group) {
  MTK_CHECK(!group.empty(), "collective group must be non-empty");
  for (int r : group) {
    MTK_CHECK(r >= 0 && r < num_ranks, "group contains invalid rank ", r);
  }
  std::vector<int> sorted = group;
  std::sort(sorted.begin(), sorted.end());
  MTK_CHECK(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
            "collective group contains duplicate ranks");
}

}  // namespace

// Shared read-only context of one All-Gather: every member knows all
// contribution sizes (as an MPI rank knows its recv counts) but reads data
// only from its own contribution and its mailbox.
struct ThreadTransport::GatherCtx {
  const std::vector<int>* group = nullptr;
  const std::vector<std::vector<double>>* contributions = nullptr;
  std::vector<index_t> sizes;    // per-position contribution length
  std::vector<index_t> offsets;  // position of each chunk in the concat
  index_t total = 0;
  // Per-position assembled result; slot i is written only by member i's
  // thread.
  std::vector<std::vector<double>>* results = nullptr;
};

struct ThreadTransport::ReduceCtx {
  const std::vector<int>* group = nullptr;
  const std::vector<std::vector<double>>* inputs = nullptr;
  std::vector<index_t> chunk_sizes;
  std::vector<index_t> offsets;
  index_t total = 0;
  std::vector<std::vector<double>>* results = nullptr;
};

ThreadTransport::ThreadTransport(int num_ranks) {
  MTK_CHECK(num_ranks >= 1, "ThreadTransport needs at least one rank");
  MTK_CHECK(num_ranks <= 1024, "ThreadTransport caps at 1024 rank threads, "
            "got ", num_ranks, " (use the sim transport for larger grids)");
  mailboxes_.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    auto box = std::make_unique<Mailbox>();
    box->from.resize(static_cast<std::size_t>(num_ranks));
    mailboxes_.push_back(std::move(box));
  }
  stats_.resize(static_cast<std::size_t>(num_ranks));
  pair_seq_.assign(
      static_cast<std::size_t>(num_ranks) * static_cast<std::size_t>(num_ranks),
      0);
  workers_.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    workers_.emplace_back([this, r] { worker_loop(r); });
  }
}

ThreadTransport::~ThreadTransport() {
  {
    std::lock_guard<std::mutex> lk(job_mu_);
    shutdown_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

const CommStats& ThreadTransport::stats(int rank) const {
  MTK_CHECK(rank >= 0 && rank < num_ranks(), "rank ", rank,
            " out of range for ", num_ranks(), " ranks");
  return stats_[static_cast<std::size_t>(rank)].s;
}

void ThreadTransport::reset_stats() {
  // Orchestrator-only, between jobs: the completion handshake of the last
  // dispatch ordered all worker writes before this.
  for (PaddedStats& p : stats_) p.s = CommStats{};
}

void ThreadTransport::set_fault_injector(
    std::shared_ptr<const FaultInjector> injector) {
  std::lock_guard<std::mutex> lk(job_mu_);
  MTK_REQUIRE(remaining_ == 0,
              "set_fault_injector is orchestrator-only, between jobs");
  injector_ = std::move(injector);
}

void ThreadTransport::worker_loop(int rank) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(job_mu_);
      job_cv_.wait(lk, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      job = job_;
    }
    // Tag this worker thread with its rank per job (not once at spawn): a
    // TraceSession started after the transport still attributes spans to
    // the right track, since the tag is per session generation.
    TraceSession::set_current_rank(rank);
    std::exception_ptr err;
    try {
      (*job)(rank);
    } catch (...) {
      err = std::current_exception();
    }
    if (err) {
      {
        std::lock_guard<std::mutex> lk(job_mu_);
        if (!first_error_) first_error_ = err;
      }
      aborted_.store(true, std::memory_order_release);
      abort_waiters();
    }
    {
      std::lock_guard<std::mutex> lk(job_mu_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadTransport::abort_waiters() {
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lk(box->mu);
    box->cv.notify_all();
  }
}

void ThreadTransport::dispatch(const std::function<void(int)>& job) {
  std::unique_lock<std::mutex> lk(job_mu_);
  MTK_REQUIRE(!shutdown_, "ThreadTransport is shutting down");
  MTK_REQUIRE(remaining_ == 0,
              "ThreadTransport::dispatch is orchestrator-only and cannot "
              "nest inside a running job");
  first_error_ = nullptr;
  aborted_.store(false, std::memory_order_relaxed);
  job_ = &job;
  remaining_ = num_ranks();
  ++generation_;
  job_cv_.notify_all();
  done_cv_.wait(lk, [&] { return remaining_ == 0; });
  job_ = nullptr;
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lk.unlock();
    // All ranks have returned, so the mailboxes are quiescent: drain any
    // in-flight payloads the aborted collective left behind, otherwise a
    // stale chunk would poison the next collective a retrying caller runs.
    for (auto& box : mailboxes_) {
      std::lock_guard<std::mutex> box_lk(box->mu);
      for (auto& queue : box->from) queue.clear();
    }
    std::rethrow_exception(err);
  }
}

void ThreadTransport::arm_collective(bool with_deadline) {
  // Orchestrator-side, before dispatch: the generation handshake orders
  // these writes before any worker reads them.
  current_collective_seq_ = collective_seq_++;
  has_deadline_ = with_deadline && deadline_seconds() > 0.0;
  if (has_deadline_) {
    deadline_tp_ = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(deadline_seconds()));
  }
}

void ThreadTransport::apply_stall(int rank) {
  if (!injector_) return;
  const std::int64_t us = injector_->stall_us(rank, current_collective_seq_);
  if (us <= 0) return;
  static Counter& stalls = MetricsRegistry::global().counter("mtk.fault.stalls");
  stalls.add();
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

void ThreadTransport::send(int from, int to, std::vector<double> payload) {
  // Sender-side counters: each thread touches only its own stats slot. A
  // dropped message still counts as sent — it left this rank and was lost
  // on the wire.
  CommStats& s = stats_[static_cast<std::size_t>(from)].s;
  s.words_sent += static_cast<index_t>(payload.size());
  s.messages_sent += 1;
  WireMessage msg;
  if (injector_) {
    std::uint64_t& seq =
        pair_seq_[static_cast<std::size_t>(from) *
                      static_cast<std::size_t>(num_ranks()) +
                  static_cast<std::size_t>(to)];
    const FaultInjector::MessageFault fault =
        injector_->on_message(from, to, seq++);
    if (fault.delay_us > 0) {
      static Counter& delays =
          MetricsRegistry::global().counter("mtk.fault.delays");
      delays.add();
      std::this_thread::sleep_for(std::chrono::microseconds(fault.delay_us));
    }
    if (fault.drop) {
      static Counter& drops =
          MetricsRegistry::global().counter("mtk.fault.drops");
      drops.add();
      return;
    }
    msg.checksum = wire_checksum(payload.data(), payload.size());
    msg.checked = true;
    if (fault.corrupt && !payload.empty()) {
      static Counter& corruptions =
          MetricsRegistry::global().counter("mtk.fault.corruptions");
      corruptions.add();
      // Flip one mantissa bit of one word, after the checksum was stamped —
      // the receiver's verification catches it.
      const std::size_t w = static_cast<std::size_t>(seq) % payload.size();
      std::uint64_t bits = 0;
      std::memcpy(&bits, &payload[w], sizeof(bits));
      bits ^= 1ull << 13;
      std::memcpy(&payload[w], &bits, sizeof(bits));
    }
  }
  msg.payload = std::move(payload);
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(to)];
  {
    std::lock_guard<std::mutex> lk(box.mu);
    box.from[static_cast<std::size_t>(from)].push_back(std::move(msg));
  }
  box.cv.notify_all();
}

std::vector<double> ThreadTransport::recv(int to, int from) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(to)];
  WireMessage msg;
  {
    std::unique_lock<std::mutex> lk(box.mu);
    std::deque<WireMessage>& queue = box.from[static_cast<std::size_t>(from)];
    const auto ready = [&] {
      return !queue.empty() || aborted_.load(std::memory_order_acquire);
    };
    if (has_deadline_) {
      if (!box.cv.wait_until(lk, deadline_tp_, ready)) {
        static Counter& timeouts =
            MetricsRegistry::global().counter("mtk.transport.timeouts");
        timeouts.add();
        throw TransportError(
            TransportErrorKind::kTimeout, to,
            "collective deadline exceeded: rank " + std::to_string(to) +
                " waited on rank " + std::to_string(from) + " past " +
                std::to_string(deadline_seconds()) + "s");
      }
    } else {
      box.cv.wait(lk, ready);
    }
    if (queue.empty()) {
      throw TransportError(
          TransportErrorKind::kAborted, to,
          "transport collective aborted while rank " + std::to_string(to) +
              " was waiting on rank " + std::to_string(from));
    }
    msg = std::move(queue.front());
    queue.pop_front();
  }
  if (msg.checked &&
      wire_checksum(msg.payload.data(), msg.payload.size()) != msg.checksum) {
    throw TransportError(
        TransportErrorKind::kCorruption, to,
        "wire checksum mismatch on message from rank " + std::to_string(from) +
            " to rank " + std::to_string(to));
  }
  stats_[static_cast<std::size_t>(to)].s.words_received +=
      static_cast<index_t>(msg.payload.size());
  return std::move(msg.payload);
}

// ---------------------------------------------------------------------------
// SPMD collective bodies. Each replicates the per-member schedule of the
// centralized counting implementation exactly — same neighbors, same chunk
// arithmetic, same accumulation order — so data and counters both match.

void ThreadTransport::run_all_gather_bucket(const GatherCtx& ctx, int pos) {
  Span span(SpanCategory::kCollective, "member all-gather/bucket");
  const std::vector<int>& group = *ctx.group;
  const int q = static_cast<int>(group.size());
  if (span.enabled()) {
    span.arg("group", q);
    span.arg("words", ctx.total);
  }
  const int self = group[static_cast<std::size_t>(pos)];
  std::vector<double> result(static_cast<std::size_t>(ctx.total));
  const std::vector<double>& own =
      (*ctx.contributions)[static_cast<std::size_t>(pos)];
  std::copy(own.begin(), own.end(),
            result.begin() + ctx.offsets[static_cast<std::size_t>(pos)]);

  // Ring: at step s, send chunk (pos - s) mod q right and receive chunk
  // (pos - 1 - s) mod q from the left (collectives.cpp's schedule).
  const int right = group[static_cast<std::size_t>((pos + 1) % q)];
  const int left = group[static_cast<std::size_t>((pos - 1 + q) % q)];
  for (int s = 0; s + 1 < q; ++s) {
    const int cs = ((pos - s) % q + q) % q;
    std::vector<double> payload(
        result.begin() + ctx.offsets[static_cast<std::size_t>(cs)],
        result.begin() + ctx.offsets[static_cast<std::size_t>(cs)] +
            ctx.sizes[static_cast<std::size_t>(cs)]);
    send(self, right, std::move(payload));
    std::vector<double> incoming = recv(self, left);
    const int cr = ((pos - 1 - s) % q + q) % q;
    MTK_ASSERT(static_cast<index_t>(incoming.size()) ==
                   ctx.sizes[static_cast<std::size_t>(cr)],
               "bucket all-gather chunk size mismatch");
    std::copy(incoming.begin(), incoming.end(),
              result.begin() + ctx.offsets[static_cast<std::size_t>(cr)]);
  }
  (*ctx.results)[static_cast<std::size_t>(pos)] = std::move(result);
}

void ThreadTransport::run_all_gather_doubling(const GatherCtx& ctx, int pos) {
  Span span(SpanCategory::kCollective, "member all-gather/recursive");
  const std::vector<int>& group = *ctx.group;
  const int q = static_cast<int>(group.size());
  if (span.enabled()) {
    span.arg("group", q);
    span.arg("words", ctx.total);
  }
  const int self = group[static_cast<std::size_t>(pos)];
  std::vector<double> result(static_cast<std::size_t>(ctx.total));
  const std::vector<double>& own =
      (*ctx.contributions)[static_cast<std::size_t>(pos)];
  std::copy(own.begin(), own.end(),
            result.begin() + ctx.offsets[static_cast<std::size_t>(pos)]);

  // Every member tracks all members' held chunk sets with the same
  // deterministic evolution the counting implementation uses; only its own
  // payloads actually move.
  std::vector<std::vector<int>> held(static_cast<std::size_t>(q));
  for (int i = 0; i < q; ++i) held[static_cast<std::size_t>(i)] = {i};

  for (int dist = 1; dist < q; dist *= 2) {
    const int partner = pos ^ dist;
    std::vector<double> payload;
    for (int c : held[static_cast<std::size_t>(pos)]) {
      payload.insert(payload.end(),
                     result.begin() + ctx.offsets[static_cast<std::size_t>(c)],
                     result.begin() + ctx.offsets[static_cast<std::size_t>(c)] +
                         ctx.sizes[static_cast<std::size_t>(c)]);
    }
    send(self, group[static_cast<std::size_t>(partner)], std::move(payload));
    const std::vector<double> incoming =
        recv(self, group[static_cast<std::size_t>(partner)]);
    std::size_t at = 0;
    for (int c : held[static_cast<std::size_t>(partner)]) {
      const std::size_t len =
          static_cast<std::size_t>(ctx.sizes[static_cast<std::size_t>(c)]);
      MTK_ASSERT(at + len <= incoming.size(),
                 "doubling all-gather payload too short");
      std::copy(incoming.begin() + static_cast<std::ptrdiff_t>(at),
                incoming.begin() + static_cast<std::ptrdiff_t>(at + len),
                result.begin() + ctx.offsets[static_cast<std::size_t>(c)]);
      at += len;
    }
    std::vector<std::vector<int>> next = held;
    for (int j = 0; j < q; ++j) {
      next[static_cast<std::size_t>(j ^ dist)].insert(
          next[static_cast<std::size_t>(j ^ dist)].end(),
          held[static_cast<std::size_t>(j)].begin(),
          held[static_cast<std::size_t>(j)].end());
    }
    held = std::move(next);
  }
  (*ctx.results)[static_cast<std::size_t>(pos)] = std::move(result);
}

void ThreadTransport::run_reduce_scatter_bucket(const ReduceCtx& ctx,
                                                int pos) {
  Span span(SpanCategory::kCollective, "member reduce-scatter/bucket");
  const std::vector<int>& group = *ctx.group;
  const int q = static_cast<int>(group.size());
  if (span.enabled()) {
    span.arg("group", q);
    span.arg("words", ctx.total);
  }
  const int self = group[static_cast<std::size_t>(pos)];
  const std::vector<double>& own =
      (*ctx.inputs)[static_cast<std::size_t>(pos)];

  // Traveling partials: start with the own copy of chunk (pos-1) mod q;
  // each step the received partial accumulates this member's contribution
  // to the chunk it carries — identical order to reduce_scatter_bucket.
  const int c0 = ((pos - 1) % q + q) % q;
  std::vector<double> traveling(
      own.begin() + ctx.offsets[static_cast<std::size_t>(c0)],
      own.begin() + ctx.offsets[static_cast<std::size_t>(c0)] +
          ctx.chunk_sizes[static_cast<std::size_t>(c0)]);
  const int right = group[static_cast<std::size_t>((pos + 1) % q)];
  const int left = group[static_cast<std::size_t>((pos - 1 + q) % q)];
  for (int s = 0; s + 1 < q; ++s) {
    send(self, right, std::move(traveling));
    std::vector<double> partial = recv(self, left);
    const int c = ((pos - 2 - s) % q + q) % q;
    MTK_ASSERT(static_cast<index_t>(partial.size()) ==
                   ctx.chunk_sizes[static_cast<std::size_t>(c)],
               "bucket reduce-scatter chunk size mismatch");
    const double* mine = own.data() + ctx.offsets[static_cast<std::size_t>(c)];
    for (std::size_t w = 0; w < partial.size(); ++w) {
      partial[w] += mine[w];
    }
    traveling = std::move(partial);
  }
  (*ctx.results)[static_cast<std::size_t>(pos)] = std::move(traveling);
}

void ThreadTransport::run_reduce_scatter_halving(const ReduceCtx& ctx,
                                                 int pos) {
  Span span(SpanCategory::kCollective, "member reduce-scatter/recursive");
  const std::vector<int>& group = *ctx.group;
  const int q = static_cast<int>(group.size());
  if (span.enabled()) {
    span.arg("group", q);
    span.arg("words", ctx.total);
  }
  const int self = group[static_cast<std::size_t>(pos)];
  const index_t chunk = ctx.total / q;

  std::vector<double> cur = (*ctx.inputs)[static_cast<std::size_t>(pos)];
  int lo = 0;
  for (int half = q / 2; half >= 1; half /= 2) {
    const int partner = pos ^ half;
    const bool keep_upper = (pos & half) != 0;
    const int send_lo = lo + (keep_upper ? 0 : half);
    const index_t off = static_cast<index_t>(send_lo - lo) * chunk;
    std::vector<double> payload(cur.begin() + off,
                                cur.begin() + off + half * chunk);
    send(self, group[static_cast<std::size_t>(partner)], std::move(payload));
    const std::vector<double> incoming =
        recv(self, group[static_cast<std::size_t>(partner)]);
    const int new_lo = lo + (keep_upper ? half : 0);
    const index_t koff = static_cast<index_t>(new_lo - lo) * chunk;
    std::vector<double> kept(cur.begin() + koff,
                             cur.begin() + koff + half * chunk);
    MTK_ASSERT(incoming.size() == kept.size(),
               "recursive halving window mismatch");
    for (std::size_t w = 0; w < kept.size(); ++w) kept[w] += incoming[w];
    cur = std::move(kept);
    lo = new_lo;
  }
  MTK_ASSERT(lo == pos, "member ended with the wrong chunk");
  (*ctx.results)[static_cast<std::size_t>(pos)] = std::move(cur);
}

// ---------------------------------------------------------------------------
// Orchestrator entry points.

std::vector<double> ThreadTransport::do_all_gather(
    const std::vector<int>& group,
    const std::vector<std::vector<double>>& contributions,
    CollectiveKind kind) {
  check_group(num_ranks(), group);
  const int q = static_cast<int>(group.size());
  MTK_CHECK(static_cast<int>(contributions.size()) == q,
            "all_gather: expected ", q, " contributions, got ",
            contributions.size());
  GatherCtx ctx;
  ctx.group = &group;
  ctx.contributions = &contributions;
  ctx.sizes.resize(static_cast<std::size_t>(q));
  ctx.offsets.resize(static_cast<std::size_t>(q));
  for (int i = 0; i < q; ++i) {
    ctx.sizes[static_cast<std::size_t>(i)] = static_cast<index_t>(
        contributions[static_cast<std::size_t>(i)].size());
    ctx.offsets[static_cast<std::size_t>(i)] = ctx.total;
    ctx.total += ctx.sizes[static_cast<std::size_t>(i)];
  }
  std::vector<std::vector<double>> results(static_cast<std::size_t>(q));
  ctx.results = &results;

  std::vector<int> pos_of(static_cast<std::size_t>(num_ranks()), -1);
  for (int i = 0; i < q; ++i) pos_of[static_cast<std::size_t>(group[i])] = i;
  const bool doubling =
      kind == CollectiveKind::kRecursive && recursive_all_gather_applies(q);
  arm_collective(/*with_deadline=*/true);
  dispatch([&](int rank) {
    apply_stall(rank);
    const int pos = pos_of[static_cast<std::size_t>(rank)];
    if (pos < 0) return;
    if (doubling) {
      run_all_gather_doubling(ctx, pos);
    } else {
      run_all_gather_bucket(ctx, pos);
    }
  });
  // Every member assembled identical bits; hand back position 0's copy.
  return std::move(results[0]);
}

std::vector<std::vector<double>> ThreadTransport::do_reduce_scatter(
    const std::vector<int>& group,
    const std::vector<std::vector<double>>& inputs,
    const std::vector<index_t>& chunk_sizes, CollectiveKind kind) {
  check_group(num_ranks(), group);
  const int q = static_cast<int>(group.size());
  MTK_CHECK(static_cast<int>(inputs.size()) == q, "reduce_scatter: expected ",
            q, " inputs, got ", inputs.size());
  MTK_CHECK(static_cast<int>(chunk_sizes.size()) == q,
            "reduce_scatter: expected ", q, " chunk sizes, got ",
            chunk_sizes.size());
  ReduceCtx ctx;
  ctx.group = &group;
  ctx.inputs = &inputs;
  ctx.chunk_sizes = chunk_sizes;
  ctx.offsets.resize(static_cast<std::size_t>(q));
  for (int j = 0; j < q; ++j) {
    MTK_CHECK(chunk_sizes[static_cast<std::size_t>(j)] >= 0,
              "negative chunk size");
    ctx.offsets[static_cast<std::size_t>(j)] = ctx.total;
    ctx.total += chunk_sizes[static_cast<std::size_t>(j)];
  }
  for (int i = 0; i < q; ++i) {
    MTK_CHECK(static_cast<index_t>(inputs[static_cast<std::size_t>(i)].size()) ==
                  ctx.total,
              "reduce_scatter: input ", i, " has ",
              inputs[static_cast<std::size_t>(i)].size(),
              " words, expected ", ctx.total);
  }
  std::vector<std::vector<double>> results(static_cast<std::size_t>(q));
  ctx.results = &results;

  std::vector<int> pos_of(static_cast<std::size_t>(num_ranks()), -1);
  for (int i = 0; i < q; ++i) pos_of[static_cast<std::size_t>(group[i])] = i;
  const bool halving = kind == CollectiveKind::kRecursive &&
                       recursive_reduce_scatter_applies(q, chunk_sizes);
  arm_collective(/*with_deadline=*/true);
  dispatch([&](int rank) {
    apply_stall(rank);
    const int pos = pos_of[static_cast<std::size_t>(rank)];
    if (pos < 0) return;
    if (halving) {
      run_reduce_scatter_halving(ctx, pos);
    } else {
      run_reduce_scatter_bucket(ctx, pos);
    }
  });
  return results;
}

void ThreadTransport::do_run_ranks(const std::function<void(int)>& body) {
  // Local-compute phase: no mailbox traffic, so no deadline window (a stale
  // window from the previous collective must not apply here).
  arm_collective(/*with_deadline=*/false);
  dispatch(body);
}

}  // namespace mtk
