// Seeded, deterministic fault injection for the transport and serving
// stacks. Three pieces:
//
//   FaultSchedule — a parsed fault-schedule script ("delay=0.1:200
//     drop=0.02 corrupt=0.01 stall=1@3:5000 fail=0.2 seed=7"): the
//     operator-facing description of which faults to inject and how often.
//
//   FaultInjector — pure decision functions over the schedule. Every
//     decision is a deterministic hash of (seed, event coordinates): the
//     same schedule replays the same faults at the same points regardless
//     of thread interleaving, so chaos runs are reproducible and the chaos
//     harness can compare a faulted run against a fault-free golden run.
//
//   FaultInjectingTransport — a Transport wrapper (CountingTransport's
//     idiom). Wrapping a ThreadTransport arms its message-level hooks:
//     sends are delayed/dropped/bit-flipped on the wire and ranks stall at
//     collective entry, so peers genuinely block in their mailbox waits
//     until the collective deadline converts the hang into a typed
//     TransportError. Wrapping a SimTransport (centralized, nothing can
//     block) models the same faults at collective granularity: a dropped
//     collective burns the deadline budget and surfaces kTimeout, a
//     corrupted one surfaces kCorruption with the result discarded.
//
// Injected faults are observable via the mtk.fault.* counters
// (docs/metrics.md).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/parsim/transport/transport.hpp"

namespace mtk {

struct FaultSchedule {
  std::uint64_t seed = 1;
  // Message delay: with probability delay_prob, hold a message (threads) or
  // a collective (sim) for delay_us microseconds before delivery.
  double delay_prob = 0.0;
  double delay_us = 0.0;
  // Message drop: the message never arrives; the receiver blocks until the
  // collective deadline and surfaces TransportError{kTimeout}.
  double drop_prob = 0.0;
  // Payload corruption: one wire word is bit-flipped after the checksum is
  // computed; the receiver detects the mismatch and surfaces
  // TransportError{kCorruption}.
  double corrupt_prob = 0.0;
  // Rank stall: rank stall_rank sleeps stall_us microseconds at the entry
  // of every stall_every-th collective (1 = every collective).
  int stall_rank = -1;
  std::uint64_t stall_every = 0;
  double stall_us = 0.0;
  // Serve-level transient failure: with probability fail_prob a work-item
  // attempt throws a retryable TransportError before executing.
  double fail_prob = 0.0;

  bool message_faults() const {
    return delay_prob > 0.0 || drop_prob > 0.0 || corrupt_prob > 0.0 ||
           (stall_rank >= 0 && stall_every > 0 && stall_us > 0.0);
  }

  // Parses a schedule script: whitespace/comma-separated clauses
  //   seed=S  delay=P:US  drop=P  corrupt=P  stall=R@N:US  fail=P
  // with '#' starting a comment that runs to end of line. Unknown clauses
  // and malformed numbers throw std::invalid_argument.
  static FaultSchedule parse(const std::string& script);
  // One-line canonical rendering (for logs and the chaos harness banner).
  std::string describe() const;
};

// Resolves a --chaos/--schedule argument: "@path" loads the script from a
// file (the fault-schedule script checked into tests/data), anything else
// is parsed inline.
FaultSchedule parse_fault_schedule_arg(const std::string& arg);

class FaultInjector {
 public:
  explicit FaultInjector(FaultSchedule schedule) : schedule_(schedule) {}

  const FaultSchedule& schedule() const { return schedule_; }

  struct MessageFault {
    std::int64_t delay_us = 0;
    bool drop = false;
    bool corrupt = false;
  };
  // Decision for the seq-th message on the (from, to) stream. Deterministic
  // in its arguments; per-stream sequence numbers are deterministic because
  // each (sender, receiver) FIFO is ordered regardless of interleaving.
  MessageFault on_message(int from, int to, std::uint64_t seq) const;

  // Microseconds rank `rank` must stall at the entry of collective
  // `collective_seq`; 0 when the schedule does not stall this rank here.
  std::int64_t stall_us(int rank, std::uint64_t collective_seq) const;

  struct CollectiveFault {
    std::int64_t delay_us = 0;
    bool drop = false;
    bool corrupt = false;
  };
  // Collective-granularity decision used by the sim backend (no wire to
  // fault message-by-message).
  CollectiveFault on_collective(std::uint64_t collective_seq) const;

  struct AttemptFault {
    std::int64_t delay_us = 0;
    bool fail = false;
    TransportErrorKind kind = TransportErrorKind::kTimeout;
  };
  // Serve-level decision for attempt `attempt` of request `request_id`:
  // transient failures clear after at most two attempts so a bounded retry
  // budget always converges on a fault that is genuinely transient.
  AttemptFault on_attempt(std::uint64_t request_id, int attempt) const;

 private:
  FaultSchedule schedule_;
};

// Checksum over a wire payload (FNV-1a over the byte representation).
// ThreadTransport stamps each message with it when an injector is armed,
// so an injected bit-flip is detected at the receiver instead of silently
// poisoning the collective result.
std::uint64_t wire_checksum(const double* data, std::size_t count);

class FaultInjectingTransport final : public Transport {
 public:
  FaultInjectingTransport(std::unique_ptr<Transport> inner,
                          std::shared_ptr<const FaultInjector> injector);

  TransportKind kind() const override { return inner_->kind(); }
  int num_ranks() const override { return inner_->num_ranks(); }

  const CommStats& stats(int rank) const override {
    return inner_->stats(rank);
  }
  void reset_stats() override { inner_->reset_stats(); }
  void record_phase(PhaseRecord record) override {
    inner_->record_phase(std::move(record));
  }
  const std::vector<PhaseRecord>& phases() const override {
    return inner_->phases();
  }

  void set_deadline(double seconds) override {
    Transport::set_deadline(seconds);
    inner_->set_deadline(seconds);
  }

  const FaultInjector& injector() const { return *injector_; }

 protected:
  std::vector<double> do_all_gather(
      const std::vector<int>& group,
      const std::vector<std::vector<double>>& contributions,
      CollectiveKind kind) override;
  std::vector<std::vector<double>> do_reduce_scatter(
      const std::vector<int>& group,
      const std::vector<std::vector<double>>& inputs,
      const std::vector<index_t>& chunk_sizes, CollectiveKind kind) override;
  void do_run_ranks(const std::function<void(int)>& body) override;

 private:
  // Applies the sim-backend collective-granularity faults; throws the typed
  // error when the collective is dropped or corrupted. No-op when the inner
  // transport handles faults itself (threads).
  void apply_sim_collective_faults();

  std::unique_ptr<Transport> inner_;
  std::shared_ptr<const FaultInjector> injector_;
  // Orchestrator-side collective ordinal (deterministic: collectives are
  // issued from one thread).
  std::uint64_t collective_seq_ = 0;
  bool inner_handles_faults_ = false;
};

}  // namespace mtk
