#include "src/parsim/transport/counting_transport.hpp"

#include <algorithm>

#include "src/parsim/collective_variants.hpp"

namespace mtk {

CountingTransport::CountingTransport(std::unique_ptr<Transport> inner)
    : inner_(std::move(inner)), shadow_(inner_->num_ranks()) {
  MTK_CHECK(inner_ != nullptr, "CountingTransport needs an inner transport");
  // The shadow replays from zero, so the inner counters must start there too.
  inner_->reset_stats();
  // The do_* replays call the inner transport's *public* entry points; let
  // those record the telemetry once instead of double-counting it here.
  record_telemetry_ = false;
}

index_t CountingTransport::words_compared() const {
  index_t total = 0;
  for (int r = 0; r < num_ranks(); ++r) {
    total += shadow_.stats(r).words_sent + shadow_.stats(r).words_received;
  }
  return total;
}

index_t CountingTransport::messages_compared() const {
  index_t total = 0;
  for (int r = 0; r < num_ranks(); ++r) {
    total += shadow_.stats(r).messages_sent;
  }
  return total;
}

void CountingTransport::check_counters(const char* what) {
  ++collectives_checked_;
  for (int r = 0; r < num_ranks(); ++r) {
    const CommStats& real = inner_->stats(r);
    const CommStats& predicted = shadow_.stats(r);
    MTK_REQUIRE(real.words_sent == predicted.words_sent &&
                    real.words_received == predicted.words_received &&
                    real.messages_sent == predicted.messages_sent,
                what, ": rank ", r, " transport counters diverge from the "
                "simulator: sent ", real.words_sent, "/", predicted.words_sent,
                " words, received ", real.words_received, "/",
                predicted.words_received, ", messages ", real.messages_sent,
                "/", predicted.messages_sent);
  }
}

std::vector<double> CountingTransport::do_all_gather(
    const std::vector<int>& group,
    const std::vector<std::vector<double>>& contributions,
    CollectiveKind kind) {
  std::vector<double> real = inner_->all_gather(group, contributions, kind);
  const std::vector<double> predicted =
      all_gather_dispatch(shadow_, group, contributions, kind);
  MTK_REQUIRE(real.size() == predicted.size() &&
                  std::equal(real.begin(), real.end(), predicted.begin()),
              "all_gather: transport result is not bit-identical to the "
              "simulator's");
  check_counters("all_gather");
  return real;
}

std::vector<std::vector<double>> CountingTransport::do_reduce_scatter(
    const std::vector<int>& group,
    const std::vector<std::vector<double>>& inputs,
    const std::vector<index_t>& chunk_sizes, CollectiveKind kind) {
  std::vector<std::vector<double>> real =
      inner_->reduce_scatter(group, inputs, chunk_sizes, kind);
  const std::vector<std::vector<double>> predicted =
      reduce_scatter_dispatch(shadow_, group, inputs, chunk_sizes, kind);
  MTK_REQUIRE(real.size() == predicted.size(),
              "reduce_scatter: chunk count mismatch");
  for (std::size_t i = 0; i < real.size(); ++i) {
    MTK_REQUIRE(real[i].size() == predicted[i].size() &&
                    std::equal(real[i].begin(), real[i].end(),
                               predicted[i].begin()),
                "reduce_scatter: chunk ", i, " is not bit-identical to the "
                "simulator's");
  }
  check_counters("reduce_scatter");
  return real;
}

void CountingTransport::do_run_ranks(const std::function<void(int)>& body) {
  inner_->run_ranks(body);
}

}  // namespace mtk
