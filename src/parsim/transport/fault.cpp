#include "src/parsim/transport/fault.hpp"

#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "src/obs/metrics.hpp"
#include "src/parsim/transport/thread_transport.hpp"
#include "src/support/check.hpp"
#include "src/support/rng.hpp"

namespace mtk {

namespace {

// Uniform double in [0, 1) from a derived-seed draw: every fault decision
// is one splitmix64 evaluation, keyed on the event coordinates.
double chance(std::uint64_t seed, std::uint64_t salt) {
  return static_cast<double>(derive_seed(seed, salt) >> 11) * 0x1.0p-53;
}

// Folds event coordinates into a single salt; chained derive_seed keeps the
// streams for distinct (tag, a, b, c) tuples independent.
std::uint64_t event_salt(std::uint64_t tag, std::uint64_t a, std::uint64_t b,
                         std::uint64_t c) {
  std::uint64_t s = derive_seed(tag, a);
  s = derive_seed(s, b);
  return derive_seed(s, c);
}

double parse_prob(const std::string& tok, const std::string& clause) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(tok, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  MTK_CHECK(used == tok.size(), "fault schedule: bad number '", tok,
            "' in clause '", clause, "'");
  MTK_CHECK(v >= 0.0 && v <= 1.0, "fault schedule: probability ", v,
            " outside [0, 1] in clause '", clause, "'");
  return v;
}

double parse_us(const std::string& tok, const std::string& clause) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(tok, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  MTK_CHECK(used == tok.size() && v >= 0.0,
            "fault schedule: bad microsecond count '", tok, "' in clause '",
            clause, "'");
  return v;
}

std::uint64_t parse_u64(const std::string& tok, const std::string& clause) {
  std::size_t used = 0;
  unsigned long long v = 0;
  try {
    v = std::stoull(tok, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  MTK_CHECK(used == tok.size(), "fault schedule: bad integer '", tok,
            "' in clause '", clause, "'");
  return static_cast<std::uint64_t>(v);
}

void sleep_us(std::int64_t us) {
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

Counter& fault_counter(const char* name) {
  return MetricsRegistry::global().counter(name);
}

}  // namespace

FaultSchedule FaultSchedule::parse(const std::string& script) {
  FaultSchedule sched;
  // Strip comments, then split on whitespace and commas.
  std::string clean;
  clean.reserve(script.size());
  bool in_comment = false;
  for (char c : script) {
    if (c == '#') in_comment = true;
    if (c == '\n') in_comment = false;
    clean.push_back(in_comment || c == ',' ? ' ' : c);
  }
  std::istringstream in(clean);
  std::string clause;
  while (in >> clause) {
    const std::size_t eq = clause.find('=');
    MTK_CHECK(eq != std::string::npos && eq > 0 && eq + 1 < clause.size(),
              "fault schedule: expected key=value, got '", clause, "'");
    const std::string key = clause.substr(0, eq);
    const std::string val = clause.substr(eq + 1);
    if (key == "seed") {
      sched.seed = parse_u64(val, clause);
    } else if (key == "delay") {
      const std::size_t colon = val.find(':');
      MTK_CHECK(colon != std::string::npos,
                "fault schedule: delay wants P:US, got '", clause, "'");
      sched.delay_prob = parse_prob(val.substr(0, colon), clause);
      sched.delay_us = parse_us(val.substr(colon + 1), clause);
    } else if (key == "drop") {
      sched.drop_prob = parse_prob(val, clause);
    } else if (key == "corrupt") {
      sched.corrupt_prob = parse_prob(val, clause);
    } else if (key == "stall") {
      const std::size_t at = val.find('@');
      const std::size_t colon = val.find(':', at == std::string::npos ? 0 : at);
      MTK_CHECK(at != std::string::npos && colon != std::string::npos &&
                    at < colon,
                "fault schedule: stall wants R@N:US, got '", clause, "'");
      sched.stall_rank =
          static_cast<int>(parse_u64(val.substr(0, at), clause));
      sched.stall_every = parse_u64(val.substr(at + 1, colon - at - 1), clause);
      MTK_CHECK(sched.stall_every >= 1,
                "fault schedule: stall period must be >= 1 in '", clause, "'");
      sched.stall_us = parse_us(val.substr(colon + 1), clause);
    } else if (key == "fail") {
      sched.fail_prob = parse_prob(val, clause);
    } else {
      MTK_CHECK(false, "fault schedule: unknown clause '", clause,
                "' (known: seed, delay, drop, corrupt, stall, fail)");
    }
  }
  return sched;
}

std::string FaultSchedule::describe() const {
  std::ostringstream out;
  out << "seed=" << seed;
  if (delay_prob > 0.0) out << " delay=" << delay_prob << ":" << delay_us;
  if (drop_prob > 0.0) out << " drop=" << drop_prob;
  if (corrupt_prob > 0.0) out << " corrupt=" << corrupt_prob;
  if (stall_rank >= 0 && stall_every > 0 && stall_us > 0.0) {
    out << " stall=" << stall_rank << "@" << stall_every << ":" << stall_us;
  }
  if (fail_prob > 0.0) out << " fail=" << fail_prob;
  return out.str();
}

FaultSchedule parse_fault_schedule_arg(const std::string& arg) {
  if (!arg.empty() && arg.front() == '@') {
    const std::string path = arg.substr(1);
    std::ifstream in(path);
    MTK_CHECK(in.good(), "fault schedule file not readable: ", path);
    std::ostringstream body;
    body << in.rdbuf();
    return FaultSchedule::parse(body.str());
  }
  return FaultSchedule::parse(arg);
}

FaultInjector::MessageFault FaultInjector::on_message(
    int from, int to, std::uint64_t seq) const {
  MessageFault fault;
  const std::uint64_t salt =
      event_salt(0x6d736716, static_cast<std::uint64_t>(from),
                 static_cast<std::uint64_t>(to), seq);
  // Mutually exclusive draws (a dropped message cannot also be corrupted):
  // one uniform split across the three probability bands.
  const double u = chance(schedule_.seed, salt);
  if (u < schedule_.drop_prob) {
    fault.drop = true;
  } else if (u < schedule_.drop_prob + schedule_.corrupt_prob) {
    fault.corrupt = true;
  } else if (u <
             schedule_.drop_prob + schedule_.corrupt_prob +
                 schedule_.delay_prob) {
    fault.delay_us = static_cast<std::int64_t>(schedule_.delay_us);
  }
  return fault;
}

std::int64_t FaultInjector::stall_us(int rank,
                                     std::uint64_t collective_seq) const {
  if (rank != schedule_.stall_rank || schedule_.stall_every == 0 ||
      schedule_.stall_us <= 0.0) {
    return 0;
  }
  if ((collective_seq + 1) % schedule_.stall_every != 0) return 0;
  return static_cast<std::int64_t>(schedule_.stall_us);
}

FaultInjector::CollectiveFault FaultInjector::on_collective(
    std::uint64_t collective_seq) const {
  CollectiveFault fault;
  const std::uint64_t salt = event_salt(0x636f6c6c, collective_seq, 0, 0);
  const double u = chance(schedule_.seed, salt);
  if (u < schedule_.drop_prob) {
    fault.drop = true;
  } else if (u < schedule_.drop_prob + schedule_.corrupt_prob) {
    fault.corrupt = true;
  } else if (u <
             schedule_.drop_prob + schedule_.corrupt_prob +
                 schedule_.delay_prob) {
    fault.delay_us = static_cast<std::int64_t>(schedule_.delay_us);
  }
  return fault;
}

FaultInjector::AttemptFault FaultInjector::on_attempt(std::uint64_t request_id,
                                                      int attempt) const {
  AttemptFault fault;
  const std::uint64_t salt = event_salt(
      0x61747470, request_id, static_cast<std::uint64_t>(attempt), 0);
  const double u = chance(schedule_.seed, salt);
  if (u < schedule_.delay_prob) {
    fault.delay_us = static_cast<std::int64_t>(schedule_.delay_us);
  }
  // Transient by construction: attempts beyond the second always run clean,
  // so any retry budget >= 2 converges unless the deadline expires first.
  if (attempt < 2 && chance(schedule_.seed, derive_seed(salt, 0x66616971)) <
                         schedule_.fail_prob) {
    fault.fail = true;
    fault.kind = (derive_seed(salt, 0x6b696e64) & 1)
                     ? TransportErrorKind::kTimeout
                     : TransportErrorKind::kCorruption;
  }
  return fault;
}

std::uint64_t wire_checksum(const double* data, std::size_t count) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &data[i], sizeof(bits));
    for (int b = 0; b < 8; ++b) {
      h ^= (bits >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

FaultInjectingTransport::FaultInjectingTransport(
    std::unique_ptr<Transport> inner,
    std::shared_ptr<const FaultInjector> injector)
    : inner_(std::move(inner)), injector_(std::move(injector)) {
  MTK_CHECK(inner_ != nullptr, "FaultInjectingTransport needs a transport");
  MTK_CHECK(injector_ != nullptr, "FaultInjectingTransport needs an injector");
  // Like CountingTransport: do_* delegates to the inner transport's public
  // entry points, which record spans/counters/timing once.
  record_telemetry_ = false;
  if (auto* threads = dynamic_cast<ThreadTransport*>(inner_.get())) {
    // Real wire: arm the message-level hooks so delay/drop/corrupt happen
    // on individual mailbox messages and stalls on the rank threads.
    threads->set_fault_injector(injector_);
    inner_handles_faults_ = true;
  }
}

void FaultInjectingTransport::apply_sim_collective_faults() {
  const std::uint64_t seq = collective_seq_++;
  const std::int64_t stall =
      injector_->stall_us(injector_->schedule().stall_rank, seq);
  if (stall > 0) {
    static Counter& stalls = fault_counter("mtk.fault.stalls");
    stalls.add();
    sleep_us(stall);
  }
  const FaultInjector::CollectiveFault fault = injector_->on_collective(seq);
  if (fault.delay_us > 0) {
    static Counter& delays = fault_counter("mtk.fault.delays");
    delays.add();
    sleep_us(fault.delay_us);
  }
  if (fault.drop) {
    static Counter& drops = fault_counter("mtk.fault.drops");
    drops.add();
    // The collective never completes: burn the deadline budget (bounded),
    // then surface the timeout the blocked ranks would have seen.
    if (deadline_seconds() > 0.0) {
      sleep_us(static_cast<std::int64_t>(deadline_seconds() * 1e6));
    }
    throw TransportError(TransportErrorKind::kTimeout, -1,
                         "injected drop: collective " + std::to_string(seq) +
                             " timed out");
  }
  if (fault.corrupt) {
    static Counter& corruptions = fault_counter("mtk.fault.corruptions");
    corruptions.add();
    throw TransportError(TransportErrorKind::kCorruption, -1,
                         "injected corruption: collective " +
                             std::to_string(seq) + " failed its checksum");
  }
}

std::vector<double> FaultInjectingTransport::do_all_gather(
    const std::vector<int>& group,
    const std::vector<std::vector<double>>& contributions,
    CollectiveKind kind) {
  if (!inner_handles_faults_) apply_sim_collective_faults();
  return inner_->all_gather(group, contributions, kind);
}

std::vector<std::vector<double>> FaultInjectingTransport::do_reduce_scatter(
    const std::vector<int>& group,
    const std::vector<std::vector<double>>& inputs,
    const std::vector<index_t>& chunk_sizes, CollectiveKind kind) {
  if (!inner_handles_faults_) apply_sim_collective_faults();
  return inner_->reduce_scatter(group, inputs, chunk_sizes, kind);
}

void FaultInjectingTransport::do_run_ranks(
    const std::function<void(int)>& body) {
  inner_->run_ranks(body);
}

}  // namespace mtk
