// CountingTransport: verification wrapper that runs every collective on a
// real inner transport AND replays it on a shadow counting Machine, then
// asserts (1) the data is bit-identical and (2) every rank's word and
// message counters match the simulator's prediction exactly. This is the
// acceptance gate for the thread backend: if ThreadTransport ever moves a
// word the model does not charge (or vice versa), the next collective
// throws instead of letting the discrepancy drift.
#pragma once

#include "src/parsim/transport/transport.hpp"

namespace mtk {

class CountingTransport final : public Transport {
 public:
  explicit CountingTransport(std::unique_ptr<Transport> inner);

  TransportKind kind() const override { return inner_->kind(); }
  int num_ranks() const override { return inner_->num_ranks(); }

  const CommStats& stats(int rank) const override {
    return inner_->stats(rank);
  }
  void reset_stats() override {
    inner_->reset_stats();
    shadow_.reset_stats();
  }
  void record_phase(PhaseRecord record) override {
    inner_->record_phase(std::move(record));
  }
  const std::vector<PhaseRecord>& phases() const override {
    return inner_->phases();
  }

  // The simulator's view of the traffic so far (what the inner transport's
  // counters are checked against after every collective).
  const Machine& shadow() const { return shadow_; }
  index_t collectives_checked() const { return collectives_checked_; }

  // Totals compared so far, summed over ranks — the numbers the CLI's
  // --verify-counts parity summary reports.
  index_t words_compared() const;
  index_t messages_compared() const;

 protected:
  std::vector<double> do_all_gather(
      const std::vector<int>& group,
      const std::vector<std::vector<double>>& contributions,
      CollectiveKind kind) override;
  std::vector<std::vector<double>> do_reduce_scatter(
      const std::vector<int>& group,
      const std::vector<std::vector<double>>& inputs,
      const std::vector<index_t>& chunk_sizes, CollectiveKind kind) override;
  void do_run_ranks(const std::function<void(int)>& body) override;

 private:
  void check_counters(const char* what);

  std::unique_ptr<Transport> inner_;
  Machine shadow_;
  index_t collectives_checked_ = 0;
};

}  // namespace mtk
