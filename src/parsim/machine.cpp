#include "src/parsim/machine.hpp"

#include <algorithm>

namespace mtk {

Machine::Machine(int num_ranks) {
  MTK_CHECK(num_ranks >= 1, "machine needs at least one rank, got ",
            num_ranks);
  stats_.resize(static_cast<std::size_t>(num_ranks));
}

void Machine::record_send(int from, int to, index_t words) {
  MTK_CHECK(from >= 0 && from < num_ranks(), "invalid sender rank ", from);
  MTK_CHECK(to >= 0 && to < num_ranks(), "invalid receiver rank ", to);
  MTK_CHECK(from != to, "rank ", from, " cannot send to itself");
  MTK_CHECK(words >= 0, "negative word count ", words);
  auto& s = stats_[static_cast<std::size_t>(from)];
  auto& r = stats_[static_cast<std::size_t>(to)];
  s.words_sent += words;
  s.messages_sent += 1;
  r.words_received += words;
}

const CommStats& Machine::stats(int rank) const {
  MTK_CHECK(rank >= 0 && rank < num_ranks(), "invalid rank ", rank);
  return stats_[static_cast<std::size_t>(rank)];
}

void Machine::reset_stats() {
  std::fill(stats_.begin(), stats_.end(), CommStats{});
  phases_.clear();
}

index_t Machine::max_words_moved() const {
  index_t best = 0;
  for (const CommStats& s : stats_) {
    best = std::max(best, s.words_moved());
  }
  return best;
}

index_t Machine::max_messages_sent() const {
  index_t best = 0;
  for (const CommStats& s : stats_) {
    best = std::max(best, s.messages_sent);
  }
  return best;
}

index_t Machine::total_words_sent() const {
  index_t total = 0;
  for (const CommStats& s : stats_) total += s.words_sent;
  return total;
}

}  // namespace mtk
