// Shared building blocks of the parallel MTTKRP drivers: the phase-counter
// scope, flat (de)serialization of matrix blocks, and the two hyperslice
// collectives every algorithm is assembled from — All-Gather of a factor's
// block rows within the hyperslices normal to one grid dimension, and
// Reduce-Scatter of per-rank output contributions within those hyperslices.
// Keeping these here lets the dense and sparse paths (and the single-mode
// and all-modes drivers) differ only in how the local MTTKRP is computed;
// the communication — and therefore the word counts — is shared code.
//
// Everything is written against the Transport interface (see DESIGN.md), so
// the same driver code runs on the counting Machine simulator or on real
// std::thread ranks, depending on which Transport the caller passes.
#pragma once

#include <string>
#include <vector>

#include "src/mttkrp/dispatch.hpp"
#include "src/parsim/collective_variants.hpp"
#include "src/parsim/grid.hpp"
#include "src/parsim/transport/transport.hpp"
#include "src/tensor/block.hpp"
#include "src/tensor/matrix.hpp"

namespace mtk {

// Number of ranks a grid shape describes (product of extents).
int grid_size(const std::vector<int>& grid_shape);

// COO view of sparse storage: borrows a COO tensor directly, expands CSF
// into `scratch` (whose lifetime the caller provides). Dense storage is
// rejected — the parallel drivers keep dense blocks dense.
const SparseTensor& sparse_coo_view(const StoredTensor& x,
                                    SparseTensor& scratch);

// Local MTTKRP on one process's (rebased) sparse block with the kernel
// native to the input's storage format; CSF blocks are rooted at the output
// mode, the per-mode ordering SPLATT uses. `variant` is the planner-chosen
// sparse kernel schedule (ExecutionPlan::kernel_variant); kAuto keeps the
// heuristic choice.
Matrix local_sparse_mttkrp(
    const SparseTensor& block, const std::vector<Matrix>& factors, int mode,
    StorageFormat format,
    SparseKernelVariant variant = SparseKernelVariant::kAuto);

// Snapshots per-rank counters around one collective phase and records the
// per-phase bottleneck on destruction.
class PhaseScope {
 public:
  PhaseScope(Transport& transport, std::string label, int group_size);
  ~PhaseScope();

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Transport& transport_;
  std::string label_;
  int group_size_;
  std::vector<index_t> before_;
  std::vector<index_t> before_messages_;
};

// Flattens rows [rows.lo, rows.hi) x all columns of `m` (row-major order).
std::vector<double> flatten_rows(const Matrix& m, Range rows);

// Flattens the submatrix rows x cols of `m` (row-major order).
std::vector<double> flatten_submatrix(const Matrix& m, Range rows, Range cols);

// Inverse of flatten_rows for a full rows x cols matrix.
Matrix unflatten_matrix(const std::vector<double>& flat, index_t rows,
                        index_t cols);

// Gram of A via per-rank partial Grams over a balanced global row partition
// and a machine-wide All-Reduce of R^2 words under `kind`; returns the
// exact Gram and charges the traffic to the transport. Shared by par_cp_als
// and par_cp_gradient.
Matrix distributed_gram(Transport& transport, const Matrix& a,
                        CollectiveKind kind);
Matrix distributed_gram(Machine& machine, const Matrix& a,
                        CollectiveKind kind);

// Line 4 of Algorithms 3/4 for one input factor: All-Gathers the block rows
// A(parts[c], :) within each hyperslice of ranks sharing grid coordinate c
// on dimension `grid_dim` (member i of a hyperslice initially owns the i-th
// balanced flat chunk, Section V-C1). Returns the assembled block row per
// coordinate; records one phase under `label`.
std::vector<Matrix> gather_factor_hyperslices(
    Transport& transport, const ProcessorGrid& grid, const Matrix& factor,
    const std::vector<Range>& parts, int grid_dim, CollectiveKind collectives,
    const std::string& label);

// Line 7 of Algorithms 3/4: Reduce-Scatters the per-rank contributions
// local_c (each parts[c].length() x rank_r for the rank's hyperslice
// coordinate c on `grid_dim`) within each hyperslice, then assembles the
// distributed chunks into the global out_rows x rank_r output; records one
// phase under `label`.
Matrix reduce_scatter_hyperslices(
    Transport& transport, const ProcessorGrid& grid,
    const std::vector<Matrix>& local_c, const std::vector<Range>& parts,
    int grid_dim, index_t out_rows, index_t rank_r,
    CollectiveKind collectives, const std::string& label);

}  // namespace mtk
