// Serialization for tensors, matrices, and CP models, so the CLI tools and
// examples can exchange data with downstream pipelines.
//
// Binary format (little-endian, host-width doubles):
//   magic (8 bytes: "MTKTNSR1" / "MTKMATR1" / "MTKCPMD1")
//   tensor: int64 order, int64 dims[order], double data[prod(dims)]
//   matrix: int64 rows, int64 cols, double data[rows*cols]
//   model:  int64 order, int64 rank, matrices..., double lambda[rank]
// No attempt is made at cross-endian portability; this is a working-set
// format, not an archive format.
//
// Sparse tensors additionally use the FROSTT coordinate text format
// (http://frostt.io, `.tns`): one nonzero per line as `i_1 ... i_N value`
// with 1-based indices, `#` comment lines ignored. The writer emits a
// `# dims: d_1 ... d_N` comment so extents with trailing empty slices
// round-trip; the reader honors it when present and otherwise infers each
// extent as the maximum index seen in that mode.
#pragma once

#include <string>

#include "src/cp/cp_als.hpp"
#include "src/tensor/dense_tensor.hpp"
#include "src/tensor/matrix.hpp"
#include "src/tensor/sparse_tensor.hpp"

namespace mtk {

void save_tensor(const DenseTensor& x, const std::string& path);
DenseTensor load_tensor(const std::string& path);

void save_matrix(const Matrix& m, const std::string& path);
Matrix load_matrix(const std::string& path);

void save_cp_model(const CpModel& model, const std::string& path);
CpModel load_cp_model(const std::string& path);

// FROSTT `.tns` coordinate format. The loaded tensor is sorted/deduped and
// ready for any sparse kernel; duplicate lines in the file are summed.
void save_tensor_tns(const SparseTensor& x, const std::string& path);
SparseTensor load_tensor_tns(const std::string& path);

}  // namespace mtk
