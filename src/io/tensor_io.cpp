#include "src/io/tensor_io.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "src/support/check.hpp"

namespace mtk {

namespace {

constexpr char kTensorMagic[8] = {'M', 'T', 'K', 'T', 'N', 'S', 'R', '1'};
constexpr char kMatrixMagic[8] = {'M', 'T', 'K', 'M', 'A', 'T', 'R', '1'};
constexpr char kModelMagic[8] = {'M', 'T', 'K', 'C', 'P', 'M', 'D', '1'};

void write_bytes(std::ofstream& out, const void* data, std::size_t bytes) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
  MTK_REQUIRE(out.good(), "write failed");
}

void read_bytes(std::ifstream& in, void* data, std::size_t bytes) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  MTK_REQUIRE(in.gcount() == static_cast<std::streamsize>(bytes),
              "unexpected end of file");
}

void write_i64(std::ofstream& out, index_t v) { write_bytes(out, &v, 8); }

index_t read_i64(std::ifstream& in) {
  index_t v = 0;
  read_bytes(in, &v, 8);
  return v;
}

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  MTK_REQUIRE(out.is_open(), "cannot open '", path, "' for writing");
  return out;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MTK_REQUIRE(in.is_open(), "cannot open '", path, "' for reading");
  return in;
}

void check_magic(std::ifstream& in, const char (&magic)[8],
                 const char* what) {
  char got[8];
  read_bytes(in, got, 8);
  MTK_REQUIRE(std::memcmp(got, magic, 8) == 0, "file is not a ", what,
              " (bad magic)");
}

void write_matrix_body(std::ofstream& out, const Matrix& m) {
  write_i64(out, m.rows());
  write_i64(out, m.cols());
  write_bytes(out, m.data(), static_cast<std::size_t>(m.size()) * 8);
}

Matrix read_matrix_body(std::ifstream& in) {
  const index_t rows = read_i64(in);
  const index_t cols = read_i64(in);
  MTK_REQUIRE(rows >= 0 && cols >= 0 && rows < (index_t{1} << 32) &&
                  cols < (index_t{1} << 32),
              "implausible matrix header ", rows, "x", cols);
  Matrix m(rows, cols);
  read_bytes(in, m.data(), static_cast<std::size_t>(m.size()) * 8);
  return m;
}

}  // namespace

void save_tensor(const DenseTensor& x, const std::string& path) {
  std::ofstream out = open_out(path);
  write_bytes(out, kTensorMagic, 8);
  write_i64(out, x.order());
  for (index_t d : x.dims()) write_i64(out, d);
  write_bytes(out, x.data(), static_cast<std::size_t>(x.size()) * 8);
}

DenseTensor load_tensor(const std::string& path) {
  std::ifstream in = open_in(path);
  check_magic(in, kTensorMagic, "tensor file");
  const index_t order = read_i64(in);
  MTK_REQUIRE(order >= 1 && order <= 64, "implausible tensor order ", order);
  shape_t dims;
  for (index_t k = 0; k < order; ++k) dims.push_back(read_i64(in));
  DenseTensor x(dims);
  read_bytes(in, x.data(), static_cast<std::size_t>(x.size()) * 8);
  return x;
}

void save_matrix(const Matrix& m, const std::string& path) {
  std::ofstream out = open_out(path);
  write_bytes(out, kMatrixMagic, 8);
  write_matrix_body(out, m);
}

Matrix load_matrix(const std::string& path) {
  std::ifstream in = open_in(path);
  check_magic(in, kMatrixMagic, "matrix file");
  return read_matrix_body(in);
}

void save_cp_model(const CpModel& model, const std::string& path) {
  MTK_CHECK(!model.factors.empty(), "cannot save an empty CP model");
  std::ofstream out = open_out(path);
  write_bytes(out, kModelMagic, 8);
  write_i64(out, static_cast<index_t>(model.factors.size()));
  write_i64(out, model.rank());
  for (const Matrix& a : model.factors) write_matrix_body(out, a);
  write_bytes(out, model.lambda.data(), model.lambda.size() * 8);
}

CpModel load_cp_model(const std::string& path) {
  std::ifstream in = open_in(path);
  check_magic(in, kModelMagic, "CP model file");
  const index_t order = read_i64(in);
  const index_t rank = read_i64(in);
  MTK_REQUIRE(order >= 1 && order <= 64, "implausible model order ", order);
  MTK_REQUIRE(rank >= 1, "implausible model rank ", rank);
  CpModel model;
  for (index_t k = 0; k < order; ++k) {
    model.factors.push_back(read_matrix_body(in));
    MTK_REQUIRE(model.factors.back().cols() == rank,
                "factor rank mismatch in model file");
  }
  model.lambda.resize(static_cast<std::size_t>(rank));
  read_bytes(in, model.lambda.data(), model.lambda.size() * 8);
  return model;
}

void save_tensor_tns(const SparseTensor& x, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  MTK_REQUIRE(out.is_open(), "cannot open '", path, "' for writing");
  out << "# dims:";
  for (index_t d : x.dims()) out << ' ' << d;
  out << '\n';
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (index_t p = 0; p < x.nnz(); ++p) {
    for (int k = 0; k < x.order(); ++k) {
      out << x.index(k, p) + 1 << ' ';  // FROSTT indices are 1-based
    }
    out << x.value(p) << '\n';
  }
  MTK_REQUIRE(out.good(), "write failed for '", path, "'");
}

SparseTensor load_tensor_tns(const std::string& path) {
  std::ifstream in(path);
  MTK_REQUIRE(in.is_open(), "cannot open '", path, "' for reading");

  shape_t declared_dims;
  std::vector<multi_index_t> coords;
  std::vector<double> values;
  int order = -1;
  std::string line;
  index_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // A "# dims: ..." comment (and only that — a comment merely *containing*
    // "dims:" somewhere is prose) pins the extents; other comments are
    // skipped.
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') {
      const std::size_t body = line.find_first_not_of(" \t", first + 1);
      if (body != std::string::npos && line.compare(body, 5, "dims:") == 0) {
        std::istringstream ds(line.substr(body + 5));
        index_t d = 0;
        while (ds >> d) declared_dims.push_back(d);
      }
      continue;
    }
    std::istringstream ls(line);
    std::vector<double> fields;
    double v = 0.0;
    while (ls >> v) fields.push_back(v);
    MTK_REQUIRE(fields.size() >= 2, "line ", line_no, " of '", path,
                "' has ", fields.size(), " fields; need >= 2");
    if (order < 0) {
      order = static_cast<int>(fields.size()) - 1;
    }
    MTK_REQUIRE(static_cast<int>(fields.size()) == order + 1, "line ",
                line_no, " of '", path, "' has ", fields.size() - 1,
                " indices, expected ", order);
    multi_index_t idx(static_cast<std::size_t>(order));
    for (int k = 0; k < order; ++k) {
      const double f = fields[static_cast<std::size_t>(k)];
      MTK_REQUIRE(f == std::floor(f), "line ", line_no, " of '", path,
                  "': index field ", f, " is not an integer");
      const index_t i = static_cast<index_t>(f);
      MTK_REQUIRE(i >= 1, "line ", line_no, " of '", path,
                  "': index ", i, " is not 1-based positive");
      idx[static_cast<std::size_t>(k)] = i - 1;
    }
    coords.push_back(std::move(idx));
    values.push_back(fields.back());
  }
  if (order <= 0) {
    // No data lines: a "# dims:" declaration still describes a legal
    // (all-zero) tensor, so the writer's output for one round-trips.
    MTK_REQUIRE(!declared_dims.empty(), "'", path,
                "' contains no nonzero entries and no dims declaration");
    SparseTensor empty(declared_dims);
    return empty;
  }

  shape_t dims(static_cast<std::size_t>(order), 1);
  for (const multi_index_t& idx : coords) {
    for (int k = 0; k < order; ++k) {
      dims[static_cast<std::size_t>(k)] = std::max(
          dims[static_cast<std::size_t>(k)], idx[static_cast<std::size_t>(k)] + 1);
    }
  }
  if (!declared_dims.empty()) {
    MTK_REQUIRE(static_cast<int>(declared_dims.size()) == order,
                "'", path, "' declares ", declared_dims.size(),
                " dims for order-", order, " data");
    for (int k = 0; k < order; ++k) {
      MTK_REQUIRE(declared_dims[static_cast<std::size_t>(k)] >=
                      dims[static_cast<std::size_t>(k)],
                  "'", path, "' declares dim ", k, " = ",
                  declared_dims[static_cast<std::size_t>(k)],
                  " smaller than max index ",
                  dims[static_cast<std::size_t>(k)]);
    }
    dims = declared_dims;
  }

  SparseTensor x(dims);
  for (std::size_t p = 0; p < values.size(); ++p) {
    x.push_back(coords[p], values[p]);
  }
  x.sort_and_dedup();
  return x;
}

}  // namespace mtk
