#include "src/io/frostt_presets.hpp"

namespace mtk {

const std::vector<FrosttPreset>& frostt_presets() {
  // Extents keep the published shape ratios at ~1/4000 the element count;
  // densities are chosen so each preset lands in the 1e5-nonzero range a
  // benchmark iteration can afford.
  static const std::vector<FrosttPreset> presets = {
      {"nell-2", {3023, 2296, 7205}, 4.0e-6, 1.1},
      {"delicious", {5330, 17262, 24803}, 6.0e-8, 1.8},
      {"amazon", {4821, 17818, 236}, 1.0e-5, 1.3},
      // One long output mode against a modest nonzero count: the regime
      // where the critical-section kernel pays thread-count full-output
      // copies. The single source of truth for the kernel-smoke tensor
      // (tools/kernel_smoke, bench_sparse_mttkrp's sweep fixture, the
      // Release ctest, and the CI smoke all use this entry).
      {"long-mode", {40000, 400, 300}, 2.0e-5, 1.5},
  };
  return presets;
}

const FrosttPreset* find_frostt_preset(const std::string& name) {
  for (const FrosttPreset& p : frostt_presets()) {
    if (name == p.name) return &p;
  }
  return nullptr;
}

FrosttPreset scale_frostt_preset(const FrosttPreset& preset, double scale) {
  MTK_CHECK(scale > 0.0, "preset scale must be > 0, got ", scale);
  FrosttPreset scaled = preset;
  double extent_ratio = 1.0;  // actual prod(dims) change after clamping
  for (index_t& d : scaled.dims) {
    const index_t grown = std::max<index_t>(
        2, static_cast<index_t>(std::llround(static_cast<double>(d) * scale)));
    extent_ratio *= static_cast<double>(grown) / static_cast<double>(d);
    d = grown;
  }
  // Keep expected nnz ~ scale * original: nnz = density * prod(dims), so
  // divide the density by the per-value extent growth beyond `scale`.
  scaled.density =
      std::min(0.5, preset.density * scale / std::max(extent_ratio, 1e-300));
  return scaled;
}

SparseTensor make_frostt_like(const FrosttPreset& preset,
                              std::uint64_t seed) {
  Rng rng(seed);
  return SparseTensor::random_sparse_skewed(preset.dims, preset.density,
                                            preset.skew, rng);
}

}  // namespace mtk
