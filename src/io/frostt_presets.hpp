// Synthetic presets that mimic real FROSTT tensor shapes (scaled down to
// bench-friendly nonzero counts, aspect ratios and slice skew preserved),
// so `tools/gen_tns`, `bench_sparse_mttkrp`, and `bench_par_scaling` can
// sweep realistic sparse scenarios without external downloads.
//
//   nell-2    — the NELL knowledge-base slice: three comparable extents
//               with one ~2.5x longer mode, mild hub skew.
//   delicious — the delicious-3d tagging tensor: extremely rectangular
//               (one mode ~30x the smallest), heavy hub skew.
//   amazon    — review-style tensor: two long user/item modes against a
//               short context mode, moderate skew.
#pragma once

#include <string>
#include <vector>

#include "src/support/rng.hpp"
#include "src/tensor/sparse_tensor.hpp"

namespace mtk {

struct FrosttPreset {
  const char* name;
  shape_t dims;
  double density;
  double skew;  // per-mode Zipf exponent (SparseTensor::random_sparse_skewed)
};

// All built-in presets (stable order; names are unique).
const std::vector<FrosttPreset>& frostt_presets();

// Preset by name, or nullptr when unknown.
const FrosttPreset* find_frostt_preset(const std::string& name);

// Rescales a preset's output size while keeping its shape ratios and skew
// profile: every extent is multiplied by `scale` (clamped to >= 2 so no
// mode collapses) and the density is adjusted by scale^-(N-1), so the
// expected nonzero count scales ~linearly with `scale`. scale < 1 shrinks
// a preset to CI size (gen_tns --preset amazon --scale 0.1); scale > 1
// grows it for stress runs. The returned struct aliases the input's name.
FrosttPreset scale_frostt_preset(const FrosttPreset& preset, double scale);

// Generates the preset's tensor (sorted/deduped), deterministic per seed.
SparseTensor make_frostt_like(const FrosttPreset& preset,
                              std::uint64_t seed);

}  // namespace mtk
