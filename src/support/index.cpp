#include "src/support/index.hpp"

namespace mtk {

index_t shape_size(const shape_t& dims) {
  index_t total = 1;
  for (index_t d : dims) {
    MTK_CHECK(d >= 0, "shape extents must be non-negative, got ", d);
    total = checked_mul(total, d);
  }
  return total;
}

void check_shape(const shape_t& dims) {
  MTK_CHECK(!dims.empty(), "shape must have at least one dimension");
  for (std::size_t k = 0; k < dims.size(); ++k) {
    MTK_CHECK(dims[k] > 0, "shape extent ", k, " must be positive, got ",
              dims[k]);
  }
}

shape_t col_major_strides(const shape_t& dims) {
  check_shape(dims);
  shape_t strides(dims.size());
  index_t acc = 1;
  for (std::size_t k = 0; k < dims.size(); ++k) {
    strides[k] = acc;
    acc = checked_mul(acc, dims[k]);
  }
  return strides;
}

index_t linearize(const multi_index_t& idx, const shape_t& dims) {
  MTK_CHECK(idx.size() == dims.size(), "index rank ", idx.size(),
            " does not match shape rank ", dims.size());
  index_t lin = 0;
  index_t stride = 1;
  for (std::size_t k = 0; k < dims.size(); ++k) {
    MTK_CHECK(idx[k] >= 0 && idx[k] < dims[k], "index ", idx[k],
              " out of bounds for extent ", dims[k], " in dimension ", k);
    lin += idx[k] * stride;
    stride = checked_mul(stride, dims[k]);
  }
  return lin;
}

multi_index_t delinearize(index_t lin, const shape_t& dims) {
  MTK_CHECK(lin >= 0 && lin < shape_size(dims), "linear index ", lin,
            " out of bounds for shape of size ", shape_size(dims));
  multi_index_t idx(dims.size());
  for (std::size_t k = 0; k < dims.size(); ++k) {
    idx[k] = lin % dims[k];
    lin /= dims[k];
  }
  return idx;
}

Odometer::Odometer(const shape_t& dims)
    : Odometer(multi_index_t(dims.size(), 0), dims) {}

Odometer::Odometer(multi_index_t lo, multi_index_t hi)
    : lo_(std::move(lo)), hi_(std::move(hi)) {
  MTK_CHECK(lo_.size() == hi_.size(), "Odometer lo/hi rank mismatch: ",
            lo_.size(), " vs ", hi_.size());
  MTK_CHECK(!lo_.empty(), "Odometer requires at least one dimension");
  for (std::size_t k = 0; k < lo_.size(); ++k) {
    MTK_CHECK(lo_[k] >= 0 && lo_[k] <= hi_[k], "Odometer range [", lo_[k],
              ", ", hi_[k], ") invalid in dimension ", k);
  }
  reset();
}

void Odometer::reset() {
  current_ = lo_;
  valid_ = true;
  for (std::size_t k = 0; k < lo_.size(); ++k) {
    if (lo_[k] == hi_[k]) valid_ = false;  // empty range
  }
}

void Odometer::next() {
  MTK_ASSERT(valid_, "Odometer::next called past the end");
  for (std::size_t k = 0; k < current_.size(); ++k) {
    if (++current_[k] < hi_[k]) return;
    current_[k] = lo_[k];
  }
  valid_ = false;
}

index_t Odometer::count() const {
  index_t total = 1;
  for (std::size_t k = 0; k < lo_.size(); ++k) {
    total = checked_mul(total, hi_[k] - lo_[k]);
  }
  return total;
}

}  // namespace mtk
