// Deterministic random-number helpers. Every randomized test, example, and
// benchmark seeds explicitly so runs are reproducible.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "src/support/math_util.hpp"

namespace mtk {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);
  // Standard normal.
  double normal();
  // Uniform integer in [lo, hi] inclusive.
  index_t uniform_int(index_t lo, index_t hi);

  void fill_uniform(std::vector<double>& v, double lo = 0.0, double hi = 1.0);
  void fill_normal(std::vector<double>& v);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

// Deterministic seed derivation (splitmix64 over seed ^ salt): one
// user-facing seed fans out into independent per-use streams (per sweep,
// per mode, per trial) without the streams aliasing each other. The same
// (seed, salt) pair always yields the same derived seed, so sampled runs
// stay bit-reproducible across platforms and thread counts.
std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t salt);

// Samples indices from a fixed discrete distribution given by non-negative
// weights (not necessarily normalized), via inverse-CDF binary search —
// O(log n) per draw. The sampling workhorse of src/sketch: per-mode
// leverage-score draws.
class DiscreteSampler {
 public:
  explicit DiscreteSampler(const std::vector<double>& weights);

  index_t size() const { return static_cast<index_t>(cdf_.size()); }
  // Probability mass of index i under the normalized distribution.
  double probability(index_t i) const;
  index_t sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;  // inclusive prefix sums of the weights
  double total_ = 0.0;
};

}  // namespace mtk
