// Deterministic random-number helpers. Every randomized test, example, and
// benchmark seeds explicitly so runs are reproducible.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "src/support/math_util.hpp"

namespace mtk {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);
  // Standard normal.
  double normal();
  // Uniform integer in [lo, hi] inclusive.
  index_t uniform_int(index_t lo, index_t hi);

  void fill_uniform(std::vector<double>& v, double lo = 0.0, double hi = 1.0);
  void fill_normal(std::vector<double>& v);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mtk
