// Multi-index utilities for N-way tensors.
//
// Convention: tensors are stored in *column-major* (first-index-fastest)
// order, matching the matricization convention of Kolda & Bader that the
// paper uses: linear(i) = i_1 + I_1*(i_2 + I_2*(i_3 + ...)). All indices are
// zero-based.
#pragma once

#include <vector>

#include "src/support/check.hpp"
#include "src/support/math_util.hpp"

namespace mtk {

using shape_t = std::vector<index_t>;
using multi_index_t = std::vector<index_t>;

// Product of all extents (total element count), overflow-checked.
index_t shape_size(const shape_t& dims);

// Validates that every extent is positive.
void check_shape(const shape_t& dims);

// Column-major strides for the given shape: stride[0]=1, stride[k] =
// I_0*...*I_{k-1}.
shape_t col_major_strides(const shape_t& dims);

// Column-major linearization of a full multi-index.
index_t linearize(const multi_index_t& idx, const shape_t& dims);

// Inverse of linearize.
multi_index_t delinearize(index_t lin, const shape_t& dims);

// Iterates the rectangular index set [lo_1,hi_1) x ... x [lo_d,hi_d) in
// column-major order (first coordinate fastest). `lo` defaults to all-zeros
// when constructed from a shape only.
class Odometer {
 public:
  explicit Odometer(const shape_t& dims);
  Odometer(multi_index_t lo, multi_index_t hi);

  // False once the range has been exhausted.
  bool valid() const { return valid_; }
  // Current multi-index; only meaningful while valid().
  const multi_index_t& index() const { return current_; }
  // Advances to the next index in column-major order.
  void next();
  // Restarts from `lo`.
  void reset();
  // Total number of indices in the range.
  index_t count() const;

 private:
  multi_index_t lo_;
  multi_index_t hi_;
  multi_index_t current_;
  bool valid_;
};

}  // namespace mtk
