// Error-checking macros used throughout the library.
//
// MTK_CHECK   — validates user-supplied arguments; throws std::invalid_argument.
// MTK_REQUIRE — validates runtime state (resource limits, protocol misuse);
//               throws std::runtime_error.
// MTK_ASSERT  — internal invariants; throws std::logic_error. These indicate
//               library bugs, not user errors, but we throw rather than abort
//               so the failure is testable and recoverable.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mtk::detail {

template <class Exception>
[[noreturn]] inline void throw_failure(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& message) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!message.empty()) {
    os << " — " << message;
  }
  throw Exception(os.str());
}

// Builds the optional human-readable message from streamable parts.
template <class... Parts>
std::string format_parts(const Parts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}

}  // namespace mtk::detail

#define MTK_CHECK(cond, ...)                                                  \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::mtk::detail::throw_failure<std::invalid_argument>(                    \
          "MTK_CHECK", #cond, __FILE__, __LINE__,                             \
          ::mtk::detail::format_parts(__VA_ARGS__));                          \
    }                                                                         \
  } while (false)

#define MTK_REQUIRE(cond, ...)                                                \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::mtk::detail::throw_failure<std::runtime_error>(                       \
          "MTK_REQUIRE", #cond, __FILE__, __LINE__,                           \
          ::mtk::detail::format_parts(__VA_ARGS__));                          \
    }                                                                         \
  } while (false)

#define MTK_ASSERT(cond, ...)                                                 \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::mtk::detail::throw_failure<std::logic_error>(                         \
          "MTK_ASSERT", #cond, __FILE__, __LINE__,                            \
          ::mtk::detail::format_parts(__VA_ARGS__));                          \
    }                                                                         \
  } while (false)
