#include "src/support/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "src/support/check.hpp"

namespace mtk {

bool JsonValue::as_bool() const {
  MTK_CHECK(type_ == Type::kBool, "JSON value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  MTK_CHECK(type_ == Type::kNumber, "JSON value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  MTK_CHECK(type_ == Type::kString, "JSON value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  MTK_CHECK(type_ == Type::kArray, "JSON value is not an array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  MTK_CHECK(type_ == Type::kObject, "JSON value is not an object");
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  MTK_CHECK(type_ == Type::kObject, "JSON value is not an object");
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  MTK_CHECK(v != nullptr, "JSON object has no member '", key, "'");
  return *v;
}

bool JsonValue::is_integer() const {
  if (type_ != Type::kNumber) return false;
  if (!std::isfinite(number_)) return false;
  if (std::abs(number_) > 9007199254740992.0) return false;  // 2^53
  return number_ == std::nearbyint(number_);
}

std::int64_t JsonValue::as_integer() const {
  MTK_CHECK(is_integer(), "JSON number is not an integer");
  return static_cast<std::int64_t>(number_);
}

// Recursive-descent parser over the whole document held in memory (telemetry
// files are at most a few MB). Tracks line/column for error messages.
// Nesting is bounded (kMaxDepth) so hostile input — e.g. ten thousand '['s
// on one serve request line — fails with a parse error instead of
// overflowing the stack.
class JsonParser {
 public:
  static constexpr int kMaxDepth = 64;

  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_whitespace();
    MTK_CHECK(pos_ == text_.size(), "trailing characters after JSON value ",
              where());
    return v;
  }

 private:
  std::string where() const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return "at line " + std::to_string(line) + ", column " +
           std::to_string(col);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    skip_whitespace();
    MTK_CHECK(pos_ < text_.size(), "unexpected end of JSON input");
    return text_[pos_];
  }

  void expect(char c) {
    MTK_CHECK(peek() == c, "expected '", std::string(1, c), "' ", where());
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect_literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      MTK_CHECK(pos_ < text_.size() && text_[pos_] == *p,
                "invalid JSON literal ", where());
      ++pos_;
    }
  }

  JsonValue parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type_ = JsonValue::Type::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't': {
        expect_literal("true");
        JsonValue v;
        v.type_ = JsonValue::Type::kBool;
        v.bool_ = true;
        return v;
      }
      case 'f': {
        expect_literal("false");
        JsonValue v;
        v.type_ = JsonValue::Type::kBool;
        v.bool_ = false;
        return v;
      }
      case 'n': {
        expect_literal("null");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  // RAII depth guard shared by the two recursive productions.
  struct DepthGuard {
    explicit DepthGuard(JsonParser& p) : parser(p) {
      MTK_CHECK(++parser.depth_ <= kMaxDepth, "JSON nesting deeper than ",
                kMaxDepth, " levels ", parser.where());
    }
    ~DepthGuard() { --parser.depth_; }
    JsonParser& parser;
  };

  JsonValue parse_object() {
    DepthGuard guard(*this);
    expect('{');
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    if (consume('}')) return v;
    while (true) {
      MTK_CHECK(peek() == '"', "expected object key ", where());
      std::string key = parse_string();
      expect(':');
      v.members_.emplace_back(std::move(key), parse_value());
      if (consume('}')) return v;
      expect(',');
    }
  }

  JsonValue parse_array() {
    DepthGuard guard(*this);
    expect('[');
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    if (consume(']')) return v;
    while (true) {
      v.items_.push_back(parse_value());
      if (consume(']')) return v;
      expect(',');
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      MTK_CHECK(pos_ < text_.size(), "unterminated JSON string ", where());
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      MTK_CHECK(pos_ < text_.size(), "unterminated escape ", where());
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          MTK_CHECK(pos_ + 4 <= text_.size(), "truncated \\u escape ",
                    where());
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              MTK_CHECK(false, "invalid \\u escape ", where());
            }
          }
          // UTF-8 encode (surrogate pairs are not needed by our emitters;
          // a lone surrogate is passed through as-is in 3 bytes).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: MTK_CHECK(false, "invalid escape '\\", std::string(1, e),
                           "' ", where());
      }
    }
  }

  JsonValue parse_number() {
    skip_whitespace();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '+' || c == '-' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    MTK_CHECK(pos_ > start, "invalid JSON number ", where());
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    MTK_CHECK(end != nullptr && *end == '\0', "invalid JSON number '", token,
              "' ", where());
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    v.number_ = value;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

JsonValue JsonValue::parse(const std::string& text) {
  JsonParser parser(text);
  return parser.parse_document();
}

JsonValue JsonValue::parse_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  MTK_CHECK(f != nullptr, "cannot open JSON file ", path);
  std::string text;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  MTK_CHECK(!read_error, "error reading JSON file ", path);
  try {
    return parse(text);
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

}  // namespace mtk
