// Small integer/floating-point helpers shared across modules.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "src/support/check.hpp"

namespace mtk {

using index_t = std::int64_t;

// Ceiling division for non-negative integers.
constexpr index_t ceil_div(index_t a, index_t b) {
  MTK_CHECK(b > 0, "ceil_div divisor must be positive, got ", b);
  MTK_CHECK(a >= 0, "ceil_div numerator must be non-negative, got ", a);
  return (a + b - 1) / b;
}

// a * b with overflow detection.
constexpr index_t checked_mul(index_t a, index_t b) {
  MTK_CHECK(a >= 0 && b >= 0, "checked_mul requires non-negative operands");
  if (a != 0) {
    MTK_CHECK(b <= std::numeric_limits<index_t>::max() / a,
              "integer overflow in checked_mul(", a, ", ", b, ")");
  }
  return a * b;
}

// Integer power base^exp with overflow detection.
constexpr index_t ipow(index_t base, int exp) {
  MTK_CHECK(exp >= 0, "ipow exponent must be non-negative, got ", exp);
  index_t result = 1;
  for (int i = 0; i < exp; ++i) {
    result = checked_mul(result, base);
  }
  return result;
}

constexpr bool is_pow2(index_t x) { return x > 0 && (x & (x - 1)) == 0; }

// Floor of log2 for positive integers.
constexpr int ilog2(index_t x) {
  MTK_CHECK(x > 0, "ilog2 requires a positive argument, got ", x);
  int lg = 0;
  while (x > 1) {
    x >>= 1;
    ++lg;
  }
  return lg;
}

// Largest b >= 0 such that b^n <= x (integer n-th root).
inline index_t nth_root_floor(index_t x, int n) {
  MTK_CHECK(x >= 0, "nth_root_floor requires non-negative x, got ", x);
  MTK_CHECK(n >= 1, "nth_root_floor requires n >= 1, got ", n);
  if (x == 0) return 0;
  // Start from the floating-point estimate and fix up by ±1 steps.
  auto b = static_cast<index_t>(std::floor(std::pow(static_cast<double>(x),
                                                    1.0 / n)));
  while (b > 0 && ipow(b, n) > x) --b;
  while (ipow(b + 1, n) <= x) ++b;
  return b;
}

// Relative difference |a-b| / max(|a|,|b|,1), used in approximate comparisons.
inline double rel_diff(double a, double b) {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
  return std::fabs(a - b) / scale;
}

}  // namespace mtk
