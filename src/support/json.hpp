// Minimal JSON reader: just enough of RFC 8259 to *validate* the telemetry
// artifacts this repo emits (BENCH_*.json benchmark telemetry, metrics
// snapshots, Chrome trace-event files). The emitters write JSON by hand —
// this is the read side, used by tools/validate_telemetry and the
// observability tests. Parse errors throw with a line/column position.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mtk {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors; throw on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;  // array elements
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  // Object lookup: find returns nullptr when absent, at throws.
  const JsonValue* find(const std::string& key) const;
  const JsonValue& at(const std::string& key) const;
  bool has(const std::string& key) const { return find(key) != nullptr; }

  // True when the number is integral (within 2^53, no fractional part).
  bool is_integer() const;
  std::int64_t as_integer() const;

  // Parses one complete JSON document (trailing garbage is an error).
  static JsonValue parse(const std::string& text);
  // Reads and parses a file; throws on IO or parse errors.
  static JsonValue parse_file(const std::string& path);

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace mtk
