#include "src/support/rng.hpp"

#include <algorithm>
#include <cmath>

#include "src/support/check.hpp"

namespace mtk {

double Rng::uniform(double lo, double hi) {
  MTK_CHECK(lo < hi, "uniform requires lo < hi, got [", lo, ", ", hi, ")");
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

double Rng::normal() {
  return std::normal_distribution<double>(0.0, 1.0)(engine_);
}

index_t Rng::uniform_int(index_t lo, index_t hi) {
  MTK_CHECK(lo <= hi, "uniform_int requires lo <= hi, got [", lo, ", ", hi,
            "]");
  return std::uniform_int_distribution<index_t>(lo, hi)(engine_);
}

void Rng::fill_uniform(std::vector<double>& v, double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  for (double& x : v) x = dist(engine_);
}

void Rng::fill_normal(std::vector<double>& v) {
  std::normal_distribution<double> dist(0.0, 1.0);
  for (double& x : v) x = dist(engine_);
}

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t salt) {
  // splitmix64 finalizer; full-avalanche, so nearby salts give unrelated
  // streams.
  std::uint64_t z = seed ^ (salt + 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  MTK_CHECK(!weights.empty(), "DiscreteSampler needs at least one weight");
  cdf_.reserve(weights.size());
  double acc = 0.0;
  for (double w : weights) {
    MTK_CHECK(w >= 0.0 && std::isfinite(w),
              "DiscreteSampler weights must be finite and >= 0, got ", w);
    acc += w;
    cdf_.push_back(acc);
  }
  total_ = acc;
  MTK_CHECK(total_ > 0.0, "DiscreteSampler weights sum to zero");
}

double DiscreteSampler::probability(index_t i) const {
  MTK_CHECK(i >= 0 && i < size(), "DiscreteSampler index ", i,
            " out of range");
  const std::size_t u = static_cast<std::size_t>(i);
  const double lo = u == 0 ? 0.0 : cdf_[u - 1];
  return (cdf_[u] - lo) / total_;
}

index_t DiscreteSampler::sample(Rng& rng) const {
  const double u = rng.uniform(0.0, total_);
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  const std::size_t pos = it == cdf_.end()
                              ? cdf_.size() - 1
                              : static_cast<std::size_t>(it - cdf_.begin());
  return static_cast<index_t>(pos);
}

}  // namespace mtk
