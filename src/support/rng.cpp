#include "src/support/rng.hpp"

#include "src/support/check.hpp"

namespace mtk {

double Rng::uniform(double lo, double hi) {
  MTK_CHECK(lo < hi, "uniform requires lo < hi, got [", lo, ", ", hi, ")");
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

double Rng::normal() {
  return std::normal_distribution<double>(0.0, 1.0)(engine_);
}

index_t Rng::uniform_int(index_t lo, index_t hi) {
  MTK_CHECK(lo <= hi, "uniform_int requires lo <= hi, got [", lo, ", ", hi,
            "]");
  return std::uniform_int_distribution<index_t>(lo, hi)(engine_);
}

void Rng::fill_uniform(std::vector<double>& v, double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  for (double& x : v) x = dist(engine_);
}

void Rng::fill_normal(std::vector<double>& v) {
  std::normal_distribution<double> dist(0.0, 1.0);
  for (double& x : v) x = dist(engine_);
}

}  // namespace mtk
