// RAII scope for an OpenMP thread-count override: tests and benches pin
// the team size for one kernel run and restore the previous setting on
// exit. Compiles to a no-op without OpenMP.
#pragma once

#ifdef _OPENMP
#include <omp.h>
#endif

namespace mtk {

class OmpThreadCountGuard {
 public:
  explicit OmpThreadCountGuard(int threads) {
#ifdef _OPENMP
    saved_ = omp_get_max_threads();
    omp_set_num_threads(threads);
#else
    (void)threads;
#endif
  }
  ~OmpThreadCountGuard() {
#ifdef _OPENMP
    omp_set_num_threads(saved_);
#endif
  }

  OmpThreadCountGuard(const OmpThreadCountGuard&) = delete;
  OmpThreadCountGuard& operator=(const OmpThreadCountGuard&) = delete;

 private:
  int saved_ = 1;
};

}  // namespace mtk
