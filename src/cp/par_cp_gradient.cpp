#include "src/cp/par_cp_gradient.hpp"

#include <memory>

#include "src/parsim/par_common.hpp"
#include "src/parsim/par_multi_mttkrp.hpp"
#include "src/planner/plan_cache.hpp"
#include "src/tensor/csf.hpp"

namespace mtk {

ParCpGradResult par_cp_gradient(const DenseTensor& x,
                                const ParCpGradOptions& opts) {
  return par_cp_gradient(StoredTensor::dense_view(x), opts);
}

ParCpGradResult par_cp_gradient(const SparseTensor& x,
                                const ParCpGradOptions& opts) {
  return par_cp_gradient(StoredTensor::coo_view(x), opts);
}

ParCpGradResult par_cp_gradient(const CsfTensor& x,
                                const ParCpGradOptions& opts) {
  return par_cp_gradient(StoredTensor::csf_view(x), opts);
}

ParCpGradResult par_cp_gradient(const StoredTensor& x,
                                const ParCpGradOptions& opts) {
  const int n = x.order();
  MTK_CHECK(n >= 2, "par_cp_gradient requires an order >= 2 tensor");
  MTK_CHECK(opts.descent.rank >= 1, "cp rank must be >= 1, got ",
            opts.descent.rank);

  if (opts.autotune) {
    const int procs = opts.grid.empty() ? opts.procs : grid_size(opts.grid);
    MTK_CHECK(procs >= 1,
              "par_cp_gradient autotune needs procs (or a grid whose "
              "product sets it), got ", procs);
    PlannerOptions popts;
    popts.procs = procs;
    popts.workload = PlanWorkload::kAllModes;
    popts.flop_word_ratio = opts.flop_word_ratio;
    popts.latency_word_ratio = opts.latency_word_ratio;
    popts.machine = opts.machine;
    // Every iteration re-runs the all-modes MTTKRP at least once (plus
    // rejected trials), amortizing any backend conversion.
    popts.reuse_count = std::max(1, opts.descent.max_iterations);
    const std::shared_ptr<const PlanReport> report =
        PlanCache::global().get_or_plan(x, opts.descent.rank, popts);
    const ExecutionPlan& plan = report->best();

    ParCpGradOptions tuned = opts;
    tuned.autotune = false;
    tuned.grid = plan.grid;
    tuned.partition = plan.scheme;
    tuned.collectives = plan.collectives;
    // Honor the planner's local-kernel schedule (previously dropped here).
    tuned.kernel_variant = plan.kernel_variant;

    // Honor the planner's backend choice: sparse storage converts once,
    // here, so the per-rank local kernels run in the recommended format.
    ParCpGradResult result;
    if (plan.backend != x.format() && x.format() != StorageFormat::kDense) {
      if (plan.backend == StorageFormat::kCsf) {
        const CsfTensor csf = CsfTensor::from_coo(x.as_coo());
        result = par_cp_gradient(StoredTensor::csf_view(csf), tuned);
      } else {
        const SparseTensor coo = x.as_csf().to_coo();
        result = par_cp_gradient(StoredTensor::coo_view(coo), tuned);
      }
    } else {
      result = par_cp_gradient(x, tuned);
    }
    result.autotuned = true;
    result.plan = plan;
    return result;
  }

  MTK_CHECK(static_cast<int>(opts.grid.size()) == n,
            "par_cp_gradient needs an N-way grid, got ", opts.grid.size(),
            " extents for order ", n);

  const std::unique_ptr<Transport> transport_owner =
      make_transport(opts.transport, grid_size(opts.grid));
  Transport& transport = *transport_owner;
  ParCpGradResult result;

  // Sparse inputs are planned once: the nonzero distribution and each
  // rank's fused CSF tree depend only on (tensor, grid, scheme), so every
  // evaluation — one per accepted iterate plus one per rejected Armijo
  // trial — reuses them instead of re-bucketing nonzeros and re-compressing
  // trees.
  const bool dense_input = x.format() == StorageFormat::kDense;
  AllModesSparsePlan plan;
  if (!dense_input) {
    plan = plan_all_modes_sparse(x, opts.grid, opts.partition);
  }

  // The machine-charging evaluation: distributed Grams plus one all-modes
  // MTTKRP per call. Every Armijo trial pays full communication, exactly
  // as a real distributed line search would.
  const GradEvalFn evaluate = [&](const std::vector<Matrix>& factors) {
    GradEval eval;
    eval.grams.reserve(static_cast<std::size_t>(n));
    for (const Matrix& a : factors) {
      eval.grams.push_back(
          distributed_gram(transport, a, opts.collectives.gram));
    }
    ParAllModesResult r =
        dense_input
            ? par_mttkrp_all_modes(transport, x, factors, opts.grid,
                                   opts.collectives, opts.partition,
                                   opts.kernel_variant)
            : par_mttkrp_all_modes(transport, x, factors, opts.grid, plan,
                                   opts.collectives, opts.kernel_variant);
    eval.mttkrps = std::move(r.outputs);
    ++result.evaluations;
    return eval;
  };

  result.descent = cp_gradient_descent_core(x.dims(), x.frobenius_norm(),
                                            opts.descent, evaluate);
  result.total_words_max = transport.max_words_moved();
  result.total_messages_max = transport.max_messages_sent();
  result.transport = transport.kind();
  result.comm_seconds = transport.comm_seconds();
  result.compute_seconds = transport.compute_seconds();
  return result;
}

}  // namespace mtk
