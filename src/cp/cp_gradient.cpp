#include "src/cp/cp_gradient.hpp"

#include <cmath>

#include "src/mttkrp/dispatch.hpp"
#include "src/obs/trace.hpp"
#include "src/sketch/sampled_mttkrp.hpp"
#include "src/support/rng.hpp"

namespace mtk {

namespace {

// f(A) = 1/2 (||X||^2 - 2 <X, model> + ||model||^2), evaluated from the
// Gram matrices and the last-mode MTTKRP (both already available per
// iteration) — no materialization of the model tensor.
double objective_value(double norm_x_sq, const std::vector<Matrix>& grams,
                       const Matrix& last_mttkrp, const Matrix& last_factor,
                       const std::vector<double>& ones) {
  const double model_sq = cp_model_norm_squared(grams, ones);
  const double inner = cp_inner_product(last_mttkrp, last_factor, ones);
  return 0.5 * (norm_x_sq - 2.0 * inner + model_sq);
}

std::vector<Matrix> compute_grams(const std::vector<Matrix>& factors) {
  std::vector<Matrix> grams;
  grams.reserve(factors.size());
  for (const Matrix& a : factors) grams.push_back(gram(a));
  return grams;
}

}  // namespace

CpGradResult cp_gradient_descent(const DenseTensor& x,
                                 const CpGradOptions& opts) {
  return cp_gradient_descent(StoredTensor::dense_view(x), opts);
}

CpGradResult cp_gradient_descent(const SparseTensor& x,
                                 const CpGradOptions& opts) {
  return cp_gradient_descent(StoredTensor::coo_view(x), opts);
}

CpGradResult cp_gradient_descent(const CsfTensor& x,
                                 const CpGradOptions& opts) {
  return cp_gradient_descent(StoredTensor::csf_view(x), opts);
}

CpGradResult cp_gradient_descent_core(const shape_t& dims, double norm_x,
                                      const CpGradOptions& opts,
                                      const GradEvalFn& evaluate) {
  const int n = static_cast<int>(dims.size());
  MTK_CHECK(n >= 2, "cp_gradient_descent requires an order >= 2 tensor");
  MTK_CHECK(opts.rank >= 1, "cp rank must be >= 1, got ", opts.rank);
  MTK_CHECK(opts.max_iterations >= 1, "need at least one iteration");
  MTK_CHECK(opts.initial_step > 0.0 && opts.backtrack > 0.0 &&
                opts.backtrack < 1.0 && opts.armijo > 0.0,
            "invalid line-search parameters");
  MTK_CHECK(norm_x > 0.0, "input tensor is identically zero");

  Rng rng(opts.seed);
  CpGradResult result;
  result.model.factors.reserve(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    // Small magnitudes keep the initial model norm below the data norm,
    // which keeps the first line searches well-behaved.
    result.model.factors.push_back(Matrix::random_uniform(
        dims[static_cast<std::size_t>(k)], opts.rank, rng, 0.0, 0.5));
  }
  result.model.lambda.assign(static_cast<std::size_t>(opts.rank), 1.0);
  const std::vector<double> ones(static_cast<std::size_t>(opts.rank), 1.0);

  const double norm_x_sq = norm_x * norm_x;

  std::vector<Matrix>& factors = result.model.factors;
  GradEval eval = evaluate(factors);
  double objective = objective_value(
      norm_x_sq, eval.grams, eval.mttkrps[static_cast<std::size_t>(n - 1)],
      factors[static_cast<std::size_t>(n - 1)], ones);

  double step = opts.initial_step;
  for (int iter = 1; iter <= opts.max_iterations; ++iter) {
    Span sweep_span(SpanCategory::kSweep, "cp_gradient sweep");
    if (sweep_span.enabled()) sweep_span.arg("iter", iter);
    // Gradients for every mode from the shared all-modes MTTKRP.
    std::vector<Matrix> gradients;
    gradients.reserve(static_cast<std::size_t>(n));
    double grad_norm_sq = 0.0;
    for (int mode = 0; mode < n; ++mode) {
      Matrix gamma(opts.rank, opts.rank, 0.0);
      bool first = true;
      for (int k = 0; k < n; ++k) {
        if (k == mode) continue;
        if (first) {
          gamma = eval.grams[static_cast<std::size_t>(k)];
          first = false;
        } else {
          hadamard_inplace(gamma, eval.grams[static_cast<std::size_t>(k)]);
        }
      }
      Matrix g(dims[static_cast<std::size_t>(mode)], opts.rank);
      gemm(factors[static_cast<std::size_t>(mode)], gamma, g);
      const Matrix& b = eval.mttkrps[static_cast<std::size_t>(mode)];
      for (index_t i = 0; i < g.rows(); ++i) {
        double* grow = g.row(i);
        const double* brow = b.row(i);
        for (index_t r = 0; r < opts.rank; ++r) {
          grow[r] -= brow[r];
          grad_norm_sq += grow[r] * grow[r];
        }
      }
      gradients.push_back(std::move(g));
    }
    const double grad_norm = std::sqrt(grad_norm_sq);

    // Armijo backtracking on the full factor block.
    bool accepted = false;
    double trial_step = step;
    std::vector<Matrix> trial(factors);
    for (int attempt = 0; attempt < 60; ++attempt) {
      for (int mode = 0; mode < n; ++mode) {
        Matrix& t = trial[static_cast<std::size_t>(mode)];
        const Matrix& a = factors[static_cast<std::size_t>(mode)];
        const Matrix& g = gradients[static_cast<std::size_t>(mode)];
        for (index_t i = 0; i < t.rows(); ++i) {
          double* trow = t.row(i);
          const double* arow = a.row(i);
          const double* grow = g.row(i);
          for (index_t r = 0; r < opts.rank; ++r) {
            trow[r] = arow[r] - trial_step * grow[r];
          }
        }
      }
      GradEval trial_eval = evaluate(trial);
      const double trial_obj = objective_value(
          norm_x_sq, trial_eval.grams,
          trial_eval.mttkrps[static_cast<std::size_t>(n - 1)],
          trial[static_cast<std::size_t>(n - 1)], ones);
      if (trial_obj <=
          objective - opts.armijo * trial_step * grad_norm_sq) {
        factors = trial;
        eval = std::move(trial_eval);
        objective = trial_obj;
        accepted = true;
        break;
      }
      trial_step *= opts.backtrack;
    }

    result.trace.push_back({iter, objective, grad_norm, trial_step});
    result.iterations = iter;
    result.final_objective = objective;
    if (!accepted) {
      break;  // line search exhausted: at (numerical) stationarity
    }
    // Gentle step growth so well-scaled problems do not crawl.
    step = std::min(trial_step * 2.0, opts.initial_step * 16.0);

    if (grad_norm <= opts.tolerance * std::max(1.0, norm_x)) {
      result.converged = true;
      break;
    }
  }

  result.final_fit = 1.0 - std::sqrt(std::max(0.0, 2.0 * objective)) / norm_x;
  return result;
}

CpGradResult cp_gradient_descent(const StoredTensor& x,
                                 const CpGradOptions& opts) {
  // `x` is captured by reference, so every evaluation (one per accepted
  // iterate plus one per rejected Armijo trial) hits the same handle and
  // therefore the same cached fused CSF tree — built once, reused for the
  // whole descent.
  const int n = x.order();
  if (opts.sketch.enabled() && x.format() != StorageFormat::kDense) {
    // Sampled gradients: the per-mode samples are shared by refresh_every
    // consecutive evaluations, so each Armijo line search compares
    // objectives of one fixed sketched problem (redraw mid-search would
    // make the sufficient-decrease test compare different estimators).
    const index_t s_count = opts.sketch.resolve_sample_count(opts.rank);
    const int refresh = std::max(1, opts.sketch.refresh_every);
    std::vector<KrpSample> samples(static_cast<std::size_t>(n));
    std::uint64_t calls = 0;
    const CsfSet& forest = x.csf_forest();

    CpGradResult result = cp_gradient_descent_core(
        x.dims(), x.frobenius_norm(), opts,
        [&](const std::vector<Matrix>& factors) {
          GradEval eval;
          eval.grams = compute_grams(factors);
          if (calls % static_cast<std::uint64_t>(refresh) == 0) {
            for (int mode = 0; mode < n; ++mode) {
              Rng srng(derive_seed(opts.sketch.seed,
                                   calls * 131u +
                                       static_cast<std::uint64_t>(mode)));
              samples[static_cast<std::size_t>(mode)] = sample_krp_leverage(
                  factors, eval.grams, mode, s_count, srng);
            }
          }
          ++calls;
          eval.mttkrps.reserve(static_cast<std::size_t>(n));
          for (int mode = 0; mode < n; ++mode) {
            eval.mttkrps.push_back(mttkrp_sampled(
                forest, factors, samples[static_cast<std::size_t>(mode)],
                opts.mttkrp));
          }
          return eval;
        });

    // Exact final objective/fit for the returned model (one exact MTTKRP).
    const std::vector<Matrix> grams = compute_grams(result.model.factors);
    const Matrix m_exact =
        mttkrp(forest, result.model.factors, n - 1, opts.mttkrp);
    const std::vector<double> ones(
        static_cast<std::size_t>(opts.rank), 1.0);
    const double norm_x = x.frobenius_norm();
    result.final_objective = objective_value(
        norm_x * norm_x, grams, m_exact,
        result.model.factors[static_cast<std::size_t>(n - 1)], ones);
    result.final_fit =
        1.0 -
        std::sqrt(std::max(0.0, 2.0 * result.final_objective)) / norm_x;
    return result;
  }
  return cp_gradient_descent_core(
      x.dims(), x.frobenius_norm(), opts,
      [&](const std::vector<Matrix>& factors) {
        GradEval eval;
        eval.grams = compute_grams(factors);
        eval.mttkrps = mttkrp_all_modes(x, factors, opts.mttkrp).outputs;
        return eval;
      });
}

}  // namespace mtk
