#include "src/cp/tucker.hpp"

#include <cmath>

#include "src/tensor/eigen_sym.hpp"
#include "src/tensor/matricize.hpp"
#include "src/tensor/ttm.hpp"

namespace mtk {

DenseTensor TuckerModel::reconstruct() const {
  DenseTensor result = core;
  for (int k = 0; k < static_cast<int>(factors.size()); ++k) {
    result = ttm(result, factors[static_cast<std::size_t>(k)], k);
  }
  return result;
}

TuckerModel st_hosvd(const DenseTensor& x, const TuckerOptions& opts) {
  const int n = x.order();
  MTK_CHECK(static_cast<int>(opts.ranks.size()) == n,
            "st_hosvd: expected ", n, " target ranks, got ",
            opts.ranks.size());
  for (int k = 0; k < n; ++k) {
    MTK_CHECK(opts.ranks[static_cast<std::size_t>(k)] >= 1 &&
                  opts.ranks[static_cast<std::size_t>(k)] <= x.dim(k),
              "st_hosvd: rank ", opts.ranks[static_cast<std::size_t>(k)],
              " invalid for mode ", k, " of extent ", x.dim(k));
  }

  TuckerModel model;
  model.factors.resize(static_cast<std::size_t>(n));
  DenseTensor work = x;
  for (int k = 0; k < n; ++k) {
    const index_t rk = opts.ranks[static_cast<std::size_t>(k)];
    // Gram of the mode-k unfolding of the current (already shrunk) tensor.
    const Matrix unfolding = matricize(work, k);
    Matrix g(unfolding.rows(), unfolding.rows());
    // G = Y_(k) Y_(k)': accumulate outer products over columns.
    for (index_t c = 0; c < unfolding.cols(); ++c) {
      for (index_t i = 0; i < unfolding.rows(); ++i) {
        const double yi = unfolding(i, c);
        if (yi == 0.0) continue;
        for (index_t j = 0; j < unfolding.rows(); ++j) {
          g(i, j) += yi * unfolding(j, c);
        }
      }
    }
    const SymmetricEigen eig = eigen_symmetric(g);
    // Leading rk eigenvectors become U^(k).
    Matrix u(work.dim(k), rk);
    for (index_t i = 0; i < work.dim(k); ++i) {
      for (index_t j = 0; j < rk; ++j) {
        u(i, j) = eig.vectors(i, j);
      }
    }
    model.factors[static_cast<std::size_t>(k)] = u;

    // Shrink: work <- work x_k U'. (ttm multiplies by a J x I_k matrix, so
    // pass U transposed.)
    Matrix ut(rk, work.dim(k));
    for (index_t i = 0; i < work.dim(k); ++i) {
      for (index_t j = 0; j < rk; ++j) {
        ut(j, i) = u(i, j);
      }
    }
    work = ttm(work, ut, k);
  }
  model.core = std::move(work);
  return model;
}

double tucker_residual_norm(const DenseTensor& x, const TuckerModel& model) {
  // For orthonormal factors, ||X - G x U..||^2 = ||X||^2 - ||G||^2.
  const double x_sq = std::pow(x.frobenius_norm(), 2.0);
  const double g_sq = std::pow(model.core.frobenius_norm(), 2.0);
  return std::sqrt(std::max(0.0, x_sq - g_sq));
}

}  // namespace mtk
