// Tucker decomposition via sequentially truncated HOSVD (ST-HOSVD) — the
// other decomposition family the paper's Section VII points to. The Tucker
// model approximates X by a core tensor G multiplied by an orthonormal
// factor U^(k) in every mode:
//
//   X ~ G x_1 U^(1) x_2 ... x_N U^(N),   U^(k): I_k x r_k, U'U = I.
//
// ST-HOSVD computes U^(k) as the leading eigenvectors of the mode-k
// unfolding's Gram matrix and immediately shrinks the working tensor with a
// TTM, so later modes factor a smaller object. Error satisfies the usual
// quasi-optimality bound (sum of discarded eigenvalues).
#pragma once

#include <vector>

#include "src/tensor/dense_tensor.hpp"
#include "src/tensor/matrix.hpp"

namespace mtk {

struct TuckerModel {
  DenseTensor core;             // r_1 x ... x r_N
  std::vector<Matrix> factors;  // U^(k), I_k x r_k, orthonormal columns

  DenseTensor reconstruct() const;
};

struct TuckerOptions {
  shape_t ranks;  // target multilinear rank (r_1, ..., r_N)
};

TuckerModel st_hosvd(const DenseTensor& x, const TuckerOptions& opts);

// ||X - model|| estimated from the discarded eigenvalue mass (no
// reconstruction needed); exact for the ST-HOSVD output.
double tucker_residual_norm(const DenseTensor& x, const TuckerModel& model);

}  // namespace mtk
