#include "src/cp/cp_als.hpp"

#include <cmath>

#include "src/obs/trace.hpp"
#include "src/sketch/sampled_mttkrp.hpp"
#include "src/sketch/sketched_solve.hpp"
#include "src/support/rng.hpp"

namespace mtk {

DenseTensor CpModel::reconstruct() const {
  return DenseTensor::from_cp(factors, lambda);
}

double cp_model_norm_squared(const std::vector<Matrix>& grams,
                             const std::vector<double>& lambda) {
  MTK_CHECK(!grams.empty(), "need at least one Gram matrix");
  const index_t r = grams.front().rows();
  Matrix v = grams.front();
  for (std::size_t k = 1; k < grams.size(); ++k) {
    hadamard_inplace(v, grams[k]);
  }
  double acc = 0.0;
  for (index_t p = 0; p < r; ++p) {
    for (index_t q = 0; q < r; ++q) {
      acc += lambda[static_cast<std::size_t>(p)] *
             lambda[static_cast<std::size_t>(q)] * v(p, q);
    }
  }
  return acc;
}

double cp_inner_product(const Matrix& mttkrp_result, const Matrix& factor,
                        const std::vector<double>& lambda) {
  MTK_CHECK(mttkrp_result.rows() == factor.rows() &&
                mttkrp_result.cols() == factor.cols(),
            "cp_inner_product shape mismatch");
  double acc = 0.0;
  for (index_t i = 0; i < factor.rows(); ++i) {
    const double* m = mttkrp_result.row(i);
    const double* a = factor.row(i);
    for (index_t r = 0; r < factor.cols(); ++r) {
      acc += lambda[static_cast<std::size_t>(r)] * m[r] * a[r];
    }
  }
  return acc;
}

namespace {

// Column 2-norm normalization; zero columns get weight 1 to stay invertible.
std::vector<double> normalize_columns(Matrix& a) {
  std::vector<double> norms = a.column_norms();
  for (double& v : norms) {
    if (v == 0.0) v = 1.0;
  }
  a.scale_columns_inv(norms);
  return norms;
}

}  // namespace

CpAlsResult cp_als(const DenseTensor& x, const CpAlsOptions& opts) {
  return cp_als(StoredTensor::dense_view(x), opts);
}

CpAlsResult cp_als(const SparseTensor& x, const CpAlsOptions& opts) {
  return cp_als(StoredTensor::coo_view(x), opts);
}

CpAlsResult cp_als(const CsfTensor& x, const CpAlsOptions& opts) {
  return cp_als(StoredTensor::csf_view(x), opts);
}

CpAlsResult cp_als(const StoredTensor& x, const CpAlsOptions& opts) {
  const int n = x.order();
  MTK_CHECK(n >= 2, "cp_als requires an order >= 2 tensor");
  MTK_CHECK(opts.rank >= 1, "cp rank must be >= 1, got ", opts.rank);
  MTK_CHECK(opts.max_iterations >= 1, "need at least one iteration");

  CpAlsResult result;
  if (opts.initial != nullptr) {
    const CpModel& init = *opts.initial;
    MTK_CHECK(static_cast<int>(init.factors.size()) == n,
              "warm start: model has ", init.factors.size(),
              " factors for an order-", n, " tensor");
    MTK_CHECK(init.rank() == opts.rank, "warm start: model rank ",
              init.rank(), " != requested rank ", opts.rank);
    for (int k = 0; k < n; ++k) {
      MTK_CHECK(init.factors[static_cast<std::size_t>(k)].rows() == x.dim(k),
                "warm start: factor ", k, " has ",
                init.factors[static_cast<std::size_t>(k)].rows(),
                " rows, tensor dim is ", x.dim(k));
    }
    result.model = init;
    if (result.model.lambda.size() != static_cast<std::size_t>(opts.rank)) {
      result.model.lambda.assign(static_cast<std::size_t>(opts.rank), 1.0);
    }
  } else {
    Rng rng(opts.seed);
    result.model.factors.reserve(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) {
      result.model.factors.push_back(
          Matrix::random_uniform(x.dim(k), opts.rank, rng));
    }
    result.model.lambda.assign(static_cast<std::size_t>(opts.rank), 1.0);
  }

  std::vector<Matrix> grams(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    grams[static_cast<std::size_t>(k)] =
        gram(result.model.factors[static_cast<std::size_t>(k)]);
  }

  const double norm_x = x.frobenius_norm();
  MTK_CHECK(norm_x > 0.0, "cp_als: input tensor is identically zero");

  // Sparse inputs: build the one-tree-per-mode CSF forest once and hold it
  // across every sweep — each per-mode MTTKRP then runs the root-level
  // owner-computes kernel with zero per-iteration tree rebuilds. An
  // explicit kCoo request keeps the per-mode coordinate kernel instead.
  const CsfSet* forest = nullptr;
  if (x.format() != StorageFormat::kDense &&
      opts.mttkrp.sparse_algo != SparseMttkrpAlgo::kCoo) {
    forest = &x.csf_forest();
  }

  // Randomized path: per-sweep leverage samples (sparse) or Gaussian KRP
  // projections (dense) replace the exact MTTKRP + Hadamard-Gram solve.
  const bool sampled = opts.sketch.enabled();
  const index_t s_count =
      sampled ? opts.sketch.resolve_sample_count(opts.rank) : 0;
  const int refresh = std::max(1, opts.sketch.refresh_every);
  std::vector<KrpSample> samples(sampled ? static_cast<std::size_t>(n) : 0);
  // Memoized per-mode leverage CDFs: within a redraw sweep, mode k's CDF is
  // reused across skip-modes until factor k itself is updated below.
  KrpLeverageCache leverage_cache(std::max(2, n));

  double previous_fit = 0.0;
  for (int iter = 1; iter <= opts.max_iterations; ++iter) {
    Span sweep_span(SpanCategory::kSweep, "cp_als sweep");
    const bool redraw = sampled && ((iter - 1) % refresh == 0);
    if (sweep_span.enabled()) {
      sweep_span.arg("iter", iter);
      sweep_span.arg("sampled", sampled ? 1 : 0);
      sweep_span.arg("redraw", redraw ? 1 : 0);
    }
    Matrix last_mttkrp;
    for (int mode = 0; mode < n; ++mode) {
      Matrix m, a;
      if (sampled && x.format() == StorageFormat::kDense) {
        Rng srng(derive_seed(opts.sketch.seed,
                             static_cast<std::uint64_t>(iter) * 131u +
                                 static_cast<std::uint64_t>(mode)));
        const SketchedNormalEq eq = sketched_normal_eq_gaussian(
            x.as_dense(), result.model.factors, mode, s_count, srng);
        m = eq.rhs;
        a = solve_spd_right(eq.gram, m);
      } else if (sampled) {
        KrpSample& sample = samples[static_cast<std::size_t>(mode)];
        if (redraw) {
          // Salted by (sweep, mode): bit-reproducible regardless of the
          // refresh cadence, and no two draws share a stream.
          Rng srng(derive_seed(opts.sketch.seed,
                               static_cast<std::uint64_t>(iter) * 131u +
                                   static_cast<std::uint64_t>(mode)));
          sample = leverage_cache.sample(result.model.factors, grams, mode,
                                         s_count, srng);
        }
        m = forest != nullptr
                ? mttkrp_sampled(*forest, result.model.factors, sample,
                                 opts.mttkrp)
                : mttkrp_sampled(x, result.model.factors, sample,
                                 opts.mttkrp);
        a = solve_spd_right(
            sketched_krp_gram(result.model.factors, sample), m);
      } else {
        m = forest != nullptr
                ? mttkrp(*forest, result.model.factors, mode, opts.mttkrp)
                : mttkrp(x, result.model.factors, mode, opts.mttkrp);

        // V = Hadamard of all Gram matrices except mode's.
        Matrix v(opts.rank, opts.rank, 0.0);
        bool first = true;
        for (int k = 0; k < n; ++k) {
          if (k == mode) continue;
          if (first) {
            v = grams[static_cast<std::size_t>(k)];
            first = false;
          } else {
            hadamard_inplace(v, grams[static_cast<std::size_t>(k)]);
          }
        }

        a = solve_spd_right(v, m);
      }
      result.model.lambda = normalize_columns(a);
      result.model.factors[static_cast<std::size_t>(mode)] = std::move(a);
      grams[static_cast<std::size_t>(mode)] =
          gram(result.model.factors[static_cast<std::size_t>(mode)]);
      if (sampled) leverage_cache.invalidate(mode);
      if (mode == n - 1) last_mttkrp = std::move(m);
    }

    const double norm_model_sq =
        cp_model_norm_squared(grams, result.model.lambda);
    const double inner = cp_inner_product(
        last_mttkrp, result.model.factors[static_cast<std::size_t>(n - 1)],
        result.model.lambda);
    const double residual_sq =
        std::max(0.0, norm_x * norm_x + norm_model_sq - 2.0 * inner);
    const double fit = 1.0 - std::sqrt(residual_sq) / norm_x;

    const double change = std::fabs(fit - previous_fit);
    result.trace.push_back({iter, fit, change});
    result.final_fit = fit;
    result.iterations = iter;
    if (iter > 1 && change < opts.tolerance) {
      result.converged = true;
      break;
    }
    previous_fit = fit;
  }

  if (sampled) {
    // The per-sweep fits above are sampled estimates; report the true
    // quality of the returned model with one exact MTTKRP.
    const Matrix m_exact =
        forest != nullptr
            ? mttkrp(*forest, result.model.factors, n - 1, opts.mttkrp)
            : mttkrp(x, result.model.factors, n - 1, opts.mttkrp);
    const double norm_model_sq =
        cp_model_norm_squared(grams, result.model.lambda);
    const double inner = cp_inner_product(
        m_exact, result.model.factors[static_cast<std::size_t>(n - 1)],
        result.model.lambda);
    const double residual_sq =
        std::max(0.0, norm_x * norm_x + norm_model_sq - 2.0 * inner);
    result.final_fit = 1.0 - std::sqrt(residual_sq) / norm_x;
  }
  result.leverage_rebuilds = leverage_cache.rebuilds();
  return result;
}

}  // namespace mtk
